// Parameter ablations for the design choices DESIGN.md calls out: the
// clustering scale k (Section 3.2 sets k = 10), the number of radial
// groups (Section 3.5 sets 3), the radial threshold TH_r (Section 3.5
// Step 8 sets 2 m), and the minimum polyline length. Each sweep holds the
// others at the paper defaults on the city scene at q = 2 cm.

#include <cstdio>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

namespace {

double MeasureRatio(const DbgcOptions& options, int frames) {
  const DbgcCodec codec(options);
  double ratio = 0;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    auto c = codec.Compress(pc, options.q_xyz);
    if (!c.ok()) return -1;
    ratio += CompressionRatio(pc, c.value());
  }
  return ratio / frames;
}

}  // namespace

int main() {
  bench::Banner("Parameter ablations (city, q = 2 cm)",
                "Design-choice sweeps for Sections 3.2 and 3.5");
  const int frames = bench::FramesPerConfig();

  std::printf("clustering scale k (paper: 10):\n");
  for (int k : {2, 5, 10, 20, 40}) {
    DbgcOptions options;
    options.cluster_k = k;
    std::printf("  k=%-3d ratio=%.2f\n", k, MeasureRatio(options, frames));
  }

  std::printf("\nnumber of radial groups (paper: 3):\n");
  for (int groups : {1, 2, 3, 5, 8}) {
    DbgcOptions options;
    options.num_groups = groups;
    std::printf("  groups=%-2d ratio=%.2f\n", groups,
                MeasureRatio(options, frames));
  }

  std::printf("\nradial threshold TH_r in meters (paper: 2.0):\n");
  for (double th : {0.25, 1.0, 2.0, 4.0, 8.0}) {
    DbgcOptions options;
    options.radial_threshold = th;
    std::printf("  TH_r=%-5.2f ratio=%.2f\n", th,
                MeasureRatio(options, frames));
  }

  std::printf("\nminimum polyline length (default: 2):\n");
  for (int len : {2, 3, 5, 10}) {
    DbgcOptions options;
    options.min_polyline_length = len;
    std::printf("  min_len=%-3d ratio=%.2f\n", len,
                MeasureRatio(options, frames));
  }

  std::printf("\nminPts surface-correction scale (default: 0.10):\n");
  for (double scale : {0.05, 0.10, 0.15, 0.30, 1.0}) {
    DbgcOptions options;
    options.min_pts_scale = scale;
    std::printf("  scale=%-5.2f ratio=%.2f\n", scale,
                MeasureRatio(options, frames));
  }

  std::printf(
      "\nExpected shape: each default sits at or near its sweep's best\n"
      "ratio; extreme values degrade gracefully.\n");
  return 0;
}
