// Section 4.3, "Approximate Density-based Clustering": exact cell-based
// clustering vs the approximate O(n) method - dense-set agreement,
// clustering-time speedup (paper: ~2x), and the end-to-end compression
// speedup after integration (paper: ~1.2x).

#include <cstdio>

#include "bench_util.h"
#include "cluster/approx_clustering.h"
#include "cluster/cell_clustering.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("Exact vs approximate density-based clustering",
                "Section 4.3 (clustering speedup and agreement)");

  const int frames = bench::FramesPerConfig();
  DbgcOptions options;  // Default parameter derivation (Section 3.2).
  const ClusteringParams params = ClusteringParams::FromErrorBound(
      options.q_xyz, options.cluster_k, options.min_pts_scale);

  double exact_time = 0, approx_time = 0;
  double agreement = 0, exact_dense = 0, approx_dense = 0;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    ClusteringResult exact, approx;
    exact_time += bench::TimeSeconds(
        [&] { exact = CellClustering(pc, params); });
    approx_time += bench::TimeSeconds(
        [&] { approx = ApproxClustering(pc.view(), params); });
    size_t same = 0;
    for (size_t i = 0; i < pc.size(); ++i) {
      same += exact.is_dense[i] == approx.is_dense[i];
    }
    agreement += static_cast<double>(same) / pc.size();
    exact_dense += static_cast<double>(exact.NumDense()) / pc.size();
    approx_dense += static_cast<double>(approx.NumDense()) / pc.size();
  }
  std::printf("exact cell-based clustering:  %8.3f s/frame (%.1f%% dense)\n",
              exact_time / frames, 100 * exact_dense / frames);
  std::printf("approximate grid clustering:  %8.3f s/frame (%.1f%% dense)\n",
              approx_time / frames, 100 * approx_dense / frames);
  std::printf("clustering speedup:           %8.2fx (paper: ~2x)\n",
              exact_time / approx_time);
  std::printf("dense-set agreement:          %8.2f%% (paper: nearly same)\n",
              100 * agreement / frames);

  // End-to-end effect.
  DbgcOptions exact_options;
  exact_options.use_approx_clustering = false;
  DbgcOptions approx_options;
  approx_options.use_approx_clustering = true;
  const DbgcCodec exact_codec(exact_options);
  const DbgcCodec approx_codec(approx_options);
  double exact_e2e = 0, approx_e2e = 0;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    exact_e2e += bench::TimeSeconds([&] {
      auto c = exact_codec.Compress(pc, 0.02);
      (void)c;
    });
    approx_e2e += bench::TimeSeconds([&] {
      auto c = approx_codec.Compress(pc, 0.02);
      (void)c;
    });
  }
  std::printf("end-to-end compression:       %8.3f s (exact) vs %.3f s "
              "(approx) -> %.2fx (paper: ~1.2x)\n",
              exact_e2e / frames, approx_e2e / frames,
              exact_e2e / approx_e2e);
  return 0;
}
