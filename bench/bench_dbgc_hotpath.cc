// DBGC encode hot-path tracker: per-stage ns/point and end-to-end ms/frame
// on the two urban workloads, emitted as BENCH_hotpath.json for the CI
// tripwire in scripts/check.sh (docs/PERFORMANCE.md).
//
//   urban-l  : every 4th point of an Apollo-style urban frame (~31 k points),
//              the single-frame latency workload the ≤25 ms budget is set on.
//   urban-xl : the full frame (~124 k points), tracking how the kernels
//              scale with density.
//
// Encodes run single-threaded (no pool) so the numbers are comparable
// across machines with different core counts. Each workload is measured
// over several warm repetitions; the JSON records the minimum and median,
// and the gate reads the minimum — on a loaded CI box the scheduler only
// ever adds time, so min-over-reps is the robust estimator of kernel cost.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbgc_codec.h"
#include "obs/trace.h"

using namespace dbgc;

namespace {

// Single-threaded encode wall time recorded before this rework, same
// machine class, urban-l at q = 2 cm. The JSON reports the speedup against
// it; check.sh trips if the ratio falls below 3x.
constexpr double kBaselineUrbanLMs = 89.5;

constexpr obs::Stage kEncodeStages[] = {
    obs::Stage::kClustering, obs::Stage::kOctree,  obs::Stage::kConversion,
    obs::Stage::kOrganization, obs::Stage::kSparse, obs::Stage::kOutlier,
    obs::Stage::kSerialize,
};

const char* StageKey(obs::Stage stage) {
  switch (stage) {
    case obs::Stage::kClustering:   return "den";
    case obs::Stage::kOctree:       return "oct";
    case obs::Stage::kConversion:   return "cor";
    case obs::Stage::kOrganization: return "org";
    case obs::Stage::kSparse:       return "spa";
    case obs::Stage::kOutlier:      return "out";
    case obs::Stage::kSerialize:    return "ser";
    default:                        return "?";
  }
}

int Reps() {
  const char* env = std::getenv("DBGC_HOTPATH_REPS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 10;
}

struct WorkloadResult {
  std::string name;
  size_t num_points = 0;
  size_t compressed_bytes = 0;
  double ms_min = 0.0;
  double ms_median = 0.0;
  // Per-stage ns/point, each stage's minimum across reps.
  double stage_ns_per_point[std::size(kEncodeStages)] = {};
};

/// Encodes `pc` `reps` times (after warmup) and collects wall/stage stats.
bool MeasureWorkload(const DbgcCodec& codec, const PointCloud& pc,
                     const std::string& name, int reps, WorkloadResult* out) {
  out->name = name;
  out->num_points = pc.size();

  CompressParams params;
  params.q_xyz = codec.options().q_xyz;

  std::vector<double> wall_ms;
  double stage_min[std::size(kEncodeStages)];
  std::fill(std::begin(stage_min), std::end(stage_min), 1e300);

  const int kWarmup = 2;
  for (int rep = 0; rep < kWarmup + reps; ++rep) {
    obs::FrameTrace trace;
    Result<ByteBuffer> compressed(ByteBuffer{});
    const double seconds =
        bench::TimeSeconds([&] { compressed = codec.Compress(pc, params); });
    if (!compressed.ok()) {
      std::fprintf(stderr, "compress failed: %s\n",
                   compressed.status().ToString().c_str());
      return false;
    }
    if (rep < kWarmup) continue;
    out->compressed_bytes = compressed.value().size();
    wall_ms.push_back(1e3 * seconds);
    const obs::FrameBreakdown& b = trace.breakdown();
    for (size_t s = 0; s < std::size(kEncodeStages); ++s) {
      stage_min[s] = std::min(stage_min[s], b.seconds(kEncodeStages[s]));
    }
  }

  std::sort(wall_ms.begin(), wall_ms.end());
  out->ms_min = wall_ms.front();
  out->ms_median = wall_ms[wall_ms.size() / 2];
  for (size_t s = 0; s < std::size(kEncodeStages); ++s) {
    out->stage_ns_per_point[s] =
        pc.size() > 0 ? 1e9 * stage_min[s] / static_cast<double>(pc.size())
                      : 0.0;
  }

  std::printf("%-9s %7zu pts  %8zu B  e2e min %7.2f ms  median %7.2f ms\n",
              name.c_str(), pc.size(), out->compressed_bytes, out->ms_min,
              out->ms_median);
  for (size_t s = 0; s < std::size(kEncodeStages); ++s) {
    std::printf("  %-4s %8.1f ns/pt\n", StageKey(kEncodeStages[s]),
                out->stage_ns_per_point[s]);
  }
  return true;
}

void AppendWorkloadJson(std::string* json, const WorkloadResult& r) {
  char buf[256];
  *json += "  \"" + r.name + "\": {\n";
  std::snprintf(buf, sizeof(buf), "    \"num_points\": %zu,\n", r.num_points);
  *json += buf;
  std::snprintf(buf, sizeof(buf), "    \"compressed_bytes\": %zu,\n",
                r.compressed_bytes);
  *json += buf;
  std::snprintf(buf, sizeof(buf), "    \"e2e_ms_min\": %.3f,\n", r.ms_min);
  *json += buf;
  std::snprintf(buf, sizeof(buf), "    \"e2e_ms_median\": %.3f,\n",
                r.ms_median);
  *json += buf;
  *json += "    \"stage_ns_per_point\": {";
  for (size_t s = 0; s < std::size(kEncodeStages); ++s) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.1f", s == 0 ? "" : ", ",
                  StageKey(kEncodeStages[s]), r.stage_ns_per_point[s]);
    *json += buf;
  }
  *json += "}\n  },\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("DBGC encode hot path (urban-l / urban-xl, q = 2 cm)",
                "hot-path budget, docs/PERFORMANCE.md");

  SceneGenerator gen(SceneType::kUrban);
  const PointCloud full = gen.Generate(0);
  PointCloud strided;
  strided.Reserve((full.size() + 3) / 4);
  for (size_t i = 0; i < full.size(); i += 4) strided.Add(full[i]);

  const int reps = Reps();
  const DbgcCodec codec;
  std::printf("reps per workload: %d (+2 warmup), single-threaded\n\n", reps);

  WorkloadResult urban_l, urban_xl;
  if (!MeasureWorkload(codec, strided, "urban-l", reps, &urban_l)) return 1;
  if (!MeasureWorkload(codec, full, "urban-xl", reps, &urban_xl)) return 1;

  const double speedup = kBaselineUrbanLMs / urban_l.ms_min;
  std::printf("\nurban-l speedup vs pre-rework baseline (%.1f ms): %.2fx\n",
              kBaselineUrbanLMs, speedup);

  std::string json = "{\n";
  json += "  \"schema\": \"dbgc-hotpath-bench-v1\",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  \"reps\": %d,\n", reps);
  json += buf;
  AppendWorkloadJson(&json, urban_l);
  AppendWorkloadJson(&json, urban_xl);
  std::snprintf(buf, sizeof(buf), "  \"baseline_urban_l_ms\": %.1f,\n",
                kBaselineUrbanLMs);
  json += buf;
  // Flat copies of the gated numbers so the check.sh awk tripwire can read
  // them without a JSON parser.
  std::snprintf(buf, sizeof(buf), "  \"urban_l_e2e_ms_min\": %.3f,\n",
                urban_l.ms_min);
  json += buf;
  std::snprintf(buf, sizeof(buf), "  \"urban_l_speedup\": %.3f\n", speedup);
  json += buf;
  json += "}\n";

  const char* path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
