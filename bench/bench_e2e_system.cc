// Section 4.4, "End-to-end Evaluation": throughput, bandwidth, latency,
// and memory of the full DBGC system pipeline (sensor -> client compress ->
// 4G uplink -> server decompress -> store), on the KITTI-style city scene.
//
// Paper's findings at q = 2 cm: a raw HDL-64E stream needs ~96 Mbps and
// cannot cross a 4G uplink (8.2 Mbps); the compressed stream needs ~6 Mbps
// and can; the end-to-end per-frame latency is well under a second; and
// compression/decompression memory is tens of megabytes.

#include <cmath>
#include <cstdio>

#include <fstream>
#include <string>

#include "bench_util.h"
#include "net/channel.h"
#include "net/client.h"
#include "net/server.h"

using namespace dbgc;

namespace {

// Peak resident set size in MiB (VmHWM from /proc, as the paper measures).
double PeakRssMib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  bench::Banner("End-to-end system evaluation", "Section 4.4");

  const SimulatedChannel sensor_link = SimulatedChannel::Ethernet100();
  const SimulatedChannel uplink = SimulatedChannel::Mobile4G();
  DbgcClient client(DbgcOptions(), sensor_link, uplink);
  DbgcServer server;

  const int frames = bench::FramesPerConfig() * 2;
  const double fps = 10.0;

  double raw_bits = 0, compressed_bits = 0;
  double compress_s = 0, decompress_s = 0, uplink_s = 0, sensor_s = 0;
  size_t points = 0;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    points += pc.size();
    ClientFrameReport creport;
    auto wire = client.ProcessFrame(pc, &creport);
    if (!wire.ok()) {
      std::fprintf(stderr, "client failed: %s\n",
                   wire.status().ToString().c_str());
      return 1;
    }
    ServerFrameReport sreport;
    if (Status s = server.HandleFrame(wire.value(), &sreport); !s.ok()) {
      std::fprintf(stderr, "server failed: %s\n", s.ToString().c_str());
      return 1;
    }
    raw_bits += 8.0 * creport.raw_bytes;
    compressed_bits += 8.0 * wire.value().size();
    compress_s += creport.compress_seconds;
    decompress_s += sreport.decompress_seconds;
    uplink_s += creport.uplink_seconds;
    sensor_s += creport.sensor_transfer_seconds;
  }

  const double raw_mbps = raw_bits / frames * fps / 1e6;
  const double compressed_mbps = compressed_bits / frames * fps / 1e6;
  std::printf("frames: %d, avg points/frame: %zu\n", frames, points / frames);
  std::printf("raw stream:        %7.1f Mbps  (sensor at %g fps)\n", raw_mbps,
              fps);
  std::printf("compressed stream: %7.2f Mbps  (4G uplink budget: %.1f Mbps)\n",
              compressed_mbps, uplink.bandwidth_mbps());
  std::printf("raw fits 4G?        %s;   compressed fits 4G?  %s\n",
              raw_mbps <= uplink.bandwidth_mbps() ? "yes" : "no",
              compressed_mbps <= uplink.bandwidth_mbps() ? "yes" : "no");

  const double per_frame_latency =
      sensor_s / frames + compress_s / frames + uplink_s / frames +
      decompress_s / frames;
  std::printf("\nper-frame pipeline latency:\n");
  std::printf("  sensor->client transfer: %7.3f s (modeled, 100BASE-TX)\n",
              sensor_s / frames);
  std::printf("  compression:             %7.3f s (measured)\n",
              compress_s / frames);
  std::printf("  client->server uplink:   %7.3f s (modeled, 4G)\n",
              uplink_s / frames);
  std::printf("  decompression:           %7.3f s (measured)\n",
              decompress_s / frames);
  std::printf("  total:                   %7.3f s (paper: ~0.7 s)\n",
              per_frame_latency);

  const double throughput = 1.0 / (compress_s / frames);
  std::printf("\nclient compression throughput: %.1f frames/s "
              "(sensor produces %g; pipeline depth %d sustains it)\n",
              throughput, fps,
              static_cast<int>(std::ceil(fps * compress_s / frames)));
  // Section 4.4's criterion: the compressed stream fits the uplink and
  // every link in Figure 2 keeps up with the generation rate.
  std::printf("online capable (paper criterion): %s\n",
              compressed_mbps <= uplink.bandwidth_mbps() ? "yes" : "no");
  std::printf("peak RSS: %.1f MiB (paper: ~45 MiB compress / ~12 MiB "
              "decompress)\n",
              PeakRssMib());
  return 0;
}
