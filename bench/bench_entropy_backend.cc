// Entropy backend comparison: WNC arithmetic (v1) vs byte-wise range
// coder (v2) on the urban-l tier (docs/ENTROPY.md).
//
//   $ ./bench/bench_entropy_backend [out.json]
//
// The PR 6 headline claim is that replacing the bit-renormalizing
// Witten-Neal-Cleary coder with a byte-renormalizing range coder cuts the
// DBGC ENT stage by >= 2x and the total encode time measurably. This
// bench pins that claim: it encodes the same urban-l frames under both
// CompressParams::entropy_backend settings, splits the wall time by trace
// span (ENT / SER / total), verifies both streams decode back losslessly,
// and writes the ratios to BENCH_entropy.json for the scripts/check.sh
// entropy gate.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"
#include "obs/trace.h"

namespace {

struct BackendRow {
  std::string name;
  dbgc::EntropyBackend backend = dbgc::kDefaultEntropyBackend;
  size_t compressed_bytes = 0;
  double encode_ms = 0;
  double decode_ms = 0;
  double ent_ms = 0;  // ENT trace-span share of the encode.
  double ser_ms = 0;  // SER trace-span share of the encode.
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_entropy.json";
  dbgc::bench::Banner(
      "Entropy backend: arithmetic (v1) vs range coder (v2)",
      "versioned entropy backend swap, docs/ENTROPY.md");
  if (!dbgc::obs::kEnabled) {
    std::printf("note: DBGC_OBS_OFF build — ENT/SER spans read as zero\n");
  }

  // urban-l: the paper's largest tier, full-resolution urban frames
  // (matches bench_parallel_scaling's tier table).
  const int num_frames = dbgc::bench::FramesPerConfig();
  std::vector<dbgc::PointCloud> frames;
  size_t points = 0;
  for (int f = 0; f < num_frames; ++f) {
    frames.push_back(
        dbgc::bench::Frame(dbgc::SceneType::kUrban, static_cast<uint32_t>(f)));
    points = frames.back().size();
  }
  std::printf("tier urban-l: %zu points/frame, %d frame(s)\n\n", points,
              num_frames);

  const dbgc::DbgcOptions options;
  const dbgc::DbgcCodec codec(options);

  std::vector<BackendRow> rows = {
      {"arithmetic_v1", dbgc::EntropyBackend::kArithmeticV1, 0, 0, 0, 0, 0},
      {"range_v2", dbgc::EntropyBackend::kRangeV2, 0, 0, 0, 0, 0},
  };

  std::printf("%-14s %12s %11s %11s %9s %9s\n", "backend", "bytes/frame",
              "encode ms", "decode ms", "ENT ms", "SER ms");
  for (BackendRow& row : rows) {
    dbgc::CompressParams params;
    params.q_xyz = options.q_xyz;
    params.entropy_backend = row.backend;
    for (const dbgc::PointCloud& pc : frames) {
      dbgc::Result<dbgc::ByteBuffer> compressed = dbgc::ByteBuffer();
      {
        dbgc::obs::FrameTrace trace;
        row.encode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
          compressed = codec.Compress(pc, params);
        });
        row.ent_ms +=
            1e3 * trace.breakdown().seconds(dbgc::obs::Stage::kEntropy);
        row.ser_ms +=
            1e3 * trace.breakdown().seconds(dbgc::obs::Stage::kSerialize);
      }
      if (!compressed.ok()) {
        std::fprintf(stderr, "%s: compress failed: %s\n", row.name.c_str(),
                     compressed.status().ToString().c_str());
        return 1;
      }
      row.compressed_bytes += compressed.value().size();
      dbgc::Result<dbgc::PointCloud> decoded = dbgc::PointCloud();
      row.decode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
        decoded = codec.Decompress(compressed.value());
      });
      if (!decoded.ok()) {
        std::fprintf(stderr, "%s: decompress failed: %s\n", row.name.c_str(),
                     decoded.status().ToString().c_str());
        return 1;
      }
      if (decoded.value().size() != pc.size()) {
        std::fprintf(stderr, "%s: point count changed in round trip\n",
                     row.name.c_str());
        return 1;
      }
    }
    row.encode_ms /= num_frames;
    row.decode_ms /= num_frames;
    row.ent_ms /= num_frames;
    row.ser_ms /= num_frames;
    row.compressed_bytes /= static_cast<size_t>(num_frames);
    std::printf("%-14s %12zu %11.2f %11.2f %9.2f %9.2f\n", row.name.c_str(),
                row.compressed_bytes, row.encode_ms, row.decode_ms, row.ent_ms,
                row.ser_ms);
  }

  const BackendRow& v1 = rows[0];
  const BackendRow& v2 = rows[1];
  const double ent_speedup = v2.ent_ms > 0 ? v1.ent_ms / v2.ent_ms : 0.0;
  const double total_speedup =
      v2.encode_ms > 0 ? v1.encode_ms / v2.encode_ms : 0.0;
  const double decode_speedup =
      v2.decode_ms > 0 ? v1.decode_ms / v2.decode_ms : 0.0;
  const double size_ratio =
      v1.compressed_bytes > 0
          ? static_cast<double>(v2.compressed_bytes) /
                static_cast<double>(v1.compressed_bytes)
          : 0.0;
  std::printf("\nENT speedup (v1/v2):    %.2fx\n", ent_speedup);
  std::printf("encode speedup (v1/v2): %.2fx\n", total_speedup);
  std::printf("decode speedup (v1/v2): %.2fx\n", decode_speedup);
  std::printf("size ratio (v2/v1):     %.4f\n", size_ratio);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"entropy_backend\",\n");
  std::fprintf(json, "  \"tier\": \"urban-l\",\n");
  std::fprintf(json, "  \"points_per_frame\": %zu,\n", points);
  std::fprintf(json, "  \"frames_per_config\": %d,\n", num_frames);
  std::fprintf(json, "  \"obs_enabled\": %s,\n",
               dbgc::obs::kEnabled ? "true" : "false");
  std::fprintf(json, "  \"backends\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    std::fprintf(json,
                 "    {\"backend\": \"%s\", \"version_byte\": %u, "
                 "\"bytes_per_frame\": %zu, \"encode_ms\": %.3f, "
                 "\"decode_ms\": %.3f, \"ent_ms\": %.3f, \"ser_ms\": %.3f}%s\n",
                 r.name.c_str(), unsigned{dbgc::EntropyVersionByte(r.backend)},
                 r.compressed_bytes, r.encode_ms, r.decode_ms, r.ent_ms,
                 r.ser_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"ent_speedup_v1_over_v2\": %.3f,\n", ent_speedup);
  std::fprintf(json, "  \"encode_speedup_v1_over_v2\": %.3f,\n",
               total_speedup);
  std::fprintf(json, "  \"decode_speedup_v1_over_v2\": %.3f,\n",
               decode_speedup);
  std::fprintf(json, "  \"size_ratio_v2_over_v1\": %.4f\n", size_ratio);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
