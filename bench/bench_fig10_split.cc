// Figure 10: compression ratio as the percentage of points given to the
// octree varies from 0% to 100%, against DBGC's own density-based split.
//
// Points are ordered by distance to the sensor; the nearest fraction is
// compressed with the octree, the rest with the sparse coordinate coder.
// Paper's shape: the density-based clustering point sits at or near the
// best ratio over the whole spectrum, with pure-coordinate (0%) and
// pure-octree (100%) both inferior.

#include <cstdio>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("Ratio vs percentage of points encoded in the octree",
                "Figure 10");

  const double q = 0.02;
  const int frames = bench::FramesPerConfig();
  std::printf("%12s %10s\n", "octree pct", "ratio");

  for (int pct = 0; pct <= 100; pct += 10) {
    DbgcOptions options;
    options.forced_dense_fraction = pct / 100.0;
    const DbgcCodec codec(options);
    double ratio = 0;
    for (int f = 0; f < frames; ++f) {
      const PointCloud pc = bench::Frame(SceneType::kCity, f);
      auto c = codec.Compress(pc, q);
      if (!c.ok()) {
        std::fprintf(stderr, "compress failed: %s\n",
                     c.status().ToString().c_str());
        return 1;
      }
      ratio += CompressionRatio(pc, c.value());
    }
    std::printf("%11d%% %10.2f\n", pct, ratio / frames);
  }

  // DBGC's own clustering-based split.
  const DbgcCodec codec;
  double ratio = 0, dense_pct = 0;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    CompressStats info;
    CompressParams cparams;
    cparams.q_xyz = codec.options().q_xyz;
    cparams.info = &info;
    auto c = codec.Compress(pc, cparams);
    if (!c.ok()) return 1;
    ratio += CompressionRatio(pc, c.value());
    dense_pct += 100.0 * static_cast<double>(info.num_dense) /
                 static_cast<double>(pc.size());
  }
  std::printf("%12s %10.2f   (clustering marked %.1f%% dense)\n",
              "clustering", ratio / frames, dense_pct / frames);
  std::printf(
      "\nExpected shape: the clustering split lands at or near the best of\n"
      "the fixed percentages; both extremes are worse.\n");
  return 0;
}
