// Figure 11: the impact of DBGC's individual techniques. The full system
// is compared with -Radial (no radial-distance-optimized delta encoding),
// -Group (no point grouping), and -Conversion (polylines in Cartesian
// space) across error bounds on the campus scene.
//
// Paper's numbers: -Radial, -Group, and -Conversion reach about 88%, 85%,
// and 29% of DBGC's compression ratio on average.

#include <cstdio>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("DBGC ablations: -Radial, -Group, -Conversion",
                "Figure 11");

  DbgcOptions full;
  DbgcOptions no_radial;
  no_radial.enable_radial_optimized_delta = false;
  DbgcOptions no_group;
  no_group.num_groups = 1;
  DbgcOptions no_conversion;
  no_conversion.enable_spherical_conversion = false;

  struct Variant {
    const char* label;
    DbgcCodec codec;
  };
  Variant variants[] = {{"DBGC", DbgcCodec(full)},
                        {"-Radial", DbgcCodec(no_radial)},
                        {"-Group", DbgcCodec(no_group)},
                        {"-Conversion", DbgcCodec(no_conversion)}};

  const int frames = bench::FramesPerConfig();
  std::printf("%9s", "q_xyz");
  for (const auto& v : variants) std::printf(" %12s", v.label);
  std::printf("\n");

  double rel_sum[4] = {0, 0, 0, 0};
  int rows = 0;
  for (double q : bench::PaperErrorBounds()) {
    double ratios[4] = {0, 0, 0, 0};
    for (int f = 0; f < frames; ++f) {
      const PointCloud pc = bench::Frame(SceneType::kCampus, f);
      for (int v = 0; v < 4; ++v) {
        auto c = variants[v].codec.Compress(pc, q);
        if (!c.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", variants[v].label,
                       c.status().ToString().c_str());
          return 1;
        }
        ratios[v] += CompressionRatio(pc, c.value());
      }
    }
    std::printf("%7.2fcm", q * 100);
    for (int v = 0; v < 4; ++v) std::printf(" %12.2f", ratios[v] / frames);
    std::printf("\n");
    for (int v = 0; v < 4; ++v) rel_sum[v] += ratios[v] / ratios[0];
    ++rows;
  }
  std::printf("\nAverage relative to DBGC:");
  for (int v = 0; v < 4; ++v) {
    std::printf(" %s=%.0f%%", variants[v].label, 100.0 * rel_sum[v] / rows);
  }
  std::printf(
      "\nPaper: -Radial 88%%, -Group 85%%, -Conversion 29%% of DBGC.\n");
  return 0;
}
