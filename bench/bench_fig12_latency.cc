// Figure 12: compression (12a) and decompression (12b) time of all
// competing schemes on the city scene, with the error bound varied.
//
// Paper's shape: Octree, Octree_i, and Draco are fastest; DBGC sits in
// the middle (~0.4 s compression, ~0.1 s decompression on their testbed);
// G-PCC is slowest. Times generally shrink as the bound loosens.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("Compression / decompression time vs error bound (city)",
                "Figure 12a and 12b");

  const int frames = bench::FramesPerConfig();
  const DbgcCodec dbgc_codec;
  const auto baselines = MakeBaselineCodecs();

  std::printf("%9s %16s %12s %12s\n", "q_xyz", "codec", "compress(s)",
              "decompress(s)");
  for (double q : bench::PaperErrorBounds()) {
    // DBGC first, then the baselines.
    double ct = 0, dt = 0;
    for (int f = 0; f < frames; ++f) {
      const PointCloud pc = bench::Frame(SceneType::kCity, f);
      ByteBuffer compressed;
      ct += bench::TimeSeconds([&] {
        auto c = dbgc_codec.Compress(pc, q);
        compressed = std::move(c).value();
      });
      dt += bench::TimeSeconds([&] {
        auto d = dbgc_codec.Decompress(compressed);
        (void)d;
      });
    }
    std::printf("%7.2fcm %16s %12.3f %12.3f\n", q * 100, "DBGC", ct / frames,
                dt / frames);
    for (const auto& codec : baselines) {
      ct = dt = 0;
      for (int f = 0; f < frames; ++f) {
        const PointCloud pc = bench::Frame(SceneType::kCity, f);
        ByteBuffer compressed;
        ct += bench::TimeSeconds([&] {
          auto c = codec->Compress(pc, q);
          compressed = std::move(c).value();
        });
        dt += bench::TimeSeconds([&] {
          auto d = codec->Decompress(compressed);
          (void)d;
        });
      }
      std::printf("%7.2fcm %16s %12.3f %12.3f\n", q * 100,
                  codec->name().c_str(), ct / frames, dt / frames);
    }
  }
  std::printf(
      "\nExpected shape: the octree family is fastest; DBGC's compression\n"
      "stays well under the 100 ms frame interval budget discussed in\n"
      "Section 4.4 on modern hardware.\n");
  return 0;
}
