// Figure 13: DBGC's compression and decompression time breakdown at
// q = 2 cm over the six building blocks: density-based clustering (DEN),
// octree (OCT), coordinate conversion (COR), point organization (ORG),
// sparse coordinate codec (SPA), and outlier codec (OUT).
//
// Paper's shape (compression): DEN ~31%, ORG ~22%, SPA ~44% dominate; OCT,
// COR, OUT are negligible. Decompression is dominated by SPA.
//
// Stage times are collected with obs::FrameTrace around each codec call:
// every pipeline stage runs under a TraceSpan, so the trace's breakdown is
// the per-frame DEN/OCT/COR/ORG/SPA/OUT split.

#include <cstdio>

#include "bench_util.h"
#include "core/dbgc_codec.h"
#include "obs/trace.h"

using namespace dbgc;

namespace {

constexpr obs::Stage kPipelineStages[] = {
    obs::Stage::kClustering,   obs::Stage::kOctree, obs::Stage::kConversion,
    obs::Stage::kOrganization, obs::Stage::kSparse, obs::Stage::kOutlier,
};

const char* StageLabel(obs::Stage stage) {
  switch (stage) {
    case obs::Stage::kClustering:   return "DEN (clustering)";
    case obs::Stage::kOctree:       return "OCT (octree)";
    case obs::Stage::kConversion:   return "COR (conversion)";
    case obs::Stage::kOrganization: return "ORG (organization)";
    case obs::Stage::kSparse:       return "SPA (sparse codec)";
    case obs::Stage::kOutlier:      return "OUT (outliers)";
    default:                        return "?";
  }
}

void PrintBreakdown(const char* title, const obs::FrameBreakdown& b) {
  double total = 0.0;
  for (obs::Stage s : kPipelineStages) total += b.seconds(s);
  std::printf("%s (total %.3f s):\n", title, total);
  for (obs::Stage s : kPipelineStages) {
    std::printf("  %-20s %8.4f s  %5.1f%%\n", StageLabel(s), b.seconds(s),
                total > 0 ? 100.0 * b.seconds(s) / total : 0.0);
  }
}

}  // namespace

int main() {
  bench::Banner("DBGC time breakdown at q = 2 cm (city)", "Figure 13");

  const int frames = bench::FramesPerConfig();
  const DbgcCodec codec;
  obs::FrameBreakdown compress_total, decompress_total;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    Result<ByteBuffer> compressed = [&] {
      obs::FrameTrace trace;
      Result<ByteBuffer> r = codec.Compress(pc, codec.options().q_xyz);
      for (obs::Stage s : kPipelineStages) {
        compress_total.Add(s, trace.breakdown().seconds(s) / frames);
      }
      return r;
    }();
    if (!compressed.ok()) return 1;
    obs::FrameTrace trace;
    auto decoded = codec.Decompress(compressed.value());
    if (!decoded.ok()) return 1;
    for (obs::Stage s : kPipelineStages) {
      decompress_total.Add(s, trace.breakdown().seconds(s) / frames);
    }
  }
  PrintBreakdown("Compression", compress_total);
  PrintBreakdown("Decompression", decompress_total);
  std::printf(
      "\nExpected shape: DEN, ORG, and SPA dominate compression; SPA\n"
      "dominates decompression; OCT, COR, and OUT are small.\n");
  return 0;
}
