// Figure 13: DBGC's compression and decompression time breakdown at
// q = 2 cm over the six building blocks: density-based clustering (DEN),
// octree (OCT), coordinate conversion (COR), point organization (ORG),
// sparse coordinate codec (SPA), and outlier codec (OUT).
//
// Paper's shape (compression): DEN ~31%, ORG ~22%, SPA ~44% dominate; OCT,
// COR, OUT are negligible. Decompression is dominated by SPA.

#include <cstdio>

#include "bench_util.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

namespace {

void PrintBreakdown(const char* title, const DbgcTimings& t) {
  const double total = t.Total();
  std::printf("%s (total %.3f s):\n", title, total);
  struct Row {
    const char* label;
    double v;
  };
  const Row rows[] = {{"DEN (clustering)", t.clustering},
                      {"OCT (octree)", t.octree},
                      {"COR (conversion)", t.conversion},
                      {"ORG (organization)", t.organization},
                      {"SPA (sparse codec)", t.sparse},
                      {"OUT (outliers)", t.outlier}};
  for (const Row& r : rows) {
    std::printf("  %-20s %8.4f s  %5.1f%%\n", r.label, r.v,
                total > 0 ? 100.0 * r.v / total : 0.0);
  }
}

}  // namespace

int main() {
  bench::Banner("DBGC time breakdown at q = 2 cm (city)", "Figure 13");

  const int frames = bench::FramesPerConfig();
  const DbgcCodec codec;
  DbgcTimings compress_total, decompress_total;
  for (int f = 0; f < frames; ++f) {
    const PointCloud pc = bench::Frame(SceneType::kCity, f);
    DbgcCompressInfo cinfo;
    auto compressed = codec.CompressWithInfo(pc, &cinfo);
    if (!compressed.ok()) return 1;
    DbgcDecompressInfo dinfo;
    auto decoded = codec.DecompressWithInfo(compressed.value(), &dinfo);
    if (!decoded.ok()) return 1;

    compress_total.clustering += cinfo.timings.clustering / frames;
    compress_total.octree += cinfo.timings.octree / frames;
    compress_total.conversion += cinfo.timings.conversion / frames;
    compress_total.organization += cinfo.timings.organization / frames;
    compress_total.sparse += cinfo.timings.sparse / frames;
    compress_total.outlier += cinfo.timings.outlier / frames;
    decompress_total.clustering += dinfo.timings.clustering / frames;
    decompress_total.octree += dinfo.timings.octree / frames;
    decompress_total.conversion += dinfo.timings.conversion / frames;
    decompress_total.organization += dinfo.timings.organization / frames;
    decompress_total.sparse += dinfo.timings.sparse / frames;
    decompress_total.outlier += dinfo.timings.outlier / frames;
  }
  PrintBreakdown("Compression", compress_total);
  PrintBreakdown("Decompression", decompress_total);
  std::printf(
      "\nExpected shape: DEN, ORG, and SPA dominate compression; SPA\n"
      "dominates decompression; OCT, COR, and OUT are small.\n");
  return 0;
}
