// Figure 3: octree compression ratio (3a) and point density (3b) as the
// point-cloud radius varies.
//
// Concentric-sphere subsets of a city frame, centered at the sensor, are
// compressed with the baseline octree coder at q = 2 cm. The paper's shape:
// both the ratio and the density fall steeply as the radius grows; beyond
// ~20 m the density is a few points per cubic meter and the ratio drops to
// a fraction of its near-field value.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "codec/octree_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("Octree compression vs point-cloud radius",
                "Figure 3a (compression ratio) and 3b (density)");

  const double q = 0.02;
  const OctreeCodec octree;
  const std::vector<double> radii = {2.5, 5, 7.5, 10, 12.5, 15,
                                     20,  30, 45,  60, 90,  120};

  std::printf("%8s %10s %14s %16s\n", "radius", "points", "ratio",
              "density(pts/m^3)");
  const int frames = bench::FramesPerConfig();
  for (double radius : radii) {
    double ratio_sum = 0, density_sum = 0;
    size_t points_sum = 0;
    for (int f = 0; f < frames; ++f) {
      const PointCloud pc = bench::Frame(SceneType::kCity, f);
      PointCloud subset;
      for (const Point3& p : pc) {
        if (p.Norm() <= radius) subset.Add(p);
      }
      if (subset.empty()) continue;
      auto compressed = octree.Compress(subset, q);
      if (!compressed.ok()) {
        std::fprintf(stderr, "compress failed: %s\n",
                     compressed.status().ToString().c_str());
        return 1;
      }
      ratio_sum += CompressionRatio(subset, compressed.value());
      const double volume = 4.0 / 3.0 * M_PI * radius * radius * radius;
      density_sum += static_cast<double>(subset.size()) / volume;
      points_sum += subset.size();
    }
    std::printf("%7.1fm %10zu %14.2f %16.3f\n", radius, points_sum / frames,
                ratio_sum / frames, density_sum / frames);
  }
  std::printf(
      "\nExpected shape: ratio and density decrease monotonically with\n"
      "radius; the far-field ratio is several times below the near field.\n");
  return 0;
}
