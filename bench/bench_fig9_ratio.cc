// Figure 9 (a-f): compression ratio (and uplink bandwidth at 10 fps) of
// DBGC and the four baselines on all six scenes, with the error bound
// varied from 0.06 cm to 2 cm.
//
// Paper's shape: DBGC outperforms all baselines on every dataset; G-PCC is
// the strongest baseline; Octree_i slightly underperforms Octree on scene
// clouds; Draco (kd-tree) trails. At the 2 cm bound DBGC reaches a ratio
// around 19-20x and needs well under the 8.2 Mbps 4G uplink.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("Compression ratio vs error bound, all scenes and codecs",
                "Figure 9a-9f (and the bandwidth metric of Section 4.1)");

  const int frames = bench::FramesPerConfig();
  const DbgcCodec dbgc_codec;
  const auto baselines = MakeBaselineCodecs();

  for (SceneType scene : AllSceneTypes()) {
    std::printf("\n--- scene: %s ---\n", SceneTypeName(scene).c_str());
    std::printf("%9s %10s", "q_xyz", "DBGC");
    for (const auto& codec : baselines) {
      std::printf(" %10s", codec->name().c_str());
    }
    std::printf("   | DBGC Mbps@10fps\n");

    for (double q : bench::PaperErrorBounds()) {
      double dbgc_ratio = 0, dbgc_mbps = 0;
      std::vector<double> base_ratio(baselines.size(), 0.0);
      for (int f = 0; f < frames; ++f) {
        const PointCloud pc = bench::Frame(scene, f);
        auto c = dbgc_codec.Compress(pc, q);
        if (!c.ok()) {
          std::fprintf(stderr, "DBGC failed: %s\n",
                       c.status().ToString().c_str());
          return 1;
        }
        dbgc_ratio += CompressionRatio(pc, c.value());
        dbgc_mbps += BandwidthMbps(c.value(), 10.0);
        for (size_t b = 0; b < baselines.size(); ++b) {
          auto cb = baselines[b]->Compress(pc, q);
          if (!cb.ok()) {
            std::fprintf(stderr, "%s failed: %s\n",
                         baselines[b]->name().c_str(),
                         cb.status().ToString().c_str());
            return 1;
          }
          base_ratio[b] += CompressionRatio(pc, cb.value());
        }
      }
      std::printf("%7.2fcm %10.2f", q * 100, dbgc_ratio / frames);
      for (double r : base_ratio) std::printf(" %10.2f", r / frames);
      std::printf("   | %10.2f\n", dbgc_mbps / frames);
    }
  }
  std::printf(
      "\nExpected shape: DBGC leads on every scene; G-PCC-like is the best\n"
      "baseline; Octree_i is at or slightly below Octree; Draco trails.\n"
      "At q = 2 cm DBGC's uplink requirement sits below the 8.2 Mbps 4G\n"
      "average of Section 4.4.\n");
  return 0;
}
