// Fleet load: end-to-end latency, admission rejects, and fairness with N
// concurrent simulated sensors against one SessionManager (docs/FLEET.md).
//
//   $ ./bench/bench_fleet_load [out.json]
//
// For each fleet size N in {1, 8, 64}, N sensor threads each compress and
// submit their frames (applying every ack's advertised degradation level,
// the fleet control loop) while the server decodes on a shared pool under
// a fixed global in-flight budget. The table reports p50/p95/p99
// end-to-end latency (admission -> decode done), the rejected-frame rate,
// and the per-session fairness spread of accepted frames
// ((max - min) / mean across sessions). Results go to BENCH_fleet.json
// (run from the repo root, as scripts/check.sh does); the fleet gate
// tripwires on the N=64 reject rate and p99.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/dbgc_codec.h"
#include "net/client.h"
#include "net/session.h"

namespace {

struct Row {
  int sensors = 0;
  int frames_per_sensor = 0;
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  double reject_rate = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double fairness_spread = 0.0;
  uint64_t degraded_frames = 0;
};

double PercentileMs(std::vector<double>* seconds, double q) {
  if (seconds->empty()) return 0.0;
  std::sort(seconds->begin(), seconds->end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(seconds->size() - 1) + 0.5);
  return 1000.0 * (*seconds)[std::min(idx, seconds->size() - 1)];
}

Row RunFleet(int sensors, int frames_per_sensor,
             const std::vector<dbgc::PointCloud>& clouds,
             const dbgc::DbgcOptions& options, int workers, size_t budget) {
  dbgc::ThreadPool pool(workers);

  std::mutex latencies_mutex;
  std::vector<double> latencies;

  dbgc::FleetConfig config;
  config.pool = &pool;
  config.max_sessions = static_cast<size_t>(sensors);
  config.global_inflight_budget = budget;
  config.session_store_capacity = 4;
  config.options = options;
  config.on_frame_done = [&](const dbgc::FleetFrameReport& report) {
    if (!report.ok) return;
    std::lock_guard<std::mutex> lock(latencies_mutex);
    latencies.push_back(report.e2e_seconds);
  };
  dbgc::SessionManager fleet(config);

  std::vector<uint64_t> sids(sensors);
  for (int s = 0; s < sensors; ++s) {
    auto sid = fleet.OpenSession();
    if (!sid.ok()) {
      std::fprintf(stderr, "OpenSession failed: %s\n",
                   sid.status().ToString().c_str());
      std::exit(1);
    }
    sids[s] = sid.value();
  }

  std::atomic<uint64_t> submitted{0}, accepted{0}, rejected{0};
  std::atomic<uint64_t> degraded{0};
  // DBGC_LINT_ALLOW(R12): the N sensors are independent external clients
  // being simulated, not server work — running them on the server's pool
  // would serialize the load the bench exists to generate. All joined.
  std::vector<std::thread> sensors_threads;
  for (int s = 0; s < sensors; ++s) {
    sensors_threads.emplace_back([&, s] {
      // Each sensor owns a client: its own frame-id sequence and its own
      // degradation state, steered by the server's acks.
      dbgc::DbgcClient client(options);
      for (int f = 0; f < frames_per_sensor; ++f) {
        const dbgc::PointCloud& pc = clouds[(s + f) % clouds.size()];
        dbgc::ClientFrameReport creport;
        auto wire = client.ProcessFrame(pc, &creport);
        if (!wire.ok()) {
          std::fprintf(stderr, "compress failed: %s\n",
                       wire.status().ToString().c_str());
          std::exit(1);
        }
        if (creport.degrade != dbgc::DegradeLevel::kNone) {
          degraded.fetch_add(1);
        }
        const dbgc::FrameAck ack = fleet.SubmitFrame(sids[s], wire.value());
        submitted.fetch_add(1);
        if (ack.verdict == dbgc::AdmitVerdict::kAccepted) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);  // A live sensor drops the frame and moves on.
        }
        client.ApplyAck(ack);
      }
    });
  }
  // DBGC_LINT_ALLOW(R12): joining the simulated sensors (see above).
  for (std::thread& t : sensors_threads) t.join();
  if (!fleet.Drain().ok()) {
    std::fprintf(stderr, "Drain failed\n");
    std::exit(1);
  }

  // Fairness: spread of accepted frames across sessions.
  uint64_t min_acc = UINT64_MAX, max_acc = 0, sum_acc = 0;
  for (int s = 0; s < sensors; ++s) {
    auto stats = fleet.stats(sids[s]);
    if (!stats.ok()) std::exit(1);
    min_acc = std::min(min_acc, stats.value().accepted);
    max_acc = std::max(max_acc, stats.value().accepted);
    sum_acc += stats.value().accepted;
  }
  const double mean_acc =
      static_cast<double>(sum_acc) / static_cast<double>(sensors);

  Row row;
  row.sensors = sensors;
  row.frames_per_sensor = frames_per_sensor;
  row.submitted = submitted.load();
  row.accepted = accepted.load();
  row.rejected = rejected.load();
  row.reject_rate = row.submitted > 0 ? static_cast<double>(row.rejected) /
                                            static_cast<double>(row.submitted)
                                      : 0.0;
  row.p50_ms = PercentileMs(&latencies, 0.50);
  row.p95_ms = PercentileMs(&latencies, 0.95);
  row.p99_ms = PercentileMs(&latencies, 0.99);
  row.fairness_spread =
      mean_acc > 0 ? static_cast<double>(max_acc - min_acc) / mean_acc : 0.0;
  row.degraded_frames = degraded.load();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  const int frames_per_sensor = 3 * dbgc::bench::FramesPerConfig();
  const unsigned hw = std::thread::hardware_concurrency();
  const int workers = static_cast<int>(std::min(8u, std::max(2u, hw)));
  const size_t budget = static_cast<size_t>(2 * workers);

  dbgc::bench::Banner(
      "Fleet load: N sensors vs one SessionManager",
      "multi-session serving with admission control (docs/FLEET.md)");
  std::printf(
      "hardware_concurrency: %u, pool workers: %d, inflight budget: %zu, "
      "frames per sensor: %d\n\n",
      hw, workers, budget, frames_per_sensor);

  // A small pool of distinct frames shared by all sensors; stride keeps
  // the per-frame decode cheap so the bench stresses the serving path.
  dbgc::DbgcOptions options;
  options.min_pts_scale = 0.05;
  std::vector<dbgc::PointCloud> clouds;
  for (uint32_t f = 0; f < 4; ++f) {
    const dbgc::PointCloud full = dbgc::bench::Frame(dbgc::SceneType::kCity, f);
    dbgc::PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 16) pc.Add(full[i]);
    clouds.push_back(std::move(pc));
  }

  std::printf("%7s %9s %9s %9s %7s %9s %9s %9s %9s %9s\n", "sensors",
              "submitted", "accepted", "rejected", "rej%", "p50(ms)",
              "p95(ms)", "p99(ms)", "spread", "degraded");

  std::vector<Row> rows;
  for (const int sensors : {1, 8, 64}) {
    const Row row = RunFleet(sensors, frames_per_sensor, clouds, options,
                             workers, budget);
    std::printf(
        "%7d %9llu %9llu %9llu %6.1f%% %9.2f %9.2f %9.2f %9.3f %9llu\n",
        row.sensors, static_cast<unsigned long long>(row.submitted),
        static_cast<unsigned long long>(row.accepted),
        static_cast<unsigned long long>(row.rejected), 100.0 * row.reject_rate,
        row.p50_ms, row.p95_ms, row.p99_ms, row.fairness_spread,
        static_cast<unsigned long long>(row.degraded_frames));
    rows.push_back(row);
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"fleet_load\",\n");
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(json, "  \"pool_workers\": %d,\n", workers);
  std::fprintf(json, "  \"global_inflight_budget\": %zu,\n", budget);
  std::fprintf(json, "  \"frames_per_sensor\": %d,\n", frames_per_sensor);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        json,
        "    {\"sensors\": %d, \"submitted\": %llu, \"accepted\": %llu, "
        "\"rejected\": %llu, \"reject_rate\": %.4f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"fairness_spread\": %.4f, "
        "\"degraded_frames\": %llu}%s\n",
        r.sensors, static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.rejected), r.reject_rate, r.p50_ms,
        r.p95_ms, r.p99_ms, r.fairness_spread,
        static_cast<unsigned long long>(r.degraded_frames),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
