// Substrate micro-benchmarks on google-benchmark: entropy coding, Deflate,
// octree construction, clustering, polyline organization, and the full
// codec. These are engineering benchmarks (no paper figure); they guard
// against performance regressions in the building blocks.

#include <benchmark/benchmark.h>

#include "cluster/approx_clustering.h"
#include "cluster/cell_clustering.h"
#include "codec/octree_codec.h"
#include "core/dbgc_codec.h"
#include "common/rng.h"
#include "encoding/value_codec.h"
#include "entropy/arithmetic_coder.h"
#include "lidar/scene_generator.h"
#include "lz/deflate.h"
#include "spatial/octree.h"

namespace dbgc {
namespace {

const PointCloud& CityFrame() {
  static const PointCloud pc = SceneGenerator(SceneType::kCity).Generate(0);
  return pc;
}

void BM_ArithmeticCompress(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 100000; ++i) {
    symbols.push_back(static_cast<uint32_t>(
        std::min(rng.NextBounded(256), rng.NextBounded(256))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ArithmeticCompress(symbols, 256));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_ArithmeticCompress);

void BM_SignedValueCodec(benchmark::State& state) {
  Rng rng(2);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)) - 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SignedValueCodec::Compress(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_SignedValueCodec);

void BM_DeflateCompress(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint8_t> data;
  for (int i = 0; i < 100000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.NextBounded(12)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Deflate::Compress(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_DeflateCompress);

void BM_OctreeBuild(benchmark::State& state) {
  const PointCloud& pc = CityFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Octree::Build(pc, 0.04));
  }
  state.SetItemsProcessed(state.iterations() * pc.size());
}
BENCHMARK(BM_OctreeBuild);

void BM_CellClustering(benchmark::State& state) {
  const PointCloud& pc = CityFrame();
  const auto params = ClusteringParams::FromErrorBound(0.02, 10, 0.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CellClustering(pc, params));
  }
  state.SetItemsProcessed(state.iterations() * pc.size());
}
BENCHMARK(BM_CellClustering);

void BM_ApproxClustering(benchmark::State& state) {
  const PointCloud& pc = CityFrame();
  const auto params = ClusteringParams::FromErrorBound(0.02, 10, 0.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxClustering(pc.view(), params));
  }
  state.SetItemsProcessed(state.iterations() * pc.size());
}
BENCHMARK(BM_ApproxClustering);

void BM_OctreeCodecCompress(benchmark::State& state) {
  const PointCloud& pc = CityFrame();
  const OctreeCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Compress(pc, 0.02));
  }
  state.SetItemsProcessed(state.iterations() * pc.size());
}
BENCHMARK(BM_OctreeCodecCompress);

void BM_DbgcCompress(benchmark::State& state) {
  const PointCloud& pc = CityFrame();
  const DbgcCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Compress(pc, 0.02));
  }
  state.SetItemsProcessed(state.iterations() * pc.size());
}
BENCHMARK(BM_DbgcCompress);

void BM_DbgcDecompress(benchmark::State& state) {
  const PointCloud& pc = CityFrame();
  const DbgcCodec codec;
  const ByteBuffer compressed = codec.Compress(pc, 0.02).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decompress(compressed));
  }
  state.SetItemsProcessed(state.iterations() * pc.size());
}
BENCHMARK(BM_DbgcDecompress);

}  // namespace
}  // namespace dbgc

BENCHMARK_MAIN();
