// Observability overhead + registry snapshot (docs/OBSERVABILITY.md).
//
//   $ ./bench/bench_obs_overhead [out.json]
//
// Two measurements back the "near-zero overhead" contract:
//
//   1. Instrument micro-costs: ns per Counter::Add and per
//      Histogram::Observe in a tight loop — the hot-path primitives every
//      wired call site pays. Under -DDBGC_OBS_OFF both compile to nothing
//      and the loop times the empty stubs.
//   2. End-to-end encode/decode wall time for all eight registered codecs
//      over the same frames, which is how a stage-span regression would
//      actually surface.
//
// scripts/check.sh runs this binary from both the default build and the
// DBGC_OBS_OFF build and compares the JSON (default BENCH_obs.json; the
// OBS_OFF gate writes BENCH_obs_off.json next to it). The file also embeds
// the full MetricsRegistry::ToJson() snapshot, so one bench run leaves a
// machine-readable record of every per-codec and per-stage series.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codec/codec.h"
#include "codec/range_image_codec.h"
#include "codec/raw_codec.h"
#include "core/dbgc_codec.h"
#include "core/stream_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

// DBGC tuned like the conformance harness: bench frames are subsampled,
// so the density threshold scales down with them.
dbgc::DbgcOptions BenchDbgcOptions() {
  dbgc::DbgcOptions options;
  options.min_pts_scale = 0.05;
  return options;
}

// One-frame stream container behind the codec interface, so the eighth
// registered codec (the stream framing) shows up in the snapshot too.
class StreamFrameCodec : public dbgc::GeometryCodec {
 public:
  std::string name() const override { return "Stream"; }

 protected:
  dbgc::Result<dbgc::ByteBuffer> CompressImpl(
      const dbgc::PointCloud& pc,
      const dbgc::CompressParams& params) const override {
    dbgc::DbgcOptions options = BenchDbgcOptions();
    options.q_xyz = params.q_xyz;
    dbgc::DbgcStreamWriter writer(options);
    DBGC_ASSIGN_OR_RETURN(size_t bytes, writer.AddFrame(pc));
    (void)bytes;
    return writer.Finish();
  }

  dbgc::Result<dbgc::PointCloud> DecompressImpl(
      const dbgc::ByteBuffer& buffer,
      const dbgc::DecompressParams& params) const override {
    (void)params;
    DBGC_ASSIGN_OR_RETURN(dbgc::DbgcStreamReader reader,
                          dbgc::DbgcStreamReader::Open(buffer));
    return reader.ReadFrame(0);
  }
};

// The eight codecs of the conformance registry (tests/harness), rebuilt
// here because the harness itself is test-only.
std::vector<std::unique_ptr<dbgc::GeometryCodec>> AllCodecs() {
  std::vector<std::unique_ptr<dbgc::GeometryCodec>> codecs;
  codecs.push_back(std::make_unique<dbgc::DbgcCodec>(BenchDbgcOptions()));
  for (auto& baseline : dbgc::MakeBaselineCodecs()) {
    codecs.push_back(std::move(baseline));
  }
  codecs.push_back(std::make_unique<dbgc::RangeImageCodec>());
  codecs.push_back(std::make_unique<dbgc::RawCodec>());
  codecs.push_back(std::make_unique<StreamFrameCodec>());
  return codecs;
}

struct CodecRow {
  std::string name;
  size_t compressed_bytes = 0;
  double encode_ms = 0;
  double decode_ms = 0;
};

// ns per op over `iters` instrument calls.
template <typename Fn>
double NanosPerOp(size_t iters, Fn&& fn) {
  const double seconds = dbgc::bench::TimeSeconds([&] {
    for (size_t i = 0; i < iters; ++i) fn(i);
  });
  return seconds * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  dbgc::bench::Banner(
      "Observability overhead & metrics snapshot",
      "near-zero-overhead contract, docs/OBSERVABILITY.md");
  std::printf("observability compiled %s\n",
              dbgc::obs::kEnabled ? "ON" : "OFF (DBGC_OBS_OFF)");

  // --- 1. Instrument micro-costs. ---
  dbgc::obs::MetricsRegistry& registry = dbgc::obs::MetricsRegistry::Global();
  dbgc::obs::Counter* counter = registry.GetCounter("bench_obs_counter");
  dbgc::obs::Histogram* histogram =
      registry.GetHistogram("bench_obs_histogram");
  constexpr size_t kIters = 10 * 1000 * 1000;
  const double counter_ns =
      NanosPerOp(kIters, [&](size_t i) { counter->Add(i & 1); });
  const double observe_ns = NanosPerOp(kIters, [&](size_t i) {
    histogram->Observe(static_cast<double>(i & 1023) * 1e-6);
  });
  std::printf("counter add:        %7.2f ns/op\n", counter_ns);
  std::printf("histogram observe:  %7.2f ns/op\n", observe_ns);

  // --- 2. End-to-end per-codec encode/decode with spans live. ---
  const int num_frames = dbgc::bench::FramesPerConfig();
  std::vector<dbgc::PointCloud> frames;
  for (int f = 0; f < num_frames; ++f) {
    const dbgc::PointCloud full = dbgc::bench::Frame(
        dbgc::SceneType::kUrban, static_cast<uint32_t>(f));
    dbgc::PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 4) pc.Add(full[i]);
    frames.push_back(std::move(pc));
  }

  std::printf("\n%-14s %12s %11s %11s\n", "codec", "bytes/frame",
              "encode ms", "decode ms");
  std::vector<CodecRow> rows;
  for (const auto& codec : AllCodecs()) {
    CodecRow row;
    row.name = codec->name();
    for (const dbgc::PointCloud& pc : frames) {
      dbgc::obs::FrameTrace trace;  // Collects this frame's stage split.
      dbgc::Result<dbgc::ByteBuffer> compressed = dbgc::ByteBuffer();
      row.encode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
        compressed = codec->Compress(pc, 0.02);
      });
      if (!compressed.ok()) {
        std::fprintf(stderr, "%s: compress failed: %s\n", row.name.c_str(),
                     compressed.status().ToString().c_str());
        return 1;
      }
      row.compressed_bytes += compressed.value().size();
      dbgc::Result<dbgc::PointCloud> decoded = dbgc::PointCloud();
      row.decode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
        decoded = codec->Decompress(compressed.value());
      });
      if (!decoded.ok()) {
        std::fprintf(stderr, "%s: decompress failed: %s\n", row.name.c_str(),
                     decoded.status().ToString().c_str());
        return 1;
      }
    }
    row.encode_ms /= num_frames;
    row.decode_ms /= num_frames;
    row.compressed_bytes /= static_cast<size_t>(num_frames);
    std::printf("%-14s %12zu %11.2f %11.2f\n", row.name.c_str(),
                row.compressed_bytes, row.encode_ms, row.decode_ms);
    rows.push_back(std::move(row));
  }

  // --- JSON: bench rows + the full registry snapshot. ---
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"obs_overhead\",\n");
  std::fprintf(json, "  \"obs_enabled\": %s,\n",
               dbgc::obs::kEnabled ? "true" : "false");
  std::fprintf(json, "  \"frames_per_config\": %d,\n", num_frames);
  std::fprintf(json, "  \"counter_add_ns\": %.3f,\n", counter_ns);
  std::fprintf(json, "  \"histogram_observe_ns\": %.3f,\n", observe_ns);
  std::fprintf(json, "  \"codecs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const CodecRow& r = rows[i];
    std::fprintf(json,
                 "    {\"codec\": \"%s\", \"bytes_per_frame\": %zu, "
                 "\"encode_ms\": %.3f, \"decode_ms\": %.3f}%s\n",
                 r.name.c_str(), r.compressed_bytes, r.encode_ms, r.decode_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"metrics\": ");
  const std::string snapshot = registry.ToJson();
  std::fwrite(snapshot.data(), 1, snapshot.size(), json);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
