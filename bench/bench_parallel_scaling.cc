// Intra-frame parallel scaling: encode wall-clock versus thread budget.
//
//   $ ./bench/bench_parallel_scaling [out.json]
//
// For each scene tier the DBGC encoder runs with thread budgets 1, 2, 4
// and 8 on a shared pool (CompressParams::pool / max_threads,
// docs/PARALLELISM.md) and the table reports encode ms and speedup over
// the serial run. Every parallel bitstream is checked byte-identical to
// the serial one before its timing counts. Results are also written as
// JSON (default BENCH_parallel.json in the working directory — run from
// the repo root, as scripts/check.sh does) together with
// hardware_concurrency, because speedup is only meaningful relative to
// the cores actually present: on a 1-core host every budget degenerates
// to the caller thread and speedup ~1.0 is the honest result.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "codec/codec.h"
#include "common/thread_pool.h"
#include "core/dbgc_codec.h"

namespace {

struct Tier {
  const char* name;
  dbgc::SceneType scene;
  size_t stride;  // Subsampling stride: 1 = full frame.
};

struct Row {
  std::string tier;
  size_t points = 0;
  int threads = 1;
  double encode_ms = 0;
  double speedup = 1.0;
};

double EncodeMs(const dbgc::DbgcCodec& codec,
                const std::vector<dbgc::PointCloud>& frames,
                const dbgc::CompressParams& params,
                const std::vector<dbgc::ByteBuffer>* reference,
                std::vector<dbgc::ByteBuffer>* out) {
  double total = 0;
  for (size_t f = 0; f < frames.size(); ++f) {
    dbgc::Result<dbgc::ByteBuffer> compressed = dbgc::ByteBuffer();
    total += dbgc::bench::TimeSeconds(
        [&] { compressed = codec.Compress(frames[f], params); });
    if (!compressed.ok()) {
      std::fprintf(stderr, "compress failed: %s\n",
                   compressed.status().ToString().c_str());
      std::exit(1);
    }
    if (reference != nullptr &&
        !(compressed.value() == (*reference)[f])) {
      std::fprintf(stderr,
                   "BITSTREAM MISMATCH at %d threads, frame %zu: parallel "
                   "encode must be byte-identical (docs/PARALLELISM.md)\n",
                   params.max_threads, f);
      std::exit(1);
    }
    if (out != nullptr) out->push_back(std::move(compressed).value());
  }
  return 1000.0 * total / static_cast<double>(frames.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const int frames_per_config = dbgc::bench::FramesPerConfig();
  const unsigned hw = std::thread::hardware_concurrency();

  dbgc::bench::Banner("Parallel scaling: encode time vs thread budget",
                      "intra-frame parallel DBGC (docs/PARALLELISM.md)");
  std::printf("hardware_concurrency: %u, frames per config: %d\n\n", hw,
              frames_per_config);
  std::printf("%-10s %9s %8s %11s %8s\n", "tier", "points", "threads",
              "encode(ms)", "speedup");

  const std::vector<Tier> tiers = {
      {"city-s", dbgc::SceneType::kCity, 8},
      {"campus-m", dbgc::SceneType::kCampus, 2},
      {"urban-l", dbgc::SceneType::kUrban, 1},
  };
  const std::vector<int> budgets = {1, 2, 4, 8};

  const dbgc::DbgcOptions options;
  const dbgc::DbgcCodec codec(options);
  std::vector<Row> rows;

  for (const Tier& tier : tiers) {
    std::vector<dbgc::PointCloud> frames;
    size_t points = 0;
    for (int f = 0; f < frames_per_config; ++f) {
      const dbgc::PointCloud full =
          dbgc::bench::Frame(tier.scene, static_cast<uint32_t>(f));
      dbgc::PointCloud pc;
      for (size_t i = 0; i < full.size(); i += tier.stride) pc.Add(full[i]);
      points = pc.size();
      frames.push_back(std::move(pc));
    }

    // Serial baseline: no pool at all, the exact single-threaded path.
    dbgc::CompressParams serial;
    serial.q_xyz = options.q_xyz;
    std::vector<dbgc::ByteBuffer> reference;
    const double serial_ms =
        EncodeMs(codec, frames, serial, nullptr, &reference);

    for (const int budget : budgets) {
      double ms = serial_ms;
      if (budget > 1) {
        dbgc::ThreadPool pool(budget);
        dbgc::CompressParams params;
        params.q_xyz = options.q_xyz;
        params.pool = &pool;
        params.max_threads = budget;
        ms = EncodeMs(codec, frames, params, &reference, nullptr);
      }
      Row row;
      row.tier = tier.name;
      row.points = points;
      row.threads = budget;
      row.encode_ms = ms;
      row.speedup = ms > 0 ? serial_ms / ms : 1.0;
      std::printf("%-10s %9zu %8d %11.2f %7.2fx\n", row.tier.c_str(),
                  row.points, row.threads, row.encode_ms, row.speedup);
      rows.push_back(std::move(row));
    }
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(json, "  \"frames_per_config\": %d,\n", frames_per_config);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"tier\": \"%s\", \"points\": %zu, \"threads\": %d, "
                 "\"encode_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 r.tier.c_str(), r.points, r.threads, r.encode_ms, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
