// The image-based related work (Section 2.2): range-image compression
// achieves strong ratios but "bears a low compression accuracy in
// comparison with the calibrated point cloud". This bench quantifies that
// trade-off against DBGC at the same nominal bound - the reason the paper
// builds a point-wise scheme instead.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "codec/codec.h"
#include "codec/range_image_codec.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"

using namespace dbgc;

int main() {
  bench::Banner("Range-image codec vs DBGC: ratio and accuracy",
                "Section 2.2 (image-based related work trade-off)");

  const double q = 0.02;
  const DbgcCodec dbgc_codec;
  const RangeImageCodec range_codec;
  const int frames = bench::FramesPerConfig();

  std::printf("%-12s %12s %12s %14s %14s %12s\n", "scene", "DBGC ratio",
              "RI ratio", "DBGC err(m)", "RI err(m)", "RI |PC'|/|PC|");
  for (SceneType scene : AllSceneTypes()) {
    double dbgc_ratio = 0, ri_ratio = 0, dbgc_err = 0, ri_err = 0,
           ri_count = 0;
    for (int f = 0; f < frames; ++f) {
      const PointCloud pc = bench::Frame(scene, f);
      auto cd = dbgc_codec.Compress(pc, q);
      auto cr = range_codec.Compress(pc, q);
      if (!cd.ok() || !cr.ok()) return 1;
      auto dd = dbgc_codec.Decompress(cd.value());
      auto dr = range_codec.Decompress(cr.value());
      if (!dd.ok() || !dr.ok()) return 1;
      dbgc_ratio += CompressionRatio(pc, cd.value());
      ri_ratio += CompressionRatio(pc, cr.value());
      dbgc_err += NearestNeighborError(pc, dd.value()).max_euclidean;
      ri_err += NearestNeighborError(pc, dr.value()).max_euclidean;
      ri_count += static_cast<double>(dr.value().size()) / pc.size();
    }
    std::printf("%-12s %12.2f %12.2f %14.4f %14.4f %12.3f\n",
                SceneTypeName(scene).c_str(), dbgc_ratio / frames,
                ri_ratio / frames, dbgc_err / frames, ri_err / frames,
                ri_count / frames);
  }
  std::printf(
      "\nExpected shape: the range image compresses well but its maximum\n"
      "error blows through the sqrt(3)*q = %.4f m guarantee DBGC holds,\n"
      "and it does not return one point per input point.\n",
      std::sqrt(3.0) * q);
  return 0;
}
