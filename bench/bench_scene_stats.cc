// Scene characterization: the data properties behind Figure 1 (the
// "spider web" xoy projection with radially decaying density) and Figure 5
// (near-grid regularity in (theta, phi) space with calibration
// perturbations and missing samples). This bench validates that the
// synthetic data substitution preserves the statistics the codecs key on
// (see DESIGN.md, substitutions).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/approx_clustering.h"
#include "cluster/clustering_types.h"
#include "lidar/spherical.h"

using namespace dbgc;

int main() {
  bench::Banner("Scene statistics: density falloff and scan regularity",
                "Figures 1 and 5 (data characterization)");

  const SensorMetadata sensor = SensorMetadata::VelodyneHdl64e();
  const double u_phi = sensor.PolarStep();
  const double u_theta = sensor.AzimuthStep();

  std::printf("%-12s %8s %25s %22s %12s\n", "scene", "points",
              "density ratio (5m/20m/60m)", "on-ring phi fraction",
              "dense pct");
  for (SceneType scene : AllSceneTypes()) {
    const PointCloud pc = bench::Frame(scene, 0);

    // Radial density (points per m^3 inside concentric spheres).
    auto density = [&](double radius) {
      size_t count = 0;
      for (const Point3& p : pc) count += p.Norm() <= radius ? 1 : 0;
      return count / (4.0 / 3.0 * M_PI * radius * radius * radius);
    };
    const double d5 = density(5), d20 = density(20), d60 = density(60);

    // Figure 5 regularity: fraction of points whose polar angle sits close
    // to a sampling-ring center, and mean azimuthal step along rings.
    size_t on_ring = 0;
    for (const Point3& p : pc) {
      const SphericalPoint s = CartesianToSpherical(p);
      const double ring_pos = (sensor.phi_max - s.phi) / u_phi - 0.5;
      if (std::fabs(ring_pos - std::round(ring_pos)) < 0.25) ++on_ring;
    }

    // Density-based dense fraction at the default parameters.
    const auto params = ClusteringParams::FromErrorBound(0.02, 10, 0.10);
    const ClusteringResult clusters = ApproxClustering(pc.view(), params);

    std::printf("%-12s %8zu %9.1f /%6.2f /%6.3f %21.1f%% %11.1f%%\n",
                SceneTypeName(scene).c_str(), pc.size(), d5, d20, d60,
                100.0 * on_ring / pc.size(),
                100.0 * clusters.NumDense() / pc.size());
  }
  std::printf(
      "\nExpected shape: density falls by orders of magnitude from 5 m to\n"
      "60 m (the Figure 1 spider web); most points lie near a sampling\n"
      "ring (the Figure 5 regular-but-not-grid property; u_theta = %.4f\n"
      "rad, u_phi = %.4f rad); the paper reports ~40%% dense points.\n",
      u_theta, u_phi);
  return 0;
}
