// Table 2: outlier compression alternatives on the four KITTI scenes at
// q = 2 cm. "Outlier" is DBGC's quadtree + delta-coded z scheme, "Octree"
// compresses the outliers with a 3D octree, and "None" stores them raw.
//
// Paper's shape: Outlier slightly above Octree, both far above None.

#include <cstdio>

#include "bench_util.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"

using namespace dbgc;

int main() {
  bench::Banner("Outlier compression alternatives", "Table 2");

  const double q = 0.02;
  const int frames = bench::FramesPerConfig();
  const SceneType scenes[] = {SceneType::kCampus, SceneType::kCity,
                              SceneType::kResidential, SceneType::kRoad};
  struct Variant {
    const char* label;
    OutlierMode mode;
  };
  const Variant variants[] = {{"Outlier", OutlierMode::kQuadtree},
                              {"Octree", OutlierMode::kOctree},
                              {"None", OutlierMode::kNone}};

  std::printf("%9s", "Scheme");
  for (SceneType s : scenes) std::printf(" %12s", SceneTypeName(s).c_str());
  std::printf("\n");

  for (const Variant& v : variants) {
    DbgcOptions options;
    options.outlier_mode = v.mode;
    const DbgcCodec codec(options);
    std::printf("%9s", v.label);
    for (SceneType s : scenes) {
      double ratio = 0;
      for (int f = 0; f < frames; ++f) {
        const PointCloud pc = bench::Frame(s, f);
        auto c = codec.Compress(pc, q);
        if (!c.ok()) {
          std::fprintf(stderr, "compress failed: %s\n",
                       c.status().ToString().c_str());
          return 1;
        }
        ratio += CompressionRatio(pc, c.value());
      }
      std::printf(" %12.2f", ratio / frames);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: the quadtree scheme ('Outlier') edges out the 3D\n"
      "octree; leaving outliers uncompressed ('None') costs the most.\n");
  return 0;
}
