// Temporal I/P streaming vs per-frame intra coding (docs/TEMPORAL.md).
//
//   $ ./bench/bench_temporal [out.json]
//
// The tentpole claim of the temporal codec is that on a coherent drive
// (one static world, ego moving through it) the inter-frame axis buys
// real bits: ego-motion-compensated P-frames cost a fraction of an
// intra-coded frame, so stream bpp drops as the keyframe interval grows.
// This bench pins that claim: it generates a pose-stamped drive per scene,
// encodes it (a) frame-by-frame with the intra DBGC codec and (b) through
// the TemporalEncoder at keyframe intervals {2, 4, 8}, decodes every
// stream back, and additionally replays each interval-4 stream with one
// P-frame dropped to confirm the loss-recovery contract on real packets:
// fail closed until the next keyframe, then byte-identical clouds again.
// The summary ratio feeds the scripts/check.sh temporal tripwire
// (temporal bpp must stay strictly below intra bpp).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bitio/byte_buffer.h"
#include "codec/codec.h"
#include "core/dbgc_codec.h"
#include "core/temporal_codec.h"
#include "lidar/scene_generator.h"
#include "lidar/sensor_model.h"

namespace {

using dbgc::ByteBuffer;
using dbgc::PointCloud;

struct IntervalRow {
  int keyframe_interval = 0;
  double bpp = 0.0;
  double i_bytes_per_frame = 0.0;  // Mean keyframe packet size.
  double p_bytes_per_frame = 0.0;  // Mean predicted packet size.
  double encode_ms = 0.0;          // Mean per frame.
  double decode_ms = 0.0;          // Mean per frame.
};

struct SceneRow {
  std::string name;
  size_t points_per_frame = 0;
  double intra_bpp = 0.0;
  double intra_encode_ms = 0.0;
  double intra_decode_ms = 0.0;
  std::vector<IntervalRow> intervals;
};

bool SameCloud(const PointCloud& a, const PointCloud& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_temporal.json";
  dbgc::bench::Banner(
      "Temporal I/P streaming vs per-frame intra coding",
      "inter-frame extension of the streaming path, docs/TEMPORAL.md");

  // Enough frames for a few interval-8 GOPs while staying CI-sized;
  // DBGC_BENCH_FRAMES scales the drive length.
  const int num_frames = 8 + 4 * dbgc::bench::FramesPerConfig();
  const dbgc::SensorMetadata sensor = dbgc::SensorMetadata::VelodyneHdl64e();
  const std::vector<int> kIntervals = {2, 4, 8};
  const dbgc::DbgcOptions options;
  const dbgc::DbgcCodec intra_codec(options);

  std::vector<SceneRow> rows;
  bool loss_recovery_ok = true;
  for (const dbgc::SceneType scene :
       {dbgc::SceneType::kCity, dbgc::SceneType::kUrban}) {
    SceneRow row;
    row.name = dbgc::SceneTypeName(scene);
    const std::vector<dbgc::StreamFrame> drive =
        dbgc::SceneGenerator(scene).GenerateSequence(
            static_cast<size_t>(num_frames), dbgc::SequenceConfig(), sensor);
    size_t total_points = 0;
    for (const dbgc::StreamFrame& frame : drive) {
      total_points += frame.cloud.size();
    }
    row.points_per_frame = total_points / drive.size();

    // (a) The intra-only baseline: every frame is an independent DBGC
    // bitstream, exactly what the pre-temporal streaming path shipped.
    size_t intra_bytes = 0;
    for (const dbgc::StreamFrame& frame : drive) {
      dbgc::Result<ByteBuffer> compressed = ByteBuffer();
      row.intra_encode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
        compressed = intra_codec.Compress(frame.cloud, options.q_xyz);
      });
      if (!compressed.ok()) {
        std::fprintf(stderr, "%s: intra compress failed: %s\n",
                     row.name.c_str(),
                     compressed.status().ToString().c_str());
        return 1;
      }
      intra_bytes += compressed.value().size();
      dbgc::Result<PointCloud> decoded = PointCloud();
      row.intra_decode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
        decoded = intra_codec.Decompress(compressed.value());
      });
      if (!decoded.ok()) {
        std::fprintf(stderr, "%s: intra decompress failed\n",
                     row.name.c_str());
        return 1;
      }
    }
    row.intra_bpp = 8.0 * static_cast<double>(intra_bytes) /
                    static_cast<double>(total_points);
    row.intra_encode_ms /= drive.size();
    row.intra_decode_ms /= drive.size();

    // (b) The temporal stream at each keyframe interval.
    for (const int interval : kIntervals) {
      dbgc::TemporalConfig config;
      config.keyframe_interval = interval;
      config.sensor = sensor;
      config.intra_options = options;
      dbgc::TemporalEncoder encoder(config);
      dbgc::TemporalDecoder decoder(options, /*count_decode_errors=*/false);
      IntervalRow out;
      out.keyframe_interval = interval;
      std::vector<ByteBuffer> packets;
      size_t total_bytes = 0, i_frames = 0, p_frames = 0;
      for (const dbgc::StreamFrame& frame : drive) {
        dbgc::Result<ByteBuffer> packet = ByteBuffer();
        out.encode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
          packet = encoder.EncodeFrame(frame.cloud, frame.pose);
        });
        if (!packet.ok()) {
          std::fprintf(stderr, "%s: temporal encode failed: %s\n",
                       row.name.c_str(), packet.status().ToString().c_str());
          return 1;
        }
        const ByteBuffer& bytes = packet.value();
        total_bytes += bytes.size();
        if (bytes[0] == dbgc::kTemporalFrameIntra) {
          out.i_bytes_per_frame += static_cast<double>(bytes.size());
          ++i_frames;
        } else {
          out.p_bytes_per_frame += static_cast<double>(bytes.size());
          ++p_frames;
        }
        dbgc::Result<PointCloud> decoded = PointCloud();
        out.decode_ms += 1e3 * dbgc::bench::TimeSeconds([&] {
          decoded = decoder.DecodeFrame(bytes);
        });
        if (!decoded.ok()) {
          std::fprintf(stderr, "%s: temporal decode failed: %s\n",
                       row.name.c_str(), decoded.status().ToString().c_str());
          return 1;
        }
        packets.push_back(std::move(packet).value());
      }
      out.bpp = 8.0 * static_cast<double>(total_bytes) /
                static_cast<double>(total_points);
      if (i_frames > 0) out.i_bytes_per_frame /= static_cast<double>(i_frames);
      if (p_frames > 0) out.p_bytes_per_frame /= static_cast<double>(p_frames);
      out.encode_ms /= drive.size();
      out.decode_ms /= drive.size();
      row.intervals.push_back(out);

      // Loss-recovery replay on the interval-4 stream: drop the first
      // P-frame, require fail-closed decodes until the next keyframe and
      // byte-identical clouds from there on (vs a lossless replay).
      if (interval == 4 && packets.size() > 5) {
        dbgc::TemporalDecoder lossless(options, false);
        dbgc::TemporalDecoder lossy(options, false);
        for (size_t i = 0; i < packets.size(); ++i) {
          dbgc::Result<PointCloud> ref = lossless.DecodeFrame(packets[i]);
          if (!ref.ok()) loss_recovery_ok = false;
          if (i == 1) continue;  // The modeled loss.
          dbgc::Result<PointCloud> got = lossy.DecodeFrame(packets[i]);
          const bool is_key = packets[i][0] == dbgc::kTemporalFrameIntra;
          const bool resynced = i < 1 || i >= 4;  // Next keyframe at 4.
          if (resynced || is_key) {
            if (!got.ok() || !ref.ok() ||
                !SameCloud(got.value(), ref.value())) {
              loss_recovery_ok = false;
            }
          } else if (got.ok()) {
            loss_recovery_ok = false;  // Must fail closed, not guess.
          }
        }
      }
    }
    rows.push_back(std::move(row));
  }

  double intra_bpp_mean = 0.0, best_bpp_mean = 0.0;
  std::printf("\n%-12s %10s | %s\n", "scene", "intra bpp",
              "temporal bpp at keyframe interval 2 / 4 / 8");
  for (const SceneRow& row : rows) {
    std::printf("%-12s %10.3f |", row.name.c_str(), row.intra_bpp);
    for (const IntervalRow& iv : row.intervals) {
      std::printf(" %8.3f", iv.bpp);
    }
    std::printf("\n");
    intra_bpp_mean += row.intra_bpp / rows.size();
    best_bpp_mean += row.intervals.back().bpp / rows.size();
  }
  const double ratio =
      intra_bpp_mean > 0 ? best_bpp_mean / intra_bpp_mean : 1.0;
  std::printf("\nmean intra bpp:            %.3f\n", intra_bpp_mean);
  std::printf("mean temporal bpp (key=8): %.3f\n", best_bpp_mean);
  std::printf("temporal/intra ratio:      %.4f\n", ratio);
  std::printf("loss recovery (drop one P, resync at next I): %s\n",
              loss_recovery_ok ? "byte-identical" : "FAILED");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"temporal\",\n");
  std::fprintf(json, "  \"frames_per_scene\": %d,\n", num_frames);
  std::fprintf(json, "  \"scenes\": [\n");
  for (size_t s = 0; s < rows.size(); ++s) {
    const SceneRow& row = rows[s];
    std::fprintf(json,
                 "    {\"scene\": \"%s\", \"points_per_frame\": %zu,\n"
                 "     \"intra_bpp\": %.4f, \"intra_encode_ms\": %.3f, "
                 "\"intra_decode_ms\": %.3f,\n     \"intervals\": [\n",
                 row.name.c_str(), row.points_per_frame, row.intra_bpp,
                 row.intra_encode_ms, row.intra_decode_ms);
    for (size_t i = 0; i < row.intervals.size(); ++i) {
      const IntervalRow& iv = row.intervals[i];
      std::fprintf(json,
                   "      {\"keyframe_interval\": %d, \"bpp\": %.4f, "
                   "\"i_bytes_per_frame\": %.1f, \"p_bytes_per_frame\": %.1f, "
                   "\"encode_ms\": %.3f, \"decode_ms\": %.3f}%s\n",
                   iv.keyframe_interval, iv.bpp, iv.i_bytes_per_frame,
                   iv.p_bytes_per_frame, iv.encode_ms, iv.decode_ms,
                   i + 1 < row.intervals.size() ? "," : "");
    }
    std::fprintf(json, "     ]}%s\n", s + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"intra_bpp_mean\": %.4f,\n", intra_bpp_mean);
  std::fprintf(json, "  \"temporal_bpp_mean\": %.4f,\n", best_bpp_mean);
  std::fprintf(json, "  \"temporal_over_intra_bpp\": %.4f,\n", ratio);
  std::fprintf(json, "  \"loss_recovery_byte_identical\": %s\n",
               loss_recovery_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return loss_recovery_ok && ratio < 1.0 ? 0 : 1;
}
