// Shared helpers for the benchmark harness: frame generation, timing, and
// table printing. Every bench binary regenerates one table or figure of the
// paper's evaluation (see DESIGN.md's experiment index) and prints the same
// rows/series the paper reports.

#ifndef DBGC_BENCH_BENCH_UTIL_H_
#define DBGC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/point_cloud.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace bench {

/// Number of frames averaged per configuration; override with
/// DBGC_BENCH_FRAMES for quicker or more thorough runs.
inline int FramesPerConfig() {
  const char* env = std::getenv("DBGC_BENCH_FRAMES");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2;
}

/// The error bounds of the paper's sweeps: 0.06 cm to 2.0 cm.
inline std::vector<double> PaperErrorBounds() {
  return {0.0006, 0.002, 0.005, 0.01, 0.02};
}

/// Generates frame `index` of a scene with the default sensor.
inline PointCloud Frame(SceneType type, uint32_t index) {
  return SceneGenerator(type).Generate(index);
}

/// Wall-clock seconds of one call.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Prints a header banner for one experiment.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace dbgc

#endif  // DBGC_BENCH_BENCH_UTIL_H_
