file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering.dir/bench/bench_clustering.cc.o"
  "CMakeFiles/bench_clustering.dir/bench/bench_clustering.cc.o.d"
  "bench/bench_clustering"
  "bench/bench_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
