file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_system.dir/bench/bench_e2e_system.cc.o"
  "CMakeFiles/bench_e2e_system.dir/bench/bench_e2e_system.cc.o.d"
  "bench/bench_e2e_system"
  "bench/bench_e2e_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
