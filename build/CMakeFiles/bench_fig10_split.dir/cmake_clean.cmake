file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_split.dir/bench/bench_fig10_split.cc.o"
  "CMakeFiles/bench_fig10_split.dir/bench/bench_fig10_split.cc.o.d"
  "bench/bench_fig10_split"
  "bench/bench_fig10_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
