file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ratio.dir/bench/bench_fig9_ratio.cc.o"
  "CMakeFiles/bench_fig9_ratio.dir/bench/bench_fig9_ratio.cc.o.d"
  "bench/bench_fig9_ratio"
  "bench/bench_fig9_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
