# Empty dependencies file for bench_fig9_ratio.
# This may be replaced when dependencies are built.
