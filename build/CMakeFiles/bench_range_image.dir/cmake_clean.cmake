file(REMOVE_RECURSE
  "CMakeFiles/bench_range_image.dir/bench/bench_range_image.cc.o"
  "CMakeFiles/bench_range_image.dir/bench/bench_range_image.cc.o.d"
  "bench/bench_range_image"
  "bench/bench_range_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
