# Empty dependencies file for bench_range_image.
# This may be replaced when dependencies are built.
