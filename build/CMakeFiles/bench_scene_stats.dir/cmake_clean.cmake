file(REMOVE_RECURSE
  "CMakeFiles/bench_scene_stats.dir/bench/bench_scene_stats.cc.o"
  "CMakeFiles/bench_scene_stats.dir/bench/bench_scene_stats.cc.o.d"
  "bench/bench_scene_stats"
  "bench/bench_scene_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scene_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
