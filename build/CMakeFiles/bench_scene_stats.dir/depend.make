# Empty dependencies file for bench_scene_stats.
# This may be replaced when dependencies are built.
