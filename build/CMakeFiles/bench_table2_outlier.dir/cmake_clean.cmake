file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_outlier.dir/bench/bench_table2_outlier.cc.o"
  "CMakeFiles/bench_table2_outlier.dir/bench/bench_table2_outlier.cc.o.d"
  "bench/bench_table2_outlier"
  "bench/bench_table2_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
