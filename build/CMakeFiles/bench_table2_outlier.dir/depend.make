# Empty dependencies file for bench_table2_outlier.
# This may be replaced when dependencies are built.
