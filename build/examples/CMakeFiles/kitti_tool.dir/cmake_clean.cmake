file(REMOVE_RECURSE
  "CMakeFiles/kitti_tool.dir/kitti_tool.cpp.o"
  "CMakeFiles/kitti_tool.dir/kitti_tool.cpp.o.d"
  "kitti_tool"
  "kitti_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kitti_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
