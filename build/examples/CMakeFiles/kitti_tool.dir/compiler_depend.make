# Empty compiler generated dependencies file for kitti_tool.
# This may be replaced when dependencies are built.
