file(REMOVE_RECURSE
  "CMakeFiles/scene_survey.dir/scene_survey.cpp.o"
  "CMakeFiles/scene_survey.dir/scene_survey.cpp.o.d"
  "scene_survey"
  "scene_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
