# Empty compiler generated dependencies file for scene_survey.
# This may be replaced when dependencies are built.
