file(REMOVE_RECURSE
  "CMakeFiles/stream_archive.dir/stream_archive.cpp.o"
  "CMakeFiles/stream_archive.dir/stream_archive.cpp.o.d"
  "stream_archive"
  "stream_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
