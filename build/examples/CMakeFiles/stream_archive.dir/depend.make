# Empty dependencies file for stream_archive.
# This may be replaced when dependencies are built.
