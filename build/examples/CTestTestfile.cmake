# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "slow" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_sensor "/root/repo/build/examples/streaming_sensor" "2")
set_tests_properties(example_streaming_sensor PROPERTIES  LABELS "slow" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scene_survey "/root/repo/build/examples/scene_survey")
set_tests_properties(example_scene_survey PROPERTIES  LABELS "slow" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_archive "/root/repo/build/examples/stream_archive" "2")
set_tests_properties(example_stream_archive PROPERTIES  LABELS "slow" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kitti_tool "/root/repo/build/examples/kitti_tool" "generate" "/root/repo/build/examples/smoke.bin")
set_tests_properties(example_kitti_tool PROPERTIES  LABELS "slow" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
