
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitio/bit_reader.cc" "src/CMakeFiles/dbgc.dir/bitio/bit_reader.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/bitio/bit_reader.cc.o.d"
  "/root/repo/src/bitio/bit_writer.cc" "src/CMakeFiles/dbgc.dir/bitio/bit_writer.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/bitio/bit_writer.cc.o.d"
  "/root/repo/src/bitio/byte_buffer.cc" "src/CMakeFiles/dbgc.dir/bitio/byte_buffer.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/bitio/byte_buffer.cc.o.d"
  "/root/repo/src/bitio/varint.cc" "src/CMakeFiles/dbgc.dir/bitio/varint.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/bitio/varint.cc.o.d"
  "/root/repo/src/cluster/approx_clustering.cc" "src/CMakeFiles/dbgc.dir/cluster/approx_clustering.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/cluster/approx_clustering.cc.o.d"
  "/root/repo/src/cluster/cell_clustering.cc" "src/CMakeFiles/dbgc.dir/cluster/cell_clustering.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/cluster/cell_clustering.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/dbgc.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/codec/codec.cc" "src/CMakeFiles/dbgc.dir/codec/codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/codec.cc.o.d"
  "/root/repo/src/codec/gpcc_like_codec.cc" "src/CMakeFiles/dbgc.dir/codec/gpcc_like_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/gpcc_like_codec.cc.o.d"
  "/root/repo/src/codec/kdtree_codec.cc" "src/CMakeFiles/dbgc.dir/codec/kdtree_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/kdtree_codec.cc.o.d"
  "/root/repo/src/codec/octree_codec.cc" "src/CMakeFiles/dbgc.dir/codec/octree_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/octree_codec.cc.o.d"
  "/root/repo/src/codec/octree_grouped_codec.cc" "src/CMakeFiles/dbgc.dir/codec/octree_grouped_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/octree_grouped_codec.cc.o.d"
  "/root/repo/src/codec/range_image_codec.cc" "src/CMakeFiles/dbgc.dir/codec/range_image_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/range_image_codec.cc.o.d"
  "/root/repo/src/codec/raw_codec.cc" "src/CMakeFiles/dbgc.dir/codec/raw_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/codec/raw_codec.cc.o.d"
  "/root/repo/src/common/bounding_box.cc" "src/CMakeFiles/dbgc.dir/common/bounding_box.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/common/bounding_box.cc.o.d"
  "/root/repo/src/common/point_cloud.cc" "src/CMakeFiles/dbgc.dir/common/point_cloud.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/common/point_cloud.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dbgc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dbgc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/common/status.cc.o.d"
  "/root/repo/src/common/transforms.cc" "src/CMakeFiles/dbgc.dir/common/transforms.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/common/transforms.cc.o.d"
  "/root/repo/src/core/attribute_codec.cc" "src/CMakeFiles/dbgc.dir/core/attribute_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/attribute_codec.cc.o.d"
  "/root/repo/src/core/coordinate_converter.cc" "src/CMakeFiles/dbgc.dir/core/coordinate_converter.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/coordinate_converter.cc.o.d"
  "/root/repo/src/core/dbgc_codec.cc" "src/CMakeFiles/dbgc.dir/core/dbgc_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/dbgc_codec.cc.o.d"
  "/root/repo/src/core/density_partitioner.cc" "src/CMakeFiles/dbgc.dir/core/density_partitioner.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/density_partitioner.cc.o.d"
  "/root/repo/src/core/error_metrics.cc" "src/CMakeFiles/dbgc.dir/core/error_metrics.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/error_metrics.cc.o.d"
  "/root/repo/src/core/options.cc" "src/CMakeFiles/dbgc.dir/core/options.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/options.cc.o.d"
  "/root/repo/src/core/outlier_codec.cc" "src/CMakeFiles/dbgc.dir/core/outlier_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/outlier_codec.cc.o.d"
  "/root/repo/src/core/point_grouper.cc" "src/CMakeFiles/dbgc.dir/core/point_grouper.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/point_grouper.cc.o.d"
  "/root/repo/src/core/polyline.cc" "src/CMakeFiles/dbgc.dir/core/polyline.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/polyline.cc.o.d"
  "/root/repo/src/core/polyline_organizer.cc" "src/CMakeFiles/dbgc.dir/core/polyline_organizer.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/polyline_organizer.cc.o.d"
  "/root/repo/src/core/reference_polyline.cc" "src/CMakeFiles/dbgc.dir/core/reference_polyline.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/reference_polyline.cc.o.d"
  "/root/repo/src/core/sparse_codec.cc" "src/CMakeFiles/dbgc.dir/core/sparse_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/sparse_codec.cc.o.d"
  "/root/repo/src/core/stream_codec.cc" "src/CMakeFiles/dbgc.dir/core/stream_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/core/stream_codec.cc.o.d"
  "/root/repo/src/encoding/bitpack.cc" "src/CMakeFiles/dbgc.dir/encoding/bitpack.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/encoding/bitpack.cc.o.d"
  "/root/repo/src/encoding/delta.cc" "src/CMakeFiles/dbgc.dir/encoding/delta.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/encoding/delta.cc.o.d"
  "/root/repo/src/encoding/quantizer.cc" "src/CMakeFiles/dbgc.dir/encoding/quantizer.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/encoding/quantizer.cc.o.d"
  "/root/repo/src/encoding/rle.cc" "src/CMakeFiles/dbgc.dir/encoding/rle.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/encoding/rle.cc.o.d"
  "/root/repo/src/encoding/value_codec.cc" "src/CMakeFiles/dbgc.dir/encoding/value_codec.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/encoding/value_codec.cc.o.d"
  "/root/repo/src/entropy/arithmetic_coder.cc" "src/CMakeFiles/dbgc.dir/entropy/arithmetic_coder.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/entropy/arithmetic_coder.cc.o.d"
  "/root/repo/src/entropy/binary_coder.cc" "src/CMakeFiles/dbgc.dir/entropy/binary_coder.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/entropy/binary_coder.cc.o.d"
  "/root/repo/src/entropy/frequency_model.cc" "src/CMakeFiles/dbgc.dir/entropy/frequency_model.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/entropy/frequency_model.cc.o.d"
  "/root/repo/src/entropy/huffman.cc" "src/CMakeFiles/dbgc.dir/entropy/huffman.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/entropy/huffman.cc.o.d"
  "/root/repo/src/entropy/statistics.cc" "src/CMakeFiles/dbgc.dir/entropy/statistics.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/entropy/statistics.cc.o.d"
  "/root/repo/src/lidar/kitti_io.cc" "src/CMakeFiles/dbgc.dir/lidar/kitti_io.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lidar/kitti_io.cc.o.d"
  "/root/repo/src/lidar/ply_io.cc" "src/CMakeFiles/dbgc.dir/lidar/ply_io.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lidar/ply_io.cc.o.d"
  "/root/repo/src/lidar/scene_generator.cc" "src/CMakeFiles/dbgc.dir/lidar/scene_generator.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lidar/scene_generator.cc.o.d"
  "/root/repo/src/lidar/sensor_model.cc" "src/CMakeFiles/dbgc.dir/lidar/sensor_model.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lidar/sensor_model.cc.o.d"
  "/root/repo/src/lidar/spherical.cc" "src/CMakeFiles/dbgc.dir/lidar/spherical.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lidar/spherical.cc.o.d"
  "/root/repo/src/lz/deflate.cc" "src/CMakeFiles/dbgc.dir/lz/deflate.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lz/deflate.cc.o.d"
  "/root/repo/src/lz/lz77.cc" "src/CMakeFiles/dbgc.dir/lz/lz77.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/lz/lz77.cc.o.d"
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/dbgc.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/channel.cc.o.d"
  "/root/repo/src/net/client.cc" "src/CMakeFiles/dbgc.dir/net/client.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/client.cc.o.d"
  "/root/repo/src/net/frame_protocol.cc" "src/CMakeFiles/dbgc.dir/net/frame_protocol.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/frame_protocol.cc.o.d"
  "/root/repo/src/net/frame_store.cc" "src/CMakeFiles/dbgc.dir/net/frame_store.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/frame_store.cc.o.d"
  "/root/repo/src/net/pipeline.cc" "src/CMakeFiles/dbgc.dir/net/pipeline.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/pipeline.cc.o.d"
  "/root/repo/src/net/server.cc" "src/CMakeFiles/dbgc.dir/net/server.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/server.cc.o.d"
  "/root/repo/src/net/tcp_transport.cc" "src/CMakeFiles/dbgc.dir/net/tcp_transport.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/net/tcp_transport.cc.o.d"
  "/root/repo/src/spatial/kdtree.cc" "src/CMakeFiles/dbgc.dir/spatial/kdtree.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/spatial/kdtree.cc.o.d"
  "/root/repo/src/spatial/octree.cc" "src/CMakeFiles/dbgc.dir/spatial/octree.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/spatial/octree.cc.o.d"
  "/root/repo/src/spatial/quadtree.cc" "src/CMakeFiles/dbgc.dir/spatial/quadtree.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/spatial/quadtree.cc.o.d"
  "/root/repo/src/spatial/voxel_grid.cc" "src/CMakeFiles/dbgc.dir/spatial/voxel_grid.cc.o" "gcc" "src/CMakeFiles/dbgc.dir/spatial/voxel_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
