file(REMOVE_RECURSE
  "libdbgc.a"
)
