# Empty dependencies file for dbgc.
# This may be replaced when dependencies are built.
