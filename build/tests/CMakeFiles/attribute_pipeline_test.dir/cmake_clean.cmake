file(REMOVE_RECURSE
  "CMakeFiles/attribute_pipeline_test.dir/attribute_pipeline_test.cc.o"
  "CMakeFiles/attribute_pipeline_test.dir/attribute_pipeline_test.cc.o.d"
  "attribute_pipeline_test"
  "attribute_pipeline_test.pdb"
  "attribute_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
