# Empty dependencies file for attribute_pipeline_test.
# This may be replaced when dependencies are built.
