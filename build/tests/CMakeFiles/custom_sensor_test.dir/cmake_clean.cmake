file(REMOVE_RECURSE
  "CMakeFiles/custom_sensor_test.dir/custom_sensor_test.cc.o"
  "CMakeFiles/custom_sensor_test.dir/custom_sensor_test.cc.o.d"
  "custom_sensor_test"
  "custom_sensor_test.pdb"
  "custom_sensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
