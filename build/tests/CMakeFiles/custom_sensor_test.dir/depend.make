# Empty dependencies file for custom_sensor_test.
# This may be replaced when dependencies are built.
