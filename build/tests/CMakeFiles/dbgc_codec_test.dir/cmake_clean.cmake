file(REMOVE_RECURSE
  "CMakeFiles/dbgc_codec_test.dir/dbgc_codec_test.cc.o"
  "CMakeFiles/dbgc_codec_test.dir/dbgc_codec_test.cc.o.d"
  "dbgc_codec_test"
  "dbgc_codec_test.pdb"
  "dbgc_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgc_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
