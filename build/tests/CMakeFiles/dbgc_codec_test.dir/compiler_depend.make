# Empty compiler generated dependencies file for dbgc_codec_test.
# This may be replaced when dependencies are built.
