
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness/codec_registry.cc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/codec_registry.cc.o" "gcc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/codec_registry.cc.o.d"
  "/root/repo/tests/harness/corpus.cc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/corpus.cc.o" "gcc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/corpus.cc.o.d"
  "/root/repo/tests/harness/fault_injection.cc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/fault_injection.cc.o" "gcc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/fault_injection.cc.o.d"
  "/root/repo/tests/harness/golden.cc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/golden.cc.o" "gcc" "tests/CMakeFiles/dbgc_test_harness.dir/harness/golden.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
