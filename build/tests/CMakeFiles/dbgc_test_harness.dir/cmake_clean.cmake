file(REMOVE_RECURSE
  "CMakeFiles/dbgc_test_harness.dir/harness/codec_registry.cc.o"
  "CMakeFiles/dbgc_test_harness.dir/harness/codec_registry.cc.o.d"
  "CMakeFiles/dbgc_test_harness.dir/harness/corpus.cc.o"
  "CMakeFiles/dbgc_test_harness.dir/harness/corpus.cc.o.d"
  "CMakeFiles/dbgc_test_harness.dir/harness/fault_injection.cc.o"
  "CMakeFiles/dbgc_test_harness.dir/harness/fault_injection.cc.o.d"
  "CMakeFiles/dbgc_test_harness.dir/harness/golden.cc.o"
  "CMakeFiles/dbgc_test_harness.dir/harness/golden.cc.o.d"
  "libdbgc_test_harness.a"
  "libdbgc_test_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgc_test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
