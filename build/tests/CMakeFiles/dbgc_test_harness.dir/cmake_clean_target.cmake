file(REMOVE_RECURSE
  "libdbgc_test_harness.a"
)
