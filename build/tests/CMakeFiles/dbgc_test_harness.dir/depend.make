# Empty dependencies file for dbgc_test_harness.
# This may be replaced when dependencies are built.
