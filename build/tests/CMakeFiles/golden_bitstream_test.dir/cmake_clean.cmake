file(REMOVE_RECURSE
  "CMakeFiles/golden_bitstream_test.dir/golden_bitstream_test.cc.o"
  "CMakeFiles/golden_bitstream_test.dir/golden_bitstream_test.cc.o.d"
  "golden_bitstream_test"
  "golden_bitstream_test.pdb"
  "golden_bitstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
