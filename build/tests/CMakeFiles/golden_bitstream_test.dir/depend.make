# Empty dependencies file for golden_bitstream_test.
# This may be replaced when dependencies are built.
