file(REMOVE_RECURSE
  "CMakeFiles/lz_test.dir/lz_test.cc.o"
  "CMakeFiles/lz_test.dir/lz_test.cc.o.d"
  "lz_test"
  "lz_test.pdb"
  "lz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
