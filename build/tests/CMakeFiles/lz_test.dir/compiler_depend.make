# Empty compiler generated dependencies file for lz_test.
# This may be replaced when dependencies are built.
