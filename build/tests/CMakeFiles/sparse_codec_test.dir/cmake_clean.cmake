file(REMOVE_RECURSE
  "CMakeFiles/sparse_codec_test.dir/sparse_codec_test.cc.o"
  "CMakeFiles/sparse_codec_test.dir/sparse_codec_test.cc.o.d"
  "sparse_codec_test"
  "sparse_codec_test.pdb"
  "sparse_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
