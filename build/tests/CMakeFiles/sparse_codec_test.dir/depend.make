# Empty dependencies file for sparse_codec_test.
# This may be replaced when dependencies are built.
