# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/bitio_test[1]_include.cmake")
include("/root/repo/build/tests/entropy_test[1]_include.cmake")
include("/root/repo/build/tests/lz_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/lidar_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/polyline_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_codec_test[1]_include.cmake")
include("/root/repo/build/tests/outlier_test[1]_include.cmake")
include("/root/repo/build/tests/dbgc_codec_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/custom_sensor_test[1]_include.cmake")
include("/root/repo/build/tests/attribute_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_corruption_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/golden_bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/differential_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
