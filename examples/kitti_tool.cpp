// kitti_tool: a command-line compressor for KITTI Velodyne .bin files,
// demonstrating libDBGC as a standalone tool (Section 3.1, "Our scheme can
// be utilized as a standalone compression tool").
//
//   compress a frame:    kitti_tool compress   in.bin out.dbgc [q_meters]
//   decompress a frame:  kitti_tool decompress in.dbgc out.bin
//   generate a frame:    kitti_tool generate   out.bin [scene] [frame]
//   convert to PLY:      kitti_tool bin2ply    in.bin out.ply
//   convert from PLY:    kitti_tool ply2bin    in.ply out.bin
//
// `generate` writes a synthetic KITTI-format frame so the tool is usable
// without the proprietary dataset.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "codec/codec.h"
#include "core/dbgc_codec.h"
#include "lidar/kitti_io.h"
#include "lidar/ply_io.h"
#include "lidar/scene_generator.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s compress   <in.bin> <out.dbgc> [q_meters=0.02]\n"
               "  %s decompress <in.dbgc> <out.bin>\n"
               "  %s generate   <out.bin> [scene=city] [frame=0]\n"
               "  %s bin2ply    <in.bin> <out.ply>\n"
               "  %s ply2bin    <in.ply> <out.bin>\n"
               "scenes: campus city residential road urban ford\n",
               prog, prog, prog, prog, prog);
  return 2;
}

dbgc::Result<dbgc::ByteBuffer> ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return dbgc::Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return dbgc::Status::IOError("short read on " + path);
  }
  return dbgc::ByteBuffer(std::move(bytes));
}

dbgc::Status WriteFileBytes(const std::string& path,
                            const dbgc::ByteBuffer& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return dbgc::Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return dbgc::Status::IOError("short write on " + path);
  }
  return dbgc::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string command = argv[1];

  if (command == "generate") {
    const std::string out = argv[2];
    dbgc::SceneType scene = dbgc::SceneType::kCity;
    if (argc > 3) {
      bool found = false;
      for (dbgc::SceneType t : dbgc::AllSceneTypes()) {
        if (dbgc::SceneTypeName(t) == argv[3]) {
          scene = t;
          found = true;
        }
      }
      if (!found) return Usage(argv[0]);
    }
    const uint32_t frame = argc > 4 ? std::atoi(argv[4]) : 0;
    const dbgc::PointCloud pc =
        dbgc::SceneGenerator(scene).Generate(frame);
    if (dbgc::Status s = dbgc::WriteKittiBin(out, pc); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu points to %s\n", pc.size(), out.c_str());
    return 0;
  }

  if (command == "compress") {
    if (argc < 4) return Usage(argv[0]);
    const double q = argc > 4 ? std::atof(argv[4]) : 0.02;
    auto cloud = dbgc::ReadKittiBin(argv[2]);
    if (!cloud.ok()) {
      std::fprintf(stderr, "%s\n", cloud.status().ToString().c_str());
      return 1;
    }
    const dbgc::DbgcCodec codec;
    auto compressed = codec.Compress(cloud.value(), q);
    if (!compressed.ok()) {
      std::fprintf(stderr, "%s\n", compressed.status().ToString().c_str());
      return 1;
    }
    if (dbgc::Status s = WriteFileBytes(argv[3], compressed.value());
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%zu points -> %zu bytes (ratio %.2fx at q = %g m)\n",
                cloud.value().size(), compressed.value().size(),
                dbgc::CompressionRatio(cloud.value(), compressed.value()),
                q);
    return 0;
  }

  if (command == "bin2ply" || command == "ply2bin") {
    if (argc < 4) return Usage(argv[0]);
    auto cloud = command == "bin2ply" ? dbgc::ReadKittiBin(argv[2])
                                      : dbgc::ReadPly(argv[2]);
    if (!cloud.ok()) {
      std::fprintf(stderr, "%s\n", cloud.status().ToString().c_str());
      return 1;
    }
    const dbgc::Status s = command == "bin2ply"
                               ? dbgc::WritePly(argv[3], cloud.value())
                               : dbgc::WriteKittiBin(argv[3], cloud.value());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("converted %zu points to %s\n", cloud.value().size(),
                argv[3]);
    return 0;
  }

  if (command == "decompress") {
    if (argc < 4) return Usage(argv[0]);
    auto bytes = ReadFileBytes(argv[2]);
    if (!bytes.ok()) {
      std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
      return 1;
    }
    const dbgc::DbgcCodec codec;
    auto cloud = codec.Decompress(bytes.value());
    if (!cloud.ok()) {
      std::fprintf(stderr, "%s\n", cloud.status().ToString().c_str());
      return 1;
    }
    if (dbgc::Status s = dbgc::WriteKittiBin(argv[3], cloud.value());
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("decompressed %zu points to %s\n", cloud.value().size(),
                argv[3]);
    return 0;
  }
  return Usage(argv[0]);
}
