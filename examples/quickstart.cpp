// Quickstart: compress one LiDAR frame with DBGC, decompress it, and
// verify the error bound.
//
//   $ ./examples/quickstart [error_bound_meters]
//
// This is the minimal end-to-end use of the public API: generate (or load)
// a point cloud, construct a DbgcCodec, call Compress / Decompress, and
// check the one-to-one mapped error against the bound.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "codec/codec.h"
#include "common/thread_pool.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"

int main(int argc, char** argv) {
  const double q_xyz = argc > 1 ? std::atof(argv[1]) : 0.02;
  if (q_xyz <= 0) {
    std::fprintf(stderr, "usage: %s [error_bound_meters > 0]\n", argv[0]);
    return 1;
  }

  // 1. Acquire a frame. Here: one synthetic Velodyne HDL-64E city sweep;
  //    in a real deployment this would come from the sensor driver or a
  //    KITTI file (see examples/kitti_tool.cpp).
  const dbgc::SceneGenerator generator(dbgc::SceneType::kCity);
  const dbgc::PointCloud cloud = generator.Generate(/*frame_index=*/0);
  std::printf("captured %zu points (%zu raw bytes)\n", cloud.size(),
              cloud.RawSizeBytes());

  // 2. Configure the codec. DbgcOptions defaults are the paper's settings;
  //    here only the error bound is customized.
  dbgc::DbgcOptions options;
  options.q_xyz = q_xyz;
  dbgc::DbgcCodec bound_codec(options);

  // 3. Compress. CompressParams carries the error bound, an optional
  //    thread pool accelerating the encode (the bitstream is identical
  //    with or without it), and an optional stats sink reporting the
  //    dense/sparse split, byte sizes, and (opt-in) the one-to-one point
  //    mapping. codec.Compress(cloud, q) remains as shorthand; per-stage
  //    timings come from wrapping the call in an obs::FrameTrace.
  dbgc::ThreadPool pool(dbgc::ThreadPool::DefaultThreadCount());
  dbgc::CompressStats info;
  info.record_point_mapping = true;  // Needed for MappedError below.
  dbgc::CompressParams params;
  params.q_xyz = q_xyz;
  params.pool = &pool;
  params.info = &info;
  auto compressed = bound_codec.Compress(cloud, params);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compression failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  std::printf("compressed to %zu bytes: ratio %.2fx (%.2f bits/point)\n",
              compressed.value().size(),
              dbgc::CompressionRatio(cloud, compressed.value()),
              8.0 * compressed.value().size() / cloud.size());
  std::printf("  dense: %zu pts (%zu B), sparse: %zu pts on %zu polylines "
              "(%zu B), outliers: %zu pts (%zu B)\n",
              info.num_dense, info.bytes_dense, info.num_sparse,
              info.num_polylines, info.bytes_sparse, info.num_outliers,
              info.bytes_outlier);

  // 4. Decompress and verify the bound through the mapping.
  auto decoded = bound_codec.Decompress(compressed.value());
  if (!decoded.ok()) {
    std::fprintf(stderr, "decompression failed: %s\n",
                 decoded.status().ToString().c_str());
    return 1;
  }
  auto stats = dbgc::MappedError(cloud, decoded.value(), info.point_mapping);
  if (!stats.ok()) {
    std::fprintf(stderr, "error check failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  const double limit = std::sqrt(3.0) * q_xyz;
  std::printf("decompressed %zu points; max error %.5f m (mean %.5f m), "
              "bound sqrt(3)*q = %.5f m -> %s\n",
              decoded.value().size(), stats.value().max_euclidean,
              stats.value().mean_euclidean, limit,
              stats.value().max_euclidean <= limit * (1 + 1e-9) ? "OK"
                                                                : "VIOLATED");
  return stats.value().max_euclidean <= limit * (1 + 1e-9) ? 0 : 1;
}
