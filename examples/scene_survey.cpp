// Scene survey example: the remote-survey use case of the paper's
// introduction - measurement applications that need a guaranteed small
// error between the original and the decompressed cloud.
//
//   $ ./examples/scene_survey [error_bound_meters]
//
// For every scene family the example compresses a frame with DBGC and the
// octree baseline, verifies the error bound through the one-to-one
// mapping, and reports which codec a bandwidth-constrained survey link
// should prefer.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "codec/codec.h"
#include "codec/octree_codec.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"

int main(int argc, char** argv) {
  const double q_xyz = argc > 1 ? std::atof(argv[1]) : 0.02;
  if (q_xyz <= 0) {
    std::fprintf(stderr, "usage: %s [error_bound_meters > 0]\n", argv[0]);
    return 1;
  }
  dbgc::DbgcOptions options;
  options.q_xyz = q_xyz;
  const dbgc::DbgcCodec dbgc_codec(options);
  const dbgc::OctreeCodec octree_codec;
  const double limit = std::sqrt(3.0) * q_xyz * (1 + 1e-9);

  std::printf("survey error bound q = %.4f m (per dimension)\n\n", q_xyz);
  std::printf("%-12s %9s %11s %11s %12s %9s\n", "scene", "points",
              "DBGC ratio", "Octree", "max err(m)", "verified");

  int violations = 0;
  for (dbgc::SceneType scene : dbgc::AllSceneTypes()) {
    const dbgc::SceneGenerator generator(scene);
    const dbgc::PointCloud cloud = generator.Generate(0);

    dbgc::CompressStats info;
    info.record_point_mapping = true;
    dbgc::CompressParams info_params;
    info_params.q_xyz = dbgc_codec.options().q_xyz;
    info_params.info = &info;
    auto compressed = dbgc_codec.Compress(cloud, info_params);
    if (!compressed.ok()) {
      std::fprintf(stderr, "DBGC failed on %s: %s\n",
                   dbgc::SceneTypeName(scene).c_str(),
                   compressed.status().ToString().c_str());
      return 1;
    }
    auto decoded = dbgc_codec.Decompress(compressed.value());
    if (!decoded.ok()) return 1;
    auto stats =
        dbgc::MappedError(cloud, decoded.value(), info.point_mapping);
    if (!stats.ok()) return 1;

    auto octree_compressed = octree_codec.Compress(cloud, q_xyz);
    if (!octree_compressed.ok()) return 1;

    const bool ok = stats.value().max_euclidean <= limit;
    violations += ok ? 0 : 1;
    std::printf("%-12s %9zu %11.2f %11.2f %12.5f %9s\n",
                dbgc::SceneTypeName(scene).c_str(), cloud.size(),
                dbgc::CompressionRatio(cloud, compressed.value()),
                dbgc::CompressionRatio(cloud, octree_compressed.value()),
                stats.value().max_euclidean, ok ? "yes" : "NO");
  }
  std::printf(
      "\nAll scenes verified against the guarantee |error| <= sqrt(3)*q: "
      "%s\n",
      violations == 0 ? "yes" : "NO");
  return violations == 0 ? 0 : 1;
}
