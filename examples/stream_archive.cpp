// Stream archive example: recording a drive into a single compressed
// archive and replaying selected frames — the paper's "some downstream
// applications select specific frames of LiDAR data to process" use case,
// built on the multi-frame stream container.
//
//   $ ./examples/stream_archive [num_frames] [archive_path]

#include <cstdio>
#include <cstdlib>

#include "core/stream_codec.h"
#include "lidar/scene_generator.h"

int main(int argc, char** argv) {
  const int num_frames = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::string path =
      argc > 2 ? argv[2] : std::string("/tmp/dbgc_drive.dbgcs");
  if (num_frames <= 0) {
    std::fprintf(stderr, "usage: %s [num_frames > 0] [archive_path]\n",
                 argv[0]);
    return 1;
  }

  // Record: compress every frame of a simulated drive into one stream.
  const dbgc::SceneGenerator generator(dbgc::SceneType::kResidential);
  dbgc::DbgcStreamWriter writer;
  size_t raw_bytes = 0;
  for (int f = 0; f < num_frames; ++f) {
    const dbgc::PointCloud cloud =
        generator.Generate(static_cast<uint32_t>(f));
    raw_bytes += cloud.RawSizeBytes();
    auto added = writer.AddFrame(cloud);
    if (!added.ok()) {
      std::fprintf(stderr, "frame %d failed: %s\n", f,
                   added.status().ToString().c_str());
      return 1;
    }
    std::printf("recorded frame %d: %zu points -> %zu bytes\n", f,
                cloud.size(), added.value());
  }
  const dbgc::ByteBuffer stream = writer.Finish();
  std::printf("archive: %d frames, %zu bytes total (%.2fx over raw)\n",
              num_frames, stream.size(),
              static_cast<double>(raw_bytes) / stream.size());

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(stream.data(), 1, stream.size(), f);
  std::fclose(f);

  // Replay: reopen and randomly access the middle frame.
  FILE* in = std::fopen(path.c_str(), "rb");
  std::fseek(in, 0, SEEK_END);
  const long size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  dbgc::ByteBuffer loaded;
  loaded.mutable_bytes().resize(static_cast<size_t>(size));
  if (std::fread(loaded.mutable_bytes().data(), 1, loaded.size(), in) !=
      loaded.size()) {
    std::fclose(in);
    std::fprintf(stderr, "short read on %s\n", path.c_str());
    return 1;
  }
  std::fclose(in);

  auto reader = dbgc::DbgcStreamReader::Open(loaded);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const size_t pick = reader.value().frame_count() / 2;
  auto frame = reader.value().ReadFrame(pick);
  if (!frame.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 frame.status().ToString().c_str());
    return 1;
  }
  std::printf("random access: frame %zu of %zu decoded to %zu points\n",
              pick, reader.value().frame_count(), frame.value().size());
  std::remove(path.c_str());
  return 0;
}
