// Streaming sensor example: the online monitoring scenario of Section 3.1.
//
//   $ ./examples/streaming_sensor [num_frames]
//
// A simulated Velodyne HDL-64E produces frames at 10 Hz; the DBGC client
// compresses and frames each capture; a 4G uplink carries the bits; the
// DBGC server decompresses and stores the clouds. The example reports, per
// frame and in aggregate, whether the pipeline keeps up with the sensor -
// the paper's headline systems claim.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/thread_pool.h"
#include "lidar/scene_generator.h"
#include "net/channel.h"
#include "net/client.h"
#include "net/pipeline.h"
#include "net/server.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  const int num_frames = argc > 1 ? std::atoi(argv[1]) : 5;
  if (num_frames <= 0) {
    std::fprintf(stderr, "usage: %s [num_frames > 0]\n", argv[0]);
    return 1;
  }

  const dbgc::SensorMetadata sensor = dbgc::SensorMetadata::VelodyneHdl64e();
  const double frame_interval = 1.0 / sensor.frames_per_second;

  dbgc::DbgcClient client(dbgc::DbgcOptions(),
                          dbgc::SimulatedChannel::Ethernet100(),
                          dbgc::SimulatedChannel::Mobile4G());
  dbgc::DbgcServer server;
  const dbgc::SceneGenerator generator(dbgc::SceneType::kUrban);

  std::printf("sensor: HDL-64E at %g fps, frame interval %.2f s\n",
              sensor.frames_per_second, frame_interval);
  std::printf("%6s %9s %11s %11s %10s %10s %8s\n", "frame", "points",
              "raw(KB)", "wire(KB)", "comp(s)", "uplink(s)", "online?");

  double worst_cycle = 0;
  for (int f = 0; f < num_frames; ++f) {
    const dbgc::PointCloud cloud =
        generator.Generate(static_cast<uint32_t>(f), sensor);
    dbgc::ClientFrameReport creport;
    auto wire = client.ProcessFrame(cloud, &creport);
    if (!wire.ok()) {
      std::fprintf(stderr, "client error: %s\n",
                   wire.status().ToString().c_str());
      return 1;
    }
    dbgc::ServerFrameReport sreport;
    if (dbgc::Status s = server.HandleFrame(wire.value(), &sreport);
        !s.ok()) {
      std::fprintf(stderr, "server error: %s\n", s.ToString().c_str());
      return 1;
    }
    // Section 4.4's online criterion: the compressed stream must fit the
    // uplink capacity; compute stages pipeline across frames.
    const double cycle =
        std::max(creport.compress_seconds,
                 std::max(creport.uplink_seconds,
                          sreport.decompress_seconds));
    worst_cycle = std::max(worst_cycle, cycle);
    const bool fits_uplink = dbgc::SimulatedChannel::Mobile4G().CanSustain(
        creport.compressed_bytes, sensor.frames_per_second);
    std::printf("%6d %9zu %11.1f %11.1f %10.3f %10.3f %8s\n", f,
                cloud.size(), creport.raw_bytes / 1024.0,
                creport.compressed_bytes / 1024.0, creport.compress_seconds,
                creport.uplink_seconds, fits_uplink ? "yes" : "NO");
  }

  std::printf("\nstored %zu clouds on the server\n",
              server.stored_clouds().size());
  const int pipeline_depth =
      static_cast<int>(std::ceil(worst_cycle / frame_interval));
  std::printf("worst stage takes %.3f s per frame; a pipeline depth of %d "
              "frame%s sustains the %g fps stream\n",
              worst_cycle, pipeline_depth, pipeline_depth == 1 ? "" : "s",
              sensor.frames_per_second);

  // Realize that depth with CompressionPipeline: frames overlap on a
  // shared thread pool, TrySubmit applies backpressure (a refused frame is
  // the honest real-time failure mode, not an unbounded queue), and
  // Drain() flushes the tail instead of discarding it.
  dbgc::ThreadPool pool(dbgc::ThreadPool::DefaultThreadCount());
  dbgc::CompressionPipeline::Config config;
  config.pool = &pool;
  config.queue_capacity = static_cast<size_t>(pipeline_depth) + 1;
  dbgc::CompressionPipeline pipeline(dbgc::DbgcOptions(), config);

  std::printf("\npipelined run: %d workers, window %zu frames\n",
              pool.num_threads(), pipeline.capacity());
  const auto start = std::chrono::steady_clock::now();
  int accepted = 0, refused = 0;
  for (int f = 0; f < num_frames; ++f) {
    dbgc::PointCloud cloud = generator.Generate(static_cast<uint32_t>(f),
                                                sensor);
    if (pipeline.TrySubmit(std::move(cloud))) {
      ++accepted;
    } else {
      ++refused;
    }
  }
  if (dbgc::Status s = pipeline.Drain(); !s.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t wire_bytes = 0;
  for (int f = 0; f < accepted; ++f) {
    auto result = pipeline.NextResult();
    if (!result.ok()) {
      std::fprintf(stderr, "frame error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    wire_bytes += result.value().size();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("compressed %d frame%s (%d refused) to %.1f KB in %.3f s: "
              "%.1f fps %s the sensor's %g fps\n",
              accepted, accepted == 1 ? "" : "s", refused,
              wire_bytes / 1024.0, elapsed, accepted / elapsed,
              accepted / elapsed >= sensor.frames_per_second ? "sustains"
                                                             : "trails",
              sensor.frames_per_second);
  // Everything the run just did — per-codec bytes, stage latencies, queue
  // depth, drops — is in the process-wide registry (docs/OBSERVABILITY.md).
  std::printf("\nmetrics snapshot:\n%s\n",
              dbgc::obs::MetricsRegistry::Global().ToJson().c_str());
  return 0;
}
