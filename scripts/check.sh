#!/usr/bin/env bash
# CI driver: tier-1 verify plus a sanitizer pass over the conformance and
# fault-injection surfaces (docs/TESTING.md).
#
#   scripts/check.sh            # tier-1 + lint + hardened + sanitizers
#   scripts/check.sh --full     # also runs slow-labeled tests under ASan
#   scripts/check.sh --tier1    # tier-1 only (no lint/sanitizer builds)
#
# CTest labels shard the suite: fast (unit/conformance, < ~60 s even
# sanitized), slow (end-to-end + differential oracle), fuzz (corruption and
# fault-injection suites), lint (dbgc_lint gate + its lexer suite,
# docs/LINTING.md).
#
# The script fails fast (set -e): the first broken gate stops the run. The
# EXIT trap prints a per-gate PASS/FAIL/SKIP table either way, so CI logs
# always end with the full picture of what ran, what didn't, and why.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-}"

# --- gate bookkeeping -------------------------------------------------------
# start_gate begins a named gate; pass_gate marks it green; skip_gate records
# a gate that cannot run in this environment, with the reason in the table.
# A gate still "current" when the script exits (set -e abort) prints FAIL.
GATE_ROWS=()
CURRENT_GATE=""

start_gate() {
  CURRENT_GATE="$1"
  echo "==> ${CURRENT_GATE}"
}

pass_gate() {
  GATE_ROWS+=("${CURRENT_GATE}|PASS")
  CURRENT_GATE=""
}

skip_gate() {
  echo "==> $1: SKIPPED ($2)"
  GATE_ROWS+=("$1|SKIP: $2")
}

print_summary() {
  local rc=$?
  if [[ -n "${CURRENT_GATE}" ]]; then
    GATE_ROWS+=("${CURRENT_GATE}|FAIL")
  fi
  echo
  echo "================ gate summary ================"
  local row
  for row in "${GATE_ROWS[@]}"; do
    printf '  %-38s %s\n' "${row%%|*}" "${row#*|}"
  done
  echo "=============================================="
  if [[ ${rc} -eq 0 ]]; then
    echo "all executed gates passed"
  else
    echo "FAILED (exit ${rc})"
  fi
}
trap print_summary EXIT

# --- tier-1 -----------------------------------------------------------------

start_gate "tier-1: Release build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"
pass_gate

if [[ "${MODE}" == "--tier1" ]]; then
  exit 0
fi

# --- benches with hard tripwires -------------------------------------------

start_gate "parallel scaling bench: BENCH_parallel.json"
# One frame per config keeps CI fast; the binary also re-verifies that
# every parallel encode is byte-identical to the serial one.
DBGC_BENCH_FRAMES="${DBGC_BENCH_FRAMES:-1}" \
  ./build/bench/bench_parallel_scaling BENCH_parallel.json
pass_gate

start_gate "hot-path bench: BENCH_hotpath.json + encode budget tripwire"
# Single-threaded encode must hold the <= 25 ms urban-l budget and keep
# the >= 3x speedup over the pre-rework baseline (docs/PERFORMANCE.md).
# The gate reads min-over-reps, which absorbs CI scheduler noise; raise
# DBGC_HOTPATH_REPS for a more thorough run.
DBGC_HOTPATH_REPS="${DBGC_HOTPATH_REPS:-6}" \
  ./build/bench/bench_dbgc_hotpath BENCH_hotpath.json
awk -F': ' '
  /"urban_l_e2e_ms_min"/ { ms = $2 + 0 }
  /"urban_l_speedup"/    { speedup = $2 + 0 }
  END {
    if (ms > 25.0)     { print "urban-l encode budget blown: " ms " ms"; exit 1 }
    if (speedup < 3.0) { print "hot-path speedup regressed: " speedup "x"; exit 1 }
  }' BENCH_hotpath.json
pass_gate

start_gate "entropy gate: backend differential suite + v1 goldens + bench"
# The differential suite proves both entropy backends decode each other's
# symbol streams; the v1 golden test decodes every pinned legacy stream
# (docs/ENTROPY.md). Both already ran under tier-1 — re-run them named so
# a backend regression identifies itself in CI logs.
ctest --test-dir build \
  -R "EntropyBackendDiff|GoldenBitstreamTest.V1BackendStreamsStayPinnedAndDecodable" \
  --output-on-failure -j "${JOBS}"
DBGC_BENCH_FRAMES="${DBGC_BENCH_FRAMES:-1}" \
  ./build/bench/bench_entropy_backend BENCH_entropy.json
# Hard-regression tripwire on the headline claim (committed runs record
# >= 2x; 1.5x leaves room for CI noise, see docs/ENTROPY.md).
awk -F': ' '
  /"ent_speedup_v1_over_v2"/ { speedup = $2 + 0 }
  /"size_ratio_v2_over_v1"/  { ratio = $2 + 0 }
  END {
    if (speedup < 1.5) { print "ENT speedup regressed: " speedup; exit 1 }
    if (ratio > 1.02)  { print "v2 size regressed: " ratio; exit 1 }
  }' BENCH_entropy.json
pass_gate

start_gate "temporal gate: stream conformance + BENCH_temporal.json"
# The conformance layer already ran under tier-1 — re-run it named so a
# temporal regression identifies itself in CI logs: P-frame decode vs the
# per-frame intra oracle, single-loss resync at the next keyframe, the
# golden stream vault, and the net-layer wiring (docs/TEMPORAL.md).
ctest --test-dir build \
  -R "TemporalStreamTest|TemporalConcurrency|SceneSequenceTest|TemporalPipelineTest|FleetSessionTest.Temporal|GoldenBitstreamTest.TemporalSequenceVault" \
  --output-on-failure -j "${JOBS}"
# The headline claim: on a coherent drive the temporal stream must cost
# strictly fewer bits than intra-only coding, and dropping one P-frame
# must recover byte-identically at the next keyframe. The bench exits
# nonzero on its own tripwires; the awk pass pins the committed numbers.
DBGC_BENCH_FRAMES="${DBGC_BENCH_FRAMES:-1}" \
  ./build/bench/bench_temporal BENCH_temporal.json
awk -F': ' '
  /"temporal_over_intra_bpp"/      { ratio = $2 + 0 }
  /"loss_recovery_byte_identical"/ { ok = ($2 ~ /true/) }
  END {
    if (ratio >= 1.0) { print "temporal bpp not below intra: " ratio; exit 1 }
    if (!ok)          { print "loss recovery not byte-identical"; exit 1 }
  }' BENCH_temporal.json
pass_gate

# --- static analysis --------------------------------------------------------

start_gate "fleet gate: BENCH_fleet.json + admission tripwires"
# N sensors against one SessionManager (docs/FLEET.md). Tripwires read the
# N=64 oversubscription row: the server must keep making forward progress
# (accepted frames on every row), reject rate must stay below total
# starvation, and p99 end-to-end latency must stay bounded even while
# shedding load. Absolute latency is machine-dependent, so the bound is
# generous; the committed BENCH_fleet.json records the real numbers.
DBGC_BENCH_FRAMES="${DBGC_BENCH_FRAMES:-1}" \
  ./build/bench/bench_fleet_load BENCH_fleet.json
awk '
  /"sensors"/ {
    match($0, /"accepted": [0-9]+/);
    acc = substr($0, RSTART + 12, RLENGTH - 12) + 0;
    if (acc <= 0) { print "fleet starved: no accepted frames"; exit 1 }
    if ($0 ~ /"sensors": 64/) {
      match($0, /"reject_rate": [0-9.]+/);
      rej = substr($0, RSTART + 15, RLENGTH - 15) + 0;
      match($0, /"p99_ms": [0-9.]+/);
      p99 = substr($0, RSTART + 10, RLENGTH - 10) + 0;
      if (rej > 0.97)   { print "fleet reject rate degenerate: " rej; exit 1 }
      if (p99 > 5000.0) { print "fleet p99 latency blown: " p99 " ms"; exit 1 }
      seen64 = 1;
    }
  }
  END { if (!seen64) { print "missing N=64 fleet row"; exit 1 } }
' BENCH_fleet.json
pass_gate

start_gate "lint gate: dbgc_lint over src/tools/bench + self-test corpus"
ctest --test-dir build -L lint --output-on-failure -j "${JOBS}"
# The lint label already covers the whole tree; re-run the concurrency
# substrate explicitly so a pool or pipeline regression names itself in CI
# logs (rules R8-R12, docs/CONCURRENCY.md).
./build/tools/dbgc_lint/dbgc_lint \
  src/common/thread_pool.h src/common/thread_pool.cc \
  src/net/pipeline.h src/net/pipeline.cc \
  src/net/session.h src/net/session.cc \
  src/net/frame_store.h src/net/frame_store.cc \
  src/core/temporal_codec.h src/core/temporal_codec.cc
# Rule R6 (docs/OBSERVABILITY.md): the obs layer owns the monotonic clock;
# name its wrapper explicitly so a new ad-hoc timer fails loudly here.
./build/tools/dbgc_lint/dbgc_lint src/obs/trace.h src/obs/trace.cc
# Analyzer wall time over the full tree, tracked like any other bench.
./build/tools/dbgc_lint/dbgc_lint --bench BENCH_lint.json src tools bench
pass_gate

# Clang Thread Safety Analysis (docs/CONCURRENCY.md): the DBGC_GUARDED_BY /
# DBGC_REQUIRES contracts become compiler-checked. Clang-only; on a
# gcc-only runner the gate is skipped VISIBLY in the summary table rather
# than silently thinning the CI matrix.
if command -v clang++ >/dev/null 2>&1; then
  start_gate "thread-safety gate: clang -Wthread-safety build"
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DDBGC_THREAD_SAFETY=ON \
    -DDBGC_BUILD_TESTS=OFF \
    -DDBGC_BUILD_BENCHMARKS=OFF \
    -DDBGC_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsa -j "${JOBS}"
  pass_gate
else
  skip_gate "thread-safety gate: clang -Wthread-safety build" \
    "clang++ not on PATH; annotation contracts checked by dbgc_lint only"
fi

# --- observability ----------------------------------------------------------

start_gate "obs gate: enabled-build snapshot + DBGC_OBS_OFF parity"
# Enabled build: the overhead bench doubles as the snapshot emitter; the
# JSON must carry per-codec latency histograms and stage spans.
DBGC_BENCH_FRAMES="${DBGC_BENCH_FRAMES:-1}" \
  ./build/bench/bench_obs_overhead BENCH_obs.json
# Disabled build: every call site compiles against the no-op stubs and the
# bench proves the hot path carries no instrumentation cost
# (BENCH_obs_off.json records the same micro-timings for comparison).
cmake -B build-obsoff -S . \
  -DDBGC_OBS_OFF=ON \
  -DDBGC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-obsoff -j "${JOBS}" \
  --target obs_test net_test bench_obs_overhead dbgc_stats
./build-obsoff/tests/obs_test >/dev/null
./build-obsoff/tests/net_test \
  --gtest_filter='PipelineBackpressureTest.*:FrameStoreTest.*:FleetSessionTest.*:AckProtocolTest.*' \
  >/dev/null
DBGC_BENCH_FRAMES="${DBGC_BENCH_FRAMES:-1}" \
  ./build-obsoff/bench/bench_obs_overhead BENCH_obs_off.json
pass_gate

# --- hardened + sanitizer builds -------------------------------------------

# Compile-only gate over the library and lint tool; tests are exercised by
# the tier-1 and sanitizer builds above and stay on the permissive warning
# set (gtest macros trip -Wconversion).
start_gate "hardened build: -Wshadow -Wconversion -Werror"
cmake -B build-werror -S . \
  -DDBGC_WERROR=ON \
  -DDBGC_BUILD_TESTS=OFF \
  -DDBGC_BUILD_BENCHMARKS=OFF \
  -DDBGC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-werror -j "${JOBS}"
pass_gate

start_gate "sanitizer pass: ASan+UBSan build"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBGC_SANITIZE=address,undefined \
  -DDBGC_BUILD_BENCHMARKS=OFF \
  -DDBGC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "${JOBS}"

SAN_LABELS="fast|fuzz"
if [[ "${MODE}" == "--full" ]]; then
  SAN_LABELS="fast|fuzz|slow"
fi

# abort_on_error=1 turns any report into a hard test failure; the
# fault-injection suites must come back with zero reports.
ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
ctest --test-dir build-asan -L "${SAN_LABELS}" --output-on-failure -j "${JOBS}"
pass_gate

start_gate "sanitizer pass: TSan concurrency smoke + pool/pipeline/store"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBGC_SANITIZE=thread \
  -DDBGC_BUILD_BENCHMARKS=OFF \
  -DDBGC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "${JOBS}" \
  --target concurrency_smoke_test thread_pool_test net_test obs_test \
           point_soa_test temporal_stream_test
# ThreadPool/Parallelism: the ParallelFor stress mix; PipelineBackpressure:
# the bounded-window frame pipeline; FrameStoreConcurrency: parallel
# Put/Get/eviction on the bounded store; ConcurrencySmoke: codec
# statelessness; MetricsStress: sharded counters/histograms under
# concurrent readers; PointSoAStress: concurrent clustering over the
# thread-local flat-array density counters; FleetStress + FleetSessionTest:
# many-session admission/decode on the fleet server (docs/FLEET.md);
# TemporalConcurrency + TemporalPipelineTest: thread-count invariance of
# the temporal bitstream and the ordered encode actor (docs/TEMPORAL.md).
TSAN_OPTIONS="halt_on_error=1" \
ctest --test-dir build-tsan \
  -R "ConcurrencySmoke|ThreadPoolTest|ParallelismTest|PipelineBackpressure|FrameStoreConcurrency|MetricsStress|PointSoAStress|FleetStress|FleetSessionTest|TemporalConcurrency|TemporalPipelineTest" \
  --output-on-failure -j "${JOBS}"
pass_gate
