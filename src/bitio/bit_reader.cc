#include "bitio/bit_reader.h"

namespace dbgc {

Status BitReader::ReadBit(int* out) {
  if (byte_pos_ >= size_) return Status::Corruption("bit read past end");
  *out = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
  if (++bit_pos_ == 8) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
  return Status::OK();
}

Status BitReader::ReadBits(int count, uint64_t* out) {
  uint64_t v = 0;
  for (int i = 0; i < count; ++i) {
    int bit;
    DBGC_RETURN_NOT_OK(ReadBit(&bit));
    v = (v << 1) | static_cast<uint64_t>(bit);
  }
  *out = v;
  return Status::OK();
}

}  // namespace dbgc
