// BitReader: MSB-first bit-level input over a byte span; the inverse of
// BitWriter.

#ifndef DBGC_BITIO_BIT_READER_H_
#define DBGC_BITIO_BIT_READER_H_

#include <cstdint>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// Reads a bit sequence MSB-first from a byte span. Does not own the bytes.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BitReader(const ByteBuffer& buf)
      : BitReader(buf.data(), buf.size()) {}

  /// Reads one bit into *out.
  Status ReadBit(int* out);

  /// Reads `count` bits (MSB first) into *out. count must be in [0, 64].
  Status ReadBits(int count, uint64_t* out);

  /// Bits consumed so far.
  size_t bit_position() const { return byte_pos_ * 8 + bit_pos_; }

  /// True iff no complete bit remains.
  bool AtEnd() const { return byte_pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;  // Bits consumed within the current byte, in [0, 8).
};

}  // namespace dbgc

#endif  // DBGC_BITIO_BIT_READER_H_
