#include "bitio/bit_writer.h"

namespace dbgc {

void BitWriter::WriteBit(int bit) {
  current_ = static_cast<uint8_t>((current_ << 1) | (bit & 1));
  if (++bit_pos_ == 8) {
    buffer_.AppendByte(current_);
    current_ = 0;
    bit_pos_ = 0;
  }
}

void BitWriter::WriteBits(uint64_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    WriteBit(static_cast<int>((value >> i) & 1));
  }
}

ByteBuffer BitWriter::Finish() {
  if (bit_pos_ > 0) {
    current_ = static_cast<uint8_t>(current_ << (8 - bit_pos_));
    buffer_.AppendByte(current_);
    current_ = 0;
    bit_pos_ = 0;
  }
  ByteBuffer out = std::move(buffer_);
  buffer_ = ByteBuffer();
  return out;
}

}  // namespace dbgc
