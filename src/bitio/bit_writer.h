// BitWriter: MSB-first bit-level output on top of a ByteBuffer. Used by the
// octree occupancy serializer, bit-packing, and the Huffman coder.

#ifndef DBGC_BITIO_BIT_WRITER_H_
#define DBGC_BITIO_BIT_WRITER_H_

#include <cstdint>

#include "bitio/byte_buffer.h"

namespace dbgc {

/// Writes a bit sequence MSB-first into an internal buffer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends a single bit (0 or 1).
  void WriteBit(int bit);

  /// Appends the low `count` bits of `value`, most significant first.
  /// count must be in [0, 64].
  void WriteBits(uint64_t value, int count);

  /// Appends a whole byte.
  void WriteByte(uint8_t b) { WriteBits(b, 8); }

  /// Number of bits written so far.
  size_t bit_count() const { return buffer_.size() * 8 + bit_pos_; }

  /// Pads the final partial byte with zero bits and returns the buffer.
  /// The writer is left empty and reusable.
  ByteBuffer Finish();

 private:
  ByteBuffer buffer_;
  uint8_t current_ = 0;
  int bit_pos_ = 0;  // Bits used in current_, in [0, 8).
};

}  // namespace dbgc

#endif  // DBGC_BITIO_BIT_WRITER_H_
