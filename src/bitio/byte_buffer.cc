#include "bitio/byte_buffer.h"

namespace dbgc {

void ByteBuffer::AppendUint16(uint16_t v) {
  AppendByte(static_cast<uint8_t>(v));
  AppendByte(static_cast<uint8_t>(v >> 8));
}

void ByteBuffer::AppendUint32(uint32_t v) {
  for (int i = 0; i < 4; ++i) AppendByte(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteBuffer::AppendUint64(uint64_t v) {
  for (int i = 0; i < 8; ++i) AppendByte(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteBuffer::AppendDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendUint64(bits);
}

void ByteBuffer::AppendLengthPrefixed(const ByteBuffer& sub) {
  AppendUint64(sub.size());
  Append(sub);
}

Status ByteReader::ReadByte(uint8_t* out) {
  if (pos_ >= size_) return Status::Corruption("read past end of buffer");
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::Read(uint8_t* out, size_t n) {
  if (remaining() < n) return Status::Corruption("read past end of buffer");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadUint16(uint16_t* out) {
  uint8_t b[2];
  DBGC_RETURN_NOT_OK(Read(b, 2));
  *out = static_cast<uint16_t>(b[0] | (b[1] << 8));
  return Status::OK();
}

Status ByteReader::ReadUint32(uint32_t* out) {
  uint8_t b[4];
  DBGC_RETURN_NOT_OK(Read(b, 4));
  *out = 0;
  for (int i = 3; i >= 0; --i) *out = (*out << 8) | b[i];
  return Status::OK();
}

Status ByteReader::ReadUint64(uint64_t* out) {
  uint8_t b[8];
  DBGC_RETURN_NOT_OK(Read(b, 8));
  *out = 0;
  for (int i = 7; i >= 0; --i) *out = (*out << 8) | b[i];
  return Status::OK();
}

Status ByteReader::ReadDouble(double* out) {
  uint64_t bits;
  DBGC_RETURN_NOT_OK(ReadUint64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadLengthPrefixed(ByteBuffer* out) {
  uint64_t len;
  DBGC_RETURN_NOT_OK(ReadUint64(&len));
  DBGC_BOUND(len, remaining(), "length-prefixed block");
  out->Clear();
  out->Append(data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Status::Corruption("skip past end of buffer");
  pos_ += n;
  return Status::OK();
}

}  // namespace dbgc
