// ByteBuffer / ByteReader: growable byte sequences and bounds-checked
// sequential reads. These are the transport types every codec produces and
// consumes (the paper's bit sequence B).

#ifndef DBGC_BITIO_BYTE_BUFFER_H_
#define DBGC_BITIO_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"

namespace dbgc {

/// Upper bound on element counts parsed from untrusted streams; decoders
/// reject larger values before allocating (corruption containment).
/// Alias of kMaxDecodedElements (common/contracts.h), kept for existing
/// call sites.
inline constexpr uint64_t kMaxReasonableCount = kMaxDecodedElements;

/// A growable byte sequence with typed little-endian append helpers.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  /// Number of bytes, |B|.
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const uint8_t* data() const { return bytes_.data(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t>& mutable_bytes() { return bytes_; }

  uint8_t operator[](size_t i) const { return bytes_[i]; }

  void Clear() { bytes_.clear(); }
  void Reserve(size_t n) { bytes_.reserve(n); }

  /// Appends a single byte.
  void AppendByte(uint8_t b) { bytes_.push_back(b); }
  /// Appends raw bytes.
  void Append(const uint8_t* data, size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
  }
  /// Appends another buffer.
  void Append(const ByteBuffer& other) {
    Append(other.data(), other.size());
  }

  /// Appends a fixed-width little-endian unsigned integer.
  void AppendUint16(uint16_t v);
  void AppendUint32(uint32_t v);
  void AppendUint64(uint64_t v);
  /// Appends the IEEE-754 bits of a double (little endian).
  void AppendDouble(double v);

  /// Appends `sub` prefixed by its 64-bit length, so the reader can split
  /// concatenated streams (the grey length blocks in Figure 8).
  void AppendLengthPrefixed(const ByteBuffer& sub);

  bool operator==(const ByteBuffer& o) const { return bytes_ == o.bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential bounds-checked reader over a byte span.
///
/// The reader does not own the underlying bytes; the source buffer must
/// outlive the reader.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const ByteBuffer& buf)
      : ByteReader(buf.data(), buf.size()) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// Current read offset.
  size_t position() const { return pos_; }
  /// True iff every byte has been consumed.
  bool AtEnd() const { return pos_ == size_; }

  /// Reads a single byte.
  Status ReadByte(uint8_t* out);
  /// Reads n raw bytes into out.
  Status Read(uint8_t* out, size_t n);
  /// Reads fixed-width little-endian unsigned integers.
  Status ReadUint16(uint16_t* out);
  Status ReadUint32(uint32_t* out);
  Status ReadUint64(uint64_t* out);
  /// Reads the IEEE-754 bits of a double.
  Status ReadDouble(double* out);

  /// Reads a length-prefixed sub-buffer written by AppendLengthPrefixed.
  Status ReadLengthPrefixed(ByteBuffer* out);

  /// Skips n bytes.
  Status Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dbgc

#endif  // DBGC_BITIO_BYTE_BUFFER_H_
