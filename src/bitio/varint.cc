#include "bitio/varint.h"

namespace dbgc {

void PutVarint64(ByteBuffer* buf, uint64_t v) {
  while (v >= 0x80) {
    buf->AppendByte(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf->AppendByte(static_cast<uint8_t>(v));
}

void PutSignedVarint64(ByteBuffer* buf, int64_t v) {
  PutVarint64(buf, ZigZagEncode(v));
}

Status GetVarint64(ByteReader* reader, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    uint8_t b;
    DBGC_RETURN_NOT_OK(reader->ReadByte(&b));
    if (shift >= 64 || (shift == 63 && (b & 0x7F) > 1)) {
      return Status::Corruption("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status GetSignedVarint64(ByteReader* reader, int64_t* out) {
  uint64_t u;
  DBGC_RETURN_NOT_OK(GetVarint64(reader, &u));
  *out = ZigZagDecode(u);
  return Status::OK();
}

}  // namespace dbgc
