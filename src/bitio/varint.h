// Varint (LEB128) and ZigZag integer encodings, used for lengths and
// side-channel metadata in every bitstream.

#ifndef DBGC_BITIO_VARINT_H_
#define DBGC_BITIO_VARINT_H_

#include <cstdint>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// Maps signed to unsigned integers so that small-magnitude values (positive
/// or negative) become small unsigned values: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends v as a LEB128 varint (1-10 bytes).
void PutVarint64(ByteBuffer* buf, uint64_t v);

/// Appends v zigzag-mapped then varint-encoded.
void PutSignedVarint64(ByteBuffer* buf, int64_t v);

/// Reads a LEB128 varint.
Status GetVarint64(ByteReader* reader, uint64_t* out);

/// Reads a zigzag varint.
Status GetSignedVarint64(ByteReader* reader, int64_t* out);

}  // namespace dbgc

#endif  // DBGC_BITIO_VARINT_H_
