#include "cluster/approx_clustering.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/radix_sort.h"
#include "spatial/voxel_grid.h"

namespace dbgc {

namespace {

constexpr uint64_t kFieldMask = 0x1FFFFF;      // 21 bits per KeyOf field.
constexpr int64_t kSafeCoord = (1 << 20) - 3;  // +-2 neighbours never wrap.

VoxelCoord CoordAt(const Point3& p, double inv_side) {
  return VoxelCoord{static_cast<int32_t>(std::floor(p.x * inv_side)),
                    static_cast<int32_t>(std::floor(p.y * inv_side)),
                    static_cast<int32_t>(std::floor(p.z * inv_side))};
}

// The sorted flat-array replacement for the per-point hash-map probes: the
// distinct cells of one grid resolution, sorted by their packed VoxelGrid
// key, with per-cell point counts and representatives plus the per-point
// cell id. KeyOf packs (z, y, x) high-to-low, so ascending key order groups
// cells sharing (z, y) into contiguous "columns" ascending in x — the block
// sums of the verdict and promotion passes become sliding windows over
// neighbouring columns instead of 5^3 / 3^3 hash probes per cell.
struct CellArray {
  std::vector<uint64_t> keys;     // Sorted packed keys, one per cell.
  std::vector<uint32_t> reps;     // Minimum point index per cell.
  std::vector<uint32_t> counts;   // Points per cell.
  std::vector<uint32_t> cell_of;  // Per point: cell id in `keys` order.
  // Columns: runs of cells sharing key >> 21 (the (z, y) fields).
  std::vector<uint64_t> col_keys;   // key >> 21 per column, ascending.
  std::vector<uint32_t> col_begin;  // First cell of each column; +1 sentinel.

  size_t num_cells() const { return keys.size(); }
};

// Reusable sort buffers: one frame builds two CellArrays (leaf and coarse
// grid), and sharing the buffers halves the transient allocations (and the
// page faults they cost on every frame).
struct CellScratch {
  std::vector<uint64_t> packed;
  std::vector<uint64_t> radix;
};

// All per-frame working buffers of one clustering run. Kept in one
// thread-local slot so consecutive frames on the same thread reuse warm
// pages instead of re-faulting a fresh allocation set each call (worth a
// few ms per frame); every buffer is fully (re)written each run, so reuse
// cannot leak state between frames. Concurrent calls from different
// threads get independent slots.
struct FrameScratch {
  std::vector<uint64_t> leaf_key;
  std::vector<uint64_t> coarse_key;
  CellArray leaf_cells;
  CellArray coarse_cells;
  CellScratch cells;
  std::vector<uint32_t> block_sums;
  std::vector<uint32_t> dense_weight;
  std::vector<uint32_t> near_dense;
  std::vector<uint8_t> coarse_dense;
  std::vector<uint8_t> leaf_dense;
  std::vector<uint8_t> safe;
};

FrameScratch& TlsFrameScratch() {
  // DBGC_LINT_ALLOW(R11): thread_local, so never shared — pure per-thread
  // buffer reuse; every field is fully rewritten by each run.
  thread_local FrameScratch scratch;
  return scratch;
}

// Sorts the per-point keys into a CellArray. The fast path range-compresses
// the three wrapped key fields and packs (local key << idx_bits | point
// index) into one u64, so a few byte-wise counting-sort passes over a flat
// array replace every hash insert and probe; LSD stability makes the first
// element of each sorted run the run's minimum point index, and the run
// scan reads cells straight out of the packed words. Falls back to a
// stable index sort on the raw 63-bit keys when the packed form would
// overflow 64 bits (clouds spanning nearly the full 2^21-cell axis range).
void BuildCellArray(std::span<const uint64_t> point_keys, CellScratch* scratch,
                    CellArray* out) {
  const size_t n = point_keys.size();
  out->keys.clear();
  out->reps.clear();
  out->counts.clear();
  out->cell_of.assign(n, 0);
  out->col_keys.clear();
  out->col_begin.clear();
  if (n == 0) {
    out->col_begin.push_back(0);
    return;
  }

  uint64_t f_min[3] = {kFieldMask, kFieldMask, kFieldMask};
  uint64_t f_max[3] = {0, 0, 0};
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = point_keys[i];
    const uint64_t f0 = k & kFieldMask;
    const uint64_t f1 = (k >> 21) & kFieldMask;
    const uint64_t f2 = k >> 42;
    f_min[0] = std::min(f_min[0], f0);
    f_max[0] = std::max(f_max[0], f0);
    f_min[1] = std::min(f_min[1], f1);
    f_max[1] = std::max(f_max[1], f1);
    f_min[2] = std::min(f_min[2], f2);
    f_max[2] = std::max(f_max[2], f2);
  }
  const int b0 = SignificantBits(f_max[0] - f_min[0]);
  const int b1 = SignificantBits(f_max[1] - f_min[1]);
  const int b2 = SignificantBits(f_max[2] - f_min[2]);
  const int idx_bits = SignificantBits(n - 1);
  const int key_bits = b0 + b1 + b2;

  out->keys.reserve(n / 2 + 8);
  out->reps.reserve(n / 2 + 8);
  out->counts.reserve(n / 2 + 8);

  if (key_bits + idx_bits <= 64) {
    std::vector<uint64_t>& packed = scratch->packed;
    packed.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = point_keys[i];
      const uint64_t local =
          ((((k >> 42) - f_min[2]) << b1 | (((k >> 21) & kFieldMask) - f_min[1]))
           << b0) |
          ((k & kFieldMask) - f_min[0]);
      packed[i] = local << idx_bits | i;
    }
    RadixSortU64(packed, scratch->radix, key_bits + idx_bits);
    // Run scan: each maximal run of one local key is a cell. Equal local
    // keys imply equal original keys (range compression is injective), so
    // the run's first packed word carries the cell's minimum point index.
    const uint64_t idx_mask = (uint64_t{1} << idx_bits) - 1;
    size_t run_begin = 0;
    for (size_t i = 1; i <= n; ++i) {
      if (i == n || (packed[i] >> idx_bits) != (packed[run_begin] >> idx_bits)) {
        const uint32_t cell = static_cast<uint32_t>(out->keys.size());
        const uint32_t rep =
            static_cast<uint32_t>(packed[run_begin] & idx_mask);
        out->keys.push_back(point_keys[rep]);
        out->reps.push_back(rep);
        out->counts.push_back(static_cast<uint32_t>(i - run_begin));
        for (size_t j = run_begin; j < i; ++j) {
          out->cell_of[packed[j] & idx_mask] = cell;
        }
        run_begin = i;
      }
    }
  } else {
    std::vector<uint32_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
    std::vector<uint32_t> perm_scratch;
    RadixSortIndicesByKey(point_keys, perm, perm_scratch, 63);
    size_t run_begin = 0;
    for (size_t i = 1; i <= n; ++i) {
      if (i == n || point_keys[perm[i]] != point_keys[perm[run_begin]]) {
        const uint32_t cell = static_cast<uint32_t>(out->keys.size());
        out->keys.push_back(point_keys[perm[run_begin]]);
        out->reps.push_back(perm[run_begin]);
        out->counts.push_back(static_cast<uint32_t>(i - run_begin));
        for (size_t j = run_begin; j < i; ++j) out->cell_of[perm[j]] = cell;
        run_begin = i;
      }
    }
  }

  // Column index: runs of cells sharing the (z, y) fields.
  for (size_t c = 0; c < out->keys.size(); ++c) {
    const uint64_t col = out->keys[c] >> 21;
    if (out->col_keys.empty() || out->col_keys.back() != col) {
      out->col_keys.push_back(col);
      out->col_begin.push_back(static_cast<uint32_t>(c));
    }
  }
  out->col_begin.push_back(static_cast<uint32_t>(out->keys.size()));
}

// True when every +-`reach` neighbour key of this coordinate is plain field
// arithmetic (no 21-bit wraparound). Real scans sit tens of kilometres away
// from the +-2^20-cell boundary; the slow path below keeps the wrapped
// extremes exact.
bool SafeCoord(const VoxelCoord& c, int32_t reach) {
  return std::abs(static_cast<int64_t>(c.x)) <= kSafeCoord - reach &&
         std::abs(static_cast<int64_t>(c.y)) <= kSafeCoord - reach &&
         std::abs(static_cast<int64_t>(c.z)) <= kSafeCoord - reach;
}

// For every cell of `cells`, sums `weight[cell]` over the (2*reach+1)^3
// block of cells centred on it, into `sums`. Fast path: one merge-join over
// the sorted column arrays per (dy, dz) offset plus a sliding x-window per
// matched column pair — O(cells) per offset, no hashing. Cells whose
// representative coordinate sits within `reach` of the key wraparound get
// exact per-key binary-search block sums instead, reproducing the hash
// implementation's KeyOf probes bit for bit.
void AccumulateBlockSums(const CellArray& cells, std::span<const Point3> pts,
                         double inv_side, int32_t reach, bool all_safe,
                         std::span<const uint32_t> weight,
                         std::vector<uint8_t>& safe,
                         std::vector<uint32_t>* sums) {
  const size_t num_cells = cells.num_cells();
  sums->assign(num_cells, 0);
  if (num_cells == 0) return;

  safe.resize(num_cells);
  bool any_unsafe = false;
  if (all_safe) {
    // The caller proved the whole cloud's coordinate bounding box safe, so
    // the per-cell representative gathers (a cache miss per cell) are
    // unnecessary.
    std::fill(safe.begin(), safe.end(), uint8_t{1});
  } else {
    for (size_t c = 0; c < num_cells; ++c) {
      safe[c] =
          SafeCoord(CoordAt(pts[cells.reps[c]], inv_side), reach) ? 1 : 0;
      any_unsafe |= safe[c] == 0;
    }
  }

  // Per-column weight totals: a neighbour column whose weights sum to zero
  // contributes nothing, so its window pass is skipped outright. The
  // promotion pass weights only dense cells, which concentrate in a small
  // fraction of columns — most pairs vanish.
  const size_t num_cols = cells.col_keys.size();
  std::vector<uint64_t> col_total(num_cols, 0);
  // Narrow per-cell x fields: the window compares touch 4 bytes per cell
  // instead of re-masking the 8-byte keys on every visit.
  std::vector<uint32_t> xs(num_cells);
  for (size_t ci = 0; ci < num_cols; ++ci) {
    for (uint32_t c = cells.col_begin[ci]; c < cells.col_begin[ci + 1]; ++c) {
      col_total[ci] += weight[c];
      xs[c] = static_cast<uint32_t>(cells.keys[c] & kFieldMask);
    }
  }
  // Centre columns outer, the (dy, dz) offsets inner: one centre column's
  // cells stay cache-hot while all its neighbour contributions accumulate,
  // instead of streaming the whole cell array once per offset. Column keys
  // ascend, so each offset keeps a monotone neighbour cursor across the
  // pass (the classic merge-join, one cursor per offset).
  const int32_t span = 2 * reach + 1;
  const size_t num_offsets = static_cast<size_t>(span) * span;
  int64_t deltas[25];
  size_t nbs[25] = {};
  {
    size_t k = 0;
    for (int32_t dz = -reach; dz <= reach; ++dz) {
      for (int32_t dy = -reach; dy <= reach; ++dy) {
        // Column-key offset of the (dy, dz) neighbour, non-wrapping space.
        deltas[k++] = static_cast<int64_t>(dz) * (int64_t{1} << 21) +
                      static_cast<int64_t>(dy);
      }
    }
  }
  for (size_t ci = 0; ci < num_cols; ++ci) {
    const int64_t col = static_cast<int64_t>(cells.col_keys[ci]);
    const uint32_t cb = cells.col_begin[ci];
    const uint32_t ce = cells.col_begin[ci + 1];
    for (size_t k = 0; k < num_offsets; ++k) {
      const int64_t want = col + deltas[k];
      if (want < 0) continue;
      size_t nb = nbs[k];
      while (nb < num_cols && static_cast<int64_t>(cells.col_keys[nb]) < want) {
        ++nb;
      }
      nbs[k] = nb;
      if (nb == num_cols) continue;
      if (static_cast<int64_t>(cells.col_keys[nb]) != want) continue;
      if (col_total[nb] == 0) continue;
      // Sliding x-window: both columns ascend in the x field. Safe cells
      // never have x fields within `reach` of the field range ends, so
      // the window arithmetic cannot underflow or wrap.
      const uint32_t te = cells.col_begin[nb + 1];
      uint32_t lo = cells.col_begin[nb], hi = cells.col_begin[nb];
      uint32_t window = 0;
      for (uint32_t c = cb; c < ce; ++c) {
        if (!safe[c]) continue;
        const uint32_t x = xs[c];
        const uint32_t x_lo = x - static_cast<uint32_t>(reach);
        const uint32_t x_hi = x + static_cast<uint32_t>(reach);
        while (hi < te && xs[hi] <= x_hi) {
          window += weight[hi];
          ++hi;
        }
        while (lo < hi && xs[lo] < x_lo) {
          window -= weight[lo];
          ++lo;
        }
        (*sums)[c] += window;
      }
    }
  }

  if (!any_unsafe) return;
  for (size_t c = 0; c < num_cells; ++c) {
    if (safe[c]) continue;
    const VoxelCoord centre = CoordAt(pts[cells.reps[c]], inv_side);
    uint32_t total = 0;
    for (int32_t dx = -reach; dx <= reach; ++dx) {
      for (int32_t dy = -reach; dy <= reach; ++dy) {
        for (int32_t dz = -reach; dz <= reach; ++dz) {
          const uint64_t key = VoxelGrid::KeyOf(
              VoxelCoord{centre.x + dx, centre.y + dy, centre.z + dz});
          const auto it =
              std::lower_bound(cells.keys.begin(), cells.keys.end(), key);
          if (it != cells.keys.end() && *it == key) {
            total += weight[static_cast<size_t>(it - cells.keys.begin())];
          }
        }
      }
    }
    (*sums)[c] = total;
  }
}

}  // namespace

ClusteringResult ApproxClustering(std::span<const Point3> pts,
                                  const ClusteringParams& params,
                                  const Parallelism& par) {
  ClusteringResult result;
  const size_t n = pts.size();
  result.is_dense.assign(n, false);
  if (n == 0) return result;

  // Counting grid at half-epsilon granularity: the +-2 cell block spans
  // between 1.0 and 1.5 epsilon per dimension around a cell.
  const double inv_coarse = 2.0 / params.epsilon;
  const double inv_cell = 1.0 / params.cell_side;
  // The block region is larger than the exact method's epsilon-ball; for
  // surface-like LiDAR data the block's cross-section holds about twice the
  // points of the epsilon-disc, so the threshold is scaled to match the
  // exact method's decisions (measured agreement ~98%).
  const size_t min_pts = params.min_pts * 2;

  // Global coordinate bounding box: floor() is monotone, so the extreme
  // cell coordinates of each grid come from the extreme point coordinates.
  // When even the extremes sit clear of the key wraparound (the usual
  // case — a real scan is tens of kilometres from the boundary), the block
  // sum passes skip their per-cell safety gathers entirely.
  double mn[3] = {pts[0].x, pts[0].y, pts[0].z};
  double mx[3] = {pts[0].x, pts[0].y, pts[0].z};
  for (size_t i = 1; i < n; ++i) {
    mn[0] = std::min(mn[0], pts[i].x);
    mx[0] = std::max(mx[0], pts[i].x);
    mn[1] = std::min(mn[1], pts[i].y);
    mx[1] = std::max(mx[1], pts[i].y);
    mn[2] = std::min(mn[2], pts[i].z);
    mx[2] = std::max(mx[2], pts[i].z);
  }
  const auto bbox_safe = [&](double inv_side, int32_t reach) {
    const Point3 lo{mn[0], mn[1], mn[2]};
    const Point3 hi{mx[0], mx[1], mx[2]};
    return SafeCoord(CoordAt(lo, inv_side), reach) &&
           SafeCoord(CoordAt(hi, inv_side), reach);
  };
  const bool coarse_all_safe = bbox_safe(inv_coarse, 2);
  const bool leaf_all_safe = bbox_safe(inv_cell, 1);

  // Key derivation: two packed cell keys per point, written to disjoint
  // slots, so the pass parallelizes without any merge step.
  FrameScratch& fs = TlsFrameScratch();
  std::vector<uint64_t>& leaf_key = fs.leaf_key;
  std::vector<uint64_t>& coarse_key = fs.coarse_key;
  leaf_key.resize(n);
  coarse_key.resize(n);
  const Status key_status =
      par.For(0, n, par.GrainFor(n, 2048), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          leaf_key[i] = VoxelGrid::KeyOf(CoordAt(pts[i], inv_cell));
          coarse_key[i] = VoxelGrid::KeyOf(CoordAt(pts[i], inv_coarse));
        }
      });
  DBGC_CHECK(key_status.ok());

  // Flat sorted cell arrays replace the per-point hash maps: counts,
  // representatives, and per-point cell ids all fall out of one stable
  // radix sort per grid.
  CellArray& leaf_cells = fs.leaf_cells;
  CellArray& coarse_cells = fs.coarse_cells;
  BuildCellArray(leaf_key, &fs.cells, &leaf_cells);
  BuildCellArray(coarse_key, &fs.cells, &coarse_cells);

  // Pass 1: a leaf cell is dense when the 5^3 coarse block around its
  // representative's coarse cell holds at least minPts points. The block
  // sums are sliding windows over the sorted coarse columns; each verdict
  // is a pure function of the frozen counts, so evaluation order is
  // irrelevant.
  std::vector<uint32_t>& block_sums = fs.block_sums;
  AccumulateBlockSums(coarse_cells, pts, inv_coarse, 2, coarse_all_safe,
                      coarse_cells.counts, fs.safe, &block_sums);
  std::vector<uint8_t>& coarse_dense = fs.coarse_dense;
  coarse_dense.resize(coarse_cells.num_cells());
  for (size_t c = 0; c < coarse_cells.num_cells(); ++c) {
    coarse_dense[c] = block_sums[c] >= min_pts ? 1 : 0;
  }
  // A leaf cell takes the verdict of its representative point's coarse cell
  // (the grids are not nested, so a leaf cell can straddle two coarse
  // cells; the representative — the cell's minimum point index — pins
  // which coarse cell decides, matching the scan-order representative of
  // the hash implementation).
  std::vector<uint8_t>& leaf_dense = fs.leaf_dense;
  leaf_dense.resize(leaf_cells.num_cells());
  for (size_t c = 0; c < leaf_cells.num_cells(); ++c) {
    leaf_dense[c] = coarse_dense[coarse_cells.cell_of[leaf_cells.reps[c]]];
  }

  // Pass 2: promote sparse leaf cells that touch a dense leaf cell
  // (26-neighbourhood), mirroring the paper's "if a sparse cell has at
  // least one dense cell as a surrounding cell" promotion. The window sums
  // read only the pre-promotion flags, so the result matches the two-phase
  // hash scan exactly; a candidate's own flag is zero, so the full 3^3
  // block sum equals the 26-neighbour sum.
  std::vector<uint32_t>& dense_weight = fs.dense_weight;
  dense_weight.resize(leaf_cells.num_cells());
  for (size_t c = 0; c < leaf_cells.num_cells(); ++c) {
    dense_weight[c] = leaf_dense[c];
  }
  std::vector<uint32_t>& near_dense = fs.near_dense;
  AccumulateBlockSums(leaf_cells, pts, inv_cell, 1, leaf_all_safe,
                      dense_weight, fs.safe, &near_dense);
  for (size_t c = 0; c < leaf_cells.num_cells(); ++c) {
    if (!leaf_dense[c] && near_dense[c] > 0) leaf_dense[c] = 1;
  }

  // Pass 3: label points by leaf-cell membership (pure gather).
  for (size_t i = 0; i < n; ++i) {
    result.is_dense[i] = leaf_dense[leaf_cells.cell_of[i]] != 0;
  }
  return result;
}

}  // namespace dbgc
