#include "cluster/approx_clustering.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/flat_map.h"
#include "common/check.h"
#include "spatial/voxel_grid.h"

namespace dbgc {

namespace {

VoxelCoord CoordAt(const Point3& p, double inv_side) {
  return VoxelCoord{static_cast<int32_t>(std::floor(p.x * inv_side)),
                    static_cast<int32_t>(std::floor(p.y * inv_side)),
                    static_cast<int32_t>(std::floor(p.z * inv_side))};
}

}  // namespace

ClusteringResult ApproxClustering(const PointCloud& pc,
                                  const ClusteringParams& params,
                                  const Parallelism& par) {
  ClusteringResult result;
  const size_t n = pc.size();
  result.is_dense.assign(n, false);
  if (n == 0) return result;

  // Counting grid at half-epsilon granularity: the +-2 cell block spans
  // between 1.0 and 1.5 epsilon per dimension around a cell.
  const double inv_coarse = 2.0 / params.epsilon;
  const double inv_cell = 1.0 / params.cell_side;
  // The block region is larger than the exact method's epsilon-ball; for
  // surface-like LiDAR data the block's cross-section holds about twice the
  // points of the epsilon-disc, so the threshold is scaled to match the
  // exact method's decisions (measured agreement ~98%).
  const size_t min_pts = params.min_pts * 2;

  // One pass: per-point leaf key and coarse key; aggregate coarse counts.
  // Under a thread budget each worker aggregates a contiguous slice into
  // its own map; the merge adds counters, which commutes, so the merged
  // counts match the serial single-map run exactly.
  std::vector<uint64_t> leaf_key(n);
  std::vector<uint64_t> coarse_key(n);
  FlatCountMap coarse_counts(n / 3 + 8);
  const size_t parts =
      par.enabled() && n >= 4096 ? static_cast<size_t>(par.width()) : 1;
  if (parts <= 1) {
    for (size_t i = 0; i < n; ++i) {
      leaf_key[i] = VoxelGrid::KeyOf(CoordAt(pc[i], inv_cell));
      coarse_key[i] = VoxelGrid::KeyOf(CoordAt(pc[i], inv_coarse));
      coarse_counts.Add(coarse_key[i], 1);
    }
  } else {
    std::vector<FlatCountMap> part_counts;
    part_counts.reserve(parts);
    for (size_t p = 0; p < parts; ++p) {
      part_counts.emplace_back(n / parts / 3 + 8);
    }
    const size_t slice = (n + parts - 1) / parts;
    const Status key_status = par.For(0, parts, 1, [&](size_t lo, size_t hi) {
      for (size_t p = lo; p < hi; ++p) {
        const size_t pb = p * slice;
        const size_t pe = std::min(n, pb + slice);
        for (size_t i = pb; i < pe; ++i) {
          leaf_key[i] = VoxelGrid::KeyOf(CoordAt(pc[i], inv_cell));
          coarse_key[i] = VoxelGrid::KeyOf(CoordAt(pc[i], inv_coarse));
          part_counts[p].Add(coarse_key[i], 1);
        }
      }
    });
    DBGC_CHECK(key_status.ok());
    for (const FlatCountMap& m : part_counts) {
      m.ForEach(
          [&](uint64_t key, uint32_t count) { coarse_counts.Add(key, count); });
    }
  }

  // Pass 1: a leaf cell is dense when the 5^3 coarse block around its
  // representative coarse cell holds at least minPts points. Each distinct
  // coarse cell gets its verdict from one representative point; the block
  // sum is a pure function of the (frozen) coarse counts, so the verdicts
  // can be computed concurrently and applied in the serial scan order.
  FlatCountMap dense_cells(n / 4 + 8);
  FlatCountMap seen_cells(n / 2 + 8);
  std::vector<size_t> first_point_of_cell;  // For the promotion pass.
  first_point_of_cell.reserve(n / 2);
  for (size_t i = 0; i < n; ++i) {
    if (seen_cells.Contains(leaf_key[i])) continue;
    seen_cells.Add(leaf_key[i], 1);
    first_point_of_cell.push_back(i);
  }
  FlatCountMap coarse_seen(n / 3 + 8);
  std::vector<size_t> coarse_rep;  // One representative per coarse cell.
  coarse_rep.reserve(first_point_of_cell.size());
  for (size_t i : first_point_of_cell) {
    if (coarse_seen.Contains(coarse_key[i])) continue;
    coarse_seen.Add(coarse_key[i], 1);
    coarse_rep.push_back(i);
  }
  // verdicts[j]: 1 = block >= minPts, 2 = block below.
  std::vector<uint32_t> verdicts(coarse_rep.size());
  const Status verdict_status = par.For(
      0, coarse_rep.size(), par.GrainFor(coarse_rep.size(), 64),
      [&](size_t lo, size_t hi) {
        for (size_t j = lo; j < hi; ++j) {
          const VoxelCoord center = CoordAt(pc[coarse_rep[j]], inv_coarse);
          uint64_t total = 0;
          for (int dx = -2; dx <= 2 && total < min_pts; ++dx) {
            for (int dy = -2; dy <= 2 && total < min_pts; ++dy) {
              for (int dz = -2; dz <= 2; ++dz) {
                total += coarse_counts.Get(VoxelGrid::KeyOf(VoxelCoord{
                    center.x + dx, center.y + dy, center.z + dz}));
                if (total >= min_pts) break;
              }
            }
          }
          verdicts[j] = total >= min_pts ? 1 : 2;
        }
      });
  DBGC_CHECK(verdict_status.ok());
  FlatCountMap coarse_dense(n / 3 + 8);
  for (size_t j = 0; j < coarse_rep.size(); ++j) {
    coarse_dense.Add(coarse_key[coarse_rep[j]], verdicts[j]);
  }
  for (size_t i : first_point_of_cell) {
    if (coarse_dense.Get(coarse_key[i]) == 1) dense_cells.Add(leaf_key[i], 1);
  }

  // Pass 2: promote sparse leaf cells that touch a dense leaf cell
  // (26-neighbourhood), mirroring the paper's "if a sparse cell has at
  // least one dense cell as a surrounding cell" promotion. The scan only
  // reads dense_cells, so the per-cell answers go to disjoint slots of a
  // flag array and are applied afterwards in scan order.
  std::vector<uint8_t> near_dense_flags(first_point_of_cell.size(), 0);
  const Status promote_status = par.For(
      0, first_point_of_cell.size(),
      par.GrainFor(first_point_of_cell.size(), 512),
      [&](size_t lo, size_t hi) {
        for (size_t j = lo; j < hi; ++j) {
          const size_t i = first_point_of_cell[j];
          if (dense_cells.Contains(leaf_key[i])) continue;
          const VoxelCoord c = CoordAt(pc[i], inv_cell);
          bool near_dense = false;
          for (int dx = -1; dx <= 1 && !near_dense; ++dx) {
            for (int dy = -1; dy <= 1 && !near_dense; ++dy) {
              for (int dz = -1; dz <= 1 && !near_dense; ++dz) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                if (dense_cells.Contains(VoxelGrid::KeyOf(
                        VoxelCoord{c.x + dx, c.y + dy, c.z + dz}))) {
                  near_dense = true;
                }
              }
            }
          }
          if (near_dense) near_dense_flags[j] = 1;
        }
      });
  DBGC_CHECK(promote_status.ok());
  for (size_t j = 0; j < first_point_of_cell.size(); ++j) {
    if (near_dense_flags[j]) dense_cells.Add(leaf_key[first_point_of_cell[j]], 1);
  }

  // Pass 3: label points by leaf-cell membership.
  for (size_t i = 0; i < n; ++i) {
    if (dense_cells.Contains(leaf_key[i])) result.is_dense[i] = true;
  }
  return result;
}

}  // namespace dbgc
