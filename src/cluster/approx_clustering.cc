#include "cluster/approx_clustering.h"

#include <cmath>
#include <vector>

#include "cluster/flat_map.h"
#include "spatial/voxel_grid.h"

namespace dbgc {

namespace {

VoxelCoord CoordAt(const Point3& p, double inv_side) {
  return VoxelCoord{static_cast<int32_t>(std::floor(p.x * inv_side)),
                    static_cast<int32_t>(std::floor(p.y * inv_side)),
                    static_cast<int32_t>(std::floor(p.z * inv_side))};
}

}  // namespace

ClusteringResult ApproxClustering(const PointCloud& pc,
                                  const ClusteringParams& params) {
  ClusteringResult result;
  const size_t n = pc.size();
  result.is_dense.assign(n, false);
  if (n == 0) return result;

  // Counting grid at half-epsilon granularity: the +-2 cell block spans
  // between 1.0 and 1.5 epsilon per dimension around a cell.
  const double inv_coarse = 2.0 / params.epsilon;
  const double inv_cell = 1.0 / params.cell_side;
  // The block region is larger than the exact method's epsilon-ball; for
  // surface-like LiDAR data the block's cross-section holds about twice the
  // points of the epsilon-disc, so the threshold is scaled to match the
  // exact method's decisions (measured agreement ~98%).
  const size_t min_pts = params.min_pts * 2;

  // One pass: per-point leaf key and coarse key; aggregate coarse counts.
  std::vector<uint64_t> leaf_key(n);
  std::vector<uint64_t> coarse_key(n);
  FlatCountMap coarse_counts(n / 3 + 8);
  for (size_t i = 0; i < n; ++i) {
    leaf_key[i] = VoxelGrid::KeyOf(CoordAt(pc[i], inv_cell));
    coarse_key[i] = VoxelGrid::KeyOf(CoordAt(pc[i], inv_coarse));
    coarse_counts.Add(coarse_key[i], 1);
  }

  // Pass 1: a leaf cell is dense when the 5^3 coarse block around its
  // representative coarse cell holds at least minPts points. Block sums are
  // cached per coarse cell (many leaf cells share one).
  // coarse_dense: 1 = block >= minPts, 2 = block below; 0 = not computed.
  FlatCountMap coarse_dense(n / 3 + 8);
  FlatCountMap dense_cells(n / 4 + 8);
  FlatCountMap seen_cells(n / 2 + 8);
  std::vector<size_t> first_point_of_cell;  // For the promotion pass.
  first_point_of_cell.reserve(n / 2);
  for (size_t i = 0; i < n; ++i) {
    if (seen_cells.Contains(leaf_key[i])) continue;
    seen_cells.Add(leaf_key[i], 1);
    first_point_of_cell.push_back(i);
  }
  for (size_t i : first_point_of_cell) {
    uint32_t verdict = coarse_dense.Get(coarse_key[i]);
    if (verdict == 0) {
      const VoxelCoord center = CoordAt(pc[i], inv_coarse);
      uint64_t total = 0;
      for (int dx = -2; dx <= 2 && total < min_pts; ++dx) {
        for (int dy = -2; dy <= 2 && total < min_pts; ++dy) {
          for (int dz = -2; dz <= 2; ++dz) {
            total += coarse_counts.Get(VoxelGrid::KeyOf(VoxelCoord{
                center.x + dx, center.y + dy, center.z + dz}));
            if (total >= min_pts) break;
          }
        }
      }
      verdict = total >= min_pts ? 1 : 2;
      coarse_dense.Add(coarse_key[i], verdict);
    }
    if (verdict == 1) dense_cells.Add(leaf_key[i], 1);
  }

  // Pass 2: promote sparse leaf cells that touch a dense leaf cell
  // (26-neighbourhood), mirroring the paper's "if a sparse cell has at
  // least one dense cell as a surrounding cell" promotion.
  std::vector<uint64_t> promoted;
  for (size_t i : first_point_of_cell) {
    if (dense_cells.Contains(leaf_key[i])) continue;
    const VoxelCoord c = CoordAt(pc[i], inv_cell);
    bool near_dense = false;
    for (int dx = -1; dx <= 1 && !near_dense; ++dx) {
      for (int dy = -1; dy <= 1 && !near_dense; ++dy) {
        for (int dz = -1; dz <= 1 && !near_dense; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          if (dense_cells.Contains(VoxelGrid::KeyOf(
                  VoxelCoord{c.x + dx, c.y + dy, c.z + dz}))) {
            near_dense = true;
          }
        }
      }
    }
    if (near_dense) promoted.push_back(leaf_key[i]);
  }
  for (uint64_t key : promoted) dense_cells.Add(key, 1);

  // Pass 3: label points by leaf-cell membership.
  for (size_t i = 0; i < n; ++i) {
    if (dense_cells.Contains(leaf_key[i])) result.is_dense[i] = true;
  }
  return result;
}

}  // namespace dbgc
