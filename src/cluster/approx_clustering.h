// Approximate O(n) density clustering (Section 4.3), in the spirit of
// grid-based approximate DBSCAN [19].
//
// Point counts are aggregated on a coarse counting grid; the neighbourhood
// of a leaf cell is the fixed block of coarse cells covering roughly the
// +-epsilon cube around it. A leaf cell whose block holds at least minPts
// points is dense; a sparse cell adjacent to a dense cell is promoted; all
// points in dense cells are dense. The neighbourhood region differs from
// the exact epsilon-ball only near its boundary (between 1.0 and ~1.5
// epsilon per dimension depending on alignment), which is what makes the
// method approximate — and roughly twice as fast end to end.

#ifndef DBGC_CLUSTER_APPROX_CLUSTERING_H_
#define DBGC_CLUSTER_APPROX_CLUSTERING_H_

#include <span>

#include "cluster/clustering_types.h"
#include "common/point_cloud.h"
#include "common/thread_pool.h"

namespace dbgc {

/// Runs the approximate grid clustering over any contiguous point storage
/// (pass PointCloud::view()). Cell statistics live in flat radix-sorted
/// key arrays rather than hash maps; the block sums of the verdict and
/// promotion passes are sliding windows over the sorted cell columns. The
/// optional thread budget parallelizes the per-point key derivation (all
/// writes go to disjoint slots); the sort and window passes are
/// deterministic by construction, so the labeling is identical for any
/// budget.
ClusteringResult ApproxClustering(std::span<const Point3> pts,
                                  const ClusteringParams& params,
                                  const Parallelism& par = {});

}  // namespace dbgc

#endif  // DBGC_CLUSTER_APPROX_CLUSTERING_H_
