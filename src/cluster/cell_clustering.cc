#include "cluster/cell_clustering.h"

#include <vector>

#include "cluster/flat_map.h"
#include "common/check.h"
#include "spatial/voxel_grid.h"

namespace dbgc {

ClusteringResult CellClustering(const PointCloud& pc,
                                const ClusteringParams& params,
                                const Parallelism& par) {
  ClusteringResult result;
  const size_t n = pc.size();
  result.is_dense.assign(n, false);
  if (n == 0) return result;

  // Neighbour search grid at epsilon granularity (27-cell scans) and the
  // octree-leaf cell membership grid at 2q granularity.
  VoxelGrid search_grid(pc, params.epsilon);
  VoxelGrid cell_grid(pc, params.cell_side);

  std::vector<uint64_t> cell_of(n);
  const Status cell_status =
      par.For(0, n, par.GrainFor(n, 2048), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          cell_of[i] = VoxelGrid::KeyOf(cell_grid.CoordOf(pc[i]));
        }
      });
  DBGC_CHECK(cell_status.ok());

  // Open-addressed flat set: the dense-cell shortcut probes this once per
  // expanded point, and node-based containers are banned from the
  // clustering hot paths (lint rule R13).
  FlatCountMap dense_cells(n / 4 + 8);
  std::vector<bool> visited(n, false);
  std::vector<int> stack;

  // The core predicate is pure, so under a thread budget it is evaluated
  // for every point up front; the expansion below then consumes the cached
  // answers exactly where the serial run would have evaluated lazily,
  // keeping the dense/sparse labeling bit-identical. The dense-cell
  // shortcut still skips the *lookup*, preserving the serial semantics.
  std::vector<uint8_t> core_cache;
  if (par.enabled() && n >= 1024) {
    core_cache.resize(n);
    const Status core_status =
        par.For(0, n, par.GrainFor(n, 256), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            core_cache[i] =
                search_grid.CountWithinRadius(pc[i], params.epsilon,
                                              params.min_pts) >= params.min_pts
                    ? 1
                    : 0;
          }
        });
    DBGC_CHECK(core_status.ok());
  }

  auto is_core = [&](int idx) {
    if (!core_cache.empty()) return core_cache[static_cast<size_t>(idx)] != 0;
    return search_grid.CountWithinRadius(pc[idx], params.epsilon,
                                         params.min_pts) >= params.min_pts;
  };

  for (size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    const bool seed_in_dense_cell = dense_cells.Contains(cell_of[seed]);
    bool seed_core = seed_in_dense_cell;
    if (!seed_core) {
      seed_core = is_core(static_cast<int>(seed));
      if (seed_core) dense_cells.Add(cell_of[seed], 1);
    }
    if (!seed_core) continue;  // Backtrack; may become dense in pass 2.
    result.is_dense[seed] = true;
    stack.clear();
    for (int nb : search_grid.RadiusSearch(pc[seed], params.epsilon)) {
      stack.push_back(nb);
    }
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      if (visited[cur]) continue;
      visited[cur] = true;
      result.is_dense[cur] = true;  // Cluster member (core or border).
      bool cur_core = dense_cells.Contains(cell_of[cur]);
      if (!cur_core) {
        cur_core = is_core(cur);
        if (cur_core) dense_cells.Add(cell_of[cur], 1);
      }
      if (cur_core) {
        for (int nb : search_grid.RadiusSearch(pc[cur], params.epsilon)) {
          if (!visited[nb]) stack.push_back(nb);
        }
      }
    }
  }

  // Second iteration (Section 3.2): points that were classified before
  // their cell became dense are promoted now.
  for (size_t i = 0; i < n; ++i) {
    if (!result.is_dense[i] && dense_cells.Contains(cell_of[i])) {
      result.is_dense[i] = true;
    }
  }
  return result;
}

}  // namespace dbgc
