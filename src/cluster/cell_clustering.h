// Exact cell-based density clustering (Section 3.2).
//
// The algorithm adapts DBSCAN [15] to the octree: besides dense *points* it
// tracks dense *cells* (octree leaf cells, side 2q). When a point lies in a
// cell already known to be dense, the expensive epsilon-neighbourhood count
// is skipped and the point is expanded directly; after the expansion pass, a
// second sweep promotes every point sharing a cell with a dense point. Both
// optimizations preserve the paper's semantics: the octree can absorb all
// points of a dense cell at no extra cost (Example 3.1).

#ifndef DBGC_CLUSTER_CELL_CLUSTERING_H_
#define DBGC_CLUSTER_CELL_CLUSTERING_H_

#include "cluster/clustering_types.h"
#include "common/point_cloud.h"
#include "common/thread_pool.h"

namespace dbgc {

/// Runs the exact cell-based clustering. The optional thread budget
/// parallelizes the per-point core tests (a pure predicate), leaving the
/// expansion order — and therefore the labeling — identical to the serial
/// run.
ClusteringResult CellClustering(const PointCloud& pc,
                                const ClusteringParams& params,
                                const Parallelism& par = {});

}  // namespace dbgc

#endif  // DBGC_CLUSTER_CELL_CLUSTERING_H_
