// Shared types for the density-based clustering algorithms of Sections 3.2
// and 4.3.

#ifndef DBGC_CLUSTER_CLUSTERING_TYPES_H_
#define DBGC_CLUSTER_CLUSTERING_TYPES_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace dbgc {

/// Parameters of density-based clustering, derived from the user error
/// bound as prescribed in Section 3.2:
///   epsilon  = k * q_xyz                (k = 10 by default)
///   min_pts  = pi * k^3 / 6             (non-empty leaf cells in the
///                                        epsilon-sphere, leaf side 2q)
///   cell_side = 2 * q_xyz               (octree leaf side)
struct ClusteringParams {
  double epsilon = 0.2;
  size_t min_pts = 523;
  double cell_side = 0.04;

  /// Derives the paper's parameter values from the error bound.
  /// `min_pts_scale` rescales the derived minPts (1.0 = paper formula);
  /// exposed for sensitivity experiments.
  static ClusteringParams FromErrorBound(double q_xyz, int k = 10,
                                         double min_pts_scale = 1.0) {
    ClusteringParams p;
    p.cell_side = 2.0 * q_xyz;
    p.epsilon = k * q_xyz;
    const double raw =
        M_PI * static_cast<double>(k) * k * k / 6.0 * min_pts_scale;
    p.min_pts = static_cast<size_t>(raw < 1.0 ? 1.0 : raw);
    return p;
  }
};

/// Output of a clustering pass: the dense/sparse label per point.
struct ClusteringResult {
  std::vector<bool> is_dense;

  /// Number of points labelled dense.
  size_t NumDense() const {
    size_t n = 0;
    for (bool b : is_dense) n += b ? 1 : 0;
    return n;
  }
};

}  // namespace dbgc

#endif  // DBGC_CLUSTER_CLUSTERING_TYPES_H_
