#include "cluster/dbscan.h"

#include "spatial/voxel_grid.h"

namespace dbgc {

DbscanResult Dbscan(const PointCloud& pc, const ClusteringParams& params) {
  DbscanResult result;
  const size_t n = pc.size();
  result.labels.assign(n, DbscanResult::kNoise);
  if (n == 0) return result;

  VoxelGrid grid(pc, params.epsilon);
  std::vector<bool> visited(n, false);
  std::vector<int> stack;

  for (size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    std::vector<int> neighbors =
        grid.RadiusSearch(pc[seed], params.epsilon);
    if (neighbors.size() < params.min_pts) continue;
    const int cluster = result.num_clusters++;
    result.labels[seed] = cluster;
    stack = std::move(neighbors);
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      if (result.labels[cur] == DbscanResult::kNoise) {
        result.labels[cur] = cluster;  // Border or core member.
      }
      if (visited[cur]) continue;
      visited[cur] = true;
      std::vector<int> nb = grid.RadiusSearch(pc[cur], params.epsilon);
      if (nb.size() >= params.min_pts) {
        for (int x : nb) {
          if (!visited[x] || result.labels[x] == DbscanResult::kNoise) {
            stack.push_back(x);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace dbgc
