// Reference point-wise DBSCAN [15], used to validate the cell-based and
// approximate clustering methods on small inputs.

#ifndef DBGC_CLUSTER_DBSCAN_H_
#define DBGC_CLUSTER_DBSCAN_H_

#include <vector>

#include "cluster/clustering_types.h"
#include "common/point_cloud.h"

namespace dbgc {

/// DBSCAN labels: cluster id per point, or kNoise.
struct DbscanResult {
  static constexpr int kNoise = -1;
  std::vector<int> labels;
  int num_clusters = 0;

  /// Converts to the dense/sparse view (any cluster member is dense).
  ClusteringResult ToClusteringResult() const {
    ClusteringResult r;
    r.is_dense.reserve(labels.size());
    for (int l : labels) r.is_dense.push_back(l != kNoise);
    return r;
  }
};

/// Runs classic DBSCAN with the given epsilon / minPts (cell_side unused).
DbscanResult Dbscan(const PointCloud& pc, const ClusteringParams& params);

}  // namespace dbgc

#endif  // DBGC_CLUSTER_DBSCAN_H_
