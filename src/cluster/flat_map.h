// FlatCountMap: a minimal open-addressing hash map from 64-bit keys to
// counters, used by the clustering hot paths where std::unordered_map's
// per-node allocation and pointer chasing dominate the profile.

#ifndef DBGC_CLUSTER_FLAT_MAP_H_
#define DBGC_CLUSTER_FLAT_MAP_H_

#include <cstdint>
#include <vector>

namespace dbgc {

/// Open-addressing (linear probe) map keyed by uint64 values. Key 0 marks
/// empty slots internally, so the (rare) zero key is tracked in a separate
/// side slot rather than remapped - remapping could collide with a real
/// key.
class FlatCountMap {
 public:
  /// Creates a map sized for ~`expected` keys.
  explicit FlatCountMap(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    keys_.assign(cap, 0);
    values_.assign(cap, 0);
    mask_ = cap - 1;
  }

  /// Adds `delta` to the counter of `key`; creates it at zero first.
  void Add(uint64_t key, uint32_t delta) {
    if (key == 0) {
      if (!has_zero_) {
        has_zero_ = true;
        ++size_;
      }
      zero_value_ += delta;
      return;
    }
    size_t slot = Hash(key) & mask_;
    for (;;) {
      if (keys_[slot] == key) {
        values_[slot] += delta;
        return;
      }
      if (keys_[slot] == 0) {
        if (++size_ * 2 > keys_.size()) {
          Grow();
          Add(key, delta);
          return;
        }
        keys_[slot] = key;
        values_[slot] = delta;
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Counter of `key`, or 0 when absent.
  uint32_t Get(uint64_t key) const {
    if (key == 0) return has_zero_ ? zero_value_ : 0;
    size_t slot = Hash(key) & mask_;
    for (;;) {
      if (keys_[slot] == key) return values_[slot];
      if (keys_[slot] == 0) return 0;
      slot = (slot + 1) & mask_;
    }
  }

  /// True iff the key is present (counter may still be 0).
  bool Contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    size_t slot = Hash(key) & mask_;
    for (;;) {
      if (keys_[slot] == key) return true;
      if (keys_[slot] == 0) return false;
      slot = (slot + 1) & mask_;
    }
  }

  size_t size() const { return size_; }

  /// Visits every (key, counter) pair. Iteration order follows the probe
  /// layout and is NOT deterministic across differently-built maps; callers
  /// merging maps must combine with an order-independent operation (counter
  /// addition) so the merged contents stay deterministic.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(uint64_t{0}, zero_value_);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) fn(keys_[i], values_[i]);
    }
  }

 private:
  static uint64_t Hash(uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, 0);
    values_.assign(old_values.size() * 2, 0);
    mask_ = keys_.size() - 1;
    size_ = has_zero_ ? 1 : 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != 0) {
        size_t slot = Hash(old_keys[i]) & mask_;
        while (keys_[slot] != 0) slot = (slot + 1) & mask_;
        keys_[slot] = old_keys[i];
        values_[slot] = old_values[i];
        ++size_;
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
  uint32_t zero_value_ = 0;
};

}  // namespace dbgc

#endif  // DBGC_CLUSTER_FLAT_MAP_H_
