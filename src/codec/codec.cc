#include "codec/codec.h"

#include "codec/gpcc_like_codec.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"

namespace dbgc {

double CompressionRatio(const PointCloud& pc, const ByteBuffer& compressed) {
  if (compressed.size() == 0) return 0.0;
  return static_cast<double>(pc.RawSizeBytes()) /
         static_cast<double>(compressed.size());
}

double BandwidthMbps(const ByteBuffer& compressed, double fps) {
  return 8.0 * fps * static_cast<double>(compressed.size()) / 1e6;
}

std::vector<std::unique_ptr<GeometryCodec>> MakeBaselineCodecs() {
  std::vector<std::unique_ptr<GeometryCodec>> codecs;
  codecs.push_back(std::make_unique<OctreeCodec>());
  codecs.push_back(std::make_unique<OctreeGroupedCodec>());
  codecs.push_back(std::make_unique<KdTreeCodec>());
  codecs.push_back(std::make_unique<GpccLikeCodec>());
  return codecs;
}

}  // namespace dbgc
