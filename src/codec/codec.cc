#include "codec/codec.h"

#include <cmath>
#include <map>

#include "codec/gpcc_like_codec.h"
#include "common/mutex.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbgc {

namespace internal {

/// Registry handles for one codec name. Every increment on the Compress /
/// Decompress hot path goes through these cached pointers — the registry
/// map lookup happens once per name, not once per frame.
struct CodecMetrics {
  obs::Counter* compress_frames;
  obs::Counter* compress_points;
  obs::Counter* compress_bytes_in;   // Raw geometry bytes (12 per point).
  obs::Counter* compress_bytes_out;  // Emitted bitstream bytes.
  obs::Counter* decompress_frames;
  obs::Counter* decompress_bytes_in;
  obs::Counter* decompress_points;
  obs::Histogram* compress_seconds;
  obs::Histogram* decompress_seconds;
};

}  // namespace internal

namespace {

Status ValidateBudget(ThreadPool* pool, int max_threads) {
  if (max_threads < 0) {
    return Status::InvalidArgument("codec: max_threads must be >= 0");
  }
  (void)pool;  // A null pool is valid (serial execution).
  return Status::OK();
}

/// Interns the handle block for `codec`: one block per distinct name, kept
/// alive for the process so GeometryCodec can cache the pointer.
const internal::CodecMetrics& MetricsForName(const std::string& codec) {
  static Mutex mutex;
  // DBGC_LINT_ALLOW(R11): per-codec-name intern table, registry-internal by
  // design and guarded by the adjacent static mutex for the process life.
  static auto* blocks = new std::map<std::string, internal::CodecMetrics>();
  MutexLock lock(mutex);
  auto it = blocks->find(codec);
  if (it == blocks->end()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const auto counter = [&](const char* base) {
      return reg.GetCounter(obs::LabeledName(base, {{"codec", codec}}));
    };
    const auto histogram = [&](const char* base) {
      return reg.GetHistogram(obs::LabeledName(base, {{"codec", codec}}));
    };
    internal::CodecMetrics m;
    m.compress_frames = counter("codec_compress_frames_total");
    m.compress_points = counter("codec_compress_points_total");
    m.compress_bytes_in = counter("codec_compress_bytes_in_total");
    m.compress_bytes_out = counter("codec_compress_bytes_out_total");
    m.decompress_frames = counter("codec_decompress_frames_total");
    m.decompress_bytes_in = counter("codec_decompress_bytes_in_total");
    m.decompress_points = counter("codec_decompress_points_total");
    m.compress_seconds = histogram("codec_compress_seconds");
    m.decompress_seconds = histogram("codec_decompress_seconds");
    it = blocks->emplace(codec, m).first;
  }
  return it->second;
}

/// Error-path accounting: one increment per failed Decompress call, labeled
/// by codec and status code. Resolved per event — decode errors are rare,
/// and the reason label space is the StatusCode enum.
void CountDecodeError(const std::string& codec, StatusCode code) {
  obs::MetricsRegistry::Global()
      .GetCounter(obs::LabeledName(
          "decode_error_total",
          {{"codec", codec}, {"reason", StatusCodeToString(code)}}))
      ->Increment();
}

}  // namespace

const internal::CodecMetrics& GeometryCodec::metrics() const {
  const internal::CodecMetrics* m = metrics_.load(std::memory_order_acquire);
  if (m == nullptr) {
    m = &MetricsForName(name());
    metrics_.store(m, std::memory_order_release);
  }
  return *m;
}

Result<ByteBuffer> GeometryCodec::Compress(const PointCloud& pc,
                                           const CompressParams& params) const {
  DBGC_RETURN_NOT_OK(ValidateBudget(params.pool, params.max_threads));
  if (std::isnan(params.q_xyz)) {
    return Status::InvalidArgument("codec: q_xyz is NaN");
  }
  const internal::CodecMetrics& m = metrics();
  Result<ByteBuffer> result = [&] {
    obs::ScopedTimer timer(nullptr, m.compress_seconds);
    return CompressImpl(pc, params);
  }();
  if (!result.ok()) return result;
  // Container framing: one version byte naming the entropy backend, so the
  // decode side can dispatch with no out-of-band knowledge (docs/ENTROPY.md).
  ByteBuffer framed;
  framed.Reserve(result.value().size() + 1);
  framed.AppendByte(EntropyVersionByte(params.entropy_backend));
  framed.Append(result.value());
  m.compress_frames->Increment();
  m.compress_points->Add(pc.size());
  m.compress_bytes_in->Add(pc.RawSizeBytes());
  m.compress_bytes_out->Add(framed.size());
  return framed;
}

Result<PointCloud> GeometryCodec::Decompress(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  DBGC_RETURN_NOT_OK(ValidateBudget(params.pool, params.max_threads));
  const internal::CodecMetrics& m = metrics();
  Result<PointCloud> result = [&]() -> Result<PointCloud> {
    obs::ScopedTimer timer(nullptr, m.decompress_seconds);
    obs::TraceSpan span(obs::Stage::kDecode);
    // Strip and validate the container version byte before the codec sees
    // the payload; unknown versions fail here, counted once like any other
    // decode error.
    if (buffer.size() == 0) {
      return Status::Corruption("codec: missing entropy version byte");
    }
    EntropyBackend backend;
    if (!EntropyBackendFromVersionByte(buffer[0], &backend)) {
      return Status::Corruption("codec: unsupported entropy version byte");
    }
    ByteBuffer payload;
    payload.Append(buffer.data() + 1, buffer.size() - 1);
    DecompressParams inner = params;
    inner.entropy_backend = backend;
    return DecompressImpl(payload, inner);
  }();
  if (result.ok()) {
    m.decompress_frames->Increment();
    m.decompress_bytes_in->Add(buffer.size());
    m.decompress_points->Add(result.value().size());
  } else {
    CountDecodeError(name(), result.status().code());
  }
  return result;
}

Result<ByteBuffer> GeometryCodec::Compress(const PointCloud& pc,
                                           double q_xyz) const {
  CompressParams params;
  params.q_xyz = q_xyz;
  return Compress(pc, params);
}

Result<PointCloud> GeometryCodec::Decompress(const ByteBuffer& buffer) const {
  return Decompress(buffer, DecompressParams());
}

double CompressionRatio(const PointCloud& pc, const ByteBuffer& compressed) {
  // Total function, no Status path (see header): both degenerate inputs
  // yield 0, so a 0 ratio always reads as "no meaningful ratio".
  if (compressed.size() == 0 || pc.empty()) return 0.0;
  return static_cast<double>(pc.RawSizeBytes()) /
         static_cast<double>(compressed.size());
}

double BandwidthMbps(const ByteBuffer& compressed, double fps) {
  // Total function, no Status path (see header): empty frames and
  // non-positive rates need no bandwidth, and NaN fps fails the > 0 test.
  if (compressed.size() == 0 || !(fps > 0.0)) return 0.0;
  return 8.0 * fps * static_cast<double>(compressed.size()) / 1e6;
}

std::vector<std::unique_ptr<GeometryCodec>> MakeBaselineCodecs() {
  std::vector<std::unique_ptr<GeometryCodec>> codecs;
  codecs.push_back(std::make_unique<OctreeCodec>());
  codecs.push_back(std::make_unique<OctreeGroupedCodec>());
  codecs.push_back(std::make_unique<KdTreeCodec>());
  codecs.push_back(std::make_unique<GpccLikeCodec>());
  return codecs;
}

}  // namespace dbgc
