#include "codec/codec.h"

#include <cmath>

#include "codec/gpcc_like_codec.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"
#include "common/thread_pool.h"

namespace dbgc {

namespace {

Status ValidateBudget(ThreadPool* pool, int max_threads) {
  if (max_threads < 0) {
    return Status::InvalidArgument("codec: max_threads must be >= 0");
  }
  (void)pool;  // A null pool is valid (serial execution).
  return Status::OK();
}

}  // namespace

Result<ByteBuffer> GeometryCodec::Compress(const PointCloud& pc,
                                           const CompressParams& params) const {
  DBGC_RETURN_NOT_OK(ValidateBudget(params.pool, params.max_threads));
  if (std::isnan(params.q_xyz)) {
    return Status::InvalidArgument("codec: q_xyz is NaN");
  }
  return CompressImpl(pc, params);
}

Result<PointCloud> GeometryCodec::Decompress(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  DBGC_RETURN_NOT_OK(ValidateBudget(params.pool, params.max_threads));
  return DecompressImpl(buffer, params);
}

Result<ByteBuffer> GeometryCodec::Compress(const PointCloud& pc,
                                           double q_xyz) const {
  CompressParams params;
  params.q_xyz = q_xyz;
  return Compress(pc, params);
}

Result<PointCloud> GeometryCodec::Decompress(const ByteBuffer& buffer) const {
  return Decompress(buffer, DecompressParams());
}

double CompressionRatio(const PointCloud& pc, const ByteBuffer& compressed) {
  // Total function, no Status path (see header): both degenerate inputs
  // yield 0, so a 0 ratio always reads as "no meaningful ratio".
  if (compressed.size() == 0 || pc.empty()) return 0.0;
  return static_cast<double>(pc.RawSizeBytes()) /
         static_cast<double>(compressed.size());
}

double BandwidthMbps(const ByteBuffer& compressed, double fps) {
  // Total function, no Status path (see header): empty frames and
  // non-positive rates need no bandwidth, and NaN fps fails the > 0 test.
  if (compressed.size() == 0 || !(fps > 0.0)) return 0.0;
  return 8.0 * fps * static_cast<double>(compressed.size()) / 1e6;
}

std::vector<std::unique_ptr<GeometryCodec>> MakeBaselineCodecs() {
  std::vector<std::unique_ptr<GeometryCodec>> codecs;
  codecs.push_back(std::make_unique<OctreeCodec>());
  codecs.push_back(std::make_unique<OctreeGroupedCodec>());
  codecs.push_back(std::make_unique<KdTreeCodec>());
  codecs.push_back(std::make_unique<GpccLikeCodec>());
  return codecs;
}

}  // namespace dbgc
