// The geometry-codec interface shared by DBGC and every baseline
// (Section 4.1, "methods under comparison").
//
// A codec compresses a point cloud into a bit sequence B under a Cartesian
// per-dimension error bound q_xyz, and decompresses B into a cloud PC' with
// a one-to-one mapping to PC (Problem Statement, Section 2.1).

#ifndef DBGC_CODEC_CODEC_H_
#define DBGC_CODEC_CODEC_H_

#include <memory>
#include <string>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"

namespace dbgc {

/// Abstract geometry compressor/decompressor.
class GeometryCodec {
 public:
  virtual ~GeometryCodec() = default;

  /// Short display name ("Octree", "G-PCC-like", "DBGC", ...).
  virtual std::string name() const = 0;

  /// Compresses `pc` under the per-dimension error bound `q_xyz` (meters).
  virtual Result<ByteBuffer> Compress(const PointCloud& pc,
                                      double q_xyz) const = 0;

  /// Decompresses a stream produced by this codec's Compress.
  virtual Result<PointCloud> Decompress(const ByteBuffer& buffer) const = 0;
};

/// Compression ratio: raw geometry bytes (12 per point, Section 2.1) over
/// |B|. Returns 0 when |B| is 0.
double CompressionRatio(const PointCloud& pc, const ByteBuffer& compressed);

/// Bandwidth in Mbps needed to ship one compressed frame `fps` times per
/// second (Section 4.1, Metrics): 8 * fps * |B| / 10^6.
double BandwidthMbps(const ByteBuffer& compressed, double fps);

/// Instantiates every baseline codec for comparison benchmarks
/// (Octree, Octree_i, KdTree/Draco-like, G-PCC-like).
std::vector<std::unique_ptr<GeometryCodec>> MakeBaselineCodecs();

}  // namespace dbgc

#endif  // DBGC_CODEC_CODEC_H_
