// The geometry-codec interface shared by DBGC and every baseline
// (Section 4.1, "methods under comparison").
//
// A codec compresses a point cloud into a bit sequence B under a Cartesian
// per-dimension error bound q_xyz, and decompresses B into a cloud PC' with
// a one-to-one mapping to PC (Problem Statement, Section 2.1).
//
// The public entry points take CompressParams / DecompressParams so that a
// thread budget (and, later, arenas or cancellation) can cross the codec
// boundary without another signature change; thin forwarding overloads
// preserve the original positional (pc, q_xyz) API. Implementations
// override the protected CompressImpl / DecompressImpl hooks (NVI), which
// keeps central parameter validation in one place and avoids the overload
// hiding that overriding one of two public overloads would cause.

#ifndef DBGC_CODEC_CODEC_H_
#define DBGC_CODEC_CODEC_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "entropy/entropy_backend.h"

namespace dbgc {

class ThreadPool;
struct CompressStats;

namespace internal {
struct CodecMetrics;  // Per-codec-name observability handles (codec.cc).
}  // namespace internal

/// Everything a codec may consume while compressing one frame.
///
/// Determinism contract: for a given cloud and q_xyz the emitted bitstream
/// is byte-identical for every (pool, max_threads) combination, including
/// pool == nullptr. Parallelism changes only wall-clock time.
struct CompressParams {
  /// Per-dimension Cartesian error bound in meters.
  double q_xyz = 0.02;
  /// Worker pool for intra-frame parallelism; null = serial. The pool is
  /// borrowed for the duration of the call and must outlive it.
  ThreadPool* pool = nullptr;
  /// Cap on threads one compression may occupy (0 = all pool workers,
  /// 1 = serial even with a pool). Negative values are rejected.
  int max_threads = 0;
  /// Optional statistics sink. Filled by the DBGC-family codecs
  /// (dense/sparse split, per-section bytes, opt-in point mapping);
  /// baseline codecs ignore it. May be null. Stage timings are not
  /// reported here — wrap the call in an obs::FrameTrace instead.
  CompressStats* info = nullptr;
  /// Entropy coder backend for the emitted stream. Recorded in the
  /// container version byte, so decoders need no out-of-band knowledge.
  EntropyBackend entropy_backend = kDefaultEntropyBackend;
};

/// Decompression-side counterpart of CompressParams.
struct DecompressParams {
  /// Worker pool for intra-frame parallelism; null = serial.
  ThreadPool* pool = nullptr;
  /// Cap on threads one decompression may occupy (0 = all pool workers).
  int max_threads = 0;
  /// Entropy backend of the payload handed to DecompressImpl. Set by the
  /// NVI wrapper from the container version byte; callers need not fill it.
  EntropyBackend entropy_backend = kDefaultEntropyBackend;
};

/// Abstract geometry compressor/decompressor.
class GeometryCodec {
 public:
  GeometryCodec() = default;
  virtual ~GeometryCodec() = default;

  // The cached metrics handle is interned per name() and copies preserve
  // the dynamic type, so copying the cached pointer value is safe (the
  // atomic member would otherwise delete copy/move for every codec).
  GeometryCodec(const GeometryCodec& other)
      : metrics_(other.metrics_.load(std::memory_order_relaxed)) {}
  GeometryCodec& operator=(const GeometryCodec& other) {
    metrics_.store(other.metrics_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// Short display name ("Octree", "G-PCC-like", "DBGC", ...).
  virtual std::string name() const = 0;

  /// Compresses `pc` under `params` (error bound, thread budget,
  /// instrumentation). Validates the budget, then dispatches to the
  /// codec's CompressImpl.
  Result<ByteBuffer> Compress(const PointCloud& pc,
                              const CompressParams& params) const;

  /// Decompresses a stream produced by this codec's Compress.
  Result<PointCloud> Decompress(const ByteBuffer& buffer,
                                const DecompressParams& params) const;

  /// Forwarding overload: the original positional API, equivalent to
  /// Compress(pc, CompressParams{.q_xyz = q_xyz}).
  Result<ByteBuffer> Compress(const PointCloud& pc, double q_xyz) const;

  /// Forwarding overload: serial decompression with default params.
  Result<PointCloud> Decompress(const ByteBuffer& buffer) const;

 protected:
  /// Codec-specific compression. `params` has been validated.
  virtual Result<ByteBuffer> CompressImpl(
      const PointCloud& pc, const CompressParams& params) const = 0;

  /// Codec-specific decompression. `params` has been validated.
  virtual Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const = 0;

 private:
  /// Observability handles for this codec's name(), resolved on first use.
  /// The pointee is interned per name and lives for the process, so a
  /// benign store race between threads writes the same pointer.
  const internal::CodecMetrics& metrics() const;
  mutable std::atomic<const internal::CodecMetrics*> metrics_{nullptr};
};

/// Compression ratio: raw geometry bytes (12 per point, Section 2.1) over
/// |B|.
///
/// Contract: this is a total function with no Status path — it is a
/// reporting metric, not a codec operation, so edge cases degrade to 0
/// rather than fail. Returns 0 when |B| is 0 (nothing was produced, a
/// ratio is meaningless) and 0 when the cloud is empty (0 raw bytes over
/// anything). A return of 0 therefore always means "no meaningful ratio",
/// never "infinitely good".
double CompressionRatio(const PointCloud& pc, const ByteBuffer& compressed);

/// Bandwidth in Mbps needed to ship one compressed frame `fps` times per
/// second (Section 4.1, Metrics): 8 * fps * |B| / 10^6.
///
/// Contract: total function, no Status path. Returns 0 when the buffer is
/// empty or fps <= 0 (a non-positive rate has no bandwidth requirement);
/// the result is never negative.
double BandwidthMbps(const ByteBuffer& compressed, double fps);

/// Instantiates every baseline codec for comparison benchmarks
/// (Octree, Octree_i, KdTree/Draco-like, G-PCC-like).
std::vector<std::unique_ptr<GeometryCodec>> MakeBaselineCodecs();

}  // namespace dbgc

#endif  // DBGC_CODEC_CODEC_H_
