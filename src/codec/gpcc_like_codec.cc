#include "codec/gpcc_like_codec.h"

#include <algorithm>
#include <cmath>

#include "bitio/varint.h"
#include "common/bounding_box.h"
#include "encoding/value_codec.h"
#include "entropy/entropy_coder.h"
#include "obs/trace.h"
#include "entropy/binary_coder.h"
#include "spatial/octree.h"

namespace dbgc {

namespace {

// IDCM is allowed when a single-point node still has at least this many
// levels above the leaves: direct-coding the remaining path (~3 bits/level
// plus flag) beats occupancy-coding a single-child chain (~3.5-4 bits per
// level) only for sufficiently deep chains.
constexpr int kIdcmMinLevels = 5;

// Shared entropy models for one encode or decode pass. Occupancy bytes use
// a 256-ary adaptive model conditioned on the parent occupancy density
// (4 buckets) - the neighbour-dependent context modelling that gives G-PCC
// its edge over the plain octree coder. IDCM flags and direct-coded path
// bits use adaptive binary models (path bits per axis, Markov in the
// previous bit of the same axis).
struct Models {
  // Occupancy context: parent density (4 buckets) x tree depth (8 buckets).
  // The depth dimension matters because this codec traverses depth-first:
  // unlike a breadth-first stream, one adaptive model would see all levels'
  // statistics interleaved.
  static constexpr int kDepthBuckets = 8;
  static constexpr int kParentBuckets = 4;

  Models() {
    occupancy.reserve(kDepthBuckets * kParentBuckets);
    for (int i = 0; i < kDepthBuckets * kParentBuckets; ++i) {
      // Fast adaptation (large increment): each of the 32 contexts sees a
      // fraction of the nodes, and occupancy statistics drift with scene
      // region under the depth-first traversal.
      occupancy.emplace_back(256, 256);
    }
  }

  std::vector<AdaptiveModel> occupancy;
  AdaptiveBitModel idcm_flag[kDepthBuckets];  // Indexed by depth bucket.
  AdaptiveBitModel path_bits[6];  // axis * 2 + previous bit of that axis.

  static int ParentBucket(int parent_popcount) {
    return std::min(3, (parent_popcount - 1) / 2);
  }

  AdaptiveModel& OccupancyModel(int remaining_levels, int parent_popcount) {
    const int depth_bucket = std::min(remaining_levels - 1, kDepthBuckets - 1);
    return occupancy[depth_bucket * kParentBuckets +
                     ParentBucket(parent_popcount)];
  }

  AdaptiveBitModel& IdcmFlag(int remaining_levels) {
    return idcm_flag[std::min(remaining_levels - 1, kDepthBuckets - 1)];
  }
};

struct EncodeContext {
  EntropyEncoder* enc;
  Models* models;
  std::vector<uint64_t>* leaf_extra;  // Per-leaf (count - 1).
  const std::vector<uint64_t>* keys;  // Sorted leaf Morton keys per point.
  int depth;
};

void EncodeBit(EntropyEncoder* enc, AdaptiveBitModel* model, int bit) {
  enc->Encode(model->Lookup(bit));
  model->Update(bit);
}

int DecodeBit(EntropyDecoder* dec, AdaptiveBitModel* model) {
  const uint32_t target = dec->DecodeTarget(model->total());
  SymbolRange range;
  const int bit = model->FindBit(target, &range);
  dec->Advance(range);
  model->Update(bit);
  return bit;
}

void EncodeIdcmPath(EncodeContext* ctx, uint64_t remaining, int shift) {
  int prev[3] = {0, 0, 0};
  for (int i = shift - 1; i >= 0; --i) {
    const int axis = i % 3;
    const int bit = static_cast<int>((remaining >> i) & 1);
    EncodeBit(ctx->enc, &ctx->models->path_bits[axis * 2 + prev[axis]], bit);
    prev[axis] = bit;
  }
}

// Encodes the subtree covering keys[lo, hi) at `level` (node Morton prefix
// = keys >> 3*(depth-level)).
void EncodeNode(EncodeContext* ctx, size_t lo, size_t hi, int level,
                int parent_popcount) {
  const int shift = 3 * (ctx->depth - level);
  if (level == ctx->depth) {
    // Leaf: all keys in [lo, hi) are equal; count in the side stream.
    ctx->leaf_extra->push_back(hi - lo - 1);
    return;
  }
  const bool idcm_eligible =
      level > 0 && ctx->depth - level >= kIdcmMinLevels;
  const bool single_unique = (*ctx->keys)[lo] == (*ctx->keys)[hi - 1];
  if (idcm_eligible && single_unique) {
    // IDCM: lone position (possibly duplicated). Flag 1, then the
    // remaining path bits; the duplicate count rides the side stream.
    EncodeBit(ctx->enc, &ctx->models->IdcmFlag(ctx->depth - level), 1);
    EncodeIdcmPath(ctx, (*ctx->keys)[lo] & ((1ULL << shift) - 1), shift);
    ctx->leaf_extra->push_back(hi - lo - 1);
    return;
  }
  if (idcm_eligible) {
    EncodeBit(ctx->enc, &ctx->models->IdcmFlag(ctx->depth - level), 0);
  }
  // Occupancy byte from the children present among keys[lo, hi).
  const int child_shift = shift - 3;
  uint8_t occ = 0;
  size_t bounds[9];
  bounds[0] = lo;
  size_t cursor = lo;
  for (int octant = 0; octant < 8; ++octant) {
    size_t end = cursor;
    while (end < hi &&
           ((((*ctx->keys)[end] >> child_shift) & 7) ==
            static_cast<uint64_t>(octant))) {
      ++end;
    }
    if (end > cursor) occ |= static_cast<uint8_t>(1u << octant);
    cursor = end;
    bounds[octant + 1] = end;
  }
  AdaptiveModel& model =
      ctx->models->OccupancyModel(ctx->depth - level, parent_popcount);
  ctx->enc->Encode(model.Lookup(occ));
  model.Update(occ);
  const int popcount = __builtin_popcount(occ);
  for (int octant = 0; octant < 8; ++octant) {
    if (bounds[octant + 1] > bounds[octant]) {
      EncodeNode(ctx, bounds[octant], bounds[octant + 1], level + 1,
                 popcount);
    }
  }
}

struct DecodeContext {
  EntropyDecoder* dec;
  Models* models;
  const std::vector<uint64_t>* leaf_extra;
  size_t leaf_cursor = 0;
  std::vector<std::pair<uint64_t, uint32_t>>* leaves;  // (key, count).
  int depth;
};

Status DecodeNode(DecodeContext* ctx, uint64_t prefix, int level,
                  int parent_popcount) {
  const int shift = 3 * (ctx->depth - level);
  auto next_extra = [&]() -> Result<uint64_t> {
    if (ctx->leaf_cursor >= ctx->leaf_extra->size()) {
      return Status::Corruption("gpcc codec: leaf side stream exhausted");
    }
    const uint64_t extra = (*ctx->leaf_extra)[ctx->leaf_cursor++];
    // Also guards the uint32 narrowing below: extra + 1 must not wrap.
    if (extra >= kMaxReasonableCount) {
      return Status::Corruption("gpcc codec: implausible leaf count");
    }
    return extra;
  };
  if (level == ctx->depth) {
    DBGC_ASSIGN_OR_RETURN(uint64_t extra, next_extra());
    ctx->leaves->emplace_back(prefix, static_cast<uint32_t>(extra + 1));
    return Status::OK();
  }
  const bool idcm_eligible =
      level > 0 && ctx->depth - level >= kIdcmMinLevels;
  if (idcm_eligible &&
      DecodeBit(ctx->dec, &ctx->models->IdcmFlag(ctx->depth - level)) == 1) {
    uint64_t remaining = 0;
    int prev[3] = {0, 0, 0};
    for (int i = shift - 1; i >= 0; --i) {
      const int axis = i % 3;
      const int bit =
          DecodeBit(ctx->dec, &ctx->models->path_bits[axis * 2 + prev[axis]]);
      remaining |= static_cast<uint64_t>(bit) << i;
      prev[axis] = bit;
    }
    DBGC_ASSIGN_OR_RETURN(uint64_t extra, next_extra());
    ctx->leaves->emplace_back((prefix << shift) | remaining,
                              static_cast<uint32_t>(extra + 1));
    return Status::OK();
  }
  AdaptiveModel& model =
      ctx->models->OccupancyModel(ctx->depth - level, parent_popcount);
  const uint32_t target = ctx->dec->DecodeTarget(model.total());
  SymbolRange range;
  const uint32_t occ = model.FindSymbol(target, &range);
  ctx->dec->Advance(range);
  model.Update(occ);
  if (occ == 0) return Status::Corruption("gpcc codec: empty occupancy");
  const int popcount = __builtin_popcount(occ);
  for (int octant = 0; octant < 8; ++octant) {
    if (occ & (1u << octant)) {
      DBGC_RETURN_NOT_OK(DecodeNode(
          ctx, (prefix << 3) | static_cast<uint64_t>(octant), level + 1,
          popcount));
    }
  }
  return Status::OK();
}

}  // namespace

Result<ByteBuffer> GpccLikeCodec::CompressImpl(
    const PointCloud& pc, const CompressParams& params) const {
  const double q_xyz = params.q_xyz;
  if (q_xyz <= 0) {
    return Status::InvalidArgument("gpcc codec: q_xyz must be positive");
  }
  const double leaf_side = 2.0 * q_xyz;
  const BoundingBox box = BoundingBox::Of(pc);
  const Cube root = Cube::BoundingCube(box, leaf_side);
  int depth = 0;
  double side = leaf_side;
  while (side < root.side * (1 - 1e-12)) {
    side *= 2;
    ++depth;
  }
  if (depth > Octree::kMaxDepth) {
    return Status::OutOfRange("gpcc codec: depth exceeds limit");
  }

  ByteBuffer out;
  out.AppendDouble(root.origin.x);
  out.AppendDouble(root.origin.y);
  out.AppendDouble(root.origin.z);
  out.AppendDouble(root.side);
  out.AppendByte(static_cast<uint8_t>(depth));
  PutVarint64(&out, pc.size());
  if (pc.empty()) return out;

  std::vector<uint64_t> keys;
  keys.reserve(pc.size());
  for (const Point3& p : pc) {
    keys.push_back(Octree::LeafKeyOf(p, root, depth));
  }
  std::sort(keys.begin(), keys.end());

  obs::TraceSpan entropy_span(obs::Stage::kEntropy);
  EntropyEncoder enc(params.entropy_backend);
  Models models;
  std::vector<uint64_t> leaf_extra;
  EncodeContext ctx{&enc, &models, &leaf_extra, &keys, depth};
  EncodeNode(&ctx, 0, keys.size(), 0, 8);

  out.AppendLengthPrefixed(enc.Finish());
  out.AppendLengthPrefixed(
      UnsignedValueCodec::Compress(leaf_extra, params.entropy_backend));
  return out;
}

Result<PointCloud> GpccLikeCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  ByteReader reader(buffer);
  Cube root;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&root.origin.x));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&root.origin.y));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&root.origin.z));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&root.side));
  uint8_t depth;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&depth));
  if (depth > Octree::kMaxDepth) {
    return Status::Corruption("gpcc codec: bad depth");
  }
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  DBGC_BOUND(count, kMaxDecodedElements, "gpcc codec point count");
  const BoundedAlloc alloc(reader.remaining());
  PointCloud pc;
  if (count == 0) return pc;
  ByteBuffer coder_stream, counts_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&coder_stream));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&counts_stream));

  std::vector<uint64_t> leaf_extra;
  DBGC_RETURN_NOT_OK(UnsignedValueCodec::Decompress(
      counts_stream, &leaf_extra, params.entropy_backend));

  EntropyDecoder dec(coder_stream, params.entropy_backend);
  Models models;
  std::vector<std::pair<uint64_t, uint32_t>> leaves;
  DecodeContext ctx{&dec, &models, &leaf_extra, 0, &leaves, depth};
  DBGC_RETURN_NOT_OK(DecodeNode(&ctx, 0, 0, 8));

  // Validate the leaf-count sum BEFORE expanding: corrupted count streams
  // can declare far more points than the header's (already bounded) count,
  // and the expansion loop would materialize all of them.
  uint64_t total = 0;
  for (const auto& [key, n] : leaves) {
    (void)key;
    total += n;
    if (total > count) {
      return Status::Corruption("gpcc codec: point count mismatch");
    }
  }
  if (total != count) {
    return Status::Corruption("gpcc codec: point count mismatch");
  }

  const double leaf_side = root.side / std::ldexp(1.0, depth);
  // Entropy-coded points have no whole-byte stream cost, so the up-front
  // reservation is speculative (clamped); the count itself was validated
  // against the decoded leaves above.
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(&pc, count, "gpcc codec points"));
  for (const auto& [key, n] : leaves) {
    uint32_t ix, iy, iz;
    MortonDecode3(key, &ix, &iy, &iz);
    const Point3 center{root.origin.x + (ix + 0.5) * leaf_side,
                        root.origin.y + (iy + 0.5) * leaf_side,
                        root.origin.z + (iz + 0.5) * leaf_side};
    for (uint32_t k = 0; k < n; ++k) pc.Add(center);
  }
  return pc;
}

}  // namespace dbgc
