// G-PCC-like octree codec (Section 2.2, [33]; evaluated as TMC13 [38]).
//
// Reproduces the two optimizations the paper credits for G-PCC's edge over
// plain octrees on LiDAR data:
//   1. neighbour-dependent context entropy coding - occupancy bytes are
//      coded bit by bit under adaptive binary contexts conditioned on the
//      parent occupancy density and the already-coded sibling bits (a
//      practical approximation of TMC13's neighbour contexts), and
//   2. direct point coding (IDCM) - a node holding a single point deep
//      above the leaf level bypasses subdivision and writes the remaining
//      coordinate bits directly.
// Duplicate points are preserved via leaf counts (mergeDuplicatedPoints
// disabled, as in the paper's TMC13 configuration).

#ifndef DBGC_CODEC_GPCC_LIKE_CODEC_H_
#define DBGC_CODEC_GPCC_LIKE_CODEC_H_

#include <string>

#include "codec/codec.h"

namespace dbgc {

/// Simplified G-PCC (TMC13) style octree codec.
class GpccLikeCodec : public GeometryCodec {
 public:
  std::string name() const override { return "G-PCC-like"; }

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;
};

}  // namespace dbgc

#endif  // DBGC_CODEC_GPCC_LIKE_CODEC_H_
