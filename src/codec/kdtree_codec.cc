#include "codec/kdtree_codec.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "bitio/varint.h"
#include "common/bounding_box.h"
#include "entropy/entropy_coder.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

constexpr int kMaxQuantBits = 24;

struct IntBox {
  std::array<uint32_t, 3> lo{};
  std::array<uint32_t, 3> size{};  // Cells per dimension (powers of two).

  bool IsUnit() const { return size[0] == 1 && size[1] == 1 && size[2] == 1; }

  int SplitAxis() const {
    int axis = 0;
    for (int a = 1; a < 3; ++a) {
      if (size[a] > size[axis]) axis = a;
    }
    return axis;
  }
};

using IntPoint = std::array<uint32_t, 3>;

// Encodes v in [0, n] at ~log2(n+1) bits with a uniform range.
void EncodeUniform(EntropyEncoder* enc, uint32_t v, uint32_t n) {
  if (n == 0) return;
  // Split values exceeding the coder's total-frequency budget into two
  // stages (high and low halves).
  constexpr uint32_t kLimit = 1u << 15;
  if (n + 1 > kLimit) {
    const uint32_t buckets = (n / kLimit) + 1;
    EncodeUniform(enc, v / kLimit, buckets - 1);
    const uint32_t base = (v / kLimit) * kLimit;
    const uint32_t width =
        std::min<uint32_t>(kLimit, n - base + 1);
    enc->Encode(SymbolRange{v - base, v - base + 1, width});
    return;
  }
  enc->Encode(SymbolRange{v, v + 1, n + 1});
}

uint32_t DecodeUniform(EntropyDecoder* dec, uint32_t n) {
  if (n == 0) return 0;
  constexpr uint32_t kLimit = 1u << 15;
  if (n + 1 > kLimit) {
    const uint32_t buckets = (n / kLimit) + 1;
    const uint32_t high = DecodeUniform(dec, buckets - 1);
    const uint32_t base = high * kLimit;
    const uint32_t width = std::min<uint32_t>(kLimit, n - base + 1);
    const uint32_t low = dec->DecodeTarget(width);
    dec->Advance(SymbolRange{low, low + 1, width});
    return base + low;
  }
  const uint32_t v = dec->DecodeTarget(n + 1);
  dec->Advance(SymbolRange{v, v + 1, n + 1});
  return v;
}

void EncodeRecursive(EntropyEncoder* enc, std::vector<IntPoint>* points,
                     size_t lo, size_t hi, const IntBox& box) {
  if (box.IsUnit() || lo >= hi) return;
  const int axis = box.SplitAxis();
  const uint32_t half = box.size[axis] / 2;
  const uint32_t mid = box.lo[axis] + half;
  auto it = std::partition(
      points->begin() + lo, points->begin() + hi,
      [&](const IntPoint& p) { return p[axis] < mid; });
  const size_t n_left = static_cast<size_t>(it - (points->begin() + lo));
  const uint32_t n = static_cast<uint32_t>(hi - lo);
  EncodeUniform(enc, static_cast<uint32_t>(n_left), n);

  IntBox left = box;
  left.size[axis] = half;
  IntBox right = box;
  right.lo[axis] = mid;
  right.size[axis] = box.size[axis] - half;
  if (n_left > 0) EncodeRecursive(enc, points, lo, lo + n_left, left);
  if (n_left < n) EncodeRecursive(enc, points, lo + n_left, hi, right);
}

void DecodeRecursive(EntropyDecoder* dec, const IntBox& box, uint32_t n,
                     std::vector<IntPoint>* out) {
  if (n == 0) return;
  if (box.IsUnit()) {
    for (uint32_t i = 0; i < n; ++i) {
      out->push_back(IntPoint{box.lo[0], box.lo[1], box.lo[2]});
    }
    return;
  }
  const int axis = box.SplitAxis();
  const uint32_t half = box.size[axis] / 2;
  const uint32_t mid = box.lo[axis] + half;
  const uint32_t n_left = DecodeUniform(dec, n);
  IntBox left = box;
  left.size[axis] = half;
  IntBox right = box;
  right.lo[axis] = mid;
  right.size[axis] = box.size[axis] - half;
  DecodeRecursive(dec, left, n_left, out);
  DecodeRecursive(dec, right, n - n_left, out);
}

}  // namespace

Result<ByteBuffer> KdTreeCodec::CompressImpl(
    const PointCloud& pc, const CompressParams& params) const {
  const double q_xyz = params.q_xyz;
  if (q_xyz <= 0) {
    return Status::InvalidArgument("kd codec: q_xyz must be positive");
  }
  const BoundingBox box = BoundingBox::Of(pc);
  const double omega = pc.empty() ? q_xyz : std::max(box.MaxExtent(), q_xyz);
  int qb = 0;
  while (omega / std::ldexp(1.0, qb) > q_xyz && qb < kMaxQuantBits) ++qb;
  const double step = omega / std::ldexp(1.0, qb);
  const uint32_t cells = 1u << qb;

  ByteBuffer out;
  out.AppendDouble(pc.empty() ? 0.0 : box.min.x);
  out.AppendDouble(pc.empty() ? 0.0 : box.min.y);
  out.AppendDouble(pc.empty() ? 0.0 : box.min.z);
  out.AppendDouble(step);
  out.AppendByte(static_cast<uint8_t>(qb));
  PutVarint64(&out, pc.size());
  if (pc.empty()) return out;

  std::vector<IntPoint> points;
  points.reserve(pc.size());
  auto quant = [&](double v, double origin) -> uint32_t {
    double c = std::floor((v - origin) / step);
    if (c < 0) c = 0;
    if (c >= cells) c = cells - 1;
    return static_cast<uint32_t>(c);
  };
  for (const Point3& p : pc) {
    points.push_back(IntPoint{quant(p.x, box.min.x), quant(p.y, box.min.y),
                              quant(p.z, box.min.z)});
  }

  IntBox root;
  root.lo = {0, 0, 0};
  root.size = {cells, cells, cells};
  obs::TraceSpan entropy_span(obs::Stage::kEntropy);
  EntropyEncoder enc(params.entropy_backend);
  EncodeRecursive(&enc, &points, 0, points.size(), root);
  out.AppendLengthPrefixed(enc.Finish());
  return out;
}

Result<PointCloud> KdTreeCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  ByteReader reader(buffer);
  double ox, oy, oz, step;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&ox));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&oy));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&oz));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&step));
  uint8_t qb;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&qb));
  DBGC_BOUND(qb, kMaxQuantBits, "kd codec quant bits");
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  // The split coder always emits bits for a non-trivial tree, so a count
  // wildly out of proportion to the stream length can only come from a
  // corrupted header. Rejecting it here bounds the decode loop, which
  // otherwise trusts `count` outright (the arithmetic decoder zero-extends
  // past the stream end and never fails on its own).
  if (count > 4096 && count / 4096 > buffer.size()) {
    return Status::Corruption("kd codec: point count exceeds stream budget");
  }
  PointCloud pc;
  if (count == 0) return pc;
  ByteBuffer stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&stream));

  IntBox root;
  root.lo = {0, 0, 0};
  root.size = {1u << qb, 1u << qb, 1u << qb};
  EntropyDecoder dec(stream, params.entropy_backend);
  std::vector<IntPoint> points;
  // Points are entropy-coded with no whole-byte cost floor, so only the
  // speculative clamp protects the up-front reservation.
  const BoundedAlloc alloc(stream.size());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(&points, count, "kd codec points"));
  DecodeRecursive(&dec, root, static_cast<uint32_t>(count), &points);

  pc.Reserve(points.size());
  for (const IntPoint& p : points) {
    pc.Add(ox + (p[0] + 0.5) * step, oy + (p[1] + 0.5) * step,
           oz + (p[2] + 0.5) * step);
  }
  return pc;
}

}  // namespace dbgc
