// Kd-tree geometry codec in the style of Google Draco [23] (Section 2.2),
// i.e. the Devillers-Gandoin recursive point-count coder on a quantized
// integer grid.
//
// Quantization follows the paper's Draco protocol (Section 4.2): the user
// chooses qb, the number of quantization bits, and the effective error
// bound is q_xyz = Omega / 2^qb for a cloud of maximum extent Omega. Given
// q_xyz, we pick the smallest qb with Omega / 2^qb <= q_xyz, which can
// quantize up to twice as finely as an octree with leaf side 2q - the same
// handicap the paper's evaluation imposes on Draco.

#ifndef DBGC_CODEC_KDTREE_CODEC_H_
#define DBGC_CODEC_KDTREE_CODEC_H_

#include <string>

#include "codec/codec.h"

namespace dbgc {

/// Draco-style kd-tree geometry codec.
class KdTreeCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Draco(kd)"; }

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;
};

}  // namespace dbgc

#endif  // DBGC_CODEC_KDTREE_CODEC_H_
