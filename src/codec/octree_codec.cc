#include "codec/octree_codec.h"

#include "bitio/varint.h"
#include "common/thread_pool.h"
#include "encoding/value_codec.h"
#include "entropy/entropy_coder.h"
#include "obs/trace.h"

namespace dbgc {

ByteBuffer OctreeCodec::SerializeStructure(const OctreeStructure& tree,
                                           EntropyBackend backend) {
  return SerializeStructure(tree, Parallelism(), backend);
}

ByteBuffer OctreeCodec::SerializeStructure(const OctreeStructure& tree,
                                           const Parallelism& par,
                                           EntropyBackend backend) {
  // The stream is two independent shards behind a fixed header: the
  // arithmetic-coded occupancy codes and the value-coded per-leaf counts.
  // Each shard is serialized into its own ByteBuffer (concurrently when a
  // pool is available) and concatenated in fixed shard order, so the
  // output is byte-identical for any thread count.
  ByteBuffer occupancy_shard;
  ByteBuffer counts_shard;
  const Status shard_status = par.For(0, 2, 1, [&](size_t lo, size_t hi) {
    for (size_t shard = lo; shard < hi; ++shard) {
      if (shard == 0) {
        // Occupancy codes, breadth-first, as one adaptive arithmetic
        // stream. Symbol 0 (empty node) never occurs; the 256-symbol
        // alphabet keeps the model simple.
        obs::TraceSpan entropy_span(obs::Stage::kEntropy);
        AdaptiveModel model(256);
        EntropyEncoder enc(backend);
        for (const auto& level : tree.levels) {
          for (uint8_t occ : level) {
            enc.Encode(model.Lookup(occ));
            model.Update(occ);
          }
        }
        occupancy_shard = enc.Finish();
      } else {
        // Per-leaf point counts minus one (almost always zero).
        std::vector<uint64_t> extra_counts;
        extra_counts.reserve(tree.leaf_counts.size());
        for (uint32_t c : tree.leaf_counts) {
          extra_counts.push_back(c > 0 ? c - 1 : 0);
        }
        counts_shard = UnsignedValueCodec::Compress(extra_counts, backend);
      }
    }
  });
  // The shard bodies never fail; the Status only carries exceptions, which
  // the encoders do not throw.
  DBGC_CHECK(shard_status.ok());

  obs::TraceSpan serialize_span(obs::Stage::kSerialize);
  ByteBuffer out;
  out.AppendDouble(tree.root.origin.x);
  out.AppendDouble(tree.root.origin.y);
  out.AppendDouble(tree.root.origin.z);
  out.AppendDouble(tree.root.side);
  out.AppendByte(static_cast<uint8_t>(tree.depth));
  PutVarint64(&out, tree.num_leaves());
  out.AppendLengthPrefixed(occupancy_shard);
  out.AppendLengthPrefixed(counts_shard);
  return out;
}

Result<OctreeStructure> OctreeCodec::DeserializeStructure(
    const ByteBuffer& buf, EntropyBackend backend) {
  OctreeStructure tree;
  ByteReader reader(buf);
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.origin.x));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.origin.y));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.origin.z));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.side));
  uint8_t depth;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&depth));
  if (depth > Octree::kMaxDepth) {
    return Status::Corruption("octree codec: bad depth");
  }
  tree.depth = depth;
  uint64_t num_leaves;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &num_leaves));
  DBGC_BOUND(num_leaves, kMaxDecodedElements, "octree codec leaf count");
  const BoundedAlloc alloc(reader.remaining());
  ByteBuffer occupancy_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&occupancy_stream));
  ByteBuffer counts_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&counts_stream));

  if (num_leaves == 0) {
    DBGC_RETURN_NOT_OK(alloc.Resize(&tree.levels, tree.depth,
                                    /*min_bytes_each=*/0, "octree levels"));
    return tree;
  }

  // Re-expand breadth-first: the number of nodes at each level follows from
  // the popcounts of the previous level.
  AdaptiveModel model(256);
  EntropyDecoder dec(occupancy_stream, backend);
  DBGC_RETURN_NOT_OK(alloc.Resize(&tree.levels, tree.depth,
                                  /*min_bytes_each=*/0, "octree levels"));
  size_t nodes_at_level = 1;
  for (int l = 0; l < tree.depth; ++l) {
    auto& level = tree.levels[l];
    // Occupancy codes are entropy-coded: no whole-byte floor, so the
    // reservation is speculative (clamped) and the vector grows on demand.
    DBGC_RETURN_NOT_OK(
        alloc.ReserveSpeculative(&level, nodes_at_level, "octree level"));
    size_t children = 0;
    for (size_t i = 0; i < nodes_at_level; ++i) {
      const uint32_t target = dec.DecodeTarget(model.total());
      SymbolRange range;
      const uint32_t symbol = model.FindSymbol(target, &range);
      dec.Advance(range);
      model.Update(symbol);
      if (symbol == 0) {
        return Status::Corruption("octree codec: empty occupancy code");
      }
      level.push_back(static_cast<uint8_t>(symbol));
      children += __builtin_popcount(symbol);
    }
    if (children > kMaxReasonableCount) {
      return Status::Corruption("octree codec: runaway expansion");
    }
    nodes_at_level = children;
  }
  if (nodes_at_level != num_leaves) {
    return Status::Corruption("octree codec: leaf count mismatch");
  }

  std::vector<uint64_t> extra_counts;
  DBGC_RETURN_NOT_OK(
      UnsignedValueCodec::Decompress(counts_stream, &extra_counts, backend));
  if (extra_counts.size() != num_leaves) {
    return Status::Corruption("octree codec: counts stream mismatch");
  }
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(&tree.leaf_counts, num_leaves,
                                               "octree leaf counts"));
  uint64_t total_points = 0;
  for (uint64_t c : extra_counts) {
    // c + 1 must not wrap the uint32 narrowing, and the sum bounds what
    // ExtractPoints will materialize.
    if (c >= kMaxReasonableCount ||
        (total_points += c + 1) > kMaxReasonableCount) {
      return Status::Corruption("octree codec: implausible leaf counts");
    }
    tree.leaf_counts.push_back(static_cast<uint32_t>(c + 1));
  }
  return tree;
}

Result<ByteBuffer> OctreeCodec::CompressImpl(
    const PointCloud& pc, const CompressParams& params) const {
  if (params.q_xyz <= 0) {
    return Status::InvalidArgument("octree codec: q_xyz must be positive");
  }
  const Parallelism par{params.pool, params.max_threads};
  DBGC_ASSIGN_OR_RETURN(OctreeStructure tree,
                        Octree::Build(pc, 2.0 * params.q_xyz, par));
  return SerializeStructure(tree, par, params.entropy_backend);
}

Result<PointCloud> OctreeCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  DBGC_ASSIGN_OR_RETURN(
      OctreeStructure tree,
      DeserializeStructure(buffer, params.entropy_backend));
  return Octree::ExtractPoints(tree);
}

}  // namespace dbgc
