// The baseline octree coder of Botsch et al. [7] (Section 2.2).
//
// The cloud is voxelized at leaf side 2q, the tree is serialized
// breadth-first as 8-bit occupancy codes, and the code sequence is
// compressed with an adaptive arithmetic coder. Per-leaf point counts are
// carried in a side stream so decompression restores exactly |PC| points.
// DBGC reuses this codec as the dense-point compressor (Section 3.2).
//
// The occupancy stream and the leaf-count stream are independent shards:
// given a thread budget they are serialized concurrently and concatenated
// in fixed shard order, leaving the bitstream byte-identical for any
// thread count (docs/PARALLELISM.md).

#ifndef DBGC_CODEC_OCTREE_CODEC_H_
#define DBGC_CODEC_OCTREE_CODEC_H_

#include <string>

#include "codec/codec.h"
#include "spatial/octree.h"

namespace dbgc {

struct Parallelism;

/// Arithmetic-coded breadth-first octree geometry codec.
class OctreeCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Octree"; }

  /// Serializes an already-built octree structure. Exposed so DBGC can
  /// compress its dense subset with an externally chosen bounding cube.
  static ByteBuffer SerializeStructure(
      const OctreeStructure& tree,
      EntropyBackend backend = kDefaultEntropyBackend);

  /// SerializeStructure under a thread budget: the occupancy and leaf-count
  /// shards are encoded concurrently. Output bytes are identical to the
  /// serial overload.
  static ByteBuffer SerializeStructure(const OctreeStructure& tree,
                                       const Parallelism& par,
                                       EntropyBackend backend);

  /// Inverse of SerializeStructure (same backend as the serializer).
  static Result<OctreeStructure> DeserializeStructure(
      const ByteBuffer& buf, EntropyBackend backend = kDefaultEntropyBackend);

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;
};

}  // namespace dbgc

#endif  // DBGC_CODEC_OCTREE_CODEC_H_
