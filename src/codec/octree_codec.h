// The baseline octree coder of Botsch et al. [7] (Section 2.2).
//
// The cloud is voxelized at leaf side 2q, the tree is serialized
// breadth-first as 8-bit occupancy codes, and the code sequence is
// compressed with an adaptive arithmetic coder. Per-leaf point counts are
// carried in a side stream so decompression restores exactly |PC| points.
// DBGC reuses this codec as the dense-point compressor (Section 3.2).

#ifndef DBGC_CODEC_OCTREE_CODEC_H_
#define DBGC_CODEC_OCTREE_CODEC_H_

#include <string>

#include "codec/codec.h"
#include "spatial/octree.h"

namespace dbgc {

/// Arithmetic-coded breadth-first octree geometry codec.
class OctreeCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Octree"; }
  Result<ByteBuffer> Compress(const PointCloud& pc,
                              double q_xyz) const override;
  Result<PointCloud> Decompress(const ByteBuffer& buffer) const override;

  /// Serializes an already-built octree structure. Exposed so DBGC can
  /// compress its dense subset with an externally chosen bounding cube.
  static ByteBuffer SerializeStructure(const OctreeStructure& tree);

  /// Inverse of SerializeStructure.
  static Result<OctreeStructure> DeserializeStructure(const ByteBuffer& buf);
};

}  // namespace dbgc

#endif  // DBGC_CODEC_OCTREE_CODEC_H_
