#include "codec/octree_grouped_codec.h"

#include <memory>

#include "bitio/varint.h"
#include "encoding/value_codec.h"
#include "entropy/entropy_coder.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

// Context pool: one 256-symbol adaptive model per parent occupancy code.
// Models are created lazily; code 0 is used for the root (no parent).
class ContextModels {
 public:
  AdaptiveModel& For(uint8_t parent_occupancy) {
    auto& slot = models_[parent_occupancy];
    if (slot == nullptr) slot = std::make_unique<AdaptiveModel>(256);
    return *slot;
  }

 private:
  std::unique_ptr<AdaptiveModel> models_[256];
};

}  // namespace

Result<ByteBuffer> OctreeGroupedCodec::CompressImpl(
    const PointCloud& pc, const CompressParams& params) const {
  const double q_xyz = params.q_xyz;
  if (q_xyz <= 0) {
    return Status::InvalidArgument("octree_i codec: q_xyz must be positive");
  }
  DBGC_ASSIGN_OR_RETURN(
      OctreeStructure tree,
      Octree::Build(pc, 2.0 * q_xyz,
                    Parallelism{params.pool, params.max_threads}));

  ByteBuffer out;
  out.AppendDouble(tree.root.origin.x);
  out.AppendDouble(tree.root.origin.y);
  out.AppendDouble(tree.root.origin.z);
  out.AppendDouble(tree.root.side);
  out.AppendByte(static_cast<uint8_t>(tree.depth));
  PutVarint64(&out, tree.num_leaves());

  // Breadth-first traversal carrying each node's parent occupancy code.
  obs::TraceSpan entropy_span(obs::Stage::kEntropy);
  ContextModels contexts;
  EntropyEncoder enc(params.entropy_backend);
  std::vector<uint8_t> parent_codes{0};  // Root context.
  for (int l = 0; l < tree.depth; ++l) {
    const auto& level = tree.levels[l];
    std::vector<uint8_t> child_codes;
    child_codes.reserve(level.size());
    size_t node = 0;
    for (size_t parent = 0; parent < parent_codes.size(); ++parent) {
      // Each parent expands to popcount(code) children at this level; the
      // synthetic root context 0 at l == 0 covers the single root node.
      const int children =
          (l == 0) ? 1 : __builtin_popcount(parent_codes[parent]);
      for (int c = 0; c < children; ++c, ++node) {
        const uint8_t occ = level[node];
        AdaptiveModel& model = contexts.For(parent_codes[parent]);
        enc.Encode(model.Lookup(occ));
        model.Update(occ);
        child_codes.push_back(occ);
      }
    }
    parent_codes = std::move(child_codes);
  }
  out.AppendLengthPrefixed(enc.Finish());

  std::vector<uint64_t> extra_counts;
  extra_counts.reserve(tree.leaf_counts.size());
  for (uint32_t c : tree.leaf_counts) extra_counts.push_back(c - 1);
  out.AppendLengthPrefixed(
      UnsignedValueCodec::Compress(extra_counts, params.entropy_backend));
  return out;
}

Result<PointCloud> OctreeGroupedCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  OctreeStructure tree;
  ByteReader reader(buffer);
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.origin.x));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.origin.y));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.origin.z));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&tree.root.side));
  uint8_t depth;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&depth));
  if (depth > Octree::kMaxDepth) {
    return Status::Corruption("octree_i codec: bad depth");
  }
  tree.depth = depth;
  uint64_t num_leaves;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &num_leaves));
  DBGC_BOUND(num_leaves, kMaxDecodedElements, "octree_i codec leaf count");
  const BoundedAlloc alloc(reader.remaining());
  ByteBuffer occupancy_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&occupancy_stream));
  ByteBuffer counts_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&counts_stream));

  DBGC_RETURN_NOT_OK(alloc.Resize(&tree.levels, tree.depth,
                                  /*min_bytes_each=*/0, "octree_i levels"));
  if (num_leaves == 0) return Octree::ExtractPoints(tree);

  ContextModels contexts;
  EntropyDecoder dec(occupancy_stream, params.entropy_backend);
  std::vector<uint8_t> parent_codes{0};
  for (int l = 0; l < tree.depth; ++l) {
    auto& level = tree.levels[l];
    std::vector<uint8_t> child_codes;
    for (size_t parent = 0; parent < parent_codes.size(); ++parent) {
      const int children =
          (l == 0) ? 1 : __builtin_popcount(parent_codes[parent]);
      for (int c = 0; c < children; ++c) {
        AdaptiveModel& model = contexts.For(parent_codes[parent]);
        const uint32_t target = dec.DecodeTarget(model.total());
        SymbolRange range;
        const uint32_t symbol = model.FindSymbol(target, &range);
        dec.Advance(range);
        model.Update(symbol);
        if (symbol == 0) {
          return Status::Corruption("octree_i codec: empty occupancy code");
        }
        level.push_back(static_cast<uint8_t>(symbol));
        child_codes.push_back(static_cast<uint8_t>(symbol));
      }
    }
    if (child_codes.size() > kMaxReasonableCount) {
      return Status::Corruption("octree_i codec: runaway expansion");
    }
    parent_codes = std::move(child_codes);
  }
  size_t leaves = tree.depth == 0 ? 1 : 0;
  if (tree.depth > 0) {
    for (uint8_t code : tree.levels[tree.depth - 1]) {
      leaves += __builtin_popcount(code);
    }
  }
  if (leaves != num_leaves) {
    return Status::Corruption("octree_i codec: leaf count mismatch");
  }

  std::vector<uint64_t> extra_counts;
  DBGC_RETURN_NOT_OK(UnsignedValueCodec::Decompress(
      counts_stream, &extra_counts, params.entropy_backend));
  if (extra_counts.size() != num_leaves) {
    return Status::Corruption("octree_i codec: counts stream mismatch");
  }
  uint64_t total_points = 0;
  for (uint64_t c : extra_counts) {
    // Same containment as the plain octree codec: no uint32 wrap in the
    // narrowing, and the total bounds the ExtractPoints expansion.
    if (c >= kMaxReasonableCount ||
        (total_points += c + 1) > kMaxReasonableCount) {
      return Status::Corruption("octree_i codec: implausible leaf counts");
    }
    tree.leaf_counts.push_back(static_cast<uint32_t>(c + 1));
  }
  return Octree::ExtractPoints(tree);
}

}  // namespace dbgc
