// Octree_i: the improved octree coder of Garcia et al. [21] (Section 2.2).
//
// Nodes are grouped by the occupancy code of their parent and each group is
// compressed with its own adaptive model. We realize the grouping as
// parent-occupancy-conditioned context modelling in a single arithmetic
// stream, which is entropy-equivalent to per-group streams without the
// framing overhead. On sparse scene clouds the per-context models see few
// samples each and adapt slowly, which is why Octree_i can underperform the
// plain octree coder on LiDAR data - the effect the paper reports in
// Section 4.2.

#ifndef DBGC_CODEC_OCTREE_GROUPED_CODEC_H_
#define DBGC_CODEC_OCTREE_GROUPED_CODEC_H_

#include <string>

#include "codec/codec.h"
#include "spatial/octree.h"

namespace dbgc {

/// Parent-occupancy-grouped octree geometry codec.
class OctreeGroupedCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Octree_i"; }

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;
};

}  // namespace dbgc

#endif  // DBGC_CODEC_OCTREE_GROUPED_CODEC_H_
