#include "codec/range_image_codec.h"

#include <cmath>
#include <limits>
#include <vector>

#include "bitio/varint.h"
#include "common/safe_math.h"
#include "encoding/value_codec.h"
#include "entropy/binary_coder.h"
#include "lidar/spherical.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

// Occupancy contexts: (left bit, above bit) -> 4 adaptive models. Scan
// rows are highly runny, so the left/above neighbourhood captures most of
// the structure.
constexpr size_t kNumContexts = 4;

size_t ContextOf(int left, int above) {
  return static_cast<size_t>(left * 2 + above);
}

}  // namespace

RangeImageCodec::RangeImageCodec(SensorMetadata sensor)
    : sensor_(sensor) {}

Result<ByteBuffer> RangeImageCodec::CompressImpl(
    const PointCloud& pc, const CompressParams& params) const {
  const double q_xyz = params.q_xyz;
  if (q_xyz <= 0) {
    return Status::InvalidArgument("range image: q_xyz must be positive");
  }
  const int width = sensor_.horizontal_samples;
  const int height = sensor_.vertical_samples;
  const double u_theta = sensor_.AzimuthStep();
  const double u_phi = sensor_.PolarStep();

  // Resample: keep the nearest return per cell (the sensor's own behaviour
  // for multiple echoes).
  std::vector<double> range(static_cast<size_t>(width) * height,
                            std::numeric_limits<double>::infinity());
  for (const Point3& p : pc) {
    const SphericalPoint s = CartesianToSpherical(p);
    int col = static_cast<int>(std::floor((s.theta - sensor_.theta_min) /
                                          u_theta));
    int row = static_cast<int>(std::floor((sensor_.phi_max - s.phi) /
                                          u_phi));
    if (col < 0) col = 0;
    if (col >= width) col = width - 1;
    if (row < 0) row = 0;
    if (row >= height) row = height - 1;
    double& cell = range[static_cast<size_t>(row) * width + col];
    if (s.r < cell) cell = s.r;
  }

  // Occupancy bitmap with (left, above) contexts.
  BinaryEncoder occupancy(kNumContexts, params.entropy_backend);
  std::vector<uint8_t> occupied(range.size(), 0);
  size_t num_occupied = 0;
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      const size_t idx = static_cast<size_t>(row) * width + col;
      const int bit = std::isfinite(range[idx]) ? 1 : 0;
      const int left = col > 0 ? occupied[idx - 1] : 0;
      const int above = row > 0 ? occupied[idx - width] : 0;
      occupancy.EncodeBit(ContextOf(left, above), bit);
      occupied[idx] = static_cast<uint8_t>(bit);
      num_occupied += bit;
    }
  }

  // Radial channel: quantize at 2q and delta-code along rows.
  const double step = 2.0 * q_xyz;
  std::vector<int64_t> deltas;
  deltas.reserve(num_occupied);
  for (int row = 0; row < height; ++row) {
    int64_t prev = 0;
    for (int col = 0; col < width; ++col) {
      const size_t idx = static_cast<size_t>(row) * width + col;
      if (!occupied[idx]) continue;
      const int64_t q = static_cast<int64_t>(std::llround(range[idx] / step));
      deltas.push_back(q - prev);
      prev = q;
    }
  }

  obs::TraceSpan serialize_span(obs::Stage::kSerialize);
  ByteBuffer out;
  out.AppendDouble(sensor_.theta_min);
  out.AppendDouble(sensor_.phi_max);
  out.AppendDouble(u_theta);
  out.AppendDouble(u_phi);
  out.AppendDouble(step);
  PutVarint64(&out, static_cast<uint64_t>(width));
  PutVarint64(&out, static_cast<uint64_t>(height));
  out.AppendLengthPrefixed(occupancy.Finish());
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(deltas, params.entropy_backend));
  return out;
}

Result<PointCloud> RangeImageCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  ByteReader reader(buffer);
  double theta_min, phi_max, u_theta, u_phi, step;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&theta_min));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&phi_max));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&u_theta));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&u_phi));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&step));
  uint64_t width, height;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &width));
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &height));
  // Bound each dimension, then form the area with checked multiplication:
  // width * height wraps for dimensions near 2^32, and a wrapped small
  // product would pass an area check while row * width + col indexes far
  // outside the bitmap.
  if (width == 0 || height == 0) {
    return Status::Corruption("range image: implausible grid");
  }
  DBGC_BOUND(width, kMaxDecodedElements, "range image width");
  DBGC_BOUND(height, kMaxDecodedElements, "range image height");
  const std::optional<uint64_t> area = CheckedMul(width, height);
  if (!area || *area > kMaxDecodedElements) {
    return Status::Corruption("range image: implausible grid");
  }
  const BoundedAlloc alloc(reader.remaining());
  ByteBuffer occupancy_stream, range_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&occupancy_stream));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&range_stream));

  BinaryDecoder occupancy(occupancy_stream, kNumContexts,
                          params.entropy_backend);
  // Occupancy bits are entropy-coded (no whole-byte floor per cell), so the
  // bitmap is bounded by the absolute element cap rather than stream bytes.
  std::vector<uint8_t> occupied;
  DBGC_RETURN_NOT_OK(
      alloc.Resize(&occupied, *area, /*min_bytes_each=*/0, "range bitmap"));
  size_t num_occupied = 0;
  for (uint64_t row = 0; row < height; ++row) {
    for (uint64_t col = 0; col < width; ++col) {
      const size_t idx = row * width + col;
      const int left = col > 0 ? occupied[idx - 1] : 0;
      const int above = row > 0 ? occupied[idx - width] : 0;
      const int bit = occupancy.DecodeBit(ContextOf(left, above));
      occupied[idx] = static_cast<uint8_t>(bit);
      num_occupied += bit;
    }
  }

  std::vector<int64_t> deltas;
  DBGC_RETURN_NOT_OK(SignedValueCodec::Decompress(range_stream, &deltas,
                                                  params.entropy_backend));
  if (deltas.size() != num_occupied) {
    return Status::Corruption("range image: radial channel mismatch");
  }

  PointCloud pc;
  pc.Reserve(deltas.size());  // == num_occupied, already materialized.
  size_t cursor = 0;
  for (uint64_t row = 0; row < height; ++row) {
    int64_t prev = 0;
    for (uint64_t col = 0; col < width; ++col) {
      if (!occupied[row * width + col]) continue;
      prev += deltas[cursor++];
      const double r = static_cast<double>(prev) * step;
      const double theta =
          theta_min + (static_cast<double>(col) + 0.5) * u_theta;
      const double phi = phi_max - (static_cast<double>(row) + 0.5) * u_phi;
      pc.Add(SphericalToCartesian(SphericalPoint{theta, phi, r}));
    }
  }
  return pc;
}

}  // namespace dbgc
