// Range-image codec: the raw-data image-based approach of the related work
// (Houshiar et al. [26], Tu et al. [54]; Section 2.2). Points are resampled
// onto the sensor's (theta, phi) grid, the occupancy bitmap is
// context-coded, and the per-cell radial distances are delta-coded along
// scan rows.
//
// Unlike every other codec in this repository, this scheme does NOT
// guarantee the one-to-one mapping of the Problem Statement: multiple
// points falling into one grid cell collapse to a single sample, and each
// sample is re-centered on the grid. The paper's argument - such schemes
// "bear a low compression accuracy in comparison with the calibrated point
// cloud" - is reproduced by bench_range_image, which measures the angular
// resampling error against the calibrated input.

#ifndef DBGC_CODEC_RANGE_IMAGE_CODEC_H_
#define DBGC_CODEC_RANGE_IMAGE_CODEC_H_

#include <string>

#include "codec/codec.h"
#include "lidar/sensor_model.h"

namespace dbgc {

/// Image-based LiDAR codec over the sensor sampling grid.
class RangeImageCodec : public GeometryCodec {
 public:
  /// Grid geometry comes from the sensor metadata.
  explicit RangeImageCodec(
      SensorMetadata sensor = SensorMetadata::VelodyneHdl64e());

  std::string name() const override { return "RangeImage"; }

 protected:
  /// Compresses by resampling onto the grid; params.q_xyz bounds only the
  /// radial quantization - the angular snap error is unbounded by q (that
  /// is the accuracy sacrifice of this family of methods).
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;

  /// Returns one point per occupied grid cell (|PC'| <= |PC|).
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;

 private:
  SensorMetadata sensor_;
};

}  // namespace dbgc

#endif  // DBGC_CODEC_RANGE_IMAGE_CODEC_H_
