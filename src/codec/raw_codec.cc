#include "codec/raw_codec.h"

#include <cstring>

namespace dbgc {

Result<ByteBuffer> RawCodec::Compress(const PointCloud& pc,
                                      double q_xyz) const {
  (void)q_xyz;  // Lossless within float precision; the bound is trivial.
  ByteBuffer out;
  out.Reserve(8 + pc.size() * 12);
  out.AppendUint64(pc.size());
  for (const Point3& p : pc) {
    const float v[3] = {static_cast<float>(p.x), static_cast<float>(p.y),
                        static_cast<float>(p.z)};
    uint8_t bytes[12];
    std::memcpy(bytes, v, 12);
    out.Append(bytes, 12);
  }
  return out;
}

Result<PointCloud> RawCodec::Decompress(const ByteBuffer& buffer) const {
  ByteReader reader(buffer);
  uint64_t count;
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&count));
  // Divide instead of multiplying: count * 12 wraps for counts near 2^61,
  // sneaking a huge count past the truncation check.
  if (count > reader.remaining() / 12) {
    return Status::Corruption("raw codec: truncated point data");
  }
  PointCloud pc;
  pc.Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t bytes[12];
    DBGC_RETURN_NOT_OK(reader.Read(bytes, 12));
    float v[3];
    std::memcpy(v, bytes, 12);
    pc.Add(v[0], v[1], v[2]);
  }
  return pc;
}

}  // namespace dbgc
