#include "codec/raw_codec.h"

#include <cstring>

namespace dbgc {

Result<ByteBuffer> RawCodec::CompressImpl(const PointCloud& pc,
                                          const CompressParams& params) const {
  (void)params;  // Lossless within float precision; the bound is trivial.
  ByteBuffer out;
  out.Reserve(8 + pc.size() * 12);
  out.AppendUint64(pc.size());
  for (const Point3& p : pc) {
    const float v[3] = {static_cast<float>(p.x), static_cast<float>(p.y),
                        static_cast<float>(p.z)};
    uint8_t bytes[12];
    std::memcpy(bytes, v, 12);
    out.Append(bytes, 12);
  }
  return out;
}

Result<PointCloud> RawCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  (void)params;  // A 12-byte memcpy loop gains nothing from threads.
  ByteReader reader(buffer);
  uint64_t count;
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&count));
  // Each point costs 12 whole stream bytes, so the stream budget bounds the
  // count exactly; BoundedAlloc divides rather than multiplies so counts
  // near 2^61 cannot wrap past the check.
  PointCloud pc;
  const BoundedAlloc alloc(reader.remaining());
  DBGC_RETURN_NOT_OK(alloc.Reserve(&pc, count, /*min_bytes_each=*/12,
                                   "raw codec points"));
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t bytes[12];
    DBGC_RETURN_NOT_OK(reader.Read(bytes, 12));
    float v[3];
    std::memcpy(v, bytes, 12);
    pc.Add(v[0], v[1], v[2]);
  }
  return pc;
}

}  // namespace dbgc
