// RawCodec: the identity "compressor" storing each coordinate as a 32-bit
// float. Serves as the uncompressed reference (compression ratio ~1) and as
// a sanity baseline in tests.

#ifndef DBGC_CODEC_RAW_CODEC_H_
#define DBGC_CODEC_RAW_CODEC_H_

#include <string>

#include "codec/codec.h"

namespace dbgc {

/// Stores points as raw 32-bit floats (plus an 8-byte count header).
class RawCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Raw"; }

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;
};

}  // namespace dbgc

#endif  // DBGC_CODEC_RAW_CODEC_H_
