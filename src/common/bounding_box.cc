#include "common/bounding_box.h"

#include <cmath>

namespace dbgc {

Cube Cube::BoundingCube(const BoundingBox& box, double leaf_side) {
  Cube c;
  if (box.IsEmpty()) {
    c.origin = Point3{0, 0, 0};
    c.side = leaf_side;
    return c;
  }
  const double extent = std::max(box.MaxExtent(), leaf_side);
  // Round the required number of leaf cells up to the next power of two so
  // that recursive halving bottoms out exactly at leaf_side.
  int depth = 0;
  double side = leaf_side;
  while (side < extent) {
    side *= 2;
    ++depth;
  }
  (void)depth;
  const Point3 center = box.Center();
  c.origin = Point3{center.x - side / 2, center.y - side / 2,
                    center.z - side / 2};
  c.side = side;
  return c;
}

}  // namespace dbgc
