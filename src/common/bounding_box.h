// Axis-aligned bounding boxes (3D and 2D) and the bounding cube used as the
// root cell of octree partitioning.

#ifndef DBGC_COMMON_BOUNDING_BOX_H_
#define DBGC_COMMON_BOUNDING_BOX_H_

#include <algorithm>
#include <limits>

#include "common/point_cloud.h"

namespace dbgc {

/// An axis-aligned 3D bounding box.
struct BoundingBox {
  Point3 min{std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()};
  Point3 max{-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()};

  /// True iff no point has been added.
  bool IsEmpty() const { return min.x > max.x; }

  /// Expands the box to include p.
  void Extend(const Point3& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    min.z = std::min(min.z, p.z);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
    max.z = std::max(max.z, p.z);
  }

  /// True iff p lies inside the box (inclusive bounds).
  bool Contains(const Point3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  /// Side lengths on each dimension.
  Point3 Extent() const { return max - min; }

  /// The largest side length (Omega in the paper's Draco discussion).
  double MaxExtent() const {
    const Point3 e = Extent();
    return std::max(e.x, std::max(e.y, e.z));
  }

  /// Box center.
  Point3 Center() const { return (min + max) * 0.5; }

  /// Computes the bounding box of a point cloud.
  static BoundingBox Of(const PointCloud& pc) {
    BoundingBox b;
    for (const Point3& p : pc) b.Extend(p);
    return b;
  }
};

/// An axis-aligned 2D bounding box on the xy-plane (used by the outlier
/// quadtree, Section 3.6).
struct BoundingBox2D {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  bool IsEmpty() const { return min_x > max_x; }

  void Extend(double x, double y) {
    min_x = std::min(min_x, x);
    min_y = std::min(min_y, y);
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
  }

  double MaxExtent() const {
    return std::max(max_x - min_x, max_y - min_y);
  }
};

/// A cube: origin corner plus side length. Octree cells are cubes.
struct Cube {
  Point3 origin;       ///< The corner with minimal coordinates.
  double side = 0.0;   ///< Side length.

  /// The cube's center point.
  Point3 Center() const {
    return {origin.x + side / 2, origin.y + side / 2, origin.z + side / 2};
  }

  /// True iff p lies inside the cube (half-open bounds, with the max corner
  /// included to absorb floating-point boundary cases at the root).
  bool Contains(const Point3& p) const {
    return p.x >= origin.x && p.x <= origin.x + side && p.y >= origin.y &&
           p.y <= origin.y + side && p.z >= origin.z && p.z <= origin.z + side;
  }

  /// Child cube with the given octant index in [0, 8).
  /// Bit 0 selects the x half, bit 1 the y half, bit 2 the z half.
  Cube Child(int octant) const {
    const double h = side / 2;
    return Cube{Point3{origin.x + ((octant & 1) ? h : 0.0),
                       origin.y + ((octant & 2) ? h : 0.0),
                       origin.z + ((octant & 4) ? h : 0.0)},
                h};
  }

  /// The smallest cube that contains `box`, centered on the box, with a side
  /// that is `leaf_side * 2^depth` for an integral depth. This makes octree
  /// leaves have exactly the requested side length.
  static Cube BoundingCube(const BoundingBox& box, double leaf_side);
};

}  // namespace dbgc

#endif  // DBGC_COMMON_BOUNDING_BOX_H_
