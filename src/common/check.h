// DBGC_CHECK: hardened invariant check, active in every build type.
//
// Split out of contracts.h so that status.h (which contracts.h depends on)
// can use it without an include cycle. Most code should include
// common/contracts.h, which re-exports this header.

#ifndef DBGC_COMMON_CHECK_H_
#define DBGC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dbgc::internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: DBGC_CHECK failed: %s\n", file, line, expr);
  std::abort();
}
}  // namespace dbgc::internal

/// Hardened invariant check: active in all build types (unlike assert).
/// Use for programmer-error invariants, never for untrusted input — decode
/// paths must return Status::Corruption (see DBGC_BOUND in
/// common/contracts.h) so a hostile bitstream cannot take the process down.
#define DBGC_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::dbgc::internal::CheckFailed(__FILE__, __LINE__, #cond);       \
    }                                                                 \
  } while (false)

#endif  // DBGC_COMMON_CHECK_H_
