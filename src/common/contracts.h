// Decoder-safety contracts: hardened invariant checks and bounded
// allocation for values parsed from untrusted streams.
//
// Three layers (docs/LINTING.md describes the lint rules that enforce them):
//
//   DBGC_CHECK(cond)        — hardened assert for *internal* invariants.
//                             Active in every build type; aborts with
//                             file:line on violation. Library code uses this
//                             instead of assert() (lint rule R4).
//   DBGC_BOUND(v, lim, what)— decode-path guard for *untrusted* values:
//                             returns Status::Corruption from the enclosing
//                             function when v > lim.
//   BoundedAlloc            — sizes every decoder allocation against the
//                             bytes actually remaining in the stream, so a
//                             lying header cannot trigger a multi-GB
//                             allocation before the decode loop has produced
//                             a single element (lint rule R2).

#ifndef DBGC_COMMON_CONTRACTS_H_
#define DBGC_COMMON_CONTRACTS_H_

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/status.h"

namespace dbgc {

/// Upper bound on element counts parsed from untrusted streams; decoders
/// reject larger values before allocating (corruption containment).
inline constexpr uint64_t kMaxDecodedElements = 1ULL << 28;

/// Cap on speculative reserves for entropy-coded element streams, where the
/// per-element stream cost can be well under one byte and the stream length
/// therefore gives no useful bound. The container still grows on demand;
/// only the up-front reservation is clamped.
inline constexpr uint64_t kSpeculativeReserveLimit = 1ULL << 20;

/// Rejects an untrusted value exceeding `limit` by returning
/// Status::Corruption("<what>: value exceeds bound") from the enclosing
/// function. Only valid in functions returning Status or Result<T>.
/// Passing a variable through DBGC_BOUND marks it size-sanitized for lint
/// rule R3.
#define DBGC_BOUND(value, limit, what)                                \
  do {                                                                \
    if (static_cast<uint64_t>(value) >                                \
        static_cast<uint64_t>(limit)) {                               \
      return ::dbgc::Status::Corruption(std::string(what) +           \
                                        ": value exceeds bound");     \
    }                                                                 \
  } while (false)

/// Caps decoder allocations against the bytes remaining in the untrusted
/// stream they decode from.
///
/// Construct one per framed section with the reader's remaining byte count,
/// then route every count-sized allocation through it:
///
///   BoundedAlloc alloc(reader.remaining());
///   DBGC_RETURN_NOT_OK(alloc.Reserve(&pc, count, /*min_bytes_each=*/12,
///                                    "raw codec points"));
///
/// Works with both STL containers (.reserve/.resize) and this library's
/// PointCloud-style types (.Reserve).
class BoundedAlloc {
 public:
  explicit constexpr BoundedAlloc(uint64_t stream_bytes,
                                  uint64_t cap = kMaxDecodedElements)
      : stream_bytes_(stream_bytes), cap_(cap) {}

  /// True iff `count` elements, each of which must have consumed at least
  /// `min_bytes_each` stream bytes to encode, can be present.
  constexpr bool Fits(uint64_t count, uint64_t min_bytes_each) const {
    if (count > cap_) return false;
    // Divide instead of multiplying: count * min_bytes_each can wrap.
    if (min_bytes_each == 0) return true;
    return count <= stream_bytes_ / min_bytes_each;
  }

  /// Validates `count` against the stream budget, then reserves. Use when
  /// every element costs at least `min_bytes_each` whole stream bytes.
  template <typename Container>
  [[nodiscard]] Status Reserve(Container* c, uint64_t count,
                               uint64_t min_bytes_each,
                               const char* what) const {
    DBGC_RETURN_NOT_OK(Check(count, min_bytes_each, what));
    DoReserve(c, static_cast<size_t>(count));
    return Status::OK();
  }

  /// Validates `count` against the stream budget, then resizes (value
  /// initializing new elements).
  template <typename Container>
  [[nodiscard]] Status Resize(Container* c, uint64_t count,
                              uint64_t min_bytes_each,
                              const char* what) const {
    DBGC_RETURN_NOT_OK(Check(count, min_bytes_each, what));
    c->resize(static_cast<size_t>(count));
    return Status::OK();
  }

  /// For entropy-coded elements with no whole-byte cost floor: validates
  /// `count` against the absolute cap only, then reserves
  /// min(count, kSpeculativeReserveLimit). The container still grows on
  /// demand past the clamp; a lying header just loses its pre-allocation.
  template <typename Container>
  [[nodiscard]] Status ReserveSpeculative(Container* c, uint64_t count,
                                          const char* what) const {
    DBGC_BOUND(count, cap_, what);
    DoReserve(c, static_cast<size_t>(count < kSpeculativeReserveLimit
                                         ? count
                                         : kSpeculativeReserveLimit));
    return Status::OK();
  }

  /// The validation half of Reserve, for callers that allocate elsewhere.
  [[nodiscard]] Status Check(uint64_t count, uint64_t min_bytes_each,
                             const char* what) const {
    if (!Fits(count, min_bytes_each)) {
      return Status::Corruption(std::string(what) +
                                ": count exceeds stream budget");
    }
    return Status::OK();
  }

 private:
  template <typename Container>
  static void DoReserve(Container* c, size_t n) {
    if constexpr (requires { c->reserve(n); }) {
      c->reserve(n);
    } else {
      c->Reserve(n);
    }
  }

  uint64_t stream_bytes_;
  uint64_t cap_;
};

}  // namespace dbgc

#endif  // DBGC_COMMON_CONTRACTS_H_
