// Annotated synchronization primitives (docs/CONCURRENCY.md).
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry
// the Clang Thread Safety Analysis capability attributes from
// common/thread_annotations.h. Library code under src/ locks through these
// types so that both clang (-DDBGC_THREAD_SAFETY=ON) and dbgc_lint rule R9
// can prove every DBGC_GUARDED_BY access happens under the right mutex.
//
// Wait loops must be written out explicitly —
//
//   ReleasableMutexLock lock(mutex_);
//   while (!ready_) cv_.Wait(lock);
//
// — not with the predicate-lambda overload of std::condition_variable:
// the analysis does not carry capabilities into lambdas, so a predicate
// that reads a guarded member would be flagged (and rightly so: it hides a
// guarded access from every static checker, including dbgc_lint).

#ifndef DBGC_COMMON_MUTEX_H_
#define DBGC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dbgc {

/// std::mutex with capability annotations. BasicLockable, so it still
/// composes with standard lock adapters where needed.
class DBGC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DBGC_ACQUIRE() { mu_.lock(); }
  void unlock() DBGC_RELEASE() { mu_.unlock(); }
  bool try_lock() DBGC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock-for-scope, the default way to hold a Mutex (lock_guard shape).
class DBGC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DBGC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DBGC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that may be released and re-acquired mid-scope (unique_lock
/// shape). BasicLockable, so CondVar can wait on it. The destructor
/// releases only if currently held.
class DBGC_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) DBGC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ReleasableMutexLock() DBGC_RELEASE() {
    if (held_) mu_.unlock();
  }

  void lock() DBGC_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() DBGC_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex& mu_;
  // Owned by the single thread that holds the RAII object on its stack.
  bool held_ DBGC_THREAD_CONFINED = true;
};

/// Condition variable that waits on a ReleasableMutexLock. Wraps
/// condition_variable_any: the unlock/relock it performs happen inside the
/// standard headers, where clang suppresses thread-safety diagnostics, so
/// caller-side wait loops analyze cleanly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, re-acquires before returning.
  /// Callers re-check their condition in an explicit while loop.
  void Wait(ReleasableMutexLock& lock) { cv_.wait(lock); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dbgc

#endif  // DBGC_COMMON_MUTEX_H_
