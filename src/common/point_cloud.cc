#include "common/point_cloud.h"

#include <algorithm>

namespace dbgc {

double PointCloud::MaxRadius() const {
  double max_sq = 0.0;
  for (const Point3& p : points_) {
    max_sq = std::max(max_sq, p.SquaredNorm());
  }
  return std::sqrt(max_sq);
}

}  // namespace dbgc
