// Core geometric value types: Point3, SphericalPoint, and PointCloud.
//
// A point cloud (Definition 2.1 of the paper) is a set of points carrying
// geometry. This library compresses geometry only, so a point is three
// doubles. Spherical coordinates follow the paper's convention: theta is the
// azimuthal angle in the xy-plane, phi the polar angle measured from the
// xy-plane (elevation), and r the radial distance from the sensor origin.

#ifndef DBGC_COMMON_POINT_CLOUD_H_
#define DBGC_COMMON_POINT_CLOUD_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/safe_math.h"

namespace dbgc {

/// A point in Cartesian coordinates (meters).
struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Point3() = default;
  Point3(double px, double py, double pz) : x(px), y(py), z(pz) {}

  Point3 operator+(const Point3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Point3 operator-(const Point3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Point3 operator*(double s) const { return {x * s, y * s, z * s}; }

  bool operator==(const Point3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  /// Squared Euclidean norm.
  double SquaredNorm() const { return x * x + y * y + z * z; }
  /// Euclidean norm.
  double Norm() const { return std::sqrt(SquaredNorm()); }
  /// Euclidean distance to another point.
  double DistanceTo(const Point3& o) const { return (*this - o).Norm(); }
  /// Largest absolute per-dimension difference to another point.
  double ChebyshevDistanceTo(const Point3& o) const {
    return std::fmax(std::fabs(x - o.x),
                     std::fmax(std::fabs(y - o.y), std::fabs(z - o.z)));
  }
};

/// A point in spherical coordinates relative to the sensor origin.
///
/// theta: azimuthal angle in radians, range (-pi, pi].
/// phi:   polar (elevation) angle in radians measured from the xy-plane,
///        range [-pi/2, pi/2].
/// r:     radial distance in meters, >= 0.
struct SphericalPoint {
  double theta = 0.0;
  double phi = 0.0;
  double r = 0.0;

  SphericalPoint() = default;
  SphericalPoint(double t, double p, double radius)
      : theta(t), phi(p), r(radius) {}

  bool operator==(const SphericalPoint& o) const {
    return theta == o.theta && phi == o.phi && r == o.r;
  }
};

/// A point cloud: an ordered container of Cartesian points.
///
/// Although a point cloud is conceptually a set, we store points in a vector
/// so that codecs can define a one-to-one mapping between input and output by
/// carrying point order through the pipeline.
class PointCloud {
 public:
  PointCloud() = default;
  explicit PointCloud(std::vector<Point3> points)
      : points_(std::move(points)) {}

  /// Number of points, |PC|.
  size_t size() const { return points_.size(); }
  /// True iff the cloud has no points.
  bool empty() const { return points_.empty(); }

  const Point3& operator[](size_t i) const { return points_[i]; }
  Point3& operator[](size_t i) { return points_[i]; }

  const std::vector<Point3>& points() const { return points_; }
  std::vector<Point3>& mutable_points() { return points_; }

  /// Non-copying view of the points. The stage kernels and clustering
  /// passes take spans so they run over any contiguous Point3 storage
  /// (a PointCloud, a gathered scratch vector) without materializing a
  /// PointCloud copy. Invalidated by any mutation of this cloud.
  std::span<const Point3> view() const { return {points_.data(), points_.size()}; }

  /// Appends a point.
  void Add(const Point3& p) { points_.push_back(p); }
  /// Appends a point constructed from coordinates.
  void Add(double x, double y, double z) { points_.emplace_back(x, y, z); }
  /// Removes all points.
  void Clear() { points_.clear(); }
  /// Reserves storage for n points.
  void Reserve(size_t n) { points_.reserve(n); }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }
  auto begin() { return points_.begin(); }
  auto end() { return points_.end(); }

  /// Uncompressed in-memory geometry size in bytes.
  ///
  /// The paper's compression-ratio convention (Section 2.1 and Section 4.4)
  /// stores each coordinate as a 32-bit float: 96 bits = 12 bytes per point.
  /// Returned as uint64_t with checked (saturating) math: this value feeds
  /// the cumulative byte counters and ratio/bandwidth figures, which must
  /// stay monotone past 4 GiB even where size_t is 32 bits.
  uint64_t RawSizeBytes() const {
    return CheckedMul<uint64_t>(points_.size(), 12)
        .value_or(std::numeric_limits<uint64_t>::max());
  }

  /// The maximum radial distance from the origin over all points.
  /// Returns 0 for an empty cloud.
  double MaxRadius() const;

 private:
  std::vector<Point3> points_;
};

}  // namespace dbgc

#endif  // DBGC_COMMON_POINT_CLOUD_H_
