#include "common/point_soa.h"

#include <utility>

#include "common/check.h"

namespace dbgc {

PointSoA PointSoA::FromPoints(std::span<const Point3> points) {
  PointSoA soa(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    soa.c0_[i] = points[i].x;
    soa.c1_[i] = points[i].y;
    soa.c2_[i] = points[i].z;
  }
  return soa;
}

PointSoA PointSoA::Adopt(std::vector<double> c0, std::vector<double> c1,
                         std::vector<double> c2) {
  DBGC_CHECK(c0.size() == c1.size() && c1.size() == c2.size());
  PointSoA soa;
  soa.c0_ = std::move(c0);
  soa.c1_ = std::move(c1);
  soa.c2_ = std::move(c2);
  return soa;
}

PointSoA::Columns PointSoA::Release() && {
  Columns cols;
  cols.c0 = std::move(c0_);
  cols.c1 = std::move(c1_);
  cols.c2 = std::move(c2_);
  c0_.clear();
  c1_.clear();
  c2_.clear();
  return cols;
}

std::vector<Point3> PointSoA::ToPoints() const {
  std::vector<Point3> points(size());
  for (size_t i = 0; i < size(); ++i) {
    points[i] = Point3{c0_[i], c1_[i], c2_[i]};
  }
  return points;
}

void PointSoA::Resize(size_t n) {
  c0_.resize(n);
  c1_.resize(n);
  c2_.resize(n);
}

void PointSoA::Reserve(size_t n) {
  c0_.reserve(n);
  c1_.reserve(n);
  c2_.reserve(n);
}

void PointSoA::Clear() {
  c0_.clear();
  c1_.clear();
  c2_.clear();
}

void PointSoA::PushBack(const Point3& p) {
  c0_.push_back(p.x);
  c1_.push_back(p.y);
  c2_.push_back(p.z);
}

void PointSoA::PushBack(const SphericalPoint& s) {
  c0_.push_back(s.theta);
  c1_.push_back(s.phi);
  c2_.push_back(s.r);
}

}  // namespace dbgc
