// PointSoA: a structure-of-arrays mirror of a Point3 / SphericalPoint
// sequence (docs/PERFORMANCE.md).
//
// The DBGC encode hot path streams millions of coordinates per second
// through per-stage kernels that each touch only one or two dimensions
// (cell-key derivation reads x/y/z, the organizer's candidate filter reads
// theta/phi, quantization reads one column at a time). An array of 24-byte
// Point3 structs wastes two thirds of every cache line in those loops and
// blocks vectorization; PointSoA stores the three coordinates as separate
// contiguous double columns instead.
//
// The same storage carries both naming surfaces: x/y/z for Cartesian data
// and theta/phi/r for spherical data (the columns alias pairwise:
// x==theta, y==phi, z==r). Values round-trip bit-exactly: conversion is a
// pure memory transpose, never an arithmetic transform.
//
// Adopt/Release move existing std::vector<double> columns in and out
// without copying, so a stage that already produced a column (e.g. the
// radial distances that feed grouping) can hand it off for free.

#ifndef DBGC_COMMON_POINT_SOA_H_
#define DBGC_COMMON_POINT_SOA_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/point_cloud.h"

namespace dbgc {

/// Three contiguous coordinate columns of equal length.
class PointSoA {
 public:
  /// The released column triple (see Release()).
  struct Columns {
    std::vector<double> c0;  ///< x / theta column.
    std::vector<double> c1;  ///< y / phi column.
    std::vector<double> c2;  ///< z / r column.
  };

  PointSoA() = default;
  /// Creates n zero-initialized points.
  explicit PointSoA(size_t n) : c0_(n), c1_(n), c2_(n) {}

  /// Transposes an AoS point sequence into columns (bit-exact copies).
  static PointSoA FromPoints(std::span<const Point3> points);

  /// Wraps three existing columns without copying. The columns must have
  /// equal lengths.
  static PointSoA Adopt(std::vector<double> c0, std::vector<double> c1,
                        std::vector<double> c2);

  /// Moves the columns out, leaving this container empty. The inverse of
  /// Adopt: no copies, no value changes.
  Columns Release() &&;

  /// Transposes back into an AoS point sequence (bit-exact copies).
  std::vector<Point3> ToPoints() const;

  size_t size() const { return c0_.size(); }
  bool empty() const { return c0_.empty(); }
  void Resize(size_t n);
  void Reserve(size_t n);
  void Clear();

  // Cartesian column views.
  double* x() { return c0_.data(); }
  double* y() { return c1_.data(); }
  double* z() { return c2_.data(); }
  const double* x() const { return c0_.data(); }
  const double* y() const { return c1_.data(); }
  const double* z() const { return c2_.data(); }

  // Spherical column views (aliases of the same storage).
  double* theta() { return c0_.data(); }
  double* phi() { return c1_.data(); }
  double* r() { return c2_.data(); }
  const double* theta() const { return c0_.data(); }
  const double* phi() const { return c1_.data(); }
  const double* r() const { return c2_.data(); }

  /// Row i as a Cartesian point.
  Point3 PointAt(size_t i) const { return Point3{c0_[i], c1_[i], c2_[i]}; }
  /// Row i as a spherical point.
  SphericalPoint SphericalAt(size_t i) const {
    return SphericalPoint{c0_[i], c1_[i], c2_[i]};
  }

  void Set(size_t i, const Point3& p) {
    c0_[i] = p.x;
    c1_[i] = p.y;
    c2_[i] = p.z;
  }
  void Set(size_t i, const SphericalPoint& s) {
    c0_[i] = s.theta;
    c1_[i] = s.phi;
    c2_[i] = s.r;
  }

  void PushBack(const Point3& p);
  void PushBack(const SphericalPoint& s);

 private:
  std::vector<double> c0_;
  std::vector<double> c1_;
  std::vector<double> c2_;
};

}  // namespace dbgc

#endif  // DBGC_COMMON_POINT_SOA_H_
