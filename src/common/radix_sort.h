// Stable LSD radix sorts for the compression hot paths
// (docs/PERFORMANCE.md).
//
// The clustering and octree stages sort hundreds of thousands of packed
// cell keys per frame; std::sort's comparison loop dominates their
// profiles. These byte-wise counting sorts run in a fixed number of linear
// passes and skip passes whose digit is constant across the input.
//
// Both sorts are stable and produce exactly the ordering std::stable_sort
// (or std::sort, for plain values) would: callers rely on that equivalence
// to keep emitted bitstreams byte-identical to the comparison-sort
// implementations they replaced.

#ifndef DBGC_COMMON_RADIX_SORT_H_
#define DBGC_COMMON_RADIX_SORT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dbgc {

/// Sorts `values` ascending in place. `scratch` is resized as needed and
/// reusable across calls. Only the low `key_bits` bits are significant:
/// callers whose keys fit fewer bits save passes.
inline void RadixSortU64(std::vector<uint64_t>& values,
                         std::vector<uint64_t>& scratch, int key_bits = 64) {
  const size_t n = values.size();
  if (n < 2) return;
  scratch.resize(n);
  uint64_t* src = values.data();
  uint64_t* dst = scratch.data();
  const int passes = (key_bits + 7) / 8;
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    size_t count[256] = {0};
    for (size_t i = 0; i < n; ++i) ++count[(src[i] >> shift) & 0xFF];
    // A constant digit means the pass is the identity permutation.
    bool trivial = false;
    for (size_t b = 0; b < 256; ++b) {
      if (count[b] == n) {
        trivial = true;
        break;
      }
      if (count[b] != 0) break;
    }
    if (trivial) continue;
    size_t offset = 0;
    for (size_t b = 0; b < 256; ++b) {
      const size_t c = count[b];
      count[b] = offset;
      offset += c;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[count[(src[i] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != values.data()) {
    for (size_t i = 0; i < n; ++i) values[i] = src[i];
  }
}

/// Stably sorts the index array `perm` ascending by `keys[perm[i]]`,
/// producing exactly the permutation std::stable_sort with a key-less-than
/// comparator would. `scratch` is resized as needed and reusable.
inline void RadixSortIndicesByKey(std::span<const uint64_t> keys,
                                  std::vector<uint32_t>& perm,
                                  std::vector<uint32_t>& scratch,
                                  int key_bits = 64) {
  const size_t n = perm.size();
  if (n < 2) return;
  scratch.resize(n);
  uint32_t* src = perm.data();
  uint32_t* dst = scratch.data();
  const int passes = (key_bits + 7) / 8;
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    size_t count[256] = {0};
    for (size_t i = 0; i < n; ++i) ++count[(keys[src[i]] >> shift) & 0xFF];
    bool trivial = false;
    for (size_t b = 0; b < 256; ++b) {
      if (count[b] == n) {
        trivial = true;
        break;
      }
      if (count[b] != 0) break;
    }
    if (trivial) continue;
    size_t offset = 0;
    for (size_t b = 0; b < 256; ++b) {
      const size_t c = count[b];
      count[b] = offset;
      offset += c;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[count[(keys[src[i]] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != perm.data()) {
    for (size_t i = 0; i < n; ++i) perm[i] = src[i];
  }
}

/// Number of significant low bits in `max_value` (0 -> 0 bits).
inline int SignificantBits(uint64_t max_value) {
  int bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits;
}

}  // namespace dbgc

#endif  // DBGC_COMMON_RADIX_SORT_H_
