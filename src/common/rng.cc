#include "common/rng.h"

#include <cmath>

namespace dbgc {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace dbgc
