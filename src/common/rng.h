// Deterministic random number generation for synthetic workloads and tests.
//
// All randomness in libdbgc flows through Rng so that every experiment is
// reproducible from a seed.

#ifndef DBGC_COMMON_RNG_H_
#define DBGC_COMMON_RNG_H_

#include <cstdint>

namespace dbgc {

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographically secure; used only to generate synthetic scenes and
/// randomized test inputs.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextRange(double lo, double hi);

  /// Standard normal (Box–Muller) sample.
  double NextGaussian();

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dbgc

#endif  // DBGC_COMMON_RNG_H_
