// Checked integer arithmetic for untrusted size fields.
//
// Decoders in this library consume adversarial bytes by design: every count,
// length, or shift amount parsed from a bitstream can be attacker-chosen.
// Raw `*`, `+`, and `<<` on such values wrap (or are UB for signed types)
// and turn a corrupt header into an under-sized allocation or an
// out-of-bounds index. These helpers make overflow a first-class, checkable
// outcome: each returns std::optional and is empty exactly when the
// mathematical result does not fit the operand type.
//
// dbgc_lint rule R3 requires arithmetic on decoded size fields to go through
// this header (see docs/LINTING.md).

#ifndef DBGC_COMMON_SAFE_MATH_H_
#define DBGC_COMMON_SAFE_MATH_H_

#include <concepts>
#include <limits>
#include <optional>
#include <type_traits>
#include <utility>

namespace dbgc {

/// a + b, or nullopt on overflow/underflow of T.
template <std::integral T>
constexpr std::optional<T> CheckedAdd(T a, T b) {
  T out;
  if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
  return out;
}

/// a - b, or nullopt on overflow/underflow of T.
template <std::integral T>
constexpr std::optional<T> CheckedSub(T a, T b) {
  T out;
  if (__builtin_sub_overflow(a, b, &out)) return std::nullopt;
  return out;
}

/// a * b, or nullopt on overflow of T.
template <std::integral T>
constexpr std::optional<T> CheckedMul(T a, T b) {
  T out;
  if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
  return out;
}

/// v << shift, or nullopt when the shift is >= the bit width of T, v is
/// negative, or shifted-out bits would be lost (i.e. the result does not
/// round-trip through >> shift).
template <std::integral T>
constexpr std::optional<T> CheckedShl(T v, unsigned shift) {
  constexpr unsigned kWidth = std::numeric_limits<T>::digits +
                              (std::is_signed_v<T> ? 1 : 0);
  if (shift >= kWidth) return std::nullopt;
  if constexpr (std::is_signed_v<T>) {
    if (v < 0) return std::nullopt;
  }
  using U = std::make_unsigned_t<T>;
  const U shifted = static_cast<U>(static_cast<U>(v) << shift);
  if (static_cast<U>(shifted >> shift) != static_cast<U>(v)) {
    return std::nullopt;
  }
  if constexpr (std::is_signed_v<T>) {
    if (shifted > static_cast<U>(std::numeric_limits<T>::max())) {
      return std::nullopt;
    }
  }
  return static_cast<T>(shifted);
}

/// v converted to To, or nullopt when v is not representable in To.
template <std::integral To, std::integral From>
constexpr std::optional<To> CheckedCast(From v) {
  if (!std::in_range<To>(v)) return std::nullopt;
  return static_cast<To>(v);
}

}  // namespace dbgc

#endif  // DBGC_COMMON_SAFE_MATH_H_
