#include "common/status.h"

namespace dbgc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace dbgc
