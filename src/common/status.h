// Status and Result<T>: lightweight error handling used across libdbgc.
//
// Modeled on the Status idiom of Arrow/RocksDB: functions that can fail
// return a Status (or Result<T> when they also produce a value) instead of
// throwing exceptions across the public API boundary.

#ifndef DBGC_COMMON_STATUS_H_
#define DBGC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace dbgc {

/// Error categories used by Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kCorruption = 2,       ///< Malformed or truncated bitstream.
  kOutOfRange = 3,       ///< A value does not fit its encoding.
  kNotImplemented = 4,
  kIOError = 5,
  kInternal = 6,         ///< Invariant violation inside the library.
};

/// Returns a short human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or an error code with a message.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// message string only on error. [[nodiscard]]: silently dropping a Status
/// hides decode failures, so every call must be checked or explicitly
/// voided.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a Corruption status with the given message.
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotImplemented status with the given message.
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Returns an IOError status with the given message.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or an error Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DBGC_CHECK(!status_.ok());
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    DBGC_CHECK(ok());
    return *value_;
  }
  /// Moves the contained value out. Must only be called when ok().
  T&& value() && {
    DBGC_CHECK(ok());
    return std::move(*value_);
  }
  /// Mutable access to the contained value. Must only be called when ok().
  T& value() & {
    DBGC_CHECK(ok());
    return *value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from the current function.
#define DBGC_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::dbgc::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Evaluates a Result<T> expression and assigns its value to `lhs`,
/// propagating the error status on failure.
#define DBGC_ASSIGN_OR_RETURN(lhs, rexpr)   \
  auto DBGC_CONCAT_(_res_, __LINE__) = (rexpr);                   \
  if (!DBGC_CONCAT_(_res_, __LINE__).ok())                        \
    return DBGC_CONCAT_(_res_, __LINE__).status();                \
  lhs = std::move(DBGC_CONCAT_(_res_, __LINE__)).value()

#define DBGC_CONCAT_INNER_(a, b) a##b
#define DBGC_CONCAT_(a, b) DBGC_CONCAT_INNER_(a, b)

}  // namespace dbgc

#endif  // DBGC_COMMON_STATUS_H_
