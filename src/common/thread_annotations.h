// Thread-safety annotation contracts (docs/CONCURRENCY.md).
//
// These macros lower to Clang Thread Safety Analysis attributes when the
// compiler supports them (build with -DDBGC_THREAD_SAFETY=ON to turn the
// analysis into a hard error gate) and compile to nothing everywhere else.
// They are also read *statically* by tools/dbgc_lint rules R8-R12, which
// enforce the same lock discipline on every compiler: a class that owns a
// mutex must annotate each shared mutable member (R8), and a
// DBGC_GUARDED_BY member may only be touched under its mutex or inside a
// DBGC_REQUIRES method (R9).
//
// Annotate with the dbgc::Mutex wrapper from common/mutex.h, not a bare
// std::mutex: the standard-library types carry no capability attributes,
// so clang would be unable to see any acquisition and would flag every
// guarded access.

#ifndef DBGC_COMMON_THREAD_ANNOTATIONS_H_
#define DBGC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define DBGC_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define DBGC_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if DBGC_TSA_HAS_ATTRIBUTE(guarded_by)
#define DBGC_TSA(x) __attribute__((x))
#else
#define DBGC_TSA(x)
#endif

/// Data member readable/writable only while `m` is held.
#define DBGC_GUARDED_BY(m) DBGC_TSA(guarded_by(m))

/// Pointer member whose *pointee* is protected by `m` (the pointer itself
/// may be read freely).
#define DBGC_PT_GUARDED_BY(m) DBGC_TSA(pt_guarded_by(m))

/// Function that must be called with `m` already held by the caller.
#define DBGC_REQUIRES(...) DBGC_TSA(requires_capability(__VA_ARGS__))

/// Function that must be called with `m` NOT held (it acquires internally;
/// calling it while holding `m` would self-deadlock).
#define DBGC_EXCLUDES(...) DBGC_TSA(locks_excluded(__VA_ARGS__))

/// Function that acquires the listed capabilities and returns holding them.
#define DBGC_ACQUIRE(...) DBGC_TSA(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define DBGC_RELEASE(...) DBGC_TSA(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define DBGC_TRY_ACQUIRE(ret, ...) \
  DBGC_TSA(try_acquire_capability(ret, __VA_ARGS__))

/// Class that models a lockable capability (mutex wrappers).
#define DBGC_CAPABILITY(name) DBGC_TSA(capability(name))

/// RAII class whose constructor acquires and destructor releases.
#define DBGC_SCOPED_CAPABILITY DBGC_TSA(scoped_lockable)

/// Return-value annotation: the function returns a reference to data
/// guarded by `m` without holding it (caller must ensure quiescence).
#define DBGC_NO_THREAD_SAFETY_ANALYSIS DBGC_TSA(no_thread_safety_analysis)

/// Documentation-only marker (never lowers to an attribute): the member is
/// written once during construction/startup and then only read, or is
/// synchronized by an external protocol the class documents (e.g. a worker
/// vector joined in the destructor). dbgc_lint rule R8 accepts it in place
/// of DBGC_GUARDED_BY; the comment next to each use must say *what* the
/// external discipline is.
#define DBGC_THREAD_CONFINED

#endif  // DBGC_COMMON_THREAD_ANNOTATIONS_H_
