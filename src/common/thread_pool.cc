#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <string>

namespace dbgc {

namespace {

Status StatusFromCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel_for: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel_for: unknown exception");
  }
}

}  // namespace

// Shared bookkeeping of one ParallelFor call. Helpers hold it by
// shared_ptr: a helper scheduled behind unrelated work may wake after the
// caller has already completed every chunk and returned, and must still
// find valid state (it will claim nothing and exit).
struct ThreadPool::ForState {
  // Set once by the caller before any helper is scheduled.
  size_t begin DBGC_THREAD_CONFINED = 0;
  size_t grain DBGC_THREAD_CONFINED = 1;
  size_t num_chunks DBGC_THREAD_CONFINED = 0;
  std::function<void(size_t, size_t)> fn DBGC_THREAD_CONFINED;

  std::atomic<size_t> next_chunk{0};
  Mutex mu;
  CondVar done_cv;
  size_t completed DBGC_GUARDED_BY(mu) = 0;  // Ran or skipped chunks.
  Status error DBGC_GUARDED_BY(mu);          // First failure wins.

  // Claims and runs chunks until none remain. On an exception the claim
  // counter is poisoned so no further chunk starts anywhere, and the
  // never-claimed chunks are credited as completed by the poisoning thread
  // (exactly one thread observes the pre-poison counter), keeping the
  // caller's completed == num_chunks wait condition exact.
  void RunChunks(size_t range_end) {
    size_t accounted = 0;
    Status first_error;
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= num_chunks) break;
      const size_t lo = begin + chunk * grain;
      const size_t hi = std::min(range_end, lo + grain);
      try {
        fn(lo, hi);
        ++accounted;
      } catch (...) {
        first_error = StatusFromCurrentException();
        const size_t old = next_chunk.exchange(num_chunks);
        accounted += 1 + (num_chunks - std::min(old, num_chunks));
        break;
      }
    }
    if (accounted == 0) return;
    MutexLock lock(mu);
    if (!first_error.ok() && error.ok()) error = std::move(first_error);
    completed += accounted;
    if (completed == num_chunks) done_cv.NotifyAll();
  }
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      ReleasableMutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const std::function<void(size_t, size_t)>& fn,
                               int max_threads) {
  if (end <= begin) return Status::OK();
  if (grain < 1) grain = 1;
  const size_t count = end - begin;
  const size_t num_chunks = (count + grain - 1) / grain;

  // Helpers beyond the caller: bounded by workers, chunks, and the budget.
  size_t helpers = std::min(static_cast<size_t>(num_threads()),
                            num_chunks - 1);
  if (max_threads > 0) {
    helpers = std::min(helpers, static_cast<size_t>(max_threads - 1));
  }

  if (helpers == 0) {
    // Serial fast path: no shared state, no scheduling.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t lo = begin + chunk * grain;
      const size_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        return StatusFromCurrentException();
      }
    }
    return Status::OK();
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = fn;

  for (size_t h = 0; h < helpers; ++h) {
    Schedule([state, end] { state->RunChunks(end); });
  }
  state->RunChunks(end);

  // Wait until every chunk has been run (or credited as skipped by an
  // erroring thread). A chunk that is mid-run keeps completed below the
  // target, so returning here never races a live fn invocation; helpers
  // waking later claim nothing and exit without touching fn.
  ReleasableMutexLock lock(state->mu);
  while (state->completed != state->num_chunks) state->done_cv.Wait(lock);
  return state->error;
}

int ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int Parallelism::width() const {
  if (!enabled()) return 1;
  const int pooled = pool->num_threads() + 1;  // Workers + caller.
  return max_threads > 0 ? std::min(max_threads, pooled) : pooled;
}

size_t Parallelism::GrainFor(size_t count, size_t min_grain) const {
  const size_t lanes = static_cast<size_t>(width()) * 4;  // ~4 chunks/lane.
  const size_t grain = (count + lanes - 1) / lanes;
  return std::max<size_t>(std::max(grain, min_grain), 1);
}

Status Parallelism::For(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) const {
  if (end <= begin) return Status::OK();
  if (!enabled()) {
    try {
      fn(begin, end);
    } catch (...) {
      return StatusFromCurrentException();
    }
    return Status::OK();
  }
  return pool->ParallelFor(begin, end, grain, fn, max_threads);
}

}  // namespace dbgc
