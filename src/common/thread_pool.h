// ThreadPool: the intra-frame parallelism substrate (docs/PARALLELISM.md).
//
// A fixed set of workers drains a FIFO task queue; the blocking
// ParallelFor(begin, end, grain, fn) helper carves an index range into
// chunks and runs them on the workers *and* the calling thread. The caller
// always participates and waits only for chunks actually claimed, so
// ParallelFor makes progress even when every worker is busy — including
// when it is invoked from inside a pool task (the CompressionPipeline
// shares one pool between inter-frame tasks and intra-frame loops).
//
// Exceptions thrown by chunk bodies never cross the pool boundary: the
// first one is captured and surfaced as Status::Internal, matching the
// library-wide no-exceptions-across-API-edges convention.
//
// Determinism contract: ParallelFor guarantees each index is processed
// exactly once, but chunk *execution order* is unspecified. Callers that
// need byte-identical output for any thread count (every codec in this
// repository) must write results into disjoint, pre-sized slots and merge
// them in deterministic shard order afterwards.

#ifndef DBGC_COMMON_THREAD_POOL_H_
#define DBGC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbgc {

/// Fixed-size worker pool with a blocking deterministic ParallelFor.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Tasks already scheduled are completed first, so a
  /// ParallelFor in flight on another thread can never be stranded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues an asynchronous task. `fn` must not throw.
  void Schedule(std::function<void()> fn);

  /// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks
  /// of at most `grain` indices (grain clamped to >= 1). Blocks until every
  /// chunk has run. Chunks run concurrently on the workers and on the
  /// calling thread; `max_threads` caps the total concurrency (0 = no cap,
  /// 1 = run everything on the caller). The first exception thrown by `fn`
  /// is returned as Status::Internal and unclaimed chunks are skipped.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)>& fn,
                     int max_threads = 0);

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static int DefaultThreadCount();

 private:
  struct ForState;

  void WorkerLoop();

  // Written once in the constructor, joined in the destructor; never
  // touched from worker threads.
  std::vector<std::thread> workers_ DBGC_THREAD_CONFINED;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ DBGC_GUARDED_BY(mutex_);
  bool shutting_down_ DBGC_GUARDED_BY(mutex_) = false;
};

/// A thread budget threaded through codec stages: a (possibly null) pool
/// plus a cap on how many threads one loop may occupy. Copyable view; the
/// pool must outlive it.
struct Parallelism {
  ThreadPool* pool = nullptr;  ///< Null = run serially on the caller.
  int max_threads = 0;         ///< 0 = all pool workers; 1 = serial.

  /// True when For() may actually fan out.
  bool enabled() const {
    return pool != nullptr && max_threads != 1 && pool->num_threads() > 0;
  }

  /// Effective concurrency of one For() call (including the caller).
  int width() const;

  /// A grain that splits `count` items into a few chunks per thread, never
  /// below `min_grain` items per chunk.
  size_t GrainFor(size_t count, size_t min_grain) const;

  /// Serial or pooled ParallelFor, per the budget. On the serial path the
  /// body runs inline (exceptions still surface as Status::Internal).
  Status For(size_t begin, size_t end, size_t grain,
             const std::function<void(size_t, size_t)>& fn) const;
};

}  // namespace dbgc

#endif  // DBGC_COMMON_THREAD_POOL_H_
