#include "common/transforms.h"

#include <cmath>
#include <unordered_set>

#include "spatial/voxel_grid.h"

namespace dbgc {

Point3 RigidTransform::Apply(const Point3& p) const {
  const double c = std::cos(yaw);
  const double s = std::sin(yaw);
  return Point3{c * p.x - s * p.y + translation.x,
                s * p.x + c * p.y + translation.y, p.z + translation.z};
}

RigidTransform RigidTransform::Inverse() const {
  // (R, t)^-1 = (R^-1, -R^-1 t).
  RigidTransform inv;
  inv.yaw = -yaw;
  const double c = std::cos(-yaw);
  const double s = std::sin(-yaw);
  inv.translation = Point3{-(c * translation.x - s * translation.y),
                           -(s * translation.x + c * translation.y),
                           -translation.z};
  return inv;
}

PointCloud Transform(const PointCloud& pc, const RigidTransform& t) {
  PointCloud out;
  out.Reserve(pc.size());
  for (const Point3& p : pc) out.Add(t.Apply(p));
  return out;
}

PointCloud CropRadius(const PointCloud& pc, double radius) {
  PointCloud out;
  const double r_sq = radius * radius;
  for (const Point3& p : pc) {
    if (p.SquaredNorm() <= r_sq) out.Add(p);
  }
  return out;
}

PointCloud CropBox(const PointCloud& pc, const BoundingBox& box) {
  PointCloud out;
  for (const Point3& p : pc) {
    if (box.Contains(p)) out.Add(p);
  }
  return out;
}

PointCloud VoxelDownsample(const PointCloud& pc, double voxel_side) {
  PointCloud out;
  std::unordered_set<uint64_t> seen;
  seen.reserve(pc.size());
  const double inv = 1.0 / voxel_side;
  for (const Point3& p : pc) {
    const VoxelCoord c{static_cast<int32_t>(std::floor(p.x * inv)),
                       static_cast<int32_t>(std::floor(p.y * inv)),
                       static_cast<int32_t>(std::floor(p.z * inv))};
    if (seen.insert(VoxelGrid::KeyOf(c)).second) out.Add(p);
  }
  return out;
}

}  // namespace dbgc
