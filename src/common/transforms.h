// Point-cloud transforms: rigid motion, cropping, and voxel downsampling.
// Utilities every point-cloud consumer needs around a codec - e.g. to
// register frames to a common pose before archiving, or to evaluate
// codecs on radius-cropped subsets (the Figure 3 experiment).

#ifndef DBGC_COMMON_TRANSFORMS_H_
#define DBGC_COMMON_TRANSFORMS_H_

#include "common/bounding_box.h"
#include "common/point_cloud.h"

namespace dbgc {

/// A rigid transform: rotation about the z axis (yaw, the dominant motion
/// of a driving platform) plus a translation.
struct RigidTransform {
  double yaw = 0.0;  ///< Rotation about +z in radians.
  Point3 translation;

  /// Applies the transform to one point (rotate, then translate).
  Point3 Apply(const Point3& p) const;

  /// The inverse transform.
  RigidTransform Inverse() const;
};

/// Returns a transformed copy of the cloud.
PointCloud Transform(const PointCloud& pc, const RigidTransform& t);

/// Points within `radius` of the origin (the concentric subsets of
/// Figure 3).
PointCloud CropRadius(const PointCloud& pc, double radius);

/// Points inside the box (inclusive bounds).
PointCloud CropBox(const PointCloud& pc, const BoundingBox& box);

/// Keeps the first point of each voxel of side `voxel_side` (a common
/// pre-processing decimation). Order of survivors follows the input.
PointCloud VoxelDownsample(const PointCloud& pc, double voxel_side);

}  // namespace dbgc

#endif  // DBGC_COMMON_TRANSFORMS_H_
