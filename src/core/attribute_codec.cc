#include "core/attribute_codec.h"

#include <cmath>

#include "bitio/varint.h"
#include "encoding/delta.h"
#include "encoding/quantizer.h"
#include "encoding/value_codec.h"

namespace dbgc {

namespace {
constexpr uint8_t kMagic = 0xA7;
}  // namespace

Result<ByteBuffer> AttributeCodec::Compress(
    const std::vector<float>& values,
    const std::vector<uint32_t>& emission_order, double q_attr,
    EntropyBackend backend) {
  if (q_attr <= 0) {
    return Status::InvalidArgument("attribute codec: q_attr must be > 0");
  }
  if (!emission_order.empty() && emission_order.size() != values.size()) {
    return Status::InvalidArgument(
        "attribute codec: order/value size mismatch");
  }
  const Quantizer quantizer(q_attr);
  std::vector<int64_t> quantized;
  quantized.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const uint32_t src =
        emission_order.empty() ? static_cast<uint32_t>(i) : emission_order[i];
    if (src >= values.size()) {
      return Status::InvalidArgument("attribute codec: bad emission order");
    }
    quantized.push_back(quantizer.Quantize(values[src]));
  }

  ByteBuffer out;
  out.AppendByte(kMagic);
  // Attribute streams stand alone (no geometry container around them), so
  // they carry their own entropy version byte.
  out.AppendByte(EntropyVersionByte(backend));
  out.AppendDouble(q_attr);
  PutVarint64(&out, values.size());
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(DeltaEncode(quantized), backend));
  return out;
}

Result<std::vector<float>> AttributeCodec::Decompress(
    const ByteBuffer& buffer) {
  ByteReader reader(buffer);
  uint8_t magic;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&magic));
  if (magic != kMagic) {
    return Status::Corruption("attribute codec: bad magic");
  }
  uint8_t version_byte;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&version_byte));
  EntropyBackend backend;
  if (!EntropyBackendFromVersionByte(version_byte, &backend)) {
    return Status::Corruption("attribute codec: bad entropy version byte");
  }
  double q_attr;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&q_attr));
  if (!(q_attr > 0) || !std::isfinite(q_attr)) {
    return Status::Corruption("attribute codec: bad bound");
  }
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  ByteBuffer stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&stream));
  std::vector<int64_t> deltas;
  DBGC_RETURN_NOT_OK(SignedValueCodec::Decompress(stream, &deltas, backend));
  if (deltas.size() != count) {
    return Status::Corruption("attribute codec: count mismatch");
  }
  const Quantizer quantizer(q_attr);
  const std::vector<int64_t> quantized = DeltaDecode(deltas);
  std::vector<float> values;
  values.reserve(quantized.size());  // == count, checked above.
  for (int64_t v : quantized) {
    values.push_back(static_cast<float>(quantizer.Reconstruct(v)));
  }
  return values;
}

}  // namespace dbgc
