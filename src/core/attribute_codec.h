// Optional per-point attribute compression (Definition 2.1: a point may
// carry attributes such as intensity). DBGC itself compresses geometry
// only, as the paper does; this codec handles the attribute channel
// alongside it, reordered into the geometry codec's emission order (the
// one-to-one mapping from CompressStats) so that spatially adjacent
// points - whose attributes correlate - sit next to each other before
// quantization, delta coding, and arithmetic coding.

#ifndef DBGC_CORE_ATTRIBUTE_CODEC_H_
#define DBGC_CORE_ATTRIBUTE_CODEC_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"
#include "entropy/entropy_backend.h"

namespace dbgc {

/// Compresses a scalar attribute channel (e.g. LiDAR intensity in [0, 1]).
class AttributeCodec {
 public:
  /// Compresses `values` under absolute error bound `q_attr` (> 0).
  /// `emission_order[i]` gives the source index of the i-th emitted
  /// geometry point (CompressStats::point_mapping, recorded when
  /// CompressStats::record_point_mapping is set); pass an empty vector
  /// to keep the input order. The decompressed channel is returned in
  /// emission order, aligned with the decompressed cloud.
  static Result<ByteBuffer> Compress(const std::vector<float>& values,
                                     const std::vector<uint32_t>& emission_order,
                                     double q_attr,
                                     EntropyBackend backend = kDefaultEntropyBackend);

  /// Decompresses a channel; values come back in emission order. The
  /// attribute stream is self-describing (it records its entropy version
  /// byte), so no backend parameter is needed.
  static Result<std::vector<float>> Decompress(const ByteBuffer& buffer);
};

}  // namespace dbgc

#endif  // DBGC_CORE_ATTRIBUTE_CODEC_H_
