#include "core/coordinate_converter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "encoding/quantizer.h"
#include "lidar/spherical.h"

namespace dbgc {

ConvertedGroup ConvertGroup(const PointCloud& pc,
                            const std::vector<uint32_t>& indices,
                            const ConverterConfig& config,
                            const Parallelism& par) {
  ConvertedGroup group;
  group.params.radial_optimized = config.radial_optimized;
  const size_t n = indices.size();
  group.role.resize(n);
  group.cartesian.resize(n);

  // Per-point conversion writes disjoint pre-sized slots; the scans that
  // follow (exact max/min reductions over the filled arrays) stay serial,
  // so the group parameters match the serial run bit for bit.
  const Status fill_status =
      par.For(0, n, par.GrainFor(n, 2048), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const Point3& p = pc[indices[i]];
          group.cartesian[i] = p;
          group.role[i] = config.spherical
                              ? CartesianToSpherical(p)
                              : SphericalPoint{p.x, p.y, p.z};
        }
      });
  DBGC_CHECK(fill_status.ok());

  if (config.spherical) {
    double r_max = 0.0;
    for (const SphericalPoint& s : group.role) r_max = std::max(r_max, s.r);
    r_max = std::max(r_max, 1e-6);
    const SphericalErrorBounds bounds =
        SphericalErrorBounds::FromCartesian(config.q_xyz, r_max);
    group.params.step_theta = 2.0 * bounds.q_theta;
    group.params.step_phi = 2.0 * bounds.q_phi;
    group.params.step_r = 2.0 * bounds.q_r;
    group.u_theta = config.sensor_u_theta;
    group.u_phi = config.sensor_u_phi;
  } else {
    // -Conversion: polylines directly in Cartesian space, x/y/z playing the
    // theta/phi/r roles. The extraction windows come from the mean nearest
    // sample spacing estimate range / sqrt(n).
    double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
    bool first = true;
    for (const Point3& p : group.cartesian) {
      if (first) {
        x_min = x_max = p.x;
        y_min = y_max = p.y;
        first = false;
      } else {
        x_min = std::min(x_min, p.x);
        x_max = std::max(x_max, p.x);
        y_min = std::min(y_min, p.y);
        y_max = std::max(y_max, p.y);
      }
    }
    group.params.step_theta = 2.0 * config.q_xyz;
    group.params.step_phi = 2.0 * config.q_xyz;
    group.params.step_r = 2.0 * config.q_xyz;
    const double denom = std::sqrt(static_cast<double>(std::max<size_t>(n, 1)));
    group.u_theta = std::max((x_max - x_min) / denom, 4.0 * config.q_xyz);
    group.u_phi = std::max((y_max - y_min) / denom, 4.0 * config.q_xyz);
  }

  const Quantizer qt(group.params.step_theta / 2.0);
  const Quantizer qp(group.params.step_phi / 2.0);
  const Quantizer qr(group.params.step_r / 2.0);
  group.quantized.resize(n);
  const Status quantize_status =
      par.For(0, n, par.GrainFor(n, 2048), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const SphericalPoint& s = group.role[i];
          group.quantized[i] =
              QPoint{qt.Quantize(s.theta), qp.Quantize(s.phi),
                     qr.Quantize(s.r)};
        }
      });
  DBGC_CHECK(quantize_status.ok());

  // Thresholds in quantized units (shared decision logic, Step 8).
  group.params.th_r =
      std::llround(config.radial_threshold / group.params.step_r);
  group.params.th_phi = std::llround(config.reference_phi_factor *
                                     group.u_phi / group.params.step_phi);
  return group;
}

Point3 ReconstructPoint(const QPoint& q, const SparseGroupParams& params,
                        bool spherical) {
  const double a = static_cast<double>(q.theta) * params.step_theta;
  const double b = static_cast<double>(q.phi) * params.step_phi;
  const double c = static_cast<double>(q.r) * params.step_r;
  if (!spherical) return Point3{a, b, c};
  return SphericalToCartesian(SphericalPoint{a, b, c});
}

}  // namespace dbgc
