#include "core/coordinate_converter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "encoding/quantizer.h"
#include "lidar/spherical.h"

namespace dbgc {

ConvertedGroup ConvertGroup(std::span<const Point3> pts,
                            std::span<const uint32_t> members,
                            const ConverterConfig& config,
                            const Parallelism& par) {
  ConvertedGroup group;
  group.params.radial_optimized = config.radial_optimized;
  const size_t n = members.size();
  group.role.Resize(n);
  double* const theta = group.role.theta();
  double* const phi = group.role.phi();
  double* const r = group.role.r();

  // One conversion pass straight into the role columns; no Cartesian copy
  // is kept (the organizer reads positions through pts + members). Writes
  // go to disjoint pre-sized slots; the scans that follow (exact max/min
  // reductions over the filled columns) stay serial, so the group
  // parameters match the serial run bit for bit.
  const Status fill_status =
      par.For(0, n, par.GrainFor(n, 2048), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const Point3& p = pts[members[i]];
          const SphericalPoint s = config.spherical
                                       ? CartesianToSpherical(p)
                                       : SphericalPoint{p.x, p.y, p.z};
          theta[i] = s.theta;
          phi[i] = s.phi;
          r[i] = s.r;
        }
      });
  DBGC_CHECK(fill_status.ok());

  if (config.spherical) {
    double r_max = 0.0;
    for (size_t i = 0; i < n; ++i) r_max = std::max(r_max, r[i]);
    r_max = std::max(r_max, 1e-6);
    const SphericalErrorBounds bounds =
        SphericalErrorBounds::FromCartesian(config.q_xyz, r_max);
    group.params.step_theta = 2.0 * bounds.q_theta;
    group.params.step_phi = 2.0 * bounds.q_phi;
    group.params.step_r = 2.0 * bounds.q_r;
    group.u_theta = config.sensor_u_theta;
    group.u_phi = config.sensor_u_phi;
  } else {
    // -Conversion: polylines directly in Cartesian space, x/y/z playing the
    // theta/phi/r roles. The extraction windows come from the mean nearest
    // sample spacing estimate range / sqrt(n).
    double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
    if (n > 0) {
      x_min = x_max = theta[0];
      y_min = y_max = phi[0];
      for (size_t i = 1; i < n; ++i) {
        x_min = std::min(x_min, theta[i]);
        x_max = std::max(x_max, theta[i]);
        y_min = std::min(y_min, phi[i]);
        y_max = std::max(y_max, phi[i]);
      }
    }
    group.params.step_theta = 2.0 * config.q_xyz;
    group.params.step_phi = 2.0 * config.q_xyz;
    group.params.step_r = 2.0 * config.q_xyz;
    const double denom = std::sqrt(static_cast<double>(std::max<size_t>(n, 1)));
    group.u_theta = std::max((x_max - x_min) / denom, 4.0 * config.q_xyz);
    group.u_phi = std::max((y_max - y_min) / denom, 4.0 * config.q_xyz);
  }

  const Quantizer qt(group.params.step_theta / 2.0);
  const Quantizer qp(group.params.step_phi / 2.0);
  const Quantizer qr(group.params.step_r / 2.0);
  group.quantized.resize(n);
  QPoint* const quantized = group.quantized.data();
  const Status quantize_status =
      par.For(0, n, par.GrainFor(n, 2048), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          quantized[i] = QPoint{qt.Quantize(theta[i]), qp.Quantize(phi[i]),
                                qr.Quantize(r[i])};
        }
      });
  DBGC_CHECK(quantize_status.ok());

  // Thresholds in quantized units (shared decision logic, Step 8).
  group.params.th_r =
      std::llround(config.radial_threshold / group.params.step_r);
  group.params.th_phi = std::llround(config.reference_phi_factor *
                                     group.u_phi / group.params.step_phi);
  return group;
}

Point3 ReconstructPoint(const QPoint& q, const SparseGroupParams& params,
                        bool spherical) {
  const double a = static_cast<double>(q.theta) * params.step_theta;
  const double b = static_cast<double>(q.phi) * params.step_phi;
  const double c = static_cast<double>(q.r) * params.step_r;
  if (!spherical) return Point3{a, b, c};
  return SphericalToCartesian(SphericalPoint{a, b, c});
}

}  // namespace dbgc
