// Coordinate conversion and scaling for sparse groups (Sections 3.3 and
// 3.5 Step 1, Theorem 3.2).
//
// Spherical mode (default): a group's points become (theta, phi, r) with
// per-dimension error bounds q_theta = q_phi = q_xyz / r_max_group and
// q_r = q_xyz, then are scaled by 2*q and rounded. Cartesian mode
// (the -Conversion ablation) keeps (x, y, z) and lets them play the
// (theta, phi, r) roles with q_xyz bounds on every dimension.

#ifndef DBGC_CORE_COORDINATE_CONVERTER_H_
#define DBGC_CORE_COORDINATE_CONVERTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/point_cloud.h"
#include "common/point_soa.h"
#include "common/thread_pool.h"
#include "core/polyline.h"
#include "core/sparse_codec.h"

namespace dbgc {

/// A sparse group after conversion + quantization, ready for organization.
///
/// The group does not copy the Cartesian points: the organizer reads them
/// through the parent cloud and the member index list (the
/// candidate-distance metric of Algorithm 1), so the only per-group point
/// storage is the role columns and the quantized triples.
struct ConvertedGroup {
  /// Role coordinates (theta/phi plane for Algorithm 1), unquantized,
  /// stored as columns (theta() / phi() / r()).
  PointSoA role;
  /// Quantized integer coordinates (what the bitstream carries).
  std::vector<QPoint> quantized;
  /// Scaling factors and thresholds shared with the decoder.
  SparseGroupParams params;
  /// Average sampling steps driving polyline extraction windows.
  double u_theta = 0.0;
  double u_phi = 0.0;
};

/// Conversion options relevant to a group.
struct ConverterConfig {
  double q_xyz = 0.02;
  bool spherical = true;          ///< False = -Conversion ablation.
  double radial_threshold = 2.0;  ///< TH_r in meters.
  double reference_phi_factor = 2.0;
  double sensor_u_theta = 0.0;    ///< From SensorMetadata (spherical mode).
  double sensor_u_phi = 0.0;
  bool radial_optimized = true;
};

/// Converts and quantizes the group whose members are `pts[members[i]]`.
/// The optional thread budget parallelizes the per-point conversion and
/// quantization (disjoint pre-sized column slots); the extrema scans
/// between them stay serial, so the output is identical for any budget.
ConvertedGroup ConvertGroup(std::span<const Point3> pts,
                            std::span<const uint32_t> members,
                            const ConverterConfig& config,
                            const Parallelism& par = {});

/// Reconstructs the Cartesian position of a decoded quantized point.
Point3 ReconstructPoint(const QPoint& q, const SparseGroupParams& params,
                        bool spherical);

}  // namespace dbgc

#endif  // DBGC_CORE_COORDINATE_CONVERTER_H_
