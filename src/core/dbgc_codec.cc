#include "core/dbgc_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "bitio/varint.h"
#include "codec/octree_codec.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/coordinate_converter.h"
#include "core/density_partitioner.h"
#include "core/outlier_codec.h"
#include "core/point_grouper.h"
#include "core/polyline_organizer.h"
#include "core/sparse_codec.h"
#include "obs/trace.h"
#include "spatial/octree.h"

namespace dbgc {

namespace {

constexpr uint8_t kMagic[4] = {'D', 'B', 'G', 'C'};
constexpr uint8_t kVersion = 1;

// Stage blocks below time themselves with obs::TraceSpan: the duration
// lands in the process-wide stage_seconds{stage=...} histograms and in the
// caller's FrameTrace, if one is active (docs/OBSERVABILITY.md). Counts
// and byte sizes land in the caller's CompressStats.
using obs::Stage;
using obs::TraceSpan;

uint8_t EncodeFlags(const DbgcOptions& options) {
  uint8_t flags = 0;
  if (options.enable_spherical_conversion) flags |= 1;
  if (options.enable_radial_optimized_delta) flags |= 2;
  flags |= static_cast<uint8_t>(static_cast<int>(options.outlier_mode) << 2);
  return flags;
}

}  // namespace

DbgcCodec::DbgcCodec(DbgcOptions options) : options_(options) {}

Result<ByteBuffer> DbgcCodec::CompressImpl(const PointCloud& pc,
                                           const CompressParams& params) const {
  CompressStats* stats = params.info;
  // Deriving the point mapping costs a leaf-key sort of the dense points
  // plus per-point bookkeeping in SPA/OUT, so it runs only on request.
  const bool want_mapping = stats != nullptr && stats->record_point_mapping;
  if (stats != nullptr) {
    CompressStats fresh;
    fresh.record_point_mapping = stats->record_point_mapping;
    *stats = std::move(fresh);
  }
  DbgcOptions opt = options_;
  opt.q_xyz = params.q_xyz;
  if (const char* issue = opt.Validate()) {
    return Status::InvalidArgument(issue);
  }
  const Parallelism par{params.pool, params.max_threads};

  // --- DEN: density-based clustering (Section 3.2). ---
  Partition partition;
  {
    TraceSpan t(Stage::kClustering);
    partition = PartitionByDensity(pc, opt, par);
  }
  if (stats != nullptr) stats->num_dense = partition.dense.size();

  // --- OCT: octree compression of dense points. ---
  ByteBuffer b_dense;
  {
    TraceSpan t(Stage::kOctree);
    if (!partition.dense.empty()) {
      PointCloud dense_cloud;
      dense_cloud.Reserve(partition.dense.size());
      for (uint32_t idx : partition.dense) dense_cloud.Add(pc[idx]);
      DBGC_ASSIGN_OR_RETURN(OctreeStructure tree,
                            Octree::Build(dense_cloud, 2.0 * opt.q_xyz, par));
      b_dense = OctreeCodec::SerializeStructure(tree, par,
                                                params.entropy_backend);
      if (want_mapping) {
        // Decoded order is Morton leaf order; mirror it for the mapping.
        // Key computation fills disjoint slots; the stable sort that
        // defines the mapping order stays serial.
        std::vector<uint64_t> keys(partition.dense.size());
        const Status key_status = par.For(
            0, keys.size(), par.GrainFor(keys.size(), 1024),
            [&](size_t lo, size_t hi) {
              for (size_t i = lo; i < hi; ++i) {
                keys[i] = Octree::LeafKeyOf(dense_cloud[i], tree.root,
                                            tree.depth);
              }
            });
        DBGC_CHECK(key_status.ok());
        std::vector<size_t> perm(partition.dense.size());
        for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
        std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
          return keys[a] < keys[b];
        });
        for (size_t i : perm) {
          stats->point_mapping.push_back(partition.dense[i]);
        }
      }
    }
  }
  if (stats != nullptr) stats->bytes_dense = b_dense.size();

  // --- COR: conversion + grouping + scaling (Sections 3.3, 3.5). ---
  std::vector<std::vector<uint32_t>> group_indices;
  std::vector<ConvertedGroup> groups;
  {
    TraceSpan t(Stage::kConversion);
    std::vector<double> radii(partition.sparse.size());
    const Status radii_status = par.For(
        0, radii.size(), par.GrainFor(radii.size(), 2048),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            radii[i] = pc[partition.sparse[i]].Norm();
          }
        });
    DBGC_CHECK(radii_status.ok());
    // The grouper works in local sparse positions; map each group back to
    // global point ids once (the mapping and outlier bookkeeping below all
    // use the global ids).
    const std::vector<std::vector<uint32_t>> local_groups =
        GroupByRadialDistance(radii, opt.num_groups);
    group_indices.resize(local_groups.size());
    for (size_t g = 0; g < local_groups.size(); ++g) {
      group_indices[g].reserve(local_groups[g].size());
      for (uint32_t local : local_groups[g]) {
        group_indices[g].push_back(partition.sparse[local]);
      }
    }

    ConverterConfig config;
    config.q_xyz = opt.q_xyz;
    config.spherical = opt.enable_spherical_conversion;
    config.radial_threshold = opt.radial_threshold;
    config.reference_phi_factor = opt.reference_phi_factor;
    config.sensor_u_theta = opt.sensor.AzimuthStep();
    config.sensor_u_phi = opt.sensor.PolarStep();
    config.radial_optimized = opt.enable_radial_optimized_delta;
    groups.reserve(group_indices.size());
    for (const auto& indices : group_indices) {
      groups.push_back(ConvertGroup(pc.view(), indices, config, par));
    }
  }

  // --- ORG: polyline organization (Section 3.4, Algorithm 1). ---
  // Groups are independent; each result lands in its own pre-sized slot
  // and the outlier indices are collected afterwards in group order.
  std::vector<OrganizeResult> organized(groups.size());
  std::vector<uint32_t> outlier_indices;
  {
    TraceSpan t(Stage::kOrganization);
    const Status org_status =
        par.For(0, groups.size(), 1, [&](size_t lo, size_t hi) {
          for (size_t g = lo; g < hi; ++g) {
            organized[g] = OrganizeSparsePoints(
                groups[g].role, pc.view(), group_indices[g],
                groups[g].quantized, groups[g].u_theta, groups[g].u_phi,
                opt.min_polyline_length);
          }
        });
    DBGC_CHECK(org_status.ok());
    for (size_t g = 0; g < groups.size(); ++g) {
      for (uint32_t local : organized[g].outliers) {
        outlier_indices.push_back(group_indices[g][local]);
      }
    }
  }
  if (stats != nullptr) stats->num_outliers = outlier_indices.size();

  // --- SPA: sparse coordinate compression (Section 3.5). ---
  // One independent entropy stream per group, written to per-group shards;
  // the output layout concatenates them in group order, so the bitstream
  // does not depend on the thread count.
  std::vector<ByteBuffer> group_streams(groups.size());
  {
    TraceSpan t(Stage::kSparse);
    const Status spa_status =
        par.For(0, groups.size(), 1, [&](size_t lo, size_t hi) {
          for (size_t g = lo; g < hi; ++g) {
            group_streams[g] = SparseCodec::EncodeGroup(
                organized[g].polylines, groups[g].params,
                params.entropy_backend);
          }
        });
    DBGC_CHECK(spa_status.ok());
    if (stats != nullptr) {
      for (size_t g = 0; g < groups.size(); ++g) {
        stats->bytes_sparse += group_streams[g].size();
        stats->num_polylines += organized[g].polylines.size();
        for (const Polyline& line : organized[g].polylines) {
          stats->num_sparse += line.size();
          if (want_mapping) {
            for (uint32_t local : line.source_indices) {
              stats->point_mapping.push_back(group_indices[g][local]);
            }
          }
        }
      }
    }
  }

  // --- OUT: outlier compression (Section 3.6). ---
  ByteBuffer b_outlier;
  {
    TraceSpan t(Stage::kOutlier);
    std::vector<uint32_t> outlier_order;
    DBGC_ASSIGN_OR_RETURN(
        b_outlier,
        OutlierCodec::Compress(pc, outlier_indices, opt.q_xyz,
                               opt.outlier_mode,
                               want_mapping ? &outlier_order : nullptr,
                               params.entropy_backend));
    if (want_mapping) {
      for (uint32_t idx : outlier_order) stats->point_mapping.push_back(idx);
    }
  }
  if (stats != nullptr) stats->bytes_outlier = b_outlier.size();

  // --- Output layout (Figure 8). ---
  TraceSpan serialize_span(Stage::kSerialize);
  ByteBuffer out;
  out.Append(kMagic, 4);
  out.AppendByte(kVersion);
  out.AppendByte(EncodeFlags(opt));
  out.AppendDouble(opt.q_xyz);
  out.AppendLengthPrefixed(b_dense);
  PutVarint64(&out, groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    // Per-group scaling factors: equivalent information to Figure 8's
    // per-group r*_max (plus q_xyz), stored directly to avoid rederivation.
    out.AppendDouble(groups[g].params.step_theta);
    out.AppendDouble(groups[g].params.step_phi);
    out.AppendDouble(groups[g].params.step_r);
    PutSignedVarint64(&out, groups[g].params.th_r);
    PutSignedVarint64(&out, groups[g].params.th_phi);
    out.AppendLengthPrefixed(group_streams[g]);
  }
  out.AppendLengthPrefixed(b_outlier);
  return out;
}

Result<PointCloud> DbgcCodec::DecompressImpl(
    const ByteBuffer& buffer, const DecompressParams& params) const {
  // The NVI wrapper already stripped the container version byte. Decode
  // stages time themselves with spans like the encoder, so a FrameTrace
  // around Decompress yields the decode-side Figure 13 breakdown.
  const EntropyBackend backend = params.entropy_backend;
  ByteReader reader(buffer);
  uint8_t magic[4];
  DBGC_RETURN_NOT_OK(reader.Read(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("dbgc: bad magic");
  }
  uint8_t version, flags;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&version));
  if (version != kVersion) return Status::Corruption("dbgc: bad version");
  DBGC_RETURN_NOT_OK(reader.ReadByte(&flags));
  const bool spherical = (flags & 1) != 0;
  const bool radial_optimized = (flags & 2) != 0;
  const auto outlier_mode = static_cast<OutlierMode>((flags >> 2) & 3);
  double q_xyz;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&q_xyz));
  (void)q_xyz;

  PointCloud out;

  // Dense points.
  {
    TraceSpan t(Stage::kOctree);
    ByteBuffer b_dense;
    DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_dense));
    if (!b_dense.empty()) {
      DBGC_ASSIGN_OR_RETURN(OctreeStructure tree,
                            OctreeCodec::DeserializeStructure(
                                b_dense, backend));
      const PointCloud dense = Octree::ExtractPoints(tree);
      for (const Point3& p : dense) out.Add(p);
    }
  }

  // Sparse groups.
  uint64_t num_groups;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &num_groups));
  for (uint64_t g = 0; g < num_groups; ++g) {
    SparseGroupParams params_g;
    DBGC_RETURN_NOT_OK(reader.ReadDouble(&params_g.step_theta));
    DBGC_RETURN_NOT_OK(reader.ReadDouble(&params_g.step_phi));
    DBGC_RETURN_NOT_OK(reader.ReadDouble(&params_g.step_r));
    DBGC_RETURN_NOT_OK(GetSignedVarint64(&reader, &params_g.th_r));
    DBGC_RETURN_NOT_OK(GetSignedVarint64(&reader, &params_g.th_phi));
    params_g.radial_optimized = radial_optimized;
    ByteBuffer stream;
    DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&stream));

    std::vector<Polyline> lines;
    {
      TraceSpan t(Stage::kSparse);
      DBGC_RETURN_NOT_OK(
          SparseCodec::DecodeGroup(stream, params_g, &lines, backend));
    }
    {
      TraceSpan t(Stage::kConversion);
      for (const Polyline& line : lines) {
        for (const QPoint& q : line.points) {
          out.Add(ReconstructPoint(q, params_g, spherical));
        }
      }
    }
  }

  // Outliers.
  {
    TraceSpan t(Stage::kOutlier);
    ByteBuffer b_outlier;
    DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_outlier));
    DBGC_ASSIGN_OR_RETURN(PointCloud outliers,
                          OutlierCodec::Decompress(b_outlier, outlier_mode,
                                                   backend));
    for (const Point3& p : outliers) out.Add(p);
  }
  return out;
}

}  // namespace dbgc
