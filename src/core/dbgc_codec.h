// DbgcCodec: the end-to-end DBGC compression scheme (Section 3).
//
// Compression pipeline (Figure 2): density-based clustering -> octree
// compression of dense points -> coordinate conversion -> radial grouping
// -> polyline organization -> sparse coordinate compression -> outlier
// compression -> output layout (Figure 8). Decompression reverses it.
//
// Instrumentation surface: every stage runs under an obs::TraceSpan, so
// per-frame stage timings (Figure 13) are collected by wrapping a call in
// an obs::FrameTrace and reading its breakdown — there is no codec-private
// timing struct. Counts, per-section byte sizes, and the optional
// point mapping are returned through CompressStats, attached to a call via
// CompressParams::info.

#ifndef DBGC_CORE_DBGC_CODEC_H_
#define DBGC_CORE_DBGC_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "core/options.h"

namespace dbgc {

/// Per-run statistics of one DBGC compression, filled when a CompressStats
/// is attached to the call through CompressParams::info. Stage wall-clock
/// times are deliberately not here: wrap the call in an obs::FrameTrace to
/// collect them (docs/OBSERVABILITY.md).
///
///   obs::FrameTrace trace;
///   CompressStats stats;
///   stats.record_point_mapping = true;  // only if the mapping is needed
///   auto compressed = codec.Compress(pc, {.q_xyz = q, .info = &stats});
///   double den_s = trace.breakdown().seconds(obs::Stage::kClustering);
struct CompressStats {
  /// Input: when true, `point_mapping` is filled. Deriving the mapping
  /// costs a leaf-key sort of the dense points, so it is opt-in; leave
  /// false on hot paths that only need counts and sizes.
  bool record_point_mapping = false;

  size_t num_dense = 0;
  size_t num_sparse = 0;    ///< Sparse points on polylines.
  size_t num_outliers = 0;
  size_t num_polylines = 0;
  size_t bytes_dense = 0;
  size_t bytes_sparse = 0;
  size_t bytes_outlier = 0;
  /// Source index of each point the decompressor will emit, in emission
  /// order: the one-to-one mapping M (Problem Statement). Empty unless
  /// `record_point_mapping` was set before the call.
  std::vector<uint32_t> point_mapping;
};

/// The DBGC geometry codec.
class DbgcCodec : public GeometryCodec {
 public:
  /// Creates a codec with the given options (defaults = paper settings).
  explicit DbgcCodec(DbgcOptions options = DbgcOptions());

  std::string name() const override { return "DBGC"; }

  const DbgcOptions& options() const { return options_; }

 protected:
  /// Compresses under the options with q_xyz overridden by params.q_xyz.
  /// params.pool/max_threads parallelize the independent work inside each
  /// stage (docs/PARALLELISM.md); the bitstream is byte-identical for any
  /// thread count. params.info, when set, receives counts, byte sizes and
  /// (opt-in) the point mapping; stage timings flow through obs spans.
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;

 private:
  DbgcOptions options_;
};

}  // namespace dbgc

#endif  // DBGC_CORE_DBGC_CODEC_H_
