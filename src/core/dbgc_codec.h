// DbgcCodec: the end-to-end DBGC compression scheme (Section 3).
//
// Compression pipeline (Figure 2): density-based clustering -> octree
// compression of dense points -> coordinate conversion -> radial grouping
// -> polyline organization -> sparse coordinate compression -> outlier
// compression -> output layout (Figure 8). Decompression reverses it.
//
// Besides the GeometryCodec interface, the class exposes instrumented
// entry points returning stage timings (Figure 13) and the one-to-one
// point mapping used by error verification.

#ifndef DBGC_CORE_DBGC_CODEC_H_
#define DBGC_CORE_DBGC_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "core/options.h"

namespace dbgc {

/// Per-stage wall-clock seconds (the components of Figure 13).
struct DbgcTimings {
  double clustering = 0.0;    ///< DEN: density-based clustering.
  double octree = 0.0;        ///< OCT: octree compression/decompression.
  double conversion = 0.0;    ///< COR: coordinate conversion (+ scaling).
  double organization = 0.0;  ///< ORG: point organization (Algorithm 1).
  double sparse = 0.0;        ///< SPA: sparse coordinate codec (Steps 2-9).
  double outlier = 0.0;       ///< OUT: outlier codec.

  double Total() const {
    return clustering + octree + conversion + organization + sparse + outlier;
  }
};

/// Instrumentation of one compression run.
struct DbgcCompressInfo {
  DbgcTimings timings;
  size_t num_dense = 0;
  size_t num_sparse = 0;    ///< Sparse points on polylines.
  size_t num_outliers = 0;
  size_t num_polylines = 0;
  size_t bytes_dense = 0;
  size_t bytes_sparse = 0;
  size_t bytes_outlier = 0;
  /// Source index of each point the decompressor will emit, in emission
  /// order: the one-to-one mapping M (Problem Statement).
  std::vector<uint32_t> point_mapping;
};

/// Instrumentation of one decompression run.
struct DbgcDecompressInfo {
  DbgcTimings timings;
};

/// The DBGC geometry codec.
class DbgcCodec : public GeometryCodec {
 public:
  /// Creates a codec with the given options (defaults = paper settings).
  explicit DbgcCodec(DbgcOptions options = DbgcOptions());

  std::string name() const override { return "DBGC"; }

  /// Compression with full instrumentation under the options' q_xyz.
  /// Equivalent to Compress with CompressParams{options().q_xyz, ..., info}.
  Result<ByteBuffer> CompressWithInfo(const PointCloud& pc,
                                      DbgcCompressInfo* info) const;

  /// Decompression with stage timings. Accepts the same container-framed
  /// streams as Decompress (the leading entropy version byte is stripped
  /// and dispatched here).
  Result<PointCloud> DecompressWithInfo(const ByteBuffer& buffer,
                                        DbgcDecompressInfo* info) const;

  const DbgcOptions& options() const { return options_; }

 protected:
  /// Compresses under the options with q_xyz overridden by params.q_xyz.
  /// params.pool/max_threads parallelize the independent work inside each
  /// stage (docs/PARALLELISM.md); the bitstream is byte-identical for any
  /// thread count. params.info, when set, receives full instrumentation.
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override;
  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override;

 private:
  /// Shared decode body over the unframed payload (container version byte
  /// already stripped, its backend passed explicitly).
  Result<PointCloud> DecompressPayload(const ByteBuffer& payload,
                                       EntropyBackend backend,
                                       DbgcDecompressInfo* info) const;

  DbgcOptions options_;
};

}  // namespace dbgc

#endif  // DBGC_CORE_DBGC_CODEC_H_
