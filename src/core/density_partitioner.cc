#include "core/density_partitioner.h"

#include <algorithm>
#include <numeric>

#include "cluster/approx_clustering.h"
#include "cluster/cell_clustering.h"

namespace dbgc {

Partition PartitionByDensity(const PointCloud& pc, const DbgcOptions& options,
                             const Parallelism& par) {
  Partition part;
  const size_t n = pc.size();

  if (options.forced_dense_fraction >= 0.0) {
    // Figure 10: the given fraction of points nearest the sensor is dense.
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return pc[a].SquaredNorm() < pc[b].SquaredNorm();
    });
    const size_t num_dense = static_cast<size_t>(
        options.forced_dense_fraction * static_cast<double>(n) + 0.5);
    part.dense.assign(order.begin(), order.begin() + std::min(num_dense, n));
    part.sparse.assign(order.begin() + std::min(num_dense, n), order.end());
    // Keep input order within each side (cosmetic; codecs re-sort anyway).
    std::sort(part.dense.begin(), part.dense.end());
    std::sort(part.sparse.begin(), part.sparse.end());
    return part;
  }

  if (!options.enable_clustering) {
    part.sparse.resize(n);
    std::iota(part.sparse.begin(), part.sparse.end(), 0u);
    return part;
  }

  const ClusteringParams params = ClusteringParams::FromErrorBound(
      options.q_xyz, options.cluster_k, options.min_pts_scale);
  const ClusteringResult result = options.use_approx_clustering
                                      ? ApproxClustering(pc.view(), params, par)
                                      : CellClustering(pc, params, par);
  part.dense.reserve(n / 2);
  part.sparse.reserve(n / 2);
  for (uint32_t i = 0; i < n; ++i) {
    if (result.is_dense[i]) {
      part.dense.push_back(i);
    } else {
      part.sparse.push_back(i);
    }
  }
  return part;
}

}  // namespace dbgc
