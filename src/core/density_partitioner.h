// Dense/sparse partitioning of a point cloud (Section 3.2).
//
// By default the split comes from density-based clustering with the
// octree-derived parameters (epsilon = k*q, minPts = pi k^3/6), using
// either the exact cell-based method or the approximate O(n) method.
// For the Figure 10 experiment the split can instead be forced to "the
// given fraction of points nearest to the sensor".

#ifndef DBGC_CORE_DENSITY_PARTITIONER_H_
#define DBGC_CORE_DENSITY_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/point_cloud.h"
#include "common/thread_pool.h"
#include "core/options.h"

namespace dbgc {

/// The dense/sparse split, as index lists into the input cloud.
struct Partition {
  std::vector<uint32_t> dense;
  std::vector<uint32_t> sparse;
};

/// Computes the dense/sparse partition per the options. The optional
/// thread budget is forwarded to the clustering pass; the partition is
/// identical for any budget.
Partition PartitionByDensity(const PointCloud& pc, const DbgcOptions& options,
                             const Parallelism& par = {});

}  // namespace dbgc

#endif  // DBGC_CORE_DENSITY_PARTITIONER_H_
