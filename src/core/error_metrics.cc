#include "core/error_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bounding_box.h"
#include "spatial/kdtree.h"

namespace dbgc {

Result<ErrorStats> MappedError(const PointCloud& original,
                               const PointCloud& decoded,
                               const std::vector<uint32_t>& mapping) {
  if (original.size() != decoded.size() ||
      mapping.size() != original.size()) {
    return Status::InvalidArgument("mapped error: size mismatch");
  }
  std::vector<bool> seen(original.size(), false);
  ErrorStats stats;
  double sum = 0.0;
  for (size_t i = 0; i < decoded.size(); ++i) {
    const uint32_t src = mapping[i];
    if (src >= original.size() || seen[src]) {
      return Status::InvalidArgument("mapped error: not a permutation");
    }
    seen[src] = true;
    const Point3 diff = decoded[i] - original[src];
    const double d = diff.Norm();
    sum += d;
    stats.max_euclidean = std::max(stats.max_euclidean, d);
    stats.max_per_dim = std::max(
        stats.max_per_dim,
        std::max(std::fabs(diff.x), std::max(std::fabs(diff.y),
                                             std::fabs(diff.z))));
  }
  stats.mean_euclidean =
      original.empty() ? 0.0 : sum / static_cast<double>(original.size());
  return stats;
}

ErrorStats NearestNeighborError(const PointCloud& original,
                                const PointCloud& decoded) {
  ErrorStats stats;
  if (original.empty() || decoded.empty()) return stats;
  const KdTree original_tree(original);
  const KdTree decoded_tree(decoded);
  double sum = 0.0;
  for (const Point3& p : original) {
    const int nn = decoded_tree.Nearest(p);
    const Point3 diff = decoded[nn] - p;
    const double d = diff.Norm();
    sum += d;
    stats.max_euclidean = std::max(stats.max_euclidean, d);
    stats.max_per_dim = std::max(
        stats.max_per_dim,
        std::max(std::fabs(diff.x), std::max(std::fabs(diff.y),
                                             std::fabs(diff.z))));
  }
  for (const Point3& p : decoded) {
    const int nn = original_tree.Nearest(p);
    const Point3 diff = original[nn] - p;
    const double d = diff.Norm();
    stats.max_euclidean = std::max(stats.max_euclidean, d);
    stats.max_per_dim = std::max(
        stats.max_per_dim,
        std::max(std::fabs(diff.x), std::max(std::fabs(diff.y),
                                             std::fabs(diff.z))));
  }
  stats.mean_euclidean = sum / static_cast<double>(original.size());
  return stats;
}

double D1Psnr(const PointCloud& original, const PointCloud& decoded) {
  if (original.empty() || decoded.empty()) return 0.0;
  const KdTree original_tree(original);
  const KdTree decoded_tree(decoded);
  double sum_sq = 0.0;
  for (const Point3& p : original) {
    sum_sq += (decoded[decoded_tree.Nearest(p)] - p).SquaredNorm();
  }
  for (const Point3& p : decoded) {
    sum_sq += (original[original_tree.Nearest(p)] - p).SquaredNorm();
  }
  const double mse =
      sum_sq / static_cast<double>(original.size() + decoded.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  const double peak = BoundingBox::Of(original).MaxExtent();
  return 10.0 * std::log10(3.0 * peak * peak / mse);
}

}  // namespace dbgc
