// Error metrics between an original cloud and its decompressed counterpart
// (Definition 2.2 and the Problem Statement of Section 2.1).

#ifndef DBGC_CORE_ERROR_METRICS_H_
#define DBGC_CORE_ERROR_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/point_cloud.h"
#include "common/status.h"

namespace dbgc {

/// Aggregate error statistics over a point mapping.
struct ErrorStats {
  double max_euclidean = 0.0;   ///< Max Euclidean distance over pairs.
  double max_per_dim = 0.0;     ///< Max |dx|, |dy|, |dz| over pairs.
  double mean_euclidean = 0.0;  ///< Mean Euclidean distance.
};

/// Errors under an explicit one-to-one mapping: decoded[i] corresponds to
/// original[mapping[i]]. mapping must be a permutation of [0, n).
Result<ErrorStats> MappedError(const PointCloud& original,
                               const PointCloud& decoded,
                               const std::vector<uint32_t>& mapping);

/// Symmetric nearest-neighbour (max-Chamfer) error: for codecs without an
/// explicit mapping. max over both directions of each point's distance to
/// the nearest point on the other side.
ErrorStats NearestNeighborError(const PointCloud& original,
                                const PointCloud& decoded);

/// D1 point-to-point PSNR in dB, the standard MPEG PCC geometry metric:
/// 10*log10(3*peak^2 / symmetric-mean-squared NN error), with `peak` the
/// original cloud's largest bounding-box side. Returns +inf for identical
/// clouds and 0 for empty input.
double D1Psnr(const PointCloud& original, const PointCloud& decoded);

}  // namespace dbgc

#endif  // DBGC_CORE_ERROR_METRICS_H_
