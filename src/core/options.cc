#include "core/options.h"

namespace dbgc {

const char* DbgcOptions::Validate() const {
  if (q_xyz <= 0) return "q_xyz must be positive";
  if (cluster_k < 2) return "cluster_k must be at least 2 (Section 3.2)";
  if (min_pts_scale <= 0) return "min_pts_scale must be positive";
  if (num_groups < 1) return "num_groups must be at least 1";
  if (min_polyline_length < 1) return "min_polyline_length must be >= 1";
  if (radial_threshold <= 0) return "radial_threshold must be positive";
  if (reference_phi_factor <= 0) return "reference_phi_factor must be positive";
  if (sensor.horizontal_samples <= 0 || sensor.vertical_samples <= 0) {
    return "sensor sample counts must be positive";
  }
  if (forced_dense_fraction > 1.0) {
    return "forced_dense_fraction must be <= 1";
  }
  return nullptr;
}

}  // namespace dbgc
