// DbgcOptions: every tunable of the DBGC compression scheme, with the
// paper's defaults (Sections 3.2-3.6). The ablation switches reproduce the
// -Radial / -Group / -Conversion variants of Section 4.3 and the outlier
// alternatives of Table 2.

#ifndef DBGC_CORE_OPTIONS_H_
#define DBGC_CORE_OPTIONS_H_

#include "lidar/sensor_model.h"

namespace dbgc {

/// How sparse points left out of all polylines are compressed (Section 3.6
/// and Table 2).
enum class OutlierMode {
  kQuadtree,  ///< 2D quadtree on (x, y) + delta/entropy coded z (default).
  kOctree,    ///< 3D octree codec on the outliers.
  kNone,      ///< Outliers stored as raw 32-bit floats (uncompressed).
};

/// Configuration of the DBGC codec.
struct DbgcOptions {
  /// Per-dimension Cartesian error bound q_xyz in meters (default: the
  /// typical LiDAR measurement accuracy of 0.02 m).
  double q_xyz = 0.02;

  /// Density clustering scale k: epsilon = k * q_xyz (Section 3.2).
  int cluster_k = 10;
  /// Multiplier on the derived minPts = pi k^3 / 6. The paper's formula
  /// counts every octree leaf cell in the epsilon-ball, but a LiDAR sweep
  /// is locally a 2D surface that occupies only the ball's cross-section,
  /// a fraction of roughly (pi k^2 / 4) / (pi k^3 / 6) = 3 / (2k) of those
  /// cells. The default applies that surface correction (with a small
  /// margin), which reproduces the paper's reported ~40% dense points and
  /// maximizes the measured ratio across scene families; set to 1.0 for
  /// the uncorrected formula.
  double min_pts_scale = 0.10;
  /// Use the approximate O(n) clustering (Section 4.3) instead of the exact
  /// cell-based method. Enabled by default (1.2x end-to-end speedup).
  bool use_approx_clustering = true;
  /// Master switch for density-based clustering. When false, no point is
  /// dense unless forced_dense_fraction overrides.
  bool enable_clustering = true;
  /// Figure 10 control: when in [0, 1], clustering is bypassed and this
  /// fraction of points nearest to the sensor is compressed by the octree.
  /// Negative (default) = use density clustering.
  double forced_dense_fraction = -1.0;

  /// Spherical conversion for sparse points (Section 3.3). Disabling
  /// reproduces the -Conversion ablation (polylines in Cartesian space).
  bool enable_spherical_conversion = true;
  /// Radial-distance-optimized delta encoding (Section 3.5, Step 8).
  /// Disabling (-Radial) falls back to plain in-line delta coding of r.
  bool enable_radial_optimized_delta = true;
  /// Number of radial groups for sparse points (Section 3.5, Point
  /// Grouping). 1 disables grouping (-Group). Paper default: 3.
  int num_groups = 3;

  /// Minimum points for a polyline to survive; shorter polylines dissolve
  /// into outliers.
  int min_polyline_length = 2;
  /// TH_r: radial flatness threshold in meters (Section 3.5, Step 8).
  double radial_threshold = 2.0;
  /// TH_phi as a multiple of u_phi (Definition 3.4; paper: 2).
  double reference_phi_factor = 2.0;

  /// Outlier compression scheme (Table 2).
  OutlierMode outlier_mode = OutlierMode::kQuadtree;

  /// Sensor metadata supplying u_theta / u_phi for polyline extraction.
  SensorMetadata sensor = SensorMetadata::VelodyneHdl64e();

  /// Validates parameter ranges; returns a human-readable issue or empty.
  const char* Validate() const;
};

}  // namespace dbgc

#endif  // DBGC_CORE_OPTIONS_H_
