#include "core/outlier_codec.h"

#include <algorithm>
#include <cstring>

#include "bitio/varint.h"
#include "codec/octree_codec.h"
#include "encoding/delta.h"
#include "encoding/quantizer.h"
#include "encoding/value_codec.h"
#include "entropy/entropy_coder.h"
#include "spatial/octree.h"
#include "spatial/quadtree.h"

namespace dbgc {

namespace {

ByteBuffer SerializeQuadtree(const QuadtreeStructure& tree,
                             EntropyBackend backend) {
  ByteBuffer out;
  out.AppendDouble(tree.origin_x);
  out.AppendDouble(tree.origin_y);
  out.AppendDouble(tree.side);
  out.AppendByte(static_cast<uint8_t>(tree.depth));
  PutVarint64(&out, tree.num_leaves());

  AdaptiveModel model(16);
  EntropyEncoder enc(backend);
  for (const auto& level : tree.levels) {
    for (uint8_t occ : level) {
      enc.Encode(model.Lookup(occ));
      model.Update(occ);
    }
  }
  out.AppendLengthPrefixed(enc.Finish());

  std::vector<uint64_t> extra_counts;
  extra_counts.reserve(tree.leaf_counts.size());
  for (uint32_t c : tree.leaf_counts) extra_counts.push_back(c - 1);
  out.AppendLengthPrefixed(
      UnsignedValueCodec::Compress(extra_counts, backend));
  return out;
}

Result<QuadtreeStructure> DeserializeQuadtree(ByteReader* reader,
                                              EntropyBackend backend) {
  QuadtreeStructure tree;
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&tree.origin_x));
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&tree.origin_y));
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&tree.side));
  uint8_t depth;
  DBGC_RETURN_NOT_OK(reader->ReadByte(&depth));
  if (depth > Quadtree::kMaxDepth) {
    return Status::Corruption("outlier codec: bad quadtree depth");
  }
  tree.depth = depth;
  uint64_t num_leaves;
  DBGC_RETURN_NOT_OK(GetVarint64(reader, &num_leaves));
  DBGC_BOUND(num_leaves, kMaxDecodedElements, "outlier codec leaf count");
  const BoundedAlloc alloc(reader->remaining());
  ByteBuffer occ_stream, counts_stream;
  DBGC_RETURN_NOT_OK(reader->ReadLengthPrefixed(&occ_stream));
  DBGC_RETURN_NOT_OK(reader->ReadLengthPrefixed(&counts_stream));

  DBGC_RETURN_NOT_OK(alloc.Resize(&tree.levels, tree.depth,
                                  /*min_bytes_each=*/0, "quadtree levels"));
  if (num_leaves == 0) return tree;

  AdaptiveModel model(16);
  EntropyDecoder dec(occ_stream, backend);
  size_t nodes_at_level = 1;
  for (int l = 0; l < tree.depth; ++l) {
    auto& level = tree.levels[l];
    size_t children = 0;
    for (size_t i = 0; i < nodes_at_level; ++i) {
      const uint32_t target = dec.DecodeTarget(model.total());
      SymbolRange range;
      const uint32_t symbol = model.FindSymbol(target, &range);
      dec.Advance(range);
      model.Update(symbol);
      if (symbol == 0) {
        return Status::Corruption("outlier codec: empty quadtree occupancy");
      }
      level.push_back(static_cast<uint8_t>(symbol));
      children += __builtin_popcount(symbol);
    }
    if (children > kMaxReasonableCount) {
      return Status::Corruption("outlier codec: runaway expansion");
    }
    nodes_at_level = children;
  }
  if (nodes_at_level != num_leaves) {
    return Status::Corruption("outlier codec: quadtree leaf mismatch");
  }

  std::vector<uint64_t> extra_counts;
  DBGC_RETURN_NOT_OK(UnsignedValueCodec::Decompress(
      counts_stream, &extra_counts, backend));
  if (extra_counts.size() != num_leaves) {
    return Status::Corruption("outlier codec: quadtree counts mismatch");
  }
  for (uint64_t c : extra_counts) {
    tree.leaf_counts.push_back(static_cast<uint32_t>(c + 1));
  }
  return tree;
}

}  // namespace

Result<ByteBuffer> OutlierCodec::Compress(
    const PointCloud& pc, const std::vector<uint32_t>& indices, double q_xyz,
    OutlierMode mode, std::vector<uint32_t>* encoded_order,
    EntropyBackend backend) {
  if (encoded_order != nullptr) encoded_order->clear();
  ByteBuffer out;
  PutVarint64(&out, indices.size());
  if (indices.empty()) return out;

  switch (mode) {
    case OutlierMode::kNone: {
      // Raw 32-bit floats; the order is unchanged.
      if (encoded_order != nullptr) *encoded_order = indices;
      for (uint32_t idx : indices) {
        const Point3& p = pc[idx];
        const float v[3] = {static_cast<float>(p.x), static_cast<float>(p.y),
                            static_cast<float>(p.z)};
        uint8_t bytes[12];
        std::memcpy(bytes, v, 12);
        out.Append(bytes, 12);
      }
      return out;
    }
    case OutlierMode::kOctree: {
      PointCloud sub;
      sub.Reserve(indices.size());
      for (uint32_t idx : indices) sub.Add(pc[idx]);
      DBGC_ASSIGN_OR_RETURN(OctreeStructure tree,
                            Octree::Build(sub, 2.0 * q_xyz));
      // Decoded order = Morton order of leaf keys (duplicates grouped);
      // reproduce it with a stable sort of the source indices. The order
      // exists only for the caller's mapping, so skip it when unwanted.
      if (encoded_order != nullptr) {
        std::vector<uint64_t> keys(indices.size());
        for (size_t i = 0; i < indices.size(); ++i) {
          keys[i] = Octree::LeafKeyOf(pc[indices[i]], tree.root, tree.depth);
        }
        std::vector<size_t> perm(indices.size());
        for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
        std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
          return keys[a] < keys[b];
        });
        encoded_order->reserve(indices.size());
        for (size_t i : perm) encoded_order->push_back(indices[i]);
      }
      out.AppendLengthPrefixed(
          OctreeCodec::SerializeStructure(tree, backend));
      return out;
    }
    case OutlierMode::kQuadtree:
      break;
  }

  // Default: 2D quadtree on (x, y) + delta/entropy coded z attribute.
  std::vector<Point2> xy;
  xy.reserve(indices.size());
  for (uint32_t idx : indices) xy.push_back(Point2{pc[idx].x, pc[idx].y});
  DBGC_ASSIGN_OR_RETURN(QuadtreeStructure tree,
                        Quadtree::Build(xy, 2.0 * q_xyz));

  // Decoded (x, y) come out in Morton leaf order; store z in that order.
  std::vector<uint64_t> keys(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    keys[i] = Quadtree::LeafKeyOf(xy[i].x, xy[i].y, tree);
  }
  std::vector<size_t> perm(indices.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::stable_sort(perm.begin(), perm.end(),
                   [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  if (encoded_order != nullptr) encoded_order->reserve(indices.size());
  const Quantizer qz(q_xyz);
  std::vector<int64_t> z_values;
  z_values.reserve(indices.size());
  for (size_t i : perm) {
    if (encoded_order != nullptr) encoded_order->push_back(indices[i]);
    z_values.push_back(qz.Quantize(pc[indices[i]].z));
  }

  out.AppendDouble(q_xyz);
  out.AppendLengthPrefixed(SerializeQuadtree(tree, backend));
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(DeltaEncode(z_values), backend));  // B_delta_z
  return out;
}

Result<PointCloud> OutlierCodec::Decompress(const ByteBuffer& buffer,
                                            OutlierMode mode,
                                            EntropyBackend backend) {
  ByteReader reader(buffer);
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  PointCloud pc;
  if (count == 0) return pc;
  // kNone stores 12 whole bytes per point; the tree modes entropy-code
  // them, so the shared up-front reservation is speculative (clamped).
  const BoundedAlloc alloc(reader.remaining());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(&pc, count, "outlier points"));

  switch (mode) {
    case OutlierMode::kNone: {
      for (uint64_t i = 0; i < count; ++i) {
        uint8_t bytes[12];
        DBGC_RETURN_NOT_OK(reader.Read(bytes, 12));
        float v[3];
        std::memcpy(v, bytes, 12);
        pc.Add(v[0], v[1], v[2]);
      }
      return pc;
    }
    case OutlierMode::kOctree: {
      ByteBuffer tree_stream;
      DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&tree_stream));
      DBGC_ASSIGN_OR_RETURN(OctreeStructure tree,
                            OctreeCodec::DeserializeStructure(
                                tree_stream, backend));
      PointCloud sub = Octree::ExtractPoints(tree);
      if (sub.size() != count) {
        return Status::Corruption("outlier codec: octree point mismatch");
      }
      return sub;
    }
    case OutlierMode::kQuadtree:
      break;
  }

  double q_xyz;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&q_xyz));
  ByteBuffer tree_stream, z_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&tree_stream));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&z_stream));

  ByteReader tree_reader(tree_stream);
  DBGC_ASSIGN_OR_RETURN(QuadtreeStructure tree,
                        DeserializeQuadtree(&tree_reader, backend));
  const std::vector<Point2> xy = Quadtree::ExtractPoints(tree);
  if (xy.size() != count) {
    return Status::Corruption("outlier codec: quadtree point mismatch");
  }
  std::vector<int64_t> z_deltas;
  DBGC_RETURN_NOT_OK(
      SignedValueCodec::Decompress(z_stream, &z_deltas, backend));
  if (z_deltas.size() != count) {
    return Status::Corruption("outlier codec: z stream mismatch");
  }
  const std::vector<int64_t> z_values = DeltaDecode(z_deltas);
  const Quantizer qz(q_xyz);
  for (uint64_t i = 0; i < count; ++i) {
    pc.Add(xy[i].x, xy[i].y, qz.Reconstruct(z_values[i]));
  }
  return pc;
}

}  // namespace dbgc
