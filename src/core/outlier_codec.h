// Optimized outlier compression (Section 3.6).
//
// Outliers (sparse points on no polyline) are compressed in Cartesian
// coordinates: a 2D quadtree over (x, y) - LiDAR scenes are wide and flat,
// so a 3D octree would waste its z dimension - plus the z coordinates as a
// delta-encoded, entropy-coded attribute sequence in quadtree leaf order.
// The alternatives of Table 2 (3D octree; no compression) are selectable.

#ifndef DBGC_CORE_OUTLIER_CODEC_H_
#define DBGC_CORE_OUTLIER_CODEC_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "core/options.h"
#include "entropy/entropy_backend.h"

namespace dbgc {

/// Compresses/decompresses the outlier subset.
class OutlierCodec {
 public:
  /// Compresses the points of `pc` selected by `indices` under error bound
  /// q_xyz. On return, `encoded_order` (if non-null) holds the source
  /// indices in the order the decompressor will emit the points (the
  /// one-to-one mapping); pass null to skip deriving it.
  static Result<ByteBuffer> Compress(const PointCloud& pc,
                                     const std::vector<uint32_t>& indices,
                                     double q_xyz, OutlierMode mode,
                                     std::vector<uint32_t>* encoded_order,
                                     EntropyBackend backend = kDefaultEntropyBackend);

  /// Decompresses an outlier stream produced with the same mode/backend.
  static Result<PointCloud> Decompress(const ByteBuffer& buffer,
                                       OutlierMode mode,
                                       EntropyBackend backend = kDefaultEntropyBackend);
};

}  // namespace dbgc

#endif  // DBGC_CORE_OUTLIER_CODEC_H_
