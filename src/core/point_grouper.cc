#include "core/point_grouper.h"

#include <algorithm>

#include "common/check.h"

namespace dbgc {

std::vector<std::vector<uint32_t>> GroupByRadialDistance(
    const std::vector<uint32_t>& indices, const std::vector<double>& radii,
    int num_groups) {
  DBGC_CHECK(indices.size() == radii.size());
  std::vector<std::vector<uint32_t>> groups(
      static_cast<size_t>(num_groups < 1 ? 1 : num_groups));
  if (indices.empty()) return groups;
  if (groups.size() == 1) {
    groups[0] = indices;
    return groups;
  }
  // Quantile boundaries: sort radii once, cut at even ranks.
  std::vector<double> sorted = radii;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> bounds(groups.size() - 1);
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    bounds[g] = sorted[(g + 1) * sorted.size() / groups.size()];
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    size_t g = 0;
    while (g < bounds.size() && radii[i] >= bounds[g]) ++g;
    groups[g].push_back(indices[i]);
  }
  return groups;
}

}  // namespace dbgc
