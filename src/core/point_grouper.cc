#include "core/point_grouper.h"

#include <algorithm>

namespace dbgc {

std::vector<std::vector<uint32_t>> GroupByRadialDistance(
    std::span<const double> radii, int num_groups) {
  std::vector<std::vector<uint32_t>> groups(
      static_cast<size_t>(num_groups < 1 ? 1 : num_groups));
  const size_t n = radii.size();
  if (n == 0) return groups;
  if (groups.size() == 1) {
    groups[0].resize(n);
    for (size_t i = 0; i < n; ++i) groups[0][i] = static_cast<uint32_t>(i);
    return groups;
  }
  // Quantile boundaries sorted[(g+1)*n/G]: ascending nth_element calls on
  // shrinking tails select exactly the order statistics a full sort would,
  // in O(n) per boundary instead of O(n log n) total.
  std::vector<double> scratch(radii.begin(), radii.end());
  std::vector<double> bounds(groups.size() - 1);
  size_t done = 0;  // Elements at positions < done are finalized.
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    const size_t rank = (g + 1) * n / groups.size();
    if (rank >= done) {
      std::nth_element(scratch.begin() + static_cast<ptrdiff_t>(done),
                       scratch.begin() + static_cast<ptrdiff_t>(rank),
                       scratch.end());
      done = rank + 1;
    }
    // rank < done means the boundary repeats (n < G): the value at `rank`
    // was already selected by an earlier call.
    bounds[g] = scratch[rank];
  }
  for (size_t i = 0; i < n; ++i) {
    size_t g = 0;
    while (g < bounds.size() && radii[i] >= bounds[g]) ++g;
    groups[g].push_back(static_cast<uint32_t>(i));
  }
  return groups;
}

}  // namespace dbgc
