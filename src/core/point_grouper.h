// Sparse point grouping (Section 3.5, "Point Grouping").
//
// The angular error bounds q_theta = q_phi = q_xyz / r_max guard the
// farthest point; points near the sensor could tolerate coarser angles.
// Splitting sparse points into radial groups and scaling each group by its
// own r_max recovers that slack. The paper uses 3 groups.

#ifndef DBGC_CORE_POINT_GROUPER_H_
#define DBGC_CORE_POINT_GROUPER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dbgc {

/// Splits points into `num_groups` groups evenly by radial distance
/// (radial quantile boundaries, so the groups are evenly sized and each
/// near group earns a coarser angular scaling factor from its smaller
/// r_max). `radii[i]` is the radial distance of point i; the returned
/// groups hold indices into `radii` (the caller owns any mapping to global
/// point ids). Groups may be empty. The quantile boundaries come from
/// selection (nth_element) rather than a full sort, but are by definition
/// the same order statistics either way.
std::vector<std::vector<uint32_t>> GroupByRadialDistance(
    std::span<const double> radii, int num_groups);

}  // namespace dbgc

#endif  // DBGC_CORE_POINT_GROUPER_H_
