// Sparse point grouping (Section 3.5, "Point Grouping").
//
// The angular error bounds q_theta = q_phi = q_xyz / r_max guard the
// farthest point; points near the sensor could tolerate coarser angles.
// Splitting sparse points into radial groups and scaling each group by its
// own r_max recovers that slack. The paper uses 3 groups.

#ifndef DBGC_CORE_POINT_GROUPER_H_
#define DBGC_CORE_POINT_GROUPER_H_

#include <cstdint>
#include <vector>

namespace dbgc {

/// Splits point indices into `num_groups` groups evenly by radial distance
/// (radial quantile boundaries, so the groups are evenly sized and each
/// near group earns a coarser angular scaling factor from its smaller
/// r_max). `radii[i]` is the radial distance of the point at `indices[i]`.
/// Groups may be empty; the returned values are the same identifiers
/// passed in.
std::vector<std::vector<uint32_t>> GroupByRadialDistance(
    const std::vector<uint32_t>& indices, const std::vector<double>& radii,
    int num_groups);

}  // namespace dbgc

#endif  // DBGC_CORE_POINT_GROUPER_H_
