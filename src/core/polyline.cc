#include "core/polyline.h"

// Polyline is a plain data type; this file anchors the module.

namespace dbgc {}  // namespace dbgc
