// Polyline types for sparse-point organization (Section 3.4).
//
// After quantization a sparse point is a triple of integers (theta, phi, r
// in units of the per-dimension scaling factors). The decoder reconstructs
// polylines in exactly this quantized form, so every cross-polyline
// decision (reference selection in Step 8) is made on quantized values to
// keep encoder and decoder in lockstep.

#ifndef DBGC_CORE_POLYLINE_H_
#define DBGC_CORE_POLYLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbgc {

/// A quantized spherical point on a polyline.
struct QPoint {
  int64_t theta = 0;  ///< Azimuthal angle in units of 2*q_theta.
  int64_t phi = 0;    ///< Polar angle in units of 2*q_phi.
  int64_t r = 0;      ///< Radial distance in units of 2*q_r.
};

/// A polyline: a sequence of quantized points ordered by ascending theta.
struct Polyline {
  std::vector<QPoint> points;
  /// Index of each point in the encoder's input ordering; empty on the
  /// decoder side. Used to build the one-to-one mapping.
  std::vector<uint32_t> source_indices;

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }
  const QPoint& front() const { return points.front(); }
  const QPoint& back() const { return points.back(); }

  /// The polar angle of the polyline: the phi of its first point
  /// (Section 3.4, polyline sorting).
  int64_t PolarAngle() const { return points.front().phi; }
};

}  // namespace dbgc

#endif  // DBGC_CORE_POLYLINE_H_
