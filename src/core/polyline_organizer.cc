#include "core/polyline_organizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace dbgc {

namespace {

// Hash grid over the (theta, phi) plane for candidate search. Cells are
// 2*u_theta wide and u_phi tall so an extension query touches at most a
// 2 x 3 cell block.
class PlaneGrid {
 public:
  PlaneGrid(const std::vector<SphericalPoint>& pts, double u_theta,
            double u_phi)
      : pts_(pts),
        inv_w_(1.0 / (2.0 * u_theta)),
        inv_h_(1.0 / u_phi) {
    cells_.reserve(pts.size() / 2 + 8);
    for (uint32_t i = 0; i < pts.size(); ++i) {
      cells_[KeyFor(pts[i].theta, pts[i].phi)].push_back(i);
    }
  }

  /// Finds the unused point minimizing `distance(idx)` among points with
  /// theta in (theta_lo, theta_hi] and phi in [phi_lo, phi_hi].
  /// Returns -1 if none.
  template <typename DistanceFn>
  int FindBest(double theta_lo, double theta_hi, double phi_lo,
               double phi_hi, const std::vector<bool>& used,
               DistanceFn&& distance) const {
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    const int64_t cx0 = CellX(theta_lo);
    const int64_t cx1 = CellX(theta_hi);
    const int64_t cy0 = CellY(phi_lo);
    const int64_t cy1 = CellY(phi_hi);
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      for (int64_t cy = cy0; cy <= cy1; ++cy) {
        const auto it = cells_.find(Key(cx, cy));
        if (it == cells_.end()) continue;
        for (uint32_t idx : it->second) {
          if (used[idx]) continue;
          const SphericalPoint& s = pts_[idx];
          if (s.theta <= theta_lo || s.theta > theta_hi) continue;
          if (s.phi < phi_lo || s.phi > phi_hi) continue;
          const double d = distance(idx);
          if (d < best_d) {
            best_d = d;
            best = static_cast<int>(idx);
          }
        }
      }
    }
    return best;
  }

 private:
  int64_t CellX(double theta) const {
    return static_cast<int64_t>(std::floor(theta * inv_w_));
  }
  int64_t CellY(double phi) const {
    return static_cast<int64_t>(std::floor(phi * inv_h_));
  }
  static uint64_t Key(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(cx + (1LL << 31)) << 32) |
           static_cast<uint64_t>(cy + (1LL << 31));
  }
  uint64_t KeyFor(double theta, double phi) const {
    return Key(CellX(theta), CellY(phi));
  }

  const std::vector<SphericalPoint>& pts_;
  double inv_w_;
  double inv_h_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> cells_;
};

}  // namespace

OrganizeResult OrganizeSparsePoints(
    const std::vector<SphericalPoint>& role_coords,
    const std::vector<Point3>& cartesian,
    const std::vector<QPoint>& quantized, double u_theta, double u_phi,
    int min_polyline_length) {
  OrganizeResult result;
  const size_t n = role_coords.size();
  if (n == 0) return result;

  PlaneGrid grid(role_coords, u_theta, u_phi);
  std::vector<bool> used(n, false);

  // Seeds in (phi, theta) order for determinism.
  std::vector<uint32_t> seed_order(n);
  for (uint32_t i = 0; i < n; ++i) seed_order[i] = i;
  std::sort(seed_order.begin(), seed_order.end(), [&](uint32_t a, uint32_t b) {
    if (role_coords[a].phi != role_coords[b].phi) {
      return role_coords[a].phi < role_coords[b].phi;
    }
    return role_coords[a].theta < role_coords[b].theta;
  });

  std::vector<std::vector<uint32_t>> raw_lines;
  for (uint32_t seed : seed_order) {
    if (used[seed]) continue;
    used[seed] = true;
    const double phi_lo = role_coords[seed].phi - u_phi;
    const double phi_hi = role_coords[seed].phi + u_phi;

    std::vector<uint32_t> right{seed};
    // Extend to the right: candidate theta in (theta_tail, theta_tail+2u].
    for (;;) {
      const uint32_t tail = right.back();
      const Point3& tail_cart = cartesian[tail];
      const int next = grid.FindBest(
          role_coords[tail].theta, role_coords[tail].theta + 2.0 * u_theta,
          phi_lo, phi_hi, used,
          [&](uint32_t idx) { return (cartesian[idx] - tail_cart).SquaredNorm(); });
      if (next < 0) break;
      used[next] = true;
      right.push_back(static_cast<uint32_t>(next));
    }
    // Extend to the left: candidate theta in [theta_head - 2u, theta_head).
    std::vector<uint32_t> left;
    for (;;) {
      const uint32_t head = left.empty() ? seed : left.back();
      const Point3& head_cart = cartesian[head];
      // FindBest uses a half-open (lo, hi] window; mirror it for the left
      // by offsetting an epsilon below the head's theta.
      const double head_theta = role_coords[head].theta;
      const int next = grid.FindBest(
          head_theta - 2.0 * u_theta - 1e-15, head_theta - 1e-15, phi_lo,
          phi_hi, used,
          [&](uint32_t idx) { return (cartesian[idx] - head_cart).SquaredNorm(); });
      if (next < 0) break;
      used[next] = true;
      left.push_back(static_cast<uint32_t>(next));
    }
    std::vector<uint32_t> line;
    line.reserve(left.size() + right.size());
    for (auto it = left.rbegin(); it != left.rend(); ++it) line.push_back(*it);
    line.insert(line.end(), right.begin(), right.end());
    raw_lines.push_back(std::move(line));
  }

  // Short polylines dissolve into outliers.
  std::vector<Polyline> polylines;
  for (auto& line : raw_lines) {
    if (static_cast<int>(line.size()) < min_polyline_length) {
      for (uint32_t idx : line) result.outliers.push_back(idx);
      continue;
    }
    Polyline pl;
    pl.points.reserve(line.size());
    pl.source_indices = std::move(line);
    for (uint32_t idx : pl.source_indices) pl.points.push_back(quantized[idx]);
    polylines.push_back(std::move(pl));
  }

  // Sort by (polar angle of head, azimuth of head) on quantized values so
  // the order is exactly reproducible from the decoded streams.
  std::sort(polylines.begin(), polylines.end(),
            [](const Polyline& a, const Polyline& b) {
              if (a.PolarAngle() != b.PolarAngle()) {
                return a.PolarAngle() < b.PolarAngle();
              }
              return a.front().theta < b.front().theta;
            });
  result.polylines = std::move(polylines);
  return result;
}

}  // namespace dbgc
