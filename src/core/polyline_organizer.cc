#include "core/polyline_organizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/radix_sort.h"

namespace dbgc {

namespace {

// Candidate-search grid over the (theta, phi) plane. Cells are 2*u_theta
// wide and u_phi tall so an extension query touches at most a 2 x 3 cell
// block.
//
// The grid is a dense CSR layout over the occupied cell bounding box:
// cell (cx, cy) maps to slot (cx - min_x) * height + (cy - min_y), point
// ids are scattered into per-cell slices by a counting sort that preserves
// ascending id order (the same order the hash-bucket push_backs produced).
// When the bounding box is degenerate or too large relative to the point
// count (pathological coordinates), a sorted-key fallback serves the same
// lookups through binary search; candidate visit order is identical either
// way.
class PlaneGrid {
 public:
  PlaneGrid(const double* theta, const double* phi, size_t n, double u_theta,
            double u_phi)
      : theta_(theta),
        phi_(phi),
        inv_w_(1.0 / (2.0 * u_theta)),
        inv_h_(1.0 / u_phi) {
    std::vector<int64_t> cxs(n), cys(n);
    int64_t min_x = 0, max_x = 0, min_y = 0, max_y = 0;
    for (size_t i = 0; i < n; ++i) {
      cxs[i] = CellX(theta_[i]);
      cys[i] = CellY(phi_[i]);
      if (i == 0) {
        min_x = max_x = cxs[0];
        min_y = max_y = cys[0];
      } else {
        min_x = std::min(min_x, cxs[i]);
        max_x = std::max(max_x, cxs[i]);
        min_y = std::min(min_y, cys[i]);
        max_y = std::max(max_y, cys[i]);
      }
    }
    min_x_ = min_x;
    min_y_ = min_y;
    // Dense layout whenever the bbox area stays within a small multiple of
    // n (plus a flat allowance: a LiDAR scan's cell plane is fixed by the
    // sensor's field of view, so a subsampled frame still spans the full
    // plane). The fallback below only serves pathological coordinates.
    const uint64_t limit = 8 * static_cast<uint64_t>(n) + 65536;
    const uint64_t span_x = static_cast<uint64_t>(max_x) - static_cast<uint64_t>(min_x);
    const uint64_t span_y = static_cast<uint64_t>(max_y) - static_cast<uint64_t>(min_y);
    if (n > 0 && span_x < limit && span_y < limit &&
        (span_x + 1) <= limit / (span_y + 1)) {
      width_ = span_x + 1;
      height_ = span_y + 1;
      starts_.assign(width_ * height_ + 1, 0);
      items_.resize(n);
      for (size_t i = 0; i < n; ++i) ++starts_[SlotOf(cxs[i], cys[i]) + 1];
      for (size_t s = 1; s < starts_.size(); ++s) starts_[s] += starts_[s - 1];
      std::vector<uint32_t> cursor(starts_.begin(), starts_.end() - 1);
      for (size_t i = 0; i < n; ++i) {
        items_[cursor[SlotOf(cxs[i], cys[i])]++] = static_cast<uint32_t>(i);
      }
      return;
    }
    // Fallback: points stably sorted by packed cell key; per-cell slices
    // found by binary search. Stability keeps ids ascending within a cell.
    sorted_keys_.resize(n);
    items_.resize(n);
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = Key(cxs[i], cys[i]);
    std::vector<uint32_t> perm(n), perm_scratch;
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
    RadixSortIndicesByKey(keys, perm, perm_scratch, 64);
    for (size_t i = 0; i < n; ++i) {
      items_[i] = perm[i];
      sorted_keys_[i] = keys[perm[i]];
    }
  }

  /// Finds the unused point minimizing `distance(idx)` among points with
  /// theta in (theta_lo, theta_hi] and phi in [phi_lo, phi_hi].
  /// Returns -1 if none.
  template <typename DistanceFn>
  int FindBest(double theta_lo, double theta_hi, double phi_lo,
               double phi_hi, const std::vector<uint8_t>& used,
               DistanceFn&& distance) const {
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    const int64_t cx0 = CellX(theta_lo);
    const int64_t cx1 = CellX(theta_hi);
    const int64_t cy0 = CellY(phi_lo);
    const int64_t cy1 = CellY(phi_hi);
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      for (int64_t cy = cy0; cy <= cy1; ++cy) {
        const uint32_t* it;
        const uint32_t* end;
        if (!CellSlice(cx, cy, &it, &end)) continue;
        for (; it != end; ++it) {
          const uint32_t idx = *it;
          if (used[idx]) continue;
          if (theta_[idx] <= theta_lo || theta_[idx] > theta_hi) continue;
          if (phi_[idx] < phi_lo || phi_[idx] > phi_hi) continue;
          const double d = distance(idx);
          if (d < best_d) {
            best_d = d;
            best = static_cast<int>(idx);
          }
        }
      }
    }
    return best;
  }

 private:
  int64_t CellX(double theta) const {
    return static_cast<int64_t>(std::floor(theta * inv_w_));
  }
  int64_t CellY(double phi) const {
    return static_cast<int64_t>(std::floor(phi * inv_h_));
  }
  static uint64_t Key(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(cx + (1LL << 31)) << 32) |
           static_cast<uint64_t>(cy + (1LL << 31));
  }
  size_t SlotOf(int64_t cx, int64_t cy) const {
    return static_cast<size_t>(cx - min_x_) * height_ +
           static_cast<size_t>(cy - min_y_);
  }
  // Writes the [begin, end) item slice of cell (cx, cy); false if empty.
  bool CellSlice(int64_t cx, int64_t cy, const uint32_t** begin,
                 const uint32_t** end) const {
    if (height_ != 0) {
      if (cx < min_x_ || cy < min_y_ ||
          static_cast<uint64_t>(cx - min_x_) >= width_ ||
          static_cast<uint64_t>(cy - min_y_) >= height_) {
        return false;
      }
      const size_t slot = SlotOf(cx, cy);
      if (starts_[slot] == starts_[slot + 1]) return false;
      *begin = items_.data() + starts_[slot];
      *end = items_.data() + starts_[slot + 1];
      return true;
    }
    const auto [lo, hi] = std::equal_range(sorted_keys_.begin(),
                                           sorted_keys_.end(), Key(cx, cy));
    if (lo == hi) return false;
    *begin = items_.data() + (lo - sorted_keys_.begin());
    *end = items_.data() + (hi - sorted_keys_.begin());
    return true;
  }

  const double* theta_;
  const double* phi_;
  double inv_w_;
  double inv_h_;
  int64_t min_x_ = 0;
  int64_t min_y_ = 0;
  uint64_t width_ = 0;
  uint64_t height_ = 0;           // 0 = fallback layout in use.
  std::vector<uint32_t> starts_;  // Dense layout: per-slot slice starts.
  std::vector<uint32_t> items_;   // Point ids, grouped by cell.
  std::vector<uint64_t> sorted_keys_;  // Fallback: sorted key per item.
};

}  // namespace

OrganizeResult OrganizeSparsePoints(const PointSoA& role,
                                    std::span<const Point3> parent,
                                    std::span<const uint32_t> members,
                                    const std::vector<QPoint>& quantized,
                                    double u_theta, double u_phi,
                                    int min_polyline_length) {
  OrganizeResult result;
  const size_t n = role.size();
  if (n == 0) return result;
  const double* const theta = role.theta();
  const double* const phi = role.phi();

  PlaneGrid grid(theta, phi, n, u_theta, u_phi);
  std::vector<uint8_t> used(n, 0);

  // Seeds in (phi, theta) order for determinism.
  std::vector<uint32_t> seed_order(n);
  for (uint32_t i = 0; i < n; ++i) seed_order[i] = i;
  std::sort(seed_order.begin(), seed_order.end(), [&](uint32_t a, uint32_t b) {
    if (phi[a] != phi[b]) return phi[a] < phi[b];
    return theta[a] < theta[b];
  });

  std::vector<std::vector<uint32_t>> raw_lines;
  for (uint32_t seed : seed_order) {
    if (used[seed]) continue;
    used[seed] = 1;
    const double phi_lo = phi[seed] - u_phi;
    const double phi_hi = phi[seed] + u_phi;

    std::vector<uint32_t> right{seed};
    // Extend to the right: candidate theta in (theta_tail, theta_tail+2u].
    for (;;) {
      const uint32_t tail = right.back();
      const Point3& tail_cart = parent[members[tail]];
      const int next =
          grid.FindBest(theta[tail], theta[tail] + 2.0 * u_theta, phi_lo,
                        phi_hi, used, [&](uint32_t idx) {
                          return (parent[members[idx]] - tail_cart)
                              .SquaredNorm();
                        });
      if (next < 0) break;
      used[next] = 1;
      right.push_back(static_cast<uint32_t>(next));
    }
    // Extend to the left: candidate theta in [theta_head - 2u, theta_head).
    std::vector<uint32_t> left;
    for (;;) {
      const uint32_t head = left.empty() ? seed : left.back();
      const Point3& head_cart = parent[members[head]];
      // FindBest uses a half-open (lo, hi] window; mirror it for the left
      // by offsetting an epsilon below the head's theta.
      const double head_theta = theta[head];
      const int next =
          grid.FindBest(head_theta - 2.0 * u_theta - 1e-15,
                        head_theta - 1e-15, phi_lo, phi_hi, used,
                        [&](uint32_t idx) {
                          return (parent[members[idx]] - head_cart)
                              .SquaredNorm();
                        });
      if (next < 0) break;
      used[next] = 1;
      left.push_back(static_cast<uint32_t>(next));
    }
    std::vector<uint32_t> line;
    line.reserve(left.size() + right.size());
    for (auto it = left.rbegin(); it != left.rend(); ++it) line.push_back(*it);
    line.insert(line.end(), right.begin(), right.end());
    raw_lines.push_back(std::move(line));
  }

  // Short polylines dissolve into outliers.
  std::vector<Polyline> polylines;
  for (auto& line : raw_lines) {
    if (static_cast<int>(line.size()) < min_polyline_length) {
      for (uint32_t idx : line) result.outliers.push_back(idx);
      continue;
    }
    Polyline pl;
    pl.points.reserve(line.size());
    pl.source_indices = std::move(line);
    for (uint32_t idx : pl.source_indices) pl.points.push_back(quantized[idx]);
    polylines.push_back(std::move(pl));
  }

  // Sort by (polar angle of head, azimuth of head) on quantized values so
  // the order is exactly reproducible from the decoded streams.
  std::sort(polylines.begin(), polylines.end(),
            [](const Polyline& a, const Polyline& b) {
              if (a.PolarAngle() != b.PolarAngle()) {
                return a.PolarAngle() < b.PolarAngle();
              }
              return a.front().theta < b.front().theta;
            });
  result.polylines = std::move(polylines);
  return result;
}

}  // namespace dbgc
