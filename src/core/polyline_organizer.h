// Point organization: Algorithm 1 of the paper (Section 3.4).
//
// Sparse points are organized into roughly horizontal polylines in the
// (theta, phi) plane: starting from a seed point, a polyline greedily
// extends right and left to the nearest (3D Euclidean) candidate whose
// polar angle stays within +-u_phi of the seed and whose azimuthal step is
// within (0, 2*u_theta]. Points on polylines shorter than the minimum
// length are returned as outliers. The resulting polylines are sorted by
// (polar angle, head azimuth).
//
// The organizer is coordinate-role agnostic: for the -Conversion ablation
// the same routine runs with (x, y, z) playing the roles of
// (theta, phi, r).

#ifndef DBGC_CORE_POLYLINE_ORGANIZER_H_
#define DBGC_CORE_POLYLINE_ORGANIZER_H_

#include <cstdint>
#include <vector>

#include "common/point_cloud.h"
#include "core/polyline.h"

namespace dbgc {

/// Output of Algorithm 1.
struct OrganizeResult {
  /// Polylines sorted by ascending (polar angle of head, azimuth of head),
  /// each with quantized points and their source indices.
  std::vector<Polyline> polylines;
  /// Indices (into the input arrays) of points on no surviving polyline.
  std::vector<uint32_t> outliers;
};

/// Runs Algorithm 1 on one group of sparse points.
///
/// `role_coords[i]` supplies the (theta, phi) extraction plane for point i,
/// `cartesian[i]` the actual 3D position used for candidate distance, and
/// `quantized[i]` the integer coordinates stored on the polylines.
/// `u_theta` / `u_phi` are the average sampling steps (Section 3.3).
OrganizeResult OrganizeSparsePoints(const std::vector<SphericalPoint>& role_coords,
                                    const std::vector<Point3>& cartesian,
                                    const std::vector<QPoint>& quantized,
                                    double u_theta, double u_phi,
                                    int min_polyline_length);

}  // namespace dbgc

#endif  // DBGC_CORE_POLYLINE_ORGANIZER_H_
