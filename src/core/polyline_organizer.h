// Point organization: Algorithm 1 of the paper (Section 3.4).
//
// Sparse points are organized into roughly horizontal polylines in the
// (theta, phi) plane: starting from a seed point, a polyline greedily
// extends right and left to the nearest (3D Euclidean) candidate whose
// polar angle stays within +-u_phi of the seed and whose azimuthal step is
// within (0, 2*u_theta]. Points on polylines shorter than the minimum
// length are returned as outliers. The resulting polylines are sorted by
// (polar angle, head azimuth).
//
// The organizer is coordinate-role agnostic: for the -Conversion ablation
// the same routine runs with (x, y, z) playing the roles of
// (theta, phi, r).

#ifndef DBGC_CORE_POLYLINE_ORGANIZER_H_
#define DBGC_CORE_POLYLINE_ORGANIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/point_cloud.h"
#include "common/point_soa.h"
#include "core/polyline.h"

namespace dbgc {

/// Output of Algorithm 1.
struct OrganizeResult {
  /// Polylines sorted by ascending (polar angle of head, azimuth of head),
  /// each with quantized points and their source indices.
  std::vector<Polyline> polylines;
  /// Indices (into the group's arrays) of points on no surviving polyline.
  std::vector<uint32_t> outliers;
};

/// Runs Algorithm 1 on one group of sparse points.
///
/// `role.theta()/phi()[i]` supply the (theta, phi) extraction plane for
/// group point i, `parent[members[i]]` its actual 3D position (the
/// candidate-distance metric — the group stores no Cartesian copy), and
/// `quantized[i]` the integer coordinates stored on the polylines.
/// `u_theta` / `u_phi` are the average sampling steps (Section 3.3). All
/// indices in the result are group-local (positions in `members`).
OrganizeResult OrganizeSparsePoints(const PointSoA& role,
                                    std::span<const Point3> parent,
                                    std::span<const uint32_t> members,
                                    const std::vector<QPoint>& quantized,
                                    double u_theta, double u_phi,
                                    int min_polyline_length);

}  // namespace dbgc

#endif  // DBGC_CORE_POLYLINE_ORGANIZER_H_
