#include "core/reference_polyline.h"

#include <algorithm>
#include <cstring>

namespace dbgc {

void ConsensusLine::Rebuild(const std::vector<Polyline>& lines,
                            size_t line_index, int64_t th_phi) {
  points_.clear();
  if (line_index == 0) return;
  const int64_t phi_l = lines[line_index].PolarAngle();
  // Collect the reference set: preceding polylines within TH_phi. Lines are
  // sorted by polar angle, so scanning backwards stops at the first line
  // too far below (ties and equal angles are all included).
  // Later polylines overwrite the azimuthal span of earlier ones during the
  // merge, so only the most recent members of the reference set contribute;
  // capping the set keeps construction linear without changing the
  // consensus materially. The cap is part of the codec definition (encoder
  // and decoder replay it identically).
  constexpr size_t kMaxReferenceLines = 8;
  size_t first = line_index;
  while (first > 0 && line_index - first < kMaxReferenceLines) {
    const int64_t phi_prev = lines[first - 1].PolarAngle();
    const int64_t diff =
        phi_l >= phi_prev ? phi_l - phi_prev : phi_prev - phi_l;
    if (diff > th_phi) break;
    --first;
  }
  // Merge in <PL> order so later polylines overwrite earlier spans.
  for (size_t i = first; i < line_index; ++i) Merge(lines[i]);
}

void ConsensusLine::Merge(const Polyline& line) {
  if (line.empty()) return;
  if (points_.empty() || points_.back().theta < line.front().theta) {
    for (const QPoint& p : line.points) {
      points_.push_back(ConsensusPoint{p.theta, p.r});
    }
    return;
  }
  // id_left: leftmost consensus point with theta greater than the head of
  // the incoming line; id_right: rightmost point with theta less than its
  // tail. The consensus points in [id_left, id_right] are replaced.
  const int64_t head_theta = line.front().theta;
  const int64_t tail_theta = line.back().theta;
  const auto left_it = std::upper_bound(
      points_.begin(), points_.end(), head_theta,
      [](int64_t v, const ConsensusPoint& p) { return v < p.theta; });
  const size_t id_left = static_cast<size_t>(left_it - points_.begin());
  const auto right_it = std::lower_bound(
      points_.begin(), points_.end(), tail_theta,
      [](const ConsensusPoint& p, int64_t v) { return p.theta < v; });
  // right_it points at the first element >= tail_theta; the rightmost
  // element below it is one before.
  const size_t id_right_plus1 = static_cast<size_t>(right_it - points_.begin());

  // Splice the line over [id_left, tail_src) in place: keep the prefix,
  // shift the suffix to its final slot (ConsensusPoint is trivially
  // copyable, so memmove is fine), and write the line into the gap. The
  // arrangement is prefix + line + suffix, exactly the rebuilt vector of
  // the copying implementation this replaces.
  const size_t old_size = points_.size();
  const size_t tail_src = std::max(id_left, id_right_plus1);
  const size_t tail_len = old_size - tail_src;
  const size_t new_size = id_left + line.size() + tail_len;
  if (new_size > old_size) {
    points_.resize(new_size);
    std::memmove(points_.data() + id_left + line.size(),
                 points_.data() + tail_src, tail_len * sizeof(ConsensusPoint));
  } else {
    std::memmove(points_.data() + id_left + line.size(),
                 points_.data() + tail_src, tail_len * sizeof(ConsensusPoint));
    points_.resize(new_size);
  }
  for (size_t i = 0; i < line.size(); ++i) {
    points_[id_left + i] = ConsensusPoint{line.points[i].theta,
                                          line.points[i].r};
  }

  // The bound choices make the splice nondecreasing whenever the incoming
  // line is (prefix ends <= head_theta, suffix starts >= tail_theta), so
  // the sort the copying implementation ran was the identity permutation.
  // Verify the affected region; if a boundary tie or an unsorted line ever
  // breaks the invariant, restore it with the same stable sort as before
  // (same arrangement, same comparator — bit-identical output).
  const size_t check_lo = id_left > 0 ? id_left : 1;
  const size_t check_hi = std::min(new_size, id_left + line.size() + 1);
  bool ordered = true;
  for (size_t i = check_lo; i < check_hi; ++i) {
    if (points_[i - 1].theta > points_[i].theta) {
      ordered = false;
      break;
    }
  }
  if (!ordered) {
    std::stable_sort(points_.begin(), points_.end(),
                     [](const ConsensusPoint& a, const ConsensusPoint& b) {
                       return a.theta < b.theta;
                     });
  }
}

int ConsensusLine::RightmostBelow(int64_t t) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const ConsensusPoint& p, int64_t v) { return p.theta < v; });
  if (it == points_.begin()) return -1;
  return static_cast<int>(it - points_.begin()) - 1;
}

int ConsensusLine::LeftmostAtOrAbove(int64_t t) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const ConsensusPoint& p, int64_t v) { return p.theta < v; });
  if (it == points_.end()) return -1;
  return static_cast<int>(it - points_.begin());
}

}  // namespace dbgc
