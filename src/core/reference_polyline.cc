#include "core/reference_polyline.h"

#include <algorithm>

namespace dbgc {

ConsensusLine ConsensusLine::Build(const std::vector<Polyline>& lines,
                                   size_t line_index, int64_t th_phi) {
  ConsensusLine consensus;
  if (line_index == 0) return consensus;
  const int64_t phi_l = lines[line_index].PolarAngle();
  // Collect the reference set: preceding polylines within TH_phi. Lines are
  // sorted by polar angle, so scanning backwards stops at the first line
  // too far below (ties and equal angles are all included).
  // Later polylines overwrite the azimuthal span of earlier ones during the
  // merge, so only the most recent members of the reference set contribute;
  // capping the set keeps construction linear without changing the
  // consensus materially. The cap is part of the codec definition (encoder
  // and decoder replay it identically).
  constexpr size_t kMaxReferenceLines = 8;
  size_t first = line_index;
  while (first > 0 && line_index - first < kMaxReferenceLines) {
    const int64_t phi_prev = lines[first - 1].PolarAngle();
    const int64_t diff =
        phi_l >= phi_prev ? phi_l - phi_prev : phi_prev - phi_l;
    if (diff > th_phi) break;
    --first;
  }
  // Merge in <PL> order so later polylines overwrite earlier spans.
  for (size_t i = first; i < line_index; ++i) consensus.Merge(lines[i]);
  return consensus;
}

void ConsensusLine::Merge(const Polyline& line) {
  if (line.empty()) return;
  if (points_.empty() || points_.back().theta < line.front().theta) {
    for (const QPoint& p : line.points) {
      points_.push_back(ConsensusPoint{p.theta, p.r});
    }
    return;
  }
  // id_left: leftmost consensus point with theta greater than the head of
  // the incoming line; id_right: rightmost point with theta less than its
  // tail. The consensus points in [id_left, id_right] are replaced.
  const int64_t head_theta = line.front().theta;
  const int64_t tail_theta = line.back().theta;
  const auto left_it = std::upper_bound(
      points_.begin(), points_.end(), head_theta,
      [](int64_t v, const ConsensusPoint& p) { return v < p.theta; });
  const size_t id_left = static_cast<size_t>(left_it - points_.begin());
  const auto right_it = std::lower_bound(
      points_.begin(), points_.end(), tail_theta,
      [](const ConsensusPoint& p, int64_t v) { return p.theta < v; });
  // right_it points at the first element >= tail_theta; the rightmost
  // element below it is one before.
  const size_t id_right_plus1 = static_cast<size_t>(right_it - points_.begin());

  std::vector<ConsensusPoint> merged;
  merged.reserve(points_.size() + line.size());
  merged.insert(merged.end(), points_.begin(), points_.begin() + id_left);
  for (const QPoint& p : line.points) {
    merged.push_back(ConsensusPoint{p.theta, p.r});
  }
  if (id_right_plus1 > id_left) {
    merged.insert(merged.end(), points_.begin() + id_right_plus1,
                  points_.end());
  } else {
    merged.insert(merged.end(), points_.begin() + id_left, points_.end());
  }
  // Boundary ties can leave the sequence locally unordered; restore the
  // sorted invariant with a stable sort (cheap: nearly sorted).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ConsensusPoint& a, const ConsensusPoint& b) {
                     return a.theta < b.theta;
                   });
  points_ = std::move(merged);
}

int ConsensusLine::RightmostBelow(int64_t t) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const ConsensusPoint& p, int64_t v) { return p.theta < v; });
  if (it == points_.begin()) return -1;
  return static_cast<int>(it - points_.begin()) - 1;
}

int ConsensusLine::LeftmostAtOrAbove(int64_t t) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const ConsensusPoint& p, int64_t v) { return p.theta < v; });
  if (it == points_.end()) return -1;
  return static_cast<int>(it - points_.begin());
}

}  // namespace dbgc
