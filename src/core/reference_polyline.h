// Consensus reference polylines (Definition 3.4 and Algorithm 2) for the
// radial-distance-optimized delta encoding of Section 3.5, Step 8.
//
// For a polyline l, the reference polyline set contains the polylines that
// precede l in the sorted order and whose polar angle is within TH_phi of
// l's. Algorithm 2 folds that set into a single consensus line l*: later
// polylines overwrite the azimuthal span they cover. All coordinates are
// quantized integers so the construction replays identically during
// decompression.

#ifndef DBGC_CORE_REFERENCE_POLYLINE_H_
#define DBGC_CORE_REFERENCE_POLYLINE_H_

#include <cstdint>
#include <vector>

#include "core/polyline.h"

namespace dbgc {

/// One point of a consensus line: azimuth plus radial distance.
struct ConsensusPoint {
  int64_t theta = 0;
  int64_t r = 0;
};

/// The consensus reference polyline l* of one polyline.
class ConsensusLine {
 public:
  /// Builds l* for lines[line_index] from its reference polyline set
  /// (preceding polylines with |phi - phi_l| <= th_phi), per Algorithm 2.
  /// Radial distances of all preceding polylines must already be final.
  static ConsensusLine Build(const std::vector<Polyline>& lines,
                             size_t line_index, int64_t th_phi) {
    ConsensusLine consensus;
    consensus.Rebuild(lines, line_index, th_phi);
    return consensus;
  }

  /// In-place Build: clears this line and rebuilds it for lines[line_index],
  /// reusing the point buffer's capacity. The per-line encode and decode
  /// loops call this once per polyline; buffer reuse keeps the consensus
  /// construction allocation-free in steady state.
  void Rebuild(const std::vector<Polyline>& lines, size_t line_index,
               int64_t th_phi);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const ConsensusPoint& at(size_t i) const { return points_[i]; }

  /// Index of the rightmost point with theta < t, or -1.
  int RightmostBelow(int64_t t) const;
  /// Index of the leftmost point with theta >= t, or -1.
  int LeftmostAtOrAbove(int64_t t) const;

 private:
  void Merge(const Polyline& line);

  std::vector<ConsensusPoint> points_;  // Sorted by theta (non-strict).
};

}  // namespace dbgc

#endif  // DBGC_CORE_REFERENCE_POLYLINE_H_
