#include "core/sparse_codec.h"

#include <algorithm>
#include <cstdlib>

#include "bitio/varint.h"
#include "common/safe_math.h"
#include "encoding/delta.h"
#include "encoding/value_codec.h"
#include "entropy/entropy_coder.h"
#include "core/reference_polyline.h"
#include "lz/deflate.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

// Serializes a signed sequence as zigzag varints; repeated deltas become
// byte patterns that Deflate's LZ77 stage can match across polylines.
std::vector<uint8_t> ToVarintBytes(const std::vector<int64_t>& values) {
  ByteBuffer buf;
  for (int64_t v : values) PutSignedVarint64(&buf, v);
  return buf.bytes();
}

// Theta residual byte streams are format-versioned: v1 Deflates the varint
// bytes, v2 feeds them through the adaptive order-0 byte model under the
// range coder. On these heavily skewed delta streams the adaptive model is
// both smaller and about twice as fast as the LZ77 match finder, and it
// keeps the whole ENT stage on the versioned backend (docs/ENTROPY.md).
ByteBuffer CompressThetaBytes(const std::vector<uint8_t>& bytes,
                              EntropyBackend backend) {
  if (backend == EntropyBackend::kArithmeticV1) return Deflate::Compress(bytes);
  ByteBuffer out;
  PutVarint64(&out, bytes.size());
  const std::vector<uint32_t> symbols(bytes.begin(), bytes.end());
  out.AppendLengthPrefixed(EntropyCompress(symbols, 256, backend));
  return out;
}

Status DecompressThetaBytes(const ByteBuffer& buf, EntropyBackend backend,
                            std::vector<uint8_t>* bytes) {
  if (backend == EntropyBackend::kArithmeticV1) {
    return Deflate::Decompress(buf, bytes);
  }
  ByteReader reader(buf);
  uint64_t count = 0;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  ByteBuffer coded;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&coded));
  // `count` is untrusted; EntropyDecompress bounds the reservation against
  // the coded payload size before decoding.
  std::vector<uint32_t> symbols;
  DBGC_RETURN_NOT_OK(EntropyDecompress(coded, 256, count, backend, &symbols));
  // DBGC_LINT_ALLOW(R2): count EntropyDecompress reserved under BoundedAlloc.
  bytes->assign(symbols.begin(), symbols.end());
  return Status::OK();
}

Status FromVarintBytes(const std::vector<uint8_t>& bytes, size_t count,
                       std::vector<int64_t>* out) {
  out->clear();
  out->reserve(count);
  ByteBuffer buf(bytes);
  ByteReader reader(buf);
  for (size_t i = 0; i < count; ++i) {
    int64_t v;
    DBGC_RETURN_NOT_OK(GetSignedVarint64(&reader, &v));
    out->push_back(v);
  }
  return Status::OK();
}

int64_t AbsDiff(int64_t a, int64_t b) { return a >= b ? a - b : b - a; }

// The radial reference decision for one point, shared verbatim by encoder
// and decoder (Section 3.5, Step 8). Returns the reference r value; sets
// *needs_symbol when Situation (2)(b) applies, in which case `candidates`
// holds the r of [p_bl, p_ul, p_ur, p_um?] indexed by the L_ref symbol.
struct RadialDecision {
  bool needs_symbol = false;
  int64_t reference = 0;          // Valid when !needs_symbol.
  int64_t candidates[4] = {0, 0, 0, 0};
  int num_candidates = 0;         // 3 or 4 when needs_symbol.
};

RadialDecision DecideReference(const std::vector<Polyline>& lines,
                               size_t li, size_t pi,
                               const ConsensusLine& consensus,
                               const SparseGroupParams& params) {
  RadialDecision d;
  const Polyline& line = lines[li];
  const int64_t theta_p = line.points[pi].theta;

  if (!params.radial_optimized) {
    // Plain delta encoding (-Radial): previous point in line, or the head
    // of the preceding polyline for heads.
    if (pi > 0) {
      d.reference = line.points[pi - 1].r;
    } else if (li > 0) {
      d.reference = lines[li - 1].front().r;
    } else {
      d.reference = 0;
    }
    return d;
  }

  if (pi == 0) {
    // Situation (1): head. Rightmost consensus point left of theta_p,
    // falling back to the head of the preceding polyline.
    const int idx = consensus.RightmostBelow(theta_p);
    if (idx >= 0) {
      d.reference = consensus.at(idx).r;
    } else if (li > 0) {
      d.reference = lines[li - 1].front().r;
    } else {
      d.reference = 0;
    }
    return d;
  }

  const int64_t r_bl = line.points[pi - 1].r;  // Bottom-left neighbour.
  const int idx_ul = consensus.RightmostBelow(theta_p);
  const int idx_ur = consensus.LeftmostAtOrAbove(theta_p);
  if (consensus.empty() || idx_ul < 0 || idx_ur < 0) {
    d.reference = r_bl;
    return d;
  }
  const int64_t r_ul = consensus.at(idx_ul).r;
  const int64_t r_ur = consensus.at(idx_ur).r;
  // Situation (2)(a): locally flat scene.
  if (AbsDiff(r_ul, r_ur) <= params.th_r && AbsDiff(r_ul, r_bl) <= params.th_r &&
      AbsDiff(r_ur, r_bl) <= params.th_r) {
    d.reference = r_bl;
    return d;
  }
  // Situation (2)(b): pick the candidate nearest to r_p; recorded in L_ref.
  d.needs_symbol = true;
  d.candidates[0] = r_bl;
  d.candidates[1] = r_ul;
  d.candidates[2] = r_ur;
  d.num_candidates = 3;
  if (idx_ul > 0) {  // Upper-middle: the point left of p_ul, if any.
    d.candidates[3] = consensus.at(idx_ul - 1).r;
    d.num_candidates = 4;
  }
  return d;
}

}  // namespace

ByteBuffer SparseCodec::EncodeGroup(const std::vector<Polyline>& lines,
                                    const SparseGroupParams& params,
                                    EntropyBackend backend) {
  // --- Steps 3-5: lengths and reorganized head/tail sequences. ---
  std::vector<uint64_t> lengths;
  std::vector<int64_t> theta_heads, phi_heads;
  std::vector<int64_t> theta_tail_deltas, phi_tail_deltas;
  size_t total_points = 0;
  for (const Polyline& line : lines) {
    lengths.push_back(line.size());
    total_points += line.size();
    theta_heads.push_back(line.front().theta);
    phi_heads.push_back(line.front().phi);
    for (size_t i = 1; i < line.size(); ++i) {
      // Step 2: within-line delta coordinates.
      theta_tail_deltas.push_back(line.points[i].theta -
                                  line.points[i - 1].theta);
      phi_tail_deltas.push_back(line.points[i].phi - line.points[i - 1].phi);
    }
  }

  // --- Step 8: radial-distance-optimized delta encoding. ---
  std::vector<int64_t> nabla_r;
  std::vector<uint32_t> ref_symbols;
  nabla_r.reserve(total_points);
  ConsensusLine consensus;  // Reused across lines; Rebuild keeps capacity.
  for (size_t li = 0; li < lines.size(); ++li) {
    consensus.Rebuild(lines, li, params.th_phi);
    for (size_t pi = 0; pi < lines[li].size(); ++pi) {
      const RadialDecision d =
          DecideReference(lines, li, pi, consensus, params);
      const int64_t r_p = lines[li].points[pi].r;
      if (!d.needs_symbol) {
        nabla_r.push_back(r_p - d.reference);
      } else {
        int best = 0;
        int64_t best_diff = AbsDiff(d.candidates[0], r_p);
        for (int c = 1; c < d.num_candidates; ++c) {
          const int64_t diff = AbsDiff(d.candidates[c], r_p);
          if (diff < best_diff) {
            best_diff = diff;
            best = c;
          }
        }
        ref_symbols.push_back(static_cast<uint32_t>(best));
        nabla_r.push_back(r_p - d.candidates[best]);
      }
    }
  }

  // --- Steps 6, 7, 9: entropy coding and stream assembly. ---
  obs::TraceSpan entropy_span(obs::Stage::kEntropy);
  ByteBuffer out;
  PutVarint64(&out, lines.size());
  if (lines.empty()) return out;

  out.AppendLengthPrefixed(
      UnsignedValueCodec::Compress(lengths, backend));  // B_len
  // Step 6: theta -> delta across heads, versioned byte-stream codec.
  out.AppendLengthPrefixed(
      CompressThetaBytes(ToVarintBytes(DeltaEncode(theta_heads)), backend));
  out.AppendLengthPrefixed(
      CompressThetaBytes(ToVarintBytes(theta_tail_deltas), backend));
  // Step 7: phi -> delta across heads, arithmetic coding.
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(DeltaEncode(phi_heads), backend));
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(phi_tail_deltas, backend));
  // Step 8 outputs.
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(nabla_r, backend));  // B_nabla_r
  PutVarint64(&out, ref_symbols.size());
  out.AppendLengthPrefixed(
      EntropyCompress(ref_symbols, 4, backend));  // B_ref
  return out;
}

Status SparseCodec::DecodeGroup(const ByteBuffer& buffer,
                                const SparseGroupParams& params,
                                std::vector<Polyline>* lines,
                                EntropyBackend backend) {
  lines->clear();
  ByteReader reader(buffer);
  uint64_t num_lines;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &num_lines));
  if (num_lines == 0) return Status::OK();

  ByteBuffer b_len, b_theta_head, b_theta_tail, b_phi_head, b_phi_tail,
      b_nabla_r, b_ref;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_len));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_theta_head));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_theta_tail));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_phi_head));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_phi_tail));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_nabla_r));
  uint64_t num_ref_symbols;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &num_ref_symbols));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&b_ref));

  // Lengths.
  std::vector<uint64_t> lengths;
  DBGC_RETURN_NOT_OK(
      UnsignedValueCodec::Decompress(b_len, &lengths, backend));
  if (lengths.size() != num_lines) {
    return Status::Corruption("sparse codec: length stream mismatch");
  }
  uint64_t total_points = 0;
  for (uint64_t l : lengths) {
    if (l == 0) return Status::Corruption("sparse codec: zero-length line");
    const std::optional<uint64_t> sum = CheckedAdd(total_points, l);
    if (!sum) return Status::Corruption("sparse codec: line length overflow");
    total_points = *sum;
  }
  DBGC_BOUND(total_points, kMaxDecodedElements, "sparse codec point total");
  const uint64_t total_tail = total_points - lengths.size();
  const BoundedAlloc alloc(buffer.size());

  // Theta.
  std::vector<uint8_t> head_bytes, tail_bytes;
  DBGC_RETURN_NOT_OK(DecompressThetaBytes(b_theta_head, backend, &head_bytes));
  DBGC_RETURN_NOT_OK(DecompressThetaBytes(b_theta_tail, backend, &tail_bytes));
  std::vector<int64_t> theta_head_deltas, theta_tail_deltas;
  DBGC_RETURN_NOT_OK(
      FromVarintBytes(head_bytes, num_lines, &theta_head_deltas));
  DBGC_RETURN_NOT_OK(
      FromVarintBytes(tail_bytes, total_tail, &theta_tail_deltas));
  const std::vector<int64_t> theta_heads = DeltaDecode(theta_head_deltas);

  // Phi.
  std::vector<int64_t> phi_head_deltas, phi_tail_deltas;
  DBGC_RETURN_NOT_OK(
      SignedValueCodec::Decompress(b_phi_head, &phi_head_deltas, backend));
  DBGC_RETURN_NOT_OK(
      SignedValueCodec::Decompress(b_phi_tail, &phi_tail_deltas, backend));
  if (phi_head_deltas.size() != num_lines ||
      phi_tail_deltas.size() != total_tail) {
    return Status::Corruption("sparse codec: phi stream mismatch");
  }
  const std::vector<int64_t> phi_heads = DeltaDecode(phi_head_deltas);

  // Rebuild polylines with theta/phi; r is filled by the replay below.
  lines->reserve(lengths.size());  // == num_lines, checked above.
  size_t tail_cursor = 0;
  for (size_t li = 0; li < num_lines; ++li) {
    Polyline line;
    DBGC_RETURN_NOT_OK(alloc.Resize(&line.points, lengths[li],
                                    /*min_bytes_each=*/0, "sparse polyline"));
    line.points[0].theta = theta_heads[li];
    line.points[0].phi = phi_heads[li];
    for (size_t pi = 1; pi < lengths[li]; ++pi) {
      line.points[pi].theta =
          line.points[pi - 1].theta + theta_tail_deltas[tail_cursor];
      line.points[pi].phi =
          line.points[pi - 1].phi + phi_tail_deltas[tail_cursor];
      ++tail_cursor;
    }
    lines->push_back(std::move(line));
  }

  // Radial replay.
  std::vector<int64_t> nabla_r;
  DBGC_RETURN_NOT_OK(
      SignedValueCodec::Decompress(b_nabla_r, &nabla_r, backend));
  if (nabla_r.size() != total_points) {
    return Status::Corruption("sparse codec: nabla_r stream mismatch");
  }
  std::vector<uint32_t> ref_symbols;
  DBGC_RETURN_NOT_OK(
      EntropyDecompress(b_ref, 4, num_ref_symbols, backend, &ref_symbols));

  size_t r_cursor = 0;
  size_t symbol_cursor = 0;
  ConsensusLine consensus;  // Reused across lines; Rebuild keeps capacity.
  for (size_t li = 0; li < lines->size(); ++li) {
    consensus.Rebuild(*lines, li, params.th_phi);
    for (size_t pi = 0; pi < (*lines)[li].size(); ++pi) {
      const RadialDecision d =
          DecideReference(*lines, li, pi, consensus, params);
      int64_t reference = d.reference;
      if (d.needs_symbol) {
        if (symbol_cursor >= ref_symbols.size()) {
          return Status::Corruption("sparse codec: L_ref exhausted");
        }
        const uint32_t symbol = ref_symbols[symbol_cursor++];
        if (static_cast<int>(symbol) >= d.num_candidates) {
          return Status::Corruption("sparse codec: bad L_ref symbol");
        }
        reference = d.candidates[symbol];
      }
      (*lines)[li].points[pi].r = reference + nabla_r[r_cursor++];
    }
  }
  if (symbol_cursor != ref_symbols.size()) {
    return Status::Corruption("sparse codec: L_ref count mismatch");
  }
  return Status::OK();
}

}  // namespace dbgc
