// Coordinate compression of sparse points (Section 3.5, Steps 1-9).
//
// Per group of sparse points:
//   Step 1  coordinate scaling (Quantizer, one per dimension role),
//   Step 2  delta encoding of theta/phi within each polyline,
//   Step 3  heads and tails reorganized into separate sequences,
//   Step 4  polylines concatenated,
//   Step 5  polyline lengths -> arithmetic coding (B_len),
//   Step 6  theta sequences -> delta + Deflate (B_theta_head/B_theta_tail),
//   Step 7  phi sequences -> delta + arithmetic (B_phi_head/B_phi_tail),
//   Step 8  r -> radial-distance-optimized delta encoding (Definition 3.3)
//           against the consensus reference polyline (Algorithm 2), with
//           the L_ref side channel for Situation (2)(b),
//   Step 9  streams assembled into B_sparse.
//
// All Step 8 decisions are made on quantized values that the decompressor
// can reproduce, so only Situation (2)(b)'s choice needs the side channel.

#ifndef DBGC_CORE_SPARSE_CODEC_H_
#define DBGC_CORE_SPARSE_CODEC_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "core/polyline.h"
#include "entropy/entropy_backend.h"

namespace dbgc {

/// Shared encode/decode parameters of one sparse group.
struct SparseGroupParams {
  double step_theta = 0.0;  ///< Scaling factor 2*q_theta for the theta role.
  double step_phi = 0.0;    ///< Scaling factor 2*q_phi for the phi role.
  double step_r = 0.0;      ///< Scaling factor 2*q_r for the r role.
  int64_t th_r = 0;         ///< TH_r in quantized r units.
  int64_t th_phi = 0;       ///< TH_phi in quantized phi units.
  bool radial_optimized = true;  ///< False reproduces the -Radial ablation.
};

/// Encoder/decoder for one group's polylines.
class SparseCodec {
 public:
  /// Encodes the organized polylines of one group into B_sparse_n.
  /// `lines` must be sorted (Section 3.4) with quantized coordinates.
  static ByteBuffer EncodeGroup(const std::vector<Polyline>& lines,
                                const SparseGroupParams& params,
                                EntropyBackend backend = kDefaultEntropyBackend);

  /// Decodes a group stream back into quantized polylines (source_indices
  /// left empty). `backend` must match the encoder's.
  static Status DecodeGroup(const ByteBuffer& buffer,
                            const SparseGroupParams& params,
                            std::vector<Polyline>* lines,
                            EntropyBackend backend = kDefaultEntropyBackend);
};

}  // namespace dbgc

#endif  // DBGC_CORE_SPARSE_CODEC_H_
