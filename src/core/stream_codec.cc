#include "core/stream_codec.h"

#include <cstring>

#include "bitio/varint.h"

namespace dbgc {

namespace {
constexpr uint8_t kStreamMagic[4] = {'D', 'B', 'G', 'S'};
constexpr uint8_t kStreamVersion = 1;
}  // namespace

DbgcStreamWriter::DbgcStreamWriter(DbgcOptions options)
    : codec_(options) {}

Result<size_t> DbgcStreamWriter::AddFrame(const PointCloud& pc) {
  CompressParams params;
  params.q_xyz = codec_.options().q_xyz;
  return AddFrame(pc, params);
}

Result<size_t> DbgcStreamWriter::AddFrame(const PointCloud& pc,
                                          const CompressParams& params) {
  DBGC_ASSIGN_OR_RETURN(ByteBuffer compressed, codec_.Compress(pc, params));
  frame_sizes_.push_back(compressed.size());
  payload_.Append(compressed);
  return static_cast<size_t>(compressed.size());
}

ByteBuffer DbgcStreamWriter::Finish() const {
  ByteBuffer out;
  out.Append(kStreamMagic, 4);
  out.AppendByte(kStreamVersion);
  PutVarint64(&out, frame_sizes_.size());
  for (uint64_t size : frame_sizes_) PutVarint64(&out, size);
  out.Append(payload_);
  return out;
}

Result<DbgcStreamReader> DbgcStreamReader::Open(const ByteBuffer& stream) {
  DbgcStreamReader reader;
  reader.stream_ = &stream;
  ByteReader br(stream);
  uint8_t magic[4];
  DBGC_RETURN_NOT_OK(br.Read(magic, 4));
  if (std::memcmp(magic, kStreamMagic, 4) != 0) {
    return Status::Corruption("stream: bad magic");
  }
  uint8_t version;
  DBGC_RETURN_NOT_OK(br.ReadByte(&version));
  if (version != kStreamVersion) {
    return Status::Corruption("stream: bad version");
  }
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&br, &count));
  // Every frame size costs at least one index byte, so the remaining bytes
  // bound the frame count before the reserve trusts the header.
  const BoundedAlloc alloc(br.remaining());
  std::vector<uint64_t> sizes;
  DBGC_RETURN_NOT_OK(alloc.Reserve(&sizes, count, /*min_bytes_each=*/1,
                                   "stream frame index"));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t size;
    DBGC_RETURN_NOT_OK(GetVarint64(&br, &size));
    sizes.push_back(size);
  }
  size_t offset = br.position();
  for (uint64_t size : sizes) {
    // Subtraction form: offset + size wraps for sizes near 2^64 and would
    // pass the additive comparison.
    DBGC_BOUND(size, stream.size() - offset, "stream frame payload");
    reader.offsets_.push_back(offset);
    reader.sizes_.push_back(size);
    offset += size;
  }
  return reader;
}

Result<size_t> DbgcStreamReader::FrameSize(size_t index) const {
  if (index >= sizes_.size()) {
    return Status::OutOfRange("stream: frame index out of range");
  }
  return sizes_[index];
}

Result<PointCloud> DbgcStreamReader::ReadFrame(size_t index) const {
  if (index >= offsets_.size()) {
    return Status::OutOfRange("stream: frame index out of range");
  }
  ByteBuffer frame;
  frame.Append(stream_->data() + offsets_[index], sizes_[index]);
  return codec_.Decompress(frame);
}

}  // namespace dbgc
