// Multi-frame stream container: the paper's introduction positions
// single-frame compression as "a building block in compressing point cloud
// streams" - this module is that composition. A stream is a header plus a
// sequence of independently decodable DBGC frame bitstreams, so a consumer
// can seek to any frame (the paper's "some downstream applications select
// specific frames of LiDAR data to process").

#ifndef DBGC_CORE_STREAM_CODEC_H_
#define DBGC_CORE_STREAM_CODEC_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "core/dbgc_codec.h"

namespace dbgc {

/// Appends frames to a growing stream.
class DbgcStreamWriter {
 public:
  /// Creates a writer compressing every frame with `options`.
  explicit DbgcStreamWriter(DbgcOptions options = DbgcOptions());

  /// Compresses and appends one frame with the writer's options (their
  /// q_xyz, default entropy backend). Returns its compressed size.
  Result<size_t> AddFrame(const PointCloud& pc);

  /// AddFrame with explicit per-frame params (thread budget, entropy
  /// backend). params.q_xyz is used as-is; each frame records its own
  /// entropy version byte, so backends may vary across a stream.
  Result<size_t> AddFrame(const PointCloud& pc, const CompressParams& params);

  /// Number of frames appended so far.
  size_t frame_count() const { return frame_sizes_.size(); }

  /// Finalizes the stream: header, frame index, frame payloads.
  ByteBuffer Finish() const;

 private:
  DbgcCodec codec_;
  std::vector<uint64_t> frame_sizes_;
  ByteBuffer payload_;
};

/// Random-access reader over a finished stream.
class DbgcStreamReader {
 public:
  /// Parses the stream header and frame index. The buffer must outlive the
  /// reader.
  static Result<DbgcStreamReader> Open(const ByteBuffer& stream);

  /// Number of frames in the stream.
  size_t frame_count() const { return offsets_.size(); }

  /// Compressed size of frame `index` in bytes.
  Result<size_t> FrameSize(size_t index) const;

  /// Decompresses frame `index` (frames are independently decodable).
  Result<PointCloud> ReadFrame(size_t index) const;

 private:
  DbgcStreamReader() = default;

  const ByteBuffer* stream_ = nullptr;
  std::vector<size_t> offsets_;  // Payload offset of each frame.
  std::vector<size_t> sizes_;
  DbgcCodec codec_;
};

}  // namespace dbgc

#endif  // DBGC_CORE_STREAM_CODEC_H_
