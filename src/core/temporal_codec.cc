#include "core/temporal_codec.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "bitio/varint.h"
#include "common/safe_math.h"
#include "encoding/value_codec.h"
#include "entropy/binary_coder.h"
#include "lidar/spherical.h"
#include "obs/metrics.h"

namespace dbgc {

namespace {

constexpr uint8_t kTemporalStreamMagic[4] = {'D', 'B', 'G', 'T'};
constexpr uint8_t kTemporalStreamVersion = 1;

// Occupancy contexts: (left, above, predicted-occupied) -> 8 adaptive
// models. The temporal bit dominates: a cell occupied in the compensated
// reference is very likely occupied again, and the spatial pair captures
// the residual run structure exactly as in the range-image codec.
constexpr size_t kNumContexts = 8;

size_t ContextOf(int left, int above, int predicted) {
  return static_cast<size_t>(left * 2 + above + 4 * predicted);
}

// Sanity limits for header fields parsed from untrusted packets. All are
// far beyond any physical sensor but small enough that arithmetic on the
// accepted values stays finite.
constexpr double kMaxAbsPoseComponent = 1e9;
constexpr double kMaxAbsAngle = 1e6;
constexpr double kMaxAngleStep = 1e6;
constexpr double kMaxRangeStep = 1e9;

bool PoseIsSane(const RigidTransform& pose) {
  return std::isfinite(pose.yaw) && std::fabs(pose.yaw) <= kMaxAbsPoseComponent &&
         std::isfinite(pose.translation.x) &&
         std::fabs(pose.translation.x) <= kMaxAbsPoseComponent &&
         std::isfinite(pose.translation.y) &&
         std::fabs(pose.translation.y) <= kMaxAbsPoseComponent &&
         std::isfinite(pose.translation.z) &&
         std::fabs(pose.translation.z) <= kMaxAbsPoseComponent;
}

/// Wire size of the fixed packet prefix: the frame-type byte plus the
/// four pose doubles (AppendPose/ReadPose).
constexpr size_t kFrameHeaderBytes = 1 + 4 * sizeof(double);

void AppendPose(ByteBuffer* out, const RigidTransform& pose) {
  out->AppendDouble(pose.yaw);
  out->AppendDouble(pose.translation.x);
  out->AppendDouble(pose.translation.y);
  out->AppendDouble(pose.translation.z);
}

Status ReadPose(ByteReader* reader, RigidTransform* pose) {
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&pose->yaw));
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&pose->translation.x));
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&pose->translation.y));
  DBGC_RETURN_NOT_OK(reader->ReadDouble(&pose->translation.z));
  if (!PoseIsSane(*pose)) {
    return Status::Corruption("temporal: implausible pose header");
  }
  return Status::OK();
}

/// The range-image grid a P-frame predicts on. The parameters travel in
/// the packet, so encoder and decoder project the shared reference with
/// bit-identical inputs.
struct GridParams {
  double theta_min = 0.0;
  double phi_max = 0.0;
  double u_theta = 0.0;
  double u_phi = 0.0;
  double step = 0.0;  // Radial quantization step (2 * q_xyz).
  uint64_t width = 0;
  uint64_t height = 0;

  uint64_t area() const { return width * height; }  // Pre-validated.
};

Status ValidateGrid(const GridParams& g) {
  if (!std::isfinite(g.theta_min) || std::fabs(g.theta_min) > kMaxAbsAngle ||
      !std::isfinite(g.phi_max) || std::fabs(g.phi_max) > kMaxAbsAngle ||
      !std::isfinite(g.u_theta) || g.u_theta <= 0.0 ||
      g.u_theta > kMaxAngleStep || !std::isfinite(g.u_phi) ||
      g.u_phi <= 0.0 || g.u_phi > kMaxAngleStep || !std::isfinite(g.step) ||
      g.step <= 0.0 || g.step > kMaxRangeStep) {
    return Status::Corruption("temporal: implausible grid header");
  }
  if (g.width == 0 || g.height == 0) {
    return Status::Corruption("temporal: implausible grid");
  }
  DBGC_BOUND(g.width, kMaxDecodedElements, "temporal grid width");
  DBGC_BOUND(g.height, kMaxDecodedElements, "temporal grid height");
  const std::optional<uint64_t> area = CheckedMul(g.width, g.height);
  if (!area || *area > kMaxDecodedElements) {
    return Status::Corruption("temporal: implausible grid");
  }
  return Status::OK();
}

Result<GridParams> GridFromSensor(const SensorMetadata& sensor,
                                  double q_xyz) {
  if (q_xyz <= 0) {
    return Status::InvalidArgument("temporal: q_xyz must be positive");
  }
  if (sensor.horizontal_samples <= 0 || sensor.vertical_samples <= 0) {
    return Status::InvalidArgument("temporal: sensor sample counts");
  }
  GridParams g;
  g.theta_min = sensor.theta_min;
  g.phi_max = sensor.phi_max;
  g.u_theta = sensor.AzimuthStep();
  g.u_phi = sensor.PolarStep();
  g.step = 2.0 * q_xyz;
  g.width = static_cast<uint64_t>(sensor.horizontal_samples);
  g.height = static_cast<uint64_t>(sensor.vertical_samples);
  DBGC_RETURN_NOT_OK(ValidateGrid(g));
  return g;
}

/// Quantized occupancy grid: the common representation of the current
/// frame and the compensated reference on both sides of the wire.
struct RangeGrid {
  std::vector<uint8_t> occupied;
  std::vector<int64_t> q;  // Quantized radial value where occupied.
  size_t num_occupied = 0;
};

/// Projects a cloud onto the grid, keeping the nearest return per cell
/// (the sensor's own multi-echo behaviour), then quantizes at g.step.
RangeGrid ProjectToGrid(const PointCloud& pc, const GridParams& g) {
  const size_t area = static_cast<size_t>(g.area());
  std::vector<double> range(area, std::numeric_limits<double>::infinity());
  const int width = static_cast<int>(g.width);
  const int height = static_cast<int>(g.height);
  for (const Point3& p : pc) {
    const SphericalPoint s = CartesianToSpherical(p);
    int col =
        static_cast<int>(std::floor((s.theta - g.theta_min) / g.u_theta));
    int row = static_cast<int>(std::floor((g.phi_max - s.phi) / g.u_phi));
    if (col < 0) col = 0;
    if (col >= width) col = width - 1;
    if (row < 0) row = 0;
    if (row >= height) row = height - 1;
    double& cell = range[static_cast<size_t>(row) * g.width + col];
    if (s.r < cell) cell = s.r;
  }
  RangeGrid grid;
  grid.occupied.assign(area, 0);
  grid.q.assign(area, 0);
  for (size_t i = 0; i < area; ++i) {
    if (!std::isfinite(range[i])) continue;
    grid.occupied[i] = 1;
    grid.q[i] = static_cast<int64_t>(std::llround(range[i] / g.step));
    ++grid.num_occupied;
  }
  return grid;
}

/// Reconstructs the cloud a grid represents: cell-center directions at the
/// quantized radius. Scan order (row-major) fixes the point order, so both
/// sides of the wire hold bit-identical references.
PointCloud ReconstructFromGrid(const GridParams& g, const RangeGrid& grid) {
  PointCloud pc;
  pc.Reserve(grid.num_occupied);
  for (uint64_t row = 0; row < g.height; ++row) {
    for (uint64_t col = 0; col < g.width; ++col) {
      const size_t idx = static_cast<size_t>(row * g.width + col);
      if (!grid.occupied[idx]) continue;
      const double r = static_cast<double>(grid.q[idx]) * g.step;
      const double theta =
          g.theta_min + (static_cast<double>(col) + 0.5) * g.u_theta;
      const double phi =
          g.phi_max - (static_cast<double>(row) + 0.5) * g.u_phi;
      pc.Add(SphericalToCartesian(SphericalPoint{theta, phi, r}));
    }
  }
  return pc;
}

bool SamePose(const RigidTransform& a, const RigidTransform& b) {
  return a.yaw == b.yaw && a.translation == b.translation;
}

/// Maps the reference cloud from its capture pose into the current
/// sensor frame. Identical FP operations on both sides (the poses
/// round-trip through the packet header bit-exactly), so encoder and
/// decoder predictions agree to the bit.
PointCloud CompensateReference(const PointCloud& ref,
                               const RigidTransform& ref_pose,
                               const RigidTransform& cur_pose) {
  if (SamePose(ref_pose, cur_pose)) return ref;
  const RigidTransform inv = cur_pose.Inverse();
  PointCloud out;
  out.Reserve(ref.size());
  for (const Point3& p : ref) out.Add(inv.Apply(ref_pose.Apply(p)));
  return out;
}

/// Error-path accounting for the temporal container, mirroring the
/// GeometryCodec NVI: one increment per failed DecodeFrame, labeled
/// codec=Temporal plus the status code.
void CountTemporalDecodeError(StatusCode code) {
  obs::MetricsRegistry::Global()
      .GetCounter(obs::LabeledName(
          "decode_error_total",
          {{"codec", "Temporal"}, {"reason", StatusCodeToString(code)}}))
      ->Increment();
}

}  // namespace

bool IsTemporalFrameType(uint8_t b) {
  return b == kTemporalFrameIntra || b == kTemporalFramePredicted;
}

Result<PointCloud> TemporalGridReconstruction(const PointCloud& pc,
                                              double q_xyz,
                                              const SensorMetadata& sensor) {
  DBGC_ASSIGN_OR_RETURN(GridParams grid, GridFromSensor(sensor, q_xyz));
  return ReconstructFromGrid(grid, ProjectToGrid(pc, grid));
}

// --- TemporalEncoder --------------------------------------------------------

TemporalEncoder::TemporalEncoder(TemporalConfig config)
    : config_(std::move(config)), intra_codec_(config_.intra_options) {}

void TemporalEncoder::Reset() {
  has_reference_ = false;
  frames_until_key_ = 0;
  reference_ = PointCloud();
}

bool TemporalEncoder::next_is_keyframe() const {
  return !has_reference_ || frames_until_key_ == 0;
}

Result<ByteBuffer> TemporalEncoder::EncodeFrame(const PointCloud& pc,
                                                const RigidTransform& pose) {
  CompressParams params;
  params.q_xyz = config_.intra_options.q_xyz;
  return EncodeFrame(pc, pose, params);
}

Result<ByteBuffer> TemporalEncoder::EncodeFrame(const PointCloud& pc,
                                                const RigidTransform& pose,
                                                const CompressParams& params) {
  if (!PoseIsSane(pose)) {
    return Status::InvalidArgument("temporal: pose must be finite");
  }
  if (config_.keyframe_interval < 1) {
    return Status::InvalidArgument("temporal: keyframe_interval must be >= 1");
  }
  if (next_is_keyframe()) {
    ByteBuffer out;
    out.AppendByte(kTemporalFrameIntra);
    AppendPose(&out, pose);
    DBGC_ASSIGN_OR_RETURN(ByteBuffer intra, intra_codec_.Compress(pc, params));
    // Closed loop: the reference is the cloud the decoder will hold, i.e.
    // the decoded I-frame, not the input.
    DecompressParams dec;
    dec.pool = params.pool;
    dec.max_threads = params.max_threads;
    DBGC_ASSIGN_OR_RETURN(reference_, intra_codec_.Decompress(intra, dec));
    out.Append(intra);
    reference_pose_ = pose;
    has_reference_ = true;
    frames_until_key_ = config_.keyframe_interval - 1;
    return out;
  }

  DBGC_ASSIGN_OR_RETURN(GridParams grid,
                        GridFromSensor(config_.sensor, params.q_xyz));
  const RangeGrid cur = ProjectToGrid(pc, grid);
  const RangeGrid pred = ProjectToGrid(
      CompensateReference(reference_, reference_pose_, pose), grid);

  BinaryEncoder occupancy(kNumContexts, params.entropy_backend);
  std::vector<int64_t> residuals;
  std::vector<int64_t> novel;
  residuals.reserve(cur.num_occupied);
  for (uint64_t row = 0; row < grid.height; ++row) {
    int64_t prev = 0;
    for (uint64_t col = 0; col < grid.width; ++col) {
      const size_t idx = static_cast<size_t>(row * grid.width + col);
      const int bit = cur.occupied[idx];
      const int left = col > 0 ? cur.occupied[idx - 1] : 0;
      const int above = row > 0 ? cur.occupied[idx - grid.width] : 0;
      occupancy.EncodeBit(ContextOf(left, above, pred.occupied[idx]), bit);
      if (!bit) continue;
      if (pred.occupied[idx]) {
        residuals.push_back(cur.q[idx] - pred.q[idx]);
      } else {
        novel.push_back(cur.q[idx] - prev);
      }
      prev = cur.q[idx];
    }
  }

  ByteBuffer out;
  out.AppendByte(kTemporalFramePredicted);
  AppendPose(&out, pose);
  out.AppendByte(EntropyVersionByte(params.entropy_backend));
  out.AppendDouble(grid.theta_min);
  out.AppendDouble(grid.phi_max);
  out.AppendDouble(grid.u_theta);
  out.AppendDouble(grid.u_phi);
  out.AppendDouble(grid.step);
  PutVarint64(&out, grid.width);
  PutVarint64(&out, grid.height);
  out.AppendLengthPrefixed(occupancy.Finish());
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(residuals, params.entropy_backend));
  out.AppendLengthPrefixed(
      SignedValueCodec::Compress(novel, params.entropy_backend));

  reference_ = ReconstructFromGrid(grid, cur);
  reference_pose_ = pose;
  --frames_until_key_;
  return out;
}

// --- TemporalDecoder --------------------------------------------------------

TemporalDecoder::TemporalDecoder(DbgcOptions intra_options,
                                 bool count_decode_errors)
    : intra_codec_(intra_options), count_decode_errors_(count_decode_errors) {}

void TemporalDecoder::Reset() {
  has_reference_ = false;
  reference_ = PointCloud();
}

Result<PointCloud> TemporalDecoder::DecodeFrame(const ByteBuffer& frame) {
  return DecodeFrame(frame, DecompressParams());
}

Result<PointCloud> TemporalDecoder::DecodeFrame(const ByteBuffer& frame,
                                                const DecompressParams& params) {
  Result<PointCloud> result = DecodeFrameImpl(frame, params);
  if (!result.ok()) {
    // Fail closed: a damaged stream yields no further P-frames until the
    // next keyframe rebuilds the reference.
    Reset();
    if (count_decode_errors_) {
      CountTemporalDecodeError(result.status().code());
    }
  }
  return result;
}

Result<PointCloud> TemporalDecoder::DecodeFrameImpl(
    const ByteBuffer& frame, const DecompressParams& params) {
  if (frame.size() == 0) {
    return Status::Corruption("temporal: empty frame packet");
  }
  const uint8_t type = frame[0];
  if (!IsTemporalFrameType(type)) {
    return Status::Corruption("temporal: unknown frame-type byte");
  }
  ByteReader reader(frame.data() + 1, frame.size() - 1);
  RigidTransform pose;
  DBGC_RETURN_NOT_OK(ReadPose(&reader, &pose));

  if (type == kTemporalFrameIntra) {
    // ReadPose consumed exactly the fixed header, so the intra payload is
    // the remainder of the packet.
    ByteBuffer payload;
    payload.Append(frame.data() + kFrameHeaderBytes,
                   frame.size() - kFrameHeaderBytes);
    DBGC_ASSIGN_OR_RETURN(PointCloud cloud,
                          intra_codec_.Decompress(payload, params));
    reference_ = cloud;
    reference_pose_ = pose;
    has_reference_ = true;
    return cloud;
  }

  if (!has_reference_) {
    return Status::InvalidArgument(
        "temporal: P-frame without reference (awaiting keyframe)");
  }

  uint8_t version;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&version));
  EntropyBackend backend;
  if (!EntropyBackendFromVersionByte(version, &backend)) {
    return Status::Corruption("temporal: unsupported entropy version byte");
  }
  GridParams grid;
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&grid.theta_min));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&grid.phi_max));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&grid.u_theta));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&grid.u_phi));
  DBGC_RETURN_NOT_OK(reader.ReadDouble(&grid.step));
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &grid.width));
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &grid.height));
  DBGC_RETURN_NOT_OK(ValidateGrid(grid));

  const BoundedAlloc alloc(reader.remaining());
  ByteBuffer occupancy_stream, residual_stream, novel_stream;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&occupancy_stream));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&residual_stream));
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&novel_stream));

  const RangeGrid pred =
      ProjectToGrid(CompensateReference(reference_, reference_pose_, pose),
                    grid);

  std::vector<int64_t> residuals, novel;
  DBGC_RETURN_NOT_OK(
      SignedValueCodec::Decompress(residual_stream, &residuals, backend));
  DBGC_RETURN_NOT_OK(
      SignedValueCodec::Decompress(novel_stream, &novel, backend));

  BinaryDecoder occupancy(occupancy_stream, kNumContexts, backend);
  RangeGrid cur;
  // Occupancy bits are entropy-coded (no whole-byte floor per cell), so
  // the grid is bounded by the absolute element cap, not stream bytes.
  DBGC_RETURN_NOT_OK(alloc.Resize(&cur.occupied, grid.area(),
                                  /*min_bytes_each=*/0, "temporal bitmap"));
  DBGC_RETURN_NOT_OK(alloc.Resize(&cur.q, grid.area(), /*min_bytes_each=*/0,
                                  "temporal radial grid"));
  size_t residual_cursor = 0, novel_cursor = 0;
  for (uint64_t row = 0; row < grid.height; ++row) {
    int64_t prev = 0;
    for (uint64_t col = 0; col < grid.width; ++col) {
      const size_t idx = static_cast<size_t>(row * grid.width + col);
      const int left = col > 0 ? cur.occupied[idx - 1] : 0;
      const int above = row > 0 ? cur.occupied[idx - grid.width] : 0;
      const int bit =
          occupancy.DecodeBit(ContextOf(left, above, pred.occupied[idx]));
      cur.occupied[idx] = static_cast<uint8_t>(bit);
      if (!bit) continue;
      ++cur.num_occupied;
      if (pred.occupied[idx]) {
        if (residual_cursor >= residuals.size()) {
          return Status::Corruption("temporal: residual channel underrun");
        }
        cur.q[idx] = pred.q[idx] + residuals[residual_cursor++];
      } else {
        if (novel_cursor >= novel.size()) {
          return Status::Corruption("temporal: novel channel underrun");
        }
        cur.q[idx] = prev + novel[novel_cursor++];
      }
      prev = cur.q[idx];
    }
  }
  if (residual_cursor != residuals.size() || novel_cursor != novel.size()) {
    return Status::Corruption("temporal: radial channel mismatch");
  }

  PointCloud cloud = ReconstructFromGrid(grid, cur);
  reference_ = cloud;
  reference_pose_ = pose;
  return cloud;
}

// --- Stream container -------------------------------------------------------

TemporalStreamWriter::TemporalStreamWriter(TemporalConfig config)
    : encoder_(std::move(config)) {}

Result<size_t> TemporalStreamWriter::AddFrame(const PointCloud& pc,
                                              const RigidTransform& pose) {
  CompressParams params;
  params.q_xyz = encoder_.config().intra_options.q_xyz;
  return AddFrame(pc, pose, params);
}

Result<size_t> TemporalStreamWriter::AddFrame(const PointCloud& pc,
                                              const RigidTransform& pose,
                                              const CompressParams& params) {
  DBGC_ASSIGN_OR_RETURN(ByteBuffer packet,
                        encoder_.EncodeFrame(pc, pose, params));
  frame_sizes_.push_back(packet.size());
  payload_.Append(packet);
  return static_cast<size_t>(packet.size());
}

ByteBuffer TemporalStreamWriter::Finish() const {
  ByteBuffer out;
  out.Append(kTemporalStreamMagic, 4);
  out.AppendByte(kTemporalStreamVersion);
  PutVarint64(&out, frame_sizes_.size());
  for (uint64_t size : frame_sizes_) PutVarint64(&out, size);
  out.Append(payload_);
  return out;
}

Result<TemporalStreamReader> TemporalStreamReader::Open(
    const ByteBuffer& stream, DbgcOptions intra_options) {
  TemporalStreamReader reader;
  reader.stream_ = &stream;
  reader.decoder_ =
      TemporalDecoder(intra_options, /*count_decode_errors=*/false);
  ByteReader br(stream);
  uint8_t magic[4];
  DBGC_RETURN_NOT_OK(br.Read(magic, 4));
  if (std::memcmp(magic, kTemporalStreamMagic, 4) != 0) {
    return Status::Corruption("temporal stream: bad magic");
  }
  uint8_t version;
  DBGC_RETURN_NOT_OK(br.ReadByte(&version));
  if (version != kTemporalStreamVersion) {
    return Status::Corruption("temporal stream: bad version");
  }
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&br, &count));
  // Every frame size costs at least one index byte, so the remaining
  // bytes bound the frame count before the reserve trusts the header.
  const BoundedAlloc alloc(br.remaining());
  std::vector<uint64_t> sizes;
  DBGC_RETURN_NOT_OK(alloc.Reserve(&sizes, count, /*min_bytes_each=*/1,
                                   "temporal stream frame index"));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t size;
    DBGC_RETURN_NOT_OK(GetVarint64(&br, &size));
    sizes.push_back(size);
  }
  size_t offset = br.position();
  for (uint64_t size : sizes) {
    // Subtraction form: offset + size wraps for sizes near 2^64 and would
    // pass the additive comparison.
    DBGC_BOUND(size, stream.size() - offset, "temporal stream frame payload");
    reader.offsets_.push_back(offset);
    reader.sizes_.push_back(static_cast<size_t>(size));
    offset += static_cast<size_t>(size);
  }
  return reader;
}

Result<size_t> TemporalStreamReader::FrameSize(size_t index) const {
  if (index >= sizes_.size()) {
    return Status::OutOfRange("temporal stream: frame index out of range");
  }
  return sizes_[index];
}

Result<uint8_t> TemporalStreamReader::FrameType(size_t index) const {
  if (index >= sizes_.size()) {
    return Status::OutOfRange("temporal stream: frame index out of range");
  }
  if (sizes_[index] == 0) {
    return Status::Corruption("temporal stream: empty frame packet");
  }
  return (*stream_)[offsets_[index]];
}

Result<ByteBuffer> TemporalStreamReader::FramePacket(size_t index) const {
  if (index >= sizes_.size()) {
    return Status::OutOfRange("temporal stream: frame index out of range");
  }
  ByteBuffer packet;
  packet.Append(stream_->data() + offsets_[index], sizes_[index]);
  return packet;
}

Result<PointCloud> TemporalStreamReader::DecodeNext(
    const DecompressParams& params) {
  DBGC_ASSIGN_OR_RETURN(ByteBuffer packet, FramePacket(next_));
  ++next_;  // A damaged frame is still consumed.
  return decoder_.DecodeFrame(packet, params);
}

Result<PointCloud> TemporalStreamReader::DecodeNext() {
  return DecodeNext(DecompressParams());
}

Status TemporalStreamReader::SkipNext() {
  if (next_ >= sizes_.size()) {
    return Status::OutOfRange("temporal stream: frame index out of range");
  }
  ++next_;
  decoder_.Reset();
  return Status::OK();
}

}  // namespace dbgc
