// Temporal (inter-frame) compression for the streaming path (ROADMAP
// item 1, docs/TEMPORAL.md). The paper compresses every frame
// independently; a 10 Hz sensor stream is temporally coherent, so this
// module adds a video-style I/P-frame scheme on top of the existing
// intra codecs:
//
//   * I-frames ("keyframes") are ordinary DBGC bitstreams — the intra
//     codecs are unchanged and every I-frame is independently decodable;
//   * P-frames predict the current frame from the previous *decoded*
//     frame: the reference cloud is ego-motion-compensated with the pose
//     delta carried in the frame header, both clouds are projected onto
//     the sensor's range-image grid, and the per-cell quantized radial
//     values are coded as residuals against the prediction (novel cells
//     fall back to the per-ring spatial delta of the range-image codec).
//
// Prediction is closed-loop: the encoder maintains the same decoded
// reference the decoder will hold, so P-frame reconstruction is exactly
// the grid-quantized reconstruction of the input frame (radial error
// <= q_xyz at the sampled direction; see TemporalGridReconstruction).
// Every frame packet starts with a frame-type byte that fails closed on
// unknown values, followed by the sensor pose, so a transport can
// dispatch and reorder-detect without decoding. Loss recovery: a decoder
// that misses any frame calls Reset() and resynchronizes at the next
// I-frame, byte-identically with an uninterrupted decoder.

#ifndef DBGC_CORE_TEMPORAL_CODEC_H_
#define DBGC_CORE_TEMPORAL_CODEC_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "common/transforms.h"
#include "core/dbgc_codec.h"
#include "lidar/sensor_model.h"

namespace dbgc {

/// Frame-type byte: an intra-coded keyframe ('I'). Disjoint from the
/// entropy version bytes (0x01/0x02) that open intra bitstreams, so a
/// transport can tell temporal packets from bare codec payloads.
inline constexpr uint8_t kTemporalFrameIntra = 0x49;
/// Frame-type byte: a predicted frame ('P').
inline constexpr uint8_t kTemporalFramePredicted = 0x50;

/// True iff `b` is a known temporal frame-type byte. Decoders fail closed
/// (Status::Corruption) on anything else.
bool IsTemporalFrameType(uint8_t b);

/// Configuration shared by the temporal encoder and stream writer.
struct TemporalConfig {
  /// Period of the I/P pattern: one keyframe every `keyframe_interval`
  /// frames (1 = intra-only). Bounds the resync delay after a loss.
  int keyframe_interval = 8;
  /// Range-image grid used for P-frame prediction. P-frames are
  /// self-describing (the grid travels in the packet), so the decode side
  /// needs no copy of this.
  SensorMetadata sensor = SensorMetadata::VelodyneHdl64e();
  /// Options for the intra (I-frame) codec.
  DbgcOptions intra_options;
};

/// Stateful temporal encoder: compresses a pose-stamped frame sequence
/// into self-contained I/P packets. Frames must be fed in capture order.
class TemporalEncoder {
 public:
  explicit TemporalEncoder(TemporalConfig config = TemporalConfig());

  /// Compresses the next frame of the stream. `pose` maps sensor
  /// coordinates to world coordinates at capture time; P-frames use the
  /// pose delta against the previous frame for motion compensation.
  /// q_xyz, thread budget, and entropy backend come from `params`.
  Result<ByteBuffer> EncodeFrame(const PointCloud& pc,
                                 const RigidTransform& pose,
                                 const CompressParams& params);

  /// EncodeFrame with default params (q_xyz from the intra options).
  Result<ByteBuffer> EncodeFrame(const PointCloud& pc,
                                 const RigidTransform& pose);

  /// Drops the reference state: the next frame is forced to an I-frame
  /// (e.g. after a session reset).
  void Reset();

  /// True when the next EncodeFrame will emit a keyframe.
  bool next_is_keyframe() const;

  const TemporalConfig& config() const { return config_; }

 private:
  TemporalConfig config_;
  DbgcCodec intra_codec_;
  int frames_until_key_ = 0;   // 0 = next frame is an I-frame.
  bool has_reference_ = false;
  PointCloud reference_;       // Previous decoded cloud, sensor-local.
  RigidTransform reference_pose_;
};

/// Stateful temporal decoder: the receive side of TemporalEncoder.
/// Frames must be fed in capture order; after a gap (lost or corrupt
/// packet) every P-frame fails with InvalidArgument until the next
/// I-frame restores the reference.
class TemporalDecoder {
 public:
  /// `count_decode_errors` controls decode_error_total{codec=Temporal}
  /// accounting: exactly one increment per failed DecodeFrame when true.
  explicit TemporalDecoder(DbgcOptions intra_options = DbgcOptions(),
                           bool count_decode_errors = true);

  /// Decodes one frame packet. Any failure drops the reference, so the
  /// stream fails closed until the next keyframe.
  Result<PointCloud> DecodeFrame(const ByteBuffer& frame,
                                 const DecompressParams& params);

  /// DecodeFrame with default (serial) params.
  Result<PointCloud> DecodeFrame(const ByteBuffer& frame);

  /// Models a known loss: drops the reference so P-frames are refused
  /// until the next I-frame.
  void Reset();

  /// True when a P-frame can currently be decoded.
  bool has_reference() const { return has_reference_; }

 private:
  Result<PointCloud> DecodeFrameImpl(const ByteBuffer& frame,
                                     const DecompressParams& params);

  DbgcCodec intra_codec_;
  bool count_decode_errors_;
  bool has_reference_ = false;
  PointCloud reference_;       // Previous decoded cloud, sensor-local.
  RigidTransform reference_pose_;
};

/// The conformance oracle for P-frames: projects `pc` onto the sensor's
/// range-image grid (nearest return per cell), quantizes radii at
/// 2 * q_xyz, and reconstructs at cell centers. A decoded P-frame equals
/// this cloud exactly — prediction only changes the bits on the wire,
/// never the reconstruction (docs/TEMPORAL.md).
Result<PointCloud> TemporalGridReconstruction(const PointCloud& pc,
                                              double q_xyz,
                                              const SensorMetadata& sensor);

/// Appends pose-stamped frames to a growing temporal stream ("DBGT"
/// container: header, frame index, concatenated I/P packets).
class TemporalStreamWriter {
 public:
  explicit TemporalStreamWriter(TemporalConfig config = TemporalConfig());

  /// Compresses and appends one frame with default params (q_xyz from the
  /// intra options). Returns its compressed size.
  Result<size_t> AddFrame(const PointCloud& pc, const RigidTransform& pose);

  /// AddFrame with explicit per-frame params (thread budget, entropy
  /// backend). Each packet records its own entropy version byte.
  Result<size_t> AddFrame(const PointCloud& pc, const RigidTransform& pose,
                          const CompressParams& params);

  /// Number of frames appended so far.
  size_t frame_count() const { return frame_sizes_.size(); }

  /// Finalizes the stream: header, frame index, frame packets.
  ByteBuffer Finish() const;

 private:
  TemporalEncoder encoder_;
  std::vector<uint64_t> frame_sizes_;
  ByteBuffer payload_;
};

/// Sequential reader over a finished temporal stream. Unlike the intra
/// DbgcStreamReader, frames are *not* independently decodable: DecodeNext
/// walks the stream in order, and SkipNext models a lost packet (the
/// decoder then resynchronizes at the next keyframe).
class TemporalStreamReader {
 public:
  /// Parses the stream header and frame index. The buffer must outlive
  /// the reader.
  static Result<TemporalStreamReader> Open(
      const ByteBuffer& stream, DbgcOptions intra_options = DbgcOptions());

  /// Number of frames in the stream.
  size_t frame_count() const { return offsets_.size(); }
  /// Frames consumed so far (decoded or skipped).
  size_t position() const { return next_; }

  /// Compressed size of frame `index` in bytes.
  Result<size_t> FrameSize(size_t index) const;
  /// The frame-type byte of frame `index` (no validation beyond bounds).
  Result<uint8_t> FrameType(size_t index) const;
  /// Raw packet of frame `index` — for transports that re-frame packets
  /// (e.g. the fleet session protocol).
  Result<ByteBuffer> FramePacket(size_t index) const;

  /// Decodes the next frame in stream order.
  Result<PointCloud> DecodeNext(const DecompressParams& params);
  Result<PointCloud> DecodeNext();

  /// Drops the next frame without decoding it (a modeled packet loss);
  /// later P-frames fail until the next I-frame.
  Status SkipNext();

 private:
  TemporalStreamReader() = default;

  const ByteBuffer* stream_ = nullptr;
  std::vector<size_t> offsets_;
  std::vector<size_t> sizes_;
  size_t next_ = 0;
  TemporalDecoder decoder_{DbgcOptions(), /*count_decode_errors=*/false};
};

}  // namespace dbgc

#endif  // DBGC_CORE_TEMPORAL_CODEC_H_
