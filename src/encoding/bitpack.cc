#include "encoding/bitpack.h"

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/varint.h"

namespace dbgc {

int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

ByteBuffer BitPack(const std::vector<uint64_t>& values) {
  uint64_t max_v = 0;
  for (uint64_t v : values) max_v = max_v < v ? v : max_v;
  const int width = BitWidth(max_v);

  ByteBuffer out;
  PutVarint64(&out, values.size());
  out.AppendByte(static_cast<uint8_t>(width));
  if (width > 0) {
    BitWriter writer;
    for (uint64_t v : values) writer.WriteBits(v, width);
    out.Append(writer.Finish());
  }
  return out;
}

Status BitUnpack(const ByteBuffer& buf, std::vector<uint64_t>* out) {
  out->clear();
  ByteReader reader(buf);
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  uint8_t width;
  DBGC_RETURN_NOT_OK(reader.ReadByte(&width));
  if (width > 64) return Status::Corruption("bitpack: width > 64");
  out->reserve(count);
  if (width == 0) {
    out->assign(count, 0);
    return Status::OK();
  }
  BitReader bits(buf.data() + reader.position(),
                 buf.size() - reader.position());
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v;
    DBGC_RETURN_NOT_OK(bits.ReadBits(width, &v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace dbgc
