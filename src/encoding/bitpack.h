// Fixed-width bit-packing of unsigned integer sequences (the "bit-packing
// encoding" building block of [6, 18]). Width is chosen from the maximum
// value and stored in the stream.

#ifndef DBGC_ENCODING_BITPACK_H_
#define DBGC_ENCODING_BITPACK_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// Number of bits needed to represent v (0 -> 0 bits).
int BitWidth(uint64_t v);

/// Packs `values` at the minimal fixed width.
ByteBuffer BitPack(const std::vector<uint64_t>& values);

/// Unpacks a BitPack stream.
Status BitUnpack(const ByteBuffer& buf, std::vector<uint64_t>* out);

}  // namespace dbgc

#endif  // DBGC_ENCODING_BITPACK_H_
