#include "encoding/delta.h"

namespace dbgc {

std::vector<int64_t> DeltaEncode(const std::vector<int64_t>& values) {
  std::vector<int64_t> out;
  out.reserve(values.size());
  int64_t prev = 0;
  bool first = true;
  for (int64_t v : values) {
    if (first) {
      out.push_back(v);
      first = false;
    } else {
      out.push_back(v - prev);
    }
    prev = v;
  }
  return out;
}

std::vector<int64_t> DeltaDecode(const std::vector<int64_t>& deltas) {
  std::vector<int64_t> out;
  out.reserve(deltas.size());
  int64_t acc = 0;
  bool first = true;
  for (int64_t d : deltas) {
    if (first) {
      acc = d;
      first = false;
    } else {
      acc += d;
    }
    out.push_back(acc);
  }
  return out;
}

std::vector<int64_t> DeltaEncodeWithBase(const std::vector<int64_t>& values,
                                         int64_t base) {
  std::vector<int64_t> out;
  out.reserve(values.size());
  int64_t prev = base;
  for (int64_t v : values) {
    out.push_back(v - prev);
    prev = v;
  }
  return out;
}

std::vector<int64_t> DeltaDecodeWithBase(const std::vector<int64_t>& deltas,
                                         int64_t base) {
  std::vector<int64_t> out;
  out.reserve(deltas.size());
  int64_t acc = base;
  for (int64_t d : deltas) {
    acc += d;
    out.push_back(acc);
  }
  return out;
}

}  // namespace dbgc
