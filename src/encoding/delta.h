// Delta encoding (Definition 2.3): L -> (v1, v2-v1, ..., vn-v_{n-1}).
// The first element is carried through unchanged so the transform is
// invertible without side information.

#ifndef DBGC_ENCODING_DELTA_H_
#define DBGC_ENCODING_DELTA_H_

#include <cstdint>
#include <vector>

namespace dbgc {

/// In-place-free delta transform; returns the delta sequence.
std::vector<int64_t> DeltaEncode(const std::vector<int64_t>& values);

/// Inverse of DeltaEncode (prefix sum).
std::vector<int64_t> DeltaDecode(const std::vector<int64_t>& deltas);

/// Delta transform against an explicit initial predictor value, so the
/// first element is also stored as a difference.
std::vector<int64_t> DeltaEncodeWithBase(const std::vector<int64_t>& values,
                                         int64_t base);

/// Inverse of DeltaEncodeWithBase.
std::vector<int64_t> DeltaDecodeWithBase(const std::vector<int64_t>& deltas,
                                         int64_t base);

}  // namespace dbgc

#endif  // DBGC_ENCODING_DELTA_H_
