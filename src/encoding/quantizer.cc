#include "encoding/quantizer.h"

// Quantizer is fully inline; this file anchors the module in the library.

namespace dbgc {}  // namespace dbgc
