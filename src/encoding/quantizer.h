// Error-bound coordinate scaling and rounding (Section 3.5, Step 1).
//
// Given an error bound q on a dimension, the quantizer divides values by the
// scaling factor 2q and rounds to the nearest integer. Reconstruction
// multiplies back, so the round-trip error is at most 0.5 * 2q = q.

#ifndef DBGC_ENCODING_QUANTIZER_H_
#define DBGC_ENCODING_QUANTIZER_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace dbgc {

/// Scalar quantizer with step 2q for error bound q.
class Quantizer {
 public:
  /// Creates a quantizer for error bound q (> 0).
  explicit Quantizer(double error_bound)
      : step_(2.0 * error_bound), inv_step_(1.0 / (2.0 * error_bound)) {}

  /// The error bound q.
  double error_bound() const { return step_ / 2.0; }
  /// The scaling factor 2q.
  double step() const { return step_; }

  /// Quantizes one value: round(v / 2q).
  int64_t Quantize(double v) const {
    return static_cast<int64_t>(std::llround(v * inv_step_));
  }

  /// Reconstructs a value: i * 2q. |Reconstruct(Quantize(v)) - v| <= q.
  double Reconstruct(int64_t i) const { return static_cast<double>(i) * step_; }

  /// Quantizes a sequence.
  std::vector<int64_t> QuantizeAll(const std::vector<double>& values) const {
    std::vector<int64_t> out;
    out.reserve(values.size());
    for (double v : values) out.push_back(Quantize(v));
    return out;
  }

  /// Reconstructs a sequence.
  std::vector<double> ReconstructAll(const std::vector<int64_t>& values) const {
    std::vector<double> out;
    out.reserve(values.size());
    for (int64_t v : values) out.push_back(Reconstruct(v));
    return out;
  }

 private:
  double step_;
  double inv_step_;
};

}  // namespace dbgc

#endif  // DBGC_ENCODING_QUANTIZER_H_
