#include "encoding/rle.h"

#include "bitio/varint.h"

namespace dbgc {

ByteBuffer RleEncode(const std::vector<int64_t>& values) {
  ByteBuffer out;
  PutVarint64(&out, values.size());
  size_t i = 0;
  while (i < values.size()) {
    const int64_t v = values[i];
    size_t run = 1;
    while (i + run < values.size() && values[i + run] == v) ++run;
    PutSignedVarint64(&out, v);
    PutVarint64(&out, run);
    i += run;
  }
  return out;
}

Status RleDecode(const ByteBuffer& buf, std::vector<int64_t>* out) {
  out->clear();
  ByteReader reader(buf);
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  // A single two-byte run can decode to arbitrarily many values, so the
  // reservation is speculative (clamped); the vector grows on demand.
  const BoundedAlloc alloc(reader.remaining());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(out, count, "rle values"));
  while (out->size() < count) {
    int64_t v;
    uint64_t run;
    DBGC_RETURN_NOT_OK(GetSignedVarint64(&reader, &v));
    DBGC_RETURN_NOT_OK(GetVarint64(&reader, &run));
    if (run == 0) return Status::Corruption("rle: bad run length");
    DBGC_BOUND(run, count - out->size(), "rle run length");
    out->insert(out->end(), run, v);
  }
  return Status::OK();
}

}  // namespace dbgc
