// Run-length encoding of integer sequences: (value, run) pairs as
// zigzag/plain varints. One of the lightweight database compression schemes
// surveyed in [18]; used for sparse side-channels.

#ifndef DBGC_ENCODING_RLE_H_
#define DBGC_ENCODING_RLE_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// Encodes `values` as (value, run-length) pairs.
ByteBuffer RleEncode(const std::vector<int64_t>& values);

/// Decodes an RleEncode stream.
Status RleDecode(const ByteBuffer& buf, std::vector<int64_t>* out);

}  // namespace dbgc

#endif  // DBGC_ENCODING_RLE_H_
