#include "encoding/value_codec.h"

#include <algorithm>

#include "bitio/varint.h"
#include "entropy/entropy_coder.h"

namespace dbgc {

namespace {

// Hybrid alphabet: small magnitudes (the overwhelmingly common case in
// LiDAR delta streams) are coded as direct symbols so the adaptive model
// captures their exact distribution with no raw-bit overhead; larger
// magnitudes fall back to a bit-width bucket plus raw remainder bits.
constexpr uint32_t kDirectLimit = 48;           // Zigzag values 0..47.
constexpr uint32_t kNumBuckets = 65;            // Bit widths 0..64.
constexpr uint32_t kAlphabet = kDirectLimit + kNumBuckets;

int ValueBitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

ByteBuffer CompressUnsigned(const std::vector<uint64_t>& values,
                            EntropyBackend backend) {
  AdaptiveModel model(kAlphabet);
  EntropyEncoder enc(backend);
  // Remainder bits are collected into a separate raw section so the
  // arithmetic stream stays byte-aligned and simple.
  std::vector<uint8_t> raw_bits;
  uint8_t cur = 0;
  int nbits = 0;
  auto put_bit = [&](int b) {
    cur = static_cast<uint8_t>((cur << 1) | (b & 1));
    if (++nbits == 8) {
      raw_bits.push_back(cur);
      cur = 0;
      nbits = 0;
    }
  };

  for (uint64_t u : values) {
    if (u < kDirectLimit) {
      const uint32_t symbol = static_cast<uint32_t>(u);
      enc.Encode(model.Lookup(symbol));
      model.Update(symbol);
      continue;
    }
    const int width = ValueBitWidth(u);
    const uint32_t symbol = kDirectLimit + static_cast<uint32_t>(width);
    enc.Encode(model.Lookup(symbol));
    model.Update(symbol);
    // The leading 1 bit of a width-w value is implicit; store w-1 low bits.
    for (int i = width - 2; i >= 0; --i) {
      put_bit(static_cast<int>((u >> i) & 1));
    }
  }
  if (nbits > 0) raw_bits.push_back(static_cast<uint8_t>(cur << (8 - nbits)));

  ByteBuffer out;
  PutVarint64(&out, values.size());
  ByteBuffer arith = enc.Finish();
  out.AppendLengthPrefixed(arith);
  PutVarint64(&out, raw_bits.size());
  out.Append(raw_bits.data(), raw_bits.size());
  return out;
}

Status DecompressUnsigned(const ByteBuffer& buf, std::vector<uint64_t>* out,
                          EntropyBackend backend) {
  out->clear();
  ByteReader reader(buf);
  uint64_t count;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &count));
  if (count > kMaxReasonableCount) {
    return Status::Corruption("value codec: implausible count");
  }
  ByteBuffer arith;
  DBGC_RETURN_NOT_OK(reader.ReadLengthPrefixed(&arith));
  uint64_t raw_len;
  DBGC_RETURN_NOT_OK(GetVarint64(&reader, &raw_len));
  if (reader.remaining() < raw_len) {
    return Status::Corruption("value codec: truncated raw bits");
  }
  const uint8_t* raw = buf.data() + reader.position();

  AdaptiveModel model(kAlphabet);
  EntropyDecoder dec(arith, backend);
  size_t bit_pos = 0;
  auto get_bit = [&]() -> int {
    const size_t byte = bit_pos / 8;
    const int off = static_cast<int>(bit_pos % 8);
    ++bit_pos;
    if (byte >= raw_len) return 0;
    return (raw[byte] >> (7 - off)) & 1;
  };

  // `count` is untrusted and the symbols are entropy-coded, so the reserve
  // is speculative (clamped): a corrupted header cannot trigger a multi-GB
  // allocation before the decode loop has produced a single value.
  const BoundedAlloc alloc(reader.remaining());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(out, count, "value codec symbols"));
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t target = dec.DecodeTarget(model.total());
    SymbolRange range;
    const uint32_t symbol = model.FindSymbol(target, &range);
    dec.Advance(range);
    model.Update(symbol);
    if (symbol < kDirectLimit) {
      out->push_back(symbol);
      continue;
    }
    const uint32_t width = symbol - kDirectLimit;
    uint64_t u = 0;
    if (width > 0) {
      u = 1;  // Implicit leading bit.
      for (uint32_t b = 1; b < width; ++b) {
        u = (u << 1) | static_cast<uint64_t>(get_bit());
      }
    }
    out->push_back(u);
  }
  if ((bit_pos + 7) / 8 > raw_len) {
    return Status::Corruption("value codec: raw bit underflow");
  }
  return Status::OK();
}

}  // namespace

ByteBuffer SignedValueCodec::Compress(const std::vector<int64_t>& values,
                                      EntropyBackend backend) {
  std::vector<uint64_t> mapped;
  mapped.reserve(values.size());
  for (int64_t v : values) mapped.push_back(ZigZagEncode(v));
  return CompressUnsigned(mapped, backend);
}

Status SignedValueCodec::Decompress(const ByteBuffer& buf,
                                    std::vector<int64_t>* out,
                                    EntropyBackend backend) {
  std::vector<uint64_t> mapped;
  DBGC_RETURN_NOT_OK(DecompressUnsigned(buf, &mapped, backend));
  out->clear();
  out->reserve(mapped.size());
  for (uint64_t u : mapped) out->push_back(ZigZagDecode(u));
  return Status::OK();
}

ByteBuffer UnsignedValueCodec::Compress(const std::vector<uint64_t>& values,
                                        EntropyBackend backend) {
  return CompressUnsigned(values, backend);
}

Status UnsignedValueCodec::Decompress(const ByteBuffer& buf,
                                      std::vector<uint64_t>* out,
                                      EntropyBackend backend) {
  return DecompressUnsigned(buf, out, backend);
}

}  // namespace dbgc
