// Entropy coding of signed integer sequences with unbounded range.
//
// The arithmetic coder needs a bounded alphabet, but delta streams contain
// arbitrary 64-bit values. SignedValueCodec splits each zigzag-mapped value
// into a bucket symbol (the bit width) coded with an adaptive arithmetic
// model, followed by the value's raw remainder bits. Small values (the
// common case for LiDAR delta streams) cost just the bucket symbol plus a
// few raw bits; rare large values degrade gracefully. This is the
// Exp-Golomb-with-adaptive-prefix approach used throughout DBGC wherever the
// paper says "compressed by arithmetic coding".

#ifndef DBGC_ENCODING_VALUE_CODEC_H_
#define DBGC_ENCODING_VALUE_CODEC_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"
#include "entropy/entropy_backend.h"

namespace dbgc {

/// Entropy-coded signed-value sequence codec.
class SignedValueCodec {
 public:
  /// Compresses a sequence of signed values with the selected entropy
  /// backend. The stream records its length but not the backend; the
  /// container version byte carries that.
  static ByteBuffer Compress(const std::vector<int64_t>& values,
                             EntropyBackend backend = kDefaultEntropyBackend);

  /// Decompresses a stream produced by Compress with the same backend.
  static Status Decompress(const ByteBuffer& buf, std::vector<int64_t>* out,
                           EntropyBackend backend = kDefaultEntropyBackend);
};

/// The same bucket scheme for unsigned values.
class UnsignedValueCodec {
 public:
  /// Compresses a sequence of unsigned values with the selected entropy
  /// backend. The stream records its length.
  static ByteBuffer Compress(const std::vector<uint64_t>& values,
                             EntropyBackend backend = kDefaultEntropyBackend);

  /// Decompresses a stream produced by Compress with the same backend.
  static Status Decompress(const ByteBuffer& buf, std::vector<uint64_t>* out,
                           EntropyBackend backend = kDefaultEntropyBackend);
};

}  // namespace dbgc

#endif  // DBGC_ENCODING_VALUE_CODEC_H_
