#include "entropy/arithmetic_coder.h"

#include "common/check.h"

namespace dbgc {

namespace {
constexpr uint32_t kTop = 0xFFFFFFFFu;
constexpr uint32_t kHalf = 0x80000000u;
constexpr uint32_t kQuarter = 0x40000000u;
constexpr uint32_t kThreeQuarters = 0xC0000000u;
}  // namespace

void ArithmeticEncoder::EmitBit(int bit) {
  current_byte_ = static_cast<uint8_t>((current_byte_ << 1) | (bit & 1));
  if (++bit_pos_ == 8) {
    bytes_.push_back(current_byte_);
    current_byte_ = 0;
    bit_pos_ = 0;
  }
}

void ArithmeticEncoder::EmitBitWithPending(int bit) {
  EmitBit(bit);
  while (pending_bits_ > 0) {
    EmitBit(!bit);
    --pending_bits_;
  }
}

void ArithmeticEncoder::Encode(const SymbolRange& range) {
  DBGC_CHECK(range.cum_low < range.cum_high && range.cum_high <= range.total);
  const uint64_t span = static_cast<uint64_t>(high_) - low_ + 1;
  high_ = low_ + static_cast<uint32_t>(span * range.cum_high / range.total) - 1;
  low_ = low_ + static_cast<uint32_t>(span * range.cum_low / range.total);
  for (;;) {
    if (high_ < kHalf) {
      EmitBitWithPending(0);
    } else if (low_ >= kHalf) {
      EmitBitWithPending(1);
      low_ -= kHalf;
      high_ -= kHalf;
    } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
      ++pending_bits_;
      low_ -= kQuarter;
      high_ -= kQuarter;
    } else {
      break;
    }
    low_ <<= 1;
    high_ = (high_ << 1) | 1;
  }
}

ByteBuffer ArithmeticEncoder::Finish() {
  // Two disambiguating bits select a value inside the final interval.
  ++pending_bits_;
  EmitBitWithPending(low_ >= kQuarter ? 1 : 0);
  // Pad the final byte with zeros.
  while (bit_pos_ != 0) EmitBit(0);
  ByteBuffer out(std::move(bytes_));
  bytes_.clear();
  current_byte_ = 0;
  bit_pos_ = 0;
  pending_bits_ = 0;
  low_ = 0;
  high_ = kTop;
  return out;
}

ArithmeticDecoder::ArithmeticDecoder(const ByteBuffer& buf)
    : ArithmeticDecoder(buf.data(), buf.size()) {}

ArithmeticDecoder::ArithmeticDecoder(const uint8_t* data, size_t size)
    : data_(data), size_(size) {
  for (int i = 0; i < 32; ++i) {
    code_ = (code_ << 1) | static_cast<uint32_t>(NextBit());
  }
}

int ArithmeticDecoder::NextBit() {
  if (byte_pos_ >= size_) return 0;  // Zero-extension past the stream end.
  const int bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
  if (++bit_pos_ == 8) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
  return bit;
}

uint32_t ArithmeticDecoder::DecodeTarget(uint32_t total) const {
  const uint64_t span = static_cast<uint64_t>(high_) - low_ + 1;
  const uint64_t offset = static_cast<uint64_t>(code_) - low_;
  uint64_t target = ((offset + 1) * total - 1) / span;
  if (target >= total) target = total - 1;
  return static_cast<uint32_t>(target);
}

void ArithmeticDecoder::Advance(const SymbolRange& range) {
  const uint64_t span = static_cast<uint64_t>(high_) - low_ + 1;
  high_ = low_ + static_cast<uint32_t>(span * range.cum_high / range.total) - 1;
  low_ = low_ + static_cast<uint32_t>(span * range.cum_low / range.total);
  for (;;) {
    if (high_ < kHalf) {
      // Nothing to subtract.
    } else if (low_ >= kHalf) {
      low_ -= kHalf;
      high_ -= kHalf;
      code_ -= kHalf;
    } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
      low_ -= kQuarter;
      high_ -= kQuarter;
      code_ -= kQuarter;
    } else {
      break;
    }
    low_ <<= 1;
    high_ = (high_ << 1) | 1;
    code_ = (code_ << 1) | static_cast<uint32_t>(NextBit());
  }
}

ByteBuffer ArithmeticCompress(const std::vector<uint32_t>& symbols,
                              uint32_t alphabet_size) {
  AdaptiveModel model(alphabet_size);
  ArithmeticEncoder enc;
  for (uint32_t s : symbols) {
    enc.Encode(model.Lookup(s));
    model.Update(s);
  }
  return enc.Finish();
}

Status ArithmeticDecompress(const ByteBuffer& buf, uint32_t alphabet_size,
                            size_t count, std::vector<uint32_t>* out) {
  out->clear();
  // Callers pass decoded counts here, so guard the reservation even though
  // `count` is a parameter: symbols are entropy-coded with no byte floor.
  const BoundedAlloc alloc(buf.size());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(out, count, "arithmetic symbols"));
  AdaptiveModel model(alphabet_size);
  ArithmeticDecoder dec(buf);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t target = dec.DecodeTarget(model.total());
    SymbolRange range;
    const uint32_t symbol = model.FindSymbol(target, &range);
    dec.Advance(range);
    model.Update(symbol);
    out->push_back(symbol);
  }
  return Status::OK();
}

}  // namespace dbgc
