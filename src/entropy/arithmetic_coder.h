// Witten–Neal–Cleary arithmetic coder [58] with 32-bit precision.
//
// The coder is template-free: it works against the SymbolRange protocol of
// AdaptiveModel / StaticModel. Convenience functions compress whole symbol
// sequences with an adaptive model, which is how the paper uses "an
// arithmetic coder" as a building block (Sections 3.5 and 3.6).

#ifndef DBGC_ENTROPY_ARITHMETIC_CODER_H_
#define DBGC_ENTROPY_ARITHMETIC_CODER_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"
#include "entropy/frequency_model.h"

namespace dbgc {

/// Streaming arithmetic encoder.
///
/// Usage:
///   ArithmeticEncoder enc;
///   for (symbol : data) { enc.Encode(model.Lookup(symbol)); model.Update(symbol); }
///   ByteBuffer bits = enc.Finish();
class ArithmeticEncoder {
 public:
  ArithmeticEncoder() = default;

  /// Narrows the interval to the symbol's cumulative range.
  void Encode(const SymbolRange& range);

  /// Flushes the interval state and returns the coded bytes.
  /// The encoder is reset and reusable afterwards.
  ByteBuffer Finish();

 private:
  void EmitBit(int bit);
  void EmitBitWithPending(int bit);

  uint32_t low_ = 0;
  uint32_t high_ = 0xFFFFFFFFu;
  uint64_t pending_bits_ = 0;
  // Bit-level output assembled MSB-first.
  std::vector<uint8_t> bytes_;
  uint8_t current_byte_ = 0;
  int bit_pos_ = 0;
};

/// Streaming arithmetic decoder over a byte span (does not own the bytes).
class ArithmeticDecoder {
 public:
  /// Starts decoding at the beginning of `buf`.
  explicit ArithmeticDecoder(const ByteBuffer& buf);
  ArithmeticDecoder(const uint8_t* data, size_t size);

  /// Returns the cumulative-frequency value of the current code point under
  /// a model with the given total; pass it to the model's FindSymbol.
  uint32_t DecodeTarget(uint32_t total) const;

  /// Consumes the symbol whose range was found by the model.
  void Advance(const SymbolRange& range);

 private:
  int NextBit();

  const uint8_t* data_;
  size_t size_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
  uint32_t low_ = 0;
  uint32_t high_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
};

/// Compresses a sequence of symbols with a fresh adaptive model over
/// [0, alphabet_size). Every symbol must be < alphabet_size.
ByteBuffer ArithmeticCompress(const std::vector<uint32_t>& symbols,
                              uint32_t alphabet_size);

/// Inverse of ArithmeticCompress; `count` symbols are decoded.
Status ArithmeticDecompress(const ByteBuffer& buf, uint32_t alphabet_size,
                            size_t count, std::vector<uint32_t>* out);

}  // namespace dbgc

#endif  // DBGC_ENTROPY_ARITHMETIC_CODER_H_
