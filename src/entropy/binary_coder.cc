#include "entropy/binary_coder.h"

// All members are defined inline in the header; this translation unit pins
// the module into the library and anchors the vtable-free types.

namespace dbgc {}  // namespace dbgc
