// Adaptive binary (bit) arithmetic coding with per-context probability
// models. Used by the G-PCC-like codec's neighbour-dependent occupancy
// coding and by flag side-channels.

#ifndef DBGC_ENTROPY_BINARY_CODER_H_
#define DBGC_ENTROPY_BINARY_CODER_H_

#include <cstdint>
#include <vector>

#include "entropy/entropy_coder.h"

namespace dbgc {

/// Adaptive probability model for a single binary context.
class AdaptiveBitModel {
 public:
  AdaptiveBitModel() = default;

  /// Cumulative range for encoding `bit` under the current counts.
  SymbolRange Lookup(int bit) const {
    SymbolRange r;
    r.total = c0_ + c1_;
    if (bit == 0) {
      r.cum_low = 0;
      r.cum_high = c0_;
    } else {
      r.cum_low = c0_;
      r.cum_high = c0_ + c1_;
    }
    return r;
  }

  /// Decodes the bit for a target cumulative value and fills *range.
  int FindBit(uint32_t cum, SymbolRange* range) const {
    const int bit = cum >= c0_ ? 1 : 0;
    *range = Lookup(bit);
    return bit;
  }

  /// Current total frequency.
  uint32_t total() const { return c0_ + c1_; }

  /// Records one observation of `bit`.
  void Update(int bit) {
    if (bit == 0) {
      c0_ += kIncrement;
    } else {
      c1_ += kIncrement;
    }
    if (c0_ + c1_ >= kMaxTotal) {
      c0_ = (c0_ + 1) / 2;
      c1_ = (c1_ + 1) / 2;
    }
  }

 private:
  static constexpr uint32_t kIncrement = 16;
  static constexpr uint32_t kMaxTotal = 1u << 14;
  uint32_t c0_ = 1;
  uint32_t c1_ = 1;
};

/// Encoder for context-modelled bits on top of EntropyEncoder.
class BinaryEncoder {
 public:
  /// Creates an encoder with `num_contexts` independent bit models.
  explicit BinaryEncoder(size_t num_contexts,
                         EntropyBackend backend = kDefaultEntropyBackend)
      : enc_(backend), models_(num_contexts) {}

  /// Encodes `bit` under context `ctx` and updates the context model.
  void EncodeBit(size_t ctx, int bit) {
    enc_.Encode(models_[ctx].Lookup(bit));
    models_[ctx].Update(bit);
  }

  /// Flushes to bytes; the encoder is reusable but contexts keep adapting.
  ByteBuffer Finish() { return enc_.Finish(); }

 private:
  EntropyEncoder enc_;
  std::vector<AdaptiveBitModel> models_;
};

/// Decoder matching BinaryEncoder.
class BinaryDecoder {
 public:
  BinaryDecoder(const ByteBuffer& buf, size_t num_contexts,
                EntropyBackend backend = kDefaultEntropyBackend)
      : dec_(buf, backend), models_(num_contexts) {}

  /// Decodes one bit under context `ctx`.
  int DecodeBit(size_t ctx) {
    AdaptiveBitModel& m = models_[ctx];
    const uint32_t target = dec_.DecodeTarget(m.total());
    SymbolRange range;
    const int bit = m.FindBit(target, &range);
    dec_.Advance(range);
    m.Update(bit);
    return bit;
  }

 private:
  EntropyDecoder dec_;
  std::vector<AdaptiveBitModel> models_;
};

}  // namespace dbgc

#endif  // DBGC_ENTROPY_BINARY_CODER_H_
