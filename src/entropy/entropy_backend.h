// Entropy-backend selection and the container-level bitstream version byte.
//
// Every compressed frame produced by GeometryCodec::Compress is prefixed by
// one version byte identifying the entropy backend that coded the payload:
//
//   0x01  v1: Witten–Neal–Cleary bit-wise arithmetic coder
//   0x02  v2: byte-renormalizing range coder (default)
//
// Decoders dispatch on this byte, so every v1 stream ever written stays
// decodable after the default flipped to v2. See docs/ENTROPY.md for the
// full back-compat policy.
//
// This header is intentionally dependency-free so src/codec/codec.h can
// include it without pulling in coder implementations.

#ifndef DBGC_ENTROPY_ENTROPY_BACKEND_H_
#define DBGC_ENTROPY_ENTROPY_BACKEND_H_

#include <cstdint>

namespace dbgc {

/// Which entropy coder implementation frames a bitstream.
enum class EntropyBackend : uint8_t {
  kArithmeticV1 = 1,  ///< WNC bit-wise arithmetic coder (legacy streams).
  kRangeV2 = 2,       ///< Byte-renormalizing range coder.
};

/// The backend new streams are written with unless a caller overrides
/// CompressParams::entropy_backend.
inline constexpr EntropyBackend kDefaultEntropyBackend =
    EntropyBackend::kRangeV2;

/// The container version byte for a backend (the enum value is the wire
/// byte; this helper names the conversion at the single dispatch site).
inline constexpr uint8_t EntropyVersionByte(EntropyBackend backend) {
  return static_cast<uint8_t>(backend);
}

/// Maps a container version byte back to a backend. Returns false for
/// unknown versions (corrupt or future streams).
inline bool EntropyBackendFromVersionByte(uint8_t byte, EntropyBackend* out) {
  switch (byte) {
    case static_cast<uint8_t>(EntropyBackend::kArithmeticV1):
      *out = EntropyBackend::kArithmeticV1;
      return true;
    case static_cast<uint8_t>(EntropyBackend::kRangeV2):
      *out = EntropyBackend::kRangeV2;
      return true;
    default:
      return false;
  }
}

}  // namespace dbgc

#endif  // DBGC_ENTROPY_ENTROPY_BACKEND_H_
