#include "entropy/entropy_coder.h"

#include "common/check.h"
#include "common/contracts.h"

namespace dbgc {

ByteBuffer EntropyCompress(const std::vector<uint32_t>& symbols,
                           uint32_t alphabet_size, EntropyBackend backend) {
  AdaptiveModel model(alphabet_size);
  EntropyEncoder enc(backend);
  for (uint32_t s : symbols) {
    enc.Encode(model.Lookup(s));
    model.Update(s);
  }
  return enc.Finish();
}

Status EntropyDecompress(const ByteBuffer& buf, uint32_t alphabet_size,
                         size_t count, EntropyBackend backend,
                         std::vector<uint32_t>* out) {
  out->clear();
  // Callers pass decoded counts here, so guard the reservation even though
  // `count` is a parameter: symbols are entropy-coded with no byte floor.
  const BoundedAlloc alloc(buf.size());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(out, count, "entropy symbols"));
  AdaptiveModel model(alphabet_size);
  EntropyDecoder dec(buf, backend);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t target = dec.DecodeTarget(model.total());
    SymbolRange range;
    const uint32_t symbol = model.FindSymbol(target, &range);
    dec.Advance(range);
    model.Update(symbol);
    out->push_back(symbol);
  }
  return Status::OK();
}

}  // namespace dbgc
