// Backend-dispatching entropy coder facade.
//
// EntropyEncoder / EntropyDecoder expose the common SymbolRange surface of
// ArithmeticCoder and RangeCoder and branch per call on an EntropyBackend
// tag. Codecs construct these (with the backend from CompressParams /
// DecompressParams) instead of a concrete coder, which is what keeps every
// stream decodable by version: the container byte picks the backend, the
// facade picks the implementation. dbgc_lint rule R7 flags concrete-coder
// construction outside src/entropy/ to keep it that way.

#ifndef DBGC_ENTROPY_ENTROPY_CODER_H_
#define DBGC_ENTROPY_ENTROPY_CODER_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"
#include "entropy/arithmetic_coder.h"
#include "entropy/entropy_backend.h"
#include "entropy/frequency_model.h"
#include "entropy/range_coder.h"

namespace dbgc {

/// Streaming encoder for the selected backend. Same usage pattern as the
/// concrete coders; Finish() resets for reuse.
class EntropyEncoder {
 public:
  explicit EntropyEncoder(EntropyBackend backend = kDefaultEntropyBackend)
      : backend_(backend) {}

  void Encode(const SymbolRange& range) {
    if (backend_ == EntropyBackend::kRangeV2) {
      range_.Encode(range);
    } else {
      arith_.Encode(range);
    }
  }

  ByteBuffer Finish() {
    return backend_ == EntropyBackend::kRangeV2 ? range_.Finish()
                                                : arith_.Finish();
  }

  EntropyBackend backend() const { return backend_; }

 private:
  EntropyBackend backend_;
  ArithmeticEncoder arith_;
  RangeEncoder range_;
};

/// Streaming decoder for the selected backend over a byte span (does not
/// own the bytes).
class EntropyDecoder {
 public:
  EntropyDecoder(const ByteBuffer& buf,
                 EntropyBackend backend = kDefaultEntropyBackend)
      : EntropyDecoder(buf.data(), buf.size(), backend) {}
  EntropyDecoder(const uint8_t* data, size_t size,
                 EntropyBackend backend = kDefaultEntropyBackend)
      : backend_(backend), arith_(data, size), range_(data, size) {}

  uint32_t DecodeTarget(uint32_t total) const {
    return backend_ == EntropyBackend::kRangeV2 ? range_.DecodeTarget(total)
                                                : arith_.DecodeTarget(total);
  }

  void Advance(const SymbolRange& range) {
    if (backend_ == EntropyBackend::kRangeV2) {
      range_.Advance(range);
    } else {
      arith_.Advance(range);
    }
  }

  EntropyBackend backend() const { return backend_; }

 private:
  EntropyBackend backend_;
  ArithmeticDecoder arith_;
  RangeDecoder range_;
};

/// Compresses a sequence of symbols with a fresh adaptive model over
/// [0, alphabet_size) using the selected backend. Backend-parameterized
/// counterpart of ArithmeticCompress.
ByteBuffer EntropyCompress(const std::vector<uint32_t>& symbols,
                           uint32_t alphabet_size, EntropyBackend backend);

/// Inverse of EntropyCompress; `count` symbols are decoded.
Status EntropyDecompress(const ByteBuffer& buf, uint32_t alphabet_size,
                         size_t count, EntropyBackend backend,
                         std::vector<uint32_t>* out);

}  // namespace dbgc

#endif  // DBGC_ENTROPY_ENTROPY_CODER_H_
