#include "entropy/frequency_model.h"

#include <algorithm>

#include "common/check.h"

namespace dbgc {

AdaptiveModel::AdaptiveModel(uint32_t alphabet_size, uint32_t increment)
    : size_(alphabet_size),
      increment_(increment),
      total_(alphabet_size),
      tree_(alphabet_size + 1, 0),
      freq_(alphabet_size, 1) {
  DBGC_CHECK(alphabet_size >= 1);
  // Every symbol keeps frequency >= 1 forever (round-up halving in
  // Rescale), so the all-ones floor `alphabet_size` must itself fit under
  // the coder's total budget — otherwise no amount of rescaling restores
  // the invariant total < kMaxTotal and encoder/decoder desync.
  DBGC_CHECK(alphabet_size < kMaxTotal);
  // A zero increment would make Update a no-op (harmless but senseless);
  // an increment at kMaxTotal or beyond could overshoot the budget faster
  // than one halving recovers. Both are contract violations.
  DBGC_CHECK(increment >= 1 && increment < kMaxTotal);
  // Initialize the Fenwick tree with all-ones frequencies.
  for (uint32_t i = 0; i < size_; ++i) {
    uint32_t j = i + 1;
    while (j <= size_) {
      tree_[j] += 1;
      j += j & (~j + 1);
    }
  }
}

uint32_t AdaptiveModel::FenwickPrefixSum(uint32_t symbol_count) const {
  uint32_t sum = 0;
  uint32_t i = symbol_count;
  while (i > 0) {
    sum += tree_[i];
    i -= i & (~i + 1);
  }
  return sum;
}

void AdaptiveModel::FenwickAdd(uint32_t symbol, int64_t delta) {
  uint32_t i = symbol + 1;
  while (i <= size_) {
    tree_[i] = static_cast<uint32_t>(static_cast<int64_t>(tree_[i]) + delta);
    i += i & (~i + 1);
  }
}

SymbolRange AdaptiveModel::Lookup(uint32_t symbol) const {
  DBGC_CHECK(symbol < size_);
  SymbolRange r;
  r.cum_low = FenwickPrefixSum(symbol);
  r.cum_high = r.cum_low + freq_[symbol];
  r.total = total_;
  return r;
}

uint32_t AdaptiveModel::FindSymbol(uint32_t cum, SymbolRange* range) const {
  DBGC_CHECK(cum < total_);
  // Binary descent over the Fenwick tree.
  uint32_t idx = 0;
  uint32_t remaining = cum;
  uint32_t mask = 1;
  while ((mask << 1) <= size_) mask <<= 1;
  while (mask > 0) {
    const uint32_t next = idx + mask;
    if (next <= size_ && tree_[next] <= remaining) {
      idx = next;
      remaining -= tree_[next];
    }
    mask >>= 1;
  }
  const uint32_t symbol = idx;  // idx = count of symbols fully below cum.
  DBGC_CHECK(symbol < size_);
  range->cum_low = cum - remaining;
  range->cum_high = range->cum_low + freq_[symbol];
  range->total = total_;
  return symbol;
}

void AdaptiveModel::Update(uint32_t symbol) {
  DBGC_CHECK(symbol < size_);
  freq_[symbol] += increment_;
  FenwickAdd(symbol, increment_);
  total_ += increment_;
  if (total_ >= kMaxTotal) Rescale();
}

void AdaptiveModel::Rescale() {
  // Halve with rounding up: (f + 1) / 2 >= 1 for every f >= 1, so a
  // rescale can never drive a symbol's frequency to zero — a zero-width
  // range would desync the decoder on the next occurrence of that symbol.
  // One halving suffices for any sane increment, but loop anyway: the
  // all-ones fixed point has total == size_ < kMaxTotal (checked in the
  // constructor), so termination is guaranteed even for extreme
  // increments near the budget.
  do {
    total_ = 0;
    for (uint32_t i = 0; i < size_; ++i) {
      freq_[i] = (freq_[i] + 1) / 2;
      total_ += freq_[i];
    }
  } while (total_ >= kMaxTotal);
  std::fill(tree_.begin(), tree_.end(), 0u);
  for (uint32_t i = 0; i < size_; ++i) {
    uint32_t j = i + 1;
    while (j <= size_) {
      tree_[j] += freq_[i];
      j += j & (~j + 1);
    }
  }
}

StaticModel::StaticModel(const std::vector<uint32_t>& counts) {
  DBGC_CHECK(!counts.empty());
  // Each symbol is floored at frequency 1, so an alphabet at or above
  // kMaxTotal cannot fit the coder's budget. Before this bound existed,
  // `kMaxTotal - counts.size()` below underflowed for oversized alphabets
  // (size_t arithmetic), which skipped scaling entirely and let the
  // uint32 cumulative table wrap into non-monotone ranges.
  DBGC_CHECK(counts.size() < AdaptiveModel::kMaxTotal);
  cum_.resize(counts.size() + 1, 0);
  uint64_t total = 0;
  for (uint32_t c : counts) total += std::max<uint32_t>(c, 1);
  // Scale so the total stays under the coder's precision budget. With the
  // size bound above, limit >= 1 and the scaled total is at most
  // limit + size == kMaxTotal.
  const uint64_t limit =
      AdaptiveModel::kMaxTotal - static_cast<uint64_t>(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    uint64_t f = std::max<uint32_t>(counts[i], 1);
    if (total > limit) {
      f = std::max<uint64_t>(1, f * limit / total);
    }
    cum_[i + 1] = cum_[i] + static_cast<uint32_t>(f);
  }
}

SymbolRange StaticModel::Lookup(uint32_t symbol) const {
  DBGC_CHECK(symbol + 1 < cum_.size());
  return SymbolRange{cum_[symbol], cum_[symbol + 1], cum_.back()};
}

uint32_t StaticModel::FindSymbol(uint32_t cum, SymbolRange* range) const {
  DBGC_CHECK(cum < cum_.back());
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), cum);
  const uint32_t symbol = static_cast<uint32_t>(it - cum_.begin()) - 1;
  range->cum_low = cum_[symbol];
  range->cum_high = cum_[symbol + 1];
  range->total = cum_.back();
  return symbol;
}

}  // namespace dbgc
