// Adaptive and static frequency models driving the arithmetic coder.
//
// The models map symbols in [0, alphabet_size) to cumulative frequency
// ranges. The adaptive model updates counts after every symbol, so encoder
// and decoder stay in lockstep without transmitting a table.

#ifndef DBGC_ENTROPY_FREQUENCY_MODEL_H_
#define DBGC_ENTROPY_FREQUENCY_MODEL_H_

#include <cstdint>
#include <vector>

namespace dbgc {

/// A cumulative-frequency range for one symbol under a model.
struct SymbolRange {
  uint32_t cum_low = 0;   ///< Sum of frequencies of symbols before this one.
  uint32_t cum_high = 0;  ///< cum_low + frequency of this symbol.
  uint32_t total = 0;     ///< Total frequency of the model.
};

/// Adaptive frequency model over a fixed alphabet, backed by a Fenwick tree
/// so lookups and updates are O(log n).
///
/// All symbols start with frequency 1 (so every symbol is always encodable)
/// and gain `increment` on each occurrence. When the total exceeds
/// kMaxTotal, all frequencies are halved (rounding up) to keep the coder's
/// arithmetic exact and to let the model track non-stationary data.
class AdaptiveModel {
 public:
  /// Maximum total frequency; must leave headroom for the 32-bit coder.
  static constexpr uint32_t kMaxTotal = 1u << 16;

  /// Creates a model over [0, alphabet_size). Contract (DBGC_CHECK):
  /// 1 <= alphabet_size < kMaxTotal and 1 <= increment < kMaxTotal — the
  /// all-ones frequency floor must fit the coder's total budget or no
  /// rescale can restore it.
  explicit AdaptiveModel(uint32_t alphabet_size, uint32_t increment = 32);

  /// Number of symbols in the alphabet.
  uint32_t alphabet_size() const { return size_; }
  /// Current total frequency.
  uint32_t total() const { return total_; }

  /// Returns the cumulative range of `symbol` under the current counts.
  SymbolRange Lookup(uint32_t symbol) const;

  /// Finds the symbol whose range contains `cum` (cum < total()), and fills
  /// *range with its cumulative range.
  uint32_t FindSymbol(uint32_t cum, SymbolRange* range) const;

  /// Records one occurrence of `symbol`.
  void Update(uint32_t symbol);

 private:
  uint32_t FenwickPrefixSum(uint32_t symbol_count) const;  // sum of [0, n)
  void FenwickAdd(uint32_t symbol, int64_t delta);
  void Rescale();

  uint32_t size_;
  uint32_t increment_;
  uint32_t total_;
  std::vector<uint32_t> tree_;   // Fenwick tree over frequencies.
  std::vector<uint32_t> freq_;   // Raw per-symbol frequencies.
};

/// Immutable frequency model built from explicit counts (used where the
/// table is transmitted or implied by protocol).
class StaticModel {
 public:
  /// Builds a model from per-symbol counts; zero counts are bumped to 1.
  /// Counts are proportionally scaled so the total fits the coder's limits.
  /// Contract (DBGC_CHECK): counts is non-empty and smaller than
  /// AdaptiveModel::kMaxTotal — larger alphabets cannot fit the budget
  /// with every symbol floored at frequency 1.
  explicit StaticModel(const std::vector<uint32_t>& counts);

  uint32_t alphabet_size() const {
    return static_cast<uint32_t>(cum_.size() - 1);
  }
  uint32_t total() const { return cum_.back(); }

  /// Cumulative range of `symbol`.
  SymbolRange Lookup(uint32_t symbol) const;

  /// Symbol whose range contains `cum`.
  uint32_t FindSymbol(uint32_t cum, SymbolRange* range) const;

 private:
  std::vector<uint32_t> cum_;  // cum_[i] = sum of freq of symbols < i.
};

}  // namespace dbgc

#endif  // DBGC_ENTROPY_FREQUENCY_MODEL_H_
