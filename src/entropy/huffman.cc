#include "entropy/huffman.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace dbgc {

namespace {

// Computes unrestricted Huffman code lengths with a two-queue algorithm,
// then flattens over-long codes by scaling counts and retrying.
std::vector<uint8_t> ComputeLengths(std::vector<uint64_t> counts,
                                    int max_length) {
  const size_t n = counts.size();
  std::vector<uint8_t> lengths(n, 0);
  for (;;) {
    struct Node {
      uint64_t weight;
      int depth;        // Max depth of subtree; used for the length limit.
      std::vector<uint32_t> symbols;
    };
    auto cmp = [](const Node& a, const Node& b) { return a.weight > b.weight; };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
    for (uint32_t i = 0; i < n; ++i) {
      if (counts[i] > 0) heap.push(Node{counts[i], 0, {i}});
    }
    if (heap.empty()) return lengths;
    if (heap.size() == 1) {
      lengths[heap.top().symbols[0]] = 1;
      return lengths;
    }
    std::fill(lengths.begin(), lengths.end(), 0);
    while (heap.size() > 1) {
      Node a = heap.top();
      heap.pop();
      Node b = heap.top();
      heap.pop();
      for (uint32_t s : a.symbols) ++lengths[s];
      for (uint32_t s : b.symbols) ++lengths[s];
      Node merged;
      merged.weight = a.weight + b.weight;
      merged.depth = std::max(a.depth, b.depth) + 1;
      merged.symbols = std::move(a.symbols);
      merged.symbols.insert(merged.symbols.end(), b.symbols.begin(),
                            b.symbols.end());
      heap.push(std::move(merged));
    }
    const int max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (max_len <= max_length) return lengths;
    // Flatten the distribution and retry.
    for (auto& c : counts) {
      if (c > 0) c = c / 2 + 1;
    }
  }
}

}  // namespace

Result<HuffmanCode> HuffmanCode::FromCounts(
    const std::vector<uint64_t>& counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("huffman: empty alphabet");
  }
  HuffmanCode code;
  code.lengths_ = ComputeLengths(counts, kMaxCodeLength);
  bool any = false;
  for (uint8_t l : code.lengths_) any |= (l != 0);
  if (!any) return Status::InvalidArgument("huffman: all counts are zero");
  DBGC_RETURN_NOT_OK(code.BuildFromLengths());
  return code;
}

Result<HuffmanCode> HuffmanCode::FromLengths(
    const std::vector<uint8_t>& lengths) {
  HuffmanCode code;
  code.lengths_ = lengths;
  DBGC_RETURN_NOT_OK(code.BuildFromLengths());
  return code;
}

Status HuffmanCode::BuildFromLengths() {
  const size_t n = lengths_.size();
  codes_.assign(n, 0);
  count_per_length_.assign(kMaxCodeLength + 1, 0);
  for (uint8_t l : lengths_) {
    if (l > kMaxCodeLength) {
      return Status::Corruption("huffman: code length exceeds limit");
    }
    if (l > 0) ++count_per_length_[l];
  }
  // Canonical assignment: codes of equal length are consecutive integers,
  // ordered by symbol value.
  first_code_.assign(kMaxCodeLength + 1, 0);
  first_index_.assign(kMaxCodeLength + 1, 0);
  uint32_t code = 0;
  uint32_t index = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code <<= 1;
    first_code_[l] = code;
    first_index_[l] = index;
    code += count_per_length_[l];
    index += count_per_length_[l];
  }
  if (code > (1u << kMaxCodeLength)) {
    return Status::Corruption("huffman: over-subscribed code lengths");
  }
  sorted_symbols_.clear();
  sorted_symbols_.reserve(index);
  std::vector<uint32_t> next_code = first_code_;
  sorted_symbols_.assign(index, 0);
  std::vector<uint32_t> next_index = first_index_;
  for (uint32_t s = 0; s < n; ++s) {
    const uint8_t l = lengths_[s];
    if (l == 0) continue;
    codes_[s] = next_code[l]++;
    sorted_symbols_[next_index[l]++] = s;
  }
  return Status::OK();
}

void HuffmanCode::EncodeSymbol(uint32_t symbol, BitWriter* writer) const {
  DBGC_CHECK(symbol < lengths_.size() && lengths_[symbol] > 0);
  writer->WriteBits(codes_[symbol], lengths_[symbol]);
}

Status HuffmanCode::DecodeSymbol(BitReader* reader, uint32_t* symbol) const {
  uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    int bit;
    DBGC_RETURN_NOT_OK(reader->ReadBit(&bit));
    code = (code << 1) | static_cast<uint32_t>(bit);
    if (count_per_length_[l] > 0 &&
        code < first_code_[l] + count_per_length_[l] &&
        code >= first_code_[l]) {
      *symbol = sorted_symbols_[first_index_[l] + (code - first_code_[l])];
      return Status::OK();
    }
  }
  return Status::Corruption("huffman: invalid code");
}

void HuffmanCode::WriteTable(BitWriter* writer) const {
  // Encoding: for each symbol, 4-bit length; runs of >= 3 zeros are coded as
  // length 0 followed by a 8-bit run count (3..258).
  size_t i = 0;
  const size_t n = lengths_.size();
  while (i < n) {
    if (lengths_[i] == 0) {
      size_t run = 1;
      while (i + run < n && lengths_[i + run] == 0 && run < 258) ++run;
      if (run >= 3) {
        writer->WriteBits(0, 4);
        writer->WriteBits(run - 3, 8);
        i += run;
        continue;
      }
      // Short zero runs: emit 0 with run count 0 (i.e. a single zero).
      writer->WriteBits(0, 4);
      writer->WriteBits(0xFF, 8);  // Sentinel: single zero length.
      ++i;
      continue;
    }
    writer->WriteBits(lengths_[i], 4);
    ++i;
  }
}

Result<HuffmanCode> HuffmanCode::ReadTable(BitReader* reader,
                                           uint32_t alphabet_size) {
  std::vector<uint8_t> lengths;
  // DBGC_LINT_ALLOW(R2): alphabet_size is a caller-side constant, not a decoded field.
  lengths.reserve(alphabet_size);
  while (lengths.size() < alphabet_size) {
    uint64_t l;
    DBGC_RETURN_NOT_OK(reader->ReadBits(4, &l));
    if (l == 0) {
      uint64_t run;
      DBGC_RETURN_NOT_OK(reader->ReadBits(8, &run));
      if (run == 0xFF) {
        lengths.push_back(0);
      } else {
        DBGC_BOUND(run, 0xFE, "huffman zero-run length");
        for (uint64_t k = 0; k < run + 3; ++k) lengths.push_back(0);
      }
    } else {
      lengths.push_back(static_cast<uint8_t>(l));
    }
  }
  if (lengths.size() != alphabet_size) {
    return Status::Corruption("huffman: table size mismatch");
  }
  return FromLengths(lengths);
}

}  // namespace dbgc
