// Canonical Huffman coding [29], the entropy stage of our Deflate-style
// compressor (lz/deflate.h).
//
// Code lengths are limited to kMaxCodeLength bits; the table is serialized
// as run-length-coded code lengths, as in DEFLATE's spirit.

#ifndef DBGC_ENTROPY_HUFFMAN_H_
#define DBGC_ENTROPY_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "common/status.h"

namespace dbgc {

/// Builds and applies canonical Huffman codes over a fixed alphabet.
class HuffmanCode {
 public:
  /// Maximum code length in bits.
  static constexpr int kMaxCodeLength = 15;

  /// Builds length-limited canonical codes for the given symbol counts.
  /// Symbols with a zero count receive no code and must not be encoded.
  /// At least one count must be non-zero.
  static Result<HuffmanCode> FromCounts(const std::vector<uint64_t>& counts);

  /// Rebuilds a code from per-symbol code lengths (0 = absent symbol).
  static Result<HuffmanCode> FromLengths(const std::vector<uint8_t>& lengths);

  /// Per-symbol code lengths (0 for absent symbols).
  const std::vector<uint8_t>& lengths() const { return lengths_; }

  /// Writes the code for `symbol`. The symbol must have a code.
  void EncodeSymbol(uint32_t symbol, BitWriter* writer) const;

  /// Reads one symbol.
  Status DecodeSymbol(BitReader* reader, uint32_t* symbol) const;

  /// Serializes the code lengths compactly (RLE of zeros + 4-bit lengths).
  void WriteTable(BitWriter* writer) const;

  /// Reads a table written by WriteTable for an alphabet of `alphabet_size`.
  static Result<HuffmanCode> ReadTable(BitReader* reader,
                                       uint32_t alphabet_size);

 private:
  HuffmanCode() = default;
  Status BuildFromLengths();

  std::vector<uint8_t> lengths_;      // Code length per symbol; 0 = unused.
  std::vector<uint32_t> codes_;       // Canonical code bits per symbol.
  // Canonical decode acceleration: for each length, the first code value and
  // the index of its first symbol in sorted_symbols_.
  std::vector<uint32_t> first_code_;
  std::vector<uint32_t> first_index_;
  std::vector<uint32_t> count_per_length_;
  std::vector<uint32_t> sorted_symbols_;
};

}  // namespace dbgc

#endif  // DBGC_ENTROPY_HUFFMAN_H_
