#include "entropy/range_coder.h"

#include "common/check.h"

namespace dbgc {

namespace {
// Renormalization threshold: shift out an 8-bit digit whenever the range
// drops below 2^24. With SymbolRange::total <= 2^16 this keeps
// range_/total >= 2^8, so the unit never truncates to zero.
constexpr uint32_t kTopValue = 1u << 24;
}  // namespace

void RangeEncoder::Encode(const SymbolRange& range) {
  DBGC_CHECK(range.cum_low < range.cum_high && range.cum_high <= range.total);
  const uint32_t unit = range_ / range.total;
  low_ += static_cast<uint64_t>(unit) * range.cum_low;
  if (range.cum_high == range.total) {
    // The top symbol absorbs the rounding slack range_ - unit*total.
    range_ -= unit * range.cum_low;
  } else {
    range_ = unit * (range.cum_high - range.cum_low);
  }
  while (range_ < kTopValue) {
    ShiftLow();
    range_ <<= 8;
  }
}

void RangeEncoder::ShiftLow() {
  // Emit the cached byte once a carry into it is resolved either way: the
  // low 32 bits being below 0xFF000000 means no later carry can reach it,
  // and bit 32 being set means the carry already happened.
  if (static_cast<uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
    const uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    bytes_.push_back(static_cast<uint8_t>(cache_ + carry));
    while (pending_ > 0) {
      bytes_.push_back(static_cast<uint8_t>(0xFFu + carry));
      --pending_;
    }
    cache_ = static_cast<uint8_t>(low_ >> 24);
  } else {
    ++pending_;  // 0xFF digit: carry resolution deferred.
  }
  low_ = (low_ & 0x00FFFFFFu) << 8;
}

ByteBuffer RangeEncoder::Finish() {
  // Flush the cache byte plus all 32 bits of low: any value inside the
  // final interval disambiguates, and low itself is in it.
  for (int i = 0; i < 5; ++i) ShiftLow();
  ByteBuffer out(std::move(bytes_));
  bytes_.clear();
  low_ = 0;
  range_ = 0xFFFFFFFFu;
  cache_ = 0;
  pending_ = 0;
  return out;
}

RangeDecoder::RangeDecoder(const ByteBuffer& buf)
    : RangeDecoder(buf.data(), buf.size()) {}

RangeDecoder::RangeDecoder(const uint8_t* data, size_t size)
    : data_(data), size_(size) {
  NextByte();  // The encoder's initial zero cache byte.
  for (int i = 0; i < 4; ++i) {
    code_ = (code_ << 8) | NextByte();
  }
}

uint8_t RangeDecoder::NextByte() {
  if (pos_ >= size_) return 0;  // Zero-extension past the stream end.
  return data_[pos_++];
}

uint32_t RangeDecoder::DecodeTarget(uint32_t total) const {
  const uint32_t unit = range_ / total;
  const uint32_t target = code_ / unit;
  // code_ can land in the rounding slack above unit*total; that region
  // belongs to the top symbol.
  return target >= total ? total - 1 : target;
}

void RangeDecoder::Advance(const SymbolRange& range) {
  const uint32_t unit = range_ / range.total;
  code_ -= unit * range.cum_low;
  if (range.cum_high == range.total) {
    range_ -= unit * range.cum_low;
  } else {
    range_ = unit * (range.cum_high - range.cum_low);
  }
  while (range_ < kTopValue) {
    code_ = (code_ << 8) | NextByte();
    range_ <<= 8;
  }
}

}  // namespace dbgc
