// Byte-renormalizing range coder (64-bit low / 32-bit range, 8-bit digits).
//
// Same SymbolRange protocol and encode/decode surface as ArithmeticCoder,
// but renormalization emits whole bytes instead of single bits: the encoder
// keeps a 64-bit low accumulator whose upper bits carry-propagate through a
// cached byte plus a run of pending 0xFF bytes, and both sides shift out an
// 8-bit digit whenever the 32-bit range drops below 2^24. This is the v2
// backend behind the container version byte (entropy_backend.h); the cut in
// per-symbol renormalization work is where the encode-latency win over the
// bit-wise WNC coder comes from. See docs/ENTROPY.md.
//
// Precision contract: callers keep SymbolRange::total <= 2^16 (the
// AdaptiveModel kMaxTotal rescale bound), so after renormalization
// range_/total >= 2^8 and the per-symbol unit never truncates to zero.

#ifndef DBGC_ENTROPY_RANGE_CODER_H_
#define DBGC_ENTROPY_RANGE_CODER_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"
#include "entropy/frequency_model.h"

namespace dbgc {

/// Streaming range encoder. Drop-in surface match for ArithmeticEncoder:
///
///   RangeEncoder enc;
///   for (symbol : data) { enc.Encode(model.Lookup(symbol)); model.Update(symbol); }
///   ByteBuffer bytes = enc.Finish();
class RangeEncoder {
 public:
  RangeEncoder() = default;

  /// Narrows the interval to the symbol's cumulative range.
  void Encode(const SymbolRange& range);

  /// Flushes the interval state and returns the coded bytes. The first
  /// output byte is always the initial zero cache byte (a carry into it is
  /// impossible); the decoder skips it. The encoder is reset and reusable
  /// afterwards.
  ByteBuffer Finish();

 private:
  void ShiftLow();

  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t pending_ = 0;  // Run length of bytes awaiting carry resolution.
  std::vector<uint8_t> bytes_;
};

/// Streaming range decoder over a byte span (does not own the bytes).
/// Reads past the end of the span zero-extend, mirroring ArithmeticDecoder,
/// so truncated streams decode to well-defined (if wrong) symbols and the
/// surrounding containers' integrity checks decide validity.
class RangeDecoder {
 public:
  explicit RangeDecoder(const ByteBuffer& buf);
  RangeDecoder(const uint8_t* data, size_t size);

  /// Returns the cumulative-frequency value of the current code point under
  /// a model with the given total; pass it to the model's FindSymbol.
  uint32_t DecodeTarget(uint32_t total) const;

  /// Consumes the symbol whose range was found by the model.
  void Advance(const SymbolRange& range);

 private:
  uint8_t NextByte();

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
};

}  // namespace dbgc

#endif  // DBGC_ENTROPY_RANGE_CODER_H_
