#include "entropy/statistics.h"

#include <cmath>
#include <unordered_map>

namespace dbgc {

namespace {

template <typename T>
double EntropyOf(const std::vector<T>& values) {
  if (values.empty()) return 0.0;
  std::unordered_map<T, size_t> counts;
  for (const T& v : values) ++counts[v];
  const double n = static_cast<double>(values.size());
  double h = 0.0;
  for (const auto& [value, count] : counts) {
    (void)value;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double ShannonEntropy(const std::vector<int64_t>& values) {
  return EntropyOf(values);
}

double ShannonEntropyBytes(const std::vector<uint8_t>& bytes) {
  return EntropyOf(bytes);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

}  // namespace dbgc
