// Sequence statistics: Shannon entropy (Section 2.1 of the paper), mean,
// and standard deviation. Used by tests, benchmarks, and the ablation
// analysis to reason about why each encoding step helps.

#ifndef DBGC_ENTROPY_STATISTICS_H_
#define DBGC_ENTROPY_STATISTICS_H_

#include <cstdint>
#include <vector>

namespace dbgc {

/// Shannon entropy H(L) in bits per element of a value sequence:
/// H(L) = -sum_i P(v_i) log2 P(v_i), over the distinct values of L.
/// Returns 0 for an empty sequence.
double ShannonEntropy(const std::vector<int64_t>& values);

/// Shannon entropy of a byte sequence.
double ShannonEntropyBytes(const std::vector<uint8_t>& bytes);

/// Arithmetic mean; 0 for an empty sequence.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for sequences shorter than 2.
double StdDev(const std::vector<double>& values);

}  // namespace dbgc

#endif  // DBGC_ENTROPY_STATISTICS_H_
