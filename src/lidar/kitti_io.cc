#include "lidar/kitti_io.h"

#include <cstdio>
#include <cstring>

#include "common/contracts.h"

namespace dbgc {

Result<PointCloud> ParseKittiBin(const uint8_t* data, size_t size) {
  if (size % 16 != 0) {
    return Status::Corruption("kitti: file size is not a multiple of 16");
  }
  PointCloud pc;
  const BoundedAlloc alloc(size);
  DBGC_RETURN_NOT_OK(alloc.Reserve(&pc, size / 16, /*min_bytes_each=*/16,
                                   "kitti points"));
  for (size_t off = 0; off < size; off += 16) {
    float v[4];
    std::memcpy(v, data + off, 16);
    pc.Add(static_cast<double>(v[0]), static_cast<double>(v[1]),
           static_cast<double>(v[2]));
  }
  return pc;
}

std::vector<uint8_t> SerializeKittiBin(const PointCloud& pc) {
  std::vector<uint8_t> out;
  out.resize(pc.size() * 16);
  size_t off = 0;
  for (const Point3& p : pc) {
    const float v[4] = {static_cast<float>(p.x), static_cast<float>(p.y),
                        static_cast<float>(p.z), 0.0f};
    std::memcpy(out.data() + off, v, 16);
    off += 16;
  }
  return out;
}

Result<PointCloud> ReadKittiBin(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + path);
  }
  // DBGC_LINT_ALLOW(R2): sized from local file metadata (ftell), not decoded data.
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return Status::IOError("short read on " + path);
  return ParseKittiBin(bytes.data(), bytes.size());
}

Status WriteKittiBin(const std::string& path, const PointCloud& pc) {
  const std::vector<uint8_t> bytes = SerializeKittiBin(pc);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::IOError("short write on " + path);
  }
  return Status::OK();
}

}  // namespace dbgc
