// KITTI Velodyne binary file I/O.
//
// The KITTI format stores each point as four little-endian 32-bit floats:
// x, y, z, intensity. DBGC compresses geometry only; intensity is written
// as zero and ignored on read.

#ifndef DBGC_LIDAR_KITTI_IO_H_
#define DBGC_LIDAR_KITTI_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point_cloud.h"
#include "common/status.h"

namespace dbgc {

/// Reads a KITTI .bin point cloud from `path`.
Result<PointCloud> ReadKittiBin(const std::string& path);

/// Writes `pc` to `path` in KITTI .bin format (intensity = 0).
Status WriteKittiBin(const std::string& path, const PointCloud& pc);

/// Parses KITTI .bin bytes from memory.
Result<PointCloud> ParseKittiBin(const uint8_t* data, size_t size);

/// Serializes `pc` to KITTI .bin bytes.
std::vector<uint8_t> SerializeKittiBin(const PointCloud& pc);

}  // namespace dbgc

#endif  // DBGC_LIDAR_KITTI_IO_H_
