// PLY (Polygon File Format) point-cloud I/O: the interchange format of the
// wider point-cloud ecosystem (Draco, CloudCompare, MeshLab). Supports
// binary-little-endian and ASCII vertex clouds with float or double x/y/z
// properties; other properties are skipped on read.

#ifndef DBGC_LIDAR_PLY_IO_H_
#define DBGC_LIDAR_PLY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point_cloud.h"
#include "common/status.h"

namespace dbgc {

/// Parses a PLY file from memory.
Result<PointCloud> ParsePly(const uint8_t* data, size_t size);

/// Reads a PLY point cloud from `path`.
Result<PointCloud> ReadPly(const std::string& path);

/// Serializes `pc` as binary-little-endian PLY with float vertices.
std::vector<uint8_t> SerializePly(const PointCloud& pc);

/// Writes `pc` to `path` as binary-little-endian PLY.
Status WritePly(const std::string& path, const PointCloud& pc);

}  // namespace dbgc

#endif  // DBGC_LIDAR_PLY_IO_H_
