#include "lidar/scene_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbgc {

std::string SceneTypeName(SceneType type) {
  switch (type) {
    case SceneType::kCampus:
      return "campus";
    case SceneType::kCity:
      return "city";
    case SceneType::kResidential:
      return "residential";
    case SceneType::kRoad:
      return "road";
    case SceneType::kUrban:
      return "urban";
    case SceneType::kFordCampus:
      return "ford";
  }
  return "unknown";
}

std::vector<SceneType> AllSceneTypes() {
  return {SceneType::kCampus, SceneType::kCity, SceneType::kResidential,
          SceneType::kRoad,   SceneType::kUrban, SceneType::kFordCampus};
}

namespace {

// Surface classes drive dropout and range-noise behaviour.
enum class Material { kGround, kWall, kVehicle, kPole, kFoliage };

struct Hit {
  double t = std::numeric_limits<double>::infinity();
  Material material = Material::kGround;
  bool facade = false;  // Wall with window/reveal depth relief.
};

struct Box {
  Point3 min;
  Point3 max;
  Material material = Material::kWall;
  bool facade = false;  // Building front with window relief.

  // Slab-method ray/AABB intersection from the origin along unit `d`.
  // Returns the entry distance or infinity.
  double Intersect(const Point3& d) const {
    double t0 = 0.0, t1 = std::numeric_limits<double>::infinity();
    const double o[3] = {0.0, 0.0, 0.0};
    const double dir[3] = {d.x, d.y, d.z};
    const double lo[3] = {min.x, min.y, min.z};
    const double hi[3] = {max.x, max.y, max.z};
    for (int a = 0; a < 3; ++a) {
      if (std::fabs(dir[a]) < 1e-12) {
        if (o[a] < lo[a] || o[a] > hi[a]) {
          return std::numeric_limits<double>::infinity();
        }
        continue;
      }
      double ta = (lo[a] - o[a]) / dir[a];
      double tb = (hi[a] - o[a]) / dir[a];
      if (ta > tb) std::swap(ta, tb);
      t0 = std::max(t0, ta);
      t1 = std::min(t1, tb);
      if (t0 > t1) return std::numeric_limits<double>::infinity();
    }
    return t0 > 1e-9 ? t0 : std::numeric_limits<double>::infinity();
  }
};

struct Cylinder {
  double cx = 0.0, cy = 0.0;  // Axis position (vertical axis).
  double radius = 0.1;
  double z_min = 0.0, z_max = 1.0;
  Material material = Material::kPole;

  double Intersect(const Point3& d) const {
    // Solve |o_xy + t*d_xy - c_xy| = radius with o at the origin.
    const double a = d.x * d.x + d.y * d.y;
    if (a < 1e-12) return std::numeric_limits<double>::infinity();
    const double b = -2.0 * (d.x * cx + d.y * cy);
    const double c = cx * cx + cy * cy - radius * radius;
    const double disc = b * b - 4 * a * c;
    if (disc < 0) return std::numeric_limits<double>::infinity();
    const double sq = std::sqrt(disc);
    for (double t : {(-b - sq) / (2 * a), (-b + sq) / (2 * a)}) {
      if (t > 1e-9) {
        const double z = t * d.z;
        if (z >= z_min && z <= z_max) return t;
      }
    }
    return std::numeric_limits<double>::infinity();
  }
};

struct Sphere {
  Point3 center;
  double radius = 1.0;
  Material material = Material::kFoliage;

  double Intersect(const Point3& d) const {
    const double b = -2.0 * (d.x * center.x + d.y * center.y + d.z * center.z);
    const double c = center.SquaredNorm() - radius * radius;
    const double disc = b * b - 4 * c;
    if (disc < 0) return std::numeric_limits<double>::infinity();
    const double sq = std::sqrt(disc);
    const double t = (-b - sq) / 2;
    return t > 1e-9 ? t : std::numeric_limits<double>::infinity();
  }
};

// A rectangular ground region with extra surface relief (grass strips,
// gravel shoulders, lawns): smooth asphalt compresses trivially under an
// octree, real roadsides do not.
struct RoughPatch {
  double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  double sigma = 0.03;  // Extra relief std-dev in meters.

  bool Contains(double x, double y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
};

// A procedural scene: ground plane plus primitive lists. The sensor sits at
// the origin; the ground is at z = -mount_height.
struct Scene {
  double ground_z = -1.73;
  double ground_roughness = 0.012;  // Std-dev of iid surface noise (m).
  std::vector<Box> boxes;
  std::vector<Cylinder> cylinders;
  std::vector<Sphere> spheres;
  std::vector<RoughPatch> rough_patches;
  // Local -> world offset: the ego position when this scene copy was
  // ray-cast. Deterministic surface patterns (terrain octaves, facade
  // windows) evaluate in world coordinates so they stay glued to the
  // geometry as the ego drives through a sequence (GenerateSequence);
  // zero for single-frame Generate.
  double world_x = 0.0, world_y = 0.0;
  // Correlated terrain undulation (two sinusoidal octaves); amplitude is
  // scaled by the local rough-patch sigma. Real verges and lawns are
  // smooth at the footprint scale but undulate over meters, which is what
  // spreads ground returns across several octree cells vertically.
  double terrain_k1x = 1.1, terrain_k1y = 0.7, terrain_p1 = 0.0;
  double terrain_k2x = 2.3, terrain_k2y = 2.7, terrain_p2 = 0.0;

  double PatchSigma(double x, double y) const {
    double sigma = 0.0;
    for (const RoughPatch& p : rough_patches) {
      if (p.Contains(x, y)) sigma = std::max(sigma, p.sigma);
    }
    return sigma;
  }

  // Deterministic relief height at local (x, y): correlated octaves scaled
  // by the local patch sigma. The octaves sample world coordinates.
  double TerrainRelief(double x, double y) const {
    const double sigma = PatchSigma(x, y);
    if (sigma == 0.0) return 0.0;
    const double wx = x + world_x;
    const double wy = y + world_y;
    const double o1 = std::sin(terrain_k1x * wx + terrain_p1) *
                      std::sin(terrain_k1y * wy + 0.4);
    const double o2 = std::sin(terrain_k2x * wx + terrain_p2) *
                      std::sin(terrain_k2y * wy + 1.3);
    return sigma * (1.2 * o1 + 0.3 * o2);
  }

  Hit Cast(const Point3& d) const {
    Hit hit;
    if (d.z < -1e-6) {
      const double t = ground_z / d.z;
      if (t > 1e-9 && t < hit.t) {
        hit.t = t;
        hit.material = Material::kGround;
      }
    }
    for (const Box& b : boxes) {
      const double t = b.Intersect(d);
      if (t < hit.t) {
        hit.t = t;
        hit.material = b.material;
        hit.facade = b.facade;
      }
    }
    for (const Cylinder& c : cylinders) {
      const double t = c.Intersect(d);
      if (t < hit.t) {
        hit.t = t;
        hit.material = c.material;
      }
    }
    for (const Sphere& s : spheres) {
      const double t = s.Intersect(d);
      if (t < hit.t) {
        hit.t = t;
        hit.material = s.material;
      }
    }
    return hit;
  }
};

// Cars are modelled as two stacked boxes (body + cabin), axis-aligned for
// speed. The deterministic half, reused every frame for moving actors.
void AddCarBoxes(Scene* scene, double x, double y, double len, double wid) {
  const double gz = scene->ground_z;
  scene->boxes.push_back(Box{Point3{x - len / 2, y - wid / 2, gz + 0.25},
                             Point3{x + len / 2, y + wid / 2, gz + 1.45},
                             Material::kVehicle});
  scene->boxes.push_back(
      Box{Point3{x - len / 4, y - wid / 2 + 0.15, gz + 1.45},
          Point3{x + len / 4, y + wid / 2 - 0.15, gz + 1.75},
          Material::kVehicle});
}

void AddCar(Scene* scene, Rng* rng, double x, double y, double heading_90) {
  // heading_90 flips length/width.
  double len = 4.2 + rng->NextRange(-0.5, 0.8);
  double wid = 1.8 + rng->NextRange(-0.1, 0.2);
  if (heading_90 > 0.5) std::swap(len, wid);
  AddCarBoxes(scene, x, y, len, wid);
}

void AddTree(Scene* scene, Rng* rng, double x, double y) {
  const double gz = scene->ground_z;
  const double trunk_h = rng->NextRange(2.5, 5.0);
  scene->cylinders.push_back(Cylinder{x, y, rng->NextRange(0.12, 0.35),
                                      gz, gz + trunk_h, Material::kPole});
  scene->spheres.push_back(
      Sphere{Point3{x, y, gz + trunk_h + rng->NextRange(1.0, 2.5)},
             rng->NextRange(1.5, 3.5), Material::kFoliage});
}

void AddPole(Scene* scene, Rng* rng, double x, double y) {
  const double gz = scene->ground_z;
  scene->cylinders.push_back(Cylinder{x, y, rng->NextRange(0.06, 0.18), gz,
                                      gz + rng->NextRange(4.0, 9.0),
                                      Material::kPole});
}

void AddBush(Scene* scene, Rng* rng, double x, double y) {
  const double gz = scene->ground_z;
  scene->spheres.push_back(
      Sphere{Point3{x, y, gz + rng->NextRange(0.3, 0.8)},
             rng->NextRange(0.5, 1.4), Material::kFoliage});
}

// Small street furniture and mid-range clutter: bins, bollards, rocks,
// shrubs. Individually minor, collectively they dominate the sparse band
// of real scans.
void AddClutter(Scene* scene, Rng* rng, int count, double min_range,
                double max_range) {
  const double gz = scene->ground_z;
  for (int i = 0; i < count; ++i) {
    const double angle = rng->NextRange(0, 2 * M_PI);
    const double range = rng->NextRange(min_range, max_range);
    const double x = range * std::cos(angle);
    const double y = range * std::sin(angle);
    switch (rng->NextBounded(3)) {
      case 0:  // Bin / hydrant / bollard.
        scene->cylinders.push_back(
            Cylinder{x, y, rng->NextRange(0.12, 0.45), gz,
                     gz + rng->NextRange(0.5, 1.3), Material::kPole});
        break;
      case 1:  // Shrub.
        scene->spheres.push_back(
            Sphere{Point3{x, y, gz + rng->NextRange(0.2, 0.6)},
                   rng->NextRange(0.3, 0.9), Material::kFoliage});
        break;
      default:  // Rock / crate.
        scene->boxes.push_back(
            Box{Point3{x - 0.3, y - 0.3, gz},
                Point3{x + rng->NextRange(0.2, 0.7),
                       y + rng->NextRange(0.2, 0.7),
                       gz + rng->NextRange(0.3, 0.9)},
                Material::kVehicle});
        break;
    }
  }
}

// Pedestrians: thin vertical boxes.
void AddPedestrians(Scene* scene, Rng* rng, int count, double min_lat,
                    double max_lat) {
  const double gz = scene->ground_z;
  for (int i = 0; i < count; ++i) {
    const double x = rng->NextRange(-45, 45);
    const double y = (rng->NextBool(0.5) ? 1 : -1) *
                     rng->NextRange(min_lat, max_lat);
    scene->boxes.push_back(
        Box{Point3{x - 0.25, y - 0.25, gz},
            Point3{x + 0.25, y + 0.25, gz + rng->NextRange(1.5, 1.9)},
            Material::kVehicle});
  }
}

// Cross-street facades closing the corridor at both ends, plus a queue of
// distant vehicles down the road. Long-range face-on walls are the classic
// content of street scans: isolated for an octree (samples many cells
// apart) yet azimuth-regular for scan-order coding.
void AddCorridorEnds(Scene* scene, Rng* rng, double road_half_width) {
  const double gz = scene->ground_z;
  for (int side : {-1, 1}) {
    const double x0 = side * rng->NextRange(55.0, 90.0);
    const double depth = rng->NextRange(8.0, 15.0) * side;
    // Two facade segments leaving a road gap.
    const double gap = road_half_width + rng->NextRange(0.0, 3.0);
    scene->boxes.push_back(Box{
        Point3{std::min(x0, x0 + depth), gap, gz},
        Point3{std::max(x0, x0 + depth), gap + rng->NextRange(20.0, 45.0),
               gz + rng->NextRange(10.0, 30.0)},
        Material::kWall, /*facade=*/true});
    scene->boxes.push_back(Box{
        Point3{std::min(x0, x0 + depth), -gap - rng->NextRange(20.0, 45.0),
               gz},
        Point3{std::max(x0, x0 + depth), -gap, gz + rng->NextRange(10.0, 30.0)},
        Material::kWall, /*facade=*/true});
    // Sometimes a block fully closes the view farther out.
    if (rng->NextBool(0.6)) {
      const double x1 = side * rng->NextRange(95.0, 118.0);
      scene->boxes.push_back(Box{
          Point3{std::min(x1, x1 + depth), -50, gz},
          Point3{std::max(x1, x1 + depth), 50, gz + rng->NextRange(8.0, 25.0)},
          Material::kWall, /*facade=*/true});
    }
  }
  // Distant traffic down the corridor.
  const int cars = 4 + static_cast<int>(rng->NextBounded(5));
  for (int i = 0; i < cars; ++i) {
    AddCar(scene, rng, (rng->NextBool(0.5) ? 1 : -1) * rng->NextRange(35, 85),
           rng->NextRange(-road_half_width * 0.8, road_half_width * 0.8), 0.0);
  }
}

// Grass/gravel verges flanking the roadway between |y| = inner and outer.
void AddVerges(Scene* scene, double inner, double outer, double sigma) {
  scene->rough_patches.push_back(RoughPatch{-95, 95, inner, outer, sigma});
  scene->rough_patches.push_back(RoughPatch{-95, 95, -outer, -inner, sigma});
}

void AddBuildingRow(Scene* scene, Rng* rng, double offset_y, int side,
                    double min_h, double max_h, double gap_prob,
                    double depth = 12.0) {
  // A row of facades parallel to the x axis at lateral distance offset_y.
  double x = -90.0;
  const double gz = scene->ground_z;
  while (x < 90.0) {
    const double width = rng->NextRange(8.0, 22.0);
    if (!rng->NextBool(gap_prob)) {
      const double h = rng->NextRange(min_h, max_h);
      const double y0 = side * offset_y;
      const double y1 = side * (offset_y + depth);
      scene->boxes.push_back(Box{
          Point3{x, std::min(y0, y1), gz},
          Point3{x + width, std::max(y0, y1), gz + h}, Material::kWall,
          /*facade=*/true});
    }
    x += width + rng->NextRange(0.5, 6.0);
  }
}

Scene BuildScene(SceneType type, Rng* rng, double mount_height) {
  Scene scene;
  scene.ground_z = -mount_height;
  scene.terrain_p1 = rng->NextRange(0, 2 * M_PI);
  scene.terrain_p2 = rng->NextRange(0, 2 * M_PI);
  scene.terrain_k1x = rng->NextRange(0.7, 1.6);
  scene.terrain_k1y = rng->NextRange(0.5, 1.2);
  switch (type) {
    case SceneType::kCity: {
      scene.ground_roughness = 0.010;
      AddVerges(&scene, 6.8, 15.0, 0.040);
      AddBuildingRow(&scene, rng, rng->NextRange(12.0, 18.0), +1, 8.0, 35.0,
                     0.12);
      AddBuildingRow(&scene, rng, rng->NextRange(12.0, 18.0), -1, 8.0, 35.0,
                     0.12);
      AddClutter(&scene, rng, 45, 8.0, 60.0);
      AddPedestrians(&scene, rng, 12, 4.5, 12.0);
      AddCorridorEnds(&scene, rng, 7.0);
      const int cars = 10 + static_cast<int>(rng->NextBounded(8));
      for (int i = 0; i < cars; ++i) {
        AddCar(&scene, rng, rng->NextRange(-45, 45),
               rng->NextRange(-6.5, 6.5), 0.0);
      }
      for (int i = 0; i < 12; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddPole(&scene, rng, rng->NextRange(-60, 60),
                side * rng->NextRange(5.5, 7.0));
      }
      for (int i = 0; i < 18; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddBush(&scene, rng, rng->NextRange(-50, 50),
                side * rng->NextRange(5.0, 8.5));
      }
      for (int i = 0; i < 6; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddTree(&scene, rng, rng->NextRange(-45, 45),
                side * rng->NextRange(6.0, 9.0));
      }
      break;
    }
    case SceneType::kUrban: {
      scene.ground_roughness = 0.010;
      AddVerges(&scene, 5.8, 12.0, 0.035);
      AddBuildingRow(&scene, rng, rng->NextRange(9.0, 14.0), +1, 15.0, 60.0,
                     0.06);
      AddBuildingRow(&scene, rng, rng->NextRange(9.0, 14.0), -1, 15.0, 60.0,
                     0.06);
      AddClutter(&scene, rng, 40, 7.0, 50.0);
      AddPedestrians(&scene, rng, 18, 4.0, 9.0);
      AddCorridorEnds(&scene, rng, 6.0);
      const int cars = 18 + static_cast<int>(rng->NextBounded(10));
      for (int i = 0; i < cars; ++i) {
        AddCar(&scene, rng, rng->NextRange(-50, 50),
               rng->NextRange(-5.5, 5.5), 0.0);
      }
      for (int i = 0; i < 16; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddPole(&scene, rng, rng->NextRange(-60, 60),
                side * rng->NextRange(4.5, 5.8));
      }
      for (int i = 0; i < 14; ++i) {
        AddBush(&scene, rng, rng->NextRange(-55, 55),
                (rng->NextBool(0.5) ? 1 : -1) * rng->NextRange(4.2, 6.0));
      }
      break;
    }
    case SceneType::kResidential: {
      scene.ground_roughness = 0.018;
      AddVerges(&scene, 5.5, 30.0, 0.045);
      AddClutter(&scene, rng, 50, 7.0, 60.0);
      AddPedestrians(&scene, rng, 6, 4.0, 10.0);
      AddCorridorEnds(&scene, rng, 6.5);
      AddBuildingRow(&scene, rng, rng->NextRange(9.0, 14.0), +1, 4.0, 9.0,
                     0.35, 9.0);
      AddBuildingRow(&scene, rng, rng->NextRange(9.0, 14.0), -1, 4.0, 9.0,
                     0.35, 9.0);
      // Fences: long thin boxes near the road edge.
      for (int side : {-1, 1}) {
        const double y = side * rng->NextRange(6.5, 8.0);
        scene.boxes.push_back(
            Box{Point3{-70, y - 0.08, scene.ground_z},
                Point3{70, y + 0.08, scene.ground_z + 1.6}, Material::kWall});
      }
      const int cars = 6 + static_cast<int>(rng->NextBounded(5));
      for (int i = 0; i < cars; ++i) {
        AddCar(&scene, rng, rng->NextRange(-35, 35),
               (rng->NextBool(0.5) ? 1 : -1) * rng->NextRange(3.2, 5.6), 0.0);
      }
      for (int i = 0; i < 18; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddTree(&scene, rng, rng->NextRange(-55, 55),
                side * rng->NextRange(7.5, 20.0));
      }
      for (int i = 0; i < 20; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddBush(&scene, rng, rng->NextRange(-50, 50),
                side * rng->NextRange(6.0, 18.0));
      }
      break;
    }
    case SceneType::kCampus: {
      scene.ground_roughness = 0.016;
      // Lawns everywhere except the access road.
      scene.rough_patches.push_back(RoughPatch{-95, 95, 5.0, 95, 0.045});
      scene.rough_patches.push_back(RoughPatch{-95, 95, -95, -5.0, 0.045});
      AddClutter(&scene, rng, 55, 8.0, 70.0);
      AddPedestrians(&scene, rng, 10, 3.0, 25.0);
      // A few large blocks at moderate distance with open lawns.
      for (int i = 0; i < 5; ++i) {
        const double cx = rng->NextRange(-60, 60);
        const double cy = (rng->NextBool(0.5) ? 1 : -1) *
                          rng->NextRange(14.0, 45.0);
        const double w = rng->NextRange(15, 40), d = rng->NextRange(10, 25);
        scene.boxes.push_back(Box{
            Point3{cx - w / 2, cy - d / 2, scene.ground_z},
            Point3{cx + w / 2, cy + d / 2,
                   scene.ground_z + rng->NextRange(8, 25)},
            Material::kWall});
      }
      for (int i = 0; i < 25; ++i) {
        AddTree(&scene, rng, rng->NextRange(-55, 55), rng->NextRange(-55, 55));
      }
      const int cars = 4 + static_cast<int>(rng->NextBounded(4));
      for (int i = 0; i < cars; ++i) {
        AddCar(&scene, rng, rng->NextRange(-30, 30), rng->NextRange(-10, 10),
               0.0);
      }
      for (int i = 0; i < 8; ++i) {
        AddPole(&scene, rng, rng->NextRange(-45, 45), rng->NextRange(-45, 45));
      }
      for (int i = 0; i < 15; ++i) {
        AddBush(&scene, rng, rng->NextRange(-50, 50), rng->NextRange(-50, 50));
      }
      break;
    }
    case SceneType::kRoad: {
      scene.ground_roughness = 0.008;
      AddVerges(&scene, 9.0, 40.0, 0.050);
      AddClutter(&scene, rng, 35, 12.0, 80.0);
      AddCorridorEnds(&scene, rng, 9.0);
      // Noise barriers / guard rails along an open highway.
      for (int side : {-1, 1}) {
        const double y = side * rng->NextRange(12.0, 18.0);
        scene.boxes.push_back(
            Box{Point3{-90, y - 0.2, scene.ground_z},
                Point3{90, y + 0.2, scene.ground_z + rng->NextRange(2.5, 4.5)},
                Material::kWall});
        const double ry = side * rng->NextRange(8.0, 10.5);
        scene.boxes.push_back(
            Box{Point3{-90, ry - 0.06, scene.ground_z + 0.4},
                Point3{90, ry + 0.06, scene.ground_z + 0.8}, Material::kWall});
      }
      const int cars = 8 + static_cast<int>(rng->NextBounded(6));
      for (int i = 0; i < cars; ++i) {
        AddCar(&scene, rng, rng->NextRange(-70, 70), rng->NextRange(-7.5, 7.5),
               0.0);
      }
      for (int i = 0; i < 16; ++i) {
        const int side = rng->NextBool(0.5) ? 1 : -1;
        AddBush(&scene, rng, rng->NextRange(-80, 80),
                side * rng->NextRange(10.5, 16.0));
      }
      // Occasional distant building.
      for (int i = 0; i < 3; ++i) {
        const double cx = rng->NextRange(-80, 80);
        const double cy = (rng->NextBool(0.5) ? 1 : -1) *
                          rng->NextRange(30.0, 70.0);
        scene.boxes.push_back(Box{
            Point3{cx, cy, scene.ground_z},
            Point3{cx + rng->NextRange(10, 30), cy + rng->NextRange(8, 20),
                   scene.ground_z + rng->NextRange(5, 15)},
            Material::kWall});
      }
      break;
    }
    case SceneType::kFordCampus: {
      scene.ground_roughness = 0.014;
      scene.rough_patches.push_back(RoughPatch{-95, 95, 16.0, 95, 0.040});
      scene.rough_patches.push_back(RoughPatch{-95, 95, -95, -16.0, 0.040});
      AddClutter(&scene, rng, 45, 8.0, 70.0);
      AddPedestrians(&scene, rng, 8, 4.0, 20.0);
      for (int i = 0; i < 4; ++i) {
        const double cx = rng->NextRange(-55, 55);
        const double cy = (rng->NextBool(0.5) ? 1 : -1) *
                          rng->NextRange(16.0, 40.0);
        const double w = rng->NextRange(20, 45), d = rng->NextRange(12, 22);
        scene.boxes.push_back(Box{
            Point3{cx - w / 2, cy - d / 2, scene.ground_z},
            Point3{cx + w / 2, cy + d / 2,
                   scene.ground_z + rng->NextRange(6, 18)},
            Material::kWall});
      }
      // Parking rows: regularly spaced cars.
      const double row_y = (rng->NextBool(0.5) ? 1 : -1) *
                           rng->NextRange(8.0, 14.0);
      for (int i = 0; i < 10; ++i) {
        if (rng->NextBool(0.75)) {
          AddCar(&scene, rng, -30.0 + i * 6.0,
                 row_y + rng->NextRange(-0.3, 0.3), 1.0);
        }
      }
      for (int i = 0; i < 10; ++i) {
        AddTree(&scene, rng, rng->NextRange(-50, 50), rng->NextRange(-50, 50));
      }
      for (int i = 0; i < 6; ++i) {
        AddPole(&scene, rng, rng->NextRange(-40, 40), rng->NextRange(-40, 40));
      }
      for (int i = 0; i < 12; ++i) {
        AddBush(&scene, rng, rng->NextRange(-45, 45), rng->NextRange(-45, 45));
      }
      break;
    }
  }
  return scene;
}

// Range-dependent probability that a beam yields no return.
double DropoutProbability(Material material, double r, double r_max) {
  const double x = r / r_max;
  switch (material) {
    case Material::kGround: {
      // Grazing asphalt/soil returns fade fast: weak beyond ~30 m, mostly
      // gone by ~55 m. This is what isolates far ground rings in real
      // captures.
      const double g = r / 55.0;
      return std::min(0.97, 0.05 + 0.95 * g * g);
    }
    case Material::kWall:
      return 0.02 + 0.25 * x * x;
    case Material::kVehicle:
      return 0.04 + 0.35 * x * x;  // Paint/glass lose some returns.
    case Material::kPole:
      return 0.10 + 0.30 * x;
    case Material::kFoliage:
      return 0.12 + 0.25 * x;      // Canopies are porous.
  }
  return 0.5;
}

// Calibration jitter: the released (calibrated) cloud deviates from the
// raw sampling grid (Figure 5). Each ring also has a fixed elevation
// offset, as physical lasers do. Fixed per sensor unit, so a coherent
// sequence draws it once.
struct RingCalibration {
  std::vector<double> offset;
  std::vector<double> phase;
  std::vector<double> range_bias;
};

RingCalibration DrawRingCalibration(const SensorMetadata& sensor, Rng* rng) {
  const double u_theta = sensor.AzimuthStep();
  const double u_phi = sensor.PolarStep();
  RingCalibration calib;
  calib.offset.resize(static_cast<size_t>(sensor.vertical_samples));
  calib.phase.resize(static_cast<size_t>(sensor.vertical_samples));
  calib.range_bias.resize(static_cast<size_t>(sensor.vertical_samples));
  for (double& o : calib.offset) o = rng->NextGaussian() * 0.12 * u_phi;
  for (double& o : calib.phase) o = rng->NextGaussian() * 0.25 * u_theta;
  // Most of the HDL-64E's ~2 cm range error is a systematic per-laser bias
  // that survives calibration; the per-return component is smaller.
  for (double& o : calib.range_bias) o = rng->NextGaussian() * 0.015;
  return calib;
}

// Ray-casts one frame against `scene` with fixed calibration and per-frame
// noise/dropout drawn from `rng`. The rng draw order here is pinned by the
// golden bitstream vault (tests/golden) — keep it stable.
PointCloud CastRays(const Scene& scene, const SensorMetadata& sensor,
                    const RingCalibration& calib, Rng* frame_rng) {
  PointCloud pc;
  pc.Reserve(static_cast<size_t>(sensor.horizontal_samples) *
             sensor.vertical_samples / 2);
  const double u_theta = sensor.AzimuthStep();
  const double u_phi = sensor.PolarStep();
  const std::vector<double>& ring_offset = calib.offset;
  const std::vector<double>& ring_phase = calib.phase;
  const std::vector<double>& ring_range_bias = calib.range_bias;
  Rng& rng = *frame_rng;

  for (int w = 0; w < sensor.vertical_samples; ++w) {
    const double phi0 =
        sensor.phi_max - (w + 0.5) * u_phi + ring_offset[w];
    for (int h = 0; h < sensor.horizontal_samples; ++h) {
      // Calibration offsets are fixed per ring; per-sample angular noise is
      // small (encoder ticks), which is what keeps calibrated clouds
      // near-regular in (theta, phi) space (Figure 5).
      const double theta0 = sensor.theta_min + (h + 0.5) * u_theta;
      // Angles are encoder-driven and essentially deterministic in
      // calibrated data; residual per-sample wobble is a tiny fraction of
      // a step. The measurement noise lives in the range channel.
      const double theta =
          theta0 + ring_phase[w] + rng.NextGaussian() * 0.004 * u_theta;
      const double phi = phi0 + rng.NextGaussian() * 0.003 * u_phi;
      const double cos_phi = std::cos(phi);
      const Point3 dir{cos_phi * std::cos(theta), cos_phi * std::sin(theta),
                       std::sin(phi)};
      const Hit hit = scene.Cast(dir);
      if (!std::isfinite(hit.t) || hit.t < sensor.r_min ||
          hit.t > sensor.r_max) {
        continue;
      }
      if (rng.NextBool(DropoutProbability(hit.material, hit.t,
                                          sensor.r_max))) {
        continue;
      }
      double r = hit.t + ring_range_bias[w] + rng.NextGaussian() * 0.007;
      if (hit.material == Material::kFoliage) {
        // Returns scatter within the canopy volume.
        r += rng.NextRange(0.0, 0.8);
      }
      if (hit.facade && hit.material == Material::kWall) {
        // Window reveals and balconies: a deterministic depth pattern in
        // facade coordinates. Correlated along scan rings (a ring crosses
        // whole windows), but it layers the wall across several octree
        // cells in depth.
        const Point3 wall_hit = dir * hit.t;
        // Facade coordinates are world-anchored so the window pattern
        // stays glued to the wall as the ego moves (world_x/world_y are
        // zero for single-frame Generate).
        const double u = (wall_hit.x + scene.world_x) +
                         0.37 * (wall_hit.y + scene.world_y);  // Along-facade.
        const double v = wall_hit.z + sensor.mount_height;
        const double cell_u = u - 2.2 * std::floor(u / 2.2);
        const double cell_v = v - 3.0 * std::floor(v / 3.0);
        const bool window = cell_u > 0.5 && cell_u < 1.9 && cell_v > 0.9 &&
                            cell_v < 2.4;
        if (window) {
          // Recess depth varies per floor/column but is constant within
          // one window.
          const double recess =
              0.18 + 0.22 * std::fabs(std::sin(std::floor(u / 2.2) * 1.7 +
                                               std::floor(v / 3.0) * 2.9));
          r += recess / std::max(0.25, std::fabs(dir.y));
        }
      }
      if (hit.material == Material::kGround) {
        // Vertical relief dz shifts the range by ~dz / sin(|phi|); grazing
        // incidence amplifies surface structure. The correlated terrain
        // component varies smoothly along a scan ring while the small iid
        // component models grass blades and gravel.
        const Point3 ground_hit = dir * hit.t;
        const double amplification =
            1.0 / std::max(std::fabs(std::sin(phi)), 0.08);
        // Sub-footprint roughness is averaged out by the beam footprint
        // (5-15 cm at range), so only the macroscopic profile is amplified.
        const double dz_terrain =
            scene.TerrainRelief(ground_hit.x, ground_hit.y);
        const double dz_iid = rng.NextGaussian() * scene.ground_roughness;
        double dr = dz_terrain * amplification + dz_iid;
        dr = std::clamp(dr, -2.5, 2.5);
        r += dr;
      }
      if (r < sensor.r_min) continue;
      pc.Add(dir * r);
    }
  }
  return pc;
}

// Re-expresses `world` in the sensor frame at ego position (ex, ey):
// geometry shifts by -ego while the world-anchored surface patterns keep
// their world coordinates via world_x/world_y.
Scene SceneAtEgo(const Scene& world, double ex, double ey) {
  Scene local = world;
  local.world_x = ex;
  local.world_y = ey;
  for (Box& b : local.boxes) {
    b.min.x -= ex;
    b.min.y -= ey;
    b.max.x -= ex;
    b.max.y -= ey;
  }
  for (Cylinder& c : local.cylinders) {
    c.cx -= ex;
    c.cy -= ey;
  }
  for (Sphere& s : local.spheres) {
    s.center.x -= ex;
    s.center.y -= ey;
  }
  for (RoughPatch& p : local.rough_patches) {
    p.x0 -= ex;
    p.x1 -= ex;
    p.y0 -= ey;
    p.y1 -= ey;
  }
  return local;
}

// A car driving through the world at constant velocity (world coords).
struct MovingActor {
  double x = 0.0, y = 0.0;    // Position at t = 0.
  double vx = 0.0, vy = 0.0;  // Velocity (m/s).
  double len = 4.2, wid = 1.8;
};

std::vector<MovingActor> DrawMovingActors(const SequenceConfig& config,
                                          Rng* rng) {
  std::vector<MovingActor> actors;
  const int count = std::max(0, config.moving_actors);
  actors.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    MovingActor a;
    a.x = rng->NextRange(-40.0, 40.0);
    // Oncoming and same-direction lanes on either side of the ego.
    const double lane = (i % 2 == 0) ? 1.0 : -1.0;
    a.y = lane * rng->NextRange(2.2, 4.8);
    a.vx = -lane * config.actor_speed_mps * rng->NextRange(0.6, 1.4);
    a.vy = 0.0;
    a.len = 4.2 + rng->NextRange(-0.5, 0.8);
    a.wid = 1.8 + rng->NextRange(-0.1, 0.2);
    actors.push_back(a);
  }
  return actors;
}

}  // namespace

SceneGenerator::SceneGenerator(SceneType type, uint64_t seed)
    : type_(type), seed_(seed) {}

PointCloud SceneGenerator::Generate(uint32_t frame_index,
                                    const SensorMetadata& sensor) const {
  const uint64_t frame_seed =
      seed_ ^ (static_cast<uint64_t>(type_) * 0x9E3779B97F4A7C15ULL) ^
      (static_cast<uint64_t>(frame_index) * 0xD1B54A32D192ED03ULL);
  Rng rng(frame_seed);
  const Scene scene = BuildScene(type_, &rng, sensor.mount_height);
  const RingCalibration calib = DrawRingCalibration(sensor, &rng);
  return CastRays(scene, sensor, calib, &rng);
}

std::vector<StreamFrame> SceneGenerator::GenerateSequence(
    size_t num_frames, const SequenceConfig& config,
    const SensorMetadata& sensor) const {
  // A salt distinct from Generate's frame mixing: the sequence's world is
  // its own draw, not frame 0 of the single-frame path.
  const uint64_t sequence_seed =
      seed_ ^ (static_cast<uint64_t>(type_) * 0x9E3779B97F4A7C15ULL) ^
      0xC2B2AE3D27D4EB4FULL;
  Rng rng(sequence_seed);
  const Scene world = BuildScene(type_, &rng, sensor.mount_height);
  const std::vector<MovingActor> actors = DrawMovingActors(config, &rng);
  const RingCalibration calib = DrawRingCalibration(sensor, &rng);

  const double dt = sensor.frames_per_second > 0.0
                        ? 1.0 / sensor.frames_per_second
                        : 0.1;
  std::vector<StreamFrame> frames;
  frames.reserve(num_frames);
  for (size_t f = 0; f < num_frames; ++f) {
    const double t = static_cast<double>(f) * dt;
    const double ex = config.speed_mps * t;
    const double ey =
        config.lateral_period_s > 0.0
            ? config.lateral_amplitude *
                  std::sin(2.0 * M_PI * t / config.lateral_period_s)
            : 0.0;
    Scene frame_scene = SceneAtEgo(world, ex, ey);
    for (const MovingActor& a : actors) {
      AddCarBoxes(&frame_scene, a.x + a.vx * t - ex, a.y + a.vy * t - ey,
                  a.len, a.wid);
    }
    // Per-frame measurement noise and dropout are iid across frames; the
    // world, actors, and calibration above carry all the coherence.
    Rng frame_rng(sequence_seed ^ 0x9FB21C651E98DF25ULL ^
                  (static_cast<uint64_t>(f) * 0xD1B54A32D192ED03ULL));
    StreamFrame frame;
    frame.cloud = CastRays(frame_scene, sensor, calib, &frame_rng);
    frame.pose = RigidTransform{0.0, Point3{ex, ey, 0.0}};
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace dbgc
