// Synthetic LiDAR frame generator: the stand-in for the KITTI [22],
// Apollo [35], and Ford [42] captures used in the paper's evaluation.
//
// A frame is produced by ray-casting the Velodyne HDL-64E beam pattern
// (rings x azimuth steps) against a procedurally generated scene of ground,
// buildings, vehicles, poles, and vegetation, then applying calibration
// jitter, range noise, and range-dependent dropout. This reproduces the
// three statistics every codec in this repository keys on:
//   1. radial density falloff (the "spider web" of Figure 1),
//   2. near-grid regularity in (theta, phi) with calibration perturbations
//      (Figure 5), and
//   3. piecewise-smooth radial distances along scan rings with jumps at
//      object boundaries (Section 3.5, Step 8).

#ifndef DBGC_LIDAR_SCENE_GENERATOR_H_
#define DBGC_LIDAR_SCENE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point_cloud.h"
#include "common/rng.h"
#include "lidar/sensor_model.h"

namespace dbgc {

/// The scene families of the paper's three datasets.
enum class SceneType {
  kCampus,       ///< KITTI campus: large buildings, lawns, trees.
  kCity,         ///< KITTI city: continuous facades close to the road.
  kResidential,  ///< KITTI residential: houses, fences, parked cars.
  kRoad,         ///< KITTI road: open highway, barriers, sparse objects.
  kUrban,        ///< Apollo urban: dense tall facades, heavy traffic.
  kFordCampus,   ///< Ford campus: offices, parking lots with car rows.
};

/// Scene display names ("campus", "city", ...).
std::string SceneTypeName(SceneType type);

/// All scene types in evaluation order.
std::vector<SceneType> AllSceneTypes();

/// Deterministic synthetic LiDAR frame generator.
class SceneGenerator {
 public:
  /// Creates a generator for one scene family.
  /// Frames differ by frame_index; equal (type, seed, frame_index,
  /// metadata) always produce the same cloud.
  SceneGenerator(SceneType type, uint64_t seed = 20230316);

  /// Generates one calibrated point cloud frame.
  PointCloud Generate(uint32_t frame_index,
                      const SensorMetadata& sensor) const;

  /// Generates a frame with the default HDL-64E profile.
  PointCloud Generate(uint32_t frame_index = 0) const {
    return Generate(frame_index, SensorMetadata::VelodyneHdl64e());
  }

  SceneType type() const { return type_; }

 private:
  SceneType type_;
  uint64_t seed_;
};

}  // namespace dbgc

#endif  // DBGC_LIDAR_SCENE_GENERATOR_H_
