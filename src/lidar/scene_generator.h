// Synthetic LiDAR frame generator: the stand-in for the KITTI [22],
// Apollo [35], and Ford [42] captures used in the paper's evaluation.
//
// A frame is produced by ray-casting the Velodyne HDL-64E beam pattern
// (rings x azimuth steps) against a procedurally generated scene of ground,
// buildings, vehicles, poles, and vegetation, then applying calibration
// jitter, range noise, and range-dependent dropout. This reproduces the
// three statistics every codec in this repository keys on:
//   1. radial density falloff (the "spider web" of Figure 1),
//   2. near-grid regularity in (theta, phi) with calibration perturbations
//      (Figure 5), and
//   3. piecewise-smooth radial distances along scan rings with jumps at
//      object boundaries (Section 3.5, Step 8).

#ifndef DBGC_LIDAR_SCENE_GENERATOR_H_
#define DBGC_LIDAR_SCENE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point_cloud.h"
#include "common/rng.h"
#include "common/transforms.h"
#include "lidar/sensor_model.h"

namespace dbgc {

/// The scene families of the paper's three datasets.
enum class SceneType {
  kCampus,       ///< KITTI campus: large buildings, lawns, trees.
  kCity,         ///< KITTI city: continuous facades close to the road.
  kResidential,  ///< KITTI residential: houses, fences, parked cars.
  kRoad,         ///< KITTI road: open highway, barriers, sparse objects.
  kUrban,        ///< Apollo urban: dense tall facades, heavy traffic.
  kFordCampus,   ///< Ford campus: offices, parking lots with car rows.
};

/// Scene display names ("campus", "city", ...).
std::string SceneTypeName(SceneType type);

/// All scene types in evaluation order.
std::vector<SceneType> AllSceneTypes();

/// Configuration of a continuous drive through one scene (the PCGen
/// direction, PAPERS.md): the ego vehicle translates along +x at constant
/// speed with an optional lateral sway, while `moving_actors` cars drive
/// through the otherwise static world at constant velocities. Consecutive
/// frames of such a drive are temporally coherent — the workload the
/// temporal codec (docs/TEMPORAL.md) is measured on.
struct SequenceConfig {
  double speed_mps = 8.0;          ///< Ego forward speed along +x.
  double lateral_amplitude = 0.4;  ///< Lateral sway amplitude (meters).
  double lateral_period_s = 6.0;   ///< Sway period (seconds; <= 0 = none).
  int moving_actors = 4;           ///< Cars moving relative to the world.
  double actor_speed_mps = 6.0;    ///< Mean |velocity| of moving actors.
};

/// One pose-stamped frame of a generated drive.
struct StreamFrame {
  PointCloud cloud;     ///< Sensor-local points (sensor at the origin).
  RigidTransform pose;  ///< Sensor -> world transform at capture time.
};

/// Deterministic synthetic LiDAR frame generator.
class SceneGenerator {
 public:
  /// Creates a generator for one scene family.
  /// Frames differ by frame_index; equal (type, seed, frame_index,
  /// metadata) always produce the same cloud.
  SceneGenerator(SceneType type, uint64_t seed = 20230316);

  /// Generates one calibrated point cloud frame.
  PointCloud Generate(uint32_t frame_index,
                      const SensorMetadata& sensor) const;

  /// Generates a frame with the default HDL-64E profile.
  PointCloud Generate(uint32_t frame_index = 0) const {
    return Generate(frame_index, SensorMetadata::VelodyneHdl64e());
  }

  /// Generates a temporally coherent pose-stamped drive: one static world
  /// is built from the seed, then ray-cast from the moving ego position
  /// every frame (dt = 1 / sensor.frames_per_second). Ring calibration is
  /// fixed for the whole sequence, as on a physical unit; only range noise
  /// and dropout are redrawn per frame. Deterministic: equal (type, seed,
  /// num_frames, config, metadata) produce bit-identical sequences.
  /// Unrelated to Generate(frame_index), which rebuilds an independent
  /// world per frame.
  std::vector<StreamFrame> GenerateSequence(size_t num_frames,
                                            const SequenceConfig& config,
                                            const SensorMetadata& sensor) const;

  /// GenerateSequence with the default HDL-64E profile.
  std::vector<StreamFrame> GenerateSequence(
      size_t num_frames, const SequenceConfig& config = SequenceConfig()) const {
    return GenerateSequence(num_frames, config,
                            SensorMetadata::VelodyneHdl64e());
  }

  SceneType type() const { return type_; }

 private:
  SceneType type_;
  uint64_t seed_;
};

}  // namespace dbgc

#endif  // DBGC_LIDAR_SCENE_GENERATOR_H_
