#include "lidar/sensor_model.h"

#include <sstream>

namespace dbgc {

SensorMetadata SensorMetadata::VelodyneHdl64e(int horizontal_samples) {
  SensorMetadata m;
  m.theta_min = -M_PI;
  m.theta_max = M_PI;
  m.phi_min = -24.8 * M_PI / 180.0;
  m.phi_max = 2.0 * M_PI / 180.0;
  m.r_min = 0.9;
  m.r_max = 120.0;
  m.horizontal_samples = horizontal_samples;
  m.vertical_samples = 64;
  m.frames_per_second = 10.0;
  m.mount_height = 1.73;
  return m;
}

std::string SensorMetadata::ToConfigString() const {
  std::ostringstream out;
  out.precision(17);
  out << "theta_min " << theta_min << "\n";
  out << "theta_max " << theta_max << "\n";
  out << "phi_min " << phi_min << "\n";
  out << "phi_max " << phi_max << "\n";
  out << "r_min " << r_min << "\n";
  out << "r_max " << r_max << "\n";
  out << "horizontal_samples " << horizontal_samples << "\n";
  out << "vertical_samples " << vertical_samples << "\n";
  out << "frames_per_second " << frames_per_second << "\n";
  out << "mount_height " << mount_height << "\n";
  return out.str();
}

Result<SensorMetadata> SensorMetadata::FromConfigString(
    const std::string& config) {
  SensorMetadata m = VelodyneHdl64e();
  std::istringstream in(config);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key.empty()) continue;
    double value;
    if (!(ls >> value)) {
      return Status::InvalidArgument("sensor config: bad value for " + key);
    }
    if (key == "theta_min") {
      m.theta_min = value;
    } else if (key == "theta_max") {
      m.theta_max = value;
    } else if (key == "phi_min") {
      m.phi_min = value;
    } else if (key == "phi_max") {
      m.phi_max = value;
    } else if (key == "r_min") {
      m.r_min = value;
    } else if (key == "r_max") {
      m.r_max = value;
    } else if (key == "horizontal_samples") {
      m.horizontal_samples = static_cast<int>(value);
    } else if (key == "vertical_samples") {
      m.vertical_samples = static_cast<int>(value);
    } else if (key == "frames_per_second") {
      m.frames_per_second = value;
    } else if (key == "mount_height") {
      m.mount_height = value;
    } else {
      return Status::InvalidArgument("sensor config: unknown key " + key);
    }
  }
  if (m.horizontal_samples <= 0 || m.vertical_samples <= 0) {
    return Status::InvalidArgument("sensor config: sample counts must be > 0");
  }
  if (m.theta_max <= m.theta_min || m.phi_max <= m.phi_min) {
    return Status::InvalidArgument("sensor config: empty angular range");
  }
  if (m.r_max <= m.r_min || m.r_min < 0) {
    return Status::InvalidArgument("sensor config: bad radial range");
  }
  return m;
}

}  // namespace dbgc
