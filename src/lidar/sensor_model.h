// LiDAR sensor metadata (Section 3.3).
//
// The metadata carries the spherical-coordinate ranges and the horizontal /
// vertical sample counts H and W, from which the average per-sample angle
// steps u_theta and u_phi are derived. DBGC ships the Velodyne HDL-64E
// profile [9]; other sensors are supported by constructing a SensorMetadata
// directly ("importing the metadata of the sensor" in the paper's words).

#ifndef DBGC_LIDAR_SENSOR_MODEL_H_
#define DBGC_LIDAR_SENSOR_MODEL_H_

#include <cmath>
#include <string>

#include "common/status.h"

namespace dbgc {

/// Spherical-coordinate ranges and sampling geometry of a LiDAR sensor.
struct SensorMetadata {
  double theta_min = -M_PI;  ///< Minimum azimuthal angle (radians).
  double theta_max = M_PI;   ///< Maximum azimuthal angle (radians).
  double phi_min = 0.0;      ///< Minimum polar (elevation) angle (radians).
  double phi_max = 0.0;      ///< Maximum polar (elevation) angle (radians).
  double r_min = 0.0;        ///< Minimum measurable range (meters).
  double r_max = 0.0;        ///< Maximum measurable range (meters).
  int horizontal_samples = 0;  ///< H: samples per revolution.
  int vertical_samples = 0;    ///< W: number of laser rings.
  double frames_per_second = 10.0;  ///< Capture rate (frames/second).
  double mount_height = 1.73;       ///< Sensor height above ground (meters).

  /// u_theta: average azimuthal step between adjacent samples.
  double AzimuthStep() const {
    return (theta_max - theta_min) / horizontal_samples;
  }
  /// u_phi: average polar step between adjacent rings.
  double PolarStep() const {
    return (phi_max - phi_min) / vertical_samples;
  }

  /// The Velodyne HDL-64E profile: 64 rings spanning +2 deg to -24.8 deg,
  /// 360 deg azimuth, 120 m range, 10 Hz.
  ///
  /// `horizontal_samples` defaults to 2083 so a full frame carries about
  /// 133 K beams; with realistic dropout this lands near the ~100 K points
  /// per frame of the KITTI captures used in the paper.
  static SensorMetadata VelodyneHdl64e(int horizontal_samples = 2083);

  /// Serializes the metadata as "key value" lines - the import format for
  /// applying DBGC to other sensor types (Section 4.1: "users can easily
  /// apply DBGC on other types of sensors by importing the metadata").
  std::string ToConfigString() const;

  /// Parses a ToConfigString-style config. Unknown keys are rejected;
  /// missing keys keep the HDL-64E defaults. '#' starts a comment line.
  static Result<SensorMetadata> FromConfigString(const std::string& config);
};

}  // namespace dbgc

#endif  // DBGC_LIDAR_SENSOR_MODEL_H_
