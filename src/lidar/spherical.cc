#include "lidar/spherical.h"

#include <algorithm>
#include <cmath>

namespace dbgc {

SphericalPoint CartesianToSpherical(const Point3& p) {
  SphericalPoint s;
  s.r = p.Norm();
  if (s.r == 0.0) return s;
  s.theta = std::atan2(p.y, p.x);
  const double ratio = std::clamp(p.z / s.r, -1.0, 1.0);
  s.phi = std::asin(ratio);
  return s;
}

Point3 SphericalToCartesian(const SphericalPoint& s) {
  const double cos_phi = std::cos(s.phi);
  return Point3{s.r * cos_phi * std::cos(s.theta),
                s.r * cos_phi * std::sin(s.theta), s.r * std::sin(s.phi)};
}

SphericalErrorBounds SphericalErrorBounds::FromCartesian(double q_xyz,
                                                         double r_max) {
  SphericalErrorBounds b;
  b.q_theta = q_xyz / r_max;
  b.q_phi = q_xyz / r_max;
  b.q_r = q_xyz;
  return b;
}

}  // namespace dbgc
