// Cartesian <-> spherical coordinate conversion (Section 3.3) and the
// per-dimension spherical error bounds of Theorem 3.2.

#ifndef DBGC_LIDAR_SPHERICAL_H_
#define DBGC_LIDAR_SPHERICAL_H_

#include <vector>

#include "common/point_cloud.h"

namespace dbgc {

/// Converts a Cartesian point (relative to the sensor origin) to spherical
/// coordinates: theta = atan2(y, x) in (-pi, pi], phi = elevation from the
/// xy-plane in [-pi/2, pi/2], r = Euclidean distance.
SphericalPoint CartesianToSpherical(const Point3& p);

/// Inverse of CartesianToSpherical.
Point3 SphericalToCartesian(const SphericalPoint& s);

/// Per-dimension error bounds in the spherical system, given the Cartesian
/// bound q_xyz and the maximum radial distance r_max of the points being
/// compressed (Theorem 3.2): q_theta = q_phi = q_xyz / r_max, q_r = q_xyz.
struct SphericalErrorBounds {
  double q_theta = 0.0;
  double q_phi = 0.0;
  double q_r = 0.0;

  /// Derives the bounds from q_xyz and r_max (r_max > 0).
  static SphericalErrorBounds FromCartesian(double q_xyz, double r_max);
};

}  // namespace dbgc

#endif  // DBGC_LIDAR_SPHERICAL_H_
