#include "lz/deflate.h"

#include <array>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/varint.h"
#include "common/check.h"
#include "entropy/huffman.h"
#include "lz/lz77.h"

namespace dbgc {

namespace {

// DEFLATE length code table (symbols 257..285 -> 0..28 here).
constexpr std::array<uint32_t, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLengthExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                              1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                              4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance code table (30 buckets).
constexpr std::array<uint32_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3, 3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8, 8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr uint32_t kEndOfBlock = 256;
constexpr uint32_t kNumLitLenSymbols = 257 + 29;  // 0..255 lit, 256 EOB, 29 len.
constexpr uint32_t kNumDistSymbols = 30;

uint32_t LengthToCode(uint32_t length) {
  DBGC_CHECK(length >= 3 && length <= 258);
  for (uint32_t c = 28;; --c) {
    if (length >= kLengthBase[c]) return c;
    if (c == 0) break;
  }
  return 0;
}

uint32_t DistanceToCode(uint32_t distance) {
  DBGC_CHECK(distance >= 1 && distance <= 32768);
  for (uint32_t c = 29;; --c) {
    if (distance >= kDistBase[c]) return c;
    if (c == 0) break;
  }
  return 0;
}

}  // namespace

ByteBuffer Deflate::Compress(const std::vector<uint8_t>& data) {
  const std::vector<Lz77Token> tokens = Lz77::Tokenize(data);

  // Gather symbol statistics.
  std::vector<uint64_t> litlen_counts(kNumLitLenSymbols, 0);
  std::vector<uint64_t> dist_counts(kNumDistSymbols, 0);
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      ++litlen_counts[257 + LengthToCode(t.length)];
      ++dist_counts[DistanceToCode(t.distance)];
    } else {
      ++litlen_counts[t.literal];
    }
  }
  ++litlen_counts[kEndOfBlock];
  if (dist_counts == std::vector<uint64_t>(kNumDistSymbols, 0)) {
    dist_counts[0] = 1;  // Keep the distance alphabet decodable.
  }

  auto litlen_code = HuffmanCode::FromCounts(litlen_counts);
  auto dist_code = HuffmanCode::FromCounts(dist_counts);
  DBGC_CHECK(litlen_code.ok() && dist_code.ok());

  BitWriter writer;
  litlen_code.value().WriteTable(&writer);
  dist_code.value().WriteTable(&writer);
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      const uint32_t lc = LengthToCode(t.length);
      litlen_code.value().EncodeSymbol(257 + lc, &writer);
      writer.WriteBits(t.length - kLengthBase[lc], kLengthExtra[lc]);
      const uint32_t dc = DistanceToCode(t.distance);
      dist_code.value().EncodeSymbol(dc, &writer);
      writer.WriteBits(t.distance - kDistBase[dc], kDistExtra[dc]);
    } else {
      litlen_code.value().EncodeSymbol(t.literal, &writer);
    }
  }
  litlen_code.value().EncodeSymbol(kEndOfBlock, &writer);

  ByteBuffer out;
  PutVarint64(&out, data.size());
  const ByteBuffer bits = writer.Finish();
  out.Append(bits);
  return out;
}

Status Deflate::Decompress(const ByteBuffer& compressed,
                           std::vector<uint8_t>* out) {
  out->clear();
  ByteReader byte_reader(compressed);
  uint64_t original_size;
  DBGC_RETURN_NOT_OK(GetVarint64(&byte_reader, &original_size));
  // LZ77's maximum expansion is ~206 output bytes per input bit; anything
  // claiming more is corrupt, so reject before reserving.
  if (original_size > 2100 * compressed.size() + 1024) {
    return Status::Corruption("deflate: implausible original size");
  }
  const BoundedAlloc alloc(compressed.size());
  DBGC_RETURN_NOT_OK(alloc.ReserveSpeculative(out, original_size, "deflate output"));

  BitReader reader(compressed.data() + byte_reader.position(),
                   compressed.size() - byte_reader.position());
  DBGC_ASSIGN_OR_RETURN(HuffmanCode litlen_code,
                        HuffmanCode::ReadTable(&reader, kNumLitLenSymbols));
  DBGC_ASSIGN_OR_RETURN(HuffmanCode dist_code,
                        HuffmanCode::ReadTable(&reader, kNumDistSymbols));

  for (;;) {
    uint32_t symbol;
    DBGC_RETURN_NOT_OK(litlen_code.DecodeSymbol(&reader, &symbol));
    if (symbol == kEndOfBlock) break;
    if (symbol < 256) {
      out->push_back(static_cast<uint8_t>(symbol));
      continue;
    }
    const uint32_t lc = symbol - 257;
    if (lc >= kLengthBase.size()) {
      return Status::Corruption("deflate: bad length code");
    }
    uint64_t extra;
    DBGC_RETURN_NOT_OK(reader.ReadBits(kLengthExtra[lc], &extra));
    const uint32_t length = kLengthBase[lc] + static_cast<uint32_t>(extra);

    uint32_t dc;
    DBGC_RETURN_NOT_OK(dist_code.DecodeSymbol(&reader, &dc));
    if (dc >= kDistBase.size()) {
      return Status::Corruption("deflate: bad distance code");
    }
    DBGC_RETURN_NOT_OK(reader.ReadBits(kDistExtra[dc], &extra));
    const uint32_t distance = kDistBase[dc] + static_cast<uint32_t>(extra);
    if (distance > out->size()) {
      return Status::Corruption("deflate: distance beyond output");
    }
    const size_t start = out->size() - distance;
    for (uint32_t k = 0; k < length; ++k) out->push_back((*out)[start + k]);
  }
  if (out->size() != original_size) {
    return Status::Corruption("deflate: size mismatch after decode");
  }
  return Status::OK();
}

}  // namespace dbgc
