// Deflate-style compressor [13]: LZ77 tokenization followed by canonical
// Huffman coding of literal/length and distance symbols with DEFLATE's
// bucket-plus-extra-bits value layout.
//
// This is our from-scratch stand-in for zlib's Deflate, used by DBGC's
// Step 6 (compressing azimuthal-angle delta streams, Section 3.5). The
// container format is our own, but the algorithmic structure (LZ77 + two
// Huffman alphabets + extra bits) matches RFC 1951.

#ifndef DBGC_LZ_DEFLATE_H_
#define DBGC_LZ_DEFLATE_H_

#include <cstdint>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// Deflate-style byte-stream compressor.
class Deflate {
 public:
  /// Compresses `data`. Empty input yields a minimal valid stream.
  static ByteBuffer Compress(const std::vector<uint8_t>& data);

  /// Decompresses a stream produced by Compress.
  static Status Decompress(const ByteBuffer& compressed,
                           std::vector<uint8_t>* out);

  /// Convenience: compress the contents of a ByteBuffer.
  static ByteBuffer Compress(const ByteBuffer& data) {
    return Compress(data.bytes());
  }
};

}  // namespace dbgc

#endif  // DBGC_LZ_DEFLATE_H_
