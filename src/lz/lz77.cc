#include "lz/lz77.h"

#include <algorithm>
#include <cstring>

namespace dbgc {

namespace {

constexpr uint32_t kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;

inline uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<Lz77Token> Lz77::Tokenize(const std::vector<uint8_t>& data) {
  std::vector<Lz77Token> tokens;
  const size_t n = data.size();
  tokens.reserve(n / 2 + 16);
  if (n == 0) return tokens;

  // head[h]: most recent position with hash h; prev[i % window]: previous
  // position in i's chain. Positions are offset by 1 so 0 means "none".
  std::vector<uint32_t> head(kHashSize, 0);
  std::vector<uint32_t> prev(kWindowSize, 0);

  auto insert_pos = [&](size_t i) {
    if (i + kMinMatch > n) return;
    const uint32_t h = Hash3(&data[i]);
    prev[i % kWindowSize] = head[h];
    head[h] = static_cast<uint32_t>(i) + 1;
  };

  auto find_match = [&](size_t i, uint32_t* best_len, uint32_t* best_dist) {
    *best_len = 0;
    *best_dist = 0;
    if (i + kMinMatch > n) return;
    const uint32_t max_len =
        static_cast<uint32_t>(std::min<size_t>(kMaxMatch, n - i));
    uint32_t candidate = head[Hash3(&data[i])];
    uint32_t chain = kMaxChainLength;
    while (candidate != 0 && chain-- > 0) {
      const size_t pos = candidate - 1;
      if (pos >= i || i - pos > kWindowSize) break;
      // Quick reject on the byte past the current best.
      if (*best_len == 0 || data[pos + *best_len] == data[i + *best_len]) {
        // Word-at-a-time compare (memcmp of 8 compiles to one 64-bit
        // test), then a byte tail: same lengths as the plain byte loop,
        // ~8x fewer iterations on the long repetitive runs the delta
        // streams produce. This is the tokenizer's hottest loop.
        uint32_t len = 0;
        while (len + 8 <= max_len &&
               std::memcmp(&data[pos + len], &data[i + len], 8) == 0) {
          len += 8;
        }
        while (len < max_len && data[pos + len] == data[i + len]) ++len;
        if (len > *best_len) {
          *best_len = len;
          *best_dist = static_cast<uint32_t>(i - pos);
          // A nice-length match ends the search: walking older (more
          // distant) chain entries for a marginally longer match is the
          // dominant tokenizer cost on repetitive delta streams.
          if (len == max_len || len >= kNiceLength) break;
        }
      }
      candidate = prev[pos % kWindowSize];
    }
    if (*best_len < kMinMatch) {
      *best_len = 0;
      *best_dist = 0;
    }
  };

  size_t i = 0;
  while (i < n) {
    uint32_t len, dist;
    find_match(i, &len, &dist);
    // One-step lazy evaluation: prefer a longer match starting at i+1.
    // Skipped once the current match is already good (kMaxLazy): the
    // probe costs a full chain walk and can improve the token by at most
    // one literal.
    if (len > 0 && len < kMaxLazy && i + 1 < n) {
      uint32_t len2, dist2;
      insert_pos(i);
      find_match(i + 1, &len2, &dist2);
      if (len2 > len + 1) {
        Lz77Token lit;
        lit.is_match = false;
        lit.literal = data[i];
        tokens.push_back(lit);
        ++i;
        len = len2;
        dist = dist2;
      } else {
        // Undo nothing; position i is already inserted.
      }
      if (len == 0) continue;
      Lz77Token m;
      m.is_match = true;
      m.length = len;
      m.distance = dist;
      tokens.push_back(m);
      // Insert the covered positions (the first may already be inserted;
      // re-inserting is harmless for correctness, but skip position i to
      // keep chains clean).
      for (size_t j = i + 1; j < i + len; ++j) insert_pos(j);
      i += len;
      continue;
    }
    if (len > 0) {
      Lz77Token m;
      m.is_match = true;
      m.length = len;
      m.distance = dist;
      tokens.push_back(m);
      for (size_t j = i; j < i + len; ++j) insert_pos(j);
      i += len;
    } else {
      Lz77Token lit;
      lit.is_match = false;
      lit.literal = data[i];
      tokens.push_back(lit);
      insert_pos(i);
      ++i;
    }
  }
  return tokens;
}

std::vector<uint8_t> Lz77::Reconstruct(const std::vector<Lz77Token>& tokens) {
  std::vector<uint8_t> out;
  for (const Lz77Token& t : tokens) {
    if (!t.is_match) {
      out.push_back(t.literal);
    } else {
      const size_t start = out.size() - t.distance;
      for (uint32_t k = 0; k < t.length; ++k) {
        out.push_back(out[start + k]);  // Handles overlapping copies.
      }
    }
  }
  return out;
}

}  // namespace dbgc
