// LZ77 [61] tokenization with a hash-chain match finder over a 32 KiB
// sliding window, as used by DEFLATE. Produces a stream of literal and
// (length, distance) match tokens for the entropy stage in lz/deflate.h.

#ifndef DBGC_LZ_LZ77_H_
#define DBGC_LZ_LZ77_H_

#include <cstdint>
#include <vector>

namespace dbgc {

/// One LZ77 token: either a literal byte or a back-reference.
struct Lz77Token {
  bool is_match = false;
  uint8_t literal = 0;     ///< Valid when !is_match.
  uint32_t length = 0;     ///< Match length in [kMinMatch, kMaxMatch].
  uint32_t distance = 0;   ///< Back distance in [1, kWindowSize].
};

/// LZ77 tokenizer parameters and entry points.
class Lz77 {
 public:
  static constexpr uint32_t kWindowSize = 32768;
  static constexpr uint32_t kMinMatch = 3;
  static constexpr uint32_t kMaxMatch = 258;
  /// Chain length bound; trades compression for speed.
  static constexpr uint32_t kMaxChainLength = 16;
  /// Stop the chain search once a match of at least this length is found
  /// (zlib's nice_length). The delta streams the codec feeds through
  /// Deflate are highly repetitive; without this cutoff the finder walks
  /// the full chain at nearly every position for marginal ratio gain.
  static constexpr uint32_t kNiceLength = 32;
  /// Skip the one-step lazy probe when the current match already reaches
  /// this length (zlib's max_lazy): a longer match at i+1 can displace at
  /// most one byte of a match this good.
  static constexpr uint32_t kMaxLazy = 32;

  /// Tokenizes `data` greedily with one-step lazy matching.
  static std::vector<Lz77Token> Tokenize(const std::vector<uint8_t>& data);

  /// Reconstructs the byte stream from tokens.
  static std::vector<uint8_t> Reconstruct(const std::vector<Lz77Token>& tokens);
};

}  // namespace dbgc

#endif  // DBGC_LZ_LZ77_H_
