#include "net/channel.h"

// SimulatedChannel is fully inline; this file anchors the module.

namespace dbgc {}  // namespace dbgc
