// SimulatedChannel: a bandwidth/latency model of the client-to-server link
// (Section 3.1 / Section 4.4). The paper's prototype ships bits over a
// Linux socket across a mobile network; for reproducible end-to-end
// latency and throughput numbers we model the link as
//   transfer_time = latency + bits / bandwidth
// with the 4G uplink of [41] (8.2 Mbps) as the default profile.

#ifndef DBGC_NET_CHANNEL_H_
#define DBGC_NET_CHANNEL_H_

#include <cstddef>

namespace dbgc {

/// A point-to-point link with fixed bandwidth and propagation latency.
class SimulatedChannel {
 public:
  /// Creates a channel with the given capacity.
  SimulatedChannel(double bandwidth_mbps, double latency_seconds = 0.05)
      : bandwidth_mbps_(bandwidth_mbps), latency_seconds_(latency_seconds) {}

  /// The average 4G mobile uplink of the paper (8.2 Mbps [41]).
  static SimulatedChannel Mobile4G() { return SimulatedChannel(8.2, 0.05); }
  /// 100BASE-TX Ethernet (sensor-to-client link, Section 4.4).
  static SimulatedChannel Ethernet100() {
    return SimulatedChannel(100.0, 0.001);
  }

  double bandwidth_mbps() const { return bandwidth_mbps_; }
  double latency_seconds() const { return latency_seconds_; }

  /// Seconds to transfer `bytes` across the link.
  double TransferSeconds(size_t bytes) const {
    return latency_seconds_ +
           static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1e6);
  }

  /// True iff a stream of `bytes_per_frame` at `fps` fits the capacity.
  bool CanSustain(size_t bytes_per_frame, double fps) const {
    return static_cast<double>(bytes_per_frame) * 8.0 * fps <=
           bandwidth_mbps_ * 1e6;
  }

 private:
  double bandwidth_mbps_;
  double latency_seconds_;
};

}  // namespace dbgc

#endif  // DBGC_NET_CHANNEL_H_
