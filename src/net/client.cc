#include "net/client.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

/// Process-wide client instruments, resolved once.
struct ClientMetrics {
  obs::Counter* frames;
  obs::Counter* raw_bytes;
  obs::Counter* wire_bytes;
  obs::Counter* degraded_frames;
  obs::Histogram* compress_seconds;

  static const ClientMetrics& Get() {
    static const ClientMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      ClientMetrics c;
      c.frames = reg.GetCounter("client_frames_total");
      c.raw_bytes = reg.GetCounter("client_raw_bytes_total");
      c.wire_bytes = reg.GetCounter("client_wire_bytes_total");
      c.degraded_frames = reg.GetCounter("client_degraded_frames_total");
      c.compress_seconds = reg.GetHistogram("client_compress_seconds");
      return c;
    }();
    return m;
  }
};

/// The kCoarserQuant configuration: double the error bound, keep the rest.
DbgcOptions CoarseOptions(DbgcOptions options) {
  options.q_xyz *= 2.0;
  return options;
}

/// The kCheapCodec configuration: coarser bound and the clustering-free
/// all-octree path (Figure 10's forced_dense_fraction = 1), the cheapest
/// decode the format offers.
DbgcOptions CheapOptions(DbgcOptions options) {
  options = CoarseOptions(std::move(options));
  options.forced_dense_fraction = 1.0;
  return options;
}

}  // namespace

DbgcClient::DbgcClient(DbgcOptions options, SimulatedChannel sensor_link,
                       SimulatedChannel uplink)
    : codec_(options),
      coarse_codec_(CoarseOptions(options)),
      cheap_codec_(CheapOptions(options)),
      sensor_link_(sensor_link),
      uplink_(uplink) {}

const DbgcCodec& DbgcClient::ActiveCodec() const {
  switch (degrade_) {
    case DegradeLevel::kCoarserQuant:
      return coarse_codec_;
    case DegradeLevel::kCheapCodec:
      return cheap_codec_;
    case DegradeLevel::kNone:
      break;
  }
  return codec_;
}

Result<ByteBuffer> DbgcClient::ProcessFrame(const PointCloud& pc,
                                            ClientFrameReport* report) {
  const ClientMetrics& metrics = ClientMetrics::Get();
  *report = ClientFrameReport();
  report->frame_id = next_frame_id_++;
  report->raw_bytes = pc.RawSizeBytes();
  report->sensor_transfer_seconds =
      sensor_link_.TransferSeconds(report->raw_bytes);

  // A FrameTrace captures this frame's per-stage split (DEN/OCT/...) on
  // this thread; its breakdown is folded into the stage histograms by the
  // spans themselves.
  obs::FrameTrace frame_trace;
  const DbgcCodec& active = ActiveCodec();
  report->degrade = degrade_;
  Result<ByteBuffer> compressed_result = [&] {
    obs::ScopedTimer timer(&report->compress_seconds,
                           metrics.compress_seconds);
    CompressParams params;
    params.q_xyz = active.options().q_xyz;
    return active.Compress(pc, params);
  }();
  DBGC_RETURN_NOT_OK(compressed_result.status());
  ByteBuffer compressed = std::move(compressed_result).value();
  report->compressed_bytes = compressed.size();
  metrics.frames->Increment();
  if (degrade_ != DegradeLevel::kNone) metrics.degraded_frames->Increment();
  metrics.raw_bytes->Add(pc.RawSizeBytes());

  Frame frame;
  frame.frame_id = report->frame_id;
  frame.payload = std::move(compressed);
  ByteBuffer wire = FrameProtocol::Serialize(frame);
  metrics.wire_bytes->Add(wire.size());
  report->uplink_seconds = uplink_.TransferSeconds(wire.size());
  return wire;
}

}  // namespace dbgc
