#include "net/client.h"

#include <chrono>

namespace dbgc {

DbgcClient::DbgcClient(DbgcOptions options, SimulatedChannel sensor_link,
                       SimulatedChannel uplink)
    : codec_(options), sensor_link_(sensor_link), uplink_(uplink) {}

Result<ByteBuffer> DbgcClient::ProcessFrame(const PointCloud& pc,
                                            ClientFrameReport* report) {
  *report = ClientFrameReport();
  report->frame_id = next_frame_id_++;
  report->raw_bytes = pc.RawSizeBytes();
  report->sensor_transfer_seconds =
      sensor_link_.TransferSeconds(report->raw_bytes);

  const auto start = std::chrono::steady_clock::now();
  DbgcCompressInfo info;
  DBGC_ASSIGN_OR_RETURN(ByteBuffer compressed,
                        codec_.CompressWithInfo(pc, &info));
  const auto end = std::chrono::steady_clock::now();
  report->compress_seconds =
      std::chrono::duration<double>(end - start).count();
  report->compressed_bytes = compressed.size();

  Frame frame;
  frame.frame_id = report->frame_id;
  frame.payload = std::move(compressed);
  ByteBuffer wire = FrameProtocol::Serialize(frame);
  report->uplink_seconds = uplink_.TransferSeconds(wire.size());
  return wire;
}

}  // namespace dbgc
