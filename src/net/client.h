// DbgcClient: the client side of the DBGC system (Figure 2) - pulls frames
// from the sensor side, compresses them, and frames them for transmission.

#ifndef DBGC_NET_CLIENT_H_
#define DBGC_NET_CLIENT_H_

#include <cstdint>

#include "common/point_cloud.h"
#include "core/dbgc_codec.h"
#include "net/channel.h"
#include "net/frame_protocol.h"

namespace dbgc {

/// Per-frame client-side accounting.
struct ClientFrameReport {
  uint64_t frame_id = 0;
  size_t raw_bytes = 0;
  size_t compressed_bytes = 0;
  double sensor_transfer_seconds = 0.0;  ///< Sensor -> client link time.
  double compress_seconds = 0.0;
  double uplink_seconds = 0.0;           ///< Client -> server link time.
  /// Degradation level this frame was encoded at (docs/FLEET.md).
  DegradeLevel degrade = DegradeLevel::kNone;
};

/// The capture-compress-send pipeline.
class DbgcClient {
 public:
  /// Creates a client with a codec configuration and the two links of
  /// Figure 2 (sensor->client wired, client->server mobile).
  DbgcClient(DbgcOptions options,
             SimulatedChannel sensor_link = SimulatedChannel::Ethernet100(),
             SimulatedChannel uplink = SimulatedChannel::Mobile4G());

  /// Processes one captured frame: compress + frame. Returns the wire
  /// bytes and fills `report` with sizes and (modeled link + measured
  /// compute) times. Frames are encoded at the currently applied
  /// degradation level (see ApplyAck).
  Result<ByteBuffer> ProcessFrame(const PointCloud& pc,
                                  ClientFrameReport* report);

  /// Applies a server ack (docs/FLEET.md): the advertised degradation
  /// level takes effect from the next ProcessFrame on. kCoarserQuant
  /// doubles q_xyz; kCheapCodec additionally drops to the all-octree path
  /// (forced_dense_fraction = 1). Both remain ordinary self-describing
  /// DBGC bitstreams, so the server decode path is unchanged. The client
  /// recovers (back to the baseline codec) as soon as an ack advertises a
  /// lower level — the server re-advertises on every frame.
  void ApplyAck(const FrameAck& ack) { degrade_ = ack.degrade; }

  /// The degradation level currently in effect.
  DegradeLevel degrade() const { return degrade_; }

  const DbgcCodec& codec() const { return codec_; }

 private:
  /// The codec encoding the next frame (baseline or a degraded variant).
  const DbgcCodec& ActiveCodec() const;

  DbgcCodec codec_;         // Baseline configuration.
  DbgcCodec coarse_codec_;  // kCoarserQuant: doubled q_xyz.
  DbgcCodec cheap_codec_;   // kCheapCodec: all-octree + doubled q_xyz.
  SimulatedChannel sensor_link_;
  SimulatedChannel uplink_;
  uint64_t next_frame_id_ = 0;
  DegradeLevel degrade_ = DegradeLevel::kNone;
};

}  // namespace dbgc

#endif  // DBGC_NET_CLIENT_H_
