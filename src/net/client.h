// DbgcClient: the client side of the DBGC system (Figure 2) - pulls frames
// from the sensor side, compresses them, and frames them for transmission.

#ifndef DBGC_NET_CLIENT_H_
#define DBGC_NET_CLIENT_H_

#include <cstdint>

#include "common/point_cloud.h"
#include "core/dbgc_codec.h"
#include "net/channel.h"
#include "net/frame_protocol.h"

namespace dbgc {

/// Per-frame client-side accounting.
struct ClientFrameReport {
  uint64_t frame_id = 0;
  size_t raw_bytes = 0;
  size_t compressed_bytes = 0;
  double sensor_transfer_seconds = 0.0;  ///< Sensor -> client link time.
  double compress_seconds = 0.0;
  double uplink_seconds = 0.0;           ///< Client -> server link time.
};

/// The capture-compress-send pipeline.
class DbgcClient {
 public:
  /// Creates a client with a codec configuration and the two links of
  /// Figure 2 (sensor->client wired, client->server mobile).
  DbgcClient(DbgcOptions options,
             SimulatedChannel sensor_link = SimulatedChannel::Ethernet100(),
             SimulatedChannel uplink = SimulatedChannel::Mobile4G());

  /// Processes one captured frame: compress + frame. Returns the wire
  /// bytes and fills `report` with sizes and (modeled link + measured
  /// compute) times.
  Result<ByteBuffer> ProcessFrame(const PointCloud& pc,
                                  ClientFrameReport* report);

  const DbgcCodec& codec() const { return codec_; }

 private:
  DbgcCodec codec_;
  SimulatedChannel sensor_link_;
  SimulatedChannel uplink_;
  uint64_t next_frame_id_ = 0;
};

}  // namespace dbgc

#endif  // DBGC_NET_CLIENT_H_
