#include "net/frame_protocol.h"

namespace dbgc {

namespace {
constexpr uint8_t kFrameMagic[4] = {'D', 'B', 'F', '1'};
}  // namespace

uint64_t FrameProtocol::Checksum(const uint8_t* data, size_t size) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

ByteBuffer FrameProtocol::Serialize(const Frame& frame) {
  ByteBuffer out;
  out.Reserve(kHeaderBytes + frame.payload.size());
  out.Append(kFrameMagic, 4);
  out.AppendUint64(frame.frame_id);
  out.AppendUint64(frame.payload.size());
  out.AppendUint64(Checksum(frame.payload.data(), frame.payload.size()));
  out.Append(frame.payload);
  return out;
}

Result<Frame> FrameProtocol::Parse(const ByteBuffer& wire) {
  ByteReader reader(wire);
  uint8_t magic[4];
  DBGC_RETURN_NOT_OK(reader.Read(magic, 4));
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kFrameMagic[i]) {
      return Status::Corruption("frame: bad magic");
    }
  }
  Frame frame;
  uint64_t length, checksum;
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&frame.frame_id));
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&length));
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&checksum));
  if (reader.remaining() < length) {
    return Status::Corruption("frame: truncated payload");
  }
  frame.payload.Clear();
  frame.payload.Append(wire.data() + reader.position(), length);
  if (Checksum(frame.payload.data(), frame.payload.size()) != checksum) {
    return Status::Corruption("frame: checksum mismatch");
  }
  return frame;
}

}  // namespace dbgc
