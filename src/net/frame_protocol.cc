#include "net/frame_protocol.h"

namespace dbgc {

namespace {
constexpr uint8_t kFrameMagic[4] = {'D', 'B', 'F', '1'};
constexpr uint8_t kAckMagic[4] = {'D', 'B', 'A', '1'};
}  // namespace

const char* AdmitVerdictName(AdmitVerdict verdict) {
  switch (verdict) {
    case AdmitVerdict::kAccepted:
      return "accepted";
    case AdmitVerdict::kRejectedGlobalBudget:
      return "global_budget";
    case AdmitVerdict::kRejectedSessionShare:
      return "session_share";
    case AdmitVerdict::kRejectedUnknownSession:
      return "unknown_session";
    case AdmitVerdict::kRejectedParse:
      return "parse";
  }
  return "unknown";
}

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNone:
      return "none";
    case DegradeLevel::kCoarserQuant:
      return "coarser_quant";
    case DegradeLevel::kCheapCodec:
      return "cheap_codec";
  }
  return "unknown";
}

uint64_t FrameProtocol::Checksum(const uint8_t* data, size_t size) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

ByteBuffer FrameProtocol::Serialize(const Frame& frame) {
  ByteBuffer out;
  out.Reserve(kHeaderBytes + frame.payload.size());
  out.Append(kFrameMagic, 4);
  out.AppendUint64(frame.frame_id);
  out.AppendUint64(frame.payload.size());
  out.AppendUint64(Checksum(frame.payload.data(), frame.payload.size()));
  out.Append(frame.payload);
  return out;
}

Result<Frame> FrameProtocol::Parse(const ByteBuffer& wire) {
  ByteReader reader(wire);
  uint8_t magic[4];
  DBGC_RETURN_NOT_OK(reader.Read(magic, 4));
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kFrameMagic[i]) {
      return Status::Corruption("frame: bad magic");
    }
  }
  Frame frame;
  uint64_t length, checksum;
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&frame.frame_id));
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&length));
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&checksum));
  if (reader.remaining() < length) {
    return Status::Corruption("frame: truncated payload");
  }
  frame.payload.Clear();
  frame.payload.Append(wire.data() + reader.position(), length);
  if (Checksum(frame.payload.data(), frame.payload.size()) != checksum) {
    return Status::Corruption("frame: checksum mismatch");
  }
  return frame;
}

ByteBuffer FrameProtocol::SerializeAck(const FrameAck& ack) {
  ByteBuffer out;
  out.Reserve(kAckBytes);
  out.Append(kAckMagic, 4);
  out.AppendUint64(ack.frame_id);
  out.AppendByte(static_cast<uint8_t>(ack.verdict));
  out.AppendByte(static_cast<uint8_t>(ack.degrade));
  // Checksum over everything after the magic (id + verdict + level).
  out.AppendUint64(Checksum(out.data() + 4, 8 + 1 + 1));
  return out;
}

Result<FrameAck> FrameProtocol::ParseAck(const ByteBuffer& wire) {
  ByteReader reader(wire);
  uint8_t magic[4];
  DBGC_RETURN_NOT_OK(reader.Read(magic, 4));
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kAckMagic[i]) {
      return Status::Corruption("ack: bad magic");
    }
  }
  uint8_t verdict = 0, degrade = 0;
  uint64_t checksum = 0;
  FrameAck ack;
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&ack.frame_id));
  DBGC_RETURN_NOT_OK(reader.Read(&verdict, 1));
  DBGC_RETURN_NOT_OK(reader.Read(&degrade, 1));
  DBGC_RETURN_NOT_OK(reader.ReadUint64(&checksum));
  if (Checksum(wire.data() + 4, 8 + 1 + 1) != checksum) {
    return Status::Corruption("ack: checksum mismatch");
  }
  if (verdict > static_cast<uint8_t>(AdmitVerdict::kRejectedParse)) {
    return Status::Corruption("ack: unknown verdict");
  }
  if (degrade > static_cast<uint8_t>(DegradeLevel::kCheapCodec)) {
    return Status::Corruption("ack: unknown degradation level");
  }
  ack.verdict = static_cast<AdmitVerdict>(verdict);
  ack.degrade = static_cast<DegradeLevel>(degrade);
  return ack;
}

}  // namespace dbgc
