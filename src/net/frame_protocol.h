// Wire framing between the DBGC client and server: a fixed header carrying
// frame id, payload length, and a checksum, followed by the compressed bit
// sequence B.

#ifndef DBGC_NET_FRAME_PROTOCOL_H_
#define DBGC_NET_FRAME_PROTOCOL_H_

#include <cstdint>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// One transmissible frame.
struct Frame {
  uint64_t frame_id = 0;
  ByteBuffer payload;
};

/// Frame (de)serialization with integrity checking.
class FrameProtocol {
 public:
  /// FNV-1a checksum over a byte span.
  static uint64_t Checksum(const uint8_t* data, size_t size);

  /// Serializes a frame: magic, frame id, length, checksum, payload.
  static ByteBuffer Serialize(const Frame& frame);

  /// Parses one frame; fails on bad magic, truncation, or checksum.
  static Result<Frame> Parse(const ByteBuffer& wire);

  /// Header size in bytes (magic + id + length + checksum).
  static constexpr size_t kHeaderBytes = 4 + 8 + 8 + 8;
};

}  // namespace dbgc

#endif  // DBGC_NET_FRAME_PROTOCOL_H_
