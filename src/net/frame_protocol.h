// Wire framing between the DBGC client and server: a fixed header carrying
// frame id, payload length, and a checksum, followed by the compressed bit
// sequence B. The server answers each frame with a fixed-size ack carrying
// the admission verdict and the advertised degradation level (the fleet
// control loop, docs/FLEET.md).

#ifndef DBGC_NET_FRAME_PROTOCOL_H_
#define DBGC_NET_FRAME_PROTOCOL_H_

#include <cstdint>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// One transmissible frame.
struct Frame {
  uint64_t frame_id = 0;
  ByteBuffer payload;
};

/// Admission outcome of one submitted frame. Stable wire values: acks
/// carry the verdict as a single byte.
enum class AdmitVerdict : uint8_t {
  kAccepted = 0,
  /// The server-wide in-flight decode budget is exhausted.
  kRejectedGlobalBudget = 1,
  /// The session exceeded its fair share of the in-flight budget.
  kRejectedSessionShare = 2,
  /// The session id is unknown or already closed.
  kRejectedUnknownSession = 3,
  /// The wire frame failed to parse (bad magic/truncation/checksum).
  kRejectedParse = 4,
};

/// Human-readable verdict name ("accepted", "global_budget", ...). Also
/// the `reason` label of fleet_rejected_total (docs/FLEET.md).
const char* AdmitVerdictName(AdmitVerdict verdict);

/// Server-advertised degradation ladder (docs/FLEET.md): under load the
/// server asks clients to spend less decode budget per frame. Stable wire
/// values; levels are ordered by severity.
enum class DegradeLevel : uint8_t {
  kNone = 0,
  /// Double the quantization step q_xyz (coarser geometry, ~same codec).
  kCoarserQuant = 1,
  /// Drop to the cheap all-octree DBGC path (and coarser q_xyz).
  kCheapCodec = 2,
};

/// Human-readable level name ("none", "coarser_quant", "cheap_codec").
const char* DegradeLevelName(DegradeLevel level);

/// The server's answer to one submitted frame.
struct FrameAck {
  uint64_t frame_id = 0;
  AdmitVerdict verdict = AdmitVerdict::kAccepted;
  DegradeLevel degrade = DegradeLevel::kNone;
};

/// Frame (de)serialization with integrity checking.
class FrameProtocol {
 public:
  /// FNV-1a checksum over a byte span.
  static uint64_t Checksum(const uint8_t* data, size_t size);

  /// Serializes a frame: magic, frame id, length, checksum, payload.
  static ByteBuffer Serialize(const Frame& frame);

  /// Parses one frame; fails on bad magic, truncation, or checksum.
  static Result<Frame> Parse(const ByteBuffer& wire);

  /// Serializes an ack: ack magic, frame id, verdict, level, checksum.
  static ByteBuffer SerializeAck(const FrameAck& ack);

  /// Parses one ack; fails on bad magic, truncation, checksum, or an
  /// out-of-range verdict/level byte.
  static Result<FrameAck> ParseAck(const ByteBuffer& wire);

  /// Header size in bytes (magic + id + length + checksum).
  static constexpr size_t kHeaderBytes = 4 + 8 + 8 + 8;

  /// Ack size in bytes (magic + id + verdict + level + checksum).
  static constexpr size_t kAckBytes = 4 + 8 + 1 + 1 + 8;
};

}  // namespace dbgc

#endif  // DBGC_NET_FRAME_PROTOCOL_H_
