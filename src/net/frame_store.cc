#include "net/frame_store.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace dbgc {

namespace {

/// Process-wide frame-store instruments, resolved once. Resident gauges
/// are delta-updated so several stores compose additively.
struct StoreMetrics {
  obs::Counter* puts;
  obs::Counter* evictions;
  obs::Counter* get_misses;
  obs::Gauge* resident_frames;
  obs::Gauge* resident_bytes;

  static const StoreMetrics& Get() {
    static const StoreMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      StoreMetrics s;
      s.puts = reg.GetCounter("store_put_total");
      s.evictions = reg.GetCounter("store_evicted_total");
      s.get_misses = reg.GetCounter("store_get_miss_total");
      s.resident_frames = reg.GetGauge("store_resident_frames");
      s.resident_bytes = reg.GetGauge("store_resident_bytes");
      return s;
    }();
    return m;
  }
};

}  // namespace

MemoryFrameStore::MemoryFrameStore(size_t capacity) : capacity_(capacity) {}

MemoryFrameStore::~MemoryFrameStore() {
  MutexLock lock(mutex_);
  const StoreMetrics& m = StoreMetrics::Get();
  for (const auto& [id, entry] : frames_) {
    (void)id;
    m.resident_bytes->Sub(static_cast<int64_t>(entry.bits.size()));
    m.resident_frames->Sub(1);
  }
}

uint64_t MemoryFrameStore::evicted() const {
  MutexLock lock(mutex_);
  return evicted_;
}

void MemoryFrameStore::ReleaseEntry(size_t bytes) {
  const StoreMetrics& m = StoreMetrics::Get();
  m.resident_bytes->Sub(static_cast<int64_t>(bytes));
  m.resident_frames->Sub(1);
}

void MemoryFrameStore::ForgetNewestLocked(uint64_t frame_id,
                                          uint64_t session_id) {
  const auto pin = newest_.find(session_id);
  if (pin == newest_.end() || pin->second != frame_id) return;
  // Repoint at the session's remaining newest frame (bounded stores are
  // small, so the scan stays cheap), or drop the session entirely.
  bool found = false;
  uint64_t best = 0;
  for (const auto& [id, entry] : frames_) {
    if (entry.session != session_id) continue;
    if (!found || id > best) best = id;
    found = true;
  }
  if (found) {
    pin->second = best;
  } else {
    newest_.erase(pin);
  }
}

void MemoryFrameStore::EvictOneLocked(uint64_t incoming_id,
                                      uint64_t incoming_session) {
  auto victim = frames_.end();
  auto fallback = frames_.end();  // Plain LRU, ignoring pins.
  for (auto it = frames_.begin(); it != frames_.end(); ++it) {
    if (fallback == frames_.end() ||
        it->second.last_use < fallback->second.last_use) {
      fallback = it;
    }
    const auto pin = newest_.find(it->second.session);
    bool pinned = pin != newest_.end() && pin->second == it->first;
    // The incoming session's current newest stops being the keyframe the
    // moment a newer frame arrives to replace it.
    if (pinned && it->second.session == incoming_session &&
        incoming_id > it->first) {
      pinned = false;
    }
    if (pinned) continue;
    if (victim == frames_.end() ||
        it->second.last_use < victim->second.last_use) {
      victim = it;
    }
  }
  if (victim == frames_.end()) victim = fallback;
  if (victim == frames_.end()) return;  // Empty table; nothing to evict.
  const uint64_t gone_id = victim->first;
  const uint64_t gone_session = victim->second.session;
  ReleaseEntry(victim->second.bits.size());
  frames_.erase(victim);
  ForgetNewestLocked(gone_id, gone_session);
  ++evicted_;
  StoreMetrics::Get().evictions->Increment();
}

Status MemoryFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream) {
  return Put(frame_id, bitstream, /*session_id=*/0);
}

Status MemoryFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream,
                             uint64_t session_id) {
  MutexLock lock(mutex_);
  const StoreMetrics& m = StoreMetrics::Get();
  m.puts->Increment();
  const auto it = frames_.find(frame_id);
  if (it != frames_.end()) {
    // Replacement: adjust the byte share and refresh LRU, never evict.
    // A replacement may re-tag the frame's session (id collisions across
    // sessions are the caller's concern; the fleet server namespaces ids).
    m.resident_bytes->Add(static_cast<int64_t>(bitstream.size()) -
                          static_cast<int64_t>(it->second.bits.size()));
    const uint64_t old_session = it->second.session;
    it->second.bits = bitstream;
    it->second.session = session_id;
    it->second.last_use = ++tick_;
    if (old_session != session_id) {
      ForgetNewestLocked(frame_id, old_session);
    }
    auto& pin = newest_[session_id];
    if (frames_.find(pin) == frames_.end() || frame_id >= pin) {
      pin = frame_id;
    }
    return Status::OK();
  }
  if (capacity_ != 0) {
    while (frames_.size() >= capacity_) {
      EvictOneLocked(frame_id, session_id);
    }
  }
  Entry entry;
  entry.bits = bitstream;
  entry.session = session_id;
  entry.last_use = ++tick_;
  frames_[frame_id] = std::move(entry);
  const auto pin = newest_.find(session_id);
  if (pin == newest_.end() || frame_id > pin->second) {
    newest_[session_id] = frame_id;
  }
  m.resident_frames->Add(1);
  m.resident_bytes->Add(static_cast<int64_t>(bitstream.size()));
  return Status::OK();
}

Result<ByteBuffer> MemoryFrameStore::Get(uint64_t frame_id) const {
  MutexLock lock(mutex_);
  const auto it = frames_.find(frame_id);
  if (it == frames_.end()) {
    StoreMetrics::Get().get_misses->Increment();
    return Status::InvalidArgument("frame not found");
  }
  it->second.last_use = ++tick_;
  return it->second.bits;
}

std::vector<uint64_t> MemoryFrameStore::List() const {
  MutexLock lock(mutex_);
  std::vector<uint64_t> ids;
  ids.reserve(frames_.size());
  for (const auto& [id, entry] : frames_) {
    (void)entry;
    ids.push_back(id);
  }
  return ids;
}

Status MemoryFrameStore::Remove(uint64_t frame_id) {
  MutexLock lock(mutex_);
  const auto it = frames_.find(frame_id);
  if (it != frames_.end()) {
    const uint64_t session = it->second.session;
    ReleaseEntry(it->second.bits.size());
    frames_.erase(it);
    ForgetNewestLocked(frame_id, session);
  }
  return Status::OK();
}

FileFrameStore::FileFrameStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string FileFrameStore::PathFor(uint64_t frame_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%020llu.dbgc",
                static_cast<unsigned long long>(frame_id));
  return directory_ + "/" + name;
}

Status FileFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream) {
  const std::string path = PathFor(frame_id);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(bitstream.data(), 1, bitstream.size(), f);
  std::fclose(f);
  if (written != bitstream.size()) {
    return Status::IOError("short write on " + path);
  }
  return Status::OK();
}

Result<ByteBuffer> FileFrameStore::Get(uint64_t frame_id) const {
  const std::string path = PathFor(frame_id);
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  ByteBuffer out;
  out.mutable_bytes().resize(static_cast<size_t>(size));
  const size_t read = std::fread(out.mutable_bytes().data(), 1,
                                 out.mutable_bytes().size(), f);
  std::fclose(f);
  if (read != out.size()) return Status::IOError("short read on " + path);
  return out;
}

std::vector<uint64_t> FileFrameStore::List() const {
  std::vector<uint64_t> ids;
  DIR* dir = ::opendir(directory_.c_str());
  if (dir == nullptr) return ids;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const size_t dot = name.find(".dbgc");
    if (dot == std::string::npos || dot == 0) continue;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(name.c_str(), &end, 10);
    if (end != nullptr && std::string(end) == ".dbgc") {
      ids.push_back(id);
    }
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status FileFrameStore::Remove(uint64_t frame_id) {
  std::remove(PathFor(frame_id).c_str());
  return Status::OK();
}

}  // namespace dbgc
