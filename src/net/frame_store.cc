#include "net/frame_store.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dbgc {

Status MemoryFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream) {
  frames_[frame_id] = bitstream;
  return Status::OK();
}

Result<ByteBuffer> MemoryFrameStore::Get(uint64_t frame_id) const {
  const auto it = frames_.find(frame_id);
  if (it == frames_.end()) {
    return Status::InvalidArgument("frame not found");
  }
  return it->second;
}

std::vector<uint64_t> MemoryFrameStore::List() const {
  std::vector<uint64_t> ids;
  ids.reserve(frames_.size());
  for (const auto& [id, bytes] : frames_) {
    (void)bytes;
    ids.push_back(id);
  }
  return ids;
}

Status MemoryFrameStore::Remove(uint64_t frame_id) {
  frames_.erase(frame_id);
  return Status::OK();
}

FileFrameStore::FileFrameStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string FileFrameStore::PathFor(uint64_t frame_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%020llu.dbgc",
                static_cast<unsigned long long>(frame_id));
  return directory_ + "/" + name;
}

Status FileFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream) {
  const std::string path = PathFor(frame_id);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(bitstream.data(), 1, bitstream.size(), f);
  std::fclose(f);
  if (written != bitstream.size()) {
    return Status::IOError("short write on " + path);
  }
  return Status::OK();
}

Result<ByteBuffer> FileFrameStore::Get(uint64_t frame_id) const {
  const std::string path = PathFor(frame_id);
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  ByteBuffer out;
  out.mutable_bytes().resize(static_cast<size_t>(size));
  const size_t read = std::fread(out.mutable_bytes().data(), 1,
                                 out.mutable_bytes().size(), f);
  std::fclose(f);
  if (read != out.size()) return Status::IOError("short read on " + path);
  return out;
}

std::vector<uint64_t> FileFrameStore::List() const {
  std::vector<uint64_t> ids;
  DIR* dir = ::opendir(directory_.c_str());
  if (dir == nullptr) return ids;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const size_t dot = name.find(".dbgc");
    if (dot == std::string::npos || dot == 0) continue;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(name.c_str(), &end, 10);
    if (end != nullptr && std::string(end) == ".dbgc") {
      ids.push_back(id);
    }
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status FileFrameStore::Remove(uint64_t frame_id) {
  std::remove(PathFor(frame_id).c_str());
  return Status::OK();
}

}  // namespace dbgc
