#include "net/frame_store.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace dbgc {

namespace {

/// Process-wide frame-store instruments, resolved once. Resident gauges
/// are delta-updated so several stores compose additively.
struct StoreMetrics {
  obs::Counter* puts;
  obs::Counter* evictions;
  obs::Counter* get_misses;
  obs::Gauge* resident_frames;
  obs::Gauge* resident_bytes;

  static const StoreMetrics& Get() {
    static const StoreMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      StoreMetrics s;
      s.puts = reg.GetCounter("store_put_total");
      s.evictions = reg.GetCounter("store_evicted_total");
      s.get_misses = reg.GetCounter("store_get_miss_total");
      s.resident_frames = reg.GetGauge("store_resident_frames");
      s.resident_bytes = reg.GetGauge("store_resident_bytes");
      return s;
    }();
    return m;
  }
};

}  // namespace

MemoryFrameStore::MemoryFrameStore(size_t capacity) : capacity_(capacity) {}

MemoryFrameStore::~MemoryFrameStore() {
  MutexLock lock(mutex_);
  const StoreMetrics& m = StoreMetrics::Get();
  for (const auto& [id, bytes] : frames_) {
    (void)id;
    m.resident_bytes->Sub(static_cast<int64_t>(bytes.size()));
    m.resident_frames->Sub(1);
  }
}

uint64_t MemoryFrameStore::evicted() const {
  MutexLock lock(mutex_);
  return evicted_;
}

void MemoryFrameStore::ReleaseEntry(size_t bytes) {
  const StoreMetrics& m = StoreMetrics::Get();
  m.resident_bytes->Sub(static_cast<int64_t>(bytes));
  m.resident_frames->Sub(1);
}

Status MemoryFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream) {
  MutexLock lock(mutex_);
  const StoreMetrics& m = StoreMetrics::Get();
  m.puts->Increment();
  const auto it = frames_.find(frame_id);
  if (it != frames_.end()) {
    // Replacement: adjust the byte share, never evict.
    m.resident_bytes->Add(static_cast<int64_t>(bitstream.size()) -
                          static_cast<int64_t>(it->second.size()));
    it->second = bitstream;
    return Status::OK();
  }
  if (capacity_ != 0 && frames_.size() >= capacity_) {
    // Evict oldest (smallest) ids until the new frame fits the bound.
    while (frames_.size() >= capacity_) {
      const auto oldest = frames_.begin();
      ReleaseEntry(oldest->second.size());
      frames_.erase(oldest);
      ++evicted_;
      m.evictions->Increment();
    }
  }
  frames_[frame_id] = bitstream;
  m.resident_frames->Add(1);
  m.resident_bytes->Add(static_cast<int64_t>(bitstream.size()));
  return Status::OK();
}

Result<ByteBuffer> MemoryFrameStore::Get(uint64_t frame_id) const {
  MutexLock lock(mutex_);
  const auto it = frames_.find(frame_id);
  if (it == frames_.end()) {
    StoreMetrics::Get().get_misses->Increment();
    return Status::InvalidArgument("frame not found");
  }
  return it->second;
}

std::vector<uint64_t> MemoryFrameStore::List() const {
  MutexLock lock(mutex_);
  std::vector<uint64_t> ids;
  ids.reserve(frames_.size());
  for (const auto& [id, bytes] : frames_) {
    (void)bytes;
    ids.push_back(id);
  }
  return ids;
}

Status MemoryFrameStore::Remove(uint64_t frame_id) {
  MutexLock lock(mutex_);
  const auto it = frames_.find(frame_id);
  if (it != frames_.end()) {
    ReleaseEntry(it->second.size());
    frames_.erase(it);
  }
  return Status::OK();
}

FileFrameStore::FileFrameStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string FileFrameStore::PathFor(uint64_t frame_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%020llu.dbgc",
                static_cast<unsigned long long>(frame_id));
  return directory_ + "/" + name;
}

Status FileFrameStore::Put(uint64_t frame_id, const ByteBuffer& bitstream) {
  const std::string path = PathFor(frame_id);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(bitstream.data(), 1, bitstream.size(), f);
  std::fclose(f);
  if (written != bitstream.size()) {
    return Status::IOError("short write on " + path);
  }
  return Status::OK();
}

Result<ByteBuffer> FileFrameStore::Get(uint64_t frame_id) const {
  const std::string path = PathFor(frame_id);
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  ByteBuffer out;
  out.mutable_bytes().resize(static_cast<size_t>(size));
  const size_t read = std::fread(out.mutable_bytes().data(), 1,
                                 out.mutable_bytes().size(), f);
  std::fclose(f);
  if (read != out.size()) return Status::IOError("short read on " + path);
  return out;
}

std::vector<uint64_t> FileFrameStore::List() const {
  std::vector<uint64_t> ids;
  DIR* dir = ::opendir(directory_.c_str());
  if (dir == nullptr) return ids;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const size_t dot = name.find(".dbgc");
    if (dot == std::string::npos || dot == 0) continue;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(name.c_str(), &end, 10);
    if (end != nullptr && std::string(end) == ".dbgc") {
      ids.push_back(id);
    }
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status FileFrameStore::Remove(uint64_t frame_id) {
  std::remove(PathFor(frame_id).c_str());
  return Status::OK();
}

}  // namespace dbgc
