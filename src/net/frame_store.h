// Server-side storage backends for compressed frames. The paper's server
// "supports storing data into files or relational databases through ODBC"
// (Section 4.1); this module provides the file backend and an in-memory
// table standing in for the database path.

#ifndef DBGC_NET_FRAME_STORE_H_
#define DBGC_NET_FRAME_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbgc {

/// Keyed storage of compressed frame bitstreams.
class FrameStore {
 public:
  virtual ~FrameStore() = default;

  /// Stores (or replaces) the bitstream of `frame_id`.
  virtual Status Put(uint64_t frame_id, const ByteBuffer& bitstream) = 0;

  /// Loads the bitstream of `frame_id`.
  virtual Result<ByteBuffer> Get(uint64_t frame_id) const = 0;

  /// All stored frame ids in ascending order.
  virtual std::vector<uint64_t> List() const = 0;

  /// Removes a frame; OK even if absent.
  virtual Status Remove(uint64_t frame_id) = 0;
};

/// In-memory table (the stand-in for the ODBC/relational backend).
///
/// With a non-zero `capacity`, the store holds at most that many frames.
/// Eviction is least-recently-used (Put and Get both refresh an entry),
/// with one carve-out for multi-session stores: the newest frame of every
/// session is pinned, so a slow session's keyframe is never displaced by
/// another session's burst of disposable frames. A session's previous
/// newest frame becomes evictable the moment its next frame arrives.
/// When every resident frame is pinned (capacity <= live sessions) the
/// pin degrades to plain LRU — the bound always holds. Replacing an
/// existing id never evicts. Capacity 0 (the default) is unbounded.
///
/// The single-argument FrameStore::Put tags frames with session 0, which
/// reproduces the historical single-stream behavior: LRU without Get
/// traffic is oldest-id-first.
///
/// Thread-safe: every operation locks the table, so pool workers may
/// Put/Get/Remove concurrently (the fleet server stores frames from many
/// sessions at once, docs/FLEET.md).
class MemoryFrameStore : public FrameStore {
 public:
  explicit MemoryFrameStore(size_t capacity = 0);
  ~MemoryFrameStore() override;

  Status Put(uint64_t frame_id, const ByteBuffer& bitstream) override;
  Result<ByteBuffer> Get(uint64_t frame_id) const override;
  std::vector<uint64_t> List() const override;
  Status Remove(uint64_t frame_id) override;

  /// Session-tagged Put: the frame belongs to `session_id` for eviction
  /// purposes (per-session LRU, newest frame pinned).
  Status Put(uint64_t frame_id, const ByteBuffer& bitstream,
             uint64_t session_id);

  /// The eviction bound (0 = unbounded).
  size_t capacity() const { return capacity_; }
  /// Frames evicted by the capacity bound since construction.
  uint64_t evicted() const;

 private:
  struct Entry {
    ByteBuffer bits;
    uint64_t session = 0;
    uint64_t last_use = 0;  // LRU tick; refreshed by Put and Get.
  };

  /// Drops the byte/frame share of one entry from the resident gauges.
  void ReleaseEntry(size_t bytes);

  /// Evicts one frame to make room for (`incoming_id`, `incoming_session`):
  /// the least-recently-used entry that is not its session's newest frame.
  /// The incoming session's current newest is evictable when the incoming
  /// frame supersedes it; if every entry is pinned, plain LRU applies.
  void EvictOneLocked(uint64_t incoming_id, uint64_t incoming_session)
      DBGC_REQUIRES(mutex_);

  /// Maintains newest_ after `frame_id` of `session_id` left the table:
  /// repoints the pin at the session's remaining newest frame, or drops
  /// the session when no frames remain.
  void ForgetNewestLocked(uint64_t frame_id, uint64_t session_id)
      DBGC_REQUIRES(mutex_);

  const size_t capacity_;
  mutable Mutex mutex_;
  uint64_t evicted_ DBGC_GUARDED_BY(mutex_) = 0;
  mutable uint64_t tick_ DBGC_GUARDED_BY(mutex_) = 0;
  // Mutable because Get() refreshes the LRU tick of the hit entry.
  mutable std::map<uint64_t, Entry> frames_ DBGC_GUARDED_BY(mutex_);
  /// session id -> its newest resident frame id (the pinned keyframe).
  std::map<uint64_t, uint64_t> newest_ DBGC_GUARDED_BY(mutex_);
};

/// One file per frame under a directory ("<dir>/<id>.dbgc").
class FileFrameStore : public FrameStore {
 public:
  /// The directory must exist and be writable.
  explicit FileFrameStore(std::string directory);

  Status Put(uint64_t frame_id, const ByteBuffer& bitstream) override;
  Result<ByteBuffer> Get(uint64_t frame_id) const override;
  std::vector<uint64_t> List() const override;
  Status Remove(uint64_t frame_id) override;

 private:
  std::string PathFor(uint64_t frame_id) const;
  std::string directory_;
};

}  // namespace dbgc

#endif  // DBGC_NET_FRAME_STORE_H_
