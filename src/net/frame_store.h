// Server-side storage backends for compressed frames. The paper's server
// "supports storing data into files or relational databases through ODBC"
// (Section 4.1); this module provides the file backend and an in-memory
// table standing in for the database path.

#ifndef DBGC_NET_FRAME_STORE_H_
#define DBGC_NET_FRAME_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbgc {

/// Keyed storage of compressed frame bitstreams.
class FrameStore {
 public:
  virtual ~FrameStore() = default;

  /// Stores (or replaces) the bitstream of `frame_id`.
  virtual Status Put(uint64_t frame_id, const ByteBuffer& bitstream) = 0;

  /// Loads the bitstream of `frame_id`.
  virtual Result<ByteBuffer> Get(uint64_t frame_id) const = 0;

  /// All stored frame ids in ascending order.
  virtual std::vector<uint64_t> List() const = 0;

  /// Removes a frame; OK even if absent.
  virtual Status Remove(uint64_t frame_id) = 0;
};

/// In-memory table (the stand-in for the ODBC/relational backend).
///
/// With a non-zero `capacity`, the store holds at most that many frames:
/// inserting a new id beyond the bound evicts the oldest (smallest) id
/// first. Replacing an existing id never evicts. Capacity 0 (the default)
/// is unbounded, preserving the original behavior.
///
/// Thread-safe: every operation locks the table, so pool workers may
/// Put/Get/Remove concurrently (the fleet-server direction in ROADMAP.md
/// stores frames from many sessions at once).
class MemoryFrameStore : public FrameStore {
 public:
  explicit MemoryFrameStore(size_t capacity = 0);
  ~MemoryFrameStore() override;

  Status Put(uint64_t frame_id, const ByteBuffer& bitstream) override;
  Result<ByteBuffer> Get(uint64_t frame_id) const override;
  std::vector<uint64_t> List() const override;
  Status Remove(uint64_t frame_id) override;

  /// The eviction bound (0 = unbounded).
  size_t capacity() const { return capacity_; }
  /// Frames evicted by the capacity bound since construction.
  uint64_t evicted() const;

 private:
  /// Drops the byte/frame share of one entry from the resident gauges.
  void ReleaseEntry(size_t bytes);

  const size_t capacity_;
  mutable Mutex mutex_;
  uint64_t evicted_ DBGC_GUARDED_BY(mutex_) = 0;
  std::map<uint64_t, ByteBuffer> frames_ DBGC_GUARDED_BY(mutex_);
};

/// One file per frame under a directory ("<dir>/<id>.dbgc").
class FileFrameStore : public FrameStore {
 public:
  /// The directory must exist and be writable.
  explicit FileFrameStore(std::string directory);

  Status Put(uint64_t frame_id, const ByteBuffer& bitstream) override;
  Result<ByteBuffer> Get(uint64_t frame_id) const override;
  std::vector<uint64_t> List() const override;
  Status Remove(uint64_t frame_id) override;

 private:
  std::string PathFor(uint64_t frame_id) const;
  std::string directory_;
};

}  // namespace dbgc

#endif  // DBGC_NET_FRAME_STORE_H_
