#include "net/pipeline.h"

namespace dbgc {

CompressionPipeline::CompressionPipeline(DbgcOptions options,
                                         int num_workers)
    : codec_(options) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompressionPipeline::~CompressionPipeline() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  input_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

uint64_t CompressionPipeline::Submit(PointCloud pc) {
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_++;
    input_.push_back(Task{seq, std::move(pc)});
  }
  input_cv_.notify_one();
  return seq;
}

Result<ByteBuffer> CompressionPipeline::NextResult() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (next_delivery_ >= next_seq_) {
    return Status::InvalidArgument("pipeline: no frame pending");
  }
  const uint64_t want = next_delivery_++;
  output_cv_.wait(lock, [&] { return output_.count(want) > 0; });
  auto node = output_.extract(want);
  return std::move(node.mapped());
}

void CompressionPipeline::WorkerLoop() {
  for (;;) {
    Task task{0, PointCloud()};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      input_cv_.wait(lock,
                     [&] { return shutting_down_ || !input_.empty(); });
      if (input_.empty()) return;  // Shutting down.
      task = std::move(input_.front());
      input_.pop_front();
    }
    Result<ByteBuffer> result = codec_.Compress(task.cloud, codec_.options().q_xyz);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      output_.emplace(task.seq, std::move(result));
    }
    output_cv_.notify_all();
  }
}

}  // namespace dbgc
