#include "net/pipeline.h"

#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

CompressionPipeline::Config ConfigForWorkers(int num_workers) {
  CompressionPipeline::Config config;
  config.num_workers = num_workers;
  return config;
}

/// Process-wide pipeline instruments, resolved once. Gauges are updated by
/// deltas so several pipelines sharing the process compose additively.
struct PipelineMetrics {
  obs::Counter* submitted;
  obs::Counter* rejected;
  obs::Counter* delivered;
  obs::Gauge* queue_depth;  // Accepted, compression not started.
  obs::Gauge* inflight;     // Accepted, not yet delivered.
  obs::Histogram* encode_seconds;

  static const PipelineMetrics& Get() {
    static const PipelineMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      PipelineMetrics p;
      p.submitted = reg.GetCounter("pipeline_submitted_total");
      p.rejected = reg.GetCounter("pipeline_rejected_total");
      p.delivered = reg.GetCounter("pipeline_delivered_total");
      p.queue_depth = reg.GetGauge("pipeline_queue_depth");
      p.inflight = reg.GetGauge("pipeline_inflight");
      p.encode_seconds = reg.GetHistogram("pipeline_encode_seconds");
      return p;
    }();
    return m;
  }
};

}  // namespace

CompressionPipeline::CompressionPipeline(DbgcOptions options, int num_workers)
    : CompressionPipeline(std::move(options), ConfigForWorkers(num_workers)) {}

CompressionPipeline::CompressionPipeline(DbgcOptions options,
                                         const Config& config)
    : codec_(std::move(options)),
      temporal_config_(config.temporal),
      temporal_encoder_(config.temporal.has_value()
                            ? std::make_unique<TemporalEncoder>(
                                  *config.temporal)
                            : nullptr),
      owned_pool_(config.pool != nullptr
                      ? nullptr
                      : std::make_unique<ThreadPool>(
                            config.num_workers < 1 ? 1 : config.num_workers)),
      pool_(config.pool != nullptr ? config.pool : owned_pool_.get()),
      capacity_(config.queue_capacity < 1 ? 1 : config.queue_capacity),
      max_threads_per_frame_(config.max_threads_per_frame) {
  // Resolve the process-wide instruments now, outside any lock: the first
  // Get() registers names under the registry lock, and every later use —
  // including uses under mutex_ — is then a plain pointer read.
  (void)PipelineMetrics::Get();
}

CompressionPipeline::~CompressionPipeline() {
  // Every scheduled task captures `this`, so the destructor must not return
  // until all of them ran — on a shared pool the pool cannot be relied on
  // to fence them. Draining also honours the accepted-frame contract:
  // submitted work is finished, not discarded.
  ReleasableMutexLock lock(mutex_);
  while (completed_ != next_seq_) drain_cv_.Wait(lock);
  // Compressed-but-undelivered frames die with the pipeline; release their
  // share of the inflight gauge so it tracks live pipelines only. Holding
  // mutex_ makes the release exactly-once against NextResult: a delivery
  // either finished its own Sub(1) under the lock (and bumped delivered_)
  // before this point, or never ran — the gauge can neither leak nor
  // underflow.
  PipelineMetrics::Get().inflight->Sub(
      static_cast<int64_t>(next_seq_ - delivered_));
  // An owned pool joins its (now idle) workers in its destructor.
}

uint64_t CompressionPipeline::Submit(PointCloud pc) {
  return Submit(std::move(pc), RigidTransform());
}

uint64_t CompressionPipeline::Submit(PointCloud pc,
                                     const RigidTransform& pose) {
  uint64_t seq = 0;
  {
    ReleasableMutexLock lock(mutex_);
    while (next_seq_ - delivered_ >= capacity_) space_cv_.Wait(lock);
    seq = EnqueueLocked(std::move(pc), pose);
  }
  ScheduleCompression();
  return seq;
}

bool CompressionPipeline::TrySubmit(PointCloud pc, uint64_t* seq) {
  return TrySubmit(std::move(pc), RigidTransform(), seq);
}

bool CompressionPipeline::TrySubmit(PointCloud pc, const RigidTransform& pose,
                                    uint64_t* seq) {
  bool accepted = false;
  uint64_t assigned = 0;
  {
    MutexLock lock(mutex_);
    if (next_seq_ - delivered_ < capacity_) {
      assigned = EnqueueLocked(std::move(pc), pose);
      accepted = true;
    } else {
      // Refusal leaves no admission state behind, so there is no gauge
      // bump to unwind: EnqueueLocked publishes only on acceptance.
      ++rejected_;
      PipelineMetrics::Get().rejected->Increment();
    }
  }
  if (!accepted) return false;
  ScheduleCompression();
  if (seq != nullptr) *seq = assigned;
  return true;
}

void CompressionPipeline::ForceKeyframe() {
  MutexLock lock(mutex_);
  force_keyframe_ = true;
}

uint64_t CompressionPipeline::EnqueueLocked(PointCloud pc,
                                            const RigidTransform& pose) {
  const uint64_t seq = next_seq_++;
  input_.push_back(Task{seq, std::move(pc), pose});
  // Publish admission exactly when the state changes, under the same lock:
  // a gauge bump can then never outlive (or predate) the queue entry it
  // accounts for, so rejects and racing releases cannot underflow the
  // gauges. Gauge/counter updates are relaxed atomic adds — non-blocking,
  // legal under a held lock (docs/CONCURRENCY.md rule R10).
  const PipelineMetrics& m = PipelineMetrics::Get();
  m.submitted->Increment();
  m.queue_depth->Add(1);
  m.inflight->Add(1);
  return seq;
}

void CompressionPipeline::ScheduleCompression() {
  if (temporal_encoder_ == nullptr) {
    pool_->Schedule([this] { CompressOne(); });
    return;
  }
  // Temporal mode: at most one encode actor at a time, because the
  // encoder's prediction state imposes strict submission order. Decide
  // under the lock, schedule outside it (rule R10); a running actor will
  // drain the frame we just queued.
  bool schedule = false;
  {
    MutexLock lock(mutex_);
    if (!temporal_active_ && !input_.empty()) {
      temporal_active_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_->Schedule([this] { TemporalEncodeLoop(); });
  }
}

Result<ByteBuffer> CompressionPipeline::NextResult() {
  std::map<uint64_t, Result<ByteBuffer>>::node_type node;
  {
    ReleasableMutexLock lock(mutex_);
    if (next_delivery_ >= next_seq_) {
      return Status::InvalidArgument("pipeline: no frame pending");
    }
    const uint64_t want = next_delivery_++;
    while (output_.count(want) == 0) output_cv_.Wait(lock);
    node = output_.extract(want);
    ++delivered_;
    // Release this frame's inflight share under the lock (see ~CompressionPipeline).
    const PipelineMetrics& m = PipelineMetrics::Get();
    m.delivered->Increment();
    m.inflight->Sub(1);
    space_cv_.NotifyAll();
  }
  return std::move(node.mapped());
}

Status CompressionPipeline::Drain() {
  ReleasableMutexLock lock(mutex_);
  while (completed_ != next_seq_) drain_cv_.Wait(lock);
  for (const auto& entry : output_) {
    if (!entry.second.ok()) return entry.second.status();
  }
  return Status::OK();
}

uint64_t CompressionPipeline::submitted() const {
  MutexLock lock(mutex_);
  return next_seq_;
}

size_t CompressionPipeline::inflight() const {
  MutexLock lock(mutex_);
  return static_cast<size_t>(next_seq_ - delivered_);
}

size_t CompressionPipeline::queue_depth() const {
  MutexLock lock(mutex_);
  return input_.size();
}

uint64_t CompressionPipeline::rejected() const {
  MutexLock lock(mutex_);
  return rejected_;
}

void CompressionPipeline::CompressOne() {
  Task task{0, PointCloud()};
  {
    MutexLock lock(mutex_);
    // Exactly one closure is scheduled per queued task.
    DBGC_CHECK(!input_.empty());
    task = std::move(input_.front());
    input_.pop_front();
    // Release the queue-depth share with the pop it accounts for: outside
    // the lock a racing enqueue/pop pair could transiently drive the
    // gauge negative.
    PipelineMetrics::Get().queue_depth->Sub(1);
  }
  CompressParams params;
  params.q_xyz = codec_.options().q_xyz;
  if (max_threads_per_frame_ != 1) {
    // Nested use of the shared pool: ParallelFor callers always run chunks
    // themselves, so frames make progress even with every worker busy.
    params.pool = pool_;
    params.max_threads = max_threads_per_frame_;
  }
  Result<ByteBuffer> result = [&] {
    obs::ScopedTimer timer(nullptr, PipelineMetrics::Get().encode_seconds);
    return codec_.Compress(task.cloud, params);
  }();
  {
    MutexLock lock(mutex_);
    output_.emplace(task.seq, std::move(result));
    ++completed_;
    // Notify under the lock: the destructor destroys these condition
    // variables as soon as its drain wait condition holds, and a waiter
    // can only re-check that condition while holding mutex_ — so
    // notifying here guarantees this thread is done with the object
    // before the destructor can proceed.
    output_cv_.NotifyAll();
    drain_cv_.NotifyAll();
  }
}

void CompressionPipeline::TemporalEncodeLoop() {
  Task task{0, PointCloud(), RigidTransform()};
  bool reset_first = false;
  {
    MutexLock lock(mutex_);
    // The scheduler only starts an actor after queueing a frame and
    // claiming temporal_active_, so the queue cannot be empty here.
    DBGC_CHECK(temporal_active_ && !input_.empty());
    task = std::move(input_.front());
    input_.pop_front();
    PipelineMetrics::Get().queue_depth->Sub(1);
    reset_first = force_keyframe_;
    force_keyframe_ = false;
  }
  for (;;) {
    if (reset_first) temporal_encoder_->Reset();
    CompressParams params;
    params.q_xyz = temporal_config_->intra_options.q_xyz;
    if (max_threads_per_frame_ != 1) {
      params.pool = pool_;
      params.max_threads = max_threads_per_frame_;
    }
    Result<ByteBuffer> result = [&] {
      obs::ScopedTimer timer(nullptr, PipelineMetrics::Get().encode_seconds);
      return temporal_encoder_->EncodeFrame(task.cloud, task.pose, params);
    }();
    // A failed encode leaves no packet on the wire; restart the
    // prediction chain so the next accepted frame is a self-contained
    // keyframe rather than a P-frame referencing unsent state.
    if (!result.ok()) temporal_encoder_->Reset();

    bool have_next = false;
    {
      MutexLock lock(mutex_);
      if (!input_.empty()) {
        Task next = std::move(input_.front());
        input_.pop_front();
        PipelineMetrics::Get().queue_depth->Sub(1);
        reset_first = force_keyframe_;
        force_keyframe_ = false;
        output_.emplace(task.seq, std::move(result));
        ++completed_;
        output_cv_.NotifyAll();
        drain_cv_.NotifyAll();
        task = std::move(next);
        have_next = true;
      } else {
        // Publish the final result and retire the actor in ONE critical
        // section: once completed_ == next_seq_ the destructor may tear
        // the object down, so this lock release must be the actor's very
        // last touch of *this.
        temporal_active_ = false;
        output_.emplace(task.seq, std::move(result));
        ++completed_;
        output_cv_.NotifyAll();
        drain_cv_.NotifyAll();
      }
    }
    if (!have_next) return;
  }
}

}  // namespace dbgc
