// CompressionPipeline: a multi-threaded frame compressor. Section 4.4's
// online claim rests on throughput: one DBGC compression takes a few
// frame intervals, so a real deployment overlaps frames. The pipeline
// preserves submission order on the output side, which the frame protocol
// requires.
//
// Frames are compressed as tasks on a dbgc::ThreadPool — either a pool the
// pipeline owns, or one shared with other pipelines / intra-frame stage
// parallelism (docs/PARALLELISM.md). A bounded in-flight window applies
// backpressure: Submit blocks while `submitted - delivered` frames are
// outstanding, TrySubmit refuses instead of blocking, and Drain() flushes
// every accepted frame. The destructor drains rather than discarding.

#ifndef DBGC_NET_PIPELINE_H_
#define DBGC_NET_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "bitio/byte_buffer.h"
#include "common/mutex.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/transforms.h"
#include "core/dbgc_codec.h"
#include "core/temporal_codec.h"

namespace dbgc {

/// Order-preserving parallel DBGC compressor with bounded admission.
class CompressionPipeline {
 public:
  struct Config {
    /// Worker threads when the pipeline owns its pool (>= 1). Ignored when
    /// `pool` is set.
    int num_workers = 2;
    /// Maximum frames in flight (submitted but not yet delivered, >= 1).
    /// Submit blocks and TrySubmit fails while the window is full.
    size_t queue_capacity = 8;
    /// Thread budget *inside* one frame's compression (CompressParams
    /// semantics: 1 = serial, 0 = whole pool). Frame-level parallelism
    /// usually beats intra-frame parallelism on throughput; raise this for
    /// latency-sensitive single-stream use.
    int max_threads_per_frame = 1;
    /// Shared pool to run on instead of owning one. Must outlive the
    /// pipeline. The bitstreams are identical either way.
    ThreadPool* pool = nullptr;
    /// When set, the pipeline emits temporal I/P frame packets
    /// (docs/TEMPORAL.md) instead of independent DBGC bitstreams. The
    /// encoder is stateful (each P-frame predicts from the previous
    /// reconstruction), so frames are encoded strictly in submission
    /// order by a single pool task at a time; frame-level parallelism is
    /// traded for the inter-frame bit savings, and intra-frame
    /// parallelism (`max_threads_per_frame`) still applies.
    std::optional<TemporalConfig> temporal;
  };

  /// Starts a pipeline owning `num_workers` compression threads (>= 1).
  explicit CompressionPipeline(DbgcOptions options, int num_workers = 2);

  /// Starts a pipeline per `config`.
  CompressionPipeline(DbgcOptions options, const Config& config);

  /// Drains every accepted frame (completing their compressions), then
  /// stops. Undelivered results are dropped after compression — call
  /// Drain() + NextResult() first if they matter.
  ~CompressionPipeline();

  CompressionPipeline(const CompressionPipeline&) = delete;
  CompressionPipeline& operator=(const CompressionPipeline&) = delete;

  /// Enqueues a frame and returns its sequence number; blocks while the
  /// in-flight window is full. In temporal mode the frame is encoded
  /// with an identity capture pose.
  uint64_t Submit(PointCloud pc);

  /// Temporal-mode Submit carrying the sensor->world capture pose used
  /// for ego-motion compensation. The pose is ignored in DBGC mode.
  uint64_t Submit(PointCloud pc, const RigidTransform& pose);

  /// Non-blocking Submit: returns false (and does not accept the frame)
  /// when the in-flight window is full. On success stores the sequence
  /// number through `seq` when non-null. A refused frame never reaches
  /// the temporal encoder, so the emitted stream simply continues from
  /// the last accepted frame — no decoder resynchronization is needed.
  bool TrySubmit(PointCloud pc, uint64_t* seq = nullptr);

  /// TrySubmit with a capture pose (temporal mode).
  bool TrySubmit(PointCloud pc, const RigidTransform& pose,
                 uint64_t* seq = nullptr);

  /// Temporal mode only (no-op otherwise): the next encoded frame is
  /// forced to be an I-frame. The client-side response to a fleet
  /// degradation advisory or a reported downstream loss — a keyframe
  /// re-anchors the receiver without waiting out the keyframe interval.
  void ForceKeyframe();

  /// Whether the pipeline emits temporal I/P packets.
  bool temporal() const { return temporal_config_.has_value(); }

  /// Blocks until the next frame (in submission order) is compressed and
  /// returns its bitstream. Fails if called more times than Submit.
  Result<ByteBuffer> NextResult();

  /// Blocks until every submitted frame has been compressed. Returns the
  /// first error among the not-yet-delivered results (without consuming
  /// them; NextResult still yields every frame), OK otherwise.
  Status Drain();

  /// Frames submitted so far.
  uint64_t submitted() const;

  /// The admission bound (Config::queue_capacity).
  size_t capacity() const { return capacity_; }

  /// Frames accepted but not yet delivered (the in-flight window load).
  /// Ground truth for the pipeline_inflight gauge.
  size_t inflight() const;

  /// Accepted frames whose compression has not started yet. Ground truth
  /// for the pipeline_queue_depth gauge.
  size_t queue_depth() const;

  /// TrySubmit calls refused because the window was full. Ground truth for
  /// the pipeline_rejected_total counter (this instance only; the counter
  /// aggregates across pipelines).
  uint64_t rejected() const;

 private:
  struct Task {
    uint64_t seq;
    PointCloud cloud;
    RigidTransform pose;
  };

  void CompressOne();

  /// Temporal-mode actor: drains queued frames strictly in submission
  /// order through the stateful encoder. At most one instance runs at a
  /// time (temporal_active_); the last instance clears the flag in the
  /// same critical section that publishes its final result, so tear-down
  /// can never race a re-lock.
  void TemporalEncodeLoop();

  /// Appends the frame, assigns its sequence number, and publishes the
  /// admission metrics under the lock — gauge bumps happen exactly when
  /// the state they account for changes, so no interleaving of rejects,
  /// deliveries, and the draining destructor can underflow them. The
  /// caller schedules the compression *after* releasing the lock (lock
  /// discipline R10: no pool call while a lock is held).
  uint64_t EnqueueLocked(PointCloud pc, const RigidTransform& pose)
      DBGC_REQUIRES(mutex_);

  /// Schedules one compression task (or, in temporal mode, the single
  /// ordered encode actor if none is running). Must be called without
  /// mutex_ held.
  void ScheduleCompression() DBGC_EXCLUDES(mutex_);

  const DbgcCodec codec_;
  const std::optional<TemporalConfig> temporal_config_;
  /// Stateful I/P encoder; thread-confined to the single active
  /// TemporalEncodeLoop task (temporal_active_ hands off ownership under
  /// mutex_), so it needs no lock of its own. Null in DBGC mode.
  const std::unique_ptr<TemporalEncoder> temporal_encoder_;
  const std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* const pool_;  // owned_pool_.get() or the shared Config::pool.
  const size_t capacity_;
  const int max_threads_per_frame_;

  mutable Mutex mutex_;
  CondVar output_cv_;  // A result became available.
  CondVar space_cv_;   // The in-flight window shrank.
  CondVar drain_cv_;   // A compression completed.
  std::deque<Task> input_ DBGC_GUARDED_BY(mutex_);
  std::map<uint64_t, Result<ByteBuffer>> output_ DBGC_GUARDED_BY(mutex_);
  uint64_t next_seq_ DBGC_GUARDED_BY(mutex_) = 0;
  uint64_t next_delivery_ DBGC_GUARDED_BY(mutex_) = 0;
  uint64_t delivered_ DBGC_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ DBGC_GUARDED_BY(mutex_) = 0;
  uint64_t rejected_ DBGC_GUARDED_BY(mutex_) = 0;
  bool temporal_active_ DBGC_GUARDED_BY(mutex_) = false;
  bool force_keyframe_ DBGC_GUARDED_BY(mutex_) = false;
};

}  // namespace dbgc

#endif  // DBGC_NET_PIPELINE_H_
