// CompressionPipeline: a multi-threaded frame compressor. Section 4.4's
// online claim rests on throughput: one DBGC compression takes a few
// frame intervals, so a real deployment overlaps frames. The pipeline
// preserves submission order on the output side, which the frame protocol
// requires.

#ifndef DBGC_NET_PIPELINE_H_
#define DBGC_NET_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "core/dbgc_codec.h"

namespace dbgc {

/// Orders-preserving parallel DBGC compressor.
class CompressionPipeline {
 public:
  /// Starts `num_workers` compression threads (>= 1).
  explicit CompressionPipeline(DbgcOptions options, int num_workers = 2);

  /// Joins all workers; pending results are discarded.
  ~CompressionPipeline();

  CompressionPipeline(const CompressionPipeline&) = delete;
  CompressionPipeline& operator=(const CompressionPipeline&) = delete;

  /// Enqueues a frame; returns its sequence number.
  uint64_t Submit(PointCloud pc);

  /// Blocks until the next frame (in submission order) is compressed and
  /// returns its bitstream. Fails if called more times than Submit.
  Result<ByteBuffer> NextResult();

  /// Frames submitted so far.
  uint64_t submitted() const { return next_seq_; }

 private:
  struct Task {
    uint64_t seq;
    PointCloud cloud;
  };

  void WorkerLoop();

  DbgcCodec codec_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable input_cv_;
  std::condition_variable output_cv_;
  std::deque<Task> input_;
  std::map<uint64_t, Result<ByteBuffer>> output_;
  uint64_t next_seq_ = 0;
  uint64_t next_delivery_ = 0;
  bool shutting_down_ = false;
};

}  // namespace dbgc

#endif  // DBGC_NET_PIPELINE_H_
