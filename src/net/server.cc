#include "net/server.h"

#include <chrono>

namespace dbgc {

DbgcServer::DbgcServer(bool store_compressed)
    : store_compressed_(store_compressed) {}

Status DbgcServer::HandleFrame(const ByteBuffer& wire,
                               ServerFrameReport* report) {
  *report = ServerFrameReport();
  report->wire_bytes = wire.size();
  auto frame_result = FrameProtocol::Parse(wire);
  if (!frame_result.ok()) return frame_result.status();
  Frame frame = std::move(frame_result).value();
  report->frame_id = frame.frame_id;

  if (archive_ != nullptr) {
    DBGC_RETURN_NOT_OK(archive_->Put(frame.frame_id, frame.payload));
  }
  if (store_compressed_) {
    bitstreams_[frame.frame_id] = std::move(frame.payload);
    return Status::OK();
  }

  const auto start = std::chrono::steady_clock::now();
  auto cloud_result = codec_.Decompress(frame.payload);
  const auto end = std::chrono::steady_clock::now();
  if (!cloud_result.ok()) return cloud_result.status();
  report->decompress_seconds =
      std::chrono::duration<double>(end - start).count();
  report->num_points = cloud_result.value().size();
  clouds_[frame.frame_id] = std::move(cloud_result).value();
  return Status::OK();
}

}  // namespace dbgc
