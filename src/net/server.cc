#include "net/server.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

/// Process-wide server instruments, resolved once.
struct ServerMetrics {
  obs::Counter* frames;
  obs::Counter* wire_bytes;
  obs::Counter* parse_errors;
  obs::Gauge* stored_frames;  // Resident decoded clouds + bitstreams.
  obs::Histogram* decompress_seconds;

  static const ServerMetrics& Get() {
    static const ServerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      ServerMetrics s;
      s.frames = reg.GetCounter("server_frames_total");
      s.wire_bytes = reg.GetCounter("server_wire_bytes_total");
      s.parse_errors = reg.GetCounter("server_parse_errors_total");
      s.stored_frames = reg.GetGauge("server_stored_frames");
      s.decompress_seconds = reg.GetHistogram("server_decompress_seconds");
      return s;
    }();
    return m;
  }
};

}  // namespace

DbgcServer::DbgcServer(bool store_compressed)
    : store_compressed_(store_compressed) {}

Status DbgcServer::HandleFrame(const ByteBuffer& wire,
                               ServerFrameReport* report) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  *report = ServerFrameReport();
  report->wire_bytes = wire.size();
  auto frame_result = FrameProtocol::Parse(wire);
  if (!frame_result.ok()) {
    metrics.parse_errors->Increment();
    return frame_result.status();
  }
  metrics.frames->Increment();
  metrics.wire_bytes->Add(wire.size());
  Frame frame = std::move(frame_result).value();
  report->frame_id = frame.frame_id;

  // Archive writes run outside the lock (lock discipline R10,
  // docs/CONCURRENCY.md): FileFrameStore does real file I/O, and the
  // store synchronizes itself.
  if (archive_ != nullptr) {
    DBGC_RETURN_NOT_OK(archive_->Put(frame.frame_id, frame.payload));
  }
  if (store_compressed_) {
    MutexLock lock(mutex_);
    if (bitstreams_.count(frame.frame_id) == 0) metrics.stored_frames->Add(1);
    bitstreams_[frame.frame_id] = std::move(frame.payload);
    return Status::OK();
  }

  // Decompression is the expensive step; it also stays outside the lock so
  // concurrent sessions decode in parallel.
  Result<PointCloud> cloud_result = [&] {
    obs::ScopedTimer timer(&report->decompress_seconds,
                           metrics.decompress_seconds);
    DecompressParams params;
    if (decode_pool_ != nullptr) {
      params.pool = decode_pool_;
      params.max_threads = decode_max_threads_;
    }
    return codec_.Decompress(frame.payload, params);
  }();
  if (!cloud_result.ok()) return cloud_result.status();
  report->num_points = cloud_result.value().size();
  MutexLock lock(mutex_);
  if (clouds_.count(frame.frame_id) == 0) metrics.stored_frames->Add(1);
  clouds_[frame.frame_id] = std::move(cloud_result).value();
  return Status::OK();
}

}  // namespace dbgc
