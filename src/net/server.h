// DbgcServer: the server side of the DBGC system (Figure 2) - parses wire
// frames, decompresses them (or stores B directly), and keeps an in-memory
// store standing in for the file/ODBC backends of the prototype.

#ifndef DBGC_NET_SERVER_H_
#define DBGC_NET_SERVER_H_

#include <cstdint>
#include <map>

#include "common/point_cloud.h"
#include "core/dbgc_codec.h"
#include "net/frame_protocol.h"
#include "net/frame_store.h"

namespace dbgc {

/// Per-frame server-side accounting.
struct ServerFrameReport {
  uint64_t frame_id = 0;
  size_t wire_bytes = 0;
  size_t num_points = 0;
  double decompress_seconds = 0.0;
};

/// The receive-decompress-store pipeline.
class DbgcServer {
 public:
  /// If `store_compressed` is true the server bypasses decompression and
  /// archives B directly (the alternative path of Section 3.1).
  explicit DbgcServer(bool store_compressed = false);

  /// Attaches a persistent archive: every incoming bitstream is also
  /// written to `store` (the file/ODBC storage of Section 4.1). The store
  /// must outlive the server.
  void set_archive(FrameStore* store) { archive_ = store; }

  /// Handles one wire frame; fills `report`.
  Status HandleFrame(const ByteBuffer& wire, ServerFrameReport* report);

  /// Frames decompressed and stored (empty in store_compressed mode).
  const std::map<uint64_t, PointCloud>& stored_clouds() const {
    return clouds_;
  }
  /// Compressed frames archived in store_compressed mode.
  const std::map<uint64_t, ByteBuffer>& stored_bitstreams() const {
    return bitstreams_;
  }

 private:
  bool store_compressed_;
  FrameStore* archive_ = nullptr;
  DbgcCodec codec_;
  std::map<uint64_t, PointCloud> clouds_;
  std::map<uint64_t, ByteBuffer> bitstreams_;
};

}  // namespace dbgc

#endif  // DBGC_NET_SERVER_H_
