// DbgcServer: the server side of the DBGC system (Figure 2) - parses wire
// frames, decompresses them (or stores B directly), and keeps an in-memory
// store standing in for the file/ODBC backends of the prototype.

#ifndef DBGC_NET_SERVER_H_
#define DBGC_NET_SERVER_H_

#include <cstdint>
#include <map>

#include "common/mutex.h"
#include "common/point_cloud.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/dbgc_codec.h"
#include "net/frame_protocol.h"
#include "net/frame_store.h"

namespace dbgc {

/// Per-frame server-side accounting.
struct ServerFrameReport {
  uint64_t frame_id = 0;
  size_t wire_bytes = 0;
  size_t num_points = 0;
  double decompress_seconds = 0.0;
};

/// The receive-decompress-store pipeline.
class DbgcServer {
 public:
  /// If `store_compressed` is true the server bypasses decompression and
  /// archives B directly (the alternative path of Section 3.1).
  explicit DbgcServer(bool store_compressed = false);

  /// Attaches a persistent archive: every incoming bitstream is also
  /// written to `store` (the file/ODBC storage of Section 4.1). The store
  /// must outlive the server and be attached before traffic starts — the
  /// pointer itself is not synchronized, only what it points to.
  void set_archive(FrameStore* store) { archive_ = store; }

  /// Enables intra-frame decode parallelism: each Decompress may occupy up
  /// to `max_threads` workers of `pool` (0 = the whole pool). The pool
  /// must outlive the server; same thread-confined setup contract as
  /// set_archive. Bitstream decoding is byte-exact at any thread budget,
  /// so this only changes latency.
  void set_decode_parallelism(ThreadPool* pool, int max_threads = 0) {
    decode_pool_ = pool;
    decode_max_threads_ = max_threads;
  }

  /// Handles one wire frame; fills `report`. Safe to call from several
  /// transport threads at once: parsing, archiving, and decompression run
  /// outside the lock; only the table insertion is serialized.
  Status HandleFrame(const ByteBuffer& wire, ServerFrameReport* report);

  /// Frames decompressed and stored (empty in store_compressed mode).
  /// Returns a reference into the guarded table without taking the lock:
  /// only valid while the server is quiescent (no HandleFrame in flight),
  /// the single-threaded inspection pattern tests and examples use.
  const std::map<uint64_t, PointCloud>& stored_clouds() const
      DBGC_NO_THREAD_SAFETY_ANALYSIS {
    return clouds_;
  }
  /// Compressed frames archived in store_compressed mode. Same quiescence
  /// contract as stored_clouds().
  const std::map<uint64_t, ByteBuffer>& stored_bitstreams() const
      DBGC_NO_THREAD_SAFETY_ANALYSIS {
    return bitstreams_;
  }

 private:
  const bool store_compressed_;
  // Written by set_archive during single-threaded setup, read-only after.
  FrameStore* archive_ DBGC_THREAD_CONFINED = nullptr;
  // Written by set_decode_parallelism during setup, read-only after.
  ThreadPool* decode_pool_ DBGC_THREAD_CONFINED = nullptr;
  int decode_max_threads_ DBGC_THREAD_CONFINED = 0;
  const DbgcCodec codec_;
  mutable Mutex mutex_;
  std::map<uint64_t, PointCloud> clouds_ DBGC_GUARDED_BY(mutex_);
  std::map<uint64_t, ByteBuffer> bitstreams_ DBGC_GUARDED_BY(mutex_);
};

}  // namespace dbgc

#endif  // DBGC_NET_SERVER_H_
