#include "net/session.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbgc {

namespace {

/// Process-wide fleet instruments, resolved once. Gauges are delta-based
/// so several managers sharing the process compose additively; the reject
/// and degrade counters are labeled per reason/level (docs/OBSERVABILITY.md
/// naming: `fleet_*`).
struct FleetMetrics {
  obs::Gauge* sessions_open;
  obs::Counter* sessions_opened;
  obs::Counter* sessions_rejected;
  obs::Counter* submitted;
  obs::Counter* accepted;
  // Indexed by AdmitVerdict (kAccepted unused; kept so the verdict byte
  // indexes directly).
  obs::Counter* rejected[5];
  obs::Gauge* inflight;
  obs::Counter* decoded;
  obs::Counter* decode_errors;
  // Indexed by DegradeLevel (kNone unused).
  obs::Counter* degrade_advised[3];
  obs::Histogram* e2e_seconds;
  obs::Histogram* decode_seconds;

  static const FleetMetrics& Get() {
    static const FleetMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      FleetMetrics f;
      f.sessions_open = reg.GetGauge("fleet_sessions_open");
      f.sessions_opened = reg.GetCounter("fleet_sessions_opened_total");
      f.sessions_rejected = reg.GetCounter("fleet_sessions_rejected_total");
      f.submitted = reg.GetCounter("fleet_frames_submitted_total");
      f.accepted = reg.GetCounter("fleet_frames_accepted_total");
      for (int v = 0; v < 5; ++v) {
        f.rejected[v] = reg.GetCounter(obs::LabeledName(
            "fleet_rejected_total",
            {{"reason", AdmitVerdictName(static_cast<AdmitVerdict>(v))}}));
      }
      f.inflight = reg.GetGauge("fleet_inflight");
      f.decoded = reg.GetCounter("fleet_decoded_total");
      f.decode_errors = reg.GetCounter("fleet_decode_errors_total");
      for (int l = 0; l < 3; ++l) {
        f.degrade_advised[l] = reg.GetCounter(obs::LabeledName(
            "fleet_degrade_advised_total",
            {{"level", DegradeLevelName(static_cast<DegradeLevel>(l))}}));
      }
      f.e2e_seconds = reg.GetHistogram("fleet_e2e_seconds");
      f.decode_seconds = reg.GetHistogram("fleet_decode_seconds");
      return f;
    }();
    return m;
  }
};

}  // namespace

SessionManager::SessionManager(FleetConfig config)
    : config_(std::move(config)),
      owned_pool_(config_.pool != nullptr
                      ? nullptr
                      : std::make_unique<ThreadPool>(
                            config_.num_workers < 1 ? 1 : config_.num_workers)),
      pool_(config_.pool != nullptr ? config_.pool : owned_pool_.get()),
      budget_(config_.global_inflight_budget < 1
                  ? 1
                  : config_.global_inflight_budget),
      codec_(config_.options) {
  // Resolve the process-wide instruments now, outside any lock: the first
  // Get() registers names under the registry lock, and every later use —
  // including uses under mutex_ — is then a plain pointer read.
  (void)FleetMetrics::Get();
}

SessionManager::~SessionManager() {
  // Every decode task captures `this`; fence them all before members die
  // (the CompressionPipeline tear-down contract).
  ReleasableMutexLock lock(mutex_);
  while (completed_ != scheduled_) drain_cv_.Wait(lock);
  // Sessions die with the manager: release their share of the open-session
  // gauge so it tracks live managers only. Exactly-once against
  // Open/CloseSession, which adjust the gauge under this same lock.
  FleetMetrics::Get().sessions_open->Sub(static_cast<int64_t>(open_sessions_));
  // An owned pool joins its (now idle) workers in its destructor.
}

Result<uint64_t> SessionManager::OpenSession(std::string name) {
  MutexLock lock(mutex_);
  const FleetMetrics& m = FleetMetrics::Get();
  if (open_sessions_ >= config_.max_sessions) {
    m.sessions_rejected->Increment();
    return Status::OutOfRange("fleet: session table full");
  }
  const uint64_t id = next_session_id_++;
  auto session = std::make_unique<Session>();
  session->name = std::move(name);
  session->store =
      std::make_unique<MemoryFrameStore>(config_.session_store_capacity);
  sessions_.emplace(id, std::move(session));
  ++open_sessions_;
  m.sessions_opened->Increment();
  m.sessions_open->Add(1);
  return id;
}

Status SessionManager::CloseSession(uint64_t session_id) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || !it->second->open) {
    return Status::InvalidArgument("fleet: unknown session");
  }
  it->second->open = false;
  --open_sessions_;
  FleetMetrics::Get().sessions_open->Sub(1);
  return Status::OK();
}

DegradeLevel SessionManager::DegradeFor(size_t inflight) const {
  const double load =
      static_cast<double>(inflight) / static_cast<double>(budget_);
  if (load >= config_.degrade_cheap_at) return DegradeLevel::kCheapCodec;
  if (load >= config_.degrade_coarse_at) return DegradeLevel::kCoarserQuant;
  return DegradeLevel::kNone;
}

FrameAck SessionManager::SubmitFrame(uint64_t session_id,
                                     const ByteBuffer& wire) {
  const FleetMetrics& m = FleetMetrics::Get();
  // Parse outside the lock: checksumming the payload is O(bytes) and needs
  // no shared state.
  Result<Frame> parsed = FrameProtocol::Parse(wire);
  const double admit_time = obs::MonotonicSeconds();

  FrameAck ack;
  MemoryFrameStore* store = nullptr;
  bool temporal = false;
  bool start_temporal_actor = false;
  {
    MutexLock lock(mutex_);
    m.submitted->Increment();
    auto it = sessions_.find(session_id);
    Session* session =
        (it != sessions_.end() && it->second->open) ? it->second.get()
                                                    : nullptr;
    if (session != nullptr) ++session->stats.submitted;

    // Admission verdict, most specific reason first: a broken frame or a
    // dead session is its own fault regardless of load; a session over its
    // fair share is throttled even when the global budget has room left.
    if (!parsed.ok()) {
      ack.verdict = AdmitVerdict::kRejectedParse;
    } else if (session == nullptr) {
      ack.frame_id = parsed.value().frame_id;
      ack.verdict = AdmitVerdict::kRejectedUnknownSession;
    } else {
      ack.frame_id = parsed.value().frame_id;
      const size_t share = open_sessions_ == 0
                               ? budget_
                               : std::max<size_t>(1, budget_ / open_sessions_);
      if (session->stats.inflight >= share) {
        ack.verdict = AdmitVerdict::kRejectedSessionShare;
      } else if (inflight_ >= budget_) {
        ack.verdict = AdmitVerdict::kRejectedGlobalBudget;
      } else {
        ack.verdict = AdmitVerdict::kAccepted;
      }
    }

    // A temporal I/P packet (docs/TEMPORAL.md) is recognized by its
    // frame-type byte; the decoder itself fails closed on unknown values,
    // so this sniff only routes between the parallel DBGC path and the
    // per-session ordered temporal path.
    temporal = parsed.ok() && !parsed.value().payload.empty() &&
               IsTemporalFrameType(parsed.value().payload[0]);

    if (ack.verdict == AdmitVerdict::kAccepted) {
      // Publish admission exactly when the state changes, under the lock
      // (the pipeline gauge discipline): the inflight share is released by
      // the decode task under this same lock.
      ++inflight_;
      ++session->stats.inflight;
      ++session->stats.accepted;
      ++scheduled_;
      m.accepted->Increment();
      m.inflight->Add(1);
      store = session->store.get();
      if (temporal) {
        if (session->temporal_decoder == nullptr) {
          session->temporal_decoder = std::make_unique<TemporalDecoder>(
              config_.options, /*count_decode_errors=*/true);
        }
        TemporalJob job;
        job.frame = parsed.value();
        job.admit_time = admit_time;
        job.wire_bytes = wire.size();
        // Consume the gap marker with the job it precedes: the actor
        // resets the decoder right before this frame, so every P-frame
        // between the loss and the next I-frame fails closed.
        job.reset_before = session->temporal_gap;
        session->temporal_gap = false;
        session->temporal_queue.push_back(std::move(job));
        if (!session->temporal_active) {
          session->temporal_active = true;
          start_temporal_actor = true;
        }
      }
    } else {
      if (session != nullptr) {
        ++session->stats.rejected;
        // A refused submission is a hole in the prediction chain when the
        // session streams temporal packets — including unparseable wire
        // frames, whose payload type is unknowable but which the sender's
        // encoder did count. Remember it so the decoder resynchronizes at
        // the next keyframe instead of predicting from state the sender
        // has moved past.
        if (temporal || session->temporal_decoder != nullptr) {
          session->temporal_gap = true;
        }
      }
      m.rejected[static_cast<int>(ack.verdict)]->Increment();
    }

    // Advertise degradation from the post-decision load, so an accepted
    // frame that fills the budget already warns its sender.
    ack.degrade = DegradeFor(inflight_);
    if (ack.degrade != DegradeLevel::kNone) {
      m.degrade_advised[static_cast<int>(ack.degrade)]->Increment();
    }

  }

  if (ack.verdict != AdmitVerdict::kAccepted) return ack;

  if (temporal) {
    // Archive and (when this submission claimed the actor slot) start the
    // ordered decode actor — both outside the lock (rule R10). The queued
    // job owns its own copy of the frame, so `parsed` is only read here.
    (void)store->Put(ack.frame_id, parsed.value().payload, session_id);
    if (start_temporal_actor) {
      pool_->Schedule([this, session_id] { DecodeTemporalLoop(session_id); });
    }
    return ack;
  }

  // Archive and schedule outside the lock (lock discipline R10: store Put
  // and pool Schedule are blocking calls). The store pointer stays valid —
  // sessions are never erased while the manager lives.
  Frame frame = std::move(parsed).value();
  (void)store->Put(frame.frame_id, frame.payload, session_id);
  const size_t wire_bytes = wire.size();
  pool_->Schedule([this, session_id, frame = std::move(frame), admit_time,
                   wire_bytes]() mutable {
    DecodeOne(session_id, std::move(frame), admit_time, wire_bytes);
  });
  return ack;
}

FleetFrameReport SessionManager::RetireFrameLocked(
    uint64_t session_id, uint64_t frame_id, Result<PointCloud> decoded,
    double admit_time, double decode_start, double done, size_t wire_bytes) {
  const FleetMetrics& m = FleetMetrics::Get();
  m.decode_seconds->Observe(done - decode_start);
  m.e2e_seconds->Observe(done - admit_time);

  FleetFrameReport report;
  report.session_id = session_id;
  report.frame_id = frame_id;
  report.ok = decoded.ok();
  report.wire_bytes = wire_bytes;
  report.num_points = decoded.ok() ? decoded.value().size() : 0;
  report.e2e_seconds = done - admit_time;
  report.decode_seconds = done - decode_start;

  auto it = sessions_.find(session_id);
  DBGC_CHECK(it != sessions_.end());  // Sessions are never erased.
  Session& session = *it->second;
  if (decoded.ok()) {
    ++session.stats.decoded;
    // Concurrent decodes of one session finish in any order; "latest" is
    // the highest frame id, not the last completion, so interleaving
    // never changes the result.
    if (!session.has_cloud || frame_id >= session.latest_decoded_id) {
      session.latest_decoded_id = frame_id;
      session.has_cloud = true;
      session.latest_cloud = std::move(decoded).value();
    }
    m.decoded->Increment();
  } else {
    ++session.stats.decode_errors;
    m.decode_errors->Increment();
  }
  // Release the admission slot exactly where its state dies (see
  // SubmitFrame): new frames may be admitted while the completion
  // callback still runs.
  DBGC_CHECK(session.stats.inflight > 0);
  DBGC_CHECK(inflight_ > 0);
  --session.stats.inflight;
  --inflight_;
  m.inflight->Sub(1);
  return report;
}

void SessionManager::FinishFrame(const FleetFrameReport& report) {
  // User callback outside the lock (it may block, and decode results must
  // not serialize behind it) but BEFORE the frame retires: Drain() and the
  // destructor wait on completed_, so advancing it first would let them
  // return — and the callback's captured state die — mid-call.
  if (config_.on_frame_done) config_.on_frame_done(report);

  {
    MutexLock lock(mutex_);
    ++completed_;
    // Notify under the lock: the destructor destroys the condition
    // variable as soon as its wait condition holds, and a waiter can only
    // re-check that condition while holding mutex_ — so notifying here
    // guarantees this thread is done with the object before tear-down.
    drain_cv_.NotifyAll();
  }
}

void SessionManager::DecodeOne(uint64_t session_id, Frame frame,
                               double admit_time, size_t wire_bytes) {
  DecompressParams params;
  if (config_.max_threads_per_frame != 1) {
    // Nested use of the shared pool: ParallelFor callers always run chunks
    // themselves, so frames make progress even with every worker busy.
    params.pool = pool_;
    params.max_threads = config_.max_threads_per_frame;
  }
  const double decode_start = obs::MonotonicSeconds();
  Result<PointCloud> decoded = codec_.Decompress(frame.payload, params);
  const double done = obs::MonotonicSeconds();

  FleetFrameReport report;
  {
    MutexLock lock(mutex_);
    report = RetireFrameLocked(session_id, frame.frame_id, std::move(decoded),
                               admit_time, decode_start, done, wire_bytes);
  }
  FinishFrame(report);
}

void SessionManager::DecodeTemporalLoop(uint64_t session_id) {
  DecompressParams params;
  if (config_.max_threads_per_frame != 1) {
    params.pool = pool_;
    params.max_threads = config_.max_threads_per_frame;
  }

  TemporalJob job;
  TemporalDecoder* decoder = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(session_id);
    DBGC_CHECK(it != sessions_.end());
    Session& session = *it->second;
    // SubmitFrame only starts an actor after queueing a job and claiming
    // temporal_active, so the queue cannot be empty here.
    DBGC_CHECK(session.temporal_active && !session.temporal_queue.empty());
    job = std::move(session.temporal_queue.front());
    session.temporal_queue.pop_front();
    decoder = session.temporal_decoder.get();
  }

  for (;;) {
    // An admission gap directly before this frame: the sender's
    // prediction chain references a frame this decoder never saw, so
    // drop the reference and fail P-frames closed until the next
    // I-frame re-anchors the stream (docs/TEMPORAL.md loss contract).
    if (job.reset_before) decoder->Reset();
    const double decode_start = obs::MonotonicSeconds();
    Result<PointCloud> decoded =
        decoder->DecodeFrame(job.frame.payload, params);
    const double done = obs::MonotonicSeconds();

    FleetFrameReport report;
    bool have_next = false;
    TemporalJob next;
    {
      MutexLock lock(mutex_);
      report = RetireFrameLocked(session_id, job.frame.frame_id,
                                 std::move(decoded), job.admit_time,
                                 decode_start, done, job.wire_bytes);
      Session& session = *sessions_.find(session_id)->second;
      if (!session.temporal_queue.empty()) {
        next = std::move(session.temporal_queue.front());
        session.temporal_queue.pop_front();
        have_next = true;
      } else {
        // Retire the actor in the same critical section that found the
        // queue empty: a later SubmitFrame then starts a fresh actor,
        // and the two can never own the decoder concurrently — this
        // task's decoder use ended above.
        session.temporal_active = false;
      }
    }
    FinishFrame(report);
    if (!have_next) return;
    job = std::move(next);
  }
}

Status SessionManager::Drain() {
  ReleasableMutexLock lock(mutex_);
  while (completed_ != scheduled_) drain_cv_.Wait(lock);
  return Status::OK();
}

size_t SessionManager::open_sessions() const {
  MutexLock lock(mutex_);
  return open_sessions_;
}

size_t SessionManager::inflight() const {
  MutexLock lock(mutex_);
  return inflight_;
}

size_t SessionManager::fair_share() const {
  MutexLock lock(mutex_);
  if (open_sessions_ == 0) return budget_;
  return std::max<size_t>(1, budget_ / open_sessions_);
}

DegradeLevel SessionManager::advertised_degrade() const {
  MutexLock lock(mutex_);
  return DegradeFor(inflight_);
}

Result<SessionStats> SessionManager::stats(uint64_t session_id) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::InvalidArgument("fleet: unknown session");
  }
  return it->second->stats;
}

Result<PointCloud> SessionManager::LatestCloud(uint64_t session_id) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::InvalidArgument("fleet: unknown session");
  }
  if (!it->second->has_cloud) {
    return Status::InvalidArgument("fleet: no frame decoded yet");
  }
  return it->second->latest_cloud;
}

const MemoryFrameStore* SessionManager::store(uint64_t session_id) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return nullptr;
  return it->second->store.get();
}

}  // namespace dbgc
