// SessionManager: the multi-sensor fleet server (ROADMAP item 2,
// docs/FLEET.md). Where DbgcServer serves the single client of Figure 2,
// the SessionManager multiplexes N concurrent sensor sessions over one
// shared thread pool:
//
//   * per-session state — a bounded MemoryFrameStore archiving the
//     compressed payloads (newest frame pinned, per-session LRU) plus the
//     decode state (latest decoded cloud, counters);
//   * admission control — a bounded global in-flight decode budget with a
//     per-session fair share, refusing frames with an explicit verdict
//     (counted per reason in the metrics registry) instead of queueing
//     without bound;
//   * graceful degradation — a server-advertised ladder (coarser q_xyz,
//     then the cheap all-octree path) carried back to clients on every
//     FrameAck, so the fleet sheds decode cost before the budget saturates.
//
// Decodes run as tasks on the shared pool (the inter-frame axis); each
// decode may additionally use Config::max_threads_per_frame workers inside
// the frame (the intra-frame axis, docs/PARALLELISM.md). Admission is
// decided synchronously under the session lock, so rejects are
// deterministic for a given submission interleaving; decode completion is
// asynchronous and awaited with Drain().

#ifndef DBGC_NET_SESSION_H_
#define DBGC_NET_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/point_cloud.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/dbgc_codec.h"
#include "core/temporal_codec.h"
#include "net/frame_protocol.h"
#include "net/frame_store.h"

namespace dbgc {

/// Per-session accounting snapshot (all counters since OpenSession).
struct SessionStats {
  uint64_t submitted = 0;      ///< Frames offered to SubmitFrame.
  uint64_t accepted = 0;       ///< Frames admitted for decode.
  uint64_t rejected = 0;       ///< Frames refused (any verdict).
  uint64_t decoded = 0;        ///< Decodes completed successfully.
  uint64_t decode_errors = 0;  ///< Decodes that failed.
  size_t inflight = 0;         ///< Accepted, decode not yet finished.
};

/// Completion report of one accepted frame, delivered to
/// FleetConfig::on_frame_done from a pool thread after its decode.
struct FleetFrameReport {
  uint64_t session_id = 0;
  uint64_t frame_id = 0;
  bool ok = false;             ///< Decode succeeded.
  size_t wire_bytes = 0;
  size_t num_points = 0;       ///< Decoded points (0 on error).
  double e2e_seconds = 0.0;    ///< SubmitFrame admission -> decode done.
  double decode_seconds = 0.0;
};

/// Fleet-server configuration.
struct FleetConfig {
  /// Sessions that may be open at once; OpenSession refuses beyond this.
  size_t max_sessions = 256;
  /// Server-wide bound on frames admitted but not yet decoded. The fair
  /// share of one session is max(1, budget / open_sessions).
  size_t global_inflight_budget = 16;
  /// Capacity of each session's compressed-frame store (0 = unbounded).
  size_t session_store_capacity = 8;
  /// Thread budget inside one frame's decode (CompressParams semantics:
  /// 1 = serial, 0 = whole pool). Frame-level fan-out usually beats
  /// intra-frame parallelism on fleet throughput.
  int max_threads_per_frame = 1;
  /// Shared pool the decode tasks run on. Must outlive the manager. Null
  /// = own a small pool of `num_workers` threads.
  ThreadPool* pool = nullptr;
  /// Worker threads when the manager owns its pool (>= 1).
  int num_workers = 2;
  /// Load fraction (inflight / budget) at or above which the server
  /// advertises DegradeLevel::kCoarserQuant...
  double degrade_coarse_at = 0.5;
  /// ...and kCheapCodec. Thresholds are inspected on every ack.
  double degrade_cheap_at = 0.875;
  /// Codec options used for decoding (the stream itself is
  /// self-describing; these supply the baseline configuration).
  DbgcOptions options;
  /// Optional completion callback, invoked from a pool thread once per
  /// accepted frame, outside the session lock. Drain() and the destructor
  /// wait for in-flight callbacks, so captured state may be destroyed as
  /// soon as either returns.
  std::function<void(const FleetFrameReport&)> on_frame_done;
};

/// Multi-session fleet server: admission control + pooled decode.
class SessionManager {
 public:
  explicit SessionManager(FleetConfig config);

  /// Drains every accepted frame, then stops (decode tasks capture
  /// `this`, so tear-down must fence them — same contract as
  /// CompressionPipeline).
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session and returns its id. Fails with OutOfRange when
  /// `max_sessions` sessions are open (counted in
  /// fleet_sessions_rejected_total).
  Result<uint64_t> OpenSession(std::string name = "");

  /// Closes a session: later submits are refused with
  /// kRejectedUnknownSession; in-flight decodes finish normally and the
  /// session's store/stats stay readable.
  Status CloseSession(uint64_t session_id);

  /// Handles one wire frame for `session_id`: parse, admission verdict,
  /// archive, and (when accepted) an asynchronous decode on the pool.
  /// Always returns a complete ack — verdict plus the currently
  /// advertised degradation level. Safe to call from many transport
  /// threads at once; admission is serialized, decode is not.
  FrameAck SubmitFrame(uint64_t session_id, const ByteBuffer& wire);

  /// Blocks until every accepted frame has finished decoding and its
  /// on_frame_done callback (if any) has returned.
  Status Drain();

  // --- introspection ------------------------------------------------------

  /// Sessions currently open.
  size_t open_sessions() const;
  /// Frames admitted but not yet decoded, across all sessions. Ground
  /// truth for the fleet_inflight gauge.
  size_t inflight() const;
  /// The current per-session fair share: max(1, budget / open_sessions).
  size_t fair_share() const;
  /// The degradation level the next ack would advertise.
  DegradeLevel advertised_degrade() const;
  /// Counters of one session (fails on an unknown id; closed sessions
  /// remain queryable).
  Result<SessionStats> stats(uint64_t session_id) const;
  /// Latest successfully decoded cloud of a session (copy; fails when the
  /// session is unknown or nothing decoded yet).
  Result<PointCloud> LatestCloud(uint64_t session_id) const;
  /// The session's bounded compressed-frame store (keyed by the sensor's
  /// frame ids), or null for an unknown id. The store synchronizes
  /// itself; the pointer is stable for the manager's lifetime.
  const MemoryFrameStore* store(uint64_t session_id) const;

  /// The admission bound (FleetConfig::global_inflight_budget).
  size_t budget() const { return budget_; }

 private:
  /// One admitted temporal frame queued for the session's ordered decode
  /// actor. `reset_before` marks an admission gap directly before this
  /// frame (a rejected or unparseable temporal packet): the decoder must
  /// drop its reference and fail P-frames closed until the next I-frame.
  struct TemporalJob {
    Frame frame;
    double admit_time = 0.0;
    size_t wire_bytes = 0;
    bool reset_before = false;
  };

  struct Session {
    std::string name;
    bool open = true;
    std::unique_ptr<MemoryFrameStore> store;  // Self-synchronizing.
    SessionStats stats;
    uint64_t latest_decoded_id = 0;
    bool has_cloud = false;
    PointCloud latest_cloud;
    /// Stateful I/P decoder (docs/TEMPORAL.md), created on the first
    /// temporal packet; thread-confined to the single active
    /// DecodeTemporalLoop task (temporal_active hands off ownership
    /// under SessionManager::mutex_).
    std::unique_ptr<TemporalDecoder> temporal_decoder;
    /// Admitted temporal frames awaiting the ordered decode actor.
    std::deque<TemporalJob> temporal_queue;
    /// Whether a DecodeTemporalLoop task currently owns the decoder.
    bool temporal_active = false;
    /// A temporal packet was refused since the last admitted one; the
    /// next admitted job carries reset_before.
    bool temporal_gap = false;
  };

  /// Decodes one admitted frame on a pool thread and retires it.
  void DecodeOne(uint64_t session_id, Frame frame, double admit_time,
                 size_t wire_bytes);

  /// Ordered decode actor for one session's temporal frames: drains the
  /// session's queue strictly in admission order through the stateful
  /// decoder. At most one instance per session runs at a time; the last
  /// instance retires itself in the same critical section that claims
  /// there is no further work.
  void DecodeTemporalLoop(uint64_t session_id);

  /// First half of frame retirement, under the lock: session stats,
  /// latest-cloud update, admission-slot release. Factored so the
  /// ordered temporal path and the parallel DBGC path retire
  /// identically. Returns the completion report for FinishFrame.
  FleetFrameReport RetireFrameLocked(uint64_t session_id, uint64_t frame_id,
                                     Result<PointCloud> decoded,
                                     double admit_time, double decode_start,
                                     double done, size_t wire_bytes)
      DBGC_REQUIRES(mutex_);

  /// Second half: completion callback outside the lock, then the
  /// completed_ advance that Drain() and the destructor fence on. Must
  /// be the caller's last touch of *this for the frame.
  void FinishFrame(const FleetFrameReport& report) DBGC_EXCLUDES(mutex_);

  /// The degradation level for `inflight` frames against the budget.
  DegradeLevel DegradeFor(size_t inflight) const;

  const FleetConfig config_;
  const std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* const pool_;  // owned_pool_.get() or the shared config pool.
  const size_t budget_;
  const DbgcCodec codec_;

  mutable Mutex mutex_;
  CondVar drain_cv_;  // A decode task finished (completed_ advanced).
  std::map<uint64_t, std::unique_ptr<Session>> sessions_
      DBGC_GUARDED_BY(mutex_);
  uint64_t next_session_id_ DBGC_GUARDED_BY(mutex_) = 1;
  size_t open_sessions_ DBGC_GUARDED_BY(mutex_) = 0;
  size_t inflight_ DBGC_GUARDED_BY(mutex_) = 0;
  uint64_t scheduled_ DBGC_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ DBGC_GUARDED_BY(mutex_) = 0;
};

}  // namespace dbgc

#endif  // DBGC_NET_SESSION_H_
