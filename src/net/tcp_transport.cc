#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dbgc {

namespace {

Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, uint8_t* data, size_t size) {
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("recv: connection closed");
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpConnection::SendFrame(const ByteBuffer& frame) {
  if (fd_ < 0) return Status::IOError("send on closed connection");
  uint8_t header[8];
  const uint64_t length = frame.size();
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<uint8_t>(length >> (8 * i));
  }
  DBGC_RETURN_NOT_OK(SendAll(fd_, header, 8));
  return SendAll(fd_, frame.data(), frame.size());
}

Result<ByteBuffer> TcpConnection::ReceiveFrame() {
  if (fd_ < 0) return Status::IOError("receive on closed connection");
  uint8_t header[8];
  DBGC_RETURN_NOT_OK(RecvAll(fd_, header, 8));
  uint64_t length = 0;
  for (int i = 7; i >= 0; --i) length = (length << 8) | header[i];
  ByteBuffer frame;
  // A socket has no "remaining bytes", so the frame length is its own
  // stream budget; the explicit cap preserves the 4 GiB frame limit.
  const BoundedAlloc alloc(length, /*cap=*/1ULL << 32);
  DBGC_RETURN_NOT_OK(alloc.Resize(&frame.mutable_bytes(), length,
                                  /*min_bytes_each=*/1, "tcp frame"));
  DBGC_RETURN_NOT_OK(RecvAll(fd_, frame.mutable_bytes().data(), length));
  return frame;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpListener::Listen(uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd_, backlog < 1 ? 1 : backlog) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

namespace {

/// Post-accept socket setup: disable Nagle so small frames and acks do
/// not serialize behind the 40 ms delayed-ack timer (10 Hz sensors live
/// on a hard latency budget). Returns 0 or -1 with errno set.
int SetupAcceptedSocket(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Result<TcpConnection> TcpListener::Accept() {
  if (fd_ < 0) return Status::IOError("accept on closed listener");
  for (;;) {
    const int client = hooks_.accept_fn ? hooks_.accept_fn(fd_)
                                        : ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      // EINTR (signal) and ECONNABORTED (peer gave up while queued) are
      // facts of life on a busy acceptor, not listener failures: retry
      // instead of tearing the accept loop down.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IOError(std::string("accept: ") + std::strerror(errno));
    }
    // Hand the fd to the connection immediately: every error path below
    // closes it through ~TcpConnection instead of leaking it.
    TcpConnection conn(client);
    const int rc =
        hooks_.setup_fn ? hooks_.setup_fn(client) : SetupAcceptedSocket(client);
    if (rc != 0) {
      return Status::IOError(std::string("accept setup: ") +
                             std::strerror(errno));
    }
    return conn;
  }
}

Result<TcpConnection> TcpConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status(StatusCode::kIOError,
                        std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return TcpConnection(fd);
}

}  // namespace dbgc
