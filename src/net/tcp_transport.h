// Loopback TCP transport: the paper's prototype ships frames over the
// "Linux socket model" (Section 4.1). SimulatedChannel models capacity for
// reproducible numbers; this module provides the real-socket path for
// deployments and integration tests.
//
// Deliberately minimal: blocking I/O, IPv4. The listener carries a real
// backlog so a fleet of sensors can connect concurrently (docs/FLEET.md);
// each accepted connection is an independent blocking endpoint.

#ifndef DBGC_NET_TCP_TRANSPORT_H_
#define DBGC_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// A connected TCP endpoint carrying length-prefixed frames.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// True iff a socket is open.
  bool IsOpen() const { return fd_ >= 0; }

  /// Sends one frame: 8-byte little-endian length then the bytes.
  Status SendFrame(const ByteBuffer& frame);

  /// Receives one frame (blocking). Fails on EOF or malformed length.
  Result<ByteBuffer> ReceiveFrame();

  /// Closes the socket.
  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket on 127.0.0.1.
class TcpListener {
 public:
  /// Default backlog: deep enough for a fleet of sensors connecting in a
  /// burst (the kernel clamps to somaxconn anyway).
  static constexpr int kDefaultBacklog = 64;

  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Test-only syscall seams for Accept: injects accept(2) results and
  /// post-accept setup failures with chosen errnos. Null members fall
  /// through to the real syscalls. Thread-confined: install before any
  /// Accept traffic starts.
  struct SyscallHooksForTest {
    /// Replaces ::accept on the listen fd; returns a client fd, or -1
    /// with errno set.
    std::function<int(int listen_fd)> accept_fn;
    /// Replaces the post-accept socket setup; returns 0, or -1 with
    /// errno set.
    std::function<int(int client_fd)> setup_fn;
  };

  /// Binds and listens on the given port (0 = ephemeral). `backlog` is
  /// the accept queue depth handed to listen(2).
  Status Listen(uint16_t port, int backlog = kDefaultBacklog);

  /// The bound port (valid after Listen).
  uint16_t port() const { return port_; }

  /// Accepts one connection (blocking). Transient accept failures
  /// (EINTR, ECONNABORTED) are retried; on any error after the peer fd
  /// exists — including post-accept setup failure — the fd is closed
  /// before returning, never leaked.
  Result<TcpConnection> Accept();

  /// Installs the test seams (see SyscallHooksForTest).
  void set_syscall_hooks_for_test(SyscallHooksForTest hooks) {
    hooks_ = std::move(hooks);
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  SyscallHooksForTest hooks_;
};

/// Connects to 127.0.0.1:`port`.
Result<TcpConnection> TcpConnect(uint16_t port);

}  // namespace dbgc

#endif  // DBGC_NET_TCP_TRANSPORT_H_
