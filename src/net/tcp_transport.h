// Loopback TCP transport: the paper's prototype ships frames over the
// "Linux socket model" (Section 4.1). SimulatedChannel models capacity for
// reproducible numbers; this module provides the real-socket path for
// deployments and integration tests.
//
// Deliberately minimal: blocking I/O, IPv4, one connection per acceptor -
// matching the single client -> single server shape of Figure 2.

#ifndef DBGC_NET_TCP_TRANSPORT_H_
#define DBGC_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <string>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {

/// A connected TCP endpoint carrying length-prefixed frames.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// True iff a socket is open.
  bool IsOpen() const { return fd_ >= 0; }

  /// Sends one frame: 8-byte little-endian length then the bytes.
  Status SendFrame(const ByteBuffer& frame);

  /// Receives one frame (blocking). Fails on EOF or malformed length.
  Result<ByteBuffer> ReceiveFrame();

  /// Closes the socket.
  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket on 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on the given port (0 = ephemeral).
  Status Listen(uint16_t port);

  /// The bound port (valid after Listen).
  uint16_t port() const { return port_; }

  /// Accepts one connection (blocking).
  Result<TcpConnection> Accept();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
Result<TcpConnection> TcpConnect(uint16_t port);

}  // namespace dbgc

#endif  // DBGC_NET_TCP_TRANSPORT_H_
