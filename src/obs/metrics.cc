#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/safe_math.h"

namespace dbgc {
namespace obs {

namespace {

/// Saturating uint64 accumulate: a derived ratio over a wrapped byte total
/// would silently report nonsense, so pin at the ceiling instead.
uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return CheckedAdd<uint64_t>(a, b).value_or(
      std::numeric_limits<uint64_t>::max());
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

std::string LabeledName(const std::string& base,
                        const std::vector<Label>& labels) {
  if (labels.empty()) return base;
  std::string out = base;
  out.push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

#ifndef DBGC_OBS_OFF

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  static thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum = SaturatingAdd(sum, cell.v.load(std::memory_order_relaxed));
  }
  return sum;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double seconds) {
  if (!(seconds >= 0.0)) return;  // NaN/negative: drop, never wrap.
  const double us = seconds * 1e6;
  // Bucket 0: < 1 us. Bucket i >= 1: [2^(i-1), 2^i) us; last is open.
  size_t bucket = 0;
  if (us >= 1.0) {
    uint64_t whole =
        us >= 9e18 ? std::numeric_limits<uint64_t>::max()
                   : static_cast<uint64_t>(us);
    while (whole > 0 && bucket + 1 < kBuckets) {
      whole >>= 1;
      ++bucket;
    }
  }
  const double nanos = seconds * 1e9;
  const uint64_t whole_nanos =
      nanos >= 9e18 ? std::numeric_limits<uint64_t>::max()
                    : static_cast<uint64_t>(nanos);
  Shard& shard = shards_[internal::ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_nanos.fetch_add(whole_nanos, std::memory_order_relaxed);
}

void Histogram::Merge(uint64_t* buckets, uint64_t* count,
                      uint64_t* nanos) const {
  for (size_t b = 0; b < kBuckets; ++b) buckets[b] = 0;
  *count = 0;
  *nanos = 0;
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      buckets[b] = SaturatingAdd(
          buckets[b], shard.buckets[b].load(std::memory_order_relaxed));
    }
    *count = SaturatingAdd(*count,
                           shard.count.load(std::memory_order_relaxed));
    *nanos = SaturatingAdd(*nanos,
                           shard.sum_nanos.load(std::memory_order_relaxed));
  }
}

uint64_t Histogram::Count() const {
  uint64_t buckets[kBuckets], count, nanos;
  Merge(buckets, &count, &nanos);
  return count;
}

double Histogram::SumSeconds() const {
  uint64_t buckets[kBuckets], count, nanos;
  Merge(buckets, &count, &nanos);
  return static_cast<double>(nanos) * 1e-9;
}

double Histogram::Quantile(double q) const {
  uint64_t buckets[kBuckets], count, nanos;
  Merge(buckets, &count, &nanos);
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank definition).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen = SaturatingAdd(seen, buckets[b]);
    if (seen >= rank) {
      // Upper edge of bucket b in seconds: 2^b us (bucket 0 edge = 1 us).
      const double upper_us =
          b == 0 ? 1.0 : static_cast<double>(uint64_t{1} << b);
      return upper_us * 1e-6;
    }
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1)) * 1e-6;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_nanos.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never dies.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

uint64_t MetricsRegistry::SumCountersWithPrefix(
    const std::string& prefix) const {
  MutexLock lock(mutex_);
  uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum = SaturatingAdd(sum, it->second->Value());
  }
  return sum;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\n  \"obs\": \"on\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": " + std::to_string(counter->Value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": " + std::to_string(gauge->Value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": {\"count\": " + std::to_string(hist->Count());
    out += ", \"sum_ms\": ";
    AppendDouble(&out, hist->SumSeconds() * 1e3);
    out += ", \"p50_us\": ";
    AppendDouble(&out, hist->Quantile(0.50) * 1e6);
    out += ", \"p95_us\": ";
    AppendDouble(&out, hist->Quantile(0.95) * 1e6);
    out += ", \"p99_us\": ";
    AppendDouble(&out, hist->Quantile(0.99) * 1e6);
    out += "}";
  }
  out += "\n  }\n}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

#else  // DBGC_OBS_OFF

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

#endif  // DBGC_OBS_OFF

}  // namespace obs
}  // namespace dbgc
