// MetricsRegistry: the always-on, near-zero-overhead metrics layer for the
// codec/pipeline stack (docs/OBSERVABILITY.md).
//
// Three instrument kinds, all registered by name and handed out as stable
// pointers ("static handles"):
//
//   Counter    monotonic event/byte totals. Increments are a relaxed atomic
//              add on a per-thread shard, so hot paths (per-symbol, per-
//              frame) pay one uncontended cache line.
//   Gauge      instantaneous signed level (queue depth, in-flight window
//              occupancy, resident frames). Updated by +/- deltas so
//              several producers compose additively.
//   Histogram  fixed-bucket latency distribution (power-of-two microsecond
//              buckets) with p50/p95/p99 readback.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a lock and is meant
// to happen once per call site — cache the pointer in a static or a member.
// Reads (Value, Percentile, ToJson) merge the shards; they are wait-free
// for writers and safe to call concurrently with updates.
//
// Cumulative byte counters are uint64_t throughout and cross-shard sums
// saturate instead of wrapping (CheckedAdd, common/safe_math.h): a >4 GiB
// running total must never fold back into a small number, because derived
// ratios would silently report nonsense.
//
// Compiling with -DDBGC_OBS_OFF replaces every instrument with an inline
// no-op stub with the same API: call sites compile unchanged and the hot
// path carries zero instructions. The emitted bitstreams are byte-identical
// either way — metrics never feed back into encoding decisions.

#ifndef DBGC_OBS_METRICS_H_
#define DBGC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef DBGC_OBS_OFF
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#endif

namespace dbgc {
namespace obs {

/// True when the library was built with observability compiled in.
#ifdef DBGC_OBS_OFF
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// One key="value" pair of a labeled metric name.
using Label = std::pair<std::string, std::string>;

/// Canonical labeled-metric spelling: base{k1="v1",k2="v2"} with labels in
/// the given order. An empty label list returns the base name unchanged.
std::string LabeledName(const std::string& base,
                        const std::vector<Label>& labels);

#ifndef DBGC_OBS_OFF

/// Shard count for write-sharded instruments. Eight 64-byte cells bound the
/// memory cost per counter while keeping typical thread counts collision-
/// free.
inline constexpr size_t kShards = 8;

namespace internal {
/// Stable per-thread shard slot, assigned round-robin at first use.
size_t ShardIndex();
}  // namespace internal

/// Monotonic event counter. Add() is a relaxed atomic add on the calling
/// thread's shard; Value() merges shards with saturating arithmetic.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` (relaxed; never blocks, never fails).
  void Add(uint64_t n) {
    cells_[internal::ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Adds 1.
  void Increment() { Add(1); }

  /// Sum over shards, saturating at UINT64_MAX instead of wrapping.
  uint64_t Value() const;

  /// Zeroes every shard (test/tool support; racy against writers by design).
  void Reset();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Instantaneous signed level. Single cell: gauges are updated at frame
/// granularity, not per symbol, so sharding would only blur Value().
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency histogram. Bucket i counts observations in
/// [2^(i-1), 2^i) microseconds (bucket 0 is < 1 us, the last bucket is
/// open-ended), so the full range 1 us .. ~67 s is covered with 28 cells
/// and percentile error bounded by the bucket ratio (2x).
class Histogram {
 public:
  static constexpr size_t kBuckets = 28;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one latency observation (relaxed adds on this thread's shard).
  void Observe(double seconds);

  /// Total observation count.
  uint64_t Count() const;
  /// Sum of observations in seconds (accumulated as integer nanoseconds).
  double SumSeconds() const;
  /// Upper edge, in seconds, of the bucket holding quantile `q` in [0, 1].
  /// Returns 0 when the histogram is empty.
  double Quantile(double q) const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_nanos{0};
  };
  void Merge(uint64_t* buckets, uint64_t* count, uint64_t* nanos) const;

  Shard shards_[kShards];
};

/// Process-wide instrument registry. Instruments live for the lifetime of
/// the registry; handles returned by Get* never dangle.
class MetricsRegistry {
 public:
  /// The process-global registry (what all library wiring uses).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. Stable pointer; thread-safe.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Current value of a counter, or 0 when it was never registered.
  uint64_t CounterValue(const std::string& name) const;
  /// Sum of every counter whose name starts with `prefix` (saturating).
  uint64_t SumCountersWithPrefix(const std::string& prefix) const;

  /// Full snapshot as a JSON object:
  ///   {"obs": "on",
  ///    "counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count": n, "sum_ms": s,
  ///                          "p50_us": a, "p95_us": b, "p99_us": c}, ...}}
  /// Keys are emitted in lexicographic order so snapshots diff cleanly.
  std::string ToJson() const;

  /// Zeroes every registered instrument (handles stay valid). Test/tool
  /// support — not meant for production use.
  void ResetForTest();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DBGC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      DBGC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DBGC_GUARDED_BY(mutex_);
};

#else  // DBGC_OBS_OFF: same API, zero code on the hot path.

class Counter {
 public:
  void Add(uint64_t) {}
  void Increment() {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  void Sub(int64_t) {}
  int64_t Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr size_t kBuckets = 28;
  void Observe(double) {}
  uint64_t Count() const { return 0; }
  double SumSeconds() const { return 0.0; }
  double Quantile(double) const { return 0.0; }
  void Reset() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();
  Counter* GetCounter(const std::string&) { return &stub_counter_; }
  Gauge* GetGauge(const std::string&) { return &stub_gauge_; }
  Histogram* GetHistogram(const std::string&) { return &stub_histogram_; }
  uint64_t CounterValue(const std::string&) const { return 0; }
  uint64_t SumCountersWithPrefix(const std::string&) const { return 0; }
  std::string ToJson() const { return "{\"obs\": \"off\"}"; }
  void ResetForTest() {}

 private:
  Counter stub_counter_;
  Gauge stub_gauge_;
  Histogram stub_histogram_;
};

#endif  // DBGC_OBS_OFF

}  // namespace obs
}  // namespace dbgc

#endif  // DBGC_OBS_METRICS_H_
