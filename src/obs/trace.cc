#include "obs/trace.h"

#include <chrono>
#include <cstdio>

namespace dbgc {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kClustering:
      return "DEN";
    case Stage::kOctree:
      return "OCT";
    case Stage::kConversion:
      return "COR";
    case Stage::kOrganization:
      return "ORG";
    case Stage::kSparse:
      return "SPA";
    case Stage::kOutlier:
      return "OUT";
    case Stage::kEntropy:
      return "ENT";
    case Stage::kSerialize:
      return "SER";
    case Stage::kDecode:
      return "DEC";
  }
  return "UNK";
}

double MonotonicSeconds() {
  // The library's single sanctioned steady_clock read (lint rule R6).
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifndef DBGC_OBS_OFF

namespace {

// Per-stage registry histograms, resolved once per process. Index by Stage.
Histogram* StageHistogram(Stage stage) {
  static Histogram* histograms[kStageCount] = {};
  static const bool initialized = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    for (size_t s = 0; s < kStageCount; ++s) {
      histograms[s] = registry.GetHistogram(LabeledName(
          "stage_seconds", {{"stage", StageName(static_cast<Stage>(s))}}));
    }
    return true;
  }();
  (void)initialized;
  return histograms[static_cast<size_t>(stage)];
}

// Thread-local trace state: the innermost FrameTrace and a bitmask of
// stages currently open on this thread (used to bill recursion once).
thread_local FrameTrace* tls_frame_trace = nullptr;
thread_local uint32_t tls_open_stages = 0;

uint32_t StageBit(Stage stage) {
  return uint32_t{1} << static_cast<uint32_t>(stage);
}

}  // namespace

double FrameBreakdown::TotalSeconds() const {
  double total = 0.0;
  for (double t : totals_) total += t;
  return total;
}

std::string FrameBreakdown::ToJson() const {
  std::string out = "{";
  for (size_t s = 0; s < kStageCount; ++s) {
    if (s > 0) out += ", ";
    out.push_back('"');
    out += StageName(static_cast<Stage>(s));
    out += "\": ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", totals_[s] * 1e3);
    out += buf;
  }
  out.push_back('}');
  return out;
}

FrameTrace::FrameTrace() : prev_(tls_frame_trace) { tls_frame_trace = this; }

FrameTrace::~FrameTrace() { tls_frame_trace = prev_; }

FrameTrace* FrameTrace::Current() { return tls_frame_trace; }

TraceSpan::TraceSpan(Stage stage, double* slot)
    : stage_(stage),
      slot_(slot),
      start_(MonotonicSeconds()),
      outermost_((tls_open_stages & StageBit(stage)) == 0) {
  if (outermost_) tls_open_stages |= StageBit(stage);
}

TraceSpan::~TraceSpan() {
  const double elapsed = MonotonicSeconds() - start_;
  if (slot_ != nullptr) *slot_ += elapsed;
  if (!outermost_) return;  // Inner span of a recursive stage: outer bills.
  tls_open_stages &= ~StageBit(stage_);
  StageHistogram(stage_)->Observe(elapsed);
  if (FrameTrace* trace = FrameTrace::Current(); trace != nullptr) {
    trace->breakdown_.Add(stage_, elapsed);
  }
}

#endif  // DBGC_OBS_OFF

}  // namespace obs
}  // namespace dbgc
