// TraceSpan: RAII scoped stage timers feeding the metrics registry, plus
// the per-frame stage breakdown (docs/OBSERVABILITY.md).
//
// The span taxonomy is a fixed enum mirroring the paper's pipeline stages
// (Figure 2 / Figure 13): DEN, OCT, COR, ORG, SPA, OUT, plus the two
// cross-cutting phases ENT (entropy coding) and SER (bitstream assembly)
// and the decode-side DEC. Fixing the taxonomy keeps metric names stable
// across PRs and lets dashboards join on stage.
//
// Each thread keeps a span stack: opening a span pushes it, closing pops
// and publishes the wall-clock duration to
//   - the registry histogram  stage_seconds{stage=<name>},
//   - an optional double* accumulation slot, and
//   - the innermost active FrameTrace on this thread, which is how one
//     frame's DEN/OCT/COR/ORG/SPA/OUT split is collected and dumped.
// Re-entering a stage already on this thread's stack only counts the outer
// span, so recursive helpers cannot double-bill a stage.
//
// This header is also the library's only sanctioned monotonic clock:
// dbgc_lint rule R6 forbids std::chrono::steady_clock::now() in src/
// outside src/obs/, so that every timing either goes through a span (and
// is visible in the registry) or is a deliberate, reviewed exception.
//
// Under -DDBGC_OBS_OFF spans compile to empty objects: no clock reads, no
// TLS, no slot writes.

#ifndef DBGC_OBS_TRACE_H_
#define DBGC_OBS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dbgc {
namespace obs {

/// The fixed stage taxonomy (paper pipeline stages + cross-cutting phases).
enum class Stage : uint8_t {
  kClustering = 0,    ///< DEN: density-based clustering (Section 3.2).
  kOctree = 1,        ///< OCT: octree coding of dense points.
  kConversion = 2,    ///< COR: coordinate conversion + scaling.
  kOrganization = 3,  ///< ORG: polyline organization (Algorithm 1).
  kSparse = 4,        ///< SPA: sparse coordinate codec (Section 3.5).
  kOutlier = 5,       ///< OUT: outlier codec (Section 3.6).
  kEntropy = 6,       ///< ENT: entropy-coding phases of any codec.
  kSerialize = 7,     ///< SER: output layout / container assembly.
  kDecode = 8,        ///< DEC: whole-stream decode phases.
};

inline constexpr size_t kStageCount = 9;

/// Short fixed name ("DEN", "OCT", ...) used in metric labels and JSON.
const char* StageName(Stage stage);

/// Seconds on the monotonic clock. The only steady_clock call site in the
/// library (lint rule R6); everything in src/ times through this or a span.
double MonotonicSeconds();

#ifndef DBGC_OBS_OFF

/// Per-frame stage breakdown: seconds per Stage for one frame.
class FrameBreakdown {
 public:
  FrameBreakdown() { totals_.fill(0.0); }

  double seconds(Stage stage) const {
    return totals_[static_cast<size_t>(stage)];
  }
  void Add(Stage stage, double seconds) {
    totals_[static_cast<size_t>(stage)] += seconds;
  }
  /// Sum over all stages.
  double TotalSeconds() const;
  /// {"DEN": ms, "OCT": ms, ...} in stage order (milliseconds), stages
  /// with zero time included so rows align across frames.
  std::string ToJson() const;

 private:
  std::array<double, kStageCount> totals_;
};

/// RAII collector: while alive, every span closed on this thread adds its
/// duration to this frame's breakdown. Nests (inner frame shadows outer).
class FrameTrace {
 public:
  FrameTrace();
  ~FrameTrace();
  FrameTrace(const FrameTrace&) = delete;
  FrameTrace& operator=(const FrameTrace&) = delete;

  const FrameBreakdown& breakdown() const { return breakdown_; }

 private:
  friend class TraceSpan;
  /// Innermost active trace on this thread, or null.
  static FrameTrace* Current();

  FrameBreakdown breakdown_;
  FrameTrace* prev_;
};

/// RAII scoped stage timer. On destruction publishes the elapsed wall time
/// to the registry stage histogram, the optional `slot`, and the active
/// FrameTrace.
class TraceSpan {
 public:
  explicit TraceSpan(Stage stage, double* slot = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Stage stage_;
  double* slot_;
  double start_;
  bool outermost_;  // False when this stage is already open on this thread.
};

/// RAII wall-clock timer without a stage: publishes into an optional
/// histogram and an optional accumulation slot. For codec- and frame-level
/// latencies where the stage taxonomy does not apply.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* slot, Histogram* histogram = nullptr)
      : slot_(slot), histogram_(histogram), start_(MonotonicSeconds()) {}
  ~ScopedTimer() {
    const double elapsed = MonotonicSeconds() - start_;
    if (slot_ != nullptr) *slot_ += elapsed;
    if (histogram_ != nullptr) histogram_->Observe(elapsed);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* slot_;
  Histogram* histogram_;
  double start_;
};

#else  // DBGC_OBS_OFF: empty shells, zero instructions on the hot path.

class FrameBreakdown {
 public:
  double seconds(Stage) const { return 0.0; }
  void Add(Stage, double) {}
  double TotalSeconds() const { return 0.0; }
  std::string ToJson() const { return "{}"; }
};

class FrameTrace {
 public:
  FrameTrace() = default;
  const FrameBreakdown& breakdown() const { return breakdown_; }

 private:
  FrameBreakdown breakdown_;
};

class TraceSpan {
 public:
  explicit TraceSpan(Stage, double* = nullptr) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(double*, Histogram* = nullptr) {}
};

#endif  // DBGC_OBS_OFF

}  // namespace obs
}  // namespace dbgc

#endif  // DBGC_OBS_TRACE_H_
