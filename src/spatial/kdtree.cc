#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dbgc {

namespace {
double AxisValue(const Point3& p, int axis) {
  switch (axis) {
    case 0:
      return p.x;
    case 1:
      return p.y;
    default:
      return p.z;
  }
}
}  // namespace

KdTree::KdTree(const PointCloud& pc) : pc_(pc) {
  if (pc.empty()) return;
  std::vector<int> indices(pc.size());
  std::iota(indices.begin(), indices.end(), 0);
  nodes_.reserve(pc.size());
  root_ = BuildRecursive(&indices, 0, static_cast<int>(pc.size()), 0);
}

int KdTree::BuildRecursive(std::vector<int>* indices, int lo, int hi,
                           int depth) {
  if (lo >= hi) return -1;
  const int axis = depth % 3;
  const int mid = (lo + hi) / 2;
  std::nth_element(indices->begin() + lo, indices->begin() + mid,
                   indices->begin() + hi, [&](int a, int b) {
                     return AxisValue(pc_[a], axis) < AxisValue(pc_[b], axis);
                   });
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{(*indices)[mid], axis, -1, -1});
  const int left = BuildRecursive(indices, lo, mid, depth + 1);
  const int right = BuildRecursive(indices, mid + 1, hi, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void KdTree::NearestRecursive(int node, const Point3& query, int exclude,
                              int* best, double* best_sq) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  const Point3& p = pc_[n.point_index];
  if (n.point_index != exclude) {
    const double d = (p - query).SquaredNorm();
    if (d < *best_sq) {
      *best_sq = d;
      *best = n.point_index;
    }
  }
  const double diff = AxisValue(query, n.axis) - AxisValue(p, n.axis);
  const int near_child = diff <= 0 ? n.left : n.right;
  const int far_child = diff <= 0 ? n.right : n.left;
  NearestRecursive(near_child, query, exclude, best, best_sq);
  if (diff * diff < *best_sq) {
    NearestRecursive(far_child, query, exclude, best, best_sq);
  }
}

int KdTree::Nearest(const Point3& query, int exclude) const {
  int best = -1;
  double best_sq = std::numeric_limits<double>::infinity();
  NearestRecursive(root_, query, exclude, &best, &best_sq);
  return best;
}

template <typename Visitor>
void KdTree::RadiusRecursive(int node, const Point3& query, double radius_sq,
                             Visitor&& visit) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  const Point3& p = pc_[n.point_index];
  if ((p - query).SquaredNorm() <= radius_sq) visit(n.point_index);
  const double diff = AxisValue(query, n.axis) - AxisValue(p, n.axis);
  const int near_child = diff <= 0 ? n.left : n.right;
  const int far_child = diff <= 0 ? n.right : n.left;
  RadiusRecursive(near_child, query, radius_sq, visit);
  if (diff * diff <= radius_sq) {
    RadiusRecursive(far_child, query, radius_sq, visit);
  }
}

std::vector<int> KdTree::RadiusSearch(const Point3& query,
                                      double radius) const {
  std::vector<int> out;
  RadiusRecursive(root_, query, radius * radius,
                  [&](int idx) { out.push_back(idx); });
  return out;
}

size_t KdTree::CountWithinRadius(const Point3& query, double radius) const {
  size_t count = 0;
  RadiusRecursive(root_, query, radius * radius, [&](int) { ++count; });
  return count;
}

}  // namespace dbgc
