// 3D kd-tree for nearest-neighbour and radius queries, used by the
// reference DBSCAN implementation and by error metrics.

#ifndef DBGC_SPATIAL_KDTREE_H_
#define DBGC_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/point_cloud.h"

namespace dbgc {

/// Static kd-tree over a point cloud. Indices returned by queries refer to
/// the cloud passed at construction. The cloud must outlive the tree.
class KdTree {
 public:
  /// Builds the tree (median splits, O(n log n)).
  explicit KdTree(const PointCloud& pc);

  /// Index of the nearest neighbour of `query`, or -1 for an empty tree.
  /// If `exclude` >= 0, that index is skipped (for self-queries).
  int Nearest(const Point3& query, int exclude = -1) const;

  /// Indices of all points within Euclidean distance `radius` of `query`.
  std::vector<int> RadiusSearch(const Point3& query, double radius) const;

  /// Number of points within `radius` of `query` (no materialization).
  size_t CountWithinRadius(const Point3& query, double radius) const;

 private:
  struct Node {
    int point_index = -1;  // Index into pc_ of the splitting point.
    int axis = 0;          // 0 = x, 1 = y, 2 = z.
    int left = -1;         // Node indices; -1 = none.
    int right = -1;
  };

  int BuildRecursive(std::vector<int>* indices, int lo, int hi, int depth);
  void NearestRecursive(int node, const Point3& query, int exclude,
                        int* best, double* best_sq) const;
  template <typename Visitor>
  void RadiusRecursive(int node, const Point3& query, double radius_sq,
                       Visitor&& visit) const;

  const PointCloud& pc_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace dbgc

#endif  // DBGC_SPATIAL_KDTREE_H_
