#include "spatial/octree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dbgc {

namespace {

// Spreads the low 21 bits of v so there are two zero bits between each.
uint64_t Part1By2(uint32_t v) {
  uint64_t x = v & 0x1FFFFF;
  x = (x | (x << 32)) & 0x1F00000000FFFFULL;
  x = (x | (x << 16)) & 0x1F0000FF0000FFULL;
  x = (x | (x << 8)) & 0x100F00F00F00F00FULL;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

uint32_t Compact1By2(uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3ULL;
  x = (x ^ (x >> 4)) & 0x100F00F00F00F00FULL;
  x = (x ^ (x >> 8)) & 0x1F0000FF0000FFULL;
  x = (x ^ (x >> 16)) & 0x1F00000000FFFFULL;
  x = (x ^ (x >> 32)) & 0x1FFFFF;
  return static_cast<uint32_t>(x);
}

}  // namespace

uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t z) {
  return Part1By2(x) | (Part1By2(y) << 1) | (Part1By2(z) << 2);
}

void MortonDecode3(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z) {
  *x = Compact1By2(code);
  *y = Compact1By2(code >> 1);
  *z = Compact1By2(code >> 2);
}

size_t OctreeStructure::num_points() const {
  size_t n = 0;
  for (uint32_t c : leaf_counts) n += c;
  return n;
}

uint64_t Octree::LeafKeyOf(const Point3& p, const Cube& root, int depth) {
  const double cells = static_cast<double>(1u << depth);
  const double inv_leaf = cells / root.side;
  auto clamp_coord = [&](double v) -> uint32_t {
    double c = std::floor(v * inv_leaf);
    if (c < 0) c = 0;
    if (c >= cells) c = cells - 1;
    return static_cast<uint32_t>(c);
  };
  const uint32_t ix = clamp_coord(p.x - root.origin.x);
  const uint32_t iy = clamp_coord(p.y - root.origin.y);
  const uint32_t iz = clamp_coord(p.z - root.origin.z);
  return MortonEncode3(ix, iy, iz);
}

Result<OctreeStructure> Octree::Build(const PointCloud& pc, double leaf_side,
                                      const Parallelism& par) {
  if (leaf_side <= 0) {
    return Status::InvalidArgument("octree: leaf_side must be positive");
  }
  const BoundingBox box = BoundingBox::Of(pc);
  const Cube root = Cube::BoundingCube(box, leaf_side);
  return BuildWithRoot(pc, root, leaf_side, par);
}

Result<OctreeStructure> Octree::BuildWithRoot(const PointCloud& pc,
                                              const Cube& root,
                                              double leaf_side,
                                              const Parallelism& par) {
  OctreeStructure tree;
  tree.root = root;
  int depth = 0;
  double side = leaf_side;
  while (side < root.side * (1 - 1e-12)) {
    side *= 2;
    ++depth;
  }
  if (depth > kMaxDepth) {
    return Status::OutOfRange("octree: depth exceeds kMaxDepth");
  }
  tree.depth = depth;
  tree.levels.assign(depth, {});
  if (pc.empty()) return tree;

  // Leaf keys in Morton order with per-leaf counts. The per-point key
  // computation writes disjoint pre-sized slots, so the parallel fill is
  // index-for-index identical to the serial loop; the sorted sequence that
  // the rest of the build consumes is therefore invariant under the budget.
  std::vector<uint64_t> keys(pc.size());
  DBGC_RETURN_NOT_OK(par.For(
      0, pc.size(), par.GrainFor(pc.size(), 1024), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          keys[i] = LeafKeyOf(pc[i], root, depth);
        }
      }));
  std::sort(keys.begin(), keys.end());

  std::vector<uint64_t> unique_keys;
  unique_keys.reserve(keys.size());
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    unique_keys.push_back(keys[i]);
    tree.leaf_counts.push_back(static_cast<uint32_t>(j - i));
    i = j;
  }

  // Build occupancy levels bottom-up: the nodes of level l are the distinct
  // key prefixes of length 3l bits; the occupancy byte of a node collects
  // the child octants present among its children at level l+1.
  std::vector<uint64_t> level_keys = unique_keys;  // Keys at depth `depth`.
  for (int l = depth - 1; l >= 0; --l) {
    std::vector<uint64_t> parents;
    std::vector<uint8_t>& occupancy = tree.levels[l];
    parents.reserve(level_keys.size() / 2 + 1);
    for (size_t i = 0; i < level_keys.size();) {
      const uint64_t parent = level_keys[i] >> 3;
      uint8_t occ = 0;
      while (i < level_keys.size() && (level_keys[i] >> 3) == parent) {
        occ |= static_cast<uint8_t>(1u << (level_keys[i] & 7));
        ++i;
      }
      parents.push_back(parent);
      occupancy.push_back(occ);
    }
    level_keys = std::move(parents);
  }
  return tree;
}

std::vector<uint64_t> Octree::LeafKeys(const OctreeStructure& tree) {
  // Expand the occupancy levels breadth-first to recover leaf keys.
  std::vector<uint64_t> keys{0};
  for (int l = 0; l < tree.depth; ++l) {
    const std::vector<uint8_t>& occupancy = tree.levels[l];
    std::vector<uint64_t> next;
    next.reserve(occupancy.size() * 2);
    DBGC_CHECK(occupancy.size() == keys.size());
    for (size_t i = 0; i < occupancy.size(); ++i) {
      const uint8_t occ = occupancy[i];
      for (int octant = 0; octant < 8; ++octant) {
        if (occ & (1u << octant)) {
          next.push_back((keys[i] << 3) | static_cast<uint64_t>(octant));
        }
      }
    }
    keys = std::move(next);
  }
  return keys;
}

PointCloud Octree::ExtractPoints(const OctreeStructure& tree) {
  PointCloud pc;
  if (tree.leaf_counts.empty()) return pc;
  const std::vector<uint64_t> keys = LeafKeys(tree);
  DBGC_CHECK(keys.size() == tree.leaf_counts.size());
  const double leaf_side =
      tree.root.side / static_cast<double>(1u << tree.depth);
  pc.Reserve(tree.num_points());
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t ix, iy, iz;
    MortonDecode3(keys[i], &ix, &iy, &iz);
    const Point3 center{tree.root.origin.x + (ix + 0.5) * leaf_side,
                        tree.root.origin.y + (iy + 0.5) * leaf_side,
                        tree.root.origin.z + (iz + 0.5) * leaf_side};
    for (uint32_t k = 0; k < tree.leaf_counts[i]; ++k) pc.Add(center);
  }
  return pc;
}

}  // namespace dbgc
