// Octree representation of a 3D point cloud (Section 2.1, [36]).
//
// The tree is built by recursive cube partitioning until cells reach a given
// leaf side length (2q for error bound q: approximating points to leaf
// centers then errs at most q per dimension). The structure is stored level
// by level in breadth-first order as 8-bit occupancy codes, the form that
// octree codecs serialize. Leaf occupancy is accompanied by per-leaf point
// counts so decompression restores exactly |PC| points (one-to-one mapping).

#ifndef DBGC_SPATIAL_OCTREE_H_
#define DBGC_SPATIAL_OCTREE_H_

#include <cstdint>
#include <vector>

#include "common/bounding_box.h"
#include "common/point_cloud.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace dbgc {

/// Morton (z-order) interleaving helpers for up to 21 bits per dimension.
/// Bit 0 of the code is the x bit, bit 1 the y bit, bit 2 the z bit, matching
/// Cube::Child's octant convention.
uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t z);
/// Inverse of MortonEncode3.
void MortonDecode3(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z);

/// The breadth-first serialized form of an octree.
struct OctreeStructure {
  Cube root;                 ///< Root bounding cube.
  int depth = 0;             ///< Number of subdivision levels (0 = root only).
  /// levels[l] holds one occupancy byte per non-empty node at tree level l,
  /// in Morton order; bit i set means child octant i is non-empty.
  std::vector<std::vector<uint8_t>> levels;
  /// Number of points in each non-empty leaf, in Morton (BFS) order.
  std::vector<uint32_t> leaf_counts;

  /// Total number of non-empty leaves.
  size_t num_leaves() const { return leaf_counts.size(); }
  /// Total number of points represented.
  size_t num_points() const;
};

/// Octree construction and point extraction.
class Octree {
 public:
  /// Maximum supported subdivision depth (Morton codes use 3 bits/level).
  static constexpr int kMaxDepth = 21;

  /// Builds the structure for `pc` with the given leaf side length.
  /// Uses the centered bounding cube of the cloud. The optional thread
  /// budget parallelizes the per-point leaf-key computation; the structure
  /// produced is identical for any budget.
  static Result<OctreeStructure> Build(const PointCloud& pc, double leaf_side,
                                       const Parallelism& par = {});

  /// Builds with an explicit root cube (must contain all points and have
  /// side = leaf_side * 2^depth for some depth <= kMaxDepth).
  static Result<OctreeStructure> BuildWithRoot(const PointCloud& pc,
                                               const Cube& root,
                                               double leaf_side,
                                               const Parallelism& par = {});

  /// Reconstructs the represented points: each non-empty leaf contributes
  /// its center, repeated leaf_count times.
  static PointCloud ExtractPoints(const OctreeStructure& tree);

  /// Returns the Morton code of the leaf cell containing p under the given
  /// root cube and depth.
  static uint64_t LeafKeyOf(const Point3& p, const Cube& root, int depth);

  /// The sorted Morton keys of the non-empty leaves of `tree`.
  static std::vector<uint64_t> LeafKeys(const OctreeStructure& tree);
};

}  // namespace dbgc

#endif  // DBGC_SPATIAL_OCTREE_H_
