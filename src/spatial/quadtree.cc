#include "spatial/quadtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dbgc {

namespace {

uint64_t Part1By1(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t Compact1By1(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x ^ (x >> 1)) & 0x3333333333333333ULL;
  x = (x ^ (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x ^ (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x ^ (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x ^ (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

}  // namespace

uint64_t MortonEncode2(uint32_t x, uint32_t y) {
  return Part1By1(x) | (Part1By1(y) << 1);
}

void MortonDecode2(uint64_t code, uint32_t* x, uint32_t* y) {
  *x = Compact1By1(code);
  *y = Compact1By1(code >> 1);
}

size_t QuadtreeStructure::num_points() const {
  size_t n = 0;
  for (uint32_t c : leaf_counts) n += c;
  return n;
}

uint64_t Quadtree::LeafKeyOf(double x, double y,
                             const QuadtreeStructure& tree) {
  const double cells = std::ldexp(1.0, tree.depth);
  const double inv_leaf = cells / tree.side;
  auto clamp_coord = [&](double v) -> uint32_t {
    double c = std::floor(v * inv_leaf);
    if (c < 0) c = 0;
    if (c >= cells) c = cells - 1;
    return static_cast<uint32_t>(c);
  };
  return MortonEncode2(clamp_coord(x - tree.origin_x),
                       clamp_coord(y - tree.origin_y));
}

Result<QuadtreeStructure> Quadtree::Build(const std::vector<Point2>& points,
                                          double leaf_side) {
  if (leaf_side <= 0) {
    return Status::InvalidArgument("quadtree: leaf_side must be positive");
  }
  QuadtreeStructure tree;
  BoundingBox2D box;
  for (const Point2& p : points) box.Extend(p.x, p.y);
  if (box.IsEmpty()) {
    tree.side = leaf_side;
    return tree;
  }
  const double extent = std::max(box.MaxExtent(), leaf_side);
  int depth = 0;
  double side = leaf_side;
  while (side < extent) {
    side *= 2;
    ++depth;
    if (depth > kMaxDepth) {
      return Status::OutOfRange("quadtree: depth exceeds kMaxDepth");
    }
  }
  tree.depth = depth;
  tree.side = side;
  tree.origin_x = (box.min_x + box.max_x) / 2 - side / 2;
  tree.origin_y = (box.min_y + box.max_y) / 2 - side / 2;
  tree.levels.assign(depth, {});

  std::vector<uint64_t> keys;
  keys.reserve(points.size());
  for (const Point2& p : points) keys.push_back(LeafKeyOf(p.x, p.y, tree));
  std::sort(keys.begin(), keys.end());

  std::vector<uint64_t> unique_keys;
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    unique_keys.push_back(keys[i]);
    tree.leaf_counts.push_back(static_cast<uint32_t>(j - i));
    i = j;
  }

  std::vector<uint64_t> level_keys = std::move(unique_keys);
  for (int l = depth - 1; l >= 0; --l) {
    std::vector<uint64_t> parents;
    std::vector<uint8_t>& occupancy = tree.levels[l];
    for (size_t i = 0; i < level_keys.size();) {
      const uint64_t parent = level_keys[i] >> 2;
      uint8_t occ = 0;
      while (i < level_keys.size() && (level_keys[i] >> 2) == parent) {
        occ |= static_cast<uint8_t>(1u << (level_keys[i] & 3));
        ++i;
      }
      parents.push_back(parent);
      occupancy.push_back(occ);
    }
    level_keys = std::move(parents);
  }
  return tree;
}

std::vector<uint64_t> Quadtree::LeafKeys(const QuadtreeStructure& tree) {
  std::vector<uint64_t> keys{0};
  for (int l = 0; l < tree.depth; ++l) {
    const std::vector<uint8_t>& occupancy = tree.levels[l];
    std::vector<uint64_t> next;
    DBGC_CHECK(occupancy.size() == keys.size());
    for (size_t i = 0; i < occupancy.size(); ++i) {
      for (int quadrant = 0; quadrant < 4; ++quadrant) {
        if (occupancy[i] & (1u << quadrant)) {
          next.push_back((keys[i] << 2) | static_cast<uint64_t>(quadrant));
        }
      }
    }
    keys = std::move(next);
  }
  return keys;
}

std::vector<Point2> Quadtree::ExtractPoints(const QuadtreeStructure& tree) {
  std::vector<Point2> out;
  if (tree.leaf_counts.empty()) return out;
  const std::vector<uint64_t> keys = LeafKeys(tree);
  DBGC_CHECK(keys.size() == tree.leaf_counts.size());
  const double leaf_side = tree.side / std::ldexp(1.0, tree.depth);
  out.reserve(tree.num_points());
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t ix, iy;
    MortonDecode2(keys[i], &ix, &iy);
    const Point2 center{tree.origin_x + (ix + 0.5) * leaf_side,
                        tree.origin_y + (iy + 0.5) * leaf_side};
    for (uint32_t k = 0; k < tree.leaf_counts[i]; ++k) out.push_back(center);
  }
  return out;
}

}  // namespace dbgc
