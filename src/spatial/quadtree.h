// 2D quadtree over the xy-plane, the outlier-compression structure of
// Section 3.6. Mirrors spatial/octree.h with 4-way partitioning.

#ifndef DBGC_SPATIAL_QUADTREE_H_
#define DBGC_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "common/bounding_box.h"
#include "common/point_cloud.h"
#include "common/status.h"

namespace dbgc {

/// 2D Morton interleaving for up to 31 bits per dimension.
/// Bit 0 of the code is the x bit, bit 1 the y bit.
uint64_t MortonEncode2(uint32_t x, uint32_t y);
/// Inverse of MortonEncode2.
void MortonDecode2(uint64_t code, uint32_t* x, uint32_t* y);

/// A 2D point with the quantities the outlier codec restores.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Breadth-first serialized quadtree.
struct QuadtreeStructure {
  double origin_x = 0.0;  ///< Root square corner (minimal coordinates).
  double origin_y = 0.0;
  double side = 0.0;      ///< Root square side length.
  int depth = 0;
  /// levels[l]: 4-bit occupancy per non-empty node at level l (Morton order).
  std::vector<std::vector<uint8_t>> levels;
  /// Points per non-empty leaf, Morton order.
  std::vector<uint32_t> leaf_counts;

  size_t num_leaves() const { return leaf_counts.size(); }
  size_t num_points() const;
};

/// Quadtree construction and extraction.
class Quadtree {
 public:
  static constexpr int kMaxDepth = 31;

  /// Builds the quadtree of the (x, y) projections with the given leaf side.
  static Result<QuadtreeStructure> Build(const std::vector<Point2>& points,
                                         double leaf_side);

  /// Reconstructs leaf centers, each repeated by its count.
  static std::vector<Point2> ExtractPoints(const QuadtreeStructure& tree);

  /// Morton key of the leaf containing (x, y).
  static uint64_t LeafKeyOf(double x, double y, const QuadtreeStructure& tree);

  /// Sorted Morton keys of non-empty leaves.
  static std::vector<uint64_t> LeafKeys(const QuadtreeStructure& tree);
};

}  // namespace dbgc

#endif  // DBGC_SPATIAL_QUADTREE_H_
