#include "spatial/voxel_grid.h"

#include <cmath>

namespace dbgc {

const std::vector<int> VoxelGrid::kEmpty;

VoxelGrid::VoxelGrid(const PointCloud& pc, double cell_side)
    : pc_(pc), cell_side_(cell_side), inv_side_(1.0 / cell_side) {
  cells_.reserve(pc.size() / 4 + 8);
  for (size_t i = 0; i < pc.size(); ++i) {
    cells_[KeyOf(CoordOf(pc[i]))].push_back(static_cast<int>(i));
  }
}

VoxelCoord VoxelGrid::CoordOf(const Point3& p) const {
  return VoxelCoord{static_cast<int32_t>(std::floor(p.x * inv_side_)),
                    static_cast<int32_t>(std::floor(p.y * inv_side_)),
                    static_cast<int32_t>(std::floor(p.z * inv_side_))};
}

uint64_t VoxelGrid::KeyOf(const VoxelCoord& c) {
  const uint64_t bias = 1u << 20;
  const uint64_t ux = (static_cast<uint64_t>(static_cast<int64_t>(c.x)) + bias) &
                      0x1FFFFF;
  const uint64_t uy = (static_cast<uint64_t>(static_cast<int64_t>(c.y)) + bias) &
                      0x1FFFFF;
  const uint64_t uz = (static_cast<uint64_t>(static_cast<int64_t>(c.z)) + bias) &
                      0x1FFFFF;
  return ux | (uy << 21) | (uz << 42);
}

const std::vector<int>& VoxelGrid::PointsInCell(const VoxelCoord& c) const {
  const auto it = cells_.find(KeyOf(c));
  return it == cells_.end() ? kEmpty : it->second;
}

std::vector<int> VoxelGrid::RadiusSearch(const Point3& query,
                                         double radius) const {
  std::vector<int> out;
  const double r_sq = radius * radius;
  const VoxelCoord lo = CoordOf(
      Point3{query.x - radius, query.y - radius, query.z - radius});
  const VoxelCoord hi = CoordOf(
      Point3{query.x + radius, query.y + radius, query.z + radius});
  for (int32_t cx = lo.x; cx <= hi.x; ++cx) {
    for (int32_t cy = lo.y; cy <= hi.y; ++cy) {
      for (int32_t cz = lo.z; cz <= hi.z; ++cz) {
        const auto it = cells_.find(KeyOf(VoxelCoord{cx, cy, cz}));
        if (it == cells_.end()) continue;
        for (int idx : it->second) {
          if ((pc_[idx] - query).SquaredNorm() <= r_sq) out.push_back(idx);
        }
      }
    }
  }
  return out;
}

size_t VoxelGrid::CountWithinRadius(const Point3& query, double radius,
                                    size_t at_least) const {
  size_t count = 0;
  const double r_sq = radius * radius;
  const VoxelCoord lo = CoordOf(
      Point3{query.x - radius, query.y - radius, query.z - radius});
  const VoxelCoord hi = CoordOf(
      Point3{query.x + radius, query.y + radius, query.z + radius});
  for (int32_t cx = lo.x; cx <= hi.x; ++cx) {
    for (int32_t cy = lo.y; cy <= hi.y; ++cy) {
      for (int32_t cz = lo.z; cz <= hi.z; ++cz) {
        const auto it = cells_.find(KeyOf(VoxelCoord{cx, cy, cz}));
        if (it == cells_.end()) continue;
        for (int idx : it->second) {
          if ((pc_[idx] - query).SquaredNorm() <= r_sq) {
            if (++count >= at_least) return count;
          }
        }
      }
    }
  }
  return count;
}

size_t VoxelGrid::CellCount(uint64_t key) const {
  const auto it = cells_.find(key);
  return it == cells_.end() ? 0 : it->second.size();
}

}  // namespace dbgc
