// Uniform hashed voxel grid over a point cloud: the spatial index behind
// the cell-based clustering of Section 3.2 and the approximate clustering
// of Section 4.3.

#ifndef DBGC_SPATIAL_VOXEL_GRID_H_
#define DBGC_SPATIAL_VOXEL_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/point_cloud.h"

namespace dbgc {

/// Integer cell coordinates of a voxel.
struct VoxelCoord {
  int32_t x = 0;
  int32_t y = 0;
  int32_t z = 0;
  bool operator==(const VoxelCoord& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

/// Hash map grid: voxel coordinate -> indices of contained points.
class VoxelGrid {
 public:
  /// Builds the grid with the given cell side. Cell (i,j,k) covers
  /// [i*s, (i+1)*s) x ... relative to the origin (0,0,0).
  VoxelGrid(const PointCloud& pc, double cell_side);

  /// Cell side length.
  double cell_side() const { return cell_side_; }
  /// Number of non-empty cells.
  size_t num_cells() const { return cells_.size(); }

  /// The voxel containing p.
  VoxelCoord CoordOf(const Point3& p) const;

  /// 64-bit packed key of a voxel coordinate (21 bits per dimension,
  /// offset binary). Distinct coords in +-2^20 cells map to distinct keys.
  static uint64_t KeyOf(const VoxelCoord& c);

  /// Point indices in the given cell; empty if the cell has no points.
  const std::vector<int>& PointsInCell(const VoxelCoord& c) const;

  /// Indices of all points within Euclidean `radius` of `query`.
  std::vector<int> RadiusSearch(const Point3& query, double radius) const;

  /// Number of points within Euclidean `radius` of `query`. If the count
  /// reaches `at_least`, returns early with that value (enough for DBSCAN's
  /// minPts test).
  size_t CountWithinRadius(const Point3& query, double radius,
                           size_t at_least) const;

  /// Iterates all non-empty cells.
  const std::unordered_map<uint64_t, std::vector<int>>& cells() const {
    return cells_;
  }

  /// Number of points in a cell by key (0 if empty).
  size_t CellCount(uint64_t key) const;

 private:
  const PointCloud& pc_;
  double cell_side_;
  double inv_side_;
  std::unordered_map<uint64_t, std::vector<int>> cells_;
  static const std::vector<int> kEmpty;
};

}  // namespace dbgc

#endif  // DBGC_SPATIAL_VOXEL_GRID_H_
