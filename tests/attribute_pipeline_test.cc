// Tests for the attribute codec, the range-image codec, and the
// multi-threaded compression pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "codec/range_image_codec.h"
#include "common/rng.h"
#include "core/attribute_codec.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"
#include "net/pipeline.h"

namespace dbgc {
namespace {

TEST(AttributeCodecTest, RoundTripWithinBound) {
  Rng rng(1);
  std::vector<float> intensity;
  for (int i = 0; i < 20000; ++i) {
    intensity.push_back(static_cast<float>(rng.NextDouble()));
  }
  const double q = 1.0 / 255.0;  // 8-bit intensity resolution.
  auto compressed = AttributeCodec::Compress(intensity, {}, q);
  ASSERT_TRUE(compressed.ok());
  auto decoded = AttributeCodec::Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), intensity.size());
  for (size_t i = 0; i < intensity.size(); ++i) {
    ASSERT_NEAR(decoded.value()[i], intensity[i], q * (1 + 1e-6));
  }
}

TEST(AttributeCodecTest, EmissionOrderReordering) {
  const std::vector<float> values = {0.1f, 0.2f, 0.3f, 0.4f};
  const std::vector<uint32_t> order = {3, 1, 0, 2};
  auto compressed = AttributeCodec::Compress(values, order, 0.001);
  ASSERT_TRUE(compressed.ok());
  auto decoded = AttributeCodec::Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 4u);
  EXPECT_NEAR(decoded.value()[0], 0.4f, 0.002);
  EXPECT_NEAR(decoded.value()[1], 0.2f, 0.002);
  EXPECT_NEAR(decoded.value()[2], 0.1f, 0.002);
  EXPECT_NEAR(decoded.value()[3], 0.3f, 0.002);
}

TEST(AttributeCodecTest, PairsWithGeometryMapping) {
  // Full workflow: geometry via DBGC, intensity via AttributeCodec using
  // the geometry's emission order; the decoded channels stay aligned.
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 30) pc.Add(full[i]);
  // Synthetic intensity correlated with height.
  std::vector<float> intensity;
  for (const Point3& p : pc) {
    intensity.push_back(static_cast<float>(0.5 + 0.1 * p.z));
  }

  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto geometry = codec.Compress(pc, info_params);
  ASSERT_TRUE(geometry.ok());
  auto attr = AttributeCodec::Compress(intensity, info.point_mapping, 0.01);
  ASSERT_TRUE(attr.ok());

  auto decoded_cloud = codec.Decompress(geometry.value());
  ASSERT_TRUE(decoded_cloud.ok());
  auto decoded_attr = AttributeCodec::Decompress(attr.value());
  ASSERT_TRUE(decoded_attr.ok());
  ASSERT_EQ(decoded_attr.value().size(), decoded_cloud.value().size());
  // Emission order i corresponds to source point_mapping[i]: the decoded
  // intensity must match the source point's height relation within bounds.
  for (size_t i = 0; i < decoded_attr.value().size(); i += 57) {
    const float expected = intensity[info.point_mapping[i]];
    ASSERT_NEAR(decoded_attr.value()[i], expected, 0.011);
  }
}

TEST(AttributeCodecTest, InvalidInputsRejected) {
  EXPECT_FALSE(AttributeCodec::Compress({1.0f}, {}, 0.0).ok());
  EXPECT_FALSE(AttributeCodec::Compress({1.0f}, {0, 1}, 0.1).ok());
  EXPECT_FALSE(AttributeCodec::Compress({1.0f, 2.0f}, {0, 5}, 0.1).ok());
  ByteBuffer junk;
  junk.AppendByte(0x00);
  EXPECT_FALSE(AttributeCodec::Decompress(junk).ok());
}

TEST(RangeImageCodecTest, RoundTripsItsOwnRepresentation) {
  const SceneGenerator gen(SceneType::kRoad);
  const PointCloud pc = gen.Generate(0);
  const RangeImageCodec codec;
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  // Resampling: at most one point per cell, so |PC'| <= |PC|.
  EXPECT_LE(decoded.value().size(), pc.size());
  EXPECT_GT(decoded.value().size(), pc.size() / 2);
  // Re-compressing the decoded cloud is a fixed point (same grid).
  auto again = codec.Compress(decoded.value(), 0.02);
  ASSERT_TRUE(again.ok());
  auto decoded2 = codec.Decompress(again.value());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2.value().size(), decoded.value().size());
}

TEST(RangeImageCodecTest, AccuracyLossExceedsDbgc) {
  // Section 2.2's argument: image-based schemes sacrifice accuracy on
  // calibrated clouds. The angular snap error dwarfs DBGC's bound.
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 4) pc.Add(full[i]);
  pc.Add(pc[0]);  // A second echo in an occupied cell collapses away.
  const double q = 0.02;

  const RangeImageCodec range_image;
  auto ri = range_image.Compress(pc, q);
  ASSERT_TRUE(ri.ok());
  auto ri_decoded = range_image.Decompress(ri.value());
  ASSERT_TRUE(ri_decoded.ok());
  const ErrorStats ri_error = NearestNeighborError(pc, ri_decoded.value());

  // It cannot satisfy the Problem Statement: the count changes and the
  // error exceeds the bound that DBGC guarantees.
  EXPECT_GT(ri_error.max_euclidean, std::sqrt(3.0) * q);
  EXPECT_NE(ri_decoded.value().size(), pc.size());
}

TEST(RangeImageCodecTest, EmptyCloud) {
  const RangeImageCodec codec;
  auto compressed = codec.Compress(PointCloud(), 0.02);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(CompressionPipelineTest, MatchesSequentialOutput) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const SceneGenerator gen(SceneType::kCampus);
  std::vector<PointCloud> frames;
  for (uint32_t f = 0; f < 4; ++f) {
    const PointCloud full = gen.Generate(f);
    PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 18) pc.Add(full[i]);
    frames.push_back(std::move(pc));
  }

  // Sequential reference.
  const DbgcCodec codec(options);
  std::vector<ByteBuffer> expected;
  for (const PointCloud& pc : frames) {
    auto c = codec.Compress(pc, options.q_xyz);
    ASSERT_TRUE(c.ok());
    expected.push_back(std::move(c).value());
  }

  // Parallel pipeline: same bitstreams, in submission order.
  CompressionPipeline pipeline(options, /*num_workers=*/3);
  for (const PointCloud& pc : frames) pipeline.Submit(pc);
  for (size_t f = 0; f < frames.size(); ++f) {
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value(), expected[f]) << "frame " << f;
  }
  // No more results pending.
  EXPECT_FALSE(pipeline.NextResult().ok());
}

TEST(CompressionPipelineTest, SingleWorkerAndInterleavedUse) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  CompressionPipeline pipeline(options, 1);
  Rng rng(5);
  for (int round = 0; round < 3; ++round) {
    PointCloud pc;
    for (int i = 0; i < 500; ++i) {
      pc.Add(rng.NextRange(-20, 20), rng.NextRange(-20, 20),
             rng.NextRange(-2, 2));
    }
    pipeline.Submit(pc);
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().size(), 0u);
  }
  EXPECT_EQ(pipeline.submitted(), 3u);
}

}  // namespace
}  // namespace dbgc
