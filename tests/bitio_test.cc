// Unit and property tests for src/bitio: byte buffers, bit-level I/O,
// varints, and zigzag mapping.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/byte_buffer.h"
#include "bitio/varint.h"
#include "common/rng.h"

namespace dbgc {
namespace {

TEST(ByteBufferTest, AppendPrimitives) {
  ByteBuffer buf;
  buf.AppendByte(0xAB);
  buf.AppendUint16(0x1234);
  buf.AppendUint32(0xDEADBEEF);
  buf.AppendUint64(0x0123456789ABCDEFULL);
  buf.AppendDouble(3.5);

  ByteReader reader(buf);
  uint8_t b;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  double d;
  ASSERT_TRUE(reader.ReadByte(&b).ok());
  ASSERT_TRUE(reader.ReadUint16(&u16).ok());
  ASSERT_TRUE(reader.ReadUint32(&u32).ok());
  ASSERT_TRUE(reader.ReadUint64(&u64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  EXPECT_EQ(b, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(d, 3.5);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferTest, LengthPrefixedRoundTrip) {
  ByteBuffer inner;
  inner.AppendUint32(77);
  ByteBuffer outer;
  outer.AppendLengthPrefixed(inner);
  outer.AppendByte(9);

  ByteReader reader(outer);
  ByteBuffer decoded;
  ASSERT_TRUE(reader.ReadLengthPrefixed(&decoded).ok());
  EXPECT_EQ(decoded, inner);
  uint8_t tail;
  ASSERT_TRUE(reader.ReadByte(&tail).ok());
  EXPECT_EQ(tail, 9);
}

TEST(ByteReaderTest, ReadPastEndFails) {
  ByteBuffer buf;
  buf.AppendByte(1);
  ByteReader reader(buf);
  uint32_t v;
  EXPECT_EQ(reader.ReadUint32(&v).code(), StatusCode::kCorruption);
}

TEST(ByteReaderTest, LengthPrefixOverrunFails) {
  ByteBuffer buf;
  buf.AppendUint64(100);  // Claims 100 bytes follow; none do.
  ByteReader reader(buf);
  ByteBuffer sub;
  EXPECT_FALSE(reader.ReadLengthPrefixed(&sub).ok());
}

TEST(ByteReaderTest, SkipAdvances) {
  ByteBuffer buf;
  for (int i = 0; i < 10; ++i) buf.AppendByte(static_cast<uint8_t>(i));
  ByteReader reader(buf);
  ASSERT_TRUE(reader.Skip(4).ok());
  uint8_t b;
  ASSERT_TRUE(reader.ReadByte(&b).ok());
  EXPECT_EQ(b, 4);
  EXPECT_FALSE(reader.Skip(100).ok());
}

TEST(BitIoTest, SingleBitsRoundTrip) {
  BitWriter writer;
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (int b : pattern) writer.WriteBit(b);
  const ByteBuffer buf = writer.Finish();
  BitReader reader(buf);
  for (int expected : pattern) {
    int bit;
    ASSERT_TRUE(reader.ReadBit(&bit).ok());
    EXPECT_EQ(bit, expected);
  }
}

TEST(BitIoTest, MultiBitFieldsRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.WriteBits(0xFFFF, 16);
  writer.WriteBits(0, 5);
  writer.WriteBits(0x123456789ULL, 36);
  const ByteBuffer buf = writer.Finish();
  BitReader reader(buf);
  uint64_t v;
  ASSERT_TRUE(reader.ReadBits(3, &v).ok());
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(reader.ReadBits(16, &v).ok());
  EXPECT_EQ(v, 0xFFFFu);
  ASSERT_TRUE(reader.ReadBits(5, &v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(reader.ReadBits(36, &v).ok());
  EXPECT_EQ(v, 0x123456789ULL);
}

TEST(BitIoTest, BitCountTracksWrites) {
  BitWriter writer;
  EXPECT_EQ(writer.bit_count(), 0u);
  writer.WriteBits(0, 13);
  EXPECT_EQ(writer.bit_count(), 13u);
}

TEST(BitIoTest, RandomRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<uint64_t, int>> fields;
    BitWriter writer;
    for (int i = 0; i < 500; ++i) {
      const int width = 1 + static_cast<int>(rng.NextBounded(64));
      const uint64_t value =
          width == 64 ? rng.NextUint64() : rng.NextUint64() & ((1ULL << width) - 1);
      fields.emplace_back(value, width);
      writer.WriteBits(value, width);
    }
    const ByteBuffer buf = writer.Finish();
    BitReader reader(buf);
    for (const auto& [value, width] : fields) {
      uint64_t v;
      ASSERT_TRUE(reader.ReadBits(width, &v).ok());
      EXPECT_EQ(v, value);
    }
  }
}

TEST(ZigZagTest, SmallValuesInterleave) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, ExtremesRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(VarintTest, BoundaryValues) {
  ByteBuffer buf;
  const uint64_t values[] = {0,       127,        128,
                             16383,   16384,      (1ULL << 35) - 1,
                             1ULL << 35, ~0ULL};
  for (uint64_t v : values) PutVarint64(&buf, v);
  ByteReader reader(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&reader, &v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, SingleByteForSmallValues) {
  ByteBuffer buf;
  PutVarint64(&buf, 100);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, SignedRandomRoundTrip) {
  Rng rng(5);
  ByteBuffer buf;
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const int shift = static_cast<int>(rng.NextBounded(63));
    int64_t v = static_cast<int64_t>(rng.NextUint64() >> shift);
    if (rng.NextBool(0.5)) v = -v;
    values.push_back(v);
    PutSignedVarint64(&buf, v);
  }
  ByteReader reader(buf);
  for (int64_t expected : values) {
    int64_t v;
    ASSERT_TRUE(GetSignedVarint64(&reader, &v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(VarintTest, TruncatedFails) {
  ByteBuffer buf;
  buf.AppendByte(0x80);  // Continuation bit with no following byte.
  ByteReader reader(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&reader, &v).ok());
}

TEST(VarintTest, OverlongFails) {
  ByteBuffer buf;
  for (int i = 0; i < 11; ++i) buf.AppendByte(0xFF);
  ByteReader reader(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&reader, &v).ok());
}

// --- Edge cases at buffer boundaries (fault-injection support suite). ---

TEST(ByteReaderTest, ZeroLengthBufferRejectsEveryRead) {
  const ByteBuffer empty;
  ByteReader reader(empty);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.remaining(), 0u);
  uint8_t b;
  EXPECT_FALSE(reader.ReadByte(&b).ok());
  uint16_t u16;
  EXPECT_FALSE(reader.ReadUint16(&u16).ok());
  uint32_t u32;
  EXPECT_FALSE(reader.ReadUint32(&u32).ok());
  uint64_t u64;
  EXPECT_FALSE(reader.ReadUint64(&u64).ok());
  double d;
  EXPECT_FALSE(reader.ReadDouble(&d).ok());
  ByteBuffer sub;
  EXPECT_FALSE(reader.ReadLengthPrefixed(&sub).ok());
  EXPECT_FALSE(reader.Skip(1).ok());
  EXPECT_TRUE(reader.Skip(0).ok());
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&reader, &v).ok());
}

TEST(ByteReaderTest, LengthPrefixNearIntegerLimitsRejected) {
  // A length prefix of 2^64-1 must fail the remaining() comparison rather
  // than wrap anything downstream.
  ByteBuffer buf;
  buf.AppendUint64(std::numeric_limits<uint64_t>::max());
  buf.AppendByte(0xAA);
  ByteReader reader(buf);
  ByteBuffer sub;
  EXPECT_FALSE(reader.ReadLengthPrefixed(&sub).ok());
}

TEST(ByteReaderTest, LengthPrefixConsumingExactRemainderSucceeds) {
  ByteBuffer buf;
  ByteBuffer payload;
  payload.AppendByte(1);
  payload.AppendByte(2);
  buf.AppendLengthPrefixed(payload);
  ByteReader reader(buf);
  ByteBuffer sub;
  ASSERT_TRUE(reader.ReadLengthPrefixed(&sub).ok());
  EXPECT_TRUE(sub == payload);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteReaderTest, SkipPastEndFailsWithoutAdvancing) {
  ByteBuffer buf;
  buf.AppendUint32(0xDEADBEEF);
  ByteReader reader(buf);
  EXPECT_FALSE(reader.Skip(5).ok());
  // A failed skip must not consume anything.
  uint32_t v;
  ASSERT_TRUE(reader.ReadUint32(&v).ok());
  EXPECT_EQ(v, 0xDEADBEEFu);
}

TEST(VarintTest, ValueEndingOnFinalByteSucceeds) {
  ByteBuffer buf;
  PutVarint64(&buf, 300);  // Two bytes; the second is the buffer's last.
  ByteReader reader(buf);
  uint64_t v;
  ASSERT_TRUE(GetVarint64(&reader, &v).ok());
  EXPECT_EQ(v, 300u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, ContinuationRunHittingBufferEndFails) {
  // Ten continuation bytes and then end-of-buffer: the decoder must stop
  // with an error (either overflow or truncation), never read past the end.
  ByteBuffer buf;
  for (int i = 0; i < 10; ++i) buf.AppendByte(0x80);
  ByteReader reader(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&reader, &v).ok());
}

TEST(VarintTest, MidValueTruncationFails) {
  ByteBuffer buf;
  PutVarint64(&buf, uint64_t{1} << 40);  // Six bytes.
  ByteBuffer truncated;
  truncated.Append(buf.data(), buf.size() - 1);
  ByteReader reader(truncated);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&reader, &v).ok());
}

TEST(BitReaderTest, ReadPastFinalByteFails) {
  ByteBuffer buf;
  buf.AppendByte(0b10110001);
  BitReader reader(buf);
  uint64_t bits;
  ASSERT_TRUE(reader.ReadBits(8, &bits).ok());
  EXPECT_EQ(bits, 0b10110001u);
  EXPECT_TRUE(reader.AtEnd());
  int bit;
  EXPECT_FALSE(reader.ReadBit(&bit).ok());
  EXPECT_FALSE(reader.ReadBits(1, &bits).ok());
}

TEST(BitReaderTest, MultiBitReadSpanningEndFails) {
  ByteBuffer buf;
  buf.AppendByte(0xFF);
  BitReader reader(buf);
  uint64_t bits;
  ASSERT_TRUE(reader.ReadBits(5, &bits).ok());
  // Three bits remain; asking for four must fail.
  EXPECT_FALSE(reader.ReadBits(4, &bits).ok());
}

TEST(BitReaderTest, ZeroLengthBufferHasNoBits) {
  const ByteBuffer empty;
  BitReader reader(empty);
  EXPECT_TRUE(reader.AtEnd());
  int bit;
  EXPECT_FALSE(reader.ReadBit(&bit).ok());
  uint64_t bits;
  ASSERT_TRUE(reader.ReadBits(0, &bits).ok());  // Zero-bit read is a no-op.
  EXPECT_EQ(bits, 0u);
}

}  // namespace
}  // namespace dbgc
