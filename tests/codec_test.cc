// Tests for the baseline geometry codecs (src/codec): round trips, point
// counts, error bounds, and relative compression behaviour on LiDAR-like
// data.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "codec/codec.h"
#include "codec/gpcc_like_codec.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"
#include "codec/raw_codec.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace {

PointCloud SmallLidarFrame() {
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud sub;
  for (size_t i = 0; i < full.size(); i += 5) sub.Add(full[i]);
  return sub;
}

PointCloud RandomCloud(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  PointCloud pc;
  for (size_t i = 0; i < n; ++i) {
    pc.Add(rng.NextRange(-extent, extent), rng.NextRange(-extent, extent),
           rng.NextRange(-extent, extent));
  }
  return pc;
}

struct CodecFactory {
  const char* label;
  std::unique_ptr<GeometryCodec> (*make)();
};

std::unique_ptr<GeometryCodec> MakeOctree() {
  return std::make_unique<OctreeCodec>();
}
std::unique_ptr<GeometryCodec> MakeOctreeGrouped() {
  return std::make_unique<OctreeGroupedCodec>();
}
std::unique_ptr<GeometryCodec> MakeKd() {
  return std::make_unique<KdTreeCodec>();
}
std::unique_ptr<GeometryCodec> MakeGpcc() {
  return std::make_unique<GpccLikeCodec>();
}
std::unique_ptr<GeometryCodec> MakeRaw() {
  return std::make_unique<RawCodec>();
}

class BaselineCodecTest : public ::testing::TestWithParam<CodecFactory> {};

TEST_P(BaselineCodecTest, RoundTripPreservesCount) {
  auto codec = GetParam().make();
  const PointCloud pc = SmallLidarFrame();
  auto compressed = codec->Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = codec->Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST_P(BaselineCodecTest, EmptyCloud) {
  auto codec = GetParam().make();
  auto compressed = codec->Compress(PointCloud(), 0.02);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec->Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST_P(BaselineCodecTest, SinglePoint) {
  auto codec = GetParam().make();
  PointCloud pc;
  pc.Add(1.25, -3.5, 0.75);
  auto compressed = codec->Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec->Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 1u);
  EXPECT_LE(decoded.value()[0].DistanceTo(pc[0]), std::sqrt(3.0) * 0.02);
}

TEST_P(BaselineCodecTest, DuplicatePointsPreserved) {
  auto codec = GetParam().make();
  PointCloud pc;
  for (int i = 0; i < 5; ++i) pc.Add(1, 1, 1);
  pc.Add(2, 2, 2);
  auto compressed = codec->Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec->Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 6u);
}

TEST_P(BaselineCodecTest, ErrorBoundHolds) {
  auto codec = GetParam().make();
  const PointCloud pc = RandomCloud(3000, 40.0, 77);
  for (double q : {0.005, 0.02, 0.1}) {
    auto compressed = codec->Compress(pc, q);
    ASSERT_TRUE(compressed.ok());
    auto decoded = codec->Decompress(compressed.value());
    ASSERT_TRUE(decoded.ok());
    const ErrorStats stats = NearestNeighborError(pc, decoded.value());
    // Cell-center reconstruction: per-dimension error <= q, so the
    // symmetric NN error is at most sqrt(3) q.
    EXPECT_LE(stats.max_euclidean, std::sqrt(3.0) * q * (1 + 1e-9))
        << GetParam().label << " q=" << q;
  }
}

TEST_P(BaselineCodecTest, InvalidErrorBoundRejected) {
  auto codec = GetParam().make();
  if (std::string(GetParam().label) == "Raw") GTEST_SKIP();
  const PointCloud pc = RandomCloud(10, 1.0, 1);
  EXPECT_FALSE(codec->Compress(pc, 0.0).ok());
  EXPECT_FALSE(codec->Compress(pc, -1.0).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, BaselineCodecTest,
    ::testing::Values(CodecFactory{"Octree", &MakeOctree},
                      CodecFactory{"Octree_i", &MakeOctreeGrouped},
                      CodecFactory{"Draco", &MakeKd},
                      CodecFactory{"GPCC", &MakeGpcc},
                      CodecFactory{"Raw", &MakeRaw}),
    [](const ::testing::TestParamInfo<CodecFactory>& info) {
      return std::string(info.param.label);
    });

TEST(RawCodecTest, RatioIsAboutOne) {
  const RawCodec codec;
  const PointCloud pc = RandomCloud(1000, 10, 5);
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  const double ratio = CompressionRatio(pc, compressed.value());
  EXPECT_GT(ratio, 0.95);
  EXPECT_LE(ratio, 1.0);
}

TEST(OctreeCodecTest, BeatsRawOnLidar) {
  const OctreeCodec codec;
  const PointCloud pc = SmallLidarFrame();
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  EXPECT_GT(CompressionRatio(pc, compressed.value()), 3.0);
}

TEST(OctreeCodecTest, RatioImprovesWithDensity) {
  // The Figure 3a effect: a denser cloud (same spatial process, smaller
  // radius) compresses better per point.
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud near_points, all_points;
  for (const Point3& p : full) {
    if (p.Norm() <= 10.0) near_points.Add(p);
    all_points.Add(p);
  }
  const OctreeCodec codec;
  auto c_near = codec.Compress(near_points, 0.02);
  auto c_all = codec.Compress(all_points, 0.02);
  ASSERT_TRUE(c_near.ok());
  ASSERT_TRUE(c_all.ok());
  EXPECT_GT(CompressionRatio(near_points, c_near.value()),
            CompressionRatio(all_points, c_all.value()));
}

TEST(GpccCodecTest, BeatsPlainOctreeOnLidar) {
  // Section 4.2: G-PCC outperforms Octree on LiDAR data thanks to direct
  // point coding and context modelling.
  const PointCloud pc = SmallLidarFrame();
  const OctreeCodec octree;
  const GpccLikeCodec gpcc;
  auto c_octree = octree.Compress(pc, 0.02);
  auto c_gpcc = gpcc.Compress(pc, 0.02);
  ASSERT_TRUE(c_octree.ok());
  ASSERT_TRUE(c_gpcc.ok());
  EXPECT_LT(c_gpcc.value().size(), c_octree.value().size());
}

TEST(CodecTest, CorruptedStreamFailsCleanly) {
  const PointCloud pc = RandomCloud(500, 10, 9);
  for (auto& codec : MakeBaselineCodecs()) {
    auto compressed = codec->Compress(pc, 0.02);
    ASSERT_TRUE(compressed.ok());
    ByteBuffer truncated;
    truncated.Append(compressed.value().data(),
                     compressed.value().size() / 3);
    auto decoded = codec->Decompress(truncated);
    EXPECT_FALSE(decoded.ok()) << codec->name();
  }
}

TEST(CodecTest, MetricsHelpers) {
  PointCloud pc;
  for (int i = 0; i < 100; ++i) pc.Add(i, 0, 0);
  ByteBuffer buf;
  for (int i = 0; i < 120; ++i) buf.AppendByte(0);
  EXPECT_DOUBLE_EQ(CompressionRatio(pc, buf), 10.0);
  EXPECT_DOUBLE_EQ(BandwidthMbps(buf, 10.0), 120 * 8 * 10 / 1e6);
}

TEST(CodecTest, MetricsHelperEdgeCases) {
  // Documented total-function contract (codec/codec.h): every degenerate
  // input yields 0, never a division blow-up, NaN, or a negative value.
  PointCloud pc;
  for (int i = 0; i < 100; ++i) pc.Add(i, 0, 0);
  PointCloud empty_pc;
  ByteBuffer buf;
  for (int i = 0; i < 120; ++i) buf.AppendByte(0);
  const ByteBuffer empty_buf;

  EXPECT_DOUBLE_EQ(CompressionRatio(pc, empty_buf), 0.0);
  EXPECT_DOUBLE_EQ(CompressionRatio(empty_pc, buf), 0.0);
  EXPECT_DOUBLE_EQ(CompressionRatio(empty_pc, empty_buf), 0.0);

  EXPECT_DOUBLE_EQ(BandwidthMbps(empty_buf, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(BandwidthMbps(buf, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BandwidthMbps(buf, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(BandwidthMbps(buf, std::nan("")), 0.0);
  EXPECT_GE(BandwidthMbps(buf, 1e-300), 0.0);
}

TEST(CodecTest, MetricsHelpersSurvivePathologicalTotals) {
  // Regression (docs/OBSERVABILITY.md): ratio/bandwidth math must stay in
  // uint64/double throughout. A 32-bit intermediate anywhere folds >4 GiB
  // cumulative totals into nonsense.
  //
  // RawSizeBytes goes through CheckedMul<uint64_t>: 400M points = 4.8 GB
  // raw, past UINT32_MAX. Build the cloud shape without the memory by
  // checking the formula's type directly.
  PointCloud pc;
  for (int i = 0; i < 100; ++i) pc.Add(i, 0, 0);
  static_assert(std::is_same_v<decltype(pc.RawSizeBytes()), uint64_t>,
                "raw-size accounting must be 64-bit");

  // 8 * fps * |B| blows past 2^32 bits here (120 B at 1e9 fps = 9.6e11
  // bits); the double math must carry it exactly, where a 32-bit bit-count
  // intermediate would wrap to ~2.4e9.
  ByteBuffer buf;
  for (int i = 0; i < 120; ++i) buf.AppendByte(0);
  EXPECT_DOUBLE_EQ(BandwidthMbps(buf, 1e9), 8.0 * 1e9 * 120 / 1e6);

  // The cumulative-counter side of the same contract (>4 GiB totals
  // saturate instead of wrapping) is pinned by obs_test's
  // CounterOverflowTest suite against the registry the codec wrappers
  // feed RawSizeBytes into.
}

TEST(CodecTest, ForwardingOverloadMatchesParamsCall) {
  // Compress(pc, q) and Decompress(buf) must be exact shorthands for the
  // CompressParams/DecompressParams entry points.
  const PointCloud pc = RandomCloud(400, 10, 21);
  for (auto& codec : MakeBaselineCodecs()) {
    auto via_double = codec->Compress(pc, 0.02);
    CompressParams params;
    params.q_xyz = 0.02;
    auto via_params = codec->Compress(pc, params);
    ASSERT_TRUE(via_double.ok() && via_params.ok()) << codec->name();
    EXPECT_TRUE(via_double.value() == via_params.value()) << codec->name();

    auto via_plain = codec->Decompress(via_double.value());
    auto via_dparams =
        codec->Decompress(via_double.value(), DecompressParams());
    ASSERT_TRUE(via_plain.ok() && via_dparams.ok()) << codec->name();
    EXPECT_EQ(via_plain.value().size(), via_dparams.value().size())
        << codec->name();
  }
}

TEST(CodecTest, InvalidParamsRejectedBeforeDispatch) {
  const PointCloud pc = RandomCloud(10, 5, 3);
  for (auto& codec : MakeBaselineCodecs()) {
    CompressParams params;
    params.q_xyz = 0.02;
    params.max_threads = -1;
    EXPECT_FALSE(codec->Compress(pc, params).ok()) << codec->name();

    CompressParams nan_params;
    nan_params.q_xyz = std::nan("");
    EXPECT_FALSE(codec->Compress(pc, nan_params).ok()) << codec->name();

    DecompressParams dparams;
    dparams.max_threads = -3;
    ByteBuffer empty;
    EXPECT_FALSE(codec->Decompress(empty, dparams).ok()) << codec->name();
  }
}

TEST(CodecTest, PooledCompressionMatchesSerial) {
  const PointCloud pc = RandomCloud(3000, 25, 77);
  ThreadPool pool(4);
  for (auto& codec : MakeBaselineCodecs()) {
    auto serial = codec->Compress(pc, 0.02);
    CompressParams params;
    params.q_xyz = 0.02;
    params.pool = &pool;
    auto pooled = codec->Compress(pc, params);
    ASSERT_TRUE(serial.ok() && pooled.ok()) << codec->name();
    EXPECT_TRUE(serial.value() == pooled.value())
        << codec->name() << ": bitstream depends on the thread budget";
  }
}

TEST(CodecTest, BaselineFactoryProducesFour) {
  const auto codecs = MakeBaselineCodecs();
  ASSERT_EQ(codecs.size(), 4u);
  EXPECT_EQ(codecs[0]->name(), "Octree");
  EXPECT_EQ(codecs[1]->name(), "Octree_i");
  EXPECT_EQ(codecs[2]->name(), "Draco(kd)");
  EXPECT_EQ(codecs[3]->name(), "G-PCC-like");
}

}  // namespace
}  // namespace dbgc
