// Unit tests for src/common: Status/Result, Point3/PointCloud,
// BoundingBox/Cube, and the deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>

#include "common/bounding_box.h"
#include "common/point_cloud.h"
#include "common/rng.h"
#include "common/status.h"

namespace dbgc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad bits");
  EXPECT_EQ(s.ToString(), "Corruption: bad bits");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 6; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  DBGC_ASSIGN_OR_RETURN(int half, HalveEven(v));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  auto err = QuarterEven(6);  // 6 -> 3 (odd) -> error from inner call.
  EXPECT_FALSE(err.ok());
}

TEST(Point3Test, Arithmetic) {
  const Point3 a{1, 2, 3}, b{4, 6, 8};
  EXPECT_EQ((a + b), (Point3{5, 8, 11}));
  EXPECT_EQ((b - a), (Point3{3, 4, 5}));
  EXPECT_EQ((a * 2.0), (Point3{2, 4, 6}));
  EXPECT_DOUBLE_EQ((b - a).Norm(), std::sqrt(50.0));
  EXPECT_DOUBLE_EQ(a.ChebyshevDistanceTo(b), 5.0);
}

TEST(PointCloudTest, BasicOperations) {
  PointCloud pc;
  EXPECT_TRUE(pc.empty());
  pc.Add(1, 2, 3);
  pc.Add(Point3{4, 5, 6});
  EXPECT_EQ(pc.size(), 2u);
  EXPECT_EQ(pc[1].y, 5);
  EXPECT_EQ(pc.RawSizeBytes(), 24u);  // 12 bytes per point.
  pc.Clear();
  EXPECT_TRUE(pc.empty());
}

TEST(PointCloudTest, MaxRadius) {
  PointCloud pc;
  EXPECT_EQ(pc.MaxRadius(), 0.0);
  pc.Add(3, 4, 0);
  pc.Add(0, 0, 1);
  EXPECT_DOUBLE_EQ(pc.MaxRadius(), 5.0);
}

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  box.Extend({0, 0, 0});
  box.Extend({2, 4, -1});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({1, 2, 0}));
  EXPECT_FALSE(box.Contains({3, 2, 0}));
  EXPECT_DOUBLE_EQ(box.MaxExtent(), 4.0);
  const Point3 c = box.Center();
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 2.0);
  EXPECT_DOUBLE_EQ(c.z, -0.5);
}

TEST(CubeTest, BoundingCubeIsPowerOfTwoMultipleOfLeaf) {
  BoundingBox box;
  box.Extend({0, 0, 0});
  box.Extend({10, 3, 3});
  const double leaf = 0.04;
  const Cube cube = Cube::BoundingCube(box, leaf);
  EXPECT_GE(cube.side, 10.0);
  const double levels = std::log2(cube.side / leaf);
  EXPECT_NEAR(levels, std::round(levels), 1e-9);
  EXPECT_TRUE(cube.Contains({0, 0, 0}));
  EXPECT_TRUE(cube.Contains({10, 3, 3}));
}

TEST(CubeTest, ChildOctants) {
  const Cube cube{{0, 0, 0}, 2.0};
  const Cube c0 = cube.Child(0);
  EXPECT_EQ(c0.origin, (Point3{0, 0, 0}));
  EXPECT_DOUBLE_EQ(c0.side, 1.0);
  const Cube c7 = cube.Child(7);
  EXPECT_EQ(c7.origin, (Point3{1, 1, 1}));
  const Cube c5 = cube.Child(5);  // x and z halves set.
  EXPECT_EQ(c5.origin, (Point3{1, 0, 1}));
}

TEST(CubeTest, EmptyBoxYieldsLeafCube) {
  BoundingBox box;
  const Cube cube = Cube::BoundingCube(box, 0.5);
  EXPECT_DOUBLE_EQ(cube.side, 0.5);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedIsUnbiasedEnough) {
  Rng rng(11);
  int counts[10] = {0};
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace dbgc
