// Concurrency smoke test: every registered codec must support concurrent
// encode/decode, both from per-thread codec instances and from a single
// shared const instance. Run under -DDBGC_SANITIZE=thread this turns "the
// codecs keep no hidden mutable state" into a checked property (the
// scripts/check.sh TSan pass does exactly that).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/codec_registry.h"
#include "harness/corpus.h"

namespace dbgc {
namespace {

using harness::AllRegisteredCodecs;
using harness::BuildConformanceCorpus;
using harness::CorpusCase;
using harness::RegisteredCodec;
using harness::kConformanceQ;

PointCloud SmallCloud() {
  const std::vector<CorpusCase> corpus = BuildConformanceCorpus();
  const CorpusCase* smallest = &corpus.front();
  for (const CorpusCase& c : corpus) {
    if (c.cloud.size() < smallest->cloud.size()) smallest = &c;
  }
  return smallest->cloud;
}

// Each thread builds its own registry, so nothing is shared at all.
TEST(ConcurrencySmokeTest, PerThreadInstances) {
  const PointCloud cloud = SmallCloud();
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cloud, &failures] {
      for (const RegisteredCodec& rc : AllRegisteredCodecs()) {
        Result<ByteBuffer> buf = rc.codec->Compress(cloud, kConformanceQ);
        if (!buf.ok()) {
          ++failures;
          continue;
        }
        Result<PointCloud> round = rc.codec->Decompress(buf.value());
        if (!round.ok()) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// One shared instance per codec, hammered from several threads through the
// const interface. A codec caching state in mutable members would race here.
TEST(ConcurrencySmokeTest, SharedInstanceConstCalls) {
  const PointCloud cloud = SmallCloud();
  const std::vector<RegisteredCodec> codecs = AllRegisteredCodecs();
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cloud, &codecs, &failures] {
      for (const RegisteredCodec& rc : codecs) {
        Result<ByteBuffer> buf = rc.codec->Compress(cloud, kConformanceQ);
        if (!buf.ok()) {
          ++failures;
          continue;
        }
        Result<PointCloud> round = rc.codec->Decompress(buf.value());
        if (!round.ok() || round.value().size() == 0) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dbgc
