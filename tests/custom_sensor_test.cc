// Tests for non-default sensor profiles through the full pipeline: the
// paper's claim that "users can easily apply DBGC on other types of
// sensors by importing the metadata of the sensor" (Section 4.1).

#include <gtest/gtest.h>

#include <cmath>

#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"
#include "lidar/sensor_model.h"

namespace dbgc {
namespace {

SensorMetadata Beam32Sensor() {
  // A VLP-32-like profile: 32 rings over a wider vertical FOV, shorter
  // range, coarser azimuth.
  SensorMetadata m = SensorMetadata::VelodyneHdl64e(1200);
  m.vertical_samples = 32;
  m.phi_min = -25.0 * M_PI / 180.0;
  m.phi_max = 15.0 * M_PI / 180.0;
  m.r_max = 100.0;
  return m;
}

TEST(CustomSensorTest, GeneratorRespectsProfile) {
  const SensorMetadata sensor = Beam32Sensor();
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud pc = gen.Generate(0, sensor);
  EXPECT_GT(pc.size(), 10000u);
  EXPECT_LT(pc.size(), static_cast<size_t>(sensor.horizontal_samples) *
                           sensor.vertical_samples);
  for (const Point3& p : pc) {
    ASSERT_LE(p.Norm(), sensor.r_max * 1.01);
  }
}

TEST(CustomSensorTest, FullPipelineWithinBound) {
  const SensorMetadata sensor = Beam32Sensor();
  const SceneGenerator gen(SceneType::kResidential);
  const PointCloud pc = gen.Generate(1, sensor);

  DbgcOptions options;
  options.q_xyz = 0.02;
  options.sensor = sensor;  // u_theta / u_phi drive Algorithm 1.
  const DbgcCodec codec(options);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), pc.size());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * 0.02 * (1 + 1e-6));
  // The scan-aware coder still gets real compression on a 32-beam sweep.
  EXPECT_GT(CompressionRatio(pc, compressed.value()), 8.0);
}

TEST(CustomSensorTest, ImportedConfigMatchesDirectProfile) {
  const SensorMetadata direct = Beam32Sensor();
  auto imported = SensorMetadata::FromConfigString(direct.ToConfigString());
  ASSERT_TRUE(imported.ok());

  const SceneGenerator gen(SceneType::kRoad);
  const PointCloud a = gen.Generate(0, direct);
  const PointCloud b = gen.Generate(0, imported.value());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 1013) ASSERT_EQ(a[i], b[i]);
}

TEST(CustomSensorTest, MismatchedMetadataStillBounded) {
  // Compressing a 64-beam capture with 32-beam metadata mis-sizes the
  // polyline windows: compression degrades but correctness (count and
  // error bound) must hold.
  const PointCloud pc = SceneGenerator(SceneType::kCity).Generate(0);
  DbgcOptions options;
  options.q_xyz = 0.02;
  options.sensor = Beam32Sensor();
  const DbgcCodec codec(options);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), pc.size());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * 0.02 * (1 + 1e-6));
}

TEST(CustomSensorTest, TinyGroupCounts) {
  // More radial groups than distinct radii: groups may be empty.
  PointCloud pc;
  for (int i = 0; i < 40; ++i) pc.Add(5.0 + 0.001 * i, 1.0, -1.0);
  DbgcOptions options;
  options.num_groups = 8;
  const DbgcCodec codec(options);
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST(CustomSensorTest, AzimuthWrapRegionAccounted) {
  // Points straddling theta = +-pi: polylines cannot wrap, but every point
  // must still round-trip within the bound.
  PointCloud pc;
  for (int i = -50; i <= 50; ++i) {
    const double theta = M_PI + i * 0.003;  // Wraps through the seam.
    const double wrapped = std::atan2(std::sin(theta), std::cos(theta));
    pc.Add(20 * std::cos(wrapped), 20 * std::sin(wrapped), -1.5);
  }
  DbgcOptions options;
  options.q_xyz = 0.02;
  const DbgcCodec codec(options);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), pc.size());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * 0.02 * (1 + 1e-6));
}

}  // namespace
}  // namespace dbgc
