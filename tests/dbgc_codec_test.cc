// End-to-end tests for the DBGC codec (Section 3): round trips, the
// one-to-one mapping, error bounds, ablation switches, and layout
// robustness.

#include <gtest/gtest.h>

#include <cmath>

#include "codec/octree_codec.h"
#include "common/rng.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"
#include "obs/trace.h"

namespace dbgc {
namespace {

PointCloud TestFrame(SceneType type = SceneType::kCity, int stride = 6) {
  const SceneGenerator gen(type);
  const PointCloud full = gen.Generate(0);
  PointCloud sub;
  for (size_t i = 0; i < full.size(); i += stride) sub.Add(full[i]);
  return sub;
}

DbgcOptions FastOptions() {
  DbgcOptions options;
  // Scaled-down minPts keeps the exact clustering path affordable on the
  // subsampled test frames while exercising both dense and sparse paths.
  options.min_pts_scale = 0.05;
  return options;
}

TEST(DbgcCodecTest, RoundTripPreservesCount) {
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame();
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().size(), pc.size());
}

TEST(DbgcCodecTest, MappingIsPermutationAndWithinBound) {
  DbgcOptions options = FastOptions();
  options.q_xyz = 0.02;
  const DbgcCodec codec(options);
  const PointCloud pc = TestFrame();
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(info.point_mapping.size(), pc.size());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(stats.value().max_euclidean,
            std::sqrt(3.0) * options.q_xyz * (1 + 1e-6));
}

class DbgcErrorBound : public ::testing::TestWithParam<double> {};

TEST_P(DbgcErrorBound, HoldsAcrossBounds) {
  const double q = GetParam();
  DbgcOptions options = FastOptions();
  options.q_xyz = q;
  const DbgcCodec codec(options);
  const PointCloud pc = TestFrame(SceneType::kResidential, 10);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * q * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Bounds, DbgcErrorBound,
                         ::testing::Values(0.0006, 0.002, 0.01, 0.02));

TEST(DbgcCodecTest, EmptyCloud) {
  const DbgcCodec codec;
  auto compressed = codec.Compress(PointCloud(), 0.02);
  ASSERT_TRUE(compressed.ok());
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(DbgcCodecTest, TinyClouds) {
  const DbgcCodec codec(FastOptions());
  for (size_t n : {1u, 2u, 3u, 10u}) {
    PointCloud pc;
    Rng rng(n);
    for (size_t i = 0; i < n; ++i) {
      pc.Add(rng.NextRange(-20, 20), rng.NextRange(-20, 20),
             rng.NextRange(-2, 2));
    }
    auto compressed = codec.Compress(pc, 0.02);
    ASSERT_TRUE(compressed.ok()) << "n=" << n;
    auto decoded = codec.Decompress(compressed.value());
    ASSERT_TRUE(decoded.ok()) << "n=" << n;
    EXPECT_EQ(decoded.value().size(), n);
  }
}

TEST(DbgcCodecTest, InfoAccountsForEveryPoint) {
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame();
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(info.num_dense + info.num_sparse + info.num_outliers, pc.size());
  EXPECT_GT(info.num_polylines, 0u);
  EXPECT_GT(info.bytes_sparse, 0u);
}

TEST(DbgcCodecTest, StageTimingsFlowThroughFrameTrace) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame();
  obs::FrameTrace trace;
  ASSERT_TRUE(codec.Compress(pc, 0.02).ok());
  const obs::FrameBreakdown& b = trace.breakdown();
  EXPECT_GT(b.TotalSeconds(), 0.0);
  EXPECT_GT(b.seconds(obs::Stage::kClustering), 0.0);
  EXPECT_GT(b.seconds(obs::Stage::kOrganization), 0.0);
  EXPECT_GT(b.seconds(obs::Stage::kSparse), 0.0);
}

TEST(DbgcCodecTest, MappingSkippedUnlessRequested) {
  // The point mapping costs a dense-point sort, so stats requests without
  // record_point_mapping must leave it empty (and still fill the counts).
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame();
  CompressStats info;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  ASSERT_TRUE(codec.Compress(pc, info_params).ok());
  EXPECT_TRUE(info.point_mapping.empty());
  EXPECT_EQ(info.num_dense + info.num_sparse + info.num_outliers, pc.size());
}

struct AblationCase {
  const char* label;
  void (*apply)(DbgcOptions*);
};

class DbgcAblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(DbgcAblationTest, RoundTripsWithinBound) {
  DbgcOptions options = FastOptions();
  GetParam().apply(&options);
  options.q_xyz = 0.02;
  const DbgcCodec codec(options);
  const PointCloud pc = TestFrame(SceneType::kCampus, 8);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = codec.options().q_xyz;
  info_params.info = &info;
  auto compressed = codec.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), pc.size());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * 0.02 * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, DbgcAblationTest,
    ::testing::Values(
        AblationCase{"NoRadial",
                     [](DbgcOptions* o) {
                       o->enable_radial_optimized_delta = false;
                     }},
        AblationCase{"NoGroup", [](DbgcOptions* o) { o->num_groups = 1; }},
        AblationCase{"NoConversion",
                     [](DbgcOptions* o) {
                       o->enable_spherical_conversion = false;
                     }},
        AblationCase{"NoClustering",
                     [](DbgcOptions* o) { o->enable_clustering = false; }},
        AblationCase{"ExactClustering",
                     [](DbgcOptions* o) { o->use_approx_clustering = false; }},
        AblationCase{"OutlierOctree",
                     [](DbgcOptions* o) {
                       o->outlier_mode = OutlierMode::kOctree;
                     }},
        AblationCase{"OutlierNone",
                     [](DbgcOptions* o) {
                       o->outlier_mode = OutlierMode::kNone;
                     }},
        AblationCase{"FiveGroups", [](DbgcOptions* o) { o->num_groups = 5; }},
        AblationCase{"AllDense",
                     [](DbgcOptions* o) { o->forced_dense_fraction = 1.0; }},
        AblationCase{"AllSparse",
                     [](DbgcOptions* o) { o->forced_dense_fraction = 0.0; }},
        AblationCase{"HalfForced",
                     [](DbgcOptions* o) { o->forced_dense_fraction = 0.5; }}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return std::string(info.param.label);
    });

TEST(DbgcCodecTest, BeatsOctreeBaselineOnLidar) {
  // The headline claim (Figure 9): DBGC compresses LiDAR frames better
  // than the plain octree coder at the same error bound. This needs a
  // full-resolution frame: subsampling destroys the scan-ring regularity
  // the sparse coder exploits.
  const DbgcCodec dbgc;
  const OctreeCodec octree;
  const PointCloud pc = SceneGenerator(SceneType::kCity).Generate(0);
  auto c_dbgc = dbgc.Compress(pc, 0.02);
  auto c_octree = octree.Compress(pc, 0.02);
  ASSERT_TRUE(c_dbgc.ok());
  ASSERT_TRUE(c_octree.ok());
  EXPECT_LT(c_dbgc.value().size(), c_octree.value().size());
}

TEST(DbgcCodecTest, InvalidOptionsRejected) {
  DbgcOptions options;
  options.cluster_k = 1;  // Section 3.2 requires k >= 2.
  const DbgcCodec codec(options);
  PointCloud pc;
  pc.Add(0, 0, 0);
  EXPECT_FALSE(codec.Compress(pc, 0.02).ok());
  DbgcOptions options2;
  options2.num_groups = 0;
  EXPECT_FALSE(DbgcCodec(options2).Compress(pc, 0.02).ok());
}

TEST(DbgcCodecTest, CorruptedStreamsFailCleanly) {
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame(SceneType::kRoad, 12);
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  // Bad magic.
  ByteBuffer bad = compressed.value();
  bad.mutable_bytes()[0] = 'X';
  EXPECT_FALSE(codec.Decompress(bad).ok());
  // Truncations at various points must fail, not crash.
  for (size_t cut : {size_t{5}, size_t{20}, size_t{100},
                     compressed.value().size() / 2}) {
    ByteBuffer truncated;
    truncated.Append(compressed.value().data(),
                     std::min(cut, compressed.value().size()));
    EXPECT_FALSE(codec.Decompress(truncated).ok()) << "cut=" << cut;
  }
}

TEST(DbgcCodecTest, DecompressTimingsPopulated) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with DBGC_OBS_OFF";
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame();
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok());
  obs::FrameTrace trace;
  auto decoded = codec.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_GT(trace.breakdown().seconds(obs::Stage::kSparse), 0.0);
}

TEST(DbgcCodecTest, DeterministicOutput) {
  const DbgcCodec codec(FastOptions());
  const PointCloud pc = TestFrame(SceneType::kUrban, 9);
  auto a = codec.Compress(pc, 0.02);
  auto b = codec.Compress(pc, 0.02);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace dbgc
