// Differential oracle: round-trips every registered codec over the same
// stratified corpus and cross-checks the invariants each codec advertises
// (harness::CodecTraits) — point-count preservation, error-metric bounds,
// and compressed-size sanity — plus consistency with the golden vault's
// recorded per-codec baselines where a vault exists.
//
// Where the golden suite pins bytes, this suite pins semantics: a change
// can keep hashes stable and still break a decoder, or legitimately
// regenerate the vault while silently losing reconstruction quality. Both
// escape the golden net and are caught here.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/error_metrics.h"
#include "harness/codec_registry.h"
#include "harness/corpus.h"
#include "harness/golden.h"

namespace dbgc {
namespace {

using harness::AllRegisteredCodecs;
using harness::BuildConformanceCorpus;
using harness::CorpusCase;
using harness::kConformanceQ;
using harness::RegisteredCodec;

class DifferentialOracleTest : public ::testing::Test {
 protected:
  static const std::vector<CorpusCase>& Corpus() {
    static const std::vector<CorpusCase>* corpus =
        new std::vector<CorpusCase>(BuildConformanceCorpus());
    return *corpus;
  }
};

TEST_F(DifferentialOracleTest, RoundTripInvariantsHoldForAllCodecs) {
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    // Per-codec golden baseline (may be absent before first regen).
    std::map<std::string, harness::GoldenEntry> baseline;
    if (auto golden =
            harness::LoadGoldenFile(harness::GoldenPath(registered.id));
        golden.ok()) {
      for (const harness::GoldenEntry& e : golden.value()) {
        baseline[e.case_id] = e;
      }
    }

    for (const CorpusCase& c : Corpus()) {
      SCOPED_TRACE(registered.id + "/" + c.id);
      auto compressed = registered.codec->Compress(c.cloud, kConformanceQ);
      ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();

      // Compressed-size sanity: non-empty, never a pathological blow-up.
      const size_t raw_bytes = c.cloud.RawSizeBytes();
      ASSERT_GT(compressed.value().size(), 0u);
      EXPECT_LE(compressed.value().size(),
                static_cast<size_t>(registered.traits.max_expansion *
                                    raw_bytes) +
                    256)
          << "compressed size out of proportion to raw geometry bytes";

      // Against the recorded baseline: the oracle and the vault must agree
      // on what the codec emits.
      if (auto it = baseline.find(c.id); it != baseline.end()) {
        EXPECT_EQ(compressed.value().size(), it->second.size)
            << "size diverges from the committed golden baseline";
      }

      auto decoded = registered.codec->Decompress(compressed.value());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

      if (registered.traits.preserves_count) {
        EXPECT_EQ(decoded.value().size(), c.cloud.size())
            << "one-to-one mapping broken: point count not preserved";
      } else {
        EXPECT_GT(decoded.value().size(), 0u);
        EXPECT_LE(decoded.value().size(), c.cloud.size())
            << "resampling codec produced more points than it consumed";
      }

      const ErrorStats err = NearestNeighborError(c.cloud, decoded.value());
      if (registered.traits.bounded_error) {
        EXPECT_LE(err.max_euclidean,
                  registered.traits.error_factor * kConformanceQ)
            << "reconstruction error exceeds the codec's advertised bound";
      } else if (registered.traits.min_d1_psnr > 0) {
        EXPECT_GE(D1Psnr(c.cloud, decoded.value()),
                  registered.traits.min_d1_psnr)
            << "reconstruction PSNR below the codec's floor";
      }
    }
  }
}

// Cross-codec comparison on the dense tier: every compressing codec must
// actually compress — beat the raw 12-byte/point representation. This is
// the paper's Table/Figure sanity floor and catches entropy-coder
// regressions that still round-trip correctly.
TEST_F(DifferentialOracleTest, CompressingCodecsBeatRawOnDenseScenes) {
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    if (registered.id == "raw") continue;
    for (const CorpusCase& c : Corpus()) {
      if (c.id.find("_dense") == std::string::npos) continue;
      SCOPED_TRACE(registered.id + "/" + c.id);
      auto compressed = registered.codec->Compress(c.cloud, kConformanceQ);
      ASSERT_TRUE(compressed.ok());
      EXPECT_LT(compressed.value().size(), c.cloud.RawSizeBytes())
          << "codec expands dense LiDAR data instead of compressing it";
    }
  }
}

// Empty input must round-trip everywhere without tripping any of the new
// containment guards (zero-length sections, zero counts).
TEST_F(DifferentialOracleTest, EmptyCloudRoundTripsForAllCodecs) {
  const PointCloud empty;
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    SCOPED_TRACE(registered.id);
    auto compressed = registered.codec->Compress(empty, kConformanceQ);
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    auto decoded = registered.codec->Decompress(compressed.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().size(), 0u);
  }
}

}  // namespace
}  // namespace dbgc
