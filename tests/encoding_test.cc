// Unit and property tests for src/encoding: delta, RLE, bit-packing, the
// error-bound quantizer, and the signed/unsigned value codecs.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/quantizer.h"
#include "encoding/rle.h"
#include "encoding/value_codec.h"

namespace dbgc {
namespace {

TEST(DeltaTest, RoundTrip) {
  const std::vector<int64_t> values = {10, 12, 11, 11, -5, 100};
  const auto deltas = DeltaEncode(values);
  EXPECT_EQ(deltas, (std::vector<int64_t>{10, 2, -1, 0, -16, 105}));
  EXPECT_EQ(DeltaDecode(deltas), values);
}

TEST(DeltaTest, Empty) {
  EXPECT_TRUE(DeltaEncode({}).empty());
  EXPECT_TRUE(DeltaDecode({}).empty());
}

TEST(DeltaTest, WithBaseRoundTrip) {
  const std::vector<int64_t> values = {100, 101, 99};
  const auto deltas = DeltaEncodeWithBase(values, 98);
  EXPECT_EQ(deltas, (std::vector<int64_t>{2, 1, -2}));
  EXPECT_EQ(DeltaDecodeWithBase(deltas, 98), values);
}

TEST(DeltaTest, RandomRoundTrip) {
  Rng rng(2);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextUint64() >> 8) -
                     (1LL << 54));
  }
  EXPECT_EQ(DeltaDecode(DeltaEncode(values)), values);
}

TEST(RleTest, RoundTripWithRuns) {
  const std::vector<int64_t> values = {7, 7, 7, 7, -1, -1, 0, 5, 5, 5};
  const ByteBuffer buf = RleEncode(values);
  std::vector<int64_t> out;
  ASSERT_TRUE(RleDecode(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(RleTest, LongRunsAreCheap) {
  const std::vector<int64_t> values(100000, 3);
  const ByteBuffer buf = RleEncode(values);
  EXPECT_LT(buf.size(), 16u);
  std::vector<int64_t> out;
  ASSERT_TRUE(RleDecode(buf, &out).ok());
  EXPECT_EQ(out.size(), values.size());
}

TEST(RleTest, Empty) {
  std::vector<int64_t> out;
  ASSERT_TRUE(RleDecode(RleEncode({}), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RleTest, CorruptRunFails) {
  ByteBuffer buf = RleEncode({1, 2, 3});
  buf.mutable_bytes()[0] = 0x7F;  // Claim 127 values; stream runs dry.
  std::vector<int64_t> out;
  EXPECT_FALSE(RleDecode(buf, &out).ok());
}

TEST(BitPackTest, WidthComputation) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(~0ULL), 64);
}

TEST(BitPackTest, RoundTrip) {
  const std::vector<uint64_t> values = {0, 1, 5, 1023, 7};
  const ByteBuffer buf = BitPack(values);
  std::vector<uint64_t> out;
  ASSERT_TRUE(BitUnpack(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(BitPackTest, AllZeros) {
  const std::vector<uint64_t> values(1000, 0);
  const ByteBuffer buf = BitPack(values);
  EXPECT_LT(buf.size(), 8u);
  std::vector<uint64_t> out;
  ASSERT_TRUE(BitUnpack(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(BitPackTest, RandomRoundTrip) {
  Rng rng(3);
  for (int width = 1; width <= 64; width += 7) {
    std::vector<uint64_t> values;
    for (int i = 0; i < 1000; ++i) {
      values.push_back(width == 64 ? rng.NextUint64()
                                   : rng.NextUint64() & ((1ULL << width) - 1));
    }
    const ByteBuffer buf = BitPack(values);
    std::vector<uint64_t> out;
    ASSERT_TRUE(BitUnpack(buf, &out).ok());
    EXPECT_EQ(out, values);
  }
}

class QuantizerErrorBound : public ::testing::TestWithParam<double> {};

TEST_P(QuantizerErrorBound, RoundTripWithinBound) {
  const double q = GetParam();
  const Quantizer quantizer(q);
  Rng rng(static_cast<uint64_t>(q * 1e9));
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextRange(-500.0, 500.0);
    const double rec = quantizer.Reconstruct(quantizer.Quantize(v));
    EXPECT_LE(std::fabs(rec - v), q * (1 + 1e-12))
        << "v=" << v << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, QuantizerErrorBound,
                         ::testing::Values(0.0006, 0.002, 0.01, 0.02, 0.1));

TEST(QuantizerTest, StepIsTwiceErrorBound) {
  const Quantizer q(0.02);
  EXPECT_DOUBLE_EQ(q.step(), 0.04);
  EXPECT_DOUBLE_EQ(q.error_bound(), 0.02);
}

TEST(QuantizerTest, SequenceHelpers) {
  const Quantizer q(0.5);
  const std::vector<double> values = {0.0, 1.0, -2.3, 7.7};
  const auto ints = q.QuantizeAll(values);
  const auto recs = q.ReconstructAll(ints);
  ASSERT_EQ(recs.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::fabs(recs[i] - values[i]), 0.5 + 1e-12);
  }
}

TEST(ValueCodecTest, SignedRoundTripSmallValues) {
  const std::vector<int64_t> values = {0, 1, -1, 2, -2, 0, 0, 3, -100, 100};
  const ByteBuffer buf = SignedValueCodec::Compress(values);
  std::vector<int64_t> out;
  ASSERT_TRUE(SignedValueCodec::Decompress(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(ValueCodecTest, SignedRandomMixedMagnitudes) {
  Rng rng(5);
  std::vector<int64_t> values;
  for (int i = 0; i < 30000; ++i) {
    const int shift = static_cast<int>(rng.NextBounded(62));
    int64_t v = static_cast<int64_t>(rng.NextUint64() >> shift);
    if (rng.NextBool(0.5)) v = -v;
    values.push_back(v);
  }
  const ByteBuffer buf = SignedValueCodec::Compress(values);
  std::vector<int64_t> out;
  ASSERT_TRUE(SignedValueCodec::Decompress(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(ValueCodecTest, UnsignedRoundTrip) {
  Rng rng(6);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(rng.NextUint64() >> rng.NextBounded(64));
  }
  const ByteBuffer buf = UnsignedValueCodec::Compress(values);
  std::vector<uint64_t> out;
  ASSERT_TRUE(UnsignedValueCodec::Decompress(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(ValueCodecTest, Empty) {
  std::vector<int64_t> out;
  ASSERT_TRUE(
      SignedValueCodec::Decompress(SignedValueCodec::Compress({}), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ValueCodecTest, NearConstantStreamsCompressWell) {
  // The common case in DBGC: small deltas concentrated around one value.
  Rng rng(7);
  std::vector<int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(2 + static_cast<int64_t>(rng.NextBounded(3)) - 1);
  }
  const ByteBuffer buf = SignedValueCodec::Compress(values);
  // 8 bytes raw -> well under 1 byte per value.
  EXPECT_LT(buf.size(), values.size());
  std::vector<int64_t> out;
  ASSERT_TRUE(SignedValueCodec::Decompress(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(ValueCodecTest, ExtremeValuesSurvive) {
  const std::vector<int64_t> values = {
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(), 0, -1, 1};
  const ByteBuffer buf = SignedValueCodec::Compress(values);
  std::vector<int64_t> out;
  ASSERT_TRUE(SignedValueCodec::Decompress(buf, &out).ok());
  EXPECT_EQ(out, values);
}

TEST(ValueCodecTest, TruncatedStreamFails) {
  const ByteBuffer buf = SignedValueCodec::Compress({1, 2, 3, 4, 5});
  ByteBuffer truncated;
  truncated.Append(buf.data(), buf.size() > 3 ? 3 : buf.size());
  std::vector<int64_t> out;
  EXPECT_FALSE(SignedValueCodec::Decompress(truncated, &out).ok());
}

}  // namespace
}  // namespace dbgc
