// Cross-backend differential suite for the entropy layer
// (docs/ENTROPY.md): the WNC arithmetic coder (v1) and the byte-wise
// range coder (v2) sit behind the same EntropyEncoder/EntropyDecoder
// facade and the same frequency models, so any symbol stream that
// round-trips through one backend must round-trip through the other.
//
// The suite drives both backends with randomized symbol streams over
// randomized alphabets and adaptive-model increments. Every trial logs
// its seed; a failing trial is shrunk (ddmin-style chunk removal) to a
// minimal reproducing stream before the assertion fires, so the failure
// message is directly actionable.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "entropy/entropy_coder.h"
#include "entropy/frequency_model.h"

namespace dbgc {
namespace {

struct TrialConfig {
  uint64_t seed = 0;
  uint32_t alphabet = 2;
  uint32_t increment = 32;
  size_t length = 0;
};

std::string Describe(const TrialConfig& cfg) {
  std::ostringstream os;
  os << "seed=" << cfg.seed << " alphabet=" << cfg.alphabet
     << " increment=" << cfg.increment << " length=" << cfg.length;
  return os.str();
}

// Encodes and decodes `symbols` through one backend with a fresh adaptive
// model on each side. Returns true iff the decoded stream matches.
bool RoundTrips(const std::vector<uint32_t>& symbols, uint32_t alphabet,
                uint32_t increment, EntropyBackend backend) {
  EntropyEncoder enc(backend);
  AdaptiveModel enc_model(alphabet, increment);
  for (uint32_t s : symbols) {
    enc.Encode(enc_model.Lookup(s));
    enc_model.Update(s);
  }
  const ByteBuffer bits = enc.Finish();
  EntropyDecoder dec(bits, backend);
  AdaptiveModel dec_model(alphabet, increment);
  for (uint32_t expected : symbols) {
    SymbolRange range;
    const uint32_t s =
        dec_model.FindSymbol(dec.DecodeTarget(dec_model.total()), &range);
    dec.Advance(range);
    dec_model.Update(s);
    if (s != expected) return false;
  }
  return true;
}

// ddmin-lite: repeatedly tries to delete chunks of the failing stream while
// the predicate (round-trip failure on `backend`) still holds. The result
// is locally minimal: removing any single remaining chunk fixes it.
std::vector<uint32_t> Shrink(std::vector<uint32_t> symbols, uint32_t alphabet,
                             uint32_t increment, EntropyBackend backend) {
  size_t chunk = symbols.size() / 2;
  while (chunk > 0) {
    bool removed_any = false;
    for (size_t start = 0; start + chunk <= symbols.size();) {
      std::vector<uint32_t> candidate;
      candidate.reserve(symbols.size() - chunk);
      candidate.insert(candidate.end(), symbols.begin(),
                       symbols.begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       symbols.begin() + static_cast<ptrdiff_t>(start + chunk),
                       symbols.end());
      if (!RoundTrips(candidate, alphabet, increment, backend)) {
        symbols = std::move(candidate);  // Still fails: keep the deletion.
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return symbols;
}

void CheckBothBackends(const std::vector<uint32_t>& symbols,
                       const TrialConfig& cfg) {
  for (EntropyBackend backend :
       {EntropyBackend::kArithmeticV1, EntropyBackend::kRangeV2}) {
    if (RoundTrips(symbols, cfg.alphabet, cfg.increment, backend)) continue;
    const std::vector<uint32_t> minimal =
        Shrink(symbols, cfg.alphabet, cfg.increment, backend);
    std::ostringstream repro;
    repro << "{";
    for (size_t i = 0; i < minimal.size() && i < 64; ++i) {
      repro << (i ? ", " : "") << minimal[i];
    }
    if (minimal.size() > 64) repro << ", ...";
    repro << "}";
    FAIL() << "backend v" << static_cast<int>(backend)
           << " failed to round-trip [" << Describe(cfg)
           << "]; minimal repro (" << minimal.size()
           << " symbols): " << repro.str();
  }
}

TEST(EntropyBackendDiffTest, RandomizedAdaptiveStreams) {
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    TrialConfig cfg;
    cfg.seed = 0xD1FFu * 1000u + static_cast<uint64_t>(trial);
    Rng rng(cfg.seed);
    cfg.alphabet = 1u + static_cast<uint32_t>(rng.NextBounded(1000));
    // Increments span tame to pathological (rescale almost every update).
    cfg.increment = 1u + static_cast<uint32_t>(
                             rng.NextBounded(AdaptiveModel::kMaxTotal - 2u));
    cfg.length = 1 + rng.NextBounded(4000);
    std::vector<uint32_t> symbols;
    symbols.reserve(cfg.length);
    const bool skewed = rng.NextBool(0.5);
    for (size_t i = 0; i < cfg.length; ++i) {
      uint64_t s = rng.NextBounded(cfg.alphabet);
      if (skewed) s = std::min(s, rng.NextBounded(cfg.alphabet));
      symbols.push_back(static_cast<uint32_t>(s));
    }
    SCOPED_TRACE(Describe(cfg));
    CheckBothBackends(symbols, cfg);
  }
}

TEST(EntropyBackendDiffTest, BackendsDisagreeOnBytesNotSymbols) {
  // The two coders genuinely differ on the wire (otherwise the version
  // byte would be pointless) yet must agree on every decoded symbol.
  Rng rng(77);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<uint32_t>(rng.NextBounded(64)));
  }
  const ByteBuffer v1 =
      EntropyCompress(symbols, 64, EntropyBackend::kArithmeticV1);
  const ByteBuffer v2 = EntropyCompress(symbols, 64, EntropyBackend::kRangeV2);
  EXPECT_FALSE(v1 == v2);
  for (auto [backend, buf] :
       {std::pair<EntropyBackend, const ByteBuffer*>(
            EntropyBackend::kArithmeticV1, &v1),
        {EntropyBackend::kRangeV2, &v2}}) {
    std::vector<uint32_t> decoded;
    ASSERT_TRUE(
        EntropyDecompress(*buf, 64, symbols.size(), backend, &decoded).ok());
    EXPECT_EQ(decoded, symbols);
  }
}

TEST(EntropyBackendDiffTest, CompressedSizesStayComparable) {
  // The backend swap is a speed play, not a ratio play: on realistic
  // skewed streams the range coder must stay within a few percent of the
  // arithmetic coder's output size (both approach the adaptive-model
  // entropy; renormalization granularity is the only slack).
  Rng rng(123);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 50000; ++i) {
    symbols.push_back(static_cast<uint32_t>(
        std::min(rng.NextBounded(256), rng.NextBounded(256))));
  }
  const ByteBuffer v1 =
      EntropyCompress(symbols, 256, EntropyBackend::kArithmeticV1);
  const ByteBuffer v2 =
      EntropyCompress(symbols, 256, EntropyBackend::kRangeV2);
  EXPECT_LT(v2.size(), v1.size() * 102 / 100 + 16)
      << "range coder output grew past the arithmetic baseline";
  EXPECT_GT(v2.size() + 16, v1.size() * 98 / 100)
      << "suspiciously small: likely dropping symbols";
}

TEST(EntropyBackendDiffTest, EmptyAndSingleSymbolStreams) {
  for (EntropyBackend backend :
       {EntropyBackend::kArithmeticV1, EntropyBackend::kRangeV2}) {
    SCOPED_TRACE(static_cast<int>(backend));
    std::vector<uint32_t> decoded;
    ASSERT_TRUE(EntropyDecompress(EntropyCompress({}, 16, backend), 16, 0,
                                  backend, &decoded)
                    .ok());
    EXPECT_TRUE(decoded.empty());
    const std::vector<uint32_t> one(1, 0u);
    ASSERT_TRUE(EntropyDecompress(EntropyCompress(one, 1, backend), 1, 1,
                                  backend, &decoded)
                    .ok());
    EXPECT_EQ(decoded, one);
  }
}

// The shrinker itself must preserve the failure predicate it minimizes;
// otherwise a shrunk repro in a failure message could be a red herring.
// Exercise it on a synthetic predicate via a corrupted-stream round trip.
TEST(EntropyBackendDiffTest, ShrinkerKeepsFailuresFailing) {
  // A stream that decodes fine shrinks to... nothing to shrink: RoundTrips
  // holds, so Shrink is never called on it. Sanity-check the helper
  // contract instead: Shrink on a passing stream would return immediately
  // (loop bodies keep candidates only when they FAIL). Feed it a passing
  // stream and verify it returns the input unchanged.
  std::vector<uint32_t> symbols(100, 1u);
  const std::vector<uint32_t> shrunk =
      Shrink(symbols, 4, 32, EntropyBackend::kRangeV2);
  EXPECT_EQ(shrunk, symbols);
}

}  // namespace
}  // namespace dbgc
