// Unit and property tests for src/entropy: frequency models, the
// arithmetic coder, the binary context coder, canonical Huffman, and
// sequence statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "entropy/arithmetic_coder.h"
#include "entropy/binary_coder.h"
#include "entropy/frequency_model.h"
#include "entropy/huffman.h"
#include "entropy/range_coder.h"
#include "entropy/statistics.h"

namespace dbgc {
namespace {

TEST(AdaptiveModelTest, InitialUniform) {
  AdaptiveModel model(4);
  EXPECT_EQ(model.total(), 4u);
  for (uint32_t s = 0; s < 4; ++s) {
    const SymbolRange r = model.Lookup(s);
    EXPECT_EQ(r.cum_high - r.cum_low, 1u);
    EXPECT_EQ(r.cum_low, s);
  }
}

TEST(AdaptiveModelTest, UpdateShiftsMass) {
  AdaptiveModel model(4);
  for (int i = 0; i < 10; ++i) model.Update(2);
  const SymbolRange r2 = model.Lookup(2);
  const SymbolRange r0 = model.Lookup(0);
  EXPECT_GT(r2.cum_high - r2.cum_low, r0.cum_high - r0.cum_low);
}

TEST(AdaptiveModelTest, FindSymbolInvertsLookup) {
  Rng rng(1);
  AdaptiveModel model(100);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t s = static_cast<uint32_t>(rng.NextBounded(100));
    const SymbolRange expected = model.Lookup(s);
    for (uint32_t cum : {expected.cum_low, expected.cum_high - 1}) {
      SymbolRange found_range;
      const uint32_t found = model.FindSymbol(cum, &found_range);
      EXPECT_EQ(found, s);
      EXPECT_EQ(found_range.cum_low, expected.cum_low);
      EXPECT_EQ(found_range.cum_high, expected.cum_high);
    }
    model.Update(s);
  }
}

TEST(AdaptiveModelTest, RescaleKeepsConsistency) {
  AdaptiveModel model(3, 1024);
  for (int i = 0; i < 500; ++i) model.Update(i % 3);  // Forces rescales.
  uint32_t total = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    const SymbolRange r = model.Lookup(s);
    EXPECT_EQ(r.cum_low, total);
    total = r.cum_high;
  }
  EXPECT_EQ(total, model.total());
  EXPECT_LT(model.total(), AdaptiveModel::kMaxTotal);
}

TEST(AdaptiveModelTest, RescaleNeverZeroesAFrequency) {
  // Long, maximally skewed input: one hot symbol driven through many
  // rescales while the cold symbols sit at the frequency floor. Round-up
  // halving must keep every width >= 1 or the cold symbols become
  // unencodable (decoder desync on long skewed inputs).
  AdaptiveModel model(16, 512);
  for (int i = 0; i < 4000; ++i) model.Update(7);
  for (uint32_t s = 0; s < 16; ++s) {
    const SymbolRange r = model.Lookup(s);
    EXPECT_GE(r.cum_high - r.cum_low, 1u) << "symbol " << s;
  }
  EXPECT_LT(model.total(), AdaptiveModel::kMaxTotal);
}

// Round-trips a symbol sequence through the streaming coder with one
// model configuration on both sides.
std::vector<uint32_t> CoderRoundTrip(const std::vector<uint32_t>& symbols,
                                     uint32_t alphabet, uint32_t increment) {
  ArithmeticEncoder enc;
  AdaptiveModel enc_model(alphabet, increment);
  for (uint32_t s : symbols) {
    enc.Encode(enc_model.Lookup(s));
    enc_model.Update(s);
  }
  const ByteBuffer bits = enc.Finish();
  ArithmeticDecoder dec(bits);
  AdaptiveModel dec_model(alphabet, increment);
  std::vector<uint32_t> decoded;
  decoded.reserve(symbols.size());
  for (size_t i = 0; i < symbols.size(); ++i) {
    SymbolRange range;
    const uint32_t s =
        dec_model.FindSymbol(dec.DecodeTarget(dec_model.total()), &range);
    dec.Advance(range);
    dec_model.Update(s);
    decoded.push_back(s);
  }
  return decoded;
}

TEST(ArithmeticCoderTest, RoundTripAtRescaleBoundary) {
  // increment 2 on a 2-symbol alphabet walks the total to kMaxTotal
  // exactly (64k start=2, +2 per step crosses 1<<16 on an even total), so
  // encoder and decoder rescale mid-stream — repeatedly — and must stay
  // in lockstep. The tail flips to the cold symbol right around the
  // boundary crossings to catch any post-rescale range mismatch.
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 40000; ++i) {
    symbols.push_back(i % 101 == 0 ? 1u : 0u);
  }
  EXPECT_EQ(CoderRoundTrip(symbols, 2, 2), symbols);
}

TEST(ArithmeticCoderTest, RoundTripWithHugeIncrement) {
  // An increment near the budget forces a rescale on almost every update;
  // skewed data holds cold symbols at the floor across all of them.
  Rng rng(99);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 3000; ++i) {
    symbols.push_back(i % 37 == 0
                          ? static_cast<uint32_t>(rng.NextBounded(8))
                          : 3u);
  }
  EXPECT_EQ(CoderRoundTrip(symbols, 8, (1u << 16) - 1), symbols);
}

TEST(AdaptiveModelDeathTest, OversizedAlphabetRejected) {
  // An alphabet at kMaxTotal cannot fit the coder budget with every
  // frequency floored at 1; the constructor enforces the contract.
  EXPECT_DEATH(AdaptiveModel model(AdaptiveModel::kMaxTotal),
               "alphabet_size");
}

TEST(AdaptiveModelDeathTest, ZeroIncrementRejected) {
  EXPECT_DEATH(AdaptiveModel model(4, 0), "increment");
}

TEST(StaticModelDeathTest, OversizedAlphabetRejected) {
  // Regression: this size used to underflow the scaling limit
  // (kMaxTotal - counts.size() in size_t arithmetic), skip scaling, and
  // wrap the uint32 cumulative table into non-monotone ranges.
  const std::vector<uint32_t> counts(AdaptiveModel::kMaxTotal + 1u, 70000u);
  EXPECT_DEATH(StaticModel model(counts), "kMaxTotal");
}

TEST(StaticModelTest, MaxAllowedAlphabetStaysMonotone) {
  // Largest legal alphabet: every frequency lands on the floor of 1 and
  // the cumulative table must stay strictly increasing end to end.
  const std::vector<uint32_t> counts(AdaptiveModel::kMaxTotal - 1u, 70000u);
  StaticModel model(counts);
  EXPECT_LE(model.total(), AdaptiveModel::kMaxTotal);
  uint32_t prev_high = 0;
  for (uint32_t s = 0; s < model.alphabet_size(); ++s) {
    const SymbolRange r = model.Lookup(s);
    EXPECT_EQ(r.cum_low, prev_high);
    EXPECT_GT(r.cum_high, r.cum_low);
    prev_high = r.cum_high;
  }
  EXPECT_EQ(prev_high, model.total());
}

TEST(StaticModelTest, ZeroCountsBumped) {
  StaticModel model({0, 5, 0});
  for (uint32_t s = 0; s < 3; ++s) {
    const SymbolRange r = model.Lookup(s);
    EXPECT_GT(r.cum_high, r.cum_low);
  }
}

TEST(StaticModelTest, LargeCountsScaled) {
  StaticModel model({1u << 30, 1u << 29, 3});
  EXPECT_LT(model.total(), AdaptiveModel::kMaxTotal);
  SymbolRange r;
  EXPECT_EQ(model.FindSymbol(0, &r), 0u);
  EXPECT_EQ(model.FindSymbol(model.total() - 1, &r), 2u);
}

class ArithmeticRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ArithmeticRoundTrip, RandomSymbols) {
  const uint32_t alphabet = GetParam();
  Rng rng(alphabet);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    // Skewed distribution: most symbols small.
    const uint32_t s = static_cast<uint32_t>(
        std::min<uint64_t>(rng.NextBounded(alphabet),
                           rng.NextBounded(alphabet)));
    symbols.push_back(s);
  }
  const ByteBuffer compressed = ArithmeticCompress(symbols, alphabet);
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(
      ArithmeticDecompress(compressed, alphabet, symbols.size(), &decoded)
          .ok());
  EXPECT_EQ(decoded, symbols);
}

INSTANTIATE_TEST_SUITE_P(Alphabets, ArithmeticRoundTrip,
                         ::testing::Values(2u, 3u, 4u, 16u, 256u, 1000u));

TEST(ArithmeticCoderTest, EmptySequence) {
  const ByteBuffer compressed = ArithmeticCompress({}, 16);
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(ArithmeticDecompress(compressed, 16, 0, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(ArithmeticCoderTest, SingleSymbolAlphabet) {
  std::vector<uint32_t> symbols(1000, 0);
  const ByteBuffer compressed = ArithmeticCompress(symbols, 1);
  EXPECT_LT(compressed.size(), 16u);  // Degenerate alphabet costs ~nothing.
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(ArithmeticDecompress(compressed, 1, 1000, &decoded).ok());
  EXPECT_EQ(decoded, symbols);
}

TEST(ArithmeticCoderTest, CompressesSkewedNearEntropy) {
  // 95% zeros, 5% ones: entropy ~0.286 bits/symbol.
  Rng rng(3);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 50000; ++i) symbols.push_back(rng.NextBool(0.05));
  const ByteBuffer compressed = ArithmeticCompress(symbols, 2);
  const double bits_per_symbol = compressed.size() * 8.0 / symbols.size();
  EXPECT_LT(bits_per_symbol, 0.40);
  EXPECT_GT(bits_per_symbol, 0.20);
}

TEST(ArithmeticCoderTest, IncompressibleStaysNearOneByte) {
  Rng rng(4);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(static_cast<uint32_t>(rng.NextBounded(256)));
  }
  const ByteBuffer compressed = ArithmeticCompress(symbols, 256);
  EXPECT_GT(compressed.size(), symbols.size() * 95 / 100);
  EXPECT_LT(compressed.size(), symbols.size() * 105 / 100);
}

// Round-trips a symbol sequence through the byte-wise range coder (the v2
// entropy backend, docs/ENTROPY.md) with one model configuration on both
// sides — the range-coder twin of CoderRoundTrip above.
std::vector<uint32_t> RangeCoderRoundTrip(const std::vector<uint32_t>& symbols,
                                          uint32_t alphabet,
                                          uint32_t increment) {
  RangeEncoder enc;
  AdaptiveModel enc_model(alphabet, increment);
  for (uint32_t s : symbols) {
    enc.Encode(enc_model.Lookup(s));
    enc_model.Update(s);
  }
  const ByteBuffer bits = enc.Finish();
  RangeDecoder dec(bits);
  AdaptiveModel dec_model(alphabet, increment);
  std::vector<uint32_t> decoded;
  decoded.reserve(symbols.size());
  for (size_t i = 0; i < symbols.size(); ++i) {
    SymbolRange range;
    const uint32_t s =
        dec_model.FindSymbol(dec.DecodeTarget(dec_model.total()), &range);
    dec.Advance(range);
    dec_model.Update(s);
    decoded.push_back(s);
  }
  return decoded;
}

TEST(RangeCoderTest, RoundTripAtRescaleBoundary) {
  // Same kMaxTotal-walking configuration that stresses the arithmetic
  // coder: the adaptive model rescales mid-stream, repeatedly, and the
  // range coder's unit = range / total must track every total change in
  // lockstep with the decoder.
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 40000; ++i) {
    symbols.push_back(i % 101 == 0 ? 1u : 0u);
  }
  EXPECT_EQ(RangeCoderRoundTrip(symbols, 2, 2), symbols);
}

TEST(RangeCoderTest, RoundTripWithHugeIncrement) {
  // Increment near the kMaxTotal budget: a rescale on almost every update
  // holds cold symbols at the frequency floor throughout. With total at
  // its 2^16 ceiling and range >= 2^24 after renormalization, unit =
  // range / total must never reach zero — this input would desync
  // instantly if it did.
  Rng rng(99);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 3000; ++i) {
    symbols.push_back(i % 37 == 0
                          ? static_cast<uint32_t>(rng.NextBounded(8))
                          : 3u);
  }
  EXPECT_EQ(RangeCoderRoundTrip(symbols, 8, (1u << 16) - 1), symbols);
}

TEST(RangeCoderTest, FloorFrequencySymbolsSurviveMaxTotal) {
  // Never-zero-frequency invariant, observed through the range coder: a
  // maximally skewed model (one hot symbol through thousands of rescales)
  // keeps every cold symbol's width >= 1, and a width-1 symbol at total
  // == near-kMaxTotal must still encode and decode exactly.
  std::vector<uint32_t> symbols(4000, 7u);
  for (uint32_t cold : {0u, 15u}) symbols.push_back(cold);  // Floor symbols.
  EXPECT_EQ(RangeCoderRoundTrip(symbols, 16, 512), symbols);
}

TEST(RangeCoderTest, SingleSymbolAlphabet) {
  // Degenerate alphabet: every Encode call spans the full range
  // (cum_low 0, cum_high == total), so nothing but the flush is emitted.
  const std::vector<uint32_t> symbols(1000, 0u);
  RangeEncoder enc;
  AdaptiveModel model(1);
  for (uint32_t s : symbols) {
    enc.Encode(model.Lookup(s));
    model.Update(s);
  }
  const ByteBuffer bits = enc.Finish();
  EXPECT_LT(bits.size(), 16u);
  EXPECT_EQ(RangeCoderRoundTrip(symbols, 1, 32), symbols);
}

TEST(RangeCoderTest, StaticModelAtMaxTotal) {
  // StaticModel scales totals to just under kMaxTotal; the range coder
  // must invert Lookup at that precision limit for first/last symbols.
  StaticModel model({1u << 30, 1u << 29, 3, 1});
  RangeEncoder enc;
  const std::vector<uint32_t> symbols = {0, 3, 1, 2, 0, 3};
  for (uint32_t s : symbols) enc.Encode(model.Lookup(s));
  const ByteBuffer bits = enc.Finish();
  RangeDecoder dec(bits);
  for (uint32_t expected : symbols) {
    SymbolRange range;
    const uint32_t s = model.FindSymbol(dec.DecodeTarget(model.total()), &range);
    dec.Advance(range);
    EXPECT_EQ(s, expected);
  }
}

TEST(RangeCoderTest, CompressesSkewedNearEntropy) {
  // 95% zeros, 5% ones: entropy ~0.286 bits/symbol. The range coder must
  // match the arithmetic coder's efficiency on the same stream.
  Rng rng(3);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 50000; ++i) symbols.push_back(rng.NextBool(0.05));
  RangeEncoder enc;
  AdaptiveModel model(2);
  for (uint32_t s : symbols) {
    enc.Encode(model.Lookup(s));
    model.Update(s);
  }
  const ByteBuffer compressed = enc.Finish();
  const double bits_per_symbol = compressed.size() * 8.0 / symbols.size();
  EXPECT_LT(bits_per_symbol, 0.40);
  EXPECT_GT(bits_per_symbol, 0.20);
}

TEST(RangeCoderTest, IncompressibleStaysNearOneByte) {
  Rng rng(4);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(static_cast<uint32_t>(rng.NextBounded(256)));
  }
  RangeEncoder enc;
  AdaptiveModel model(256);
  for (uint32_t s : symbols) {
    enc.Encode(model.Lookup(s));
    model.Update(s);
  }
  const ByteBuffer compressed = enc.Finish();
  EXPECT_GT(compressed.size(), symbols.size() * 95 / 100);
  EXPECT_LT(compressed.size(), symbols.size() * 105 / 100);
}

TEST(RangeCoderTest, EncoderReusableAfterFinish) {
  // Finish resets the coder; a second stream must be independent of the
  // first (the octree occupancy shards rely on fresh-coder semantics).
  RangeEncoder enc;
  AdaptiveModel m1(4);
  enc.Encode(m1.Lookup(2));
  const ByteBuffer first = enc.Finish();
  AdaptiveModel m2(4);
  enc.Encode(m2.Lookup(2));
  const ByteBuffer second = enc.Finish();
  EXPECT_TRUE(first == second);
}

TEST(RangeCoderTest, TruncatedStreamZeroExtends) {
  // Like the arithmetic decoder, reading past the end must not crash; the
  // decoder zero-extends. (Desynced output is fine — the callers' counted
  // loops and checked allocators contain it; see docs/ENTROPY.md.)
  RangeEncoder enc;
  AdaptiveModel model(16);
  for (int i = 0; i < 100; ++i) {
    enc.Encode(model.Lookup(static_cast<uint32_t>(i % 16)));
    model.Update(static_cast<uint32_t>(i % 16));
  }
  ByteBuffer bits = enc.Finish();
  ByteBuffer truncated;
  truncated.Append(bits.data(), bits.size() / 2);
  RangeDecoder dec(truncated);
  AdaptiveModel dec_model(16);
  for (int i = 0; i < 100; ++i) {
    SymbolRange range;
    const uint32_t s =
        dec_model.FindSymbol(dec.DecodeTarget(dec_model.total()), &range);
    dec.Advance(range);
    dec_model.Update(s);
    EXPECT_LT(s, 16u);  // Always a valid symbol, never UB.
  }
}

TEST(BinaryCoderTest, ContextualBitsRoundTrip) {
  Rng rng(6);
  constexpr size_t kContexts = 8;
  std::vector<std::pair<size_t, int>> bits;
  BinaryEncoder enc(kContexts);
  for (int i = 0; i < 30000; ++i) {
    const size_t ctx = rng.NextBounded(kContexts);
    // Each context has its own bias.
    const int bit = rng.NextBool(0.1 + 0.1 * ctx) ? 1 : 0;
    bits.emplace_back(ctx, bit);
    enc.EncodeBit(ctx, bit);
  }
  const ByteBuffer buf = enc.Finish();
  BinaryDecoder dec(buf, kContexts);
  for (const auto& [ctx, bit] : bits) {
    ASSERT_EQ(dec.DecodeBit(ctx), bit);
  }
}

TEST(BinaryCoderTest, BiasedContextsCompress) {
  BinaryEncoder enc(1);
  Rng rng(7);
  const int n = 40000;
  for (int i = 0; i < n; ++i) enc.EncodeBit(0, rng.NextBool(0.02) ? 1 : 0);
  const ByteBuffer buf = enc.Finish();
  EXPECT_LT(buf.size() * 8.0 / n, 0.25);  // H(0.02) ~ 0.14 bits.
}

TEST(HuffmanTest, CodesRespectFrequencies) {
  auto code = HuffmanCode::FromCounts({1000, 100, 10, 1});
  ASSERT_TRUE(code.ok());
  const auto& lengths = code.value().lengths();
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(HuffmanTest, SingleSymbol) {
  auto code = HuffmanCode::FromCounts({0, 42, 0});
  ASSERT_TRUE(code.ok());
  BitWriter writer;
  code.value().EncodeSymbol(1, &writer);
  const ByteBuffer buf = writer.Finish();
  BitReader reader(buf);
  uint32_t symbol;
  ASSERT_TRUE(code.value().DecodeSymbol(&reader, &symbol).ok());
  EXPECT_EQ(symbol, 1u);
}

TEST(HuffmanTest, EmptyAlphabetRejected) {
  EXPECT_FALSE(HuffmanCode::FromCounts({}).ok());
  EXPECT_FALSE(HuffmanCode::FromCounts({0, 0, 0}).ok());
}

TEST(HuffmanTest, RoundTripWithTable) {
  Rng rng(8);
  std::vector<uint64_t> counts(64, 0);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 10000; ++i) {
    const uint32_t s = static_cast<uint32_t>(
        std::min(rng.NextBounded(64), rng.NextBounded(64)));
    symbols.push_back(s);
    ++counts[s];
  }
  auto code = HuffmanCode::FromCounts(counts);
  ASSERT_TRUE(code.ok());

  BitWriter writer;
  code.value().WriteTable(&writer);
  for (uint32_t s : symbols) code.value().EncodeSymbol(s, &writer);
  const ByteBuffer buf = writer.Finish();

  BitReader reader(buf);
  auto decoded_code = HuffmanCode::ReadTable(&reader, 64);
  ASSERT_TRUE(decoded_code.ok());
  EXPECT_EQ(decoded_code.value().lengths(), code.value().lengths());
  for (uint32_t expected : symbols) {
    uint32_t s;
    ASSERT_TRUE(decoded_code.value().DecodeSymbol(&reader, &s).ok());
    ASSERT_EQ(s, expected);
  }
}

TEST(HuffmanTest, LengthLimitHolds) {
  // Fibonacci-like counts force deep trees; lengths must stay <= 15.
  std::vector<uint64_t> counts;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    counts.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  auto code = HuffmanCode::FromCounts(counts);
  ASSERT_TRUE(code.ok());
  for (uint8_t l : code.value().lengths()) {
    EXPECT_LE(l, HuffmanCode::kMaxCodeLength);
  }
}

TEST(HuffmanTest, NearEntropyOnSkewedData) {
  std::vector<uint64_t> counts = {900, 50, 25, 25};
  auto code = HuffmanCode::FromCounts(counts);
  ASSERT_TRUE(code.ok());
  // Expected average length <= entropy + 1.
  double entropy = 0, total = 1000;
  for (uint64_t c : counts) {
    const double p = c / total;
    entropy -= p * std::log2(p);
  }
  double avg_len = 0;
  for (size_t s = 0; s < counts.size(); ++s) {
    avg_len += counts[s] / total * code.value().lengths()[s];
  }
  EXPECT_LE(avg_len, entropy + 1.0);
}

TEST(StatisticsTest, EntropyOfConstantIsZero) {
  EXPECT_EQ(ShannonEntropy({5, 5, 5, 5}), 0.0);
  EXPECT_EQ(ShannonEntropy({}), 0.0);
}

TEST(StatisticsTest, EntropyOfUniformIsLogN) {
  EXPECT_NEAR(ShannonEntropy({1, 2, 3, 4}), 2.0, 1e-12);
  EXPECT_NEAR(ShannonEntropy({1, 2}), 1.0, 1e-12);
}

TEST(StatisticsTest, EntropyBytes) {
  std::vector<uint8_t> bytes(256);
  for (int i = 0; i < 256; ++i) bytes[i] = static_cast<uint8_t>(i);
  EXPECT_NEAR(ShannonEntropyBytes(bytes), 8.0, 1e-12);
}

TEST(StatisticsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(StatisticsTest, DeltaLowersEntropyOnSmoothData) {
  // The motivating property of Section 3.5: delta streams of smooth
  // sequences have lower entropy than the raw values.
  std::vector<int64_t> raw, deltas;
  Rng rng(10);
  int64_t v = 0;
  for (int i = 0; i < 10000; ++i) {
    v += 100 + static_cast<int64_t>(rng.NextBounded(3));
    raw.push_back(v);
    deltas.push_back(i == 0 ? v : 100 + static_cast<int64_t>(raw[i] - raw[i - 1] - 100));
  }
  EXPECT_LT(ShannonEntropy(deltas), ShannonEntropy(raw) / 2);
}

}  // namespace
}  // namespace dbgc
