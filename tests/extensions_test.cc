// Tests for the extension modules: PLY I/O, sensor metadata import, the
// multi-frame stream codec, frame stores, and the TCP loopback transport.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <thread>

#include "common/rng.h"
#include "core/stream_codec.h"
#include "lidar/ply_io.h"
#include "lidar/scene_generator.h"
#include "lidar/sensor_model.h"
#include "net/frame_store.h"
#include "net/tcp_transport.h"

namespace dbgc {
namespace {

PointCloud SmallCloud(size_t n, uint64_t seed) {
  Rng rng(seed);
  PointCloud pc;
  for (size_t i = 0; i < n; ++i) {
    pc.Add(rng.NextRange(-50, 50), rng.NextRange(-50, 50),
           rng.NextRange(-3, 8));
  }
  return pc;
}

TEST(PlyIoTest, BinaryRoundTrip) {
  const PointCloud pc = SmallCloud(500, 1);
  const auto bytes = SerializePly(pc);
  auto parsed = ParsePly(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), pc.size());
  for (size_t i = 0; i < pc.size(); i += 97) {
    EXPECT_NEAR(parsed.value()[i].x, pc[i].x, 1e-4);
    EXPECT_NEAR(parsed.value()[i].y, pc[i].y, 1e-4);
    EXPECT_NEAR(parsed.value()[i].z, pc[i].z, 1e-4);
  }
}

TEST(PlyIoTest, AsciiParse) {
  const std::string ply =
      "ply\nformat ascii 1.0\nelement vertex 2\n"
      "property float x\nproperty float y\nproperty float z\n"
      "end_header\n"
      "1.5 2.5 3.5\n-1 -2 -3\n";
  auto parsed =
      ParsePly(reinterpret_cast<const uint8_t*>(ply.data()), ply.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value()[0].y, 2.5);
  EXPECT_DOUBLE_EQ(parsed.value()[1].z, -3.0);
}

TEST(PlyIoTest, ExtraPropertiesSkipped) {
  const std::string ply =
      "ply\nformat ascii 1.0\nelement vertex 1\n"
      "property float intensity\nproperty float x\nproperty float y\n"
      "property float z\nend_header\n"
      "0.9 1 2 3\n";
  auto parsed =
      ParsePly(reinterpret_cast<const uint8_t*>(ply.data()), ply.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value()[0].x, 1.0);
}

TEST(PlyIoTest, BadInputsRejected) {
  const std::string not_ply = "hello world";
  EXPECT_FALSE(ParsePly(reinterpret_cast<const uint8_t*>(not_ply.data()),
                        not_ply.size())
                   .ok());
  const std::string truncated =
      "ply\nformat binary_little_endian 1.0\nelement vertex 100\n"
      "property float x\nproperty float y\nproperty float z\n"
      "end_header\nxx";
  EXPECT_FALSE(ParsePly(reinterpret_cast<const uint8_t*>(truncated.data()),
                        truncated.size())
                   .ok());
}

TEST(PlyIoTest, FileRoundTrip) {
  const PointCloud pc = SmallCloud(100, 2);
  const std::string path = ::testing::TempDir() + "/dbgc_test.ply";
  ASSERT_TRUE(WritePly(path, pc).ok());
  auto loaded = ReadPly(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), pc.size());
  std::remove(path.c_str());
}

TEST(SensorConfigTest, RoundTrip) {
  const SensorMetadata original = SensorMetadata::VelodyneHdl64e(4000);
  auto parsed = SensorMetadata::FromConfigString(original.ToConfigString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().horizontal_samples, 4000);
  EXPECT_DOUBLE_EQ(parsed.value().phi_min, original.phi_min);
  EXPECT_DOUBLE_EQ(parsed.value().r_max, original.r_max);
}

TEST(SensorConfigTest, CommentsAndPartialConfig) {
  auto parsed = SensorMetadata::FromConfigString(
      "# a custom 32-beam sensor\nvertical_samples 32\nr_max 200\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().vertical_samples, 32);
  EXPECT_DOUBLE_EQ(parsed.value().r_max, 200.0);
  // Unspecified keys keep HDL-64E defaults.
  EXPECT_DOUBLE_EQ(parsed.value().mount_height, 1.73);
}

TEST(SensorConfigTest, InvalidConfigsRejected) {
  EXPECT_FALSE(SensorMetadata::FromConfigString("bogus_key 1\n").ok());
  EXPECT_FALSE(SensorMetadata::FromConfigString("r_max nope\n").ok());
  EXPECT_FALSE(
      SensorMetadata::FromConfigString("vertical_samples 0\n").ok());
  EXPECT_FALSE(SensorMetadata::FromConfigString(
                   "theta_min 1\ntheta_max -1\n")
                   .ok());
}

TEST(StreamCodecTest, MultiFrameRoundTrip) {
  const SceneGenerator gen(SceneType::kRoad);
  DbgcStreamWriter writer;
  std::vector<size_t> expected_sizes;
  for (uint32_t f = 0; f < 3; ++f) {
    const PointCloud full = gen.Generate(f);
    PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 12) pc.Add(full[i]);
    expected_sizes.push_back(pc.size());
    auto added = writer.AddFrame(pc);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
  EXPECT_EQ(writer.frame_count(), 3u);

  const ByteBuffer stream = writer.Finish();
  auto reader = DbgcStreamReader::Open(stream);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().frame_count(), 3u);
  // Random access: read the last frame first.
  for (size_t index : {2u, 0u, 1u}) {
    auto frame = reader.value().ReadFrame(index);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame.value().size(), expected_sizes[index]);
  }
  EXPECT_FALSE(reader.value().ReadFrame(3).ok());
}

TEST(StreamCodecTest, EmptyStream) {
  DbgcStreamWriter writer;
  const ByteBuffer stream = writer.Finish();
  auto reader = DbgcStreamReader::Open(stream);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().frame_count(), 0u);
}

TEST(StreamCodecTest, CorruptStreamRejected) {
  DbgcStreamWriter writer;
  ASSERT_TRUE(writer.AddFrame(SmallCloud(50, 3)).ok());
  ByteBuffer stream = writer.Finish();
  stream.mutable_bytes()[0] = 'X';
  EXPECT_FALSE(DbgcStreamReader::Open(stream).ok());
  // Truncated payload.
  ByteBuffer truncated = writer.Finish();
  truncated.mutable_bytes().resize(truncated.size() - 10);
  EXPECT_FALSE(DbgcStreamReader::Open(truncated).ok());
}

template <typename Store>
void ExerciseStore(Store* store) {
  ByteBuffer a, b;
  a.AppendUint32(0xAAAAAAAA);
  b.AppendUint64(0xBBBBBBBBBBBBBBBBULL);
  ASSERT_TRUE(store->Put(7, a).ok());
  ASSERT_TRUE(store->Put(3, b).ok());
  EXPECT_EQ(store->List(), (std::vector<uint64_t>{3, 7}));
  auto got = store->Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), a);
  EXPECT_FALSE(store->Get(99).ok());
  ASSERT_TRUE(store->Remove(7).ok());
  EXPECT_EQ(store->List(), (std::vector<uint64_t>{3}));
}

TEST(FrameStoreTest, MemoryStore) {
  MemoryFrameStore store;
  ExerciseStore(&store);
}

TEST(FrameStoreTest, FileStore) {
  const std::string dir = ::testing::TempDir() + "/dbgc_store_test";
  ::mkdir(dir.c_str(), 0755);
  FileFrameStore store(dir);
  ExerciseStore(&store);
  // Cleanup.
  for (uint64_t id : store.List()) EXPECT_TRUE(store.Remove(id).ok());
  ::rmdir(dir.c_str());
}

TEST(TcpTransportTest, LoopbackFrameExchange) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  const uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  ByteBuffer request;
  for (int i = 0; i < 100000; ++i) {
    request.AppendByte(static_cast<uint8_t>(i * 31));
  }
  ByteBuffer response;
  response.AppendUint64(42);

  std::thread server_thread([&] {
    auto conn = listener.Accept();
    ASSERT_TRUE(conn.ok());
    auto received = conn.value().ReceiveFrame();
    ASSERT_TRUE(received.ok());
    EXPECT_EQ(received.value(), request);
    ASSERT_TRUE(conn.value().SendFrame(response).ok());
  });

  auto client = TcpConnect(port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().SendFrame(request).ok());
  auto received = client.value().ReceiveFrame();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value(), response);
  server_thread.join();
}

TEST(TcpTransportTest, ReceiveAfterCloseFails) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  std::thread server_thread([&] {
    auto conn = listener.Accept();
    ASSERT_TRUE(conn.ok());
    conn.value().Close();  // Immediate EOF for the client.
  });
  auto client = TcpConnect(listener.port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client.value().ReceiveFrame().ok());
  server_thread.join();
}

TEST(TcpTransportTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close the listener, then try to connect.
  uint16_t dead_port;
  {
    TcpListener listener;
    ASSERT_TRUE(listener.Listen(0).ok());
    dead_port = listener.port();
  }
  EXPECT_FALSE(TcpConnect(dead_port).ok());
}

}  // namespace
}  // namespace dbgc
