// Structured fault injection over every registered codec and the network
// framing layer, using the tests/harness fault engine. Each valid stream
// fans out into byte-flip / truncation / splice / length-tamper / varint-
// overflow variants; every decoder must contain every variant (error
// Status or bounded output — never a crash, over-read, or unbounded
// allocation). Run under the DBGC_SANITIZE build to turn "no over-read"
// from a convention into a checked property.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/stream_codec.h"
#include "core/temporal_codec.h"
#include "harness/codec_registry.h"
#include "lidar/scene_generator.h"
#include "harness/corpus.h"
#include "harness/fault_injection.h"
#include "net/frame_protocol.h"
#include "obs/metrics.h"

namespace dbgc {
namespace {

using harness::AllRegisteredCodecs;
using harness::BuildFuzzCorpus;
using harness::CorpusCase;
using harness::ExpectDecodeContained;
using harness::FaultInjector;
using harness::InjectedFault;
using harness::kConformanceQ;
using harness::RegisteredCodec;

constexpr int kRoundsPerCase = 12;

TEST(FaultInjectionTest, AllCodecsContainAllFaultKinds) {
  const std::vector<CorpusCase> corpus = BuildFuzzCorpus();
  ASSERT_GE(corpus.size(), 2u);
  uint64_t seed = 20230316;
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    // Two valid streams per codec: the second donates splice suffixes, so
    // splices graft structurally valid but mutually inconsistent sections.
    auto first =
        registered.codec->Compress(corpus[0].cloud, kConformanceQ);
    auto second =
        registered.codec->Compress(corpus[1].cloud, kConformanceQ);
    ASSERT_TRUE(first.ok() && second.ok()) << registered.id;

    FaultInjector injector(seed++);
    for (const InjectedFault& fault :
         injector.AllFaults(first.value(), second.value(), kRoundsPerCase)) {
      ExpectDecodeContained(*registered.codec, fault.stream,
                            registered.id + ": " + fault.description);
      if (::testing::Test::HasFailure()) return;  // Don't flood on break.
    }
    // Exhaustive short truncations cover every header-parse state.
    const size_t short_limit =
        std::min<size_t>(first.value().size(), 160);
    for (size_t cut = 0; cut < short_limit; ++cut) {
      ExpectDecodeContained(
          *registered.codec, injector.Truncate(first.value(), cut),
          registered.id + ": header truncation at " + std::to_string(cut));
    }
  }
}

TEST(FaultInjectionTest, FrameProtocolRoundTripSurvivesFaults) {
  // A realistic frame: compressed payload behind the wire header.
  const std::vector<CorpusCase> corpus = BuildFuzzCorpus();
  const auto codecs = AllRegisteredCodecs();
  auto payload = codecs.front().codec->Compress(corpus[0].cloud,
                                                kConformanceQ);
  ASSERT_TRUE(payload.ok());

  Frame frame;
  frame.frame_id = 42;
  frame.payload = payload.value();
  const ByteBuffer wire = FrameProtocol::Serialize(frame);

  // Untouched wire bytes parse back bit-exactly.
  auto parsed = FrameProtocol::Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().frame_id, frame.frame_id);
  EXPECT_TRUE(parsed.value().payload == frame.payload);

  Frame other_frame;
  other_frame.frame_id = 43;
  other_frame.payload = harness::FaultInjector(1).ByteFlips(payload.value(), 4);
  const ByteBuffer other_wire = FrameProtocol::Serialize(other_frame);

  FaultInjector injector(7);
  // Truncation at every byte of the header region and sampled cuts beyond:
  // Parse must fail cleanly at every prefix length short of the full frame.
  for (size_t cut = 0; cut < wire.size(); cut += (cut < 64 ? 1 : 97)) {
    auto r = FrameProtocol::Parse(injector.Truncate(wire, cut));
    EXPECT_FALSE(r.ok()) << "truncated frame accepted at " << cut;
  }
  // Structured faults: an accepted parse must carry one of the two known
  // payloads (the checksum leaves no third possibility at these fault
  // rates) and stay bounded by the wire bytes it came from.
  for (const InjectedFault& fault :
       injector.AllFaults(wire, other_wire, 3 * kRoundsPerCase)) {
    auto r = FrameProtocol::Parse(fault.stream);
    if (!r.ok()) continue;
    EXPECT_LE(r.value().payload.size(), fault.stream.size());
    EXPECT_TRUE(r.value().payload == frame.payload ||
                r.value().payload == other_frame.payload)
        << "frame protocol accepted a corrupted payload ("
        << fault.description << ")";
  }
  // Single-byte payload flips specifically must always be rejected.
  for (int trial = 0; trial < 64; ++trial) {
    ByteBuffer corrupted = wire;
    const size_t pos = FrameProtocol::kHeaderBytes +
                       injector.rng().NextBounded(frame.payload.size());
    corrupted.mutable_bytes()[pos] ^= static_cast<uint8_t>(
        1 + injector.rng().NextBounded(255));
    EXPECT_FALSE(FrameProtocol::Parse(corrupted).ok())
        << "payload corruption at byte " << pos << " passed the checksum";
  }
}

TEST(FaultInjectionTest, StreamContainerContainsFaults) {
  // Multi-frame container (beyond the single-frame registry wrapper):
  // index tampering must not let ReadFrame reach outside the stream.
  const std::vector<CorpusCase> corpus = BuildFuzzCorpus();
  DbgcStreamWriter writer;
  ASSERT_TRUE(writer.AddFrame(corpus[0].cloud).ok());
  ASSERT_TRUE(writer.AddFrame(corpus[1].cloud).ok());
  const ByteBuffer stream = writer.Finish();

  FaultInjector injector(99);
  for (const InjectedFault& fault :
       injector.AllFaults(stream, stream, 2 * kRoundsPerCase)) {
    auto reader = DbgcStreamReader::Open(fault.stream);
    if (!reader.ok()) continue;
    for (size_t f = 0; f < reader.value().frame_count(); ++f) {
      auto decoded = reader.value().ReadFrame(f);
      if (decoded.ok()) {
        EXPECT_LE(decoded.value().size(), kMaxReasonableCount)
            << "stream container: " << fault.description;
      }
    }
  }
}

TEST(FaultInjectionTest, DecodeErrorsAreCountedExactlyOncePerFailure) {
  // Containment has an accounting contract (docs/OBSERVABILITY.md): every
  // failed Decompress increments decode_error_total{codec,reason} exactly
  // once, and a successful decode increments nothing. The registry is
  // process-global, so everything is asserted on deltas.
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with DBGC_OBS_OFF";
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::vector<CorpusCase> corpus = BuildFuzzCorpus();
  FaultInjector injector(4242);

  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    auto stream = registered.codec->Compress(corpus[0].cloud, kConformanceQ);
    ASSERT_TRUE(stream.ok()) << registered.id;
    const std::string prefix =
        obs::LabeledName("decode_error_total",
                         {{"codec", registered.codec->name()}});
    // LabeledName closes with '}' — strip it so the prefix matches every
    // reason label of this codec and no other codec's.
    const std::string codec_prefix = prefix.substr(0, prefix.size() - 1);

    // Success path: no error increment, no leak into other labels.
    {
      const uint64_t before =
          registry.SumCountersWithPrefix("decode_error_total");
      ASSERT_TRUE(registered.codec->Decompress(stream.value()).ok())
          << registered.id;
      EXPECT_EQ(registry.SumCountersWithPrefix("decode_error_total"), before)
          << registered.id << ": successful decode bumped an error counter";
    }

    // Failure path: each non-OK Decompress adds exactly one, under this
    // codec's label. Short truncations reliably fail header parsing.
    int failures_seen = 0;
    for (size_t cut : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
      if (cut >= stream.value().size()) continue;
      const ByteBuffer bad = injector.Truncate(stream.value(), cut);
      const uint64_t all_before =
          registry.SumCountersWithPrefix("decode_error_total");
      const uint64_t mine_before =
          registry.SumCountersWithPrefix(codec_prefix);
      auto decoded = registered.codec->Decompress(bad);
      const uint64_t all_after =
          registry.SumCountersWithPrefix("decode_error_total");
      const uint64_t mine_after =
          registry.SumCountersWithPrefix(codec_prefix);
      if (decoded.ok()) {
        EXPECT_EQ(all_after, all_before)
            << registered.id << ": contained-OK decode at cut " << cut
            << " bumped an error counter";
      } else {
        ++failures_seen;
        EXPECT_EQ(all_after, all_before + 1)
            << registered.id << ": cut " << cut
            << " must count exactly one decode error";
        EXPECT_EQ(mine_after, mine_before + 1)
            << registered.id << ": cut " << cut
            << " charged the wrong codec label";
      }
    }
    EXPECT_GT(failures_seen, 0)
        << registered.id << ": truncations never failed; the exactly-once "
        << "contract was not exercised";
  }
}

TEST(FaultInjectionTest, VersionByteMismatchCountedExactlyOnce) {
  // A bad container version byte is the earliest possible decode failure;
  // it must follow the same exactly-once accounting contract as every
  // later failure mode (docs/OBSERVABILITY.md, docs/ENTROPY.md).
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with DBGC_OBS_OFF";
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::vector<CorpusCase> corpus = BuildFuzzCorpus();
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    auto stream = registered.codec->Compress(corpus[0].cloud, kConformanceQ);
    ASSERT_TRUE(stream.ok()) << registered.id;
    ASSERT_FALSE(stream.value().empty());
    // 0x00 and 0x7F are never valid entropy version bytes.
    for (uint8_t bad_version : {uint8_t{0x00}, uint8_t{0x7F}}) {
      ByteBuffer relabeled = stream.value();
      relabeled.mutable_bytes()[0] = bad_version;
      const uint64_t before =
          registry.SumCountersWithPrefix("decode_error_total");
      auto decoded = registered.codec->Decompress(relabeled);
      EXPECT_FALSE(decoded.ok())
          << registered.id << ": version byte " << int{bad_version}
          << " accepted";
      EXPECT_EQ(registry.SumCountersWithPrefix("decode_error_total"),
                before + 1)
          << registered.id << ": version-byte mismatch must count exactly "
          << "one decode error";
    }
  }
}

TEST(FaultInjectionTest, TemporalFrameFaultsCountedExactlyOnce) {
  // The temporal decode path (docs/TEMPORAL.md) fails before any inner
  // DBGC decode on its two container-level headers — the frame-type byte
  // and the pose doubles — so each such failure must charge exactly one
  // decode_error_total{codec="Temporal", reason=...} increment, and a
  // successful decode none (docs/OBSERVABILITY.md).
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "built with DBGC_OBS_OFF";
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  const SensorMetadata sensor = SensorMetadata::VelodyneHdl64e(128);
  const SceneGenerator gen(SceneType::kCity);
  const std::vector<StreamFrame> drive =
      gen.GenerateSequence(2, SequenceConfig(), sensor);
  TemporalConfig config;
  config.sensor = sensor;
  TemporalEncoder encoder(config);
  auto i_packet = encoder.EncodeFrame(drive[0].cloud, drive[0].pose);
  auto p_packet = encoder.EncodeFrame(drive[1].cloud, drive[1].pose);
  ASSERT_TRUE(i_packet.ok() && p_packet.ok());

  const std::string prefix =
      obs::LabeledName("decode_error_total", {{"codec", "Temporal"}});
  const std::string codec_prefix = prefix.substr(0, prefix.size() - 1);
  TemporalDecoder decoder(DbgcOptions(), /*count_decode_errors=*/true);

  // Success path: I then P, no counter movement anywhere.
  {
    const uint64_t before =
        registry.SumCountersWithPrefix("decode_error_total");
    ASSERT_TRUE(decoder.DecodeFrame(i_packet.value()).ok());
    ASSERT_TRUE(decoder.DecodeFrame(p_packet.value()).ok());
    EXPECT_EQ(registry.SumCountersWithPrefix("decode_error_total"), before)
        << "successful temporal decode bumped an error counter";
  }

  struct FaultCase {
    std::string name;
    ByteBuffer packet;
  };
  std::vector<FaultCase> faults;
  {
    ByteBuffer bad_type = p_packet.value();
    bad_type.mutable_bytes()[0] = 0x7F;
    faults.push_back({"unknown frame-type byte", std::move(bad_type)});
  }
  {
    ByteBuffer bad_pose = i_packet.value();
    ByteBuffer nan;
    nan.AppendDouble(std::numeric_limits<double>::quiet_NaN());
    for (size_t b = 0; b < 8; ++b) bad_pose.mutable_bytes()[1 + b] = nan[b];
    faults.push_back({"NaN pose header", std::move(bad_pose)});
  }
  {
    ByteBuffer truncated;
    truncated.Append(i_packet.value().data(), 17);  // Mid-pose cut.
    faults.push_back({"pose header truncation", std::move(truncated)});
  }
  faults.push_back({"empty packet", ByteBuffer()});

  for (const FaultCase& fault : faults) {
    // Re-prime: each failure resets the decoder's reference.
    ASSERT_TRUE(decoder.DecodeFrame(i_packet.value()).ok());
    const uint64_t all_before =
        registry.SumCountersWithPrefix("decode_error_total");
    const uint64_t mine_before = registry.SumCountersWithPrefix(codec_prefix);
    auto decoded = decoder.DecodeFrame(fault.packet);
    ASSERT_FALSE(decoded.ok()) << fault.name;
    EXPECT_EQ(registry.SumCountersWithPrefix("decode_error_total"),
              all_before + 1)
        << fault.name << ": must count exactly one decode error";
    EXPECT_EQ(registry.SumCountersWithPrefix(codec_prefix), mine_before + 1)
        << fault.name << ": charged the wrong codec label";
    EXPECT_FALSE(decoder.has_reference())
        << fault.name << ": failed decode must drop the reference";
  }

  // A P-frame arriving after the loss-induced reset is a counted failure
  // too — the resynchronization wait is an error the fleet must see.
  {
    decoder.Reset();
    const uint64_t before = registry.SumCountersWithPrefix(codec_prefix);
    ASSERT_FALSE(decoder.DecodeFrame(p_packet.value()).ok());
    EXPECT_EQ(registry.SumCountersWithPrefix(codec_prefix), before + 1)
        << "P-without-reference must count exactly one decode error";
  }
}

}  // namespace
}  // namespace dbgc
