// Corruption fuzzing: every decoder must handle arbitrarily mutated
// bitstreams without crashing or attempting unbounded allocations - it
// either fails with a Status or returns a (possibly meaningless) cloud of
// plausible size. This is what the kMaxReasonableCount containment guards
// exist for.

#include <gtest/gtest.h>

#include <memory>

#include "codec/codec.h"
#include "codec/gpcc_like_codec.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"
#include "codec/range_image_codec.h"
#include "codec/raw_codec.h"
#include "common/rng.h"
#include "core/dbgc_codec.h"
#include "core/stream_codec.h"
#include "harness/fault_injection.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace {

PointCloud SmallFrame() {
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 40) pc.Add(full[i]);
  return pc;
}

// Applies `num_flips` random byte mutations.
ByteBuffer Mutate(const ByteBuffer& input, Rng* rng, int num_flips) {
  ByteBuffer out = input;
  for (int i = 0; i < num_flips; ++i) {
    const size_t pos = rng->NextBounded(out.size());
    out.mutable_bytes()[pos] ^= static_cast<uint8_t>(
        1 + rng->NextBounded(255));
  }
  return out;
}

void FuzzCodec(const GeometryCodec& codec, const PointCloud& pc,
               uint64_t seed) {
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok()) << codec.name();
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    const ByteBuffer mutated = Mutate(compressed.value(), &rng, flips);
    auto decoded = codec.Decompress(mutated);
    if (decoded.ok()) {
      // Whatever came out must be allocation-bounded.
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount) << codec.name();
    }
  }
  // Truncations at every eighth byte.
  for (size_t cut = 0; cut < compressed.value().size();
       cut += compressed.value().size() / 8 + 1) {
    ByteBuffer truncated;
    truncated.Append(compressed.value().data(), cut);
    auto decoded = codec.Decompress(truncated);
    if (decoded.ok()) {
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount) << codec.name();
    }
  }
}

TEST(FuzzCorruptionTest, DbgcSurvivesMutations) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  FuzzCodec(DbgcCodec(options), SmallFrame(), 11);
}

TEST(FuzzCorruptionTest, BaselinesSurviveMutations) {
  const PointCloud pc = SmallFrame();
  uint64_t seed = 100;
  for (auto& codec : MakeBaselineCodecs()) {
    FuzzCodec(*codec, pc, seed++);
  }
}

TEST(FuzzCorruptionTest, RawAndRangeImageSurviveMutations) {
  const PointCloud pc = SmallFrame();
  FuzzCodec(RawCodec(), pc, 200);
  FuzzCodec(RangeImageCodec(), pc, 201);
}

TEST(FuzzCorruptionTest, StreamReaderSurvivesMutations) {
  DbgcStreamWriter writer;
  ASSERT_TRUE(writer.AddFrame(SmallFrame()).ok());
  const ByteBuffer stream = writer.Finish();
  Rng rng(300);
  for (int trial = 0; trial < 40; ++trial) {
    const ByteBuffer mutated = Mutate(stream, &rng, 1 + trial % 5);
    auto reader = DbgcStreamReader::Open(mutated);
    if (!reader.ok()) continue;
    for (size_t f = 0; f < reader.value().frame_count(); ++f) {
      auto frame = reader.value().ReadFrame(f);
      if (frame.ok()) {
        ASSERT_LE(frame.value().size(), kMaxReasonableCount);
      }
    }
  }
}

// Deep per-codec corruption coverage for the tree codecs, whose decoders
// trust header-declared counts the most (the arithmetic decoder never
// fails on its own — it zero-extends past the stream end). Each codec gets
// its own test so a containment break attributes directly, and the
// structured fault engine adds splice / length-tamper / varint-overflow
// classes the plain byte-flip loop above cannot reach.
void DeepFuzzCodec(const GeometryCodec& codec, uint64_t seed) {
  const PointCloud pc = SmallFrame();
  const SceneGenerator gen(SceneType::kRoad);
  PointCloud other_pc;
  {
    const PointCloud full = gen.Generate(1);
    for (size_t i = 0; i < full.size(); i += 40) other_pc.Add(full[i]);
  }
  auto compressed = codec.Compress(pc, 0.02);
  auto other = codec.Compress(other_pc, 0.02);
  ASSERT_TRUE(compressed.ok() && other.ok()) << codec.name();

  harness::FaultInjector injector(seed);
  for (const harness::InjectedFault& fault :
       injector.AllFaults(compressed.value(), other.value(), 20)) {
    harness::ExpectDecodeContained(codec, fault.stream,
                                   codec.name() + ": " + fault.description);
  }
}

TEST(FuzzCorruptionTest, KdTreeSurvivesStructuredFaults) {
  DeepFuzzCodec(KdTreeCodec(), 500);
}

TEST(FuzzCorruptionTest, OctreeSurvivesStructuredFaults) {
  DeepFuzzCodec(OctreeCodec(), 501);
}

TEST(FuzzCorruptionTest, OctreeGroupedSurvivesStructuredFaults) {
  DeepFuzzCodec(OctreeGroupedCodec(), 502);
}

TEST(FuzzCorruptionTest, GpccLikeSurvivesStructuredFaults) {
  DeepFuzzCodec(GpccLikeCodec(), 503);
}

// The container's entropy version byte (docs/ENTROPY.md) is the very
// first decode decision; corrupting it must be contained like any other
// fault. Unknown version values must be rejected with a Status, and a
// *valid but wrong* version byte (a v2 payload relabeled v1, or vice
// versa) sends the payload to the wrong entropy decoder — which must
// still either fail or produce a bounded cloud, never crash.
TEST(FuzzCorruptionTest, VersionByteMismatchContained) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  const PointCloud pc = SmallFrame();
  for (EntropyBackend backend :
       {EntropyBackend::kArithmeticV1, EntropyBackend::kRangeV2}) {
    CompressParams params;
    params.q_xyz = 0.02;
    params.entropy_backend = backend;
    auto compressed = codec.Compress(pc, params);
    ASSERT_TRUE(compressed.ok());
    // Every possible value of the version byte, exhaustively.
    for (int v = 0; v < 256; ++v) {
      ByteBuffer relabeled = compressed.value();
      relabeled.mutable_bytes()[0] = static_cast<uint8_t>(v);
      auto decoded = codec.Decompress(relabeled);
      EntropyBackend parsed;
      if (!EntropyBackendFromVersionByte(static_cast<uint8_t>(v), &parsed)) {
        EXPECT_FALSE(decoded.ok())
            << "unknown entropy version byte " << v << " was accepted";
      } else if (decoded.ok()) {
        // Cross-backend decode that happens to parse: containment only.
        EXPECT_LE(decoded.value().size(), kMaxReasonableCount);
      }
    }
  }
}

// Byte-flip and truncation fuzzing specifically over range-coded (v2)
// and legacy (v1) streams: the default-backend fuzz above follows the
// session default, so pin both explicitly.
TEST(FuzzCorruptionTest, BothBackendStreamsSurviveMutations) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  const PointCloud pc = SmallFrame();
  uint64_t seed = 600;
  for (EntropyBackend backend :
       {EntropyBackend::kArithmeticV1, EntropyBackend::kRangeV2}) {
    CompressParams params;
    params.q_xyz = 0.02;
    params.entropy_backend = backend;
    auto compressed = codec.Compress(pc, params);
    ASSERT_TRUE(compressed.ok());
    Rng rng(seed++);
    for (int trial = 0; trial < 40; ++trial) {
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      const ByteBuffer mutated = Mutate(compressed.value(), &rng, flips);
      auto decoded = codec.Decompress(mutated);
      if (decoded.ok()) {
        ASSERT_LE(decoded.value().size(), kMaxReasonableCount)
            << "backend v" << static_cast<int>(backend);
      }
    }
    for (size_t cut = 0; cut < compressed.value().size();
         cut += compressed.value().size() / 16 + 1) {
      ByteBuffer truncated;
      truncated.Append(compressed.value().data(), cut);
      auto decoded = codec.Decompress(truncated);
      if (decoded.ok()) {
        ASSERT_LE(decoded.value().size(), kMaxReasonableCount)
            << "backend v" << static_cast<int>(backend) << " cut " << cut;
      }
    }
  }
}

TEST(FuzzCorruptionTest, PureGarbageRejectedQuickly) {
  Rng rng(400);
  DbgcOptions options;
  const DbgcCodec codec(options);
  for (int trial = 0; trial < 50; ++trial) {
    ByteBuffer garbage;
    const size_t n = 1 + rng.NextBounded(4096);
    for (size_t i = 0; i < n; ++i) {
      garbage.AppendByte(static_cast<uint8_t>(rng.NextBounded(256)));
    }
    auto decoded = codec.Decompress(garbage);
    // Random bytes essentially never carry the magic; decode must fail.
    EXPECT_FALSE(decoded.ok());
  }
}

}  // namespace
}  // namespace dbgc
