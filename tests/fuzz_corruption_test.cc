// Corruption fuzzing: every decoder must handle arbitrarily mutated
// bitstreams without crashing or attempting unbounded allocations - it
// either fails with a Status or returns a (possibly meaningless) cloud of
// plausible size. This is what the kMaxReasonableCount containment guards
// exist for.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "codec/codec.h"
#include "codec/gpcc_like_codec.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"
#include "codec/range_image_codec.h"
#include "codec/raw_codec.h"
#include "common/rng.h"
#include "core/dbgc_codec.h"
#include "core/stream_codec.h"
#include "core/temporal_codec.h"
#include "harness/codec_registry.h"
#include "harness/fault_injection.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace {

PointCloud SmallFrame() {
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud full = gen.Generate(0);
  PointCloud pc;
  for (size_t i = 0; i < full.size(); i += 40) pc.Add(full[i]);
  return pc;
}

// Applies `num_flips` random byte mutations.
ByteBuffer Mutate(const ByteBuffer& input, Rng* rng, int num_flips) {
  ByteBuffer out = input;
  for (int i = 0; i < num_flips; ++i) {
    const size_t pos = rng->NextBounded(out.size());
    out.mutable_bytes()[pos] ^= static_cast<uint8_t>(
        1 + rng->NextBounded(255));
  }
  return out;
}

void FuzzCodec(const GeometryCodec& codec, const PointCloud& pc,
               uint64_t seed) {
  auto compressed = codec.Compress(pc, 0.02);
  ASSERT_TRUE(compressed.ok()) << codec.name();
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    const ByteBuffer mutated = Mutate(compressed.value(), &rng, flips);
    auto decoded = codec.Decompress(mutated);
    if (decoded.ok()) {
      // Whatever came out must be allocation-bounded.
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount) << codec.name();
    }
  }
  // Truncations at every eighth byte.
  for (size_t cut = 0; cut < compressed.value().size();
       cut += compressed.value().size() / 8 + 1) {
    ByteBuffer truncated;
    truncated.Append(compressed.value().data(), cut);
    auto decoded = codec.Decompress(truncated);
    if (decoded.ok()) {
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount) << codec.name();
    }
  }
}

TEST(FuzzCorruptionTest, DbgcSurvivesMutations) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  FuzzCodec(DbgcCodec(options), SmallFrame(), 11);
}

TEST(FuzzCorruptionTest, BaselinesSurviveMutations) {
  const PointCloud pc = SmallFrame();
  uint64_t seed = 100;
  for (auto& codec : MakeBaselineCodecs()) {
    FuzzCodec(*codec, pc, seed++);
  }
}

TEST(FuzzCorruptionTest, RawAndRangeImageSurviveMutations) {
  const PointCloud pc = SmallFrame();
  FuzzCodec(RawCodec(), pc, 200);
  FuzzCodec(RangeImageCodec(), pc, 201);
}

TEST(FuzzCorruptionTest, StreamReaderSurvivesMutations) {
  DbgcStreamWriter writer;
  ASSERT_TRUE(writer.AddFrame(SmallFrame()).ok());
  const ByteBuffer stream = writer.Finish();
  Rng rng(300);
  for (int trial = 0; trial < 40; ++trial) {
    const ByteBuffer mutated = Mutate(stream, &rng, 1 + trial % 5);
    auto reader = DbgcStreamReader::Open(mutated);
    if (!reader.ok()) continue;
    for (size_t f = 0; f < reader.value().frame_count(); ++f) {
      auto frame = reader.value().ReadFrame(f);
      if (frame.ok()) {
        ASSERT_LE(frame.value().size(), kMaxReasonableCount);
      }
    }
  }
}

// Deep per-codec corruption coverage for the tree codecs, whose decoders
// trust header-declared counts the most (the arithmetic decoder never
// fails on its own — it zero-extends past the stream end). Each codec gets
// its own test so a containment break attributes directly, and the
// structured fault engine adds splice / length-tamper / varint-overflow
// classes the plain byte-flip loop above cannot reach.
void DeepFuzzCodec(const GeometryCodec& codec, uint64_t seed) {
  const PointCloud pc = SmallFrame();
  const SceneGenerator gen(SceneType::kRoad);
  PointCloud other_pc;
  {
    const PointCloud full = gen.Generate(1);
    for (size_t i = 0; i < full.size(); i += 40) other_pc.Add(full[i]);
  }
  auto compressed = codec.Compress(pc, 0.02);
  auto other = codec.Compress(other_pc, 0.02);
  ASSERT_TRUE(compressed.ok() && other.ok()) << codec.name();

  harness::FaultInjector injector(seed);
  for (const harness::InjectedFault& fault :
       injector.AllFaults(compressed.value(), other.value(), 20)) {
    harness::ExpectDecodeContained(codec, fault.stream,
                                   codec.name() + ": " + fault.description);
  }
}

TEST(FuzzCorruptionTest, KdTreeSurvivesStructuredFaults) {
  DeepFuzzCodec(KdTreeCodec(), 500);
}

TEST(FuzzCorruptionTest, OctreeSurvivesStructuredFaults) {
  DeepFuzzCodec(OctreeCodec(), 501);
}

TEST(FuzzCorruptionTest, OctreeGroupedSurvivesStructuredFaults) {
  DeepFuzzCodec(OctreeGroupedCodec(), 502);
}

TEST(FuzzCorruptionTest, GpccLikeSurvivesStructuredFaults) {
  DeepFuzzCodec(GpccLikeCodec(), 503);
}

// The container's entropy version byte (docs/ENTROPY.md) is the very
// first decode decision; corrupting it must be contained like any other
// fault. Unknown version values must be rejected with a Status, and a
// *valid but wrong* version byte (a v2 payload relabeled v1, or vice
// versa) sends the payload to the wrong entropy decoder — which must
// still either fail or produce a bounded cloud, never crash.
TEST(FuzzCorruptionTest, VersionByteMismatchContained) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  const PointCloud pc = SmallFrame();
  for (EntropyBackend backend :
       {EntropyBackend::kArithmeticV1, EntropyBackend::kRangeV2}) {
    CompressParams params;
    params.q_xyz = 0.02;
    params.entropy_backend = backend;
    auto compressed = codec.Compress(pc, params);
    ASSERT_TRUE(compressed.ok());
    // Every possible value of the version byte, exhaustively.
    for (int v = 0; v < 256; ++v) {
      ByteBuffer relabeled = compressed.value();
      relabeled.mutable_bytes()[0] = static_cast<uint8_t>(v);
      auto decoded = codec.Decompress(relabeled);
      EntropyBackend parsed;
      if (!EntropyBackendFromVersionByte(static_cast<uint8_t>(v), &parsed)) {
        EXPECT_FALSE(decoded.ok())
            << "unknown entropy version byte " << v << " was accepted";
      } else if (decoded.ok()) {
        // Cross-backend decode that happens to parse: containment only.
        EXPECT_LE(decoded.value().size(), kMaxReasonableCount);
      }
    }
  }
}

// Byte-flip and truncation fuzzing specifically over range-coded (v2)
// and legacy (v1) streams: the default-backend fuzz above follows the
// session default, so pin both explicitly.
TEST(FuzzCorruptionTest, BothBackendStreamsSurviveMutations) {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  const PointCloud pc = SmallFrame();
  uint64_t seed = 600;
  for (EntropyBackend backend :
       {EntropyBackend::kArithmeticV1, EntropyBackend::kRangeV2}) {
    CompressParams params;
    params.q_xyz = 0.02;
    params.entropy_backend = backend;
    auto compressed = codec.Compress(pc, params);
    ASSERT_TRUE(compressed.ok());
    Rng rng(seed++);
    for (int trial = 0; trial < 40; ++trial) {
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      const ByteBuffer mutated = Mutate(compressed.value(), &rng, flips);
      auto decoded = codec.Decompress(mutated);
      if (decoded.ok()) {
        ASSERT_LE(decoded.value().size(), kMaxReasonableCount)
            << "backend v" << static_cast<int>(backend);
      }
    }
    for (size_t cut = 0; cut < compressed.value().size();
         cut += compressed.value().size() / 16 + 1) {
      ByteBuffer truncated;
      truncated.Append(compressed.value().data(), cut);
      auto decoded = codec.Decompress(truncated);
      if (decoded.ok()) {
        ASSERT_LE(decoded.value().size(), kMaxReasonableCount)
            << "backend v" << static_cast<int>(backend) << " cut " << cut;
      }
    }
  }
}

// --- Temporal I/P codec (docs/TEMPORAL.md) --------------------------------
//
// The temporal decoder adds two attack surfaces the intra codecs lack: the
// frame-type byte that selects the decode path, and the pose header whose
// doubles steer ego-motion compensation. Both are decoded before any
// entropy state exists, so they get their own exhaustive corruption tests
// on top of the generic mutation/structured-fault sweeps.

struct TemporalFixture {
  ByteBuffer i_packet;
  ByteBuffer p_packet;
  ByteBuffer stream;  // Two-frame DBGT container holding the same packets.
};

TemporalFixture MakeTemporalFixture() {
  const SensorMetadata sensor = SensorMetadata::VelodyneHdl64e(128);
  const SceneGenerator gen(SceneType::kCity);
  const std::vector<StreamFrame> drive =
      gen.GenerateSequence(2, SequenceConfig(), sensor);
  TemporalConfig config;
  config.sensor = sensor;
  TemporalFixture fixture;
  {
    TemporalEncoder encoder(config);
    auto i = encoder.EncodeFrame(drive[0].cloud, drive[0].pose);
    auto p = encoder.EncodeFrame(drive[1].cloud, drive[1].pose);
    EXPECT_TRUE(i.ok() && p.ok());
    fixture.i_packet = std::move(i.value());
    fixture.p_packet = std::move(p.value());
  }
  {
    TemporalStreamWriter writer(config);
    EXPECT_TRUE(writer.AddFrame(drive[0].cloud, drive[0].pose).ok());
    EXPECT_TRUE(writer.AddFrame(drive[1].cloud, drive[1].pose).ok());
    fixture.stream = writer.Finish();
  }
  return fixture;
}

// A decoder with a live reference, ready to accept the P-frame.
TemporalDecoder PrimedDecoder(const TemporalFixture& fixture) {
  TemporalDecoder decoder(DbgcOptions(), /*count_decode_errors=*/false);
  EXPECT_TRUE(decoder.DecodeFrame(fixture.i_packet).ok());
  return decoder;
}

TEST(FuzzCorruptionTest, TemporalFrameTypeByteExhaustivelyContained) {
  const TemporalFixture fixture = MakeTemporalFixture();
  for (int v = 0; v < 256; ++v) {
    TemporalDecoder decoder = PrimedDecoder(fixture);
    ByteBuffer tampered = fixture.p_packet;
    tampered.mutable_bytes()[0] = static_cast<uint8_t>(v);
    auto decoded = decoder.DecodeFrame(tampered);
    if (!IsTemporalFrameType(static_cast<uint8_t>(v))) {
      // Unknown type values fail closed, never fall through to a guess.
      ASSERT_FALSE(decoded.ok()) << "frame-type byte " << v << " accepted";
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption) << v;
    } else if (decoded.ok()) {
      // 'P' is the original packet; a relabel to 'I' sends the P payload
      // to the DBGC decoder, which must contain it like any other garbage.
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount) << v;
    }
  }
}

TEST(FuzzCorruptionTest, TemporalPoseHeaderCorruptionContained) {
  const TemporalFixture fixture = MakeTemporalFixture();
  // The pose header is bytes [1, 33): four little-endian doubles. Splice
  // in the classic hostile values; non-finite or absurd poses must be
  // rejected outright on both frame types.
  const double hostile[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            1e300, -1e300};
  for (const ByteBuffer* packet : {&fixture.i_packet, &fixture.p_packet}) {
    for (double bad : hostile) {
      for (int slot = 0; slot < 4; ++slot) {
        ByteBuffer tampered = *packet;
        ByteBuffer encoded;
        encoded.AppendDouble(bad);
        for (size_t b = 0; b < 8; ++b) {
          tampered.mutable_bytes()[1 + slot * 8 + b] = encoded[b];
        }
        TemporalDecoder decoder = PrimedDecoder(fixture);
        auto decoded = decoder.DecodeFrame(tampered);
        ASSERT_FALSE(decoded.ok())
            << "pose slot " << slot << " value " << bad << " accepted";
        EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
      }
    }
  }
  // Random byte flips inside the pose region: a flip that still parses as
  // a sane pose shifts the prediction, which the radial channels must
  // either absorb (bounded output) or reject — never crash.
  Rng rng(700);
  for (int trial = 0; trial < 64; ++trial) {
    ByteBuffer tampered = fixture.p_packet;
    const size_t pos = 1 + rng.NextBounded(32);
    tampered.mutable_bytes()[pos] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
    TemporalDecoder decoder = PrimedDecoder(fixture);
    auto decoded = decoder.DecodeFrame(tampered);
    if (decoded.ok()) {
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount);
    }
  }
}

TEST(FuzzCorruptionTest, TemporalPacketsSurviveMutationsAndTruncation) {
  const TemporalFixture fixture = MakeTemporalFixture();
  Rng rng(701);
  for (int trial = 0; trial < 60; ++trial) {
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    const ByteBuffer mutated = Mutate(fixture.p_packet, &rng, flips);
    TemporalDecoder decoder = PrimedDecoder(fixture);
    auto decoded = decoder.DecodeFrame(mutated);
    if (decoded.ok()) {
      ASSERT_LE(decoded.value().size(), kMaxReasonableCount);
    }
  }
  for (size_t cut = 0; cut < fixture.p_packet.size();
       cut += fixture.p_packet.size() / 32 + 1) {
    ByteBuffer truncated;
    truncated.Append(fixture.p_packet.data(), cut);
    TemporalDecoder decoder = PrimedDecoder(fixture);
    auto decoded = decoder.DecodeFrame(truncated);
    ASSERT_FALSE(decoded.ok()) << "truncated P-frame accepted at " << cut;
  }
}

TEST(FuzzCorruptionTest, TemporalStreamReaderSurvivesMutations) {
  const TemporalFixture fixture = MakeTemporalFixture();
  Rng rng(702);
  for (int trial = 0; trial < 40; ++trial) {
    const ByteBuffer mutated = Mutate(fixture.stream, &rng, 1 + trial % 5);
    auto reader = TemporalStreamReader::Open(mutated);
    if (!reader.ok()) continue;
    for (size_t f = 0; f < reader.value().frame_count(); ++f) {
      auto decoded = reader.value().DecodeNext();
      if (decoded.ok()) {
        ASSERT_LE(decoded.value().size(), kMaxReasonableCount);
      }
    }
  }
}

TEST(FuzzCorruptionTest, TemporalSurvivesStructuredFaults) {
  // Splice / length-tamper / varint-overflow coverage via the registry
  // wrapper, same engine as the tree codecs above.
  for (const harness::RegisteredCodec& registered :
       harness::AllRegisteredCodecs()) {
    if (registered.id != "temporal") continue;
    DeepFuzzCodec(*registered.codec, 504);
  }
}

TEST(FuzzCorruptionTest, PureGarbageRejectedQuickly) {
  Rng rng(400);
  DbgcOptions options;
  const DbgcCodec codec(options);
  for (int trial = 0; trial < 50; ++trial) {
    ByteBuffer garbage;
    const size_t n = 1 + rng.NextBounded(4096);
    for (size_t i = 0; i < n; ++i) {
      garbage.AppendByte(static_cast<uint8_t>(rng.NextBounded(256)));
    }
    auto decoded = codec.Decompress(garbage);
    // Random bytes essentially never carry the magic; decode must fail.
    EXPECT_FALSE(decoded.ok());
  }
}

}  // namespace
}  // namespace dbgc
