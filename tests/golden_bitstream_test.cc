// Golden bitstream vault: pins the on-wire format of every registered
// codec. Each corpus case's compressed output is hashed and compared
// against the committed vault under tests/golden/; any codec change that
// alters even one output byte fails here, with a message separating
// "format changed intentionally -> regenerate" from "regression".
//
// Regeneration: DBGC_REGEN_GOLDEN=1 ctest -R GoldenBitstream
// (then commit the rewritten tests/golden/*.golden files).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/thread_pool.h"
#include "core/temporal_codec.h"
#include "harness/codec_registry.h"
#include "harness/corpus.h"
#include "harness/golden.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace {

using harness::AllRegisteredCodecs;
using harness::BuildConformanceCorpus;
using harness::CorpusCase;
using harness::GoldenEntry;
using harness::RegisteredCodec;

class GoldenBitstreamTest : public ::testing::Test {
 protected:
  // The corpus is expensive to generate; share it across all codec cases.
  static const std::vector<CorpusCase>& Corpus() {
    static const std::vector<CorpusCase>* corpus =
        new std::vector<CorpusCase>(BuildConformanceCorpus());
    return *corpus;
  }

  static std::vector<GoldenEntry> ComputeEntries(
      const RegisteredCodec& registered) {
    std::vector<GoldenEntry> entries;
    for (const CorpusCase& c : Corpus()) {
      auto compressed =
          registered.codec->Compress(c.cloud, harness::kConformanceQ);
      EXPECT_TRUE(compressed.ok())
          << registered.id << "/" << c.id << ": "
          << compressed.status().ToString();
      if (!compressed.ok()) continue;
      GoldenEntry e;
      e.case_id = c.id;
      e.size = compressed.value().size();
      e.hash = harness::HashHex(compressed.value());
      entries.push_back(std::move(e));
    }
    return entries;
  }

  static void CheckCodec(const RegisteredCodec& registered) {
    const std::vector<GoldenEntry> actual = ComputeEntries(registered);
    const std::string path = harness::GoldenPath(registered.id);

    if (harness::RegenRequested()) {
      const Status st = harness::WriteGoldenFile(path, actual);
      ASSERT_TRUE(st.ok()) << st.ToString();
      GTEST_LOG_(INFO) << "regenerated " << path;
      return;
    }

    auto golden = harness::LoadGoldenFile(path);
    ASSERT_TRUE(golden.ok())
        << "No golden vault for codec '" << registered.id << "' ("
        << golden.status().ToString()
        << ").\nGenerate one with: DBGC_REGEN_GOLDEN=1 "
           "ctest -R GoldenBitstream, then commit tests/golden/.";

    std::map<std::string, GoldenEntry> expected;
    for (const GoldenEntry& e : golden.value()) expected[e.case_id] = e;

    ASSERT_EQ(actual.size(), expected.size())
        << registered.id << ": corpus has " << actual.size()
        << " cases but the golden file pins " << expected.size()
        << ". If the corpus definition changed intentionally, regenerate "
           "with DBGC_REGEN_GOLDEN=1; otherwise corpus determinism broke.";

    for (const GoldenEntry& e : actual) {
      auto it = expected.find(e.case_id);
      ASSERT_NE(it, expected.end())
          << registered.id << ": case '" << e.case_id
          << "' missing from golden vault; regenerate with "
             "DBGC_REGEN_GOLDEN=1 if the corpus changed intentionally.";
      EXPECT_TRUE(e.hash == it->second.hash && e.size == it->second.size)
          << "BITSTREAM FORMAT CHANGE for codec '" << registered.id
          << "', case '" << e.case_id << "':\n  golden: size "
          << it->second.size << ", hash " << it->second.hash
          << "\n  actual: size " << e.size << ", hash " << e.hash
          << "\nIf this PR intentionally changes the " << registered.id
          << " wire format, regenerate the vault (DBGC_REGEN_GOLDEN=1 "
             "ctest -R GoldenBitstream) and commit tests/golden/ with a "
             "note in the PR description. If not, this is a format "
             "regression: the codec now emits different bytes for the "
             "same input and existing stored streams may not decode.";
    }
  }
};

TEST_F(GoldenBitstreamTest, AllCodecsMatchVault) {
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    SCOPED_TRACE(registered.id);
    CheckCodec(registered);
  }
}

// Back-compat vault for the legacy entropy backend: compressing with
// entropy_backend = kArithmeticV1 must keep emitting the exact bytes
// pinned in tests/golden/<id>.v1.golden, and every v1 stream must still
// decode — to the same cloud the default (v2 range coder) stream yields.
// This is the guarantee that flipping the default backend never strands
// stored v1 bitstreams (docs/ENTROPY.md).
TEST_F(GoldenBitstreamTest, V1BackendStreamsStayPinnedAndDecodable) {
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    SCOPED_TRACE(registered.id);
    std::vector<GoldenEntry> actual;
    for (const CorpusCase& c : Corpus()) {
      SCOPED_TRACE(c.id);
      CompressParams v1_params;
      v1_params.q_xyz = harness::kConformanceQ;
      v1_params.entropy_backend = EntropyBackend::kArithmeticV1;
      auto v1 = registered.codec->Compress(c.cloud, v1_params);
      ASSERT_TRUE(v1.ok()) << v1.status().ToString();
      ASSERT_FALSE(v1.value().empty());
      EXPECT_EQ(v1.value()[0],
                EntropyVersionByte(EntropyBackend::kArithmeticV1))
          << "container version byte must record the v1 backend";

      // The decoder dispatches on the version byte alone: no params hint.
      auto v1_cloud = registered.codec->Decompress(v1.value());
      ASSERT_TRUE(v1_cloud.ok())
          << "v1 stream no longer decodes: " << v1_cloud.status().ToString();
      auto v2 = registered.codec->Compress(c.cloud, harness::kConformanceQ);
      ASSERT_TRUE(v2.ok()) << v2.status().ToString();
      auto v2_cloud = registered.codec->Decompress(v2.value());
      ASSERT_TRUE(v2_cloud.ok()) << v2_cloud.status().ToString();
      EXPECT_TRUE(v1_cloud.value().points() == v2_cloud.value().points())
          << "v1 and v2 streams reconstruct different clouds";

      GoldenEntry e;
      e.case_id = c.id;
      e.size = v1.value().size();
      e.hash = harness::HashHex(v1.value());
      actual.push_back(std::move(e));
    }

    const std::string path = harness::GoldenPath(registered.id + ".v1");
    if (harness::RegenRequested()) {
      const Status st = harness::WriteGoldenFile(path, actual);
      ASSERT_TRUE(st.ok()) << st.ToString();
      GTEST_LOG_(INFO) << "regenerated " << path;
      continue;
    }
    auto golden = harness::LoadGoldenFile(path);
    ASSERT_TRUE(golden.ok())
        << "No v1 golden vault for codec '" << registered.id << "' ("
        << golden.status().ToString()
        << "). Generate with DBGC_REGEN_GOLDEN=1 ctest -R GoldenBitstream.";
    std::map<std::string, GoldenEntry> expected;
    for (const GoldenEntry& e : golden.value()) expected[e.case_id] = e;
    ASSERT_EQ(actual.size(), expected.size()) << registered.id;
    for (const GoldenEntry& e : actual) {
      auto it = expected.find(e.case_id);
      ASSERT_NE(it, expected.end()) << registered.id << "/" << e.case_id;
      EXPECT_TRUE(e.hash == it->second.hash && e.size == it->second.size)
          << "LEGACY v1 FORMAT DRIFT for codec '" << registered.id
          << "', case '" << e.case_id << "': the arithmetic (v1) backend "
          << "must stay frozen so stored v1 streams remain decodable.\n"
          << "  golden: size " << it->second.size << ", hash "
          << it->second.hash << "\n  actual: size " << e.size << ", hash "
          << e.hash;
    }
  }
}

// The vault must catch a single flipped byte: this is the sensitivity
// guarantee the whole scheme rests on.
TEST_F(GoldenBitstreamTest, HashCatchesSingleByteChange) {
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    auto compressed =
        registered.codec->Compress(Corpus().front().cloud,
                                   harness::kConformanceQ);
    ASSERT_TRUE(compressed.ok()) << registered.id;
    ByteBuffer tampered = compressed.value();
    ASSERT_FALSE(tampered.empty()) << registered.id;
    tampered.mutable_bytes()[tampered.size() / 2] ^= 0x01;
    EXPECT_NE(harness::HashHex(compressed.value()),
              harness::HashHex(tampered))
        << registered.id << ": hash failed to detect a one-byte change";
  }
}

// Compressing the same corpus twice in one process must be bit-identical;
// this is the in-process half of the clean-build determinism guarantee.
TEST_F(GoldenBitstreamTest, CompressionIsDeterministic) {
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    const CorpusCase& c = Corpus()[1];
    auto first = registered.codec->Compress(c.cloud, harness::kConformanceQ);
    auto second = registered.codec->Compress(c.cloud, harness::kConformanceQ);
    ASSERT_TRUE(first.ok() && second.ok()) << registered.id;
    EXPECT_TRUE(first.value() == second.value())
        << registered.id << ": nondeterministic compression on " << c.id;
  }
}

// The thread-count half of the determinism guarantee
// (docs/PARALLELISM.md): every codec must emit the serial golden bytes
// under any thread budget. Budgets 1, 2 and 8 on an 8-worker pool cover
// the serial path, a partial budget, and full width.
TEST_F(GoldenBitstreamTest, BitstreamInvariantUnderThreadCount) {
  ThreadPool pool(8);
  for (const RegisteredCodec& registered : AllRegisteredCodecs()) {
    SCOPED_TRACE(registered.id);
    for (const CorpusCase& c : Corpus()) {
      auto serial =
          registered.codec->Compress(c.cloud, harness::kConformanceQ);
      ASSERT_TRUE(serial.ok()) << c.id << ": " << serial.status().ToString();
      for (int budget : {1, 2, 8}) {
        CompressParams params;
        params.q_xyz = harness::kConformanceQ;
        params.pool = &pool;
        params.max_threads = budget;
        auto parallel = registered.codec->Compress(c.cloud, params);
        ASSERT_TRUE(parallel.ok())
            << c.id << " @" << budget << " threads: "
            << parallel.status().ToString();
        ASSERT_TRUE(parallel.value() == serial.value())
            << "BITSTREAM DEPENDS ON THREAD COUNT for codec '"
            << registered.id << "', case '" << c.id << "' at budget "
            << budget << ": parallel size " << parallel.value().size()
            << " vs serial size " << serial.value().size()
            << ". Parallel stages must write disjoint pre-sized shards "
               "merged in deterministic order (docs/PARALLELISM.md).";
      }
    }
  }
}

// Golden stream vault for the temporal I/P codec: a short coherent drive
// through every scene family is encoded into one "DBGT" stream and its
// bytes pinned in tests/golden/<scene>.temporal.golden. P-frame bits
// depend on the closed prediction loop, so this also freezes the
// reference-reconstruction arithmetic end to end. Thread budgets 1/2/8
// must reproduce the serial bytes before hashing — the same determinism
// contract the per-codec vault enforces.
TEST_F(GoldenBitstreamTest, TemporalSequenceVault) {
  ThreadPool pool(8);
  const SensorMetadata sensor = SensorMetadata::VelodyneHdl64e(512);
  for (SceneType type : AllSceneTypes()) {
    const std::string scene = SceneTypeName(type);
    SCOPED_TRACE(scene);
    SceneGenerator generator(type);
    const std::vector<StreamFrame> drive =
        generator.GenerateSequence(4, SequenceConfig(), sensor);

    TemporalConfig config;
    config.keyframe_interval = 3;  // Exercises I, P, and the I-resync.
    config.sensor = sensor;
    config.intra_options.q_xyz = harness::kConformanceQ;

    auto encode = [&](ThreadPool* p, int budget) {
      TemporalStreamWriter writer(config);
      for (const StreamFrame& frame : drive) {
        CompressParams params;
        params.q_xyz = harness::kConformanceQ;
        params.pool = p;
        params.max_threads = budget;
        auto added = writer.AddFrame(frame.cloud, frame.pose, params);
        EXPECT_TRUE(added.ok()) << added.status().ToString();
      }
      return writer.Finish();
    };

    const ByteBuffer serial = encode(nullptr, 0);
    for (int budget : {1, 2, 8}) {
      ASSERT_TRUE(encode(&pool, budget) == serial)
          << "TEMPORAL BITSTREAM DEPENDS ON THREAD COUNT for scene '"
          << scene << "' at budget " << budget;
    }

    std::vector<GoldenEntry> actual;
    GoldenEntry e;
    e.case_id = "drive4.key3";
    e.size = serial.size();
    e.hash = harness::HashHex(serial);
    actual.push_back(std::move(e));

    const std::string path = harness::GoldenPath(scene + ".temporal");
    if (harness::RegenRequested()) {
      const Status st = harness::WriteGoldenFile(path, actual);
      ASSERT_TRUE(st.ok()) << st.ToString();
      GTEST_LOG_(INFO) << "regenerated " << path;
      continue;
    }
    auto golden = harness::LoadGoldenFile(path);
    ASSERT_TRUE(golden.ok())
        << "No temporal golden vault for scene '" << scene << "' ("
        << golden.status().ToString()
        << "). Generate with DBGC_REGEN_GOLDEN=1 ctest -R GoldenBitstream.";
    ASSERT_EQ(golden.value().size(), actual.size()) << scene;
    const GoldenEntry& pinned = golden.value().front();
    ASSERT_EQ(pinned.case_id, actual.front().case_id) << scene;
    EXPECT_TRUE(pinned.hash == actual.front().hash &&
                pinned.size == actual.front().size)
        << "TEMPORAL STREAM FORMAT CHANGE for scene '" << scene
        << "':\n  golden: size " << pinned.size << ", hash " << pinned.hash
        << "\n  actual: size " << actual.front().size << ", hash "
        << actual.front().hash
        << "\nIf this PR intentionally changes the DBGT wire format or the "
           "prediction loop, regenerate (DBGC_REGEN_GOLDEN=1 ctest -R "
           "GoldenBitstream) and commit tests/golden/. Otherwise stored "
           "temporal streams may no longer decode bit-exactly.";
  }
}

}  // namespace
}  // namespace dbgc
