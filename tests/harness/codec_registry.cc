#include "harness/codec_registry.h"

#include <utility>

#include "codec/gpcc_like_codec.h"
#include "codec/kdtree_codec.h"
#include "codec/octree_codec.h"
#include "codec/octree_grouped_codec.h"
#include "codec/range_image_codec.h"
#include "codec/raw_codec.h"
#include "core/dbgc_codec.h"
#include "core/stream_codec.h"
#include "core/temporal_codec.h"

namespace dbgc {
namespace harness {

namespace {

// DBGC options tuned like the fuzzing suite: the conformance corpus is
// subsampled, so the density threshold must scale down with it for the
// dense/sparse split to engage at all.
DbgcOptions ConformanceDbgcOptions() {
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  return options;
}

// Adapts the multi-frame stream container to the GeometryCodec interface:
// one frame per stream. This puts the stream header, frame index, and
// per-frame payload layout under the same golden/differential/fault
// coverage as the single-frame codecs.
class StreamFrameCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Stream"; }

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override {
    DbgcOptions options = ConformanceDbgcOptions();
    options.q_xyz = params.q_xyz;
    DbgcStreamWriter writer(options);
    // Forward params so thread budget and entropy backend reach the frame.
    DBGC_ASSIGN_OR_RETURN(size_t bytes, writer.AddFrame(pc, params));
    (void)bytes;
    return writer.Finish();
  }

  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override {
    (void)params;
    DBGC_ASSIGN_OR_RETURN(DbgcStreamReader reader,
                          DbgcStreamReader::Open(buffer));
    if (reader.frame_count() != 1) {
      return Status::Corruption("stream conformance: expected one frame");
    }
    return reader.ReadFrame(0);
  }
};

// Adapts the temporal I/P stream container ("DBGT") to the GeometryCodec
// interface: one frame per stream, which is always an I-frame. This puts
// the container framing — frame-type byte, pose header, frame index —
// under the same golden/differential/fault coverage as the intra codecs;
// P-frame prediction itself is covered by tests/temporal_stream_test.cc.
class TemporalFrameCodec : public GeometryCodec {
 public:
  std::string name() const override { return "Temporal"; }

 protected:
  Result<ByteBuffer> CompressImpl(const PointCloud& pc,
                                  const CompressParams& params) const override {
    TemporalConfig config;
    config.intra_options = ConformanceDbgcOptions();
    config.intra_options.q_xyz = params.q_xyz;
    TemporalStreamWriter writer(config);
    DBGC_ASSIGN_OR_RETURN(size_t bytes,
                          writer.AddFrame(pc, RigidTransform(), params));
    (void)bytes;
    return writer.Finish();
  }

  Result<PointCloud> DecompressImpl(
      const ByteBuffer& buffer, const DecompressParams& params) const override {
    DBGC_ASSIGN_OR_RETURN(
        TemporalStreamReader reader,
        TemporalStreamReader::Open(buffer, ConformanceDbgcOptions()));
    if (reader.frame_count() != 1) {
      return Status::Corruption("temporal conformance: expected one frame");
    }
    return reader.DecodeNext(params);
  }
};

}  // namespace

std::vector<RegisteredCodec> AllRegisteredCodecs() {
  std::vector<RegisteredCodec> codecs;

  // Octree-family codecs approximate points by leaf centers of side 2q:
  // per-dimension error <= q, Euclidean error <= sqrt(3) q ~= 1.74 q.
  CodecTraits octree_traits;
  octree_traits.error_factor = 1.8;

  CodecTraits dbgc_traits;
  dbgc_traits.error_factor = 2.0;  // Small slack over the paper's q bound.

  CodecTraits raw_traits;
  raw_traits.error_factor = 0.05;  // Float rounding only.
  raw_traits.max_expansion = 1.1;  // 12 bytes/point + 8-byte header.

  // Range image resamples onto the sensor grid: per-cell collapse and
  // angular quantization make the error scale with range, not q. Judge it
  // by reconstruction PSNR instead.
  CodecTraits range_traits;
  range_traits.preserves_count = false;
  range_traits.bounded_error = false;
  range_traits.min_d1_psnr = 20.0;

  CodecTraits stream_traits = dbgc_traits;
  stream_traits.max_expansion = 2.0;

  codecs.push_back({"dbgc",
                    std::make_unique<DbgcCodec>(ConformanceDbgcOptions()),
                    dbgc_traits});
  codecs.push_back({"octree", std::make_unique<OctreeCodec>(),
                    octree_traits});
  codecs.push_back({"octree_grouped", std::make_unique<OctreeGroupedCodec>(),
                    octree_traits});
  codecs.push_back({"kdtree", std::make_unique<KdTreeCodec>(),
                    octree_traits});
  codecs.push_back({"gpcc_like", std::make_unique<GpccLikeCodec>(),
                    octree_traits});
  codecs.push_back({"range_image", std::make_unique<RangeImageCodec>(),
                    range_traits});
  codecs.push_back({"raw", std::make_unique<RawCodec>(), raw_traits});
  codecs.push_back({"stream", std::make_unique<StreamFrameCodec>(),
                    stream_traits});
  codecs.push_back({"temporal", std::make_unique<TemporalFrameCodec>(),
                    stream_traits});
  return codecs;
}

}  // namespace harness
}  // namespace dbgc
