// Registry of every geometry codec under conformance testing, with the
// per-codec traits the differential oracle needs to know which checks
// apply (count preservation, error bounds, size sanity).
//
// The registry is the single enumeration point for the golden-bitstream
// vault, the differential oracle, and the fault-injection suites: adding a
// codec here automatically puts it under all three.

#ifndef DBGC_TESTS_HARNESS_CODEC_REGISTRY_H_
#define DBGC_TESTS_HARNESS_CODEC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "codec/codec.h"

namespace dbgc {
namespace harness {

/// What the differential oracle may assume about a codec's reconstruction.
struct CodecTraits {
  /// Decompress(Compress(PC, q)) has exactly |PC| points.
  bool preserves_count = true;
  /// Max nearest-neighbour Euclidean error is bounded by
  /// error_factor * q_xyz.
  bool bounded_error = true;
  double error_factor = 2.0;
  /// When bounded_error is false (resampling codecs), require at least this
  /// D1 PSNR in dB instead; 0 disables the check.
  double min_d1_psnr = 0.0;
  /// |B| must not exceed max_expansion * raw bytes (12 per point) plus a
  /// small constant header allowance.
  double max_expansion = 2.0;
};

/// One codec under conformance.
struct RegisteredCodec {
  /// Stable identifier; names the golden file (tests/golden/<id>.golden).
  std::string id;
  std::unique_ptr<GeometryCodec> codec;
  CodecTraits traits;
};

/// All eight registered codecs: dbgc, octree, octree_grouped, kdtree,
/// gpcc_like, range_image, raw, stream.
std::vector<RegisteredCodec> AllRegisteredCodecs();

/// The error bound every conformance suite compresses under (meters).
constexpr double kConformanceQ = 0.02;

}  // namespace harness
}  // namespace dbgc

#endif  // DBGC_TESTS_HARNESS_CODEC_REGISTRY_H_
