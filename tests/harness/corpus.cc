#include "harness/corpus.h"

namespace dbgc {
namespace harness {

namespace {

// Sparsity tiers: stride over the generated frame. Tiers exercise the
// dense/sparse split differently — at stride 8 DBGC still finds dense
// clusters; at stride 96 nearly everything is sparse/outlier.
struct Tier {
  const char* name;
  int stride;
};
constexpr Tier kTiers[] = {{"dense", 8}, {"mid", 24}, {"sparse", 96}};

PointCloud Subsample(const PointCloud& full, int stride) {
  PointCloud pc;
  pc.Reserve(full.size() / stride + 1);
  for (size_t i = 0; i < full.size(); i += stride) pc.Add(full[i]);
  return pc;
}

}  // namespace

std::vector<CorpusCase> BuildConformanceCorpus() {
  std::vector<CorpusCase> corpus;
  for (SceneType scene : AllSceneTypes()) {
    const SceneGenerator gen(scene);
    const PointCloud full = gen.Generate(0);
    for (const Tier& tier : kTiers) {
      CorpusCase c;
      c.id = SceneTypeName(scene) + "_" + tier.name;
      c.scene = scene;
      c.stride = tier.stride;
      c.cloud = Subsample(full, tier.stride);
      corpus.push_back(std::move(c));
    }
  }
  return corpus;
}

std::vector<CorpusCase> BuildFuzzCorpus() {
  std::vector<CorpusCase> corpus;
  // Two contrasting families keep the fault fan-out affordable: continuous
  // facades (city) and open highway (road).
  for (SceneType scene : {SceneType::kCity, SceneType::kRoad}) {
    const SceneGenerator gen(scene);
    CorpusCase c;
    c.id = SceneTypeName(scene) + "_fuzz";
    c.scene = scene;
    c.stride = 48;
    c.cloud = Subsample(gen.Generate(0), c.stride);
    corpus.push_back(std::move(c));
  }
  return corpus;
}

}  // namespace harness
}  // namespace dbgc
