// Deterministic conformance corpus: synthetic LiDAR frames stratified over
// all six SceneTypes x three sparsity tiers. Equal seeds produce
// bit-identical clouds, which is what lets the golden-bitstream vault pin
// compressed outputs by hash.

#ifndef DBGC_TESTS_HARNESS_CORPUS_H_
#define DBGC_TESTS_HARNESS_CORPUS_H_

#include <string>
#include <vector>

#include "common/point_cloud.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace harness {

/// One corpus entry.
struct CorpusCase {
  std::string id;    ///< Stable name, e.g. "city_mid" — keys golden entries.
  SceneType scene;
  int stride;        ///< Subsampling stride applied to the full frame.
  PointCloud cloud;
};

/// The full stratified corpus: every SceneType at dense / mid / sparse
/// subsampling. Deterministic across runs and builds.
std::vector<CorpusCase> BuildConformanceCorpus();

/// A small corpus (one mid-density case per scene family subset) for
/// fault-injection budgets, where each case fans out into many corrupted
/// variants per codec.
std::vector<CorpusCase> BuildFuzzCorpus();

}  // namespace harness
}  // namespace dbgc

#endif  // DBGC_TESTS_HARNESS_CORPUS_H_
