#include "harness/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dbgc {
namespace harness {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kByteFlip:
      return "byte_flip";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kSplice:
      return "splice";
    case FaultKind::kLengthTamper:
      return "length_tamper";
    case FaultKind::kVarintOverflow:
      return "varint_overflow";
  }
  return "unknown";
}

ByteBuffer FaultInjector::ByteFlips(const ByteBuffer& in, int flips) {
  ByteBuffer out = in;
  if (out.empty()) return out;
  for (int i = 0; i < flips; ++i) {
    const size_t pos = rng_.NextBounded(out.size());
    out.mutable_bytes()[pos] ^=
        static_cast<uint8_t>(1 + rng_.NextBounded(255));
  }
  return out;
}

ByteBuffer FaultInjector::Truncate(const ByteBuffer& in, size_t keep) {
  ByteBuffer out;
  out.Append(in.data(), std::min(keep, in.size()));
  return out;
}

ByteBuffer FaultInjector::Splice(const ByteBuffer& a, const ByteBuffer& b) {
  ByteBuffer out;
  const size_t cut_a = a.empty() ? 0 : rng_.NextBounded(a.size() + 1);
  const size_t cut_b = b.empty() ? 0 : rng_.NextBounded(b.size() + 1);
  out.Append(a.data(), cut_a);
  out.Append(b.data() + cut_b, b.size() - cut_b);
  return out;
}

ByteBuffer FaultInjector::TamperLength(const ByteBuffer& in) {
  ByteBuffer out = in;
  if (out.size() < 8) return out;
  const uint64_t hostile[] = {
      0xFFFFFFFFFFFFFFFFULL,           // All ones: remaining() comparisons.
      0xFFFFFFFFFFFFFFF8ULL,           // offset + len wraparound probe.
      kMaxReasonableCount + 1,         // Just past the containment bound.
      static_cast<uint64_t>(in.size()) * 2,  // Plausible but too large.
  };
  const uint64_t v = hostile[rng_.NextBounded(4)];
  const size_t pos = rng_.NextBounded(out.size() - 7);
  for (int i = 0; i < 8; ++i) {
    out.mutable_bytes()[pos + i] = static_cast<uint8_t>(v >> (8 * i));
  }
  return out;
}

ByteBuffer FaultInjector::VarintOverflow(const ByteBuffer& in) {
  ByteBuffer out = in;
  if (out.empty()) return out;
  const size_t pos = rng_.NextBounded(out.size());
  const size_t run = std::min<size_t>(10, out.size() - pos);
  for (size_t i = 0; i < run; ++i) {
    out.mutable_bytes()[pos + i] |= 0x80;
  }
  return out;
}

std::vector<InjectedFault> FaultInjector::AllFaults(const ByteBuffer& in,
                                                    const ByteBuffer& other,
                                                    int rounds) {
  std::vector<InjectedFault> faults;
  faults.reserve(static_cast<size_t>(rounds) * 5);
  for (int r = 0; r < rounds; ++r) {
    const std::string tag = " round " + std::to_string(r);
    faults.push_back({FaultKind::kByteFlip, "byte_flip" + tag,
                      ByteFlips(in, 1 + static_cast<int>(rng_.NextBounded(8)))});
    const size_t keep = in.empty() ? 0 : rng_.NextBounded(in.size());
    faults.push_back({FaultKind::kTruncate,
                      "truncate to " + std::to_string(keep) + tag,
                      Truncate(in, keep)});
    faults.push_back({FaultKind::kSplice, "splice" + tag, Splice(in, other)});
    faults.push_back({FaultKind::kLengthTamper, "length_tamper" + tag,
                      TamperLength(in)});
    faults.push_back({FaultKind::kVarintOverflow, "varint_overflow" + tag,
                      VarintOverflow(in)});
  }
  return faults;
}

void ExpectDecodeContained(const GeometryCodec& codec,
                           const ByteBuffer& stream,
                           const std::string& context) {
  auto decoded = codec.Decompress(stream);
  if (decoded.ok()) {
    EXPECT_LE(decoded.value().size(), kMaxReasonableCount)
        << codec.name() << ": unbounded cloud from corrupted stream ("
        << context << ")";
  }
  // A non-OK Status is containment by definition; the sanitizer build
  // verifies no over-read happened on the way there.
}

}  // namespace harness
}  // namespace dbgc
