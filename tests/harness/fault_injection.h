// Structured fault injection for bitstream decoders.
//
// Generalizes the ad-hoc mutate/truncate loops of the original corruption
// fuzzing into a library of named fault classes, each targeting a failure
// mode the decoders must contain:
//   - byte flips:        arbitrary content corruption
//   - truncation:        streams cut mid-structure
//   - splice:            a valid prefix grafted onto a different stream's
//                        suffix (desynchronized sections)
//   - length tampering:  64-bit length-prefix fields inflated to huge or
//                        wrapped values (allocation bombs, offset overflow)
//   - varint overflow:   forced LEB128 continuation runs (>64-bit values)
//
// "Contained" means: Decompress either returns a non-OK Status, or returns
// a cloud whose size is allocation-bounded (<= kMaxReasonableCount). It
// must never crash, over-read, or attempt an unbounded allocation — the
// properties the sanitizer builds then verify mechanically.

#ifndef DBGC_TESTS_HARNESS_FAULT_INJECTION_H_
#define DBGC_TESTS_HARNESS_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "bitio/byte_buffer.h"
#include "codec/codec.h"
#include "common/rng.h"

namespace dbgc {
namespace harness {

/// The fault classes, in AllFaults emission order.
enum class FaultKind {
  kByteFlip,
  kTruncate,
  kSplice,
  kLengthTamper,
  kVarintOverflow,
};

/// Display name of a fault kind ("byte_flip", ...).
std::string FaultKindName(FaultKind kind);

/// One corrupted stream plus its provenance, for failure messages.
struct InjectedFault {
  FaultKind kind;
  std::string description;
  ByteBuffer stream;
};

/// Deterministic fault generator; equal seeds yield equal fault sequences.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// XORs `flips` random bytes with random non-zero masks.
  ByteBuffer ByteFlips(const ByteBuffer& in, int flips);

  /// Keeps the first `keep` bytes (keep may exceed the size; then no-op).
  ByteBuffer Truncate(const ByteBuffer& in, size_t keep);

  /// Prefix of `a` up to a random split, then the suffix of `b` from an
  /// independently chosen split.
  ByteBuffer Splice(const ByteBuffer& a, const ByteBuffer& b);

  /// Overwrites 8 consecutive bytes at a random offset with a hostile
  /// little-endian 64-bit value (all-ones, near-2^64 wrap candidates,
  /// kMaxReasonableCount+1, or 2x the stream size) — aimed at the 64-bit
  /// length prefixes every codec writes.
  ByteBuffer TamperLength(const ByteBuffer& in);

  /// Sets the LEB128 continuation bit on 10 consecutive bytes at a random
  /// offset, forcing any varint parsed there to run past 64 bits.
  ByteBuffer VarintOverflow(const ByteBuffer& in);

  /// `rounds` variants of every fault kind applied to `in` (`other` donates
  /// the splice suffix; pass `in` itself if nothing else is at hand).
  std::vector<InjectedFault> AllFaults(const ByteBuffer& in,
                                       const ByteBuffer& other, int rounds);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

/// Asserts (gtest EXPECT) that decoding `stream` with `codec` is contained:
/// error Status or a bounded cloud. `context` labels failures.
void ExpectDecodeContained(const GeometryCodec& codec,
                           const ByteBuffer& stream,
                           const std::string& context);

}  // namespace harness
}  // namespace dbgc

#endif  // DBGC_TESTS_HARNESS_FAULT_INJECTION_H_
