#include "harness/golden.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dbgc {
namespace harness {

uint64_t Fnv1a64(const uint8_t* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string HashHex(const ByteBuffer& buf) {
  char out[17];
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(buf.data(),
                                                       buf.size())));
  return out;
}

std::string GoldenDir() {
  if (const char* env = std::getenv("DBGC_GOLDEN_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef DBGC_GOLDEN_DIR
  return DBGC_GOLDEN_DIR;
#else
  return "tests/golden";
#endif
}

std::string GoldenPath(const std::string& codec_id) {
  return GoldenDir() + "/" + codec_id + ".golden";
}

bool RegenRequested() {
  const char* env = std::getenv("DBGC_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

Result<std::vector<GoldenEntry>> LoadGoldenFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("golden file not found: " + path);
  }
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    GoldenEntry e;
    if (!(ls >> e.case_id >> e.size >> e.hash) || e.hash.size() != 16) {
      return Status::Corruption("malformed golden line in " + path + ": " +
                                line);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

Status WriteGoldenFile(const std::string& path,
                       const std::vector<GoldenEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot write golden file: " + path);
  }
  out << "# <case_id> <compressed_size_bytes> <fnv1a64_hex>\n"
      << "# Regenerate: DBGC_REGEN_GOLDEN=1 ctest -R GoldenBitstream\n";
  for (const GoldenEntry& e : entries) {
    out << e.case_id << " " << e.size << " " << e.hash << "\n";
  }
  out.close();
  if (!out) return Status::IOError("short write to golden file: " + path);
  return Status::OK();
}

}  // namespace harness
}  // namespace dbgc
