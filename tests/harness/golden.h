// Golden bitstream vault: compressed outputs of the conformance corpus are
// pinned by size + FNV-1a hash in text files committed under tests/golden/.
// A hash mismatch means the on-wire format changed; the test failure text
// tells the reader how to distinguish an intentional format change
// (regenerate with DBGC_REGEN_GOLDEN=1) from a regression.

#ifndef DBGC_TESTS_HARNESS_GOLDEN_H_
#define DBGC_TESTS_HARNESS_GOLDEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitio/byte_buffer.h"
#include "common/status.h"

namespace dbgc {
namespace harness {

/// 64-bit FNV-1a over a byte span.
uint64_t Fnv1a64(const uint8_t* data, size_t n);

/// Fnv1a64 of a buffer, rendered as 16 lowercase hex digits.
std::string HashHex(const ByteBuffer& buf);

/// One pinned bitstream: (corpus case, compressed size, content hash).
struct GoldenEntry {
  std::string case_id;
  uint64_t size = 0;
  std::string hash;  // 16 hex digits.
};

/// Directory holding the committed golden files. Compiled in via the
/// DBGC_GOLDEN_DIR definition; the DBGC_GOLDEN_DIR environment variable
/// overrides it.
std::string GoldenDir();

/// Path of one codec's golden file: <GoldenDir()>/<codec_id>.golden.
std::string GoldenPath(const std::string& codec_id);

/// True when DBGC_REGEN_GOLDEN is set to a non-empty, non-"0" value: tests
/// rewrite the vault instead of comparing against it.
bool RegenRequested();

/// Parses a golden file. A missing file is IOError (the caller turns that
/// into a "run with DBGC_REGEN_GOLDEN=1" failure); a malformed line is
/// Corruption.
Result<std::vector<GoldenEntry>> LoadGoldenFile(const std::string& path);

/// Writes entries to `path` (with a header comment), replacing the file.
Status WriteGoldenFile(const std::string& path,
                       const std::vector<GoldenEntry>& entries);

}  // namespace harness
}  // namespace dbgc

#endif  // DBGC_TESTS_HARNESS_GOLDEN_H_
