// Cross-module integration tests: DBGC vs baselines over full generated
// frames on multiple scenes and error bounds, exercising the complete
// pipeline the way the benchmark harness does.

#include <gtest/gtest.h>

#include <cmath>

#include "codec/codec.h"
#include "core/dbgc_codec.h"
#include "core/error_metrics.h"
#include "lidar/scene_generator.h"

namespace dbgc {
namespace {

PointCloud Frame(SceneType type, int stride) {
  const SceneGenerator gen(type);
  const PointCloud full = gen.Generate(0);
  PointCloud sub;
  for (size_t i = 0; i < full.size(); i += stride) sub.Add(full[i]);
  return sub;
}

class SceneSweep : public ::testing::TestWithParam<SceneType> {};

TEST_P(SceneSweep, AllCodecsRoundTripWithinBound) {
  const PointCloud pc = Frame(GetParam(), 10);
  const double q = 0.02;
  const double limit = std::sqrt(3.0) * q * (1 + 1e-9);

  for (auto& codec : MakeBaselineCodecs()) {
    auto compressed = codec->Compress(pc, q);
    ASSERT_TRUE(compressed.ok()) << codec->name();
    auto decoded = codec->Decompress(compressed.value());
    ASSERT_TRUE(decoded.ok()) << codec->name();
    ASSERT_EQ(decoded.value().size(), pc.size()) << codec->name();
    const ErrorStats stats = NearestNeighborError(pc, decoded.value());
    EXPECT_LE(stats.max_euclidean, limit) << codec->name();
    EXPECT_GT(CompressionRatio(pc, compressed.value()), 1.5)
        << codec->name();
  }

  DbgcOptions options;
  options.min_pts_scale = 0.05;
  options.q_xyz = q;
  const DbgcCodec dbgc(options);
  CompressStats info;
  info.record_point_mapping = true;
  CompressParams info_params;
  info_params.q_xyz = dbgc.options().q_xyz;
  info_params.info = &info;
  auto compressed = dbgc.Compress(pc, info_params);
  ASSERT_TRUE(compressed.ok());
  auto decoded = dbgc.Decompress(compressed.value());
  ASSERT_TRUE(decoded.ok());
  auto stats = MappedError(pc, decoded.value(), info.point_mapping);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats.value().max_euclidean, std::sqrt(3.0) * q * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Scenes, SceneSweep,
    ::testing::ValuesIn(AllSceneTypes()),
    [](const ::testing::TestParamInfo<SceneType>& info) {
      return SceneTypeName(info.param);
    });

TEST(IntegrationTest, DbgcRatioDominatesBaselinesOnFullFrame) {
  // The Figure 9 headline on one full-resolution frame: DBGC's bitstream
  // is smaller than every baseline's at the 2 cm bound.
  const SceneGenerator gen(SceneType::kCampus);
  const PointCloud pc = gen.Generate(0);
  DbgcOptions options;
  options.q_xyz = 0.02;
  const DbgcCodec dbgc(options);
  auto c_dbgc = dbgc.Compress(pc, 0.02);
  ASSERT_TRUE(c_dbgc.ok());
  for (auto& codec : MakeBaselineCodecs()) {
    auto c = codec->Compress(pc, 0.02);
    ASSERT_TRUE(c.ok());
    EXPECT_LT(c_dbgc.value().size(), c.value().size())
        << "DBGC should beat " << codec->name();
  }
}

TEST(IntegrationTest, RatioDegradesGracefullyAtTighterBounds) {
  // Smaller error bounds must yield monotonically larger streams.
  const PointCloud pc = Frame(SceneType::kCity, 6);
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  size_t prev = 0;
  for (double q : {0.02, 0.01, 0.005, 0.002}) {
    auto compressed = codec.Compress(pc, q);
    ASSERT_TRUE(compressed.ok()) << q;
    EXPECT_GT(compressed.value().size(), prev) << q;
    prev = compressed.value().size();
  }
}

TEST(IntegrationTest, MultiFrameStability) {
  // Several consecutive frames of one scene all round-trip.
  const SceneGenerator gen(SceneType::kFordCampus);
  DbgcOptions options;
  options.min_pts_scale = 0.05;
  const DbgcCodec codec(options);
  for (uint32_t f = 0; f < 3; ++f) {
    const PointCloud full = gen.Generate(f);
    PointCloud pc;
    for (size_t i = 0; i < full.size(); i += 15) pc.Add(full[i]);
    auto compressed = codec.Compress(pc, 0.02);
    ASSERT_TRUE(compressed.ok()) << "frame " << f;
    auto decoded = codec.Decompress(compressed.value());
    ASSERT_TRUE(decoded.ok()) << "frame " << f;
    EXPECT_EQ(decoded.value().size(), pc.size()) << "frame " << f;
  }
}

}  // namespace
}  // namespace dbgc
