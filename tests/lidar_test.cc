// Unit and property tests for src/lidar: spherical conversion (Theorem
// 3.2), sensor metadata, the synthetic scene generator, and KITTI I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "encoding/quantizer.h"
#include "lidar/kitti_io.h"
#include "lidar/scene_generator.h"
#include "lidar/sensor_model.h"
#include "lidar/spherical.h"

namespace dbgc {
namespace {

TEST(SphericalTest, AxesConvert) {
  const SphericalPoint px = CartesianToSpherical({1, 0, 0});
  EXPECT_NEAR(px.theta, 0.0, 1e-12);
  EXPECT_NEAR(px.phi, 0.0, 1e-12);
  EXPECT_NEAR(px.r, 1.0, 1e-12);
  const SphericalPoint pz = CartesianToSpherical({0, 0, 2});
  EXPECT_NEAR(pz.phi, M_PI / 2, 1e-12);
  EXPECT_NEAR(pz.r, 2.0, 1e-12);
  const SphericalPoint py = CartesianToSpherical({0, -3, 0});
  EXPECT_NEAR(py.theta, -M_PI / 2, 1e-12);
}

TEST(SphericalTest, OriginIsStable) {
  const SphericalPoint s = CartesianToSpherical({0, 0, 0});
  EXPECT_EQ(s.r, 0.0);
  const Point3 p = SphericalToCartesian(s);
  EXPECT_EQ(p.Norm(), 0.0);
}

TEST(SphericalTest, RandomRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    const Point3 p{rng.NextRange(-100, 100), rng.NextRange(-100, 100),
                   rng.NextRange(-30, 30)};
    const Point3 back = SphericalToCartesian(CartesianToSpherical(p));
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
    EXPECT_NEAR(back.z, p.z, 1e-9);
  }
}

TEST(SphericalErrorBoundsTest, Derivation) {
  const auto b = SphericalErrorBounds::FromCartesian(0.02, 100.0);
  EXPECT_DOUBLE_EQ(b.q_theta, 0.0002);
  EXPECT_DOUBLE_EQ(b.q_phi, 0.0002);
  EXPECT_DOUBLE_EQ(b.q_r, 0.02);
}

// Theorem 3.2: quantizing spherical coordinates with q_theta = q_phi =
// q_xyz / r_max and q_r = q_xyz keeps the Euclidean error within the
// Cartesian-system worst case sqrt(3) * q_xyz.
class Theorem32 : public ::testing::TestWithParam<double> {};

TEST_P(Theorem32, EuclideanErrorWithinSqrt3Q) {
  const double q = GetParam();
  Rng rng(static_cast<uint64_t>(q * 1e7));
  const double r_max = 120.0;
  const auto bounds = SphericalErrorBounds::FromCartesian(q, r_max);
  const Quantizer qt(bounds.q_theta), qp(bounds.q_phi), qr(bounds.q_r);
  const double limit = std::sqrt(3.0) * q * (1 + 1e-6);
  for (int i = 0; i < 20000; ++i) {
    // Points across the full sensor range, r <= r_max.
    const double theta = rng.NextRange(-M_PI, M_PI);
    const double phi = rng.NextRange(-0.45, 0.05);
    const double r = rng.NextRange(0.5, r_max);
    const Point3 p = SphericalToCartesian({theta, phi, r});
    const SphericalPoint rec{qt.Reconstruct(qt.Quantize(theta)),
                             qp.Reconstruct(qp.Quantize(phi)),
                             qr.Reconstruct(qr.Quantize(r))};
    const Point3 p2 = SphericalToCartesian(rec);
    EXPECT_LE(p.DistanceTo(p2), limit)
        << "theta=" << theta << " phi=" << phi << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, Theorem32,
                         ::testing::Values(0.0006, 0.005, 0.02));

TEST(SensorModelTest, Hdl64eProfile) {
  const SensorMetadata m = SensorMetadata::VelodyneHdl64e();
  EXPECT_EQ(m.vertical_samples, 64);
  EXPECT_NEAR(m.phi_max - m.phi_min, 26.8 * M_PI / 180.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.r_max, 120.0);
  EXPECT_GT(m.AzimuthStep(), 0.0);
  EXPECT_GT(m.PolarStep(), 0.0);
  EXPECT_NEAR(m.PolarStep(), (m.phi_max - m.phi_min) / 64, 1e-15);
}

TEST(SceneGeneratorTest, Deterministic) {
  const SceneGenerator gen(SceneType::kCity, 42);
  const PointCloud a = gen.Generate(3);
  const PointCloud b = gen.Generate(3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(SceneGeneratorTest, FramesDiffer) {
  const SceneGenerator gen(SceneType::kCity, 42);
  const PointCloud a = gen.Generate(0);
  const PointCloud b = gen.Generate(1);
  EXPECT_NE(a.size(), b.size());
}

TEST(SceneGeneratorTest, PointBudgetNearKitti) {
  // KITTI frames hold roughly 100 K points (Section 4.1).
  for (SceneType type : AllSceneTypes()) {
    const SceneGenerator gen(type);
    const PointCloud pc = gen.Generate(0);
    EXPECT_GT(pc.size(), 40000u) << SceneTypeName(type);
    EXPECT_LT(pc.size(), 140000u) << SceneTypeName(type);
  }
}

TEST(SceneGeneratorTest, PointsWithinSensorRange) {
  const SensorMetadata sensor = SensorMetadata::VelodyneHdl64e();
  const SceneGenerator gen(SceneType::kResidential);
  const PointCloud pc = gen.Generate(0, sensor);
  for (const Point3& p : pc) {
    const double r = p.Norm();
    ASSERT_GE(r, sensor.r_min * 0.9);
    ASSERT_LE(r, sensor.r_max * 1.01);
  }
}

TEST(SceneGeneratorTest, DensityFallsWithRadius) {
  // The Figure 3b property: points per cubic meter decreases with the
  // radius of the enclosing sphere.
  const SceneGenerator gen(SceneType::kCity);
  const PointCloud pc = gen.Generate(0);
  auto density_within = [&](double radius) {
    size_t count = 0;
    for (const Point3& p : pc) count += p.Norm() <= radius ? 1 : 0;
    return count / (4.0 / 3.0 * M_PI * radius * radius * radius);
  };
  const double d5 = density_within(5);
  const double d20 = density_within(20);
  const double d60 = density_within(60);
  EXPECT_GT(d5, d20);
  EXPECT_GT(d20, d60);
}

TEST(SceneGeneratorTest, NearGridRegularityInSphericalSpace) {
  // Most points should sit close to some sampling-ring elevation: the
  // Figure 5 "regular but not exact grid" property.
  const SensorMetadata sensor = SensorMetadata::VelodyneHdl64e();
  const SceneGenerator gen(SceneType::kRoad);
  const PointCloud pc = gen.Generate(0, sensor);
  const double u_phi = sensor.PolarStep();
  size_t close = 0;
  for (const Point3& p : pc) {
    const SphericalPoint s = CartesianToSpherical(p);
    // Distance to the nearest ring center in units of u_phi.
    const double ring_pos = (sensor.phi_max - s.phi) / u_phi - 0.5;
    const double frac = std::fabs(ring_pos - std::round(ring_pos));
    if (frac < 0.45) ++close;
  }
  EXPECT_GT(static_cast<double>(close) / pc.size(), 0.9);
}

TEST(SceneTypeTest, NamesAndEnumeration) {
  EXPECT_EQ(SceneTypeName(SceneType::kCampus), "campus");
  EXPECT_EQ(SceneTypeName(SceneType::kUrban), "urban");
  EXPECT_EQ(AllSceneTypes().size(), 6u);
}

TEST(KittiIoTest, SerializeParseRoundTrip) {
  PointCloud pc;
  pc.Add(1.5, -2.25, 3.125);
  pc.Add(-100.0, 0.0, 42.0);
  const auto bytes = SerializeKittiBin(pc);
  EXPECT_EQ(bytes.size(), 32u);
  auto parsed = ParseKittiBin(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0], pc[0]);
  EXPECT_EQ(parsed.value()[1], pc[1]);
}

TEST(KittiIoTest, BadSizeRejected) {
  const uint8_t junk[7] = {0};
  EXPECT_FALSE(ParseKittiBin(junk, 7).ok());
}

TEST(KittiIoTest, FileRoundTrip) {
  const SceneGenerator gen(SceneType::kCampus);
  PointCloud pc = gen.Generate(0);
  const std::string path = ::testing::TempDir() + "/dbgc_test_frame.bin";
  ASSERT_TRUE(WriteKittiBin(path, pc).ok());
  auto loaded = ReadKittiBin(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), pc.size());
  // Float32 storage: positions match to float precision.
  for (size_t i = 0; i < pc.size(); i += 997) {
    EXPECT_NEAR(loaded.value()[i].x, pc[i].x, 1e-4);
  }
  std::remove(path.c_str());
}

TEST(KittiIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadKittiBin("/nonexistent/nope.bin").ok());
}

}  // namespace
}  // namespace dbgc
