// Unit tests for the dbgc_lint lexer (tools/dbgc_lint/lexer.h), focused on
// the constructs most likely to desync a token scan: raw string literals
// (which may contain quotes, parens, and decoy code) and digit separators
// (which embed single quotes inside number tokens).

#include "lexer.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dbgc_lint {
namespace {

std::vector<Token> LexOf(const std::string& src) { return Lex(src); }

// Texts of all tokens of `kind`.
std::vector<std::string> TextsOf(const std::string& src, TokenKind kind) {
  std::vector<std::string> out;
  for (const Token& t : LexOf(src)) {
    if (t.kind == kind) out.push_back(t.text);
  }
  return out;
}

TEST(LintLexer, DigitSeparatorsStayInNumberToken) {
  const auto nums = TextsOf("int x = 1'000'000;", TokenKind::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "1'000'000");
}

TEST(LintLexer, HexDigitSeparators) {
  const auto nums = TextsOf("uint32_t m = 0xFF'FF'00'00u;", TokenKind::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "0xFF'FF'00'00u");
}

TEST(LintLexer, QuoteAfterNumberIsCharLiteralNotSeparator) {
  // `0'c'` must lex as the number 0 followed by the char literal 'c';
  // a greedy separator rule would swallow the quote and desync.
  const auto tokens = LexOf("f(0, 'c');");
  std::vector<std::string> nums, chars;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) nums.push_back(t.text);
    if (t.kind == TokenKind::kChar) chars.push_back(t.text);
  }
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "0");
  ASSERT_EQ(chars.size(), 1u);
  EXPECT_EQ(chars[0], "'c'");
}

TEST(LintLexer, ExponentSignsStayInNumberToken) {
  const auto nums = TextsOf("double d = 1.5e+10;", TokenKind::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "1.5e+10");
}

TEST(LintLexer, RawStringIsOneToken) {
  const auto strs =
      TextsOf("auto s = R\"(a \"b\" (c) d)\";", TokenKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], "R\"(a \"b\" (c) d)\"");
}

TEST(LintLexer, RawStringWithDelimiter) {
  // The body contains a plain `)"` that only the delimiter disambiguates.
  const std::string src = "auto s = R\"x(quote \" close )\" inner)x\";";
  const auto strs = TextsOf(src, TokenKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], "R\"x(quote \" close )\" inner)x\"");
}

TEST(LintLexer, RawStringBodyIsNotScannedAsCode) {
  // Decoy code inside the literal must not produce ident/punct tokens.
  const auto tokens = LexOf("auto s = R\"(MutexLock lock(mu_);)\"; int y;");
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdent) {
      EXPECT_NE(t.text, "MutexLock");
      EXPECT_NE(t.text, "lock");
    }
  }
  const auto idents = TextsOf("auto s = R\"(MutexLock lock(mu_);)\"; int y;",
                              TokenKind::kIdent);
  ASSERT_EQ(idents.size(), 4u);  // auto, s, int, y.
  EXPECT_EQ(idents[2], "int");
  EXPECT_EQ(idents[3], "y");
}

TEST(LintLexer, RawStringEncodingPrefixes) {
  for (const std::string prefix : {"u8R", "uR", "UR", "LR"}) {
    const std::string src = "auto s = " + prefix + "\"(x)\";";
    const auto strs = TextsOf(src, TokenKind::kString);
    ASSERT_EQ(strs.size(), 1u) << prefix;
    EXPECT_EQ(strs[0], prefix + "\"(x)\"") << prefix;
  }
}

TEST(LintLexer, RawStringTracksLineNumbers) {
  const auto tokens = LexOf("auto s = R\"(line one\nline two)\";\nint y;");
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdent && t.text == "y") {
      EXPECT_EQ(t.line, 3);
      return;
    }
  }
  FAIL() << "ident y not found";
}

TEST(LintLexer, IdentifierRWithoutRawStringFallsBack) {
  // An identifier merely ending in R, or R used as a plain name, must not
  // trigger raw-string lexing.
  const auto idents = TextsOf("int R = 2; int FooR = R + 1;",
                              TokenKind::kIdent);
  ASSERT_EQ(idents.size(), 5u);  // int, R, int, FooR, R.
  EXPECT_EQ(idents[1], "R");
  EXPECT_EQ(idents[3], "FooR");
}

TEST(LintLexer, NonRawStringAfterRIdentFallsBack) {
  // `R"str"` with no '(' terminating the (bounded) delimiter scan is an
  // ident followed by an ordinary string, not a raw string; likewise an
  // identifier that only ends in R never starts the raw-string path.
  const auto tokens = LexOf("R\"str\" DBGC_R\"s2\" ;");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "R");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "\"str\"");
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[2].text, "DBGC_R");
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "\"s2\"");
}

TEST(LintLexer, UnterminatedRawStringSwallowsRest) {
  // Matches the unterminated-literal policy for plain strings: the token
  // extends to end of input rather than desyncing the scan.
  const auto tokens = LexOf("auto s = R\"(never closed; int x;");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::kString);
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdent) {
      EXPECT_NE(t.text, "x");
    }
  }
}

}  // namespace
}  // namespace dbgc_lint
