// Unit and property tests for src/lz: the LZ77 tokenizer and the
// Deflate-style compressor.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "lz/deflate.h"
#include "lz/lz77.h"

namespace dbgc {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Lz77Test, EmptyInput) {
  EXPECT_TRUE(Lz77::Tokenize({}).empty());
  EXPECT_TRUE(Lz77::Reconstruct({}).empty());
}

TEST(Lz77Test, LiteralsOnly) {
  const auto data = Bytes("abc");
  const auto tokens = Lz77::Tokenize(data);
  EXPECT_EQ(tokens.size(), 3u);
  for (const auto& t : tokens) EXPECT_FALSE(t.is_match);
  EXPECT_EQ(Lz77::Reconstruct(tokens), data);
}

TEST(Lz77Test, FindsRepeats) {
  const auto data = Bytes("abcabcabcabcabcabc");
  const auto tokens = Lz77::Tokenize(data);
  bool any_match = false;
  for (const auto& t : tokens) any_match |= t.is_match;
  EXPECT_TRUE(any_match);
  EXPECT_LT(tokens.size(), data.size());
  EXPECT_EQ(Lz77::Reconstruct(tokens), data);
}

TEST(Lz77Test, OverlappingMatchRunLength) {
  // "aaaa..." uses distance-1 matches (RLE via LZ77).
  const std::vector<uint8_t> data(300, 'a');
  const auto tokens = Lz77::Tokenize(data);
  EXPECT_LE(tokens.size(), 4u);
  EXPECT_EQ(Lz77::Reconstruct(tokens), data);
}

TEST(Lz77Test, TokensWithinBounds) {
  Rng rng(42);
  std::vector<uint8_t> data;
  for (int i = 0; i < 100000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.NextBounded(8)));
  }
  size_t pos = 0;
  for (const auto& t : Lz77::Tokenize(data)) {
    if (t.is_match) {
      EXPECT_GE(t.length, Lz77::kMinMatch);
      EXPECT_LE(t.length, Lz77::kMaxMatch);
      EXPECT_GE(t.distance, 1u);
      EXPECT_LE(t.distance, pos);
      EXPECT_LE(t.distance, Lz77::kWindowSize);
      pos += t.length;
    } else {
      ++pos;
    }
  }
  EXPECT_EQ(pos, data.size());
}

TEST(DeflateTest, EmptyRoundTrip) {
  const ByteBuffer compressed = Deflate::Compress(std::vector<uint8_t>{});
  std::vector<uint8_t> out;
  ASSERT_TRUE(Deflate::Decompress(compressed, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DeflateTest, TextRoundTrip) {
  const auto data = Bytes(
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again");
  const ByteBuffer compressed = Deflate::Compress(data);
  std::vector<uint8_t> out;
  ASSERT_TRUE(Deflate::Decompress(compressed, &out).ok());
  EXPECT_EQ(out, data);
}

TEST(DeflateTest, CompressesRepetitiveData) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 1000; ++i) {
    for (uint8_t b : Bytes("pattern-0123456789")) data.push_back(b);
  }
  const ByteBuffer compressed = Deflate::Compress(data);
  EXPECT_LT(compressed.size(), data.size() / 20);
  std::vector<uint8_t> out;
  ASSERT_TRUE(Deflate::Decompress(compressed, &out).ok());
  EXPECT_EQ(out, data);
}

class DeflateRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DeflateRandomRoundTrip, Holds) {
  const int alphabet = GetParam();
  Rng rng(static_cast<uint64_t>(alphabet) * 101);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<uint8_t> data;
    const size_t n = 1 + rng.NextBounded(60000);
    for (size_t i = 0; i < n; ++i) {
      data.push_back(static_cast<uint8_t>(rng.NextBounded(alphabet)));
    }
    const ByteBuffer compressed = Deflate::Compress(data);
    std::vector<uint8_t> out;
    ASSERT_TRUE(Deflate::Decompress(compressed, &out).ok());
    ASSERT_EQ(out, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, DeflateRandomRoundTrip,
                         ::testing::Values(2, 5, 17, 256));

TEST(DeflateTest, LongDistanceMatches) {
  // Repeat a block after ~30 KB of filler so matches reach deep into the
  // window.
  Rng rng(1);
  std::vector<uint8_t> block;
  for (int i = 0; i < 500; ++i) {
    block.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
  }
  std::vector<uint8_t> data = block;
  for (int i = 0; i < 30000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.NextBounded(4)));
  }
  data.insert(data.end(), block.begin(), block.end());
  const ByteBuffer compressed = Deflate::Compress(data);
  std::vector<uint8_t> out;
  ASSERT_TRUE(Deflate::Decompress(compressed, &out).ok());
  EXPECT_EQ(out, data);
}

TEST(DeflateTest, CorruptStreamFailsCleanly) {
  const auto data = Bytes("hello hello hello hello hello");
  ByteBuffer compressed = Deflate::Compress(data);
  // Truncate the stream.
  ByteBuffer truncated;
  truncated.Append(compressed.data(), compressed.size() / 2);
  std::vector<uint8_t> out;
  EXPECT_FALSE(Deflate::Decompress(truncated, &out).ok());
}

TEST(DeflateTest, GarbageInputFailsCleanly) {
  ByteBuffer garbage;
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    garbage.AppendByte(static_cast<uint8_t>(rng.NextBounded(256)));
  }
  std::vector<uint8_t> out;
  // Either fails or produces *something*; it must not crash. Most seeds
  // fail on the table or size check.
  (void)Deflate::Decompress(garbage, &out);
}

}  // namespace
}  // namespace dbgc
